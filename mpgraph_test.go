package mpgraph

import (
	"testing"

	"mpgraph/internal/experiments"
	"mpgraph/internal/frameworks"
	"mpgraph/internal/sim"
)

func tinySystem() *System {
	opt := DefaultOptions()
	opt.GraphScale = 9
	opt.Apps = []App{PR}
	opt.TraceIterations = 3
	opt.MaxTestAccesses = 20_000
	opt.TrainSamples = 100
	opt.EvalSamples = 40
	opt.Epochs = 1
	return New(opt)
}

func TestFacadeEndToEnd(t *testing.T) {
	sys := tinySystem()
	wls := sys.Workloads()
	if len(wls) != 3 {
		t.Fatalf("PR-only matrix = %d workloads, want 3", len(wls))
	}
	wl := Workload{Framework: "gpop", App: PR, Dataset: "rmat"}

	g, err := sys.Graph("rmat")
	if err != nil || g.NumVertices != 512 {
		t.Fatalf("Graph: %v (V=%d)", err, g.NumVertices)
	}

	tr, res, err := sys.Trace(wl)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Accesses) == 0 || res.Iterations < 2 {
		t.Fatal("trace pipeline broken")
	}

	pf, err := sys.TrainMPGraph(wl)
	if err != nil {
		t.Fatal(err)
	}
	m, base, err := sys.Simulate(wl, pf)
	if err != nil {
		t.Fatal(err)
	}
	if m.IPC() <= 0 || base.IPC() <= 0 {
		t.Fatal("simulation produced no IPC")
	}
	if m.PrefetchesIssued == 0 {
		t.Fatal("MPGraph issued nothing")
	}
}

func TestFacadeBaselines(t *testing.T) {
	sys := tinySystem()
	wl := Workload{Framework: "gpop", App: PR, Dataset: "rmat"}
	pfs, err := sys.Baselines(wl)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"bo", "isb", "delta-lstm", "voyager", "transfetch", "mpgraph"}
	if len(pfs) != len(want) {
		t.Fatalf("got %d baselines", len(pfs))
	}
	for i, pf := range pfs {
		if pf.Name() != want[i] {
			t.Fatalf("baseline %d = %q, want %q", i, pf.Name(), want[i])
		}
	}
	// The façade types really are the internal types (compile-time check).
	var _ sim.Prefetcher = pfs[0]
	var _ experiments.Options = sys.runner.Opt
	var _ App = frameworks.PR
}

func TestFacadeCustomControllerOptions(t *testing.T) {
	sys := tinySystem()
	wl := Workload{Framework: "gpop", App: PR, Dataset: "rmat"}
	opt := DefaultControllerOptions()
	opt.TemporalDegree = 0 // spatial-only ablation via the façade
	pf, err := sys.TrainMPGraphWithOptions(wl, opt)
	if err != nil {
		t.Fatal(err)
	}
	m, _, err := sys.Simulate(wl, pf)
	if err != nil {
		t.Fatal(err)
	}
	if m.PrefetchesIssued == 0 {
		t.Fatal("spatial-only variant issued nothing")
	}
}
