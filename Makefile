# Tier-1 is one command: `make` runs build, the static-analysis gate, and
# the test suite — the same three steps CI runs (.github/workflows/ci.yml).

GO ?= go

.PHONY: all build vet lint vet-self vet-facts-determinism vet-fix-check test race bench bench-batch bench-compare faultinject serve-smoke ci

all: build lint test

build:
	$(GO) build ./...

# lint runs the full static-analysis gate: the standard `go vet` passes
# (delegated by mpgraph-vet) plus the fourteen MPGraph analyzers —
# seededrand, errdrop, floateq, panicpolicy, addrhelpers, maporder,
# walltime, noalloc, lockcheck, golifetime, chansafe, ctxflow, directive,
# injectpoint. See DESIGN.md §7.
lint:
	$(GO) run ./cmd/mpgraph-vet ./...

# vet-self turns the gate on its own implementation: the analysis framework,
# the CFG and call-graph layers, and the passes must hold to the same
# concurrency and determinism contracts they enforce. CI runs this step
# with -json and uploads the output as an artifact.
vet-self:
	$(GO) run ./cmd/mpgraph-vet -novet ./internal/analysis/...

# vet-facts-determinism proves the cross-package fact layer is a pure
# function of the source: export the fact dir twice and require the trees to
# be byte-identical. CI runs this step and uploads the first dir as an
# artifact next to vet-self.jsonl.
FACTS_DIR ?= /tmp/mpgraph-vet-facts
vet-facts-determinism:
	rm -rf $(FACTS_DIR)-1 $(FACTS_DIR)-2
	$(GO) run ./cmd/mpgraph-vet -novet -facts-dir $(FACTS_DIR)-1 ./...
	$(GO) run ./cmd/mpgraph-vet -novet -facts-dir $(FACTS_DIR)-2 ./...
	diff -r $(FACTS_DIR)-1 $(FACTS_DIR)-2
	rm -rf $(FACTS_DIR)-2

# vet runs only the standard passes (lint is a superset).
vet:
	$(GO) vet ./...

# vet-fix-check proves the tree is autofix-clean: run `mpgraph-vet -fix` on
# a scratch copy and fail if any file changes. A diff here means a finding
# with a suggested rewrite was committed unfixed — run the -fix mode locally
# and commit the result.
FIXCHECK_DIR ?= /tmp/mpgraph-vet-fixcheck
vet-fix-check:
	rm -rf $(FIXCHECK_DIR)
	mkdir -p $(FIXCHECK_DIR)
	tar --exclude=.git -cf - . | (cd $(FIXCHECK_DIR) && tar -xf -)
	cd $(FIXCHECK_DIR) && $(GO) run ./cmd/mpgraph-vet -novet -fix ./...
	diff -r -x .git . $(FIXCHECK_DIR)
	rm -rf $(FIXCHECK_DIR)

test:
	$(GO) test ./...

# race is the determinism/concurrency gate. The heavy experiment tests
# shrink themselves under the detector (see experiments/race_on_test.go);
# the timeout covers the ~10x instrumentation slowdown on model training.
race:
	$(GO) test -race -timeout 30m ./...

# bench regenerates BENCH_small.json via cmd/mpgraph-bench (fast-path,
# int8, f32 and f16 speedups appear in its "speedups" section). The µs-scale
# Operate benchmarks run 6 counts of 300 iterations — mpgraph-bench keeps
# the best run per benchmark (timing noise is strictly additive), keeping
# ns/op stable enough for the bench-compare gate's 15% threshold on noisy
# (single-core VM) hosts; the seconds-scale sweep benchmarks run once. Steps go through a file so a benchmark failure fails
# the target. For published numbers rerun with a higher -benchtime and
# -count (DESIGN.md §8).
bench:
	$(GO) test ./internal/prefetch/ ./internal/core/ ./internal/models/ \
		-run xxx -bench 'BenchmarkOperate|BenchmarkSuiteSave' -benchtime 300x -count 6 \
		> bench.out
	$(GO) test ./internal/experiments/ \
		-run xxx -bench 'BenchmarkPrefetchSweep' -benchtime 1x \
		>> bench.out
	$(GO) run ./cmd/mpgraph-bench -in bench.out -o BENCH_small.json
	rm -f bench.out

# bench-batch is the batched-tier smoke: run the OperateBatch{8,64}
# float/int8 pairs once through mpgraph-bench (DESIGN.md §11). CI runs this
# with -benchtime 1x and uploads the report; the committed BENCH_small.json
# carries the 300x numbers via `make bench`.
BENCH_BATCH_TIME ?= 1x
bench-batch:
	$(GO) test ./internal/models/ \
		-run xxx -bench 'BenchmarkOperateBatch' -benchtime $(BENCH_BATCH_TIME) \
		> bench-batch.out
	$(GO) run ./cmd/mpgraph-bench -in bench-batch.out -o BENCH_batch.json
	rm -f bench-batch.out

# bench-compare is the perf-regression gate: rerun the Operate benchmarks
# and fail if any fast-path benchmark is >15% slower in ns/op — or gains a
# single allocation — against the committed BENCH_small.json. On a machine
# that differs from the one the baseline was measured on, the ns/op check is
# skipped (with a warning) and only allocation gains fail.
bench-compare:
	$(GO) test ./internal/prefetch/ ./internal/core/ ./internal/models/ \
		-run xxx -bench 'BenchmarkOperate|BenchmarkSuiteSave' -benchtime 300x -count 6 \
		> bench-new.out
	$(GO) run ./cmd/mpgraph-bench -in bench-new.out -o BENCH_new.json
	$(GO) run ./cmd/mpgraph-bench -compare BENCH_small.json BENCH_new.json
	rm -f bench-new.out BENCH_new.json

# faultinject is the robustness gate (DESIGN.md §9): the resilience package
# suite plus the fault-armed pipeline tests — cell retry after injected
# failures, crash-resume byte-identity, checkpoint corruption handling, and
# guarded-prefetcher degradation. The guarded-sweep test exports its
# degradation event log to degrade-events.log (CI uploads it as an artifact).
faultinject:
	$(GO) test -count=1 ./internal/resilience/
	MPGRAPH_DEGRADE_LOG=$(CURDIR)/degrade-events.log $(GO) test -count=1 \
		./internal/prefetch/ ./internal/experiments/ \
		-run 'TestGuarded|TestCellRetry|TestCrashResume|TestForEachIndexRecovers|TestCheckpoint'

# serve-smoke is the serving-daemon gate (DESIGN.md §12): boot mpgraph-serve
# on a tiny suite with session faults armed, drive 200 closed-loop loadgen
# sessions, SIGTERM, and verify a clean drain plus the goroutine leak-check.
# The degradation log lands in serve-degrade.log (CI uploads it).
serve-smoke:
	$(GO) build -o bin/mpgraph-serve ./cmd/mpgraph-serve
	$(GO) build -o bin/mpgraph-loadgen ./cmd/mpgraph-loadgen
	./scripts/serve_smoke.sh

ci: build lint vet-fix-check test race
