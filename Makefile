# Tier-1 is one command: `make` runs build, the static-analysis gate, and
# the test suite — the same three steps CI runs (.github/workflows/ci.yml).

GO ?= go

.PHONY: all build vet lint test race ci

all: build lint test

build:
	$(GO) build ./...

# lint runs the full static-analysis gate: the standard `go vet` passes
# (delegated by mpgraph-vet) plus the five MPGraph analyzers — seededrand,
# errdrop, floateq, panicpolicy, addrhelpers. See DESIGN.md §7.
lint:
	$(GO) run ./cmd/mpgraph-vet ./...

# vet runs only the standard passes (lint is a superset).
vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# race is the determinism/concurrency gate. The heavy experiment tests
# shrink themselves under the detector (see experiments/race_on_test.go);
# the timeout covers the ~10x instrumentation slowdown on model training.
race:
	$(GO) test -race -timeout 30m ./...

ci: build lint test race
