package frameworks

import (
	"math"
	"testing"

	"mpgraph/internal/graph"
	"mpgraph/internal/trace"
)

func testGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g, err := graph.GenerateRMAT(graph.DefaultRMAT(9, 21))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func smallOpts() Options {
	return Options{Cores: 4, MaxIterations: 6, Seed: 1, PartitionSize: 128}
}

// referenceBFS computes hop levels by queue BFS over out-edges.
func referenceBFS(g *graph.Graph, src uint32) []float64 {
	level := make([]float64, g.NumVertices)
	for i := range level {
		level[i] = -1
	}
	level[src] = 0
	queue := []uint32{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, u := range g.OutNeighbors(v) {
			if level[u] < 0 {
				level[u] = level[v] + 1
				queue = append(queue, u)
			}
		}
	}
	return level
}

// referenceMinLabel computes the fixpoint of min-label propagation along
// directed edges (the semantics all three frameworks implement for CC).
func referenceMinLabel(g *graph.Graph) []float64 {
	label := make([]float64, g.NumVertices)
	for i := range label {
		label[i] = float64(i)
	}
	for changed := true; changed; {
		changed = false
		for v := uint32(0); int(v) < g.NumVertices; v++ {
			for _, u := range g.OutNeighbors(v) {
				if label[v] < label[u] {
					label[u] = label[v]
					changed = true
				}
			}
		}
	}
	return label
}

// referenceSSSP is Dijkstra-free Bellman-Ford to full fixpoint.
func referenceSSSP(g *graph.Graph, src uint32) []float64 {
	dist := make([]float64, g.NumVertices)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[src] = 0
	for changed := true; changed; {
		changed = false
		for v := uint32(0); int(v) < g.NumVertices; v++ {
			if math.IsInf(dist[v], 1) {
				continue
			}
			ws := g.OutWeightsOf(v)
			for j, u := range g.OutNeighbors(v) {
				if d := dist[v] + float64(ws[j]); d < dist[u] {
					dist[u] = d
					changed = true
				}
			}
		}
	}
	return dist
}

func TestFrameworkRegistry(t *testing.T) {
	if len(All()) != 3 {
		t.Fatal("want 3 frameworks")
	}
	for _, name := range []string{"gpop", "xstream", "powergraph"} {
		f, err := ByName(name)
		if err != nil || f.Name() != name {
			t.Fatalf("ByName(%q) failed: %v", name, err)
		}
	}
	if _, err := ByName("spark"); err == nil {
		t.Fatal("want error for unknown framework")
	}
	gp, _ := ByName("gpop")
	if gp.NumPhases() != 2 || len(gp.PhaseNames()) != 2 {
		t.Fatal("gpop must have 2 phases")
	}
	pg, _ := ByName("powergraph")
	if pg.NumPhases() != 3 || len(pg.PhaseNames()) != 3 {
		t.Fatal("powergraph must have 3 phases")
	}
}

func TestUnsupportedApp(t *testing.T) {
	g := testGraph(t)
	if _, _, err := NewGPOP().Run(g, TC, smallOpts()); err == nil {
		t.Fatal("gpop must reject tc")
	}
	if _, _, err := NewXStream().Run(g, TC, smallOpts()); err == nil {
		t.Fatal("xstream must reject tc")
	}
	if _, _, err := NewPowerGraph().Run(g, BFS, smallOpts()); err == nil {
		t.Fatal("powergraph must reject bfs")
	}
	if _, _, err := NewGPOP().Run(g, App("nope"), smallOpts()); err == nil {
		t.Fatal("unknown app must error")
	}
}

// Each framework must compute the same (correct) BFS levels as a reference
// queue BFS, proving the execution models really run the algorithm.
func TestBFSCorrectness(t *testing.T) {
	g := testGraph(t)
	src := pickSource(g)
	want := referenceBFS(g, src)
	opt := smallOpts()
	opt.MaxIterations = 50 // run to completion
	for _, f := range []Framework{NewGPOP(), NewXStream()} {
		_, res, err := f.Run(g, BFS, opt)
		if err != nil {
			t.Fatalf("%s: %v", f.Name(), err)
		}
		if !res.Converged {
			t.Fatalf("%s: BFS did not converge in 50 iters", f.Name())
		}
		for v := range want {
			if res.Values[v] != want[v] {
				t.Fatalf("%s: level[%d] = %v, want %v", f.Name(), v, res.Values[v], want[v])
			}
		}
	}
}

func TestCCCorrectness(t *testing.T) {
	g := testGraph(t)
	want := referenceMinLabel(g)
	opt := smallOpts()
	opt.MaxIterations = 200
	for _, f := range All() {
		if !supportsApp(f, CC) {
			continue
		}
		_, res, err := f.Run(g, CC, opt)
		if err != nil {
			t.Fatalf("%s: %v", f.Name(), err)
		}
		if !res.Converged {
			t.Fatalf("%s: CC did not converge", f.Name())
		}
		for v := range want {
			if res.Values[v] != want[v] {
				t.Fatalf("%s: label[%d] = %v, want %v", f.Name(), v, res.Values[v], want[v])
			}
		}
	}
}

func TestSSSPCorrectness(t *testing.T) {
	g := testGraph(t)
	src := pickSource(g)
	want := referenceSSSP(g, src)
	opt := smallOpts()
	opt.MaxIterations = 200
	for _, f := range All() {
		if !supportsApp(f, SSSP) {
			continue
		}
		_, res, err := f.Run(g, SSSP, opt)
		if err != nil {
			t.Fatalf("%s: %v", f.Name(), err)
		}
		if !res.Converged {
			t.Fatalf("%s: SSSP did not converge", f.Name())
		}
		for v := range want {
			if math.Abs(res.Values[v]-want[v]) > 1e-6 {
				t.Fatalf("%s: dist[%d] = %v, want %v", f.Name(), v, res.Values[v], want[v])
			}
		}
	}
}

func TestPageRankProperties(t *testing.T) {
	g := testGraph(t)
	opt := smallOpts()
	opt.MaxIterations = 11
	for _, f := range All() {
		_, res, err := f.Run(g, PR, opt)
		if err != nil {
			t.Fatalf("%s: %v", f.Name(), err)
		}
		if res.Iterations != 11 {
			t.Fatalf("%s: PR ran %d iterations, want 11", f.Name(), res.Iterations)
		}
		// Ranks are positive and the floor is 0.15/N.
		floor := 0.15 / float64(g.NumVertices)
		for v, r := range res.Values {
			if r < floor-1e-12 {
				t.Fatalf("%s: rank[%d] = %g below floor %g", f.Name(), v, r, floor)
			}
		}
	}
}

// PageRank must agree across frameworks: same algorithm, different
// execution orders.
func TestPageRankCrossFramework(t *testing.T) {
	g := testGraph(t)
	opt := smallOpts()
	opt.MaxIterations = 8
	var ref []float64
	for _, f := range All() {
		_, res, err := f.Run(g, PR, opt)
		if err != nil {
			t.Fatalf("%s: %v", f.Name(), err)
		}
		if ref == nil {
			ref = res.Values
			continue
		}
		for v := range ref {
			if math.Abs(ref[v]-res.Values[v]) > 1e-9 {
				t.Fatalf("%s: rank[%d] = %g, ref %g", f.Name(), v, res.Values[v], ref[v])
			}
		}
	}
}

func TestTriangleCountCorrectness(t *testing.T) {
	g, err := graph.GenerateRMAT(graph.DefaultRMAT(7, 5))
	if err != nil {
		t.Fatal(err)
	}
	// Brute-force count with the same definition: unique edges (v,u) with
	// u>v, unique common out-neighbours w>u.
	want := 0.0
	for v := uint32(0); int(v) < g.NumVertices; v++ {
		nvSet := map[uint32]bool{}
		for _, x := range g.OutNeighbors(v) {
			nvSet[x] = true
		}
		seenU := map[uint32]bool{}
		for _, u := range g.OutNeighbors(v) {
			if u <= v || seenU[u] {
				continue
			}
			seenU[u] = true
			seenW := map[uint32]bool{}
			for _, w := range g.OutNeighbors(u) {
				if w <= u || seenW[w] {
					continue
				}
				seenW[w] = true
				if nvSet[w] {
					want++
				}
			}
		}
	}
	opt := smallOpts()
	opt.MaxIterations = 2
	_, res, err := NewPowerGraph().Run(g, TC, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Values[0] != want {
		t.Fatalf("TC = %v, want %v", res.Values[0], want)
	}
}

// Traces must be structurally valid and exhibit the properties the models
// rely on: phase labels alternate at barriers, PCs cluster by phase, and
// multiple cores interleave.
func TestTraceStructure(t *testing.T) {
	g := testGraph(t)
	for _, f := range All() {
		app := PR
		tr, res, err := f.Run(g, app, smallOpts())
		if err != nil {
			t.Fatalf("%s: %v", f.Name(), err)
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("%s: %v", f.Name(), err)
		}
		if tr.NumIterations() != res.Iterations {
			t.Fatalf("%s: trace has %d iterations, result says %d", f.Name(), tr.NumIterations(), res.Iterations)
		}
		if tr.NumPhases != f.NumPhases() {
			t.Fatalf("%s: NumPhases mismatch", f.Name())
		}
		// Phase labels must cycle 0..NumPhases-1 within each iteration.
		transitions := tr.PhaseTransitions()
		if len(transitions) < res.Iterations*(f.NumPhases()-1) {
			t.Fatalf("%s: too few phase transitions: %d", f.Name(), len(transitions))
		}
		// PC sets must be disjoint between phases (Fig. 2b property).
		pcPhases := map[uint64]map[uint8]bool{}
		for _, a := range tr.Accesses {
			if pcPhases[a.PC] == nil {
				pcPhases[a.PC] = map[uint8]bool{}
			}
			pcPhases[a.PC][a.Phase] = true
		}
		for pc, phases := range pcPhases {
			if len(phases) != 1 {
				t.Fatalf("%s: PC %#x appears in %d phases", f.Name(), pc, len(phases))
			}
		}
		// All cores participate.
		cores := map[uint8]bool{}
		for _, a := range tr.Accesses {
			cores[a.Core] = true
		}
		if len(cores) != 4 {
			t.Fatalf("%s: %d cores in trace, want 4", f.Name(), len(cores))
		}
	}
}

// The paper's Fig. 3: GPOP scatter makes wide page jumps (bins spread across
// partitions) while staying sequential within streams.
func TestGPOPPageJumps(t *testing.T) {
	g := testGraph(t)
	tr, _, err := NewGPOP().Run(g, PR, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	wide := 0
	for i := 1; i < len(tr.Accesses); i++ {
		a, b := tr.Accesses[i-1], tr.Accesses[i]
		if a.Core != b.Core {
			continue
		}
		pj := int64(trace.Page(b.Addr)) - int64(trace.Page(a.Addr))
		if pj > 8 || pj < -8 {
			wide++
		}
	}
	if wide < len(tr.Accesses)/100 {
		t.Fatalf("expected wide page jumps, got %d of %d", wide, len(tr.Accesses))
	}
}

// Distinct phases must have distinct dominant access regions so that
// phase-specific models have something to specialise on.
func TestPhasePatternDiversity(t *testing.T) {
	g := testGraph(t)
	tr, _, err := NewGPOP().Run(g, PR, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	pagesByPhase := map[uint8]map[uint64]bool{}
	for _, a := range tr.Accesses {
		if pagesByPhase[a.Phase] == nil {
			pagesByPhase[a.Phase] = map[uint64]bool{}
		}
		pagesByPhase[a.Phase][trace.Page(a.Addr)] = true
	}
	if len(pagesByPhase) != 2 {
		t.Fatalf("want 2 phases, got %d", len(pagesByPhase))
	}
}

func TestDeterministicTraces(t *testing.T) {
	g := testGraph(t)
	a, _, err := NewXStream().Run(g, CC, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := NewXStream().Run(g, CC, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Accesses) != len(b.Accesses) {
		t.Fatal("same seed, different trace length")
	}
	for i := range a.Accesses {
		if a.Accesses[i] != b.Accesses[i] {
			t.Fatalf("access %d differs across identical runs", i)
		}
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Cores != 4 || o.MaxIterations != 11 || o.PartitionSize != 2048 || o.MeanBurst != 6 {
		t.Fatalf("bad defaults: %+v", o)
	}
}
