package frameworks

import (
	"fmt"

	"mpgraph/internal/graph"
	"mpgraph/internal/trace"
)

// powergraph models the PowerGraph framework (Gonzalez et al., OSDI 2012):
// the Gather-Apply-Scatter (GAS) abstraction with three barrier-synchronised
// phases per super-step. Gather pulls values from in-neighbours of signalled
// vertices (random reads across the whole vertex array via the in-CSR),
// Apply commits accumulators sequentially, Scatter walks out-edges of changed
// vertices and signals their destinations (random bitmap writes).
//
// Triangle counting (TC) — PowerGraph-only in the paper's benchmark set — is
// implemented as sorted-adjacency intersection inside Gather.
type powergraph struct{}

// NewPowerGraph returns the PowerGraph execution model.
func NewPowerGraph() Framework { return &powergraph{} }

func (f *powergraph) Name() string         { return "powergraph" }
func (f *powergraph) NumPhases() int       { return 3 }
func (f *powergraph) PhaseNames() []string { return []string{"gather", "apply", "scatter"} }
func (f *powergraph) Apps() []App          { return []App{CC, PR, SSSP, TC} }

func (f *powergraph) Run(g *graph.Graph, app App, opt Options) (*trace.Trace, *Result, error) {
	opt = opt.withDefaults()
	if !supportsApp(f, app) {
		return nil, nil, fmt.Errorf("frameworks: powergraph does not implement %q", app)
	}
	if app == TC {
		return f.runTriangleCount(g, opt)
	}
	prog, err := newProgram(app, g)
	if err != nil {
		return nil, nil, err
	}

	n := g.NumVertices
	as := trace.NewAddressSpace(0x3000_0000)
	vvals := as.Alloc("pg.vvals", uint64(n)*8)
	inOffsets := as.Alloc("pg.inoffsets", uint64(n+1)*8)
	inEdges := as.Alloc("pg.inedges", uint64(g.NumEdges())*8)
	outOffsets := as.Alloc("pg.outoffsets", uint64(n+1)*8)
	outEdges := as.Alloc("pg.outedges", uint64(g.NumEdges())*8)
	acc := as.Alloc("pg.acc", uint64(n)*8)
	activeReg := as.Alloc("pg.active", uint64(n/8+1))

	em := newEmitter(opt, f.NumPhases(), app, f.Name())

	// signalled[v]: v runs Gather+Apply this super-step. Initially the
	// out-neighbourhood of the initially-active set (those vertices'
	// initial values are the first information to propagate).
	signalled := make([]bool, n)
	for v := uint32(0); int(v) < n; v++ {
		if prog.active(v) {
			for _, u := range g.OutNeighbors(v) {
				signalled[u] = true
			}
		}
	}
	nextSignalled := make([]bool, n)

	res := &Result{App: app, Framework: f.Name()}
	for iter := 0; iter < opt.MaxIterations; iter++ {
		anySignalled := false
		for _, s := range signalled {
			if s {
				anySignalled = true
				break
			}
		}
		if !anySignalled {
			break
		}
		em.beginIteration()

		// ---- Gather phase: pull from active in-neighbours ----
		em.setPhase(0)
		for v := uint32(0); int(v) < n; v++ {
			if !signalled[v] {
				continue
			}
			core := ownerCore(int(v), opt.Cores)
			em.read(core, inOffsets.Elem(int(v), 8), "pg.gather.readOffset")
			ws := g.InWeightsOf(v)
			edgeBase := int(g.InIndex[v])
			for j, u := range g.InNeighbors(v) {
				em.read(core, inEdges.Elem(edgeBase+j, 8), "pg.gather.readEdge")
				if j%4 == 0 {
					em.read(core, activeReg.Elem(int(u)/8, 1), "pg.gather.checkActive")
				}
				if !prog.active(u) {
					continue
				}
				// Random read across the whole vertex array — the wide
				// page-jump pattern of Fig. 3.
				em.read(core, vvals.Elem(int(u), 8), "pg.gather.readNbr")
				prog.accumulate(v, prog.propagate(u, ws[j]))
			}
			em.write(core, acc.Elem(int(v), 8), "pg.gather.writeAcc")
		}
		em.barrier()

		// ---- Apply phase ----
		em.setPhase(1)
		changed := make([]uint32, 0, n/8)
		for v := uint32(0); int(v) < n; v++ {
			if !signalled[v] {
				continue
			}
			core := ownerCore(int(v), opt.Cores)
			em.read(core, acc.Elem(int(v), 8), "pg.apply.readAcc")
			if prog.apply(v) {
				em.write(core, vvals.Elem(int(v), 8), "pg.apply.writeVertex")
				changed = append(changed, v)
			}
		}
		em.barrier()

		// ---- Scatter phase: signal out-neighbours of changed vertices ----
		em.setPhase(2)
		for i := range nextSignalled {
			nextSignalled[i] = false
		}
		for _, v := range changed {
			core := ownerCore(int(v), opt.Cores)
			em.read(core, outOffsets.Elem(int(v), 8), "pg.scatter.readOffset")
			edgeBase := int(g.OutIndex[v])
			for j, u := range g.OutNeighbors(v) {
				em.read(core, outEdges.Elem(edgeBase+j, 8), "pg.scatter.readEdge")
				em.write(core, activeReg.Elem(int(u)/8, 1), "pg.scatter.signal")
				nextSignalled[u] = true
			}
		}
		em.barrier()

		signalled, nextSignalled = nextSignalled, signalled
		res.Iterations++
		if prog.endIteration() {
			res.Converged = true
			break
		}
	}
	res.Values = prog.output()
	return em.out, res, nil
}

// runTriangleCount counts triangles in the undirected view of g's out-edges
// via sorted-adjacency intersection, repeated each iteration (analytics
// reruns), emitting the GAS-shaped access pattern: Gather intersects
// adjacency lists (random cross-list reads), Apply writes per-vertex counts,
// Scatter is a no-op signalling pass over counted vertices.
func (f *powergraph) runTriangleCount(g *graph.Graph, opt Options) (*trace.Trace, *Result, error) {
	n := g.NumVertices
	as := trace.NewAddressSpace(0x3000_0000)
	counts := as.Alloc("pg.counts", uint64(n)*8)
	outOffsets := as.Alloc("pg.outoffsets", uint64(n+1)*8)
	outEdges := as.Alloc("pg.outedges", uint64(g.NumEdges())*8)
	acc := as.Alloc("pg.acc", uint64(n)*8)

	em := newEmitter(opt, f.NumPhases(), TC, f.Name())
	res := &Result{App: TC, Framework: f.Name()}
	var total float64
	perVertex := make([]float64, n)

	for iter := 0; iter < opt.MaxIterations; iter++ {
		em.beginIteration()
		total = 0
		for i := range perVertex {
			perVertex[i] = 0
		}

		// ---- Gather: adjacency intersections ----
		em.setPhase(0)
		for v := uint32(0); int(v) < n; v++ {
			core := ownerCore(int(v), opt.Cores)
			nv := g.OutNeighbors(v)
			if len(nv) == 0 {
				continue
			}
			em.read(core, outOffsets.Elem(int(v), 8), "pg.tc.readOffsetV")
			vBase := int(g.OutIndex[v])
			for j, u := range nv {
				if u <= v || (j > 0 && nv[j-1] == u) {
					continue // skip back-edges and duplicate edges
				}
				em.read(core, outEdges.Elem(vBase+j, 8), "pg.tc.readEdge")
				em.read(core, outOffsets.Elem(int(u), 8), "pg.tc.readOffsetU")
				nu := g.OutNeighbors(u)
				uBase := int(g.OutIndex[u])
				// Sorted merge intersection over deduplicated runs; count
				// common neighbours w > u so each triangle counts once.
				a, b := 0, 0
				for a < len(nv) && b < len(nu) {
					if a > 0 && nv[a] == nv[a-1] {
						a++
						continue
					}
					if b > 0 && nu[b] == nu[b-1] {
						b++
						continue
					}
					// Model the streaming reads of both lists; sample every
					// other step to keep trace volume proportional.
					if (a+b)%2 == 0 {
						em.read(core, outEdges.Elem(vBase+a, 8), "pg.tc.intersectV")
						em.read(core, outEdges.Elem(uBase+b, 8), "pg.tc.intersectU")
					}
					switch {
					case nv[a] < nu[b]:
						a++
					case nv[a] > nu[b]:
						b++
					default:
						if nv[a] > u {
							perVertex[v]++
							total++
						}
						a++
						b++
					}
				}
			}
		}
		em.barrier()

		// ---- Apply: commit counts ----
		em.setPhase(1)
		for v := 0; v < n; v++ {
			core := ownerCore(v, opt.Cores)
			em.read(core, acc.Elem(v, 8), "pg.tc.readAcc")
			em.write(core, counts.Elem(v, 8), "pg.tc.writeCount")
		}
		em.barrier()

		// ---- Scatter: signalling sweep (no new activations for TC) ----
		em.setPhase(2)
		for v := 0; v < n; v += 8 {
			core := ownerCore(v, opt.Cores)
			em.read(core, counts.Elem(v, 8), "pg.tc.scanCount")
		}
		em.barrier()
		res.Iterations++
	}
	res.Converged = true
	res.Values = []float64{total}
	return em.out, res, nil
}
