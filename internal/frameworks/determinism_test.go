package frameworks

import (
	"bytes"
	"encoding/binary"
	"testing"

	"mpgraph/internal/graph"
	"mpgraph/internal/trace"
)

// TestRMATTraceDeterminism is the end-to-end guard behind the seededrand
// analyzer: the entire trace pipeline — R-MAT generation, framework
// execution, multi-core interleaving — must be a pure function of its
// explicit seeds. It generates the same R-MAT workload twice and asserts
// the resulting traces and their summaries are byte-identical.
func TestRMATTraceDeterminism(t *testing.T) {
	generate := func() ([]byte, []byte) {
		g, err := graph.GenerateRMAT(graph.DefaultRMAT(9, 21))
		if err != nil {
			t.Fatal(err)
		}
		fw, err := ByName("gpop")
		if err != nil {
			t.Fatal(err)
		}
		tr, _, err := fw.Run(g, PR, smallOpts())
		if err != nil {
			t.Fatal(err)
		}

		// Serialise every access field so any divergence — address,
		// ordering, interleaving, phase labelling — flips a byte.
		var raw bytes.Buffer
		for _, a := range tr.Accesses {
			binary.Write(&raw, binary.LittleEndian, a.Addr)
			binary.Write(&raw, binary.LittleEndian, a.PC)
			raw.WriteByte(a.Core)
			raw.WriteByte(a.Phase)
			raw.WriteByte(a.Gap)
			if a.Write {
				raw.WriteByte(1)
			} else {
				raw.WriteByte(0)
			}
		}

		var stats bytes.Buffer
		trace.Summarize(tr).Print(&stats)
		return raw.Bytes(), stats.Bytes()
	}

	raw1, stats1 := generate()
	raw2, stats2 := generate()
	if !bytes.Equal(raw1, raw2) {
		t.Fatalf("same seed produced different traces (%d vs %d bytes)", len(raw1), len(raw2))
	}
	if !bytes.Equal(stats1, stats2) {
		t.Fatalf("same seed produced different stats:\n--- run 1\n%s\n--- run 2\n%s", stats1, stats2)
	}
	if len(raw1) == 0 {
		t.Fatal("empty trace")
	}
}
