// Package frameworks re-implements the three graph-processing frameworks the
// MPGraph paper evaluates — GPOP (partition-centric Scatter-Gather), X-Stream
// (edge-centric streaming Scatter-Gather), and PowerGraph (GAS) — as
// trace-generating execution models. Each framework actually executes the
// benchmark algorithms (BFS, CC, PR, SSSP, TC) over a graph.Graph and emits
// the memory reference stream its data-structure layout induces: every load
// and store carries a virtual address inside a realistically laid-out address
// space, a program counter identifying the static code site, the issuing
// core, and the ground-truth phase label at that point.
//
// This package is the substitution for "framework binaries under Intel Pin +
// ChampSim trace extraction" (DESIGN.md §2): what the prefetcher models see
// is the (address, PC) stream, and its statistical structure — per-phase
// pattern shifts, PC↔phase clustering, wide page jumps from hub vertices,
// multi-core interleaving — is produced here by the same algorithms over the
// same data layouts the real frameworks use.
package frameworks

import (
	"fmt"
	"math/rand"

	"mpgraph/internal/graph"
	"mpgraph/internal/trace"
)

// App names a benchmark application.
type App string

// Benchmark applications (Table 1).
const (
	BFS  App = "bfs"
	CC   App = "cc"
	PR   App = "pr"
	SSSP App = "sssp"
	TC   App = "tc"
)

// Options controls a framework run.
type Options struct {
	// Cores is the number of simulated cores sharing the LLC (default 4).
	Cores int
	// MaxIterations bounds the number of super-steps (default 11: the paper
	// trains on iteration 1 and tests on the next 10).
	MaxIterations int
	// Seed drives every stochastic choice (interleaving, gaps, sources).
	Seed int64
	// PartitionSize is the vertices-per-partition knob for GPOP/X-Stream
	// (default 2048, sized so one partition's state fits in L2).
	PartitionSize int
	// MeanBurst is the mean per-core run length in the interleaved LLC
	// stream (default 6).
	MeanBurst int
}

func (o Options) withDefaults() Options {
	if o.Cores <= 0 {
		o.Cores = 4
	}
	if o.MaxIterations <= 0 {
		o.MaxIterations = 11
	}
	if o.PartitionSize <= 0 {
		o.PartitionSize = 2048
	}
	if o.MeanBurst <= 0 {
		o.MeanBurst = 6
	}
	return o
}

// Result carries algorithm output so tests can check that the execution
// models compute correct answers (the traces are only credible if the
// algorithms actually run).
type Result struct {
	App        App
	Framework  string
	Iterations int
	Converged  bool
	// Values is the per-vertex result: PageRank score, BFS level, CC label,
	// SSSP distance. For TC, Values[0] holds the triangle count.
	Values []float64
}

// Framework generates traces by executing applications.
type Framework interface {
	// Name returns the framework identifier ("gpop", "xstream", "powergraph").
	Name() string
	// NumPhases is the phase count per iteration (Table 1).
	NumPhases() int
	// PhaseNames returns the phase labels in execution order.
	PhaseNames() []string
	// Apps lists the applications the framework implements (Table 1).
	Apps() []App
	// Run executes app on g and returns the interleaved LLC-bound access
	// trace plus the algorithm result.
	Run(g *graph.Graph, app App, opt Options) (*trace.Trace, *Result, error)
}

// All returns the three frameworks in Table 1 order.
func All() []Framework {
	return []Framework{NewGPOP(), NewXStream(), NewPowerGraph()}
}

// ByName looks a framework up by its Name.
func ByName(name string) (Framework, error) {
	for _, f := range All() {
		if f.Name() == name {
			return f, nil
		}
	}
	return nil, fmt.Errorf("frameworks: unknown framework %q", name)
}

// supportsApp reports whether app is in the framework's benchmark set.
func supportsApp(f Framework, app App) bool {
	for _, a := range f.Apps() {
		if a == app {
			return true
		}
	}
	return false
}

// emitter collects per-core access streams for one phase and flushes them,
// interleaved, into the growing trace at each barrier.
type emitter struct {
	reg     *trace.PCRegistry
	rng     *rand.Rand
	cores   int
	burst   int
	phase   uint8
	streams [][]trace.Access
	out     *trace.Trace
	seq     int64 // interleave seed sequencer
}

func newEmitter(opt Options, numPhases int, app App, fw string) *emitter {
	return &emitter{
		reg:     trace.NewPCRegistry(0x400000),
		rng:     rand.New(rand.NewSource(opt.Seed)),
		cores:   opt.Cores,
		burst:   opt.MeanBurst,
		streams: make([][]trace.Access, opt.Cores),
		out:     &trace.Trace{NumPhases: numPhases, App: string(app), Framework: fw},
		seq:     opt.Seed,
	}
}

// beginIteration records a super-step boundary.
func (e *emitter) beginIteration() {
	e.out.IterationStarts = append(e.out.IterationStarts, len(e.out.Accesses))
}

// setPhase switches the ground-truth phase label for subsequent accesses.
func (e *emitter) setPhase(p uint8) { e.phase = p }

// read emits a load on core at addr from the named code site.
func (e *emitter) read(core int, addr uint64, site string) {
	e.emit(core, addr, site, false)
}

// write emits a store on core at addr from the named code site.
func (e *emitter) write(core int, addr uint64, site string) {
	e.emit(core, addr, site, true)
}

func (e *emitter) emit(core int, addr uint64, site string, isWrite bool) {
	// Gap models the non-memory instructions between this access and the
	// core's previous one; graph kernels are memory bound, so it is small.
	gap := uint8(1 + e.rng.Intn(6))
	e.streams[core] = append(e.streams[core], trace.Access{
		Addr:  addr,
		PC:    e.reg.PC(site),
		Phase: e.phase,
		Gap:   gap,
		Write: isWrite,
	})
}

// barrier interleaves the per-core streams gathered since the last barrier
// and appends them to the trace, modelling the global synchronisation that
// ends each phase.
func (e *emitter) barrier() {
	e.seq++
	merged := trace.Interleave(e.streams, e.burst, e.seq)
	e.out.Accesses = append(e.out.Accesses, merged...)
	for c := range e.streams {
		e.streams[c] = e.streams[c][:0]
	}
}

// ownerCore spreads work units across cores.
func ownerCore(unit, cores int) int { return unit % cores }
