package frameworks

import (
	"fmt"
	"math/rand"

	"mpgraph/internal/graph"
	"mpgraph/internal/trace"
)

// xstream models the X-Stream framework (Roy et al., SOSP 2013):
// edge-centric Scatter-Gather over streaming partitions. Scatter streams the
// entire unordered edge list sequentially and, for each edge with an active
// source, reads the source vertex value (a random access across the whole
// vertex array — X-Stream's signature pattern) and appends an update to the
// destination's streaming partition. Gather streams each partition's updates
// and writes vertex state confined to that partition.
//
// Characteristic access pattern: long perfectly-sequential edge/update
// streams punctuated by uniformly-random vertex reads — very different from
// GPOP's partition-local traffic, which is what makes per-framework phase
// models worthwhile.
type xstream struct{}

// NewXStream returns the X-Stream execution model.
func NewXStream() Framework { return &xstream{} }

func (f *xstream) Name() string         { return "xstream" }
func (f *xstream) NumPhases() int       { return 2 }
func (f *xstream) PhaseNames() []string { return []string{"scatter", "gather"} }
func (f *xstream) Apps() []App          { return []App{BFS, CC, PR, SSSP} }

type xsUpdate struct {
	dst uint32
	val float64
}

func (f *xstream) Run(g *graph.Graph, app App, opt Options) (*trace.Trace, *Result, error) {
	opt = opt.withDefaults()
	if !supportsApp(f, app) {
		return nil, nil, fmt.Errorf("frameworks: xstream does not implement %q", app)
	}
	prog, err := newProgram(app, g)
	if err != nil {
		return nil, nil, err
	}

	n := g.NumVertices
	q := opt.PartitionSize
	numParts := (n + q - 1) / q
	partOf := func(v uint32) int { return int(v) / q }

	// X-Stream stores edges in input order; flatten the CSR and shuffle
	// deterministically so source reads are scattered like a raw edge list.
	type xsEdge struct {
		src, dst uint32
		w        float32
	}
	edgeList := make([]xsEdge, 0, g.NumEdges())
	for v := uint32(0); int(v) < n; v++ {
		ws := g.OutWeightsOf(v)
		for j, u := range g.OutNeighbors(v) {
			edgeList = append(edgeList, xsEdge{src: v, dst: u, w: ws[j]})
		}
	}
	rng := rand.New(rand.NewSource(opt.Seed + 0x517))
	rng.Shuffle(len(edgeList), func(i, j int) { edgeList[i], edgeList[j] = edgeList[j], edgeList[i] })

	as := trace.NewAddressSpace(0x2000_0000)
	vvals := as.Alloc("xs.vvals", uint64(n)*8)
	edges := as.Alloc("xs.edges", uint64(len(edgeList))*16)
	acc := as.Alloc("xs.acc", uint64(n)*8)
	updCap := 2*g.NumEdges()/numParts + 64
	updates := as.Alloc("xs.updates", uint64(numParts)*uint64(updCap)*16)
	updAddr := func(p, k int) uint64 {
		return updates.Base + uint64(p)*uint64(updCap)*16 + uint64(k%updCap)*16
	}

	// Edge ranges are striped across cores: each core streams a contiguous
	// chunk of the edge list.
	chunk := (len(edgeList) + opt.Cores - 1) / opt.Cores

	em := newEmitter(opt, f.NumPhases(), app, f.Name())
	updLists := make([][]xsUpdate, numParts)
	touched := make([]bool, n)

	res := &Result{App: app, Framework: f.Name()}
	for iter := 0; iter < opt.MaxIterations && prog.anyActive(); iter++ {
		em.beginIteration()

		// ---- Scatter phase: stream all edges ----
		em.setPhase(0)
		for c := 0; c < opt.Cores; c++ {
			lo := c * chunk
			hi := min(lo+chunk, len(edgeList))
			for i := lo; i < hi; i++ {
				e := edgeList[i]
				em.read(c, edges.Elem(i, 16), "xs.scatter.readEdge")
				if !prog.active(e.src) {
					continue
				}
				// Random read across the whole vertex array.
				em.read(c, vvals.Elem(int(e.src), 8), "xs.scatter.readSrc")
				val := prog.propagate(e.src, e.w)
				dp := partOf(e.dst)
				em.write(c, updAddr(dp, len(updLists[dp])), "xs.scatter.writeUpdate")
				updLists[dp] = append(updLists[dp], xsUpdate{dst: e.dst, val: val})
			}
		}
		em.barrier()

		// ---- Gather phase: stream each partition's updates ----
		em.setPhase(1)
		for p := 0; p < numParts; p++ {
			core := ownerCore(p, opt.Cores)
			for k, upd := range updLists[p] {
				em.read(core, updAddr(p, k), "xs.gather.readUpdate")
				prog.accumulate(upd.dst, upd.val)
				em.write(core, acc.Elem(int(upd.dst), 8), "xs.gather.accumulate")
				touched[upd.dst] = true
			}
			lo := p * q
			hi := min((p+1)*q, n)
			for v := lo; v < hi; v++ {
				if !touched[v] {
					continue
				}
				touched[v] = false
				em.read(core, acc.Elem(v, 8), "xs.gather.readAcc")
				if prog.apply(uint32(v)) {
					em.write(core, vvals.Elem(v, 8), "xs.gather.writeVertex")
				}
			}
			updLists[p] = updLists[p][:0]
		}
		em.barrier()

		res.Iterations++
		if prog.endIteration() {
			res.Converged = true
			break
		}
	}
	res.Values = prog.output()
	return em.out, res, nil
}
