package frameworks

import (
	"testing"

	"mpgraph/internal/graph"
)

func BenchmarkGPOPPageRankTrace(b *testing.B) {
	g, err := graph.GenerateRMAT(graph.DefaultRMAT(11, 1))
	if err != nil {
		b.Fatal(err)
	}
	opt := Options{MaxIterations: 2, Seed: 1, PartitionSize: 256}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := NewGPOP().Run(g, PR, opt); err != nil {
			b.Fatal(err)
		}
	}
}
