package frameworks

import (
	"fmt"

	"mpgraph/internal/graph"
	"mpgraph/internal/trace"
)

// gpop models the GPOP framework (Lakhotia et al., TOPC 2020):
// partition-centric Scatter-Gather with two barrier-synchronised phases.
// Vertices are divided into cache-sized partitions; Scatter streams a
// partition's vertices and out-edges and appends (dst,val) updates into
// per-destination-partition bins; Gather streams each partition's bin and
// applies updates to the partition's vertex values, which fit in cache.
//
// Characteristic access pattern: Scatter issues sequential vertex/edge/bin
// streams that hop between bin regions (inter-page jumps across partitions);
// Gather issues a sequential bin stream plus random-within-partition
// accumulator traffic.
type gpop struct{}

// NewGPOP returns the GPOP execution model.
func NewGPOP() Framework { return &gpop{} }

func (f *gpop) Name() string         { return "gpop" }
func (f *gpop) NumPhases() int       { return 2 }
func (f *gpop) PhaseNames() []string { return []string{"scatter", "gather"} }
func (f *gpop) Apps() []App          { return []App{BFS, CC, PR, SSSP} }

type gpopUpdate struct {
	dst uint32
	val float64
}

func (f *gpop) Run(g *graph.Graph, app App, opt Options) (*trace.Trace, *Result, error) {
	opt = opt.withDefaults()
	if !supportsApp(f, app) {
		return nil, nil, fmt.Errorf("frameworks: gpop does not implement %q", app)
	}
	prog, err := newProgram(app, g)
	if err != nil {
		return nil, nil, err
	}

	n := g.NumVertices
	q := opt.PartitionSize
	numParts := (n + q - 1) / q
	partOf := func(v uint32) int { return int(v) / q }

	as := trace.NewAddressSpace(0x1000_0000)
	vvals := as.Alloc("gpop.vvals", uint64(n)*8)
	offsets := as.Alloc("gpop.offsets", uint64(n+1)*8)
	edges := as.Alloc("gpop.edges", uint64(g.NumEdges())*8)
	acc := as.Alloc("gpop.acc", uint64(n)*8)
	frontierReg := as.Alloc("gpop.frontier", uint64(n/8+1))
	// Bins: one segment per destination partition. Capacity is generous;
	// addresses wrap within a segment on overflow (the Go-side lists keep
	// exact semantics, only the modelled addresses wrap).
	binCap := 2*g.NumEdges()/numParts + 64
	bins := as.Alloc("gpop.bins", uint64(numParts)*uint64(binCap)*16)
	binAddr := func(p, k int) uint64 {
		return bins.Base + uint64(p)*uint64(binCap)*16 + uint64(k%binCap)*16
	}

	em := newEmitter(opt, f.NumPhases(), app, f.Name())
	binLists := make([][]gpopUpdate, numParts)
	touched := make([]bool, n)

	res := &Result{App: app, Framework: f.Name()}
	for iter := 0; iter < opt.MaxIterations && prog.anyActive(); iter++ {
		em.beginIteration()

		// ---- Scatter phase ----
		em.setPhase(0)
		for p := 0; p < numParts; p++ {
			core := ownerCore(p, opt.Cores)
			lo := uint32(p * q)
			hi := uint32(min((p+1)*q, n))
			for v := lo; v < hi; v++ {
				if v%16 == 0 {
					em.read(core, frontierReg.Elem(int(v)/8, 1), "gpop.scatter.readFrontier")
				}
				if !prog.active(v) {
					continue
				}
				em.read(core, vvals.Elem(int(v), 8), "gpop.scatter.readVertex")
				em.read(core, offsets.Elem(int(v), 8), "gpop.scatter.readOffset")
				nbrs := g.OutNeighbors(v)
				ws := g.OutWeightsOf(v)
				edgeBase := int(g.OutIndex[v])
				for j, u := range nbrs {
					em.read(core, edges.Elem(edgeBase+j, 8), "gpop.scatter.readEdge")
					val := prog.propagate(v, ws[j])
					dp := partOf(u)
					em.write(core, binAddr(dp, len(binLists[dp])), "gpop.scatter.writeBin")
					binLists[dp] = append(binLists[dp], gpopUpdate{dst: u, val: val})
				}
			}
		}
		em.barrier()

		// ---- Gather phase (accumulate + apply) ----
		em.setPhase(1)
		for p := 0; p < numParts; p++ {
			core := ownerCore(p, opt.Cores)
			for k, upd := range binLists[p] {
				em.read(core, binAddr(p, k), "gpop.gather.readBin")
				prog.accumulate(upd.dst, upd.val)
				em.write(core, acc.Elem(int(upd.dst), 8), "gpop.gather.accumulate")
				touched[upd.dst] = true
			}
			lo := p * q
			hi := min((p+1)*q, n)
			for v := lo; v < hi; v++ {
				if !touched[v] {
					continue
				}
				touched[v] = false
				em.read(core, acc.Elem(v, 8), "gpop.gather.readAcc")
				if prog.apply(uint32(v)) {
					em.write(core, vvals.Elem(v, 8), "gpop.gather.writeVertex")
				}
			}
			binLists[p] = binLists[p][:0]
		}
		em.barrier()

		res.Iterations++
		if prog.endIteration() {
			res.Converged = true
			break
		}
	}
	res.Values = prog.output()
	return em.out, res, nil
}
