package frameworks

import (
	"fmt"
	"math"

	"mpgraph/internal/graph"
)

// vertexProgram captures the per-application semantics shared by all three
// execution models. Frameworks drive it: they decide *how* to iterate
// (partition-centric, edge-centric, GAS) and therefore which memory accesses
// occur; the program decides *what* values flow.
type vertexProgram interface {
	init(g *graph.Graph)
	// active reports whether v has an update to scatter this iteration.
	active(v uint32) bool
	// anyActive reports whether any vertex is active (frontier non-empty).
	anyActive() bool
	// propagate returns the value v sends along an edge of weight w.
	propagate(v uint32, w float32) float64
	// accumulate folds an incoming value into u's accumulator.
	accumulate(u uint32, val float64)
	// apply commits u's accumulator and reports whether u changed (and thus
	// becomes active next iteration).
	apply(u uint32) bool
	// endIteration swaps frontiers; it returns true when the algorithm has
	// converged and iteration may stop.
	endIteration() bool
	// output returns the per-vertex result vector.
	output() []float64
}

func newProgram(app App, g *graph.Graph) (vertexProgram, error) {
	var p vertexProgram
	switch app {
	case PR:
		p = &pagerankProgram{}
	case CC:
		p = &ccProgram{}
	case BFS:
		p = &bfsProgram{}
	case SSSP:
		p = &ssspProgram{}
	default:
		return nil, fmt.Errorf("frameworks: app %q has no vertex program", app)
	}
	p.init(g)
	return p, nil
}

// frontier is the shared active-set machinery.
type frontier struct {
	cur, next []bool
	curCount  int
	nextCount int
}

func (f *frontier) init(n int, allActive bool) {
	f.cur = make([]bool, n)
	f.next = make([]bool, n)
	f.curCount = 0
	if allActive {
		for i := range f.cur {
			f.cur[i] = true
		}
		f.curCount = n
	}
}

func (f *frontier) activate(v uint32) {
	if !f.next[v] {
		f.next[v] = true
		f.nextCount++
	}
}

func (f *frontier) swap() {
	f.cur, f.next = f.next, f.cur
	f.curCount = f.nextCount
	f.nextCount = 0
	for i := range f.next {
		f.next[i] = false
	}
}

// pagerankProgram implements synchronous PageRank with damping 0.85. Every
// vertex is active every iteration; convergence is total L1 rank movement.
type pagerankProgram struct {
	g       *graph.Graph
	rank    []float64
	acc     []float64
	outDeg  []float64
	delta   float64
	epsilon float64
}

func (p *pagerankProgram) init(g *graph.Graph) {
	n := g.NumVertices
	p.g = g
	p.rank = make([]float64, n)
	p.acc = make([]float64, n)
	p.outDeg = make([]float64, n)
	p.epsilon = 1e-7
	for v := 0; v < n; v++ {
		p.rank[v] = 1.0 / float64(n)
		d := g.OutDegree(uint32(v))
		if d == 0 {
			d = 1 // dangling vertices self-propagate
		}
		p.outDeg[v] = float64(d)
	}
}

func (p *pagerankProgram) active(uint32) bool { return true }
func (p *pagerankProgram) anyActive() bool    { return true }

func (p *pagerankProgram) propagate(v uint32, _ float32) float64 {
	return p.rank[v] / p.outDeg[v]
}

func (p *pagerankProgram) accumulate(u uint32, val float64) { p.acc[u] += val }

func (p *pagerankProgram) apply(u uint32) bool {
	n := float64(len(p.rank))
	nr := 0.15/n + 0.85*p.acc[u]
	p.delta += math.Abs(nr - p.rank[u])
	changed := math.Abs(nr-p.rank[u]) > p.epsilon
	p.rank[u] = nr
	p.acc[u] = 0
	return changed
}

func (p *pagerankProgram) endIteration() bool {
	d := p.delta
	p.delta = 0
	return d < p.epsilon*float64(len(p.rank))
}

func (p *pagerankProgram) output() []float64 { return p.rank }

// ccProgram is connected components by min-label propagation (directed
// edges treated as undirected by frameworks that materialise both
// adjacencies; label flows follow the framework's traversal direction).
type ccProgram struct {
	label []float64
	acc   []float64
	fr    frontier
}

func (p *ccProgram) init(g *graph.Graph) {
	n := g.NumVertices
	p.label = make([]float64, n)
	p.acc = make([]float64, n)
	for v := 0; v < n; v++ {
		p.label[v] = float64(v)
		p.acc[v] = math.Inf(1)
	}
	p.fr.init(n, true)
}

func (p *ccProgram) active(v uint32) bool { return p.fr.cur[v] }
func (p *ccProgram) anyActive() bool      { return p.fr.curCount > 0 }

func (p *ccProgram) propagate(v uint32, _ float32) float64 { return p.label[v] }

func (p *ccProgram) accumulate(u uint32, val float64) {
	if val < p.acc[u] {
		p.acc[u] = val
	}
}

func (p *ccProgram) apply(u uint32) bool {
	changed := false
	if p.acc[u] < p.label[u] {
		p.label[u] = p.acc[u]
		changed = true
		p.fr.activate(u)
	}
	p.acc[u] = math.Inf(1)
	return changed
}

func (p *ccProgram) endIteration() bool {
	p.fr.swap()
	return p.fr.curCount == 0
}

func (p *ccProgram) output() []float64 { return p.label }

// bfsProgram computes hop distance from a deterministic high-degree source.
type bfsProgram struct {
	level []float64
	acc   []float64
	fr    frontier
	depth float64
}

// pickSource returns the highest out-degree vertex, a deterministic choice
// that reaches a large component.
func pickSource(g *graph.Graph) uint32 {
	best, bestDeg := uint32(0), -1
	for v := 0; v < g.NumVertices; v++ {
		if d := g.OutDegree(uint32(v)); d > bestDeg {
			best, bestDeg = uint32(v), d
		}
	}
	return best
}

func (p *bfsProgram) init(g *graph.Graph) {
	n := g.NumVertices
	p.level = make([]float64, n)
	p.acc = make([]float64, n)
	for v := 0; v < n; v++ {
		p.level[v] = -1
		p.acc[v] = math.Inf(1)
	}
	src := pickSource(g)
	p.level[src] = 0
	p.fr.init(n, false)
	p.fr.cur[src] = true
	p.fr.curCount = 1
}

func (p *bfsProgram) active(v uint32) bool { return p.fr.cur[v] }
func (p *bfsProgram) anyActive() bool      { return p.fr.curCount > 0 }

func (p *bfsProgram) propagate(v uint32, _ float32) float64 { return p.level[v] + 1 }

func (p *bfsProgram) accumulate(u uint32, val float64) {
	if val < p.acc[u] {
		p.acc[u] = val
	}
}

func (p *bfsProgram) apply(u uint32) bool {
	changed := false
	if !math.IsInf(p.acc[u], 1) && p.level[u] < 0 {
		p.level[u] = p.acc[u]
		changed = true
		p.fr.activate(u)
	}
	p.acc[u] = math.Inf(1)
	return changed
}

func (p *bfsProgram) endIteration() bool {
	p.fr.swap()
	return p.fr.curCount == 0
}

func (p *bfsProgram) output() []float64 { return p.level }

// ssspProgram is Bellman-Ford single-source shortest paths with edge
// weights, from the same deterministic source as BFS.
type ssspProgram struct {
	dist []float64
	acc  []float64
	fr   frontier
}

func (p *ssspProgram) init(g *graph.Graph) {
	n := g.NumVertices
	p.dist = make([]float64, n)
	p.acc = make([]float64, n)
	for v := 0; v < n; v++ {
		p.dist[v] = math.Inf(1)
		p.acc[v] = math.Inf(1)
	}
	src := pickSource(g)
	p.dist[src] = 0
	p.fr.init(n, false)
	p.fr.cur[src] = true
	p.fr.curCount = 1
}

func (p *ssspProgram) active(v uint32) bool { return p.fr.cur[v] }
func (p *ssspProgram) anyActive() bool      { return p.fr.curCount > 0 }

func (p *ssspProgram) propagate(v uint32, w float32) float64 { return p.dist[v] + float64(w) }

func (p *ssspProgram) accumulate(u uint32, val float64) {
	if val < p.acc[u] {
		p.acc[u] = val
	}
}

func (p *ssspProgram) apply(u uint32) bool {
	changed := false
	if p.acc[u] < p.dist[u] {
		p.dist[u] = p.acc[u]
		changed = true
		p.fr.activate(u)
	}
	p.acc[u] = math.Inf(1)
	return changed
}

func (p *ssspProgram) endIteration() bool {
	p.fr.swap()
	return p.fr.curCount == 0
}

func (p *ssspProgram) output() []float64 { return p.dist }
