package graph

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestFromEdgesBasic(t *testing.T) {
	edges := []Edge{{0, 1, 2}, {1, 2, 3}, {2, 0, 1}, {0, 2, 5}}
	g, err := FromEdges(3, edges)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 4 {
		t.Fatalf("NumEdges = %d, want 4", g.NumEdges())
	}
	if got := g.OutNeighbors(0); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("OutNeighbors(0) = %v, want [1 2]", got)
	}
	if got := g.InNeighbors(2); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("InNeighbors(2) = %v, want [0 1]", got)
	}
	if g.OutDegree(0) != 2 || g.InDegree(0) != 1 {
		t.Fatalf("degrees of 0 = (%d,%d), want (2,1)", g.OutDegree(0), g.InDegree(0))
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFromEdgesDropsSelfLoops(t *testing.T) {
	g, err := FromEdges(2, []Edge{{0, 0, 1}, {0, 1, 1}, {1, 1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d, want 1 (self loops dropped)", g.NumEdges())
	}
}

func TestFromEdgesOutOfRange(t *testing.T) {
	if _, err := FromEdges(2, []Edge{{0, 5, 1}}); err == nil {
		t.Fatal("want error for out-of-range edge")
	}
	if _, err := FromEdges(0, nil); err == nil {
		t.Fatal("want error for zero vertices")
	}
}

func TestFromEdgesWeightsParallel(t *testing.T) {
	g, err := FromEdges(3, []Edge{{0, 2, 7}, {0, 1, 3}})
	if err != nil {
		t.Fatal(err)
	}
	// After adjacency sorting, neighbour 1 must carry weight 3 and
	// neighbour 2 weight 7.
	nbrs, ws := g.OutNeighbors(0), g.OutWeightsOf(0)
	if nbrs[0] != 1 || ws[0] != 3 || nbrs[1] != 2 || ws[1] != 7 {
		t.Fatalf("weights not parallel to sorted neighbours: %v %v", nbrs, ws)
	}
}

func TestFromEdgesDefaultWeight(t *testing.T) {
	g, err := FromEdges(2, []Edge{{0, 1, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if g.OutWeightsOf(0)[0] != 1 {
		t.Fatalf("zero weight should default to 1, got %v", g.OutWeightsOf(0)[0])
	}
}

func TestRMATProperties(t *testing.T) {
	g, err := GenerateRMAT(DefaultRMAT(10, 42))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices != 1024 {
		t.Fatalf("NumVertices = %d, want 1024", g.NumVertices)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	s := ComputeStats(g)
	if s.GiniOutDegree < 0.3 {
		t.Fatalf("R-MAT should be skewed, gini = %.3f", s.GiniOutDegree)
	}
	if s.NumEdges < 1024*10 {
		t.Fatalf("too few edges: %d", s.NumEdges)
	}
}

func TestRMATDeterministic(t *testing.T) {
	a, err := GenerateRMAT(DefaultRMAT(8, 7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateRMAT(DefaultRMAT(8, 7))
	if err != nil {
		t.Fatal(err)
	}
	if a.NumEdges() != b.NumEdges() {
		t.Fatalf("same seed differs: %d vs %d edges", a.NumEdges(), b.NumEdges())
	}
	for i := range a.OutEdges {
		if a.OutEdges[i] != b.OutEdges[i] {
			t.Fatalf("edge %d differs", i)
		}
	}
}

func TestRMATValidation(t *testing.T) {
	if _, err := GenerateRMAT(RMATConfig{Scale: 0}); err == nil {
		t.Fatal("want error for scale 0")
	}
	cfg := DefaultRMAT(5, 1)
	cfg.A = 0.9 // probabilities no longer sum to 1
	if _, err := GenerateRMAT(cfg); err == nil {
		t.Fatal("want error for bad probabilities")
	}
}

func TestDatasetGenerators(t *testing.T) {
	for _, spec := range Datasets {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			g, err := spec.GenerateScale(10)
			if err != nil {
				t.Fatal(err)
			}
			if err := g.Validate(); err != nil {
				t.Fatal(err)
			}
			s := ComputeStats(g)
			if s.NumEdges == 0 {
				t.Fatal("no edges generated")
			}
			switch spec.Class {
			case ClassRoad:
				if s.MaxOutDegree > 10 {
					t.Fatalf("road max degree %d implausible", s.MaxOutDegree)
				}
				if s.GiniOutDegree > 0.4 {
					t.Fatalf("road network should have uniform degrees, gini=%.3f", s.GiniOutDegree)
				}
			case ClassPowerLaw, ClassRMAT:
				if s.GiniOutDegree < 0.1 {
					t.Fatalf("%s should be skewed, gini=%.3f", spec.Name, s.GiniOutDegree)
				}
			}
		})
	}
}

func TestDatasetByName(t *testing.T) {
	d, err := DatasetByName("wiki")
	if err != nil || d.Name != "wiki" {
		t.Fatalf("DatasetByName(wiki) = %v, %v", d, err)
	}
	if _, err := DatasetByName("nope"); err == nil {
		t.Fatal("want error for unknown dataset")
	}
}

func TestDatasetClassString(t *testing.T) {
	if ClassPowerLaw.String() != "power-law" || ClassRoad.String() != "road" || ClassRMAT.String() != "rmat" {
		t.Fatal("DatasetClass.String mismatch")
	}
	if DatasetClass(99).String() == "" {
		t.Fatal("unknown class should still stringify")
	}
}

func TestLocalityKnob(t *testing.T) {
	hi, err := generatePowerLaw(11, 8, 2.0, 0.9, 5)
	if err != nil {
		t.Fatal(err)
	}
	lo, err := generatePowerLaw(11, 8, 2.0, 0.05, 5)
	if err != nil {
		t.Fatal(err)
	}
	sh, sl := ComputeStats(hi), ComputeStats(lo)
	if sh.LocalEdgeFraction <= sl.LocalEdgeFraction {
		t.Fatalf("locality knob ineffective: hi=%.3f lo=%.3f", sh.LocalEdgeFraction, sl.LocalEdgeFraction)
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	g, err := GenerateRMAT(DefaultRMAT(7, 3))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadEdgeList(&buf, g.NumVertices)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip edges %d != %d", g2.NumEdges(), g.NumEdges())
	}
	for v := uint32(0); int(v) < g.NumVertices; v++ {
		a, b := g.OutNeighbors(v), g2.OutNeighbors(v)
		if len(a) != len(b) {
			t.Fatalf("vertex %d degree differs", v)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("vertex %d neighbour %d differs", v, i)
			}
		}
	}
}

func TestReadEdgeListComments(t *testing.T) {
	src := "# header\n0 1\n\n1 2 3.5\n"
	g, err := ReadEdgeList(strings.NewReader(src), 0)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices != 3 || g.NumEdges() != 2 {
		t.Fatalf("got V=%d E=%d, want 3/2", g.NumVertices, g.NumEdges())
	}
	if g.OutWeightsOf(1)[0] != 3.5 {
		t.Fatalf("weight = %v, want 3.5", g.OutWeightsOf(1)[0])
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := []string{"0\n", "a b\n", "0 b\n", "0 1 x\n"}
	for _, c := range cases {
		if _, err := ReadEdgeList(strings.NewReader(c), 0); err == nil {
			t.Fatalf("want parse error for %q", c)
		}
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	g, err := GenerateRMAT(DefaultRMAT(8, 11))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumVertices != g.NumVertices || g2.NumEdges() != g.NumEdges() {
		t.Fatal("binary round trip size mismatch")
	}
	for i := range g.OutEdges {
		if g.OutEdges[i] != g2.OutEdges[i] || g.OutWeights[i] != g2.OutWeights[i] {
			t.Fatalf("edge %d differs after round trip", i)
		}
	}
}

func TestReadBinaryBadMagic(t *testing.T) {
	if _, err := ReadBinary(bytes.NewReader(make([]byte, 64))); err == nil {
		t.Fatal("want error for bad magic")
	}
}

func TestGini(t *testing.T) {
	if g := gini([]int{5, 5, 5, 5}); g > 1e-9 {
		t.Fatalf("uniform gini = %g, want 0", g)
	}
	if g := gini([]int{0, 0, 0, 100}); g < 0.7 {
		t.Fatalf("concentrated gini = %g, want high", g)
	}
	if g := gini(nil); g != 0 {
		t.Fatalf("empty gini = %g", g)
	}
	if g := gini([]int{0, 0}); g != 0 {
		t.Fatalf("zero-sum gini = %g", g)
	}
}

// Property: any random edge list over a valid vertex range produces a graph
// satisfying the CSR invariants with out-edge count == in-edge count.
func TestQuickCSRInvariants(t *testing.T) {
	f := func(seed int64, rawN uint8, rawM uint16) bool {
		n := int(rawN)%64 + 2
		m := int(rawM) % 512
		rng := rand.New(rand.NewSource(seed))
		edges := make([]Edge, m)
		for i := range edges {
			edges[i] = Edge{Src: uint32(rng.Intn(n)), Dst: uint32(rng.Intn(n)), Weight: rng.Float32()}
		}
		g, err := FromEdges(n, edges)
		if err != nil {
			return false
		}
		return g.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: every out-edge (u,v) appears as an in-edge of v.
func TestQuickAdjacencySymmetry(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 32
		edges := make([]Edge, 200)
		for i := range edges {
			edges[i] = Edge{Src: uint32(rng.Intn(n)), Dst: uint32(rng.Intn(n))}
		}
		g, err := FromEdges(n, edges)
		if err != nil {
			return false
		}
		for u := uint32(0); int(u) < n; u++ {
			for _, v := range g.OutNeighbors(u) {
				found := false
				for _, back := range g.InNeighbors(v) {
					if back == u {
						found = true
						break
					}
				}
				if !found {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestStatsString(t *testing.T) {
	g, _ := FromEdges(2, []Edge{{0, 1, 1}})
	s := ComputeStats(g)
	if s.String() == "" {
		t.Fatal("empty stats string")
	}
	empty := ComputeStats(&Graph{NumVertices: 0, OutIndex: []uint64{0}, InIndex: []uint64{0}})
	if empty.NumEdges != 0 {
		t.Fatal("empty graph stats")
	}
}
