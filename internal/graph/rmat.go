package graph

import (
	"fmt"
	"math/rand"
)

// RMATConfig parameterises the recursive matrix (R-MAT) generator of
// Chakrabarti, Zhan & Faloutsos (SDM 2004). Scale is log2 of the vertex
// count; EdgeFactor is edges per vertex; A,B,C,D are the quadrant
// probabilities (must sum to ~1).
type RMATConfig struct {
	Scale      int
	EdgeFactor int
	A, B, C, D float64
	Seed       int64
	// Noise perturbs the quadrant probabilities per recursion level, the
	// standard trick that avoids degenerate staircase degree sequences.
	Noise float64
}

// DefaultRMAT mirrors the Graph500 parameters used by the paper's synthetic
// "rmat" dataset (1M vertices / 16M edges in the paper, scaled here).
func DefaultRMAT(scale int, seed int64) RMATConfig {
	return RMATConfig{Scale: scale, EdgeFactor: 16, A: 0.57, B: 0.19, C: 0.19, D: 0.05, Seed: seed, Noise: 0.1}
}

// GenerateRMAT produces a directed R-MAT graph.
func GenerateRMAT(cfg RMATConfig) (*Graph, error) {
	if cfg.Scale < 1 || cfg.Scale > 30 {
		return nil, fmt.Errorf("graph: rmat scale %d out of range [1,30]", cfg.Scale)
	}
	sum := cfg.A + cfg.B + cfg.C + cfg.D
	if sum < 0.99 || sum > 1.01 {
		return nil, fmt.Errorf("graph: rmat probabilities sum to %.3f, want 1", sum)
	}
	n := 1 << cfg.Scale
	m := n * cfg.EdgeFactor
	rng := rand.New(rand.NewSource(cfg.Seed))
	edges := make([]Edge, 0, m)
	for i := 0; i < m; i++ {
		src, dst := rmatEdge(rng, cfg)
		if src == dst {
			continue
		}
		edges = append(edges, Edge{Src: src, Dst: dst, Weight: 1 + rng.Float32()*9})
	}
	return FromEdges(n, edges)
}

func rmatEdge(rng *rand.Rand, cfg RMATConfig) (uint32, uint32) {
	var src, dst uint32
	a, b, c := cfg.A, cfg.B, cfg.C
	for level := 0; level < cfg.Scale; level++ {
		r := rng.Float64()
		switch {
		case r < a:
			// top-left: no bits set
		case r < a+b:
			dst |= 1 << level
		case r < a+b+c:
			src |= 1 << level
		default:
			src |= 1 << level
			dst |= 1 << level
		}
		if cfg.Noise > 0 {
			// Multiplicative noise, renormalised.
			na := a * (1 - cfg.Noise + 2*cfg.Noise*rng.Float64())
			nb := b * (1 - cfg.Noise + 2*cfg.Noise*rng.Float64())
			nc := c * (1 - cfg.Noise + 2*cfg.Noise*rng.Float64())
			nd := cfg.D * (1 - cfg.Noise + 2*cfg.Noise*rng.Float64())
			s := na + nb + nc + nd
			a, b, c = na/s, nb/s, nc/s
		}
	}
	return src, dst
}
