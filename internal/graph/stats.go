package graph

import (
	"fmt"
	"math"
	"sort"
)

// Stats summarises the structural properties that matter for prefetcher
// behaviour: degree skew (drives wide page jumps) and edge locality (drives
// within-page spatial hits).
type Stats struct {
	NumVertices   int
	NumEdges      int
	MaxOutDegree  int
	MeanOutDegree float64
	// GiniOutDegree in [0,1]; ~0 for road networks, >0.5 for heavy-tail
	// power-law graphs.
	GiniOutDegree float64
	// LocalEdgeFraction is the fraction of edges whose endpoints are within
	// 256 ids of each other (a page-of-vertex-values worth of distance).
	LocalEdgeFraction float64
}

// ComputeStats scans the graph once and returns its Stats.
func ComputeStats(g *Graph) Stats {
	s := Stats{NumVertices: g.NumVertices, NumEdges: g.NumEdges()}
	if g.NumVertices == 0 {
		return s
	}
	degrees := make([]int, g.NumVertices)
	sum := 0
	for v := 0; v < g.NumVertices; v++ {
		d := g.OutDegree(uint32(v))
		degrees[v] = d
		sum += d
		if d > s.MaxOutDegree {
			s.MaxOutDegree = d
		}
	}
	s.MeanOutDegree = float64(sum) / float64(g.NumVertices)
	s.GiniOutDegree = gini(degrees)
	local := 0
	for v := uint32(0); int(v) < g.NumVertices; v++ {
		for _, d := range g.OutNeighbors(v) {
			if math.Abs(float64(int64(v)-int64(d))) <= 256 {
				local++
			}
		}
	}
	if s.NumEdges > 0 {
		s.LocalEdgeFraction = float64(local) / float64(s.NumEdges)
	}
	return s
}

func gini(xs []int) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]int, len(xs))
	copy(sorted, xs)
	sort.Ints(sorted)
	var cum, weighted float64
	for i, x := range sorted {
		cum += float64(x)
		weighted += float64(x) * float64(i+1)
	}
	if cum == 0 {
		return 0
	}
	n := float64(len(sorted))
	return (2*weighted - (n+1)*cum) / (n * cum)
}

func (s Stats) String() string {
	return fmt.Sprintf("V=%d E=%d maxDeg=%d meanDeg=%.2f gini=%.3f local=%.3f",
		s.NumVertices, s.NumEdges, s.MaxOutDegree, s.MeanOutDegree, s.GiniOutDegree, s.LocalEdgeFraction)
}
