// Package graph provides the graph substrate used by every framework in this
// repository: a compressed sparse row (CSR) representation with both out- and
// in-adjacency, generators for the graph classes evaluated in the MPGraph
// paper (R-MAT plus synthetic stand-ins for the SNAP datasets), edge-list IO,
// and degree statistics.
package graph

import (
	"fmt"
	"sort"
)

// Edge is a directed edge with an optional weight (used by SSSP).
type Edge struct {
	Src, Dst uint32
	Weight   float32
}

// Graph is an immutable directed graph in CSR form. Both the out-adjacency
// (OutIndex/OutEdges) and the in-adjacency (InIndex/InEdges) are materialised
// because the GAS execution model gathers over in-neighbours while
// scatter-gather models stream over out-neighbours.
type Graph struct {
	NumVertices int
	// OutIndex has NumVertices+1 entries; the out-neighbours of v are
	// OutEdges[OutIndex[v]:OutIndex[v+1]] with weights OutWeights[...].
	OutIndex   []uint64
	OutEdges   []uint32
	OutWeights []float32
	// InIndex/InEdges mirror the structure for incoming edges.
	InIndex   []uint64
	InEdges   []uint32
	InWeights []float32
}

// NumEdges reports the total number of directed edges.
func (g *Graph) NumEdges() int { return len(g.OutEdges) }

// OutDegree reports the out-degree of v.
func (g *Graph) OutDegree(v uint32) int {
	return int(g.OutIndex[v+1] - g.OutIndex[v])
}

// InDegree reports the in-degree of v.
func (g *Graph) InDegree(v uint32) int {
	return int(g.InIndex[v+1] - g.InIndex[v])
}

// OutNeighbors returns the out-neighbour slice of v (shared storage; callers
// must not modify it).
func (g *Graph) OutNeighbors(v uint32) []uint32 {
	return g.OutEdges[g.OutIndex[v]:g.OutIndex[v+1]]
}

// InNeighbors returns the in-neighbour slice of v (shared storage).
func (g *Graph) InNeighbors(v uint32) []uint32 {
	return g.InEdges[g.InIndex[v]:g.InIndex[v+1]]
}

// OutWeightsOf returns the weights parallel to OutNeighbors(v).
func (g *Graph) OutWeightsOf(v uint32) []float32 {
	return g.OutWeights[g.OutIndex[v]:g.OutIndex[v+1]]
}

// InWeightsOf returns the weights parallel to InNeighbors(v).
func (g *Graph) InWeightsOf(v uint32) []float32 {
	return g.InWeights[g.InIndex[v]:g.InIndex[v+1]]
}

// FromEdges builds a Graph from an edge list. Self loops are dropped and
// duplicate edges are kept (multi-edges are meaningful for R-MAT workloads).
// Vertices are 0..numVertices-1; edges referencing vertices out of range
// cause an error.
func FromEdges(numVertices int, edges []Edge) (*Graph, error) {
	if numVertices <= 0 {
		return nil, fmt.Errorf("graph: numVertices must be positive, got %d", numVertices)
	}
	g := &Graph{NumVertices: numVertices}
	outDeg := make([]uint64, numVertices+1)
	inDeg := make([]uint64, numVertices+1)
	kept := 0
	for _, e := range edges {
		if int(e.Src) >= numVertices || int(e.Dst) >= numVertices {
			return nil, fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", e.Src, e.Dst, numVertices)
		}
		if e.Src == e.Dst {
			continue
		}
		outDeg[e.Src+1]++
		inDeg[e.Dst+1]++
		kept++
	}
	for v := 0; v < numVertices; v++ {
		outDeg[v+1] += outDeg[v]
		inDeg[v+1] += inDeg[v]
	}
	g.OutIndex = outDeg
	g.InIndex = inDeg
	g.OutEdges = make([]uint32, kept)
	g.OutWeights = make([]float32, kept)
	g.InEdges = make([]uint32, kept)
	g.InWeights = make([]float32, kept)
	outPos := make([]uint64, numVertices)
	inPos := make([]uint64, numVertices)
	copy(outPos, g.OutIndex[:numVertices])
	copy(inPos, g.InIndex[:numVertices])
	for _, e := range edges {
		if e.Src == e.Dst {
			continue
		}
		w := e.Weight
		if w == 0 {
			w = 1
		}
		g.OutEdges[outPos[e.Src]] = e.Dst
		g.OutWeights[outPos[e.Src]] = w
		outPos[e.Src]++
		g.InEdges[inPos[e.Dst]] = e.Src
		g.InWeights[inPos[e.Dst]] = w
		inPos[e.Dst]++
	}
	// Sort each adjacency run so traversal order is deterministic and
	// cache-friendly in the same way real CSR frameworks lay edges out.
	g.sortAdjacency()
	return g, nil
}

func (g *Graph) sortAdjacency() {
	sortRuns := func(index []uint64, edges []uint32, weights []float32) {
		for v := 0; v < g.NumVertices; v++ {
			lo, hi := index[v], index[v+1]
			run := edges[lo:hi]
			wrun := weights[lo:hi]
			sort.Sort(&adjSorter{run, wrun})
		}
	}
	sortRuns(g.OutIndex, g.OutEdges, g.OutWeights)
	sortRuns(g.InIndex, g.InEdges, g.InWeights)
}

type adjSorter struct {
	e []uint32
	w []float32
}

func (s *adjSorter) Len() int           { return len(s.e) }
func (s *adjSorter) Less(i, j int) bool { return s.e[i] < s.e[j] }
func (s *adjSorter) Swap(i, j int) {
	s.e[i], s.e[j] = s.e[j], s.e[i]
	s.w[i], s.w[j] = s.w[j], s.w[i]
}

// Validate checks CSR structural invariants; it is used by property tests.
func (g *Graph) Validate() error {
	if len(g.OutIndex) != g.NumVertices+1 || len(g.InIndex) != g.NumVertices+1 {
		return fmt.Errorf("graph: index length mismatch")
	}
	if g.OutIndex[0] != 0 || g.InIndex[0] != 0 {
		return fmt.Errorf("graph: index must start at 0")
	}
	if g.OutIndex[g.NumVertices] != uint64(len(g.OutEdges)) {
		return fmt.Errorf("graph: out index end %d != edges %d", g.OutIndex[g.NumVertices], len(g.OutEdges))
	}
	if g.InIndex[g.NumVertices] != uint64(len(g.InEdges)) {
		return fmt.Errorf("graph: in index end %d != edges %d", g.InIndex[g.NumVertices], len(g.InEdges))
	}
	if len(g.OutEdges) != len(g.InEdges) {
		return fmt.Errorf("graph: out/in edge count mismatch %d vs %d", len(g.OutEdges), len(g.InEdges))
	}
	for v := 0; v < g.NumVertices; v++ {
		if g.OutIndex[v] > g.OutIndex[v+1] || g.InIndex[v] > g.InIndex[v+1] {
			return fmt.Errorf("graph: index not monotone at vertex %d", v)
		}
	}
	for i, d := range g.OutEdges {
		if int(d) >= g.NumVertices {
			return fmt.Errorf("graph: out edge %d target %d out of range", i, d)
		}
	}
	for i, s := range g.InEdges {
		if int(s) >= g.NumVertices {
			return fmt.Errorf("graph: in edge %d source %d out of range", i, s)
		}
	}
	return nil
}
