package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteEdgeList writes the graph's out-edges as whitespace-separated
// "src dst weight" lines, the SNAP text format.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	for v := uint32(0); int(v) < g.NumVertices; v++ {
		nbrs := g.OutNeighbors(v)
		ws := g.OutWeightsOf(v)
		for i, d := range nbrs {
			if _, err := fmt.Fprintf(bw, "%d %d %g\n", v, d, ws[i]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadEdgeList parses SNAP-style edge lists: lines of "src dst [weight]",
// with '#' comment lines ignored. numVertices, when 0, is inferred as
// max(id)+1.
func ReadEdgeList(r io.Reader, numVertices int) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var edges []Edge
	maxID := uint32(0)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) < 2 {
			return nil, fmt.Errorf("graph: line %d: want 'src dst [weight]', got %q", line, text)
		}
		src, err := strconv.ParseUint(fields[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad src: %w", line, err)
		}
		dst, err := strconv.ParseUint(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad dst: %w", line, err)
		}
		w := float32(1)
		if len(fields) >= 3 {
			wf, err := strconv.ParseFloat(fields[2], 32)
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad weight: %w", line, err)
			}
			w = float32(wf)
		}
		e := Edge{Src: uint32(src), Dst: uint32(dst), Weight: w}
		if e.Src > maxID {
			maxID = e.Src
		}
		if e.Dst > maxID {
			maxID = e.Dst
		}
		edges = append(edges, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if numVertices == 0 {
		numVertices = int(maxID) + 1
	}
	return FromEdges(numVertices, edges)
}

const binMagic = 0x4d504752 // "MPGR"

// WriteBinary serialises the CSR structure in a compact little-endian
// binary format (fast reload for repeated experiment runs).
func WriteBinary(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	hdr := []uint64{binMagic, uint64(g.NumVertices), uint64(len(g.OutEdges))}
	for _, h := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, h); err != nil {
			return err
		}
	}
	for _, s := range [][]uint64{g.OutIndex, g.InIndex} {
		if err := binary.Write(bw, binary.LittleEndian, s); err != nil {
			return err
		}
	}
	for _, s := range [][]uint32{g.OutEdges, g.InEdges} {
		if err := binary.Write(bw, binary.LittleEndian, s); err != nil {
			return err
		}
	}
	for _, s := range [][]float32{g.OutWeights, g.InWeights} {
		if err := binary.Write(bw, binary.LittleEndian, s); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinary deserialises a graph written by WriteBinary.
func ReadBinary(r io.Reader) (*Graph, error) {
	br := bufio.NewReader(r)
	var magic, nv, ne uint64
	for _, p := range []*uint64{&magic, &nv, &ne} {
		if err := binary.Read(br, binary.LittleEndian, p); err != nil {
			return nil, err
		}
	}
	if magic != binMagic {
		return nil, fmt.Errorf("graph: bad magic %#x", magic)
	}
	if nv > 1<<31 || ne > 1<<33 {
		return nil, fmt.Errorf("graph: implausible header nv=%d ne=%d", nv, ne)
	}
	g := &Graph{
		NumVertices: int(nv),
		OutIndex:    make([]uint64, nv+1),
		InIndex:     make([]uint64, nv+1),
		OutEdges:    make([]uint32, ne),
		InEdges:     make([]uint32, ne),
		OutWeights:  make([]float32, ne),
		InWeights:   make([]float32, ne),
	}
	for _, s := range [][]uint64{g.OutIndex, g.InIndex} {
		if err := binary.Read(br, binary.LittleEndian, s); err != nil {
			return nil, err
		}
	}
	for _, s := range [][]uint32{g.OutEdges, g.InEdges} {
		if err := binary.Read(br, binary.LittleEndian, s); err != nil {
			return nil, err
		}
	}
	for _, s := range [][]float32{g.OutWeights, g.InWeights} {
		if err := binary.Read(br, binary.LittleEndian, s); err != nil {
			return nil, err
		}
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}
