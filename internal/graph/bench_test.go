package graph

import "testing"

func BenchmarkRMATScale12(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := GenerateRMAT(DefaultRMAT(12, int64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFromEdges(b *testing.B) {
	g, err := GenerateRMAT(DefaultRMAT(12, 1))
	if err != nil {
		b.Fatal(err)
	}
	edges := make([]Edge, 0, g.NumEdges())
	for v := uint32(0); int(v) < g.NumVertices; v++ {
		for _, u := range g.OutNeighbors(v) {
			edges = append(edges, Edge{Src: v, Dst: u, Weight: 1})
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FromEdges(g.NumVertices, edges); err != nil {
			b.Fatal(err)
		}
	}
}
