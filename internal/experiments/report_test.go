package experiments

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"mpgraph/internal/trace"
)

func TestTablePrinterAlignment(t *testing.T) {
	tbl := &Table{Header: []string{"Name", "Value"}}
	tbl.Add("short", "1")
	tbl.Add("a-much-longer-name", "22")
	var buf bytes.Buffer
	tbl.Print(&buf)
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("want header+sep+2 rows, got %d lines", len(lines))
	}
	// The separator must be at least as wide as the longest cell.
	if !strings.Contains(lines[1], strings.Repeat("-", len("a-much-longer-name"))) {
		t.Fatalf("separator too short: %q", lines[1])
	}
	// Columns align: "Value" column starts at the same offset in all rows.
	col := strings.Index(lines[0], "Value")
	if lines[2][col:col+1] != "1" || lines[3][col:col+2] != "22" {
		t.Fatalf("columns misaligned:\n%s", buf.String())
	}
}

func TestTableRowWiderThanHeader(t *testing.T) {
	tbl := &Table{Header: []string{"A"}}
	tbl.Add("x", "extra-cell")
	var buf bytes.Buffer
	tbl.Print(&buf) // must not panic on ragged rows
	if !strings.Contains(buf.String(), "extra-cell") {
		t.Fatal("extra cell dropped")
	}
}

func TestFormatters(t *testing.T) {
	if f3(0.12345) != "0.123" || f4(0.12345) != "0.1235" {
		t.Fatal("float formats")
	}
	if pct(0.1234) != "12.34%" {
		t.Fatalf("pct = %q", pct(0.1234))
	}
	if d(42) != "42" {
		t.Fatal("d")
	}
}

func TestMean(t *testing.T) {
	if mean(nil) != 0 {
		t.Fatal("empty mean")
	}
	if math.Abs(mean([]float64{1, 2, 3})-2) > 1e-12 {
		t.Fatal("mean")
	}
}

func TestPCAOnKnownData(t *testing.T) {
	// Points along the x-axis with small y noise: first component must
	// capture nearly all variance.
	var X [][]float64
	for i := 0; i < 50; i++ {
		x := float64(i)
		X = append(X, []float64{x, 0.01 * float64(i%3)})
	}
	proj, explained := pca(X, 2)
	if len(proj) != 50 || len(explained) != 2 {
		t.Fatal("pca output shape")
	}
	if explained[0] < 100*explained[1] {
		t.Fatalf("first component should dominate: %v", explained)
	}
	// Empty input.
	p2, e2 := pca(nil, 2)
	if p2 != nil || e2 != nil {
		t.Fatal("empty pca")
	}
}

func TestClusterSeparation(t *testing.T) {
	// Two tight, distant clusters separate strongly.
	var proj [][]float64
	var labels []int
	for i := 0; i < 20; i++ {
		proj = append(proj, []float64{float64(i%3) * 0.01, 0})
		labels = append(labels, 0)
		proj = append(proj, []float64{100 + float64(i%3)*0.01, 0})
		labels = append(labels, 1)
	}
	if sep := clusterSeparation(proj, labels); sep < 100 {
		t.Fatalf("separation %v, want large", sep)
	}
	// One cluster: undefined, reported as 0.
	if sep := clusterSeparation(proj[:3], []int{0, 0, 0}); sep != 0 {
		t.Fatal("single-phase separation must be 0")
	}
}

func TestPCStreamMajorMerge(t *testing.T) {
	// Build labels: 1000 of phase 0, a 50-access blip of phase 1, 1000 of
	// phase 0, then 1000 of phase 1. With minPhase=200 only the final
	// transition is major.
	accesses := makePhases([]int{1000, 50, 1000, 1000}, []uint8{0, 1, 0, 1})
	xs, truth := pcStream(accesses, 200)
	if len(xs) != 3050 {
		t.Fatal("stream length")
	}
	if len(truth) != 1 || truth[0] != 2050 {
		t.Fatalf("major transitions = %v, want [2050]", truth)
	}
	// With minPhase=1 every change is a transition.
	_, all := pcStream(accesses, 1)
	if len(all) != 3 {
		t.Fatalf("raw transitions = %v", all)
	}
}

func TestDetectionTolerance(t *testing.T) {
	tol := detectionTolerance([]int{1000, 5000}, 10000)
	if tol != 1000/2 {
		t.Fatalf("tolerance = %d, want half the min gap (500)", tol)
	}
	if detectionTolerance(nil, 100) < 200 {
		t.Fatal("floor")
	}
}

func makePhases(lengths []int, phases []uint8) []trace.Access {
	var out []trace.Access
	for i, n := range lengths {
		for j := 0; j < n; j++ {
			out = append(out, trace.Access{Phase: phases[i], PC: uint64(phases[i])*0x1000 + uint64(j%4)*0x40})
		}
	}
	return out
}
