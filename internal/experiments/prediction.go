package experiments

import (
	"io"

	"mpgraph/internal/models"
)

// TableDeltaPrediction regenerates Table 6: F1-score of spatial delta
// prediction for LSTM, Attention, AMMA, AMMA-PI, and AMMA-PS on every
// workload.
func TableDeltaPrediction(w io.Writer, r *Runner) error {
	section(w, "Table 6: F1-Score of Spatial Delta Prediction")
	t := &Table{Header: []string{"Workload", "LSTM", "Attention", "AMMA", "AMMA-PI", "AMMA-PS"}}
	for _, wl := range r.Opt.Workloads() {
		s, err := r.Suite(wl)
		if err != nil {
			return err
		}
		n := r.Opt.EvalSamples
		t.Add(wl.String(),
			f4(models.EvalDeltaF1(s.LSTMDelta, s.Test.Samples, n)),
			f4(models.EvalDeltaF1(s.AttnDelta, s.Test.Samples, n)),
			f4(models.EvalDeltaF1(s.AMMADelta, s.Test.Samples, n)),
			f4(models.EvalDeltaF1(s.PIDelta, s.Test.Samples, n)),
			f4(models.EvalDeltaF1(s.PSDelta, s.Test.Samples, n)),
		)
	}
	t.Print(w)
	return nil
}

// TablePagePrediction regenerates Table 7: accuracy@10 of temporal page
// prediction for the same model sweep.
func TablePagePrediction(w io.Writer, r *Runner) error {
	section(w, "Table 7: Accuracy@10 of Temporal Page Prediction")
	t := &Table{Header: []string{"Workload", "LSTM", "Attention", "AMMA", "AMMA-PI", "AMMA-PS"}}
	for _, wl := range r.Opt.Workloads() {
		s, err := r.Suite(wl)
		if err != nil {
			return err
		}
		n := r.Opt.EvalSamples
		t.Add(wl.String(),
			f4(models.EvalPageAccAtK(s.LSTMPage, s.Test.Samples, 10, n)),
			f4(models.EvalPageAccAtK(s.AttnPage, s.Test.Samples, 10, n)),
			f4(models.EvalPageAccAtK(s.AMMAPage, s.Test.Samples, 10, n)),
			f4(models.EvalPageAccAtK(s.PIPage, s.Test.Samples, 10, n)),
			f4(models.EvalPageAccAtK(s.PSPage, s.Test.Samples, 10, n)),
		)
	}
	t.Print(w)
	return nil
}
