//go:build race

package experiments

// raceDetectorEnabled mirrors whether this test binary was built with
// -race; race_off_test.go provides the false arm.
const raceDetectorEnabled = true
