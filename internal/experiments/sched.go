package experiments

import (
	"runtime"
	"sync"
	"sync/atomic"

	"mpgraph/internal/resilience"
)

// forEachIndex runs fn(i) for every i in [0, n) on a bounded pool of
// workers. Indices are handed out through an atomic counter, so no worker
// idles while work remains; with workers <= 1 (or n == 1) everything runs
// inline on the caller's goroutine — the serial path spawns no goroutines.
//
// Every fn(i) call runs inside a resilience boundary: a panicking task is
// recovered into that slot's error (carrying the captured stack) instead of
// crashing the process, on the serial and parallel paths alike.
//
// Determinism contract: fn must write its result into a slot owned by its
// index (results[i]) and must not depend on execution order. On failure the
// error from the LOWEST failing index is returned — the same error a serial
// loop stopping at its first failure would report — regardless of which
// worker hit an error first. Later indices may still have run; callers
// discard their slots on error.
func forEachIndex(n, workers int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	run := func(i int) error {
		return resilience.Guard("experiments.forEachIndex", func() error { return fn(i) })
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := run(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = run(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
