package experiments

import (
	"fmt"
	"io"
	"math"
	"sort"

	"mpgraph/internal/frameworks"
	"mpgraph/internal/trace"
)

// windowFeatures summarises a window of accesses as a feature vector for
// PCA: a bucket histogram of either page indices or PCs.
func windowFeatures(accesses []trace.Access, usePC bool, buckets int) []float64 {
	out := make([]float64, buckets)
	for _, a := range accesses {
		var v uint64
		if usePC {
			v = a.PC
		} else {
			v = trace.Page(a.Addr)
		}
		v ^= v >> 17
		v *= 0x9e3779b97f4a7c15
		v ^= v >> 33
		out[v%uint64(buckets)]++
	}
	for i := range out {
		out[i] /= float64(len(accesses))
	}
	return out
}

// pca computes the top-k principal components of row vectors X via power
// iteration with deflation, returning the projected coordinates and the
// variance captured by each component.
func pca(X [][]float64, k int) (proj [][]float64, explained []float64) {
	if len(X) == 0 {
		return nil, nil
	}
	dim := len(X[0])
	// Center.
	mean := make([]float64, dim)
	for _, row := range X {
		for j, v := range row {
			mean[j] += v
		}
	}
	for j := range mean {
		mean[j] /= float64(len(X))
	}
	centered := make([][]float64, len(X))
	for i, row := range X {
		c := make([]float64, dim)
		for j, v := range row {
			c[j] = v - mean[j]
		}
		centered[i] = c
	}
	// Covariance (dim x dim).
	cov := make([][]float64, dim)
	for i := range cov {
		cov[i] = make([]float64, dim)
	}
	for _, row := range centered {
		for i := 0; i < dim; i++ {
			for j := 0; j < dim; j++ {
				cov[i][j] += row[i] * row[j]
			}
		}
	}
	for i := range cov {
		for j := range cov[i] {
			cov[i][j] /= float64(len(X))
		}
	}
	proj = make([][]float64, len(X))
	for i := range proj {
		proj[i] = make([]float64, k)
	}
	for comp := 0; comp < k; comp++ {
		// Power iteration. The start vector must not be orthogonal to the
		// data; a uniform vector would be, because histogram features sum
		// to a constant, so use a deterministic non-uniform direction.
		v := make([]float64, dim)
		norm0 := 0.0
		for i := range v {
			v[i] = math.Cos(float64(i+comp) + 1)
			norm0 += v[i] * v[i]
		}
		norm0 = math.Sqrt(norm0)
		for i := range v {
			v[i] /= norm0
		}
		var lambda float64
		for iter := 0; iter < 100; iter++ {
			nv := make([]float64, dim)
			for i := 0; i < dim; i++ {
				for j := 0; j < dim; j++ {
					nv[i] += cov[i][j] * v[j]
				}
			}
			norm := 0.0
			for _, x := range nv {
				norm += x * x
			}
			norm = math.Sqrt(norm)
			if norm < 1e-12 {
				break
			}
			for i := range nv {
				nv[i] /= norm
			}
			v = nv
			lambda = norm
		}
		explained = append(explained, lambda)
		for i, row := range centered {
			dot := 0.0
			for j := range row {
				dot += row[j] * v[j]
			}
			proj[i][comp] = dot
		}
		// Deflate.
		for i := 0; i < dim; i++ {
			for j := 0; j < dim; j++ {
				cov[i][j] -= lambda * v[i] * v[j]
			}
		}
	}
	return proj, explained
}

// clusterSeparation quantifies how separated phase clusters are in the
// projected space: between-phase centroid distance over mean within-phase
// spread (higher = more separated, the visual claim of Fig. 2).
func clusterSeparation(proj [][]float64, labels []int) float64 {
	byPhase := map[int][][]float64{}
	for i, p := range proj {
		byPhase[labels[i]] = append(byPhase[labels[i]], p)
	}
	if len(byPhase) < 2 {
		return 0
	}
	phases := make([]int, 0, len(byPhase))
	for ph := range byPhase {
		phases = append(phases, ph)
	}
	sort.Ints(phases)
	centroids := map[int][]float64{}
	within := 0.0
	n := 0
	for _, ph := range phases {
		rows := byPhase[ph]
		c := make([]float64, len(rows[0]))
		for _, row := range rows {
			for j, v := range row {
				c[j] += v
			}
		}
		for j := range c {
			c[j] /= float64(len(rows))
		}
		centroids[ph] = c
		for _, row := range rows {
			within += dist(row, c)
			n++
		}
	}
	within /= float64(n)
	between := 0.0
	pairs := 0
	for i := 0; i < len(phases); i++ {
		for j := i + 1; j < len(phases); j++ {
			between += dist(centroids[phases[i]], centroids[phases[j]])
			pairs++
		}
	}
	between /= float64(pairs)
	if within == 0 {
		return math.Inf(1)
	}
	return between / within
}

func dist(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// FigurePCA regenerates Fig. 2: PCA of memory-access and PC window features
// on GPOP CC and PR, reporting how separated the Scatter/Gather clusters
// are (the paper's justification for phase-specific models and PC-based
// detection).
func FigurePCA(w io.Writer, r *Runner) error {
	section(w, "Figure 2: PCA of accesses and PCs per phase (GPOP CC, PR)")
	t := &Table{Header: []string{"App", "Features", "Var(C1)", "Var(C2)", "Var(C3)", "Separation"}}
	for _, app := range []frameworks.App{frameworks.CC, frameworks.PR} {
		wl := Workload{Framework: "gpop", App: app, Dataset: r.Opt.Datasets[0]}
		d, err := r.Data(wl)
		if err != nil {
			return err
		}
		const window, buckets = 64, 32
		for _, usePC := range []bool{false, true} {
			var X [][]float64
			var labels []int
			for lo := 0; lo+window <= len(d.LLCTest) && len(X) < 400; lo += window {
				win := d.LLCTest[lo : lo+window]
				// Keep windows that sit inside one phase.
				pure := true
				for _, a := range win {
					if a.Phase != win[0].Phase {
						pure = false
						break
					}
				}
				if !pure {
					continue
				}
				X = append(X, windowFeatures(win, usePC, buckets))
				labels = append(labels, int(win[0].Phase))
			}
			proj, explained := pca(X, 3)
			sep := clusterSeparation(proj, labels)
			name := "accesses"
			if usePC {
				name = "PCs"
			}
			for len(explained) < 3 {
				explained = append(explained, 0)
			}
			t.Add(string(app), name,
				fmt.Sprintf("%.2e", explained[0]),
				fmt.Sprintf("%.2e", explained[1]),
				fmt.Sprintf("%.2e", explained[2]),
				f3(sep))
		}
	}
	t.Print(w)
	fmt.Fprintln(w, "Separation = between-phase centroid distance / within-phase spread; > 1 means distinct clusters per phase.")
	return nil
}

// FigurePageJumps regenerates Fig. 3: the distribution of page jumps in
// GPOP's scatter and gather phases, demonstrating the wide jumps that
// defeat purely spatial prefetchers.
func FigurePageJumps(w io.Writer, r *Runner) error {
	section(w, "Figure 3: Memory access page jumps in GPOP (per phase)")
	wl := Workload{Framework: "gpop", App: frameworks.PR, Dataset: r.Opt.Datasets[0]}
	d, err := r.Data(wl)
	if err != nil {
		return err
	}
	t := &Table{Header: []string{"Phase", "|jump|=0", "1-8", "9-64", ">64", "MaxJump"}}
	phaseNames := []string{"scatter", "gather"}
	for phase := 0; phase < 2; phase++ {
		var zero, small, mid, wide int
		maxJump := int64(0)
		var prev uint64
		havePrev := false
		for _, a := range d.LLCTest {
			if int(a.Phase) != phase {
				havePrev = false
				continue
			}
			page := trace.Page(a.Addr)
			if havePrev {
				j := int64(page) - int64(prev)
				if j < 0 {
					j = -j
				}
				if j > maxJump {
					maxJump = j
				}
				switch {
				case j == 0:
					zero++
				case j <= 8:
					small++
				case j <= 64:
					mid++
				default:
					wide++
				}
			}
			prev = page
			havePrev = true
		}
		total := zero + small + mid + wide
		if total == 0 {
			total = 1
		}
		t.Add(phaseNames[phase],
			pct(float64(zero)/float64(total)), pct(float64(small)/float64(total)),
			pct(float64(mid)/float64(total)), pct(float64(wide)/float64(total)),
			fmt.Sprintf("%d", maxJump))
	}
	t.Print(w)
	return nil
}
