//go:build !race

package experiments

// raceDetectorEnabled mirrors whether this test binary was built with
// -race; race_on_test.go provides the true arm.
const raceDetectorEnabled = false
