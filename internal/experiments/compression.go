package experiments

import (
	"fmt"
	"io"
	"time"

	"mpgraph/internal/core"
	"mpgraph/internal/models"
	"mpgraph/internal/nn"
	"mpgraph/internal/phasedet"
	"mpgraph/internal/prefetch"
	"mpgraph/internal/sim"
	"mpgraph/internal/trace"
)

// compressedSuite holds one compression level's trained student models.
type compressedSuite struct {
	name       string
	cfg        models.Config
	deltas     []models.DeltaModel
	pages      []models.PageModel
	params     int
	ratio      float64
	deltaF1    float64
	pageAcc    float64
	distilled  bool
	quantBytes int
	f16Bytes   int
}

// buildCompressed trains per-phase students at the given width divisor,
// with or without knowledge distillation from the suite's AMMA-PS teachers,
// applies 8-bit quantization, and evaluates prediction quality.
func buildCompressed(r *Runner, wl Workload, divisor int, distill bool) (*compressedSuite, error) {
	s, err := r.Suite(wl)
	if err != nil {
		return nil, err
	}
	small := s.Cfg
	small.AttnDim = max(4, s.Cfg.AttnDim/divisor)
	small.FusionDim = max(4, s.Cfg.FusionDim/divisor)
	small.Heads = 2
	if small.FusionDim%small.Heads != 0 {
		small.Heads = 1
	}

	dsTrain := &models.Dataset{Cfg: small, Samples: s.Train.Samples, Pages: s.Train.Pages, PCs: s.Train.PCs}
	dsTest := &models.Dataset{Cfg: small, Samples: s.Test.Samples, Pages: s.Test.Pages, PCs: s.Test.PCs}
	topt := models.TrainOptions{Epochs: r.Opt.Epochs, Seed: r.Opt.Seed + 100, MaxSamplesPerEpoch: r.Opt.TrainSamples}
	dopt := models.DistillOptions{TrainOptions: topt}

	cs := &compressedSuite{cfg: small, distilled: distill}
	totalParams := 0
	for p := 0; p < s.NumPhases; p++ {
		dsPhaseTrain := dsTrain.FilterPhase(p)
		if len(dsPhaseTrain.Samples) == 0 {
			dsPhaseTrain = dsTrain
		}
		delta := models.NewAMMADelta(small, s.Train.PCs, 0, r.Opt.Seed+int64(200+p))
		page := models.NewBinaryPage(small, s.Train.Pages, s.Train.PCs, r.Opt.Seed+int64(300+p))
		if distill {
			if err := models.DistillDelta(delta, s.PSDelta.Models[p], dsPhaseTrain, dopt); err != nil {
				return nil, err
			}
			teacher, ok := s.PSPage.Models[p].(models.PageProber)
			if !ok {
				return nil, fmt.Errorf("experiments: phase teacher lacks PageProbs")
			}
			if err := models.DistillPage(page, teacher, dsPhaseTrain, dopt); err != nil {
				return nil, err
			}
		} else {
			if err := models.TrainDelta(delta, dsPhaseTrain, topt); err != nil {
				return nil, err
			}
			if err := models.TrainPage(page, dsPhaseTrain, topt); err != nil {
				return nil, err
			}
		}
		// 8-bit quantization (Section 6.1) on top of the width reduction.
		if _, err := nn.Quantize(delta, 8); err != nil {
			return nil, err
		}
		if _, err := nn.Quantize(page, 8); err != nil {
			return nil, err
		}
		totalParams += nn.CountParams(delta) + nn.CountParams(page)
		cs.quantBytes += nn.StorageBytes(delta, 8) + nn.StorageBytes(page, 8)
		cs.f16Bytes += nn.StorageBytes(delta, 16) + nn.StorageBytes(page, 16)
		cs.deltas = append(cs.deltas, delta)
		cs.pages = append(cs.pages, page)
	}
	cs.params = totalParams
	teacherParams := nn.CountParams(s.PSDelta) + nn.CountParams(s.PSPage)
	cs.ratio = float64(teacherParams) / float64(totalParams)
	cs.name = fmt.Sprintf("%.1fx", cs.ratio)
	cs.deltaF1 = models.EvalDeltaF1(&models.PhaseSpecificDelta{Models: cs.deltas}, dsTest.Samples, r.Opt.EvalSamples)
	cs.pageAcc = models.EvalPageAccAtK(&models.PhaseSpecificPage{Models: cs.pages}, dsTest.Samples, 10, r.Opt.EvalSamples)
	return cs, nil
}

func (cs *compressedSuite) prefetcher(r *Runner, historyT int, latency uint64) (*core.MPGraph, error) {
	opt := core.DefaultOptions()
	opt.LatencyCycles = latency
	det := phasedet.NewSoftKSWIN(phasedet.KSWINConfig{Seed: r.Opt.Seed})
	return core.New(opt, historyT, det, cs.deltas, cs.pages)
}

// f32Suite returns a single-precision copy of the compressed suite: the
// per-phase students narrowed to the f32 compute tier. Like the int8 rows,
// quality columns are not re-evaluated — the f32 rows measure speed and
// end-to-end IPC on the f32 kernels (parity is pinned in the models tests).
func (cs *compressedSuite) f32Suite() (*compressedSuite, error) {
	fd, fp, err := models.ConvertSuiteF32(
		&models.PhaseSpecificDelta{Models: cs.deltas},
		&models.PhaseSpecificPage{Models: cs.pages})
	if err != nil {
		return nil, err
	}
	out := *cs
	out.deltas = fd.(*models.PhaseSpecificDelta).Models
	out.pages = fp.(*models.PhaseSpecificPage).Models
	return &out, nil
}

// int8Suite returns an int8-quantized copy of the compressed suite: the
// per-phase students weight-quantized per channel and calibrated on the
// training samples. Prediction-quality columns are not re-evaluated (the
// float eval path would just repeat the float numbers; layer parity is
// covered by the models package tests) — the int8 rows exist to measure
// speed and end-to-end IPC on the integer kernels.
func (cs *compressedSuite) int8Suite(calib []*models.Sample) (*compressedSuite, error) {
	qd, err := models.QuantizeDelta(&models.PhaseSpecificDelta{Models: cs.deltas}, calib)
	if err != nil {
		return nil, err
	}
	qp, err := models.QuantizePage(&models.PhaseSpecificPage{Models: cs.pages}, calib)
	if err != nil {
		return nil, err
	}
	out := *cs
	out.deltas = qd.(*models.PhaseSpecificDelta).Models
	out.pages = qp.(*models.PhaseSpecificPage).Models
	return &out, nil
}

// measureOperateNs times steady-state Operate calls over the head of the
// test trace and returns the mean wall-clock ns per call. The reading is
// deliberately wall-clocked and flows into the Fig. 13 table: inference
// speed IS the measurement here, so this one figure sits outside the
// byte-identity replay oracle (every other column stays deterministic).
//
//mpgraph:allow-walltime -- inference latency is the Fig. 13 measurement itself; a mocked clock would measure nothing
func measureOperateNs(pf sim.Prefetcher, accs []trace.Access) float64 {
	const warmup, measured = 256, 2048
	if len(accs) == 0 {
		return 0
	}
	at := func(i int) sim.LLCAccess {
		a := accs[i%len(accs)]
		return sim.LLCAccess{Block: trace.Block(a.Addr), PC: a.PC, Core: a.Core, Phase: a.Phase}
	}
	for i := 0; i < warmup; i++ {
		pf.Operate(at(i))
	}
	start := time.Now()
	for i := 0; i < measured; i++ {
		pf.Operate(at(warmup + i))
	}
	return float64(time.Since(start).Nanoseconds()) / measured
}

// FigureDistillation regenerates Fig. 13: prediction quality and IPC
// improvement of MPGraph under increasing compression, with and without
// knowledge distillation, against the uncompressed teacher and BO.
func FigureDistillation(w io.Writer, r *Runner) error {
	wl := r.Opt.Workloads()[0]
	s, err := r.Suite(wl)
	if err != nil {
		return err
	}
	d, err := r.Data(wl)
	if err != nil {
		return err
	}
	section(w, fmt.Sprintf("Figure 13: Knowledge distillation under compression (workload %s)", wl))
	t := &Table{Header: []string{"Models", "Ratio", "Params(K)", "8bitKB", "f16KB", "DeltaF1", "PageAcc@10", "IPCImpv", "ns/op"}}

	// Teacher reference row. Under Options.Int8 (or Options.F32) this is
	// already the reduced-precision teacher — MPGraph converts behind the
	// flag.
	teacherPF, err := r.MPGraph(wl, core.DefaultOptions())
	if err != nil {
		return err
	}
	m, base, err := r.Simulate(wl, teacherPF)
	if err != nil {
		return err
	}
	teacherParams := nn.CountParams(s.PSDelta) + nn.CountParams(s.PSPage)
	teacherF16KB := float64(nn.StorageBytes(s.PSDelta, 16)+nn.StorageBytes(s.PSPage, 16)) / 1024
	teacherLabel := "teacher (AMMA-PS)"
	if r.Opt.Int8 {
		teacherLabel += " int8"
	}
	if r.Opt.F32 {
		teacherLabel += " f32"
	}
	t.Add(teacherLabel, "1.0x", fmt.Sprintf("%.1f", float64(teacherParams)/1000), "-",
		fmt.Sprintf("%.1f", teacherF16KB),
		f4(models.EvalDeltaF1(s.PSDelta, s.Test.Samples, r.Opt.EvalSamples)),
		f4(models.EvalPageAccAtK(s.PSPage, s.Test.Samples, 10, r.Opt.EvalSamples)),
		pct(m.IPCImprovement(base)), d1(measureOperateNs(teacherPF, d.TestRaw)))

	// BO reference row.
	bo := prefetch.NewBO(prefetch.DefaultBOConfig())
	mbo, _, err := r.Simulate(wl, bo)
	if err != nil {
		return err
	}
	t.Add("BO (rule-based)", "-", "-", "-", "-", "-", "-",
		pct(mbo.IPCImprovement(base)), d1(measureOperateNs(bo, d.TestRaw)))

	for _, divisor := range []int{2, 4} {
		for _, distill := range []bool{false, true} {
			cs, err := buildCompressed(r, wl, divisor, distill)
			if err != nil {
				return err
			}
			suites := []*compressedSuite{cs}
			variant := ""
			if r.Opt.Int8 {
				qcs, err := cs.int8Suite(s.Train.Samples)
				if err != nil {
					return err
				}
				suites = append(suites, qcs)
				variant = " int8"
			}
			if r.Opt.F32 {
				fcs, err := cs.f32Suite()
				if err != nil {
					return err
				}
				suites = append(suites, fcs)
				variant = " f32"
			}
			for i, suite := range suites {
				pf, err := suite.prefetcher(r, s.Cfg.HistoryT, 0)
				if err != nil {
					return err
				}
				m, base, err := r.Simulate(wl, pf)
				if err != nil {
					return err
				}
				label := fmt.Sprintf("student /%d", divisor)
				if distill {
					label += " +KD"
				}
				deltaF1, pageAcc := f4(suite.deltaF1), f4(suite.pageAcc)
				if i > 0 {
					// Reduced-precision rows measure speed, not re-derived
					// quality (see int8Suite / f32Suite).
					label += variant
					deltaF1, pageAcc = "-", "-"
				}
				t.Add(label, suite.name, fmt.Sprintf("%.1f", float64(suite.params)/1000),
					fmt.Sprintf("%.1f", float64(suite.quantBytes)/1024),
					fmt.Sprintf("%.1f", float64(suite.f16Bytes)/1024),
					deltaF1, pageAcc, pct(m.IPCImprovement(base)),
					d1(measureOperateNs(pf, d.TestRaw)))
			}
		}
	}
	t.Print(w)
	return nil
}

// d1 formats a measured nanosecond figure with one decimal.
func d1(v float64) string { return fmt.Sprintf("%.1f", v) }

// FigureDistancePrefetch regenerates Fig. 14: the effect of model inference
// latency with and without distance prefetching (models trained with
// future-shifted labels), against BO.
func FigureDistancePrefetch(w io.Writer, r *Runner) error {
	wl := r.Opt.Workloads()[0]
	d, err := r.Data(wl)
	if err != nil {
		return err
	}
	s, err := r.Suite(wl)
	if err != nil {
		return err
	}
	section(w, fmt.Sprintf("Figure 14: Distance prefetching vs inference latency (workload %s)", wl))

	// Distance-trained models: labels shifted 16 accesses into the future.
	cfg := s.Cfg
	dsDist, err := models.BuildDataset(cfg, d.LLCTrain, models.DatasetOptions{
		Stride:        maxInt(1, (len(d.LLCTrain)-cfg.HistoryT-cfg.LookForwardF)/(r.Opt.TrainSamples*2)+1),
		MaxSamples:    r.Opt.TrainSamples * 2,
		Pages:         s.Train.Pages,
		PCs:           s.Train.PCs,
		LabelDistance: 16,
	})
	if err != nil {
		return err
	}
	topt := models.TrainOptions{Epochs: r.Opt.Epochs, Seed: r.Opt.Seed + 400, MaxSamplesPerEpoch: r.Opt.TrainSamples}
	distDelta := models.NewPhaseSpecificDelta(cfg, s.Train.PCs, s.NumPhases, r.Opt.Seed+401)
	if err := models.TrainDelta(distDelta, dsDist, topt); err != nil {
		return err
	}
	distPage := models.NewPhaseSpecificPage(cfg, s.Train.Pages, s.Train.PCs, s.NumPhases, r.Opt.Seed+402)
	if err := models.TrainPage(distPage, dsDist, topt); err != nil {
		return err
	}

	build := func(dp bool, latency uint64) (sim.Prefetcher, error) {
		opt := core.DefaultOptions()
		opt.LatencyCycles = latency
		det := phasedet.NewSoftKSWIN(phasedet.KSWINConfig{Seed: r.Opt.Seed})
		if dp {
			return core.New(opt, cfg.HistoryT, det, distDelta.Models, distPage.Models)
		}
		deltas := make([]models.DeltaModel, len(s.PSDelta.Models))
		copy(deltas, s.PSDelta.Models)
		pages := make([]models.PageModel, len(s.PSPage.Models))
		copy(pages, s.PSPage.Models)
		return core.New(opt, cfg.HistoryT, det, deltas, pages)
	}

	t := &Table{Header: []string{"Variant", "Latency", "Accuracy", "Coverage", "IPCImpv"}}
	for _, row := range []struct {
		name    string
		dp      bool
		latency uint64
	}{
		{"MPGraph", false, 0},
		{"MPGraph", false, 200},
		{"MPGraph+DP", true, 0},
		{"MPGraph+DP", true, 200},
	} {
		pf, err := build(row.dp, row.latency)
		if err != nil {
			return err
		}
		m, base, err := r.Simulate(wl, pf)
		if err != nil {
			return err
		}
		t.Add(row.name, d2(row.latency), pct(m.Accuracy()), pct(m.Coverage()), pct(m.IPCImprovement(base)))
	}
	bo := prefetch.NewBO(prefetch.DefaultBOConfig())
	m, base, err := r.Simulate(wl, bo)
	if err != nil {
		return err
	}
	t.Add("BO", "0", pct(m.Accuracy()), pct(m.Coverage()), pct(m.IPCImprovement(base)))
	t.Print(w)
	return nil
}

func d2(v uint64) string { return fmt.Sprintf("%d", v) }

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
