package experiments

import (
	"fmt"
	"sync"

	"mpgraph/internal/core"
	"mpgraph/internal/frameworks"
	"mpgraph/internal/graph"
	"mpgraph/internal/models"
	"mpgraph/internal/phasedet"
	"mpgraph/internal/prefetch"
	"mpgraph/internal/resilience"
	"mpgraph/internal/sim"
	"mpgraph/internal/trace"
)

// Runner caches the expensive intermediate artifacts (graphs, traces, LLC
// streams, trained model suites) across experiment invocations.
type Runner struct {
	Opt Options

	// Events collects degradation events (recovered panics, quarantined
	// prefetchers, corrupt checkpoints) from every component the runner
	// wires together. Never nil.
	Events *resilience.Log

	mu     sync.Mutex
	graphs map[string]*graph.Graph
	data   map[Workload]*cell[*WorkloadData]
	suites map[Workload]*cell[*Suite]
	qpairs map[Workload]*cell[*qpair]
	fpairs map[Workload]*cell[*qpair]

	storeOnce sync.Once
	store     *resilience.Store
	storeErr  error

	// batchSched is the sweep-wide batched-inference scheduler, created
	// lazily when Options.Batch > 0 and shared by every ML prefetcher the
	// runner assembles.
	batchSched *prefetch.BatchScheduler

	sweepRows  map[string][]prefetchRow
	sweepOrder []string
}

// NewRunner builds a runner for opt.
func NewRunner(opt Options) *Runner {
	return &Runner{
		Opt:    opt,
		Events: &resilience.Log{},
		graphs: map[string]*graph.Graph{},
		data:   map[Workload]*cell[*WorkloadData]{},
		suites: map[Workload]*cell[*Suite]{},
		qpairs: map[Workload]*cell[*qpair]{},
		fpairs: map[Workload]*cell[*qpair]{},
	}
}

// cell coalesces concurrent computations of one cached artifact: the first
// caller runs the compute function under the cell's lock, every concurrent
// caller blocks on the same lock and shares the result. This keeps the
// expensive pipeline stages (framework runs, model training) race-free AND
// single-flight — without it, two goroutines asking for the same workload
// both paid the full cost and the last store won.
//
// Only success is cached. A failed compute leaves the cell empty, so a later
// caller retries instead of inheriting a stale transient error forever (the
// sync.Once design this replaced poisoned the cell on first failure: one
// injected fault made the artifact permanently uncomputable for the process
// lifetime).
type cell[T any] struct {
	mu   sync.Mutex
	wait chan struct{} // non-nil while a compute is in flight; closed when it settles
	done bool
	val  T
}

// get returns the cached value, computing it inside a resilience boundary
// when absent: a panic anywhere in the compute function surfaces as a
// *resilience.PanicError instead of killing the process.
//
// The compute runs OUTSIDE the cell lock: the first caller claims the
// flight by installing c.wait, concurrent callers block on that channel,
// and when the flight settles they re-check the cache (retrying the
// compute themselves if it failed). The lock only ever guards field
// access, so a panicking compute cannot strand it and the recovery
// boundary never extends a critical section.
func (c *cell[T]) get(boundary string, compute func() (T, error)) (T, error) {
	for {
		c.mu.Lock()
		if c.done {
			v := c.val
			c.mu.Unlock()
			return v, nil
		}
		if w := c.wait; w != nil {
			c.mu.Unlock()
			<-w
			continue
		}
		w := make(chan struct{})
		c.wait = w
		c.mu.Unlock()

		val, err := resilience.GuardVal(boundary, compute)

		c.mu.Lock()
		if err == nil {
			c.val = val
			c.done = true
		}
		c.wait = nil
		c.mu.Unlock()
		close(w)

		if err != nil {
			var zero T
			return zero, err
		}
		return val, nil
	}
}

// getCell returns (creating if needed) the cell for key in m, under mu.
func getCell[K comparable, T any](mu *sync.Mutex, m map[K]*cell[T], key K) *cell[T] {
	mu.Lock()
	defer mu.Unlock()
	c, ok := m[key]
	if !ok {
		c = &cell[T]{}
		m[key] = c
	}
	return c
}

// scheduler returns the shared batched-inference scheduler (nil when
// batching is off), creating it on first use.
func (r *Runner) scheduler() *prefetch.BatchScheduler {
	if r.Opt.Batch <= 0 {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.batchSched == nil {
		r.batchSched = prefetch.NewBatchScheduler(r.Opt.Batch)
	}
	return r.batchSched
}

// NewModelSession mints a fresh handle into the shared batched-inference
// scheduler for one externally-owned prefetcher session (the serving
// daemon's per-client sessions). Returns untyped nil when batching is off,
// so callers can test the interface value directly.
func (r *Runner) NewModelSession() core.ModelScheduler {
	sched := r.scheduler()
	if sched == nil {
		return nil
	}
	return sched.NewSession()
}

// WorkloadData is everything derived from one workload trace.
type WorkloadData struct {
	Trace     *trace.Trace
	Result    *frameworks.Result
	NumPhases int
	// TestRaw is the raw (pre-cache) access stream of the test iterations,
	// capped at MaxTestAccesses — the input to prefetcher simulations.
	TestRaw []trace.Access
	// LLCTrain and LLCTest are the shared-LLC streams captured from the
	// train (iteration 1) and test slices under no prefetching.
	LLCTrain []trace.Access
	LLCTest  []trace.Access
	// BaselineMetrics is the no-prefetch simulation of TestRaw.
	BaselineMetrics sim.Metrics
}

// Graph returns (generating once) the named dataset at the configured scale.
func (r *Runner) Graph(name string) (*graph.Graph, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.graphs[name]; ok {
		return g, nil
	}
	spec, err := graph.DatasetByName(name)
	if err != nil {
		return nil, err
	}
	g, err := spec.GenerateScale(r.Opt.graphScale())
	if err != nil {
		return nil, err
	}
	r.graphs[name] = g
	return g, nil
}

// Data returns (computing once, coalescing concurrent callers) the trace
// pipeline outputs for w. A failed compute is retryable; a panic during the
// compute is recovered into an error.
func (r *Runner) Data(w Workload) (*WorkloadData, error) {
	c := getCell(&r.mu, r.data, w)
	return c.get("experiments.Data("+w.String()+")", func() (*WorkloadData, error) {
		return r.computeData(w)
	})
}

func (r *Runner) computeData(w Workload) (*WorkloadData, error) {
	if err := r.Opt.Injector.Fire(resilience.PointArtifactBuild); err != nil {
		return nil, err
	}
	fw, err := frameworks.ByName(w.Framework)
	if err != nil {
		return nil, err
	}
	tr, res, ok, err := r.loadTraceCheckpoint(w)
	if err != nil {
		return nil, err
	}
	if !ok {
		g, err := r.Graph(w.Dataset)
		if err != nil {
			return nil, err
		}
		if tr, res, err = fw.Run(g, w.App, r.Opt.frameworkOptions()); err != nil {
			return nil, err
		}
		if err := r.saveTraceCheckpoint(w, tr, res); err != nil {
			return nil, err
		}
	}
	if tr.NumIterations() < 2 {
		return nil, fmt.Errorf("experiments: %s produced %d iterations, need >= 2", w, tr.NumIterations())
	}

	d := &WorkloadData{Trace: tr, Result: res, NumPhases: fw.NumPhases()}

	// Split: iteration 1 trains, the rest test (Section 5.1.4).
	trainLo, trainHi, err := tr.Iteration(0)
	if err != nil {
		return nil, err
	}
	trainRaw := tr.Accesses[trainLo:trainHi]
	testRawFull := tr.Accesses[trainHi:]
	// Simulations are capped for cost; the LLC streams used for prediction
	// and detection evaluation cover the full test slice so every barrier
	// transition is represented.
	testRaw := testRawFull
	if len(testRaw) > r.Opt.MaxTestAccesses {
		testRaw = testRaw[:r.Opt.MaxTestAccesses]
	}
	d.TestRaw = testRaw

	capture := func(raw []trace.Access) ([]trace.Access, sim.Metrics, error) {
		eng, err := sim.NewEngine(r.Opt.SimConfig(), nil)
		if err != nil {
			return nil, sim.Metrics{}, err
		}
		var llc []trace.Access
		eng.Recorder = func(a trace.Access, hit bool) { llc = append(llc, a) }
		m := eng.Run(raw)
		return llc, m, nil
	}
	if d.LLCTrain, _, err = capture(trainRaw); err != nil {
		return nil, err
	}
	if d.LLCTest, _, err = capture(testRawFull); err != nil {
		return nil, err
	}
	if _, d.BaselineMetrics, err = capture(testRaw); err != nil {
		return nil, err
	}
	minStream := r.Opt.ModelConfig().HistoryT + r.Opt.ModelConfig().LookForwardF + 2
	if len(d.LLCTrain) < minStream || len(d.LLCTest) < minStream {
		return nil, fmt.Errorf("experiments: %s LLC streams too short (%d train / %d test)", w, len(d.LLCTrain), len(d.LLCTest))
	}

	return d, nil
}

// Suite bundles the datasets and trained models for one workload.
type Suite struct {
	Cfg       models.Config
	Train     *models.Dataset
	Test      *models.Dataset
	NumPhases int

	// Delta predictors (Table 6 rows).
	LSTMDelta *models.LSTMDelta
	AttnDelta *models.AttnDelta
	AMMADelta *models.AMMADelta
	PIDelta   *models.AMMADelta
	PSDelta   *models.PhaseSpecificDelta

	// Page predictors (Table 7 rows).
	LSTMPage *models.LSTMPage
	AttnPage *models.AttnPage
	AMMAPage *models.AMMAPage
	PIPage   *models.AMMAPage
	PSPage   *models.PhaseSpecificPage
}

// Suite returns (training once, coalescing concurrent callers) the full
// model suite for w. A failed compute is retryable; a panic during the
// compute is recovered into an error.
func (r *Runner) Suite(w Workload) (*Suite, error) {
	c := getCell(&r.mu, r.suites, w)
	return c.get("experiments.Suite("+w.String()+")", func() (*Suite, error) {
		return r.computeSuite(w)
	})
}

func (r *Runner) computeSuite(w Workload) (*Suite, error) {
	// The skeleton — datasets extracted from the LLC streams and models
	// constructed at their fixed seeds — is rebuilt deterministically on
	// every path; a suite checkpoint only has to restore trained weights.
	s, d, err := r.suiteSkeleton(w)
	if err != nil {
		return nil, err
	}
	if ok, err := r.loadSuiteCheckpoint(w, s); err != nil {
		return nil, err
	} else if ok {
		return s, nil
	}

	topt := models.TrainOptions{
		Epochs: r.Opt.Epochs, Seed: r.Opt.Seed,
		MaxSamplesPerEpoch: r.Opt.TrainSamples, Hook: r.trainHook(),
	}
	// Phase-specific models see only their own phase's slice of each epoch;
	// scaling the epoch count by the phase count gives every per-phase
	// model the same number of gradient steps as the single-model rows.
	toptPS := topt
	toptPS.Epochs = topt.Epochs * d.NumPhases

	for _, m := range []models.DeltaModel{s.LSTMDelta, s.AttnDelta, s.AMMADelta, s.PIDelta} {
		if err := models.TrainDelta(m, s.Train, topt); err != nil {
			return nil, err
		}
	}
	if err := models.TrainDelta(s.PSDelta, s.Train, toptPS); err != nil {
		return nil, err
	}
	for _, m := range []models.PageModel{s.LSTMPage, s.AttnPage, s.AMMAPage, s.PIPage} {
		if err := models.TrainPage(m, s.Train, topt); err != nil {
			return nil, err
		}
	}
	if err := models.TrainPage(s.PSPage, s.Train, toptPS); err != nil {
		return nil, err
	}

	if err := r.saveSuiteCheckpoint(w, s); err != nil {
		return nil, err
	}
	return s, nil
}

// suiteSkeleton builds the untrained suite for w: datasets from the cached
// LLC streams plus every model at its constructor seed. The construction is
// fully deterministic, which is what lets a checkpoint restore weights into
// a structurally identical suite.
func (r *Runner) suiteSkeleton(w Workload) (*Suite, *WorkloadData, error) {
	d, err := r.Data(w)
	if err != nil {
		return nil, nil, err
	}
	cfg := r.Opt.ModelConfig()
	s := &Suite{Cfg: cfg, NumPhases: d.NumPhases}
	if s.Train, err = r.buildDataset(cfg, d.LLCTrain, nil); err != nil {
		return nil, nil, err
	}
	if s.Test, err = r.buildDataset(cfg, d.LLCTest, s.Train); err != nil {
		return nil, nil, err
	}
	seed := r.Opt.Seed
	s.LSTMDelta = models.NewLSTMDelta(cfg, seed+1)
	s.AttnDelta = models.NewAttnDelta(cfg, seed+2)
	s.AMMADelta = models.NewAMMADelta(cfg, s.Train.PCs, 0, seed+3)
	s.PIDelta = models.NewAMMADelta(cfg, s.Train.PCs, d.NumPhases, seed+4)
	s.PSDelta = models.NewPhaseSpecificDelta(cfg, s.Train.PCs, d.NumPhases, seed+5)
	s.LSTMPage = models.NewLSTMPage(cfg, s.Train.Pages, s.Train.PCs, seed+6)
	s.AttnPage = models.NewAttnPage(cfg, s.Train.Pages, s.Train.PCs, seed+7)
	s.AMMAPage = models.NewAMMAPage(cfg, s.Train.Pages, s.Train.PCs, 0, seed+8)
	s.PIPage = models.NewAMMAPage(cfg, s.Train.Pages, s.Train.PCs, d.NumPhases, seed+9)
	s.PSPage = models.NewPhaseSpecificPage(cfg, s.Train.Pages, s.Train.PCs, d.NumPhases, seed+10)
	return s, d, nil
}

// trainHook routes every training epoch through the train-epoch injection
// point (nil when no injector is armed, keeping training allocation-free).
func (r *Runner) trainHook() func(int) error {
	if r.Opt.Injector == nil {
		return nil
	}
	return func(int) error { return r.Opt.Injector.Fire(resilience.PointTrainEpoch) }
}

// buildDataset extracts a dataset, auto-tuning the stride so the sample
// count lands near the training budget.
func (r *Runner) buildDataset(cfg models.Config, stream []trace.Access, share *models.Dataset) (*models.Dataset, error) {
	budget := r.Opt.TrainSamples * 2
	if budget <= 0 {
		budget = 3000
	}
	usable := len(stream) - cfg.HistoryT - cfg.LookForwardF
	stride := usable/budget + 1
	opt := models.DatasetOptions{Stride: stride, MaxSamples: budget}
	if share != nil {
		opt.Pages, opt.PCs = share.Pages, share.PCs
	}
	return models.BuildDataset(cfg, stream, opt)
}

// Prefetchers builds the Section 5.4.1 comparison set for w: BO, ISB,
// Delta-LSTM, Voyager, TransFetch, and MPGraph (AMMA-PS + Soft-KSWIN +
// CSTP), all at total degree 6. Unless Options.DisableGuard is set, every
// ML prefetcher is wrapped in a degradation guard that quarantines it and
// falls back to a warm BO instance if its model misbehaves (recovered
// panics, non-finite scores, out-of-range blocks); a healthy guard is
// transparent, so guarded and unguarded sweeps print identical reports.
func (r *Runner) Prefetchers(w Workload) ([]sim.Prefetcher, error) {
	if err := r.Opt.validateBatch(); err != nil {
		return nil, err
	}
	s, err := r.Suite(w)
	if err != nil {
		return nil, err
	}
	T := s.Cfg.HistoryT
	mlOpt := prefetch.MLOptions{Degree: 6, DisableFastPath: r.Opt.DisableFastPath, Scheduler: r.scheduler()}

	mp, err := r.MPGraph(w, core.DefaultOptions())
	if err != nil {
		return nil, err
	}
	guard := func(pf sim.Prefetcher) sim.Prefetcher {
		if r.Opt.DisableGuard {
			return pf
		}
		fallback := prefetch.NewBO(prefetch.DefaultBOConfig())
		return prefetch.NewGuarded(pf, fallback, prefetch.GuardConfig{}, r.Events)
	}
	return []sim.Prefetcher{
		prefetch.NewBO(prefetch.DefaultBOConfig()),
		prefetch.NewISB(prefetch.DefaultISBConfig()),
		guard(prefetch.NewDeltaLSTM(s.LSTMDelta, T, mlOpt)),
		guard(prefetch.NewVoyager(s.LSTMPage, s.LSTMDelta, T, mlOpt)),
		guard(prefetch.NewTransFetch(s.AttnDelta, T, mlOpt)),
		guard(mp),
	}, nil
}

// qpair is one workload's int8-quantized phase-specific model pair.
type qpair struct {
	delta *models.PhaseSpecificDelta
	page  *models.PhaseSpecificPage
}

// quantizedPS returns (quantizing once, coalescing concurrent callers) the
// int8 mirrors of w's phase-specific delta/page models, calibrated on the
// training samples. Quantization reads trained float weights and runs
// calibration forwards, so like Suite it is single-flight per workload —
// the parallel sweep shares one quantized pair across all its simulations.
func (r *Runner) quantizedPS(w Workload) (*qpair, error) {
	c := getCell(&r.mu, r.qpairs, w)
	return c.get("experiments.QuantizedPS("+w.String()+")", func() (*qpair, error) {
		s, err := r.Suite(w)
		if err != nil {
			return nil, err
		}
		qd, qp, err := models.QuantizeSuite(s.PSDelta, s.PSPage, s.Train.Samples)
		if err != nil {
			return nil, err
		}
		return &qpair{
			delta: qd.(*models.PhaseSpecificDelta),
			page:  qp.(*models.PhaseSpecificPage),
		}, nil
	})
}

// f32PS returns (converting once, coalescing concurrent callers) the f32
// mirrors of w's phase-specific delta/page models. Conversion narrows
// trained float weights, so like quantization it is single-flight per
// workload and the parallel sweep shares one f32 pair.
func (r *Runner) f32PS(w Workload) (*qpair, error) {
	c := getCell(&r.mu, r.fpairs, w)
	return c.get("experiments.F32PS("+w.String()+")", func() (*qpair, error) {
		s, err := r.Suite(w)
		if err != nil {
			return nil, err
		}
		fd, fp, err := models.ConvertSuiteF32(s.PSDelta, s.PSPage)
		if err != nil {
			return nil, err
		}
		return &qpair{
			delta: fd.(*models.PhaseSpecificDelta),
			page:  fp.(*models.PhaseSpecificPage),
		}, nil
	})
}

// MPGraph assembles the full prefetcher for w with the given controller
// options: per-phase AMMA predictors plus a Soft-KSWIN detector. Under
// Options.Int8 the per-phase models are the calibrated int8 mirrors; under
// Options.F32 they are the narrowed single-precision mirrors.
func (r *Runner) MPGraph(w Workload, opt core.Options) (*core.MPGraph, error) {
	if err := r.Opt.validateBatch(); err != nil {
		return nil, err
	}
	s, err := r.Suite(w)
	if err != nil {
		return nil, err
	}
	if r.Opt.DisableFastPath {
		opt.DisableFastPath = true
	}
	if opt.Scheduler == nil {
		if sched := r.scheduler(); sched != nil {
			// One session per MPGraph instance; core talks to it through its
			// ModelScheduler seam (no core→prefetch dependency). Callers that
			// pre-set opt.Scheduler (the serving daemon wraps sessions with a
			// deadline-aware adapter) keep their own handle.
			opt.Scheduler = sched.NewSession()
		}
	}
	psDelta, psPage := s.PSDelta, s.PSPage
	if r.Opt.Int8 && !r.Opt.DisableFastPath {
		qp, err := r.quantizedPS(w)
		if err != nil {
			return nil, err
		}
		psDelta, psPage = qp.delta, qp.page
	}
	if r.Opt.F32 && !r.Opt.DisableFastPath {
		fp, err := r.f32PS(w)
		if err != nil {
			return nil, err
		}
		psDelta, psPage = fp.delta, fp.page
	}
	deltas := make([]models.DeltaModel, len(psDelta.Models))
	copy(deltas, psDelta.Models)
	pages := make([]models.PageModel, len(psPage.Models))
	copy(pages, psPage.Models)
	det := phasedet.NewSoftKSWIN(phasedet.KSWINConfig{Seed: r.Opt.Seed})
	return core.New(opt, s.Cfg.HistoryT, det, deltas, pages)
}

// Simulate runs pf over w's test trace and returns the metrics plus the
// cached no-prefetch baseline.
func (r *Runner) Simulate(w Workload, pf sim.Prefetcher) (sim.Metrics, sim.Metrics, error) {
	d, err := r.Data(w)
	if err != nil {
		return sim.Metrics{}, sim.Metrics{}, err
	}
	eng, err := sim.NewEngine(r.Opt.SimConfig(), pf)
	if err != nil {
		return sim.Metrics{}, sim.Metrics{}, err
	}
	return eng.Run(d.TestRaw), d.BaselineMetrics, nil
}
