package experiments

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"

	"mpgraph/internal/resilience"
)

func TestForEachIndexVisitsAll(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 16, 100} {
		hits := make([]atomic.Int64, 37)
		if err := forEachIndex(len(hits), workers, func(i int) error {
			hits[i].Add(1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, got)
			}
		}
	}
	if err := forEachIndex(0, 4, func(int) error {
		t.Fatal("fn called on empty range")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// Whatever the execution order, the reported error must be the one a serial
// loop would have stopped at: the lowest failing index.
func TestForEachIndexFirstErrorByIndex(t *testing.T) {
	failAt := map[int]bool{3: true, 11: true, 17: true}
	for _, workers := range []int{1, 4} {
		err := forEachIndex(20, workers, func(i int) error {
			if failAt[i] {
				return fmt.Errorf("fail at %d", i)
			}
			return nil
		})
		if err == nil || err.Error() != "fail at 3" {
			t.Fatalf("workers=%d: err = %v, want lowest failing index (3)", workers, err)
		}
	}
}

// TestForEachIndexRecoversPanic: a task panicking at a middle index must not
// crash the pool — it is recovered into that slot's error carrying the
// captured stack, and lowest-index-wins still holds against a plain error at
// a later index.
func TestForEachIndexRecoversPanic(t *testing.T) {
	for _, workers := range []int{1, 4} {
		err := forEachIndex(20, workers, func(i int) error {
			switch i {
			case 9:
				panic(fmt.Sprintf("boom at %d", i))
			case 15:
				return fmt.Errorf("fail at %d", i)
			}
			return nil
		})
		var pe *resilience.PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: err = %v, want recovered panic from index 9", workers, err)
		}
		if pe.Value != "boom at 9" || pe.Boundary != "experiments.forEachIndex" {
			t.Fatalf("workers=%d: recovered %q at boundary %q", workers, pe.Value, pe.Boundary)
		}
		if len(pe.Stack) == 0 {
			t.Fatalf("workers=%d: panic lost its stack", workers)
		}
	}
}

// TestSweepParallelMatchesSerial reruns the full prefetcher sweep serially
// and with a 4-worker pool and requires identical rows plus byte-identical
// rendered report tables — the scheduler's determinism contract. Under
// -race this doubles as the concurrency gate for the parallel sweep.
func TestSweepParallelMatchesSerial(t *testing.T) {
	orig := shared.Opt.Workers
	defer func() { shared.Opt.Workers = orig }()

	render := func(rows map[string][]prefetchRow, order []string) []byte {
		var buf bytes.Buffer
		printPrefetchTable(&buf, rows, order, func(r prefetchRow) float64 { return r.Metrics.Accuracy() })
		printPrefetchTable(&buf, rows, order, func(r prefetchRow) float64 { return r.Metrics.Coverage() })
		printPrefetchTable(&buf, rows, order, func(r prefetchRow) float64 { return r.Metrics.IPCImprovement(r.Baseline) })
		return buf.Bytes()
	}

	shared.Opt.Workers = 1
	sRows, sOrder, err := computePrefetchSweep(shared)
	if err != nil {
		t.Fatal(err)
	}
	shared.Opt.Workers = 4
	pRows, pOrder, err := computePrefetchSweep(shared)
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(sOrder, pOrder) {
		t.Fatalf("prefetcher order differs:\nserial:   %v\nparallel: %v", sOrder, pOrder)
	}
	if !reflect.DeepEqual(sRows, pRows) {
		t.Fatal("parallel sweep rows differ from serial")
	}
	if !bytes.Equal(render(sRows, sOrder), render(pRows, pOrder)) {
		t.Fatal("parallel sweep report is not byte-identical to serial")
	}
}

// TestSweepBatchByteIdentical reruns the sweep with the batched inference
// tier at every batch size and worker count and requires byte-identical
// rendered reports — the scheduler's composition-independence contract,
// end to end. Under -race this doubles as the concurrency gate for the
// batch tier.
func TestSweepBatchByteIdentical(t *testing.T) {
	origW, origB := shared.Opt.Workers, shared.Opt.Batch
	defer func() {
		shared.Opt.Workers, shared.Opt.Batch = origW, origB
		shared.batchSched = nil
	}()

	render := func(rows map[string][]prefetchRow, order []string) []byte {
		var buf bytes.Buffer
		printPrefetchTable(&buf, rows, order, func(r prefetchRow) float64 { return r.Metrics.Accuracy() })
		printPrefetchTable(&buf, rows, order, func(r prefetchRow) float64 { return r.Metrics.Coverage() })
		printPrefetchTable(&buf, rows, order, func(r prefetchRow) float64 { return r.Metrics.IPCImprovement(r.Baseline) })
		return buf.Bytes()
	}

	var want []byte
	for _, batch := range []int{1, 8, 64} {
		for _, workers := range []int{1, 4} {
			shared.Opt.Batch, shared.Opt.Workers = batch, workers
			// Fresh scheduler per configuration: the cached one was built
			// for the previous batch size.
			shared.batchSched = nil
			rows, order, err := computePrefetchSweep(shared)
			if err != nil {
				t.Fatalf("batch=%d workers=%d: %v", batch, workers, err)
			}
			got := render(rows, order)
			if want == nil {
				want = got
				continue
			}
			if !bytes.Equal(want, got) {
				t.Fatalf("batch=%d workers=%d: sweep report differs from batch=1 workers=1", batch, workers)
			}
		}
	}
}
