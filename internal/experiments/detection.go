package experiments

import (
	"fmt"
	"io"

	"mpgraph/internal/frameworks"
	"mpgraph/internal/phasedet"
	"mpgraph/internal/trace"
)

// pcStream extracts the PC sequence and ground-truth *major* transition
// indices from an LLC access stream. The paper's premise is that "phases are
// stable for millions of instructions"; at reproduction scale, converged
// frontier apps produce some phases of only a handful of LLC accesses, which
// no windowed detector can see. Segments shorter than minPhase are merged
// into their predecessor before transitions are extracted, so detectors are
// scored on the detectable phase structure.
func pcStream(accesses []trace.Access, minPhase int) (xs []float64, truth []int) {
	xs = make([]float64, len(accesses))
	for i, a := range accesses {
		xs[i] = float64(a.PC)
	}
	type segment struct {
		start int
		phase uint8
	}
	var segs []segment
	for i, a := range accesses {
		if i == 0 || a.Phase != accesses[i-1].Phase {
			segs = append(segs, segment{start: i, phase: a.Phase})
		}
	}
	// Drop short segments (merge into predecessor), then coalesce equal
	// neighbours.
	var major []segment
	for i, s := range segs {
		end := len(accesses)
		if i+1 < len(segs) {
			end = segs[i+1].start
		}
		if end-s.start < minPhase && len(major) > 0 {
			continue
		}
		if len(major) > 0 && major[len(major)-1].phase == s.phase {
			continue
		}
		major = append(major, s)
	}
	for i := 1; i < len(major); i++ {
		truth = append(truth, major[i].start)
	}
	return xs, truth
}

// minDetectablePhase is twice the KSWIN window: a phase must at least fill
// the sliding window to be distinguishable.
const minDetectablePhase = 600

// detectionTolerance allows a detector to lag up to half the shortest phase.
func detectionTolerance(truth []int, total int) int {
	minGap := total
	prev := 0
	for _, t := range truth {
		if g := t - prev; g < minGap {
			minGap = g
		}
		prev = t
	}
	if last := total - prev; last < minGap {
		minGap = last
	}
	tol := minGap / 2
	if tol < 200 {
		tol = 200
	}
	return tol
}

// trainPhaseTree fits the supervised CART on the labelled training stream.
func trainPhaseTree(accesses []trace.Access, window, buckets int) (*phasedet.DecisionTree, error) {
	feat := phasedet.NewPCFeaturizer(window, buckets)
	var X [][]float64
	var y []int
	for i, a := range accesses {
		if feat.Push(float64(a.PC)) && i%5 == 0 {
			X = append(X, feat.Features())
			y = append(y, int(a.Phase))
		}
	}
	tree := phasedet.NewDecisionTree(8, 4)
	if err := tree.Fit(X, y); err != nil {
		return nil, err
	}
	return tree, nil
}

// TablePhaseDetection regenerates Table 4: precision/recall/F1 of KSWIN vs
// Soft-KSWIN (unsupervised) and DT vs Soft-DT (supervised) per framework,
// aggregated over the framework's applications.
func TablePhaseDetection(w io.Writer, r *Runner) error {
	section(w, "Table 4: Phase Detection Evaluation")
	t := &Table{Header: []string{"Framework", "Train", "Detector", "P", "R", "F1"}}

	const detWindow, detBuckets = 96, 32
	for _, fw := range frameworks.All() {
		scores := map[string]*phasedet.Score{}
		add := func(name string, s phasedet.Score) {
			agg, ok := scores[name]
			if !ok {
				agg = &phasedet.Score{}
				scores[name] = agg
			}
			agg.TP += s.TP
			agg.FP += s.FP
			agg.Missed += s.Missed
		}
		totalTruth := map[string]int{}
		for _, app := range fw.Apps() {
			wl := Workload{Framework: fw.Name(), App: app, Dataset: r.Opt.Datasets[0]}
			d, err := r.Data(wl)
			if err != nil {
				return err
			}
			xs, truth := pcStream(d.LLCTest, minDetectablePhase)
			if len(truth) == 0 {
				continue
			}
			tol := detectionTolerance(truth, len(xs))

			tree, err := trainPhaseTree(d.LLCTrain, detWindow, detBuckets)
			if err != nil {
				return err
			}
			dets := []phasedet.Detector{
				phasedet.NewKSWIN(phasedet.KSWINConfig{Seed: r.Opt.Seed}),
				phasedet.NewSoftKSWIN(phasedet.KSWINConfig{Seed: r.Opt.Seed}),
				phasedet.NewDTDetector(tree, detWindow, detBuckets),
				// The result queue (800) spans above the minimum detectable phase so
				// sub-detectable segments rarely flip the tail mode while the lag stays
				// inside the matching tolerance.
				phasedet.NewSoftDTDetector(tree, detWindow, detBuckets, 800),
			}
			for _, det := range dets {
				found := phasedet.RunDetector(det, xs)
				add(det.Name(), phasedet.EvaluateDetections(found, truth, minDetectablePhase, tol))
				totalTruth[det.Name()] += len(truth)
			}
		}
		for _, row := range []struct{ train, name string }{
			{"U", "kswin"}, {"U", "soft-kswin"}, {"S", "dt"}, {"S", "soft-dt"},
		} {
			agg := scores[row.name]
			if agg == nil {
				continue
			}
			p, rec := 0.0, 0.0
			if agg.TP+agg.FP > 0 {
				p = float64(agg.TP) / float64(agg.TP+agg.FP)
			}
			if n := totalTruth[row.name]; n > 0 {
				rec = float64(n-agg.Missed) / float64(n)
			}
			f1 := 0.0
			if p+rec > 0 {
				f1 = 2 * p * rec / (p + rec)
			}
			t.Add(fw.Name(), row.train, row.name, f4(p), f4(rec), f4(f1))
		}
	}
	t.Print(w)
	return nil
}

// FigureCaseStudy regenerates Fig. 9: the detection timeline of KSWIN vs
// Soft-KSWIN on GPOP PageRank, showing the false positives hard detection
// produces and the small lag soft detection pays.
func FigureCaseStudy(w io.Writer, r *Runner) error {
	section(w, "Figure 9: Phase detection case study (GPOP PageRank)")
	wl := Workload{Framework: "gpop", App: frameworks.PR, Dataset: r.Opt.Datasets[0]}
	d, err := r.Data(wl)
	if err != nil {
		return err
	}
	xs, truth := pcStream(d.LLCTest, minDetectablePhase)
	hard := phasedet.RunDetector(phasedet.NewKSWIN(phasedet.KSWINConfig{Seed: r.Opt.Seed}), xs)
	soft := phasedet.RunDetector(phasedet.NewSoftKSWIN(phasedet.KSWINConfig{Seed: r.Opt.Seed}), xs)

	fmt.Fprintf(w, "stream length: %d LLC accesses\n", len(xs))
	fmt.Fprintf(w, "true transitions (%d): %v\n", len(truth), clip(truth, 12))
	fmt.Fprintf(w, "KSWIN detections (%d): %v\n", len(hard), clip(hard, 12))
	fmt.Fprintf(w, "Soft-KSWIN detections (%d): %v\n", len(soft), clip(soft, 12))
	tol := detectionTolerance(truth, len(xs))
	hs := phasedet.EvaluateDetections(hard, truth, minDetectablePhase, tol)
	ss := phasedet.EvaluateDetections(soft, truth, minDetectablePhase, tol)
	fmt.Fprintf(w, "KSWIN:      %v\n", hs)
	fmt.Fprintf(w, "Soft-KSWIN: %v\n", ss)
	// Lag of soft detection behind each matched truth.
	lags := 0
	n := 0
	for _, tr := range truth {
		for _, det := range soft {
			if det >= tr && det <= tr+tol {
				lags += det - tr
				n++
				break
			}
		}
	}
	if n > 0 {
		fmt.Fprintf(w, "Soft-KSWIN mean detection lag: %d accesses\n", lags/n)
	}
	return nil
}

func clip(xs []int, n int) []int {
	if len(xs) <= n {
		return xs
	}
	return xs[:n]
}
