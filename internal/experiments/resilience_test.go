package experiments

import (
	"bytes"
	"errors"
	"math"
	"os"
	"testing"

	"mpgraph/internal/frameworks"
	"mpgraph/internal/resilience"
)

// faultOptions is the smallest configuration that still exercises every
// pipeline stage — the fault-injection tests build several fresh runners
// (no shared cache), so they run at a scale below even tinyOptions.
func faultOptions() Options {
	o := DefaultOptions()
	o.GraphScale = 9
	o.Apps = []frameworks.App{frameworks.PR}
	o.TraceIterations = 3
	o.MaxTestAccesses = 8_000
	o.TrainSamples = 50
	o.EvalSamples = 30
	o.Epochs = 1
	return o
}

// TestCellRetryAfterError is the regression test for cell poisoning: an
// injected once-failing artifact build must fail the first Data call and
// succeed on retry. The old sync.Once cell cached the transient error
// forever.
func TestCellRetryAfterError(t *testing.T) {
	o := faultOptions()
	o.Injector = resilience.NewInjector(1).Arm(resilience.PointArtifactBuild, resilience.KindErr, 1)
	r := NewRunner(o)
	wl := o.Workloads()[0]

	_, err := r.Data(wl)
	var ie *resilience.InjectedError
	if !errors.As(err, &ie) || ie.Point != resilience.PointArtifactBuild {
		t.Fatalf("first Data call = %v, want injected artifact-build fault", err)
	}

	d, err := r.Data(wl)
	if err != nil {
		t.Fatalf("retry after transient failure: %v (cell poisoned?)", err)
	}
	if len(d.TestRaw) == 0 {
		t.Fatal("retried compute incomplete")
	}
	d2, err := r.Data(wl)
	if err != nil || d2 != d {
		t.Fatal("successful compute must stay cached single-flight")
	}
}

// TestCellRetryAfterPanic: an injected panic inside the compute is recovered
// at the cell boundary into a *resilience.PanicError and is equally
// retryable.
func TestCellRetryAfterPanic(t *testing.T) {
	o := faultOptions()
	o.Injector = resilience.NewInjector(1).Arm(resilience.PointArtifactBuild, resilience.KindPanic, 1)
	r := NewRunner(o)
	wl := o.Workloads()[0]

	_, err := r.Data(wl)
	var pe *resilience.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("first Data call = %v, want recovered panic", err)
	}
	if len(pe.Stack) == 0 {
		t.Fatal("recovered panic lost its stack")
	}
	if _, err := r.Data(wl); err != nil {
		t.Fatalf("retry after recovered panic: %v", err)
	}
}

// renderSweep renders the three sweep tables the figures print — the
// byte-identity oracle shared by the determinism and resume tests.
func renderSweep(rows map[string][]prefetchRow, order []string) []byte {
	var buf bytes.Buffer
	printPrefetchTable(&buf, rows, order, func(r prefetchRow) float64 { return r.Metrics.Accuracy() })
	printPrefetchTable(&buf, rows, order, func(r prefetchRow) float64 { return r.Metrics.Coverage() })
	printPrefetchTable(&buf, rows, order, func(r prefetchRow) float64 { return r.Metrics.IPCImprovement(r.Baseline) })
	return buf.Bytes()
}

// TestCrashResumeByteIdentical kills a checkpointing sweep mid-flight with
// an injected worker panic, then resumes from the checkpoints and requires
// the finished report to be byte-identical to an uncheckpointed clean run.
// The resuming runner's train-epoch point is armed to fail on first hit, so
// the test also proves resume restored the trained suites instead of
// silently retraining them.
func TestCrashResumeByteIdentical(t *testing.T) {
	dir := t.TempDir()
	base := faultOptions()

	// Clean reference run: no checkpoints anywhere.
	ref := NewRunner(base)
	refRows, refOrder, err := computePrefetchSweep(ref)
	if err != nil {
		t.Fatal(err)
	}
	want := renderSweep(refRows, refOrder)

	// Run A: checkpointing enabled; the second sweep task panics, killing
	// the sweep after the artifacts were built and saved.
	optA := base
	optA.CheckpointDir = dir
	optA.Injector = resilience.NewInjector(1).Arm(resilience.PointSweepWorker, resilience.KindPanic, 2)
	ra := NewRunner(optA)
	_, _, err = computePrefetchSweep(ra)
	var pe *resilience.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("crashed sweep = %v, want recovered worker panic", err)
	}

	// Run B: resume. Training is booby-trapped — if the suites were not
	// restored from checkpoints, the armed train-epoch fault would fail the
	// sweep on the very first epoch.
	optB := base
	optB.CheckpointDir = dir
	optB.Resume = true
	inB := resilience.NewInjector(1).Arm(resilience.PointTrainEpoch, resilience.KindErr, 1)
	optB.Injector = inB
	rb := NewRunner(optB)
	rows, order, err := computePrefetchSweep(rb)
	if err != nil {
		t.Fatalf("resumed sweep: %v", err)
	}
	if got := renderSweep(rows, order); !bytes.Equal(got, want) {
		t.Fatalf("resumed report not byte-identical to clean run:\n--- want ---\n%s\n--- got ---\n%s", want, got)
	}
	st, err := rb.Store()
	if err != nil {
		t.Fatal(err)
	}
	wls := len(base.Workloads())
	if hits := st.Stats().Hits; hits < uint64(2*wls) {
		t.Fatalf("resume hit %d checkpoints, want >= %d (trace+suite per workload)", hits, 2*wls)
	}
	if inB.Hits(resilience.PointTrainEpoch) != 0 {
		t.Fatal("resumed run retrained models instead of loading the suite checkpoint")
	}
}

// TestGuardedSweepDegrades poisons one workload's MPGraph phase models with
// NaN and requires the sweep to complete anyway: score screening flips the
// prefetcher's health, the guard quarantines it onto the warm BO fallback,
// and the degradation events record the whole story. When the CI fault
// harness sets MPGRAPH_DEGRADE_LOG, the event log is written there as the
// uploaded artifact.
func TestGuardedSweepDegrades(t *testing.T) {
	o := faultOptions()
	r := NewRunner(o)
	wl := o.Workloads()[0]
	s, err := r.Suite(wl)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range s.PSDelta.Params() {
		for i := range p.Data {
			p.Data[i] = math.NaN()
		}
	}

	rows, order, err := computePrefetchSweep(r)
	if err != nil {
		t.Fatalf("sweep with poisoned model must complete via fallback, got: %v", err)
	}
	if len(rows["mpgraph"]) != len(o.Workloads()) {
		t.Fatalf("mpgraph rows = %d, want one per workload (order %v)", len(rows["mpgraph"]), order)
	}
	if r.Events.Count("prefetch/mpgraph", "model-health") == 0 {
		t.Fatalf("no model-health violation recorded; events:\n%v", r.Events.Events())
	}
	if r.Events.Count("prefetch/mpgraph", "quarantine") == 0 {
		t.Fatalf("poisoned mpgraph never quarantined; events:\n%v", r.Events.Events())
	}

	if path := os.Getenv("MPGRAPH_DEGRADE_LOG"); path != "" {
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := r.Events.WriteTo(f); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestCheckpointDisabledByDefault: without a checkpoint dir every store
// accessor degrades to nil and the pipeline never touches disk.
func TestCheckpointDisabledByDefault(t *testing.T) {
	r := NewRunner(faultOptions())
	st, err := r.Store()
	if err != nil || st != nil {
		t.Fatalf("Store() = %v, %v; want nil, nil", st, err)
	}
	if _, _, ok, err := r.loadTraceCheckpoint(r.Opt.Workloads()[0]); ok || err != nil {
		t.Fatal("trace load without a store must be a silent miss")
	}
}
