package experiments

import (
	"testing"

	"mpgraph/internal/frameworks"
)

// benchSweepOptions shrinks the sweep to one workload (powergraph/tc/rmat)
// so `make bench -benchtime=1x` stays in CI budget while still simulating
// the full six-prefetcher comparison set.
func benchSweepOptions() Options {
	o := tinyOptions()
	o.Apps = []frameworks.App{frameworks.TC}
	return o
}

// benchSweepRunner trains the workload suite outside the timer so the
// benchmark measures only the simulations.
func benchSweepRunner(b *testing.B, disableFast bool, workers int) *Runner {
	b.Helper()
	o := benchSweepOptions()
	o.DisableFastPath = disableFast
	o.Workers = workers
	r := NewRunner(o)
	for _, wl := range o.Workloads() {
		if _, err := r.Prefetchers(wl); err != nil {
			b.Fatal(err)
		}
	}
	return r
}

func benchSweep(b *testing.B, r *Runner) {
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := BenchSweep(r); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPrefetchSweep is the headline number: arena fast path, full
// worker pool (on a single-core host this equals the serial fast path).
func BenchmarkPrefetchSweep(b *testing.B) {
	benchSweep(b, benchSweepRunner(b, false, 0))
}

// BenchmarkPrefetchSweepSerial isolates the fast path's single-thread gain
// (compare against LegacySerial) from the scheduler's multi-core gain
// (compare Sweep against this).
func BenchmarkPrefetchSweepSerial(b *testing.B) {
	benchSweep(b, benchSweepRunner(b, false, 1))
}

// BenchmarkPrefetchSweepLegacySerial is the pre-fast-path baseline: the
// allocating autograd inference path, serial scheduler.
func BenchmarkPrefetchSweepLegacySerial(b *testing.B) {
	benchSweep(b, benchSweepRunner(b, true, 1))
}
