package experiments

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"

	"mpgraph/internal/frameworks"
	"mpgraph/internal/nn"
	"mpgraph/internal/resilience"
	"mpgraph/internal/trace"
)

// Store returns the runner's checkpoint store, creating it on first use
// (nil when Options.CheckpointDir is empty — every save and load degrades to
// a no-op / cache miss through the store's nil-safety).
func (r *Runner) Store() (*resilience.Store, error) {
	if r.Opt.CheckpointDir == "" {
		return nil, nil
	}
	r.storeOnce.Do(func() {
		r.store, r.storeErr = resilience.NewStore(r.Opt.CheckpointDir, r.Opt.Injector, r.Events)
	})
	return r.store, r.storeErr
}

// loadStore resolves the store for load paths: nil (always a miss) unless
// resuming was requested.
func (r *Runner) loadStore() (*resilience.Store, error) {
	if !r.Opt.Resume {
		return nil, nil
	}
	return r.Store()
}

// artifactFingerprint identifies every option that changes a workload trace.
// A checkpoint whose fingerprint differs is stale and treated as a miss.
func (o Options) artifactFingerprint() string {
	return fmt.Sprintf("trace/v1 scale=%s graphScale=%d iters=%d seed=%d",
		o.Scale, o.graphScale(), o.TraceIterations, o.Seed)
}

// suiteFingerprint additionally covers everything that changes training.
func (o Options) suiteFingerprint() string {
	return fmt.Sprintf("suite/v1 %s maxTest=%d trainSamples=%d epochs=%d cfg=%+v",
		o.artifactFingerprint(), o.MaxTestAccesses, o.TrainSamples, o.Epochs, o.ModelConfig())
}

func traceKey(w Workload) string {
	return fmt.Sprintf("trace-%s-%s-%s", w.Framework, w.App, w.Dataset)
}

func suiteKey(w Workload) string {
	return fmt.Sprintf("suite-%s-%s-%s", w.Framework, w.App, w.Dataset)
}

// saveTraceCheckpoint persists w's generated trace and framework result.
func (r *Runner) saveTraceCheckpoint(w Workload, tr *trace.Trace, res *frameworks.Result) error {
	st, err := r.Store()
	if err != nil {
		return err
	}
	return st.Save(traceKey(w), r.Opt.artifactFingerprint(), func(wr io.Writer) error {
		// The result first: it is decoded with exact-length reads, so the
		// trace reader's internal buffering (last in the payload) cannot
		// swallow its bytes.
		if err := writeResult(wr, res); err != nil {
			return err
		}
		return trace.Write(wr, tr)
	})
}

// loadTraceCheckpoint restores w's trace and result; ok is false on any
// miss (no store, no resume, stale fingerprint, corruption).
func (r *Runner) loadTraceCheckpoint(w Workload) (tr *trace.Trace, res *frameworks.Result, ok bool, err error) {
	st, err := r.loadStore()
	if err != nil {
		return nil, nil, false, err
	}
	ok, err = st.Load(traceKey(w), r.Opt.artifactFingerprint(), func(rd io.Reader) error {
		if res, err = readResult(rd); err != nil {
			return err
		}
		tr, err = trace.Read(rd)
		return err
	})
	return tr, res, ok, err
}

// saveSuiteCheckpoint persists the trained weights of all ten suite models.
// Structure (datasets, vocab, model shapes) is NOT stored: the skeleton is
// rebuilt deterministically and only parameters round-trip, bit-exactly.
func (r *Runner) saveSuiteCheckpoint(w Workload, s *Suite) error {
	st, err := r.Store()
	if err != nil {
		return err
	}
	return st.Save(suiteKey(w), r.Opt.suiteFingerprint(), func(wr io.Writer) error {
		for _, m := range suiteModules(s) {
			if err := writeModule(wr, m); err != nil {
				return err
			}
		}
		return nil
	})
}

// loadSuiteCheckpoint restores trained weights into a freshly built
// skeleton; ok is false on any miss.
func (r *Runner) loadSuiteCheckpoint(w Workload, s *Suite) (bool, error) {
	st, err := r.loadStore()
	if err != nil {
		return false, err
	}
	return st.Load(suiteKey(w), r.Opt.suiteFingerprint(), func(rd io.Reader) error {
		for _, m := range suiteModules(s) {
			if err := readModule(rd, m); err != nil {
				return err
			}
		}
		return nil
	})
}

// suiteModules lists the suite's models in the fixed serialization order.
func suiteModules(s *Suite) []nn.Module {
	return []nn.Module{
		s.LSTMDelta, s.AttnDelta, s.AMMADelta, s.PIDelta, s.PSDelta,
		s.LSTMPage, s.AttnPage, s.AMMAPage, s.PIPage, s.PSPage,
	}
}

const ckptMaxBlob = 1 << 30

// writeModule length-prefixes one nn.Save blob so consecutive modules can be
// decoded with exact reads (nn.Load buffers internally and would otherwise
// consume the next module's bytes).
func writeModule(w io.Writer, m nn.Module) error {
	var buf bytes.Buffer
	if err := nn.Save(&buf, m); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, uint64(buf.Len())); err != nil {
		return err
	}
	_, err := w.Write(buf.Bytes())
	return err
}

func readModule(r io.Reader, m nn.Module) error {
	var n uint64
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return err
	}
	if n > ckptMaxBlob {
		return fmt.Errorf("experiments: module blob of %d bytes exceeds limit", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return err
	}
	return nn.Load(bytes.NewReader(buf), m)
}

func writeResult(w io.Writer, res *frameworks.Result) error {
	for _, s := range []string{string(res.App), res.Framework} {
		if err := writeString(w, s); err != nil {
			return err
		}
	}
	converged := uint64(0)
	if res.Converged {
		converged = 1
	}
	for _, v := range []uint64{uint64(res.Iterations), converged, uint64(len(res.Values))} {
		if err := binary.Write(w, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	return binary.Write(w, binary.LittleEndian, res.Values)
}

func readResult(r io.Reader) (*frameworks.Result, error) {
	res := &frameworks.Result{}
	app, err := readString(r)
	if err != nil {
		return nil, err
	}
	res.App = frameworks.App(app)
	if res.Framework, err = readString(r); err != nil {
		return nil, err
	}
	var hdr [3]uint64
	if err := binary.Read(r, binary.LittleEndian, &hdr); err != nil {
		return nil, err
	}
	if hdr[2] > ckptMaxBlob/8 {
		return nil, fmt.Errorf("experiments: result of %d values exceeds limit", hdr[2])
	}
	res.Iterations = int(hdr[0])
	res.Converged = hdr[1] == 1
	res.Values = make([]float64, hdr[2])
	if err := binary.Read(r, binary.LittleEndian, res.Values); err != nil {
		return nil, err
	}
	return res, nil
}

func writeString(w io.Writer, s string) error {
	if err := binary.Write(w, binary.LittleEndian, uint64(len(s))); err != nil {
		return err
	}
	_, err := io.WriteString(w, s)
	return err
}

func readString(r io.Reader) (string, error) {
	var n uint64
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return "", err
	}
	if n > 1<<16 {
		return "", fmt.Errorf("experiments: string of %d bytes exceeds limit", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}
