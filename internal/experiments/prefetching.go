package experiments

import (
	"fmt"
	"io"

	"mpgraph/internal/core"
	"mpgraph/internal/models"
	"mpgraph/internal/phasedet"
	"mpgraph/internal/prefetch"
	"mpgraph/internal/sim"
)

// prefetchRow is one (workload, prefetcher) simulation outcome.
type prefetchRow struct {
	Workload Workload
	Metrics  sim.Metrics
	Baseline sim.Metrics
}

// runPrefetchSweep simulates all Section 5.4.1 prefetchers over all
// workloads; Figs. 10-12 share one sweep via the Runner cache.
func runPrefetchSweep(r *Runner) (map[string][]prefetchRow, []string, error) {
	r.mu.Lock()
	if r.sweepRows != nil {
		rows, order := r.sweepRows, r.sweepOrder
		r.mu.Unlock()
		return rows, order, nil
	}
	r.mu.Unlock()
	results := map[string][]prefetchRow{}
	var order []string
	for _, wl := range r.Opt.Workloads() {
		pfs, err := r.Prefetchers(wl)
		if err != nil {
			return nil, nil, err
		}
		for _, pf := range pfs {
			m, base, err := r.Simulate(wl, pf)
			if err != nil {
				return nil, nil, err
			}
			if _, seen := results[pf.Name()]; !seen {
				order = append(order, pf.Name())
			}
			results[pf.Name()] = append(results[pf.Name()], prefetchRow{Workload: wl, Metrics: m, Baseline: base})
		}
	}
	r.mu.Lock()
	r.sweepRows, r.sweepOrder = results, order
	r.mu.Unlock()
	return results, order, nil
}

// FigurePrefetchAccuracy regenerates Fig. 10: prefetch accuracy per
// application for every prefetcher.
func FigurePrefetchAccuracy(w io.Writer, r *Runner) error {
	results, order, err := runPrefetchSweep(r)
	if err != nil {
		return err
	}
	section(w, "Figure 10: Prefetch accuracy")
	printPrefetchTable(w, results, order, func(row prefetchRow) float64 {
		return row.Metrics.Accuracy()
	})
	return nil
}

// FigurePrefetchCoverage regenerates Fig. 11: prefetch coverage.
func FigurePrefetchCoverage(w io.Writer, r *Runner) error {
	results, order, err := runPrefetchSweep(r)
	if err != nil {
		return err
	}
	section(w, "Figure 11: Prefetch coverage")
	printPrefetchTable(w, results, order, func(row prefetchRow) float64 {
		return row.Metrics.Coverage()
	})
	return nil
}

// FigureIPC regenerates Fig. 12: IPC improvement over no prefetching, per
// workload and averaged per framework.
func FigureIPC(w io.Writer, r *Runner) error {
	results, order, err := runPrefetchSweep(r)
	if err != nil {
		return err
	}
	section(w, "Figure 12: IPC improvement")
	printPrefetchTable(w, results, order, func(row prefetchRow) float64 {
		return row.Metrics.IPCImprovement(row.Baseline)
	})
	// Per-framework averages (the paper's headline 12.53/21.23/14.57%).
	t := &Table{Header: append([]string{"Framework avg"}, order...)}
	for _, fw := range []string{"gpop", "xstream", "powergraph"} {
		row := []string{fw}
		for _, name := range order {
			var vals []float64
			for _, pr := range results[name] {
				if pr.Workload.Framework == fw {
					vals = append(vals, pr.Metrics.IPCImprovement(pr.Baseline))
				}
			}
			row = append(row, pct(mean(vals)))
		}
		t.Add(row...)
	}
	fmt.Fprintln(w)
	t.Print(w)
	return nil
}

func printPrefetchTable(w io.Writer, results map[string][]prefetchRow, order []string, metric func(prefetchRow) float64) {
	t := &Table{Header: append([]string{"Workload"}, order...)}
	if len(order) == 0 {
		return
	}
	for i, pr := range results[order[0]] {
		row := []string{pr.Workload.String()}
		for _, name := range order {
			row = append(row, pct(metric(results[name][i])))
		}
		t.Add(row...)
	}
	avg := []string{"average"}
	for _, name := range order {
		var vals []float64
		for _, pr := range results[name] {
			vals = append(vals, metric(pr))
		}
		avg = append(avg, pct(mean(vals)))
	}
	t.Add(avg...)
	t.Print(w)
}

// AblationCSTP isolates the chain spatio-temporal strategy (DESIGN.md §5):
// MPGraph with spatial-only prefetching (Dt=0), a deeper spatial-only
// budget, and the full chain, on one representative workload.
func AblationCSTP(w io.Writer, r *Runner) error {
	wl := r.Opt.Workloads()[0]
	section(w, fmt.Sprintf("Ablation: CSTP chaining (workload %s)", wl))
	t := &Table{Header: []string{"Variant", "Ds", "Dt", "Accuracy", "Coverage", "IPCImpv"}}
	variants := []struct {
		name   string
		ds, dt int
	}{
		{"spatial-only", 2, 0},
		{"spatial-only-deep", 6, 0},
		{"cstp-shallow", 2, 1},
		{"cstp-full", 2, 2},
	}
	for _, v := range variants {
		opt := core.DefaultOptions()
		opt.SpatialDegree, opt.TemporalDegree = v.ds, v.dt
		pf, err := r.MPGraph(wl, opt)
		if err != nil {
			return err
		}
		m, base, err := r.Simulate(wl, pf)
		if err != nil {
			return err
		}
		t.Add(v.name, d(v.ds), d(v.dt), pct(m.Accuracy()), pct(m.Coverage()), pct(m.IPCImprovement(base)))
	}
	t.Print(w)
	return nil
}

// AblationPhases isolates the value of phase handling: MPGraph with the
// detector, with oracle phase labels, and locked to a single phase model.
func AblationPhases(w io.Writer, r *Runner) error {
	wl := r.Opt.Workloads()[0]
	section(w, fmt.Sprintf("Ablation: phase handling (workload %s)", wl))
	t := &Table{Header: []string{"Variant", "Accuracy", "Coverage", "IPCImpv"}}

	detOpt := core.DefaultOptions()
	pf, err := r.MPGraph(wl, detOpt)
	if err != nil {
		return err
	}
	m, base, err := r.Simulate(wl, pf)
	if err != nil {
		return err
	}
	t.Add("soft-kswin detector", pct(m.Accuracy()), pct(m.Coverage()), pct(m.IPCImprovement(base)))

	oracleOpt := core.DefaultOptions()
	oracleOpt.OraclePhase = true
	pf, err = r.MPGraph(wl, oracleOpt)
	if err != nil {
		return err
	}
	m, base, err = r.Simulate(wl, pf)
	if err != nil {
		return err
	}
	t.Add("oracle phase", pct(m.Accuracy()), pct(m.Coverage()), pct(m.IPCImprovement(base)))
	t.Print(w)
	return nil
}

// AblationPerCore compares the shared-detector MPGraph with the per-core
// detector variant (the asynchronous-framework extension from the paper's
// conclusion) on one representative workload.
func AblationPerCore(w io.Writer, r *Runner) error {
	wl := r.Opt.Workloads()[0]
	section(w, fmt.Sprintf("Ablation: per-core phase detection (workload %s)", wl))
	s, err := r.Suite(wl)
	if err != nil {
		return err
	}
	t := &Table{Header: []string{"Variant", "Accuracy", "Coverage", "IPCImpv", "Transitions"}}

	shared, err := r.MPGraph(wl, core.DefaultOptions())
	if err != nil {
		return err
	}
	m, base, err := r.Simulate(wl, shared)
	if err != nil {
		return err
	}
	t.Add("shared detector", pct(m.Accuracy()), pct(m.Coverage()), pct(m.IPCImprovement(base)), d(shared.Transitions))

	deltas := make([]models.DeltaModel, len(s.PSDelta.Models))
	copy(deltas, s.PSDelta.Models)
	pages := make([]models.PageModel, len(s.PSPage.Models))
	copy(pages, s.PSPage.Models)
	seed := r.Opt.Seed
	perCore, err := core.NewPerCore(core.DefaultOptions(), s.Cfg.HistoryT, 4, func() phasedet.Detector {
		seed++
		return phasedet.NewSoftKSWIN(phasedet.KSWINConfig{Seed: seed})
	}, deltas, pages)
	if err != nil {
		return err
	}
	m, base, err = r.Simulate(wl, perCore)
	if err != nil {
		return err
	}
	t.Add("per-core detectors", pct(m.Accuracy()), pct(m.Coverage()), pct(m.IPCImprovement(base)), d(perCore.Transitions))
	t.Print(w)
	return nil
}

// TableExtendedBaselines goes beyond the paper's comparison set: the other
// rule-based prefetchers its related-work section discusses (VLDP, Domino,
// IMP) plus feedback-directed throttling layered on BO, all on one
// representative workload. Rule-based only, so this table is cheap.
func TableExtendedBaselines(w io.Writer, r *Runner) error {
	wl := r.Opt.Workloads()[0]
	section(w, fmt.Sprintf("Extended rule-based baselines (workload %s)", wl))
	t := &Table{Header: []string{"Prefetcher", "Accuracy", "Coverage", "IPCImpv", "Issued"}}
	pfs := []sim.Prefetcher{
		prefetch.NewBO(prefetch.DefaultBOConfig()),
		prefetch.NewISB(prefetch.DefaultISBConfig()),
		prefetch.NewVLDP(prefetch.DefaultVLDPConfig()),
		prefetch.NewDomino(prefetch.DefaultDominoConfig()),
		prefetch.NewIMP(prefetch.DefaultIMPConfig()),
		prefetch.NewSMS(prefetch.DefaultSMSConfig()),
		prefetch.NewMarkov(prefetch.DefaultMarkovConfig()),
		prefetch.NewThrottle(prefetch.NewBO(prefetch.DefaultBOConfig()), prefetch.DefaultThrottleConfig()),
		prefetch.NewEnsemble(prefetch.DefaultEnsembleConfig(),
			prefetch.NewBO(prefetch.DefaultBOConfig()),
			prefetch.NewDomino(prefetch.DefaultDominoConfig()),
			prefetch.NewVLDP(prefetch.DefaultVLDPConfig())),
	}
	for _, pf := range pfs {
		m, base, err := r.Simulate(wl, pf)
		if err != nil {
			return err
		}
		t.Add(pf.Name(), pct(m.Accuracy()), pct(m.Coverage()), pct(m.IPCImprovement(base)), d(int(m.PrefetchesIssued)))
	}
	t.Print(w)
	return nil
}
