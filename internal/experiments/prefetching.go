package experiments

import (
	"fmt"
	"io"

	"mpgraph/internal/core"
	"mpgraph/internal/models"
	"mpgraph/internal/phasedet"
	"mpgraph/internal/prefetch"
	"mpgraph/internal/resilience"
	"mpgraph/internal/sim"
)

// prefetchRow is one (workload, prefetcher) simulation outcome.
type prefetchRow struct {
	Workload Workload
	Metrics  sim.Metrics
	Baseline sim.Metrics
}

// runPrefetchSweep simulates all Section 5.4.1 prefetchers over all
// workloads; Figs. 10-12 share one sweep via the Runner cache. Independent
// (workload, prefetcher) simulations fan out across Options.Workers
// goroutines, then the rows are assembled in the serial sweep's exact
// workload-outer / prefetcher-inner order — the printed tables are
// byte-identical at any worker count.
func runPrefetchSweep(r *Runner) (map[string][]prefetchRow, []string, error) {
	r.mu.Lock()
	if r.sweepRows != nil {
		rows, order := r.sweepRows, r.sweepOrder
		r.mu.Unlock()
		return rows, order, nil
	}
	r.mu.Unlock()
	results, order, err := computePrefetchSweep(r)
	if err != nil {
		return nil, nil, err
	}
	r.mu.Lock()
	r.sweepRows, r.sweepOrder = results, order
	r.mu.Unlock()
	return results, order, nil
}

// BenchSweep recomputes the full prefetcher sweep, bypassing the Runner's
// row cache — the benchmark entry point. Workload traces and trained model
// suites stay cached on r, so repeated calls time only the simulations.
func BenchSweep(r *Runner) error {
	_, _, err := computePrefetchSweep(r) //mpgraph:allow errdrop -- benchmark times the sweep; the rows are the cached-path's concern
	return err
}

// computePrefetchSweep runs the sweep under the bounded scheduler.
func computePrefetchSweep(r *Runner) (map[string][]prefetchRow, []string, error) {
	wls := r.Opt.Workloads()
	workers := r.Opt.workers()

	// Stage 1: per-workload prefetcher sets. Fanning this stage out trains
	// the model suites for distinct workloads concurrently (the Runner's
	// cells coalesce duplicate requests; training never touches the global
	// grad flag, so concurrent suites are independent).
	pfsByWl := make([][]sim.Prefetcher, len(wls))
	err := forEachIndex(len(wls), workers, func(i int) error {
		var err error
		pfsByWl[i], err = r.Prefetchers(wls[i])
		return err
	})
	if err != nil {
		return nil, nil, err
	}

	// Stage 2: one task per (workload, prefetcher) pair. Every simulation
	// owns its prefetcher instance (history, arena, tables are per-instance
	// state), so tasks share only immutable trained weights; each result
	// lands in the slot keyed by its (workload, prefetcher) index.
	type pair struct{ wi, pi int }
	var pairs []pair
	rows := make([][]prefetchRow, len(wls))
	for wi := range wls {
		rows[wi] = make([]prefetchRow, len(pfsByWl[wi]))
		for pi := range pfsByWl[wi] {
			pairs = append(pairs, pair{wi, pi})
		}
	}
	err = forEachIndex(len(pairs), workers, func(i int) error {
		if err := r.Opt.Injector.Fire(resilience.PointSweepWorker); err != nil {
			return err
		}
		p := pairs[i]
		pf := pfsByWl[p.wi][p.pi]
		// Batched inference: register the prefetcher's scheduler session for
		// the duration of its simulation so the flush watermark knows which
		// sessions can still submit. No-op for prefetchers without one.
		if b, ok := pf.(interface {
			JoinBatch()
			LeaveBatch()
		}); ok {
			b.JoinBatch()
			defer b.LeaveBatch()
		}
		m, base, err := r.Simulate(wls[p.wi], pf)
		if err != nil {
			return err
		}
		rows[p.wi][p.pi] = prefetchRow{Workload: wls[p.wi], Metrics: m, Baseline: base}
		return nil
	})
	if err != nil {
		return nil, nil, err
	}

	// Assembly replays the serial iteration order exactly: results[name]
	// rows appear in workload order, order lists first-seen names.
	results := map[string][]prefetchRow{}
	var order []string
	for wi := range wls {
		for pi, pf := range pfsByWl[wi] {
			name := pf.Name()
			if _, seen := results[name]; !seen {
				order = append(order, name)
			}
			results[name] = append(results[name], rows[wi][pi])
		}
	}
	return results, order, nil
}

// FigurePrefetchAccuracy regenerates Fig. 10: prefetch accuracy per
// application for every prefetcher.
func FigurePrefetchAccuracy(w io.Writer, r *Runner) error {
	results, order, err := runPrefetchSweep(r)
	if err != nil {
		return err
	}
	section(w, "Figure 10: Prefetch accuracy")
	printPrefetchTable(w, results, order, func(row prefetchRow) float64 {
		return row.Metrics.Accuracy()
	})
	return nil
}

// FigurePrefetchCoverage regenerates Fig. 11: prefetch coverage.
func FigurePrefetchCoverage(w io.Writer, r *Runner) error {
	results, order, err := runPrefetchSweep(r)
	if err != nil {
		return err
	}
	section(w, "Figure 11: Prefetch coverage")
	printPrefetchTable(w, results, order, func(row prefetchRow) float64 {
		return row.Metrics.Coverage()
	})
	return nil
}

// FigureIPC regenerates Fig. 12: IPC improvement over no prefetching, per
// workload and averaged per framework.
func FigureIPC(w io.Writer, r *Runner) error {
	results, order, err := runPrefetchSweep(r)
	if err != nil {
		return err
	}
	section(w, "Figure 12: IPC improvement")
	printPrefetchTable(w, results, order, func(row prefetchRow) float64 {
		return row.Metrics.IPCImprovement(row.Baseline)
	})
	// Per-framework averages (the paper's headline 12.53/21.23/14.57%).
	t := &Table{Header: append([]string{"Framework avg"}, order...)}
	for _, fw := range []string{"gpop", "xstream", "powergraph"} {
		row := []string{fw}
		for _, name := range order {
			var vals []float64
			for _, pr := range results[name] {
				if pr.Workload.Framework == fw {
					vals = append(vals, pr.Metrics.IPCImprovement(pr.Baseline))
				}
			}
			row = append(row, pct(mean(vals)))
		}
		t.Add(row...)
	}
	fmt.Fprintln(w)
	t.Print(w)
	return nil
}

func printPrefetchTable(w io.Writer, results map[string][]prefetchRow, order []string, metric func(prefetchRow) float64) {
	t := &Table{Header: append([]string{"Workload"}, order...)}
	if len(order) == 0 {
		return
	}
	for i, pr := range results[order[0]] {
		row := []string{pr.Workload.String()}
		for _, name := range order {
			row = append(row, pct(metric(results[name][i])))
		}
		t.Add(row...)
	}
	avg := []string{"average"}
	for _, name := range order {
		var vals []float64
		for _, pr := range results[name] {
			vals = append(vals, metric(pr))
		}
		avg = append(avg, pct(mean(vals)))
	}
	t.Add(avg...)
	t.Print(w)
}

// AblationCSTP isolates the chain spatio-temporal strategy (DESIGN.md §5):
// MPGraph with spatial-only prefetching (Dt=0), a deeper spatial-only
// budget, and the full chain, on one representative workload.
func AblationCSTP(w io.Writer, r *Runner) error {
	wl := r.Opt.Workloads()[0]
	section(w, fmt.Sprintf("Ablation: CSTP chaining (workload %s)", wl))
	t := &Table{Header: []string{"Variant", "Ds", "Dt", "Accuracy", "Coverage", "IPCImpv"}}
	variants := []struct {
		name   string
		ds, dt int
	}{
		{"spatial-only", 2, 0},
		{"spatial-only-deep", 6, 0},
		{"cstp-shallow", 2, 1},
		{"cstp-full", 2, 2},
	}
	for _, v := range variants {
		opt := core.DefaultOptions()
		opt.SpatialDegree, opt.TemporalDegree = v.ds, v.dt
		pf, err := r.MPGraph(wl, opt)
		if err != nil {
			return err
		}
		m, base, err := r.Simulate(wl, pf)
		if err != nil {
			return err
		}
		t.Add(v.name, d(v.ds), d(v.dt), pct(m.Accuracy()), pct(m.Coverage()), pct(m.IPCImprovement(base)))
	}
	t.Print(w)
	return nil
}

// AblationPhases isolates the value of phase handling: MPGraph with the
// detector, with oracle phase labels, and locked to a single phase model.
func AblationPhases(w io.Writer, r *Runner) error {
	wl := r.Opt.Workloads()[0]
	section(w, fmt.Sprintf("Ablation: phase handling (workload %s)", wl))
	t := &Table{Header: []string{"Variant", "Accuracy", "Coverage", "IPCImpv"}}

	detOpt := core.DefaultOptions()
	pf, err := r.MPGraph(wl, detOpt)
	if err != nil {
		return err
	}
	m, base, err := r.Simulate(wl, pf)
	if err != nil {
		return err
	}
	t.Add("soft-kswin detector", pct(m.Accuracy()), pct(m.Coverage()), pct(m.IPCImprovement(base)))

	oracleOpt := core.DefaultOptions()
	oracleOpt.OraclePhase = true
	pf, err = r.MPGraph(wl, oracleOpt)
	if err != nil {
		return err
	}
	m, base, err = r.Simulate(wl, pf)
	if err != nil {
		return err
	}
	t.Add("oracle phase", pct(m.Accuracy()), pct(m.Coverage()), pct(m.IPCImprovement(base)))
	t.Print(w)
	return nil
}

// AblationPerCore compares the shared-detector MPGraph with the per-core
// detector variant (the asynchronous-framework extension from the paper's
// conclusion) on one representative workload.
func AblationPerCore(w io.Writer, r *Runner) error {
	wl := r.Opt.Workloads()[0]
	section(w, fmt.Sprintf("Ablation: per-core phase detection (workload %s)", wl))
	s, err := r.Suite(wl)
	if err != nil {
		return err
	}
	t := &Table{Header: []string{"Variant", "Accuracy", "Coverage", "IPCImpv", "Transitions"}}

	shared, err := r.MPGraph(wl, core.DefaultOptions())
	if err != nil {
		return err
	}
	m, base, err := r.Simulate(wl, shared)
	if err != nil {
		return err
	}
	t.Add("shared detector", pct(m.Accuracy()), pct(m.Coverage()), pct(m.IPCImprovement(base)), d(shared.Transitions))

	deltas := make([]models.DeltaModel, len(s.PSDelta.Models))
	copy(deltas, s.PSDelta.Models)
	pages := make([]models.PageModel, len(s.PSPage.Models))
	copy(pages, s.PSPage.Models)
	seed := r.Opt.Seed
	pcOpt := core.DefaultOptions()
	pcOpt.DisableFastPath = r.Opt.DisableFastPath
	perCore, err := core.NewPerCore(pcOpt, s.Cfg.HistoryT, 4, func() phasedet.Detector {
		seed++
		return phasedet.NewSoftKSWIN(phasedet.KSWINConfig{Seed: seed})
	}, deltas, pages)
	if err != nil {
		return err
	}
	m, base, err = r.Simulate(wl, perCore)
	if err != nil {
		return err
	}
	t.Add("per-core detectors", pct(m.Accuracy()), pct(m.Coverage()), pct(m.IPCImprovement(base)), d(perCore.Transitions))
	t.Print(w)
	return nil
}

// TableExtendedBaselines goes beyond the paper's comparison set: the other
// rule-based prefetchers its related-work section discusses (VLDP, Domino,
// IMP) plus feedback-directed throttling layered on BO, all on one
// representative workload. Rule-based only, so this table is cheap.
func TableExtendedBaselines(w io.Writer, r *Runner) error {
	wl := r.Opt.Workloads()[0]
	section(w, fmt.Sprintf("Extended rule-based baselines (workload %s)", wl))
	t := &Table{Header: []string{"Prefetcher", "Accuracy", "Coverage", "IPCImpv", "Issued"}}
	pfs := []sim.Prefetcher{
		prefetch.NewBO(prefetch.DefaultBOConfig()),
		prefetch.NewISB(prefetch.DefaultISBConfig()),
		prefetch.NewVLDP(prefetch.DefaultVLDPConfig()),
		prefetch.NewDomino(prefetch.DefaultDominoConfig()),
		prefetch.NewIMP(prefetch.DefaultIMPConfig()),
		prefetch.NewSMS(prefetch.DefaultSMSConfig()),
		prefetch.NewMarkov(prefetch.DefaultMarkovConfig()),
		prefetch.NewThrottle(prefetch.NewBO(prefetch.DefaultBOConfig()), prefetch.DefaultThrottleConfig()),
		prefetch.NewEnsemble(prefetch.DefaultEnsembleConfig(),
			prefetch.NewBO(prefetch.DefaultBOConfig()),
			prefetch.NewDomino(prefetch.DefaultDominoConfig()),
			prefetch.NewVLDP(prefetch.DefaultVLDPConfig())),
	}
	for _, pf := range pfs {
		m, base, err := r.Simulate(wl, pf)
		if err != nil {
			return err
		}
		t.Add(pf.Name(), pct(m.Accuracy()), pct(m.Coverage()), pct(m.IPCImprovement(base)), d(int(m.PrefetchesIssued)))
	}
	t.Print(w)
	return nil
}
