package experiments

import (
	"fmt"
	"io"
	"strings"

	"mpgraph/internal/frameworks"
	"mpgraph/internal/graph"
	"mpgraph/internal/models"
	"mpgraph/internal/nn"
)

// TableFrameworks regenerates Table 1: the benchmark frameworks, their
// paradigms, phase counts, and applications.
func TableFrameworks(w io.Writer, r *Runner) error {
	section(w, "Table 1: Benchmark Graph Frameworks and Applications")
	t := &Table{Header: []string{"Framework", "Paradigm", "N", "Applications"}}
	paradigm := map[string]string{
		"gpop":       "Scatter-Gather (partition-centric)",
		"xstream":    "Scatter-Gather (edge-centric)",
		"powergraph": "GAS",
	}
	for _, fw := range frameworks.All() {
		apps := make([]string, len(fw.Apps()))
		for i, a := range fw.Apps() {
			apps[i] = strings.ToUpper(string(a))
		}
		t.Add(fw.Name(), paradigm[fw.Name()], d(fw.NumPhases()), strings.Join(apps, ", "))
	}
	t.Print(w)
	return nil
}

// TableDatasets regenerates Table 2: the benchmark graphs with their
// (scaled) sizes and the structural stats the generators preserve.
func TableDatasets(w io.Writer, r *Runner) error {
	section(w, fmt.Sprintf("Table 2: Graph Datasets (reproduction scale 2^%d)", r.Opt.graphScale()))
	t := &Table{Header: []string{"Dataset", "Class", "Vertices", "Edges", "MaxDeg", "Gini", "Local"}}
	for _, spec := range graph.Datasets {
		g, err := r.Graph(spec.Name)
		if err != nil {
			return err
		}
		s := graph.ComputeStats(g)
		t.Add(spec.Name, spec.Class.String(), d(s.NumVertices), d(s.NumEdges),
			d(s.MaxOutDegree), f3(s.GiniOutDegree), f3(s.LocalEdgeFraction))
	}
	t.Print(w)
	return nil
}

// TableSimParams regenerates Table 3: the simulator configuration in use.
func TableSimParams(w io.Writer, r *Runner) error {
	section(w, fmt.Sprintf("Table 3: Simulation Parameters (scale %q)", r.Opt.Scale))
	cfg := r.Opt.SimConfig()
	t := &Table{Header: []string{"Parameter", "Value"}}
	t.Add("CPU", fmt.Sprintf("%d cores, %d-wide, %d outstanding misses", cfg.Cores, cfg.IssueWidth, cfg.MaxOutstanding))
	t.Add("L1 D-cache", fmt.Sprintf("%d KB, %d-way, %d-cycle", cfg.L1Sets*cfg.L1Ways*64/1024, cfg.L1Ways, cfg.L1Latency))
	t.Add("L2 cache", fmt.Sprintf("%d KB, %d-way, %d-cycle", cfg.L2Sets*cfg.L2Ways*64/1024, cfg.L2Ways, cfg.L2Latency))
	t.Add("LL cache", fmt.Sprintf("%d KB, %d-way, %d-cycle", cfg.LLCSets*cfg.LLCWays*64/1024, cfg.LLCWays, cfg.LLCLatency))
	t.Add("DRAM", fmt.Sprintf("%d-cycle latency, %d cycles/block channel occupancy", cfg.DRAMLatency, cfg.DRAMServiceCycles))
	t.Print(w)
	return nil
}

// TableAMMAConfig regenerates Table 5: the AMMA model configuration and the
// resulting parameter counts.
func TableAMMAConfig(w io.Writer, r *Runner) error {
	section(w, fmt.Sprintf("Table 5: AMMA model configuration (scale %q)", r.Opt.Scale))
	cfg := r.Opt.ModelConfig()
	t := &Table{Header: []string{"Configuration", "Value"}}
	t.Add("History T", d(cfg.HistoryT))
	t.Add("Look-forward F", d(cfg.LookForwardF))
	t.Add("Attention dimension", d(cfg.AttnDim))
	t.Add("Fusion dimension", d(cfg.FusionDim))
	t.Add("Transformer dimension", d(cfg.FusionDim))
	t.Add("Transformer layers", d(cfg.TransLayers))
	t.Add("Transformer heads", d(cfg.Heads))
	t.Add("Address segmentation", fmt.Sprintf("%d x %d bits", cfg.NumSegments, cfg.SegmentBits))
	t.Add("Delta range", fmt.Sprintf("±%d blocks", cfg.DeltaRange))
	t.Add("Page vocabulary", d(cfg.PageVocab))

	pcs := models.BuildVocab(nil, cfg.PCVocab)
	pages := models.BuildVocab(nil, cfg.PageVocab)
	delta := models.NewAMMADelta(cfg, pcs, 0, cfg.Seed)
	page := models.NewAMMAPage(cfg, pages, pcs, 0, cfg.Seed)
	t.Add("Spatial predictor params", d(nn.CountParams(delta)))
	t.Add("Temporal predictor params", d(nn.CountParams(page)))
	t.Print(w)
	return nil
}

// TableComplexity regenerates Table 8: params, OPs, critical path, and IPC
// improvement for the ML-based prefetchers, including a compressed MPGraph.
func TableComplexity(w io.Writer, r *Runner) error {
	wl := r.Opt.Workloads()[0]
	s, err := r.Suite(wl)
	if err != nil {
		return err
	}
	section(w, fmt.Sprintf("Table 8: Computational complexity (workload %s)", wl))
	cfg := s.Cfg

	// IPC improvement of each ML prefetcher on the representative workload.
	ipc := map[string]float64{}
	pfs, err := r.Prefetchers(wl)
	if err != nil {
		return err
	}
	for _, pf := range pfs {
		switch pf.Name() {
		case "delta-lstm", "voyager", "transfetch", "mpgraph":
			m, base, err := r.Simulate(wl, pf)
			if err != nil {
				return err
			}
			ipc[pf.Name()] = m.IPCImprovement(base)
		}
	}

	t := &Table{Header: []string{"Model", "Param(K)", "OPs(M)", "CriticalPath", "Class", "IPCImpv"}}
	row := func(name string, c models.Complexity, ipcImpv float64) {
		t.Add(name, fmt.Sprintf("%.1f", float64(c.Params)/1000), fmt.Sprintf("%.2f", c.OPs),
			d(c.CriticalPath), c.CriticalPathClass, pct(ipcImpv))
	}
	row("Delta-LSTM", models.LSTMComplexity(cfg, s.LSTMDelta, cfg.NumSegments+1, cfg.DeltaClasses()), ipc["delta-lstm"])
	// Voyager: two LSTMs.
	voy := models.LSTMComplexity(cfg, s.LSTMPage, 32, cfg.PageVocab)
	voyD := models.LSTMComplexity(cfg, s.LSTMDelta, cfg.NumSegments+1, cfg.DeltaClasses())
	voy.Params += voyD.Params
	voy.OPs += voyD.OPs
	row("Voyager", voy, ipc["voyager"])
	row("TransFetch", models.AMMAComplexity(cfg, s.AttnDelta, cfg.DeltaClasses()), ipc["transfetch"])
	// MPGraph: per-phase delta + page pairs (one pair active at a time; the
	// storage is N pairs).
	mp := models.AMMAComplexity(cfg, s.PSDelta, cfg.DeltaClasses())
	mpPage := models.AMMAComplexity(cfg, s.PSPage, cfg.PageVocab)
	mp.Params += mpPage.Params
	mp.OPs += mpPage.OPs / float64(len(s.PSPage.Models))
	row("MPGraph", mp, ipc["mpgraph"])

	// Compressed MPGraph: half-width student dims (the Fig. 13 pipeline).
	small := cfg
	small.AttnDim, small.FusionDim, small.Heads = cfg.AttnDim/4, cfg.FusionDim/4, 2
	if small.Heads > small.FusionDim {
		small.Heads = 1
	}
	smallDelta := models.NewAMMADelta(small, s.Train.PCs, 0, cfg.Seed)
	smallPage := models.NewBinaryPage(small, s.Train.Pages, s.Train.PCs, cfg.Seed)
	cm := models.AMMAComplexity(small, smallDelta, small.DeltaClasses())
	cmp := models.AMMAComplexity(small, smallPage, smallPage.Bits())
	cm.Params += cmp.Params
	cm.OPs += cmp.OPs
	ratio := float64(mp.Params) / float64(cm.Params)
	row(fmt.Sprintf("MPGraph (%.1fx)", ratio), cm, ipc["mpgraph"]) // compressed accuracy ≈ full per Fig. 13
	t.Print(w)
	return nil
}
