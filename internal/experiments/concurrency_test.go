package experiments

import (
	"sync"
	"testing"
)

// TestRunnerDataSingleFlight hammers Runner.Data for one workload from many
// goroutines. All callers must receive the same *WorkloadData (the compute
// is coalesced, not repeated) and, under -race, the cell mechanism must be
// clean. This is the regression test for the pipeline cache's
// mutex-guarded section.
func TestRunnerDataSingleFlight(t *testing.T) {
	r := NewRunner(tinyOptions())
	w := r.Opt.Workloads()[0]

	const callers = 8
	var wg sync.WaitGroup
	results := make([]*WorkloadData, callers)
	errs := make([]error, callers)
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			results[c], errs[c] = r.Data(w)
		}(c)
	}
	wg.Wait()

	for c := 0; c < callers; c++ {
		if errs[c] != nil {
			t.Fatalf("caller %d: %v", c, errs[c])
		}
		if results[c] == nil {
			t.Fatalf("caller %d: nil data", c)
		}
		if results[c] != results[0] {
			t.Fatalf("caller %d received a different *WorkloadData: compute ran more than once", c)
		}
	}
	if len(results[0].TestRaw) == 0 || len(results[0].LLCTrain) == 0 {
		t.Fatal("workload data incomplete")
	}
}
