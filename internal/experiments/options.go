// Package experiments regenerates every table and figure of the paper's
// evaluation (the per-experiment index lives in DESIGN.md §4). Each runner
// takes a shared Options value, builds (and caches) the workload traces, LLC
// streams, and trained model suites it needs, and prints the same rows or
// series the paper reports.
package experiments

import (
	"fmt"
	"io"
	"runtime"
	"strings"

	"mpgraph/internal/frameworks"
	"mpgraph/internal/models"
	"mpgraph/internal/resilience"
	"mpgraph/internal/sim"
)

// Options is the shared experiment configuration.
type Options struct {
	// Scale selects "small" (default: reduced dims/graphs, minutes) or
	// "paper" (Table 5 dims, larger graphs, hours).
	Scale string
	// Datasets to sweep (default: rmat only at small scale; all seven at
	// paper scale).
	Datasets []string
	// Apps restricts the benchmark applications (nil = all of Table 1).
	Apps []frameworks.App
	// GraphScale overrides log2(vertices) (0 = per-scale default).
	GraphScale int
	// TraceIterations is how many framework super-steps to trace
	// (iteration 1 trains, the rest test).
	TraceIterations int
	// MaxTestAccesses caps the raw test trace fed to the simulator.
	MaxTestAccesses int
	// TrainSamples caps the training dataset per model.
	TrainSamples int
	// EvalSamples caps prediction-metric evaluation.
	EvalSamples int
	// Epochs is the training epoch count.
	Epochs int
	// Seed drives everything stochastic.
	Seed int64
	// Workers bounds the sweep scheduler's worker pool (0 = GOMAXPROCS, 1 =
	// serial). Independent (workload, prefetcher) simulations fan out across
	// the pool; report output is byte-identical at any worker count.
	Workers int
	// DisableFastPath runs all ML inference on the legacy allocating
	// autograd path instead of the per-prefetcher arenas — the perf baseline
	// the benchmarks compare against. The legacy path toggles the global
	// grad flag, so it forces the sweep serial regardless of Workers.
	DisableFastPath bool
	// CheckpointDir, when non-empty, enables atomic checksummed on-disk
	// checkpoints of workload traces and trained model suites (DESIGN.md
	// §9). Saves always happen when the directory is set; loads additionally
	// require Resume, so a fresh run never silently reuses stale artifacts.
	CheckpointDir string
	// Resume loads existing checkpoints from CheckpointDir before
	// recomputing. A corrupt or stale checkpoint is treated as a cache miss
	// (logged as a degradation event), never an error.
	Resume bool
	// Injector arms the named fault-injection points (artifact-build,
	// train-epoch, sweep-worker, checkpoint-io). Nil disarms everything;
	// see resilience.ParseInjector for the -inject CLI spec grammar.
	Injector *resilience.Injector
	// DisableGuard skips the degradation guard normally wrapped around the
	// ML prefetchers in the comparison sweep (ablations and benchmarks that
	// need the bare prefetcher).
	DisableGuard bool
	// Int8 runs the MPGraph prefetcher's inference on the int8 quantized
	// engine: per-phase models are weight-quantized once per workload
	// (per-channel symmetric int8), activation scales are calibrated on the
	// training samples, and Operate dispatches the integer kernels. Ignored
	// when DisableFastPath is set — the int8 kernels live on the arena fast
	// path, so the legacy autograd path always scores in float.
	Int8 bool
	// F32 runs the MPGraph prefetcher's inference on the single-precision
	// compute tier: per-phase model weights are narrowed to f32 once per
	// workload and Operate dispatches the f32 fused kernels (DESIGN.md §13).
	// Mutually exclusive with Int8 (one reduced-precision engine at a time)
	// and, like Int8, requires the arena fast path — the legacy autograd
	// path always scores in float64.
	F32 bool
	// Batch > 0 routes every ML prefetcher's model calls through one shared
	// batched-inference scheduler that fuses up to Batch concurrent requests
	// per GEMM round (prefetch.BatchScheduler). The batched kernels are
	// composition-independent, so sweep reports stay byte-identical at any
	// Batch value and worker count. Requires the fast path: combining Batch
	// with DisableFastPath is a configuration error.
	Batch int
}

// DefaultOptions returns the small-scale configuration.
func DefaultOptions() Options {
	return Options{
		Scale:           "small",
		Datasets:        []string{"rmat"},
		TraceIterations: 6,
		MaxTestAccesses: 100_000,
		TrainSamples:    1000,
		EvalSamples:     400,
		Epochs:          2,
		Seed:            1,
	}
}

// PaperOptions returns the paper-scale configuration (slow: hours).
func PaperOptions() Options {
	return Options{
		Scale: "paper",
		Datasets: []string{
			"amazon", "google", "roadCA", "soclj", "wiki", "youtube", "rmat",
		},
		TraceIterations: 11,
		MaxTestAccesses: 2_000_000,
		TrainSamples:    20_000,
		EvalSamples:     4000,
		Epochs:          4,
		Seed:            1,
	}
}

// ModelConfig returns the model configuration for the scale.
func (o Options) ModelConfig() models.Config {
	if o.Scale == "paper" {
		c := models.PaperConfig()
		c.Seed = o.Seed
		return c
	}
	c := models.SmallConfig()
	c.Seed = o.Seed
	return c
}

// SimConfig returns the simulator configuration for the scale: Table 3 at
// paper scale; a proportionally shrunk hierarchy at small scale so the
// reduced graphs still exceed the LLC (same ratios, faster runs).
func (o Options) SimConfig() sim.Config {
	cfg := sim.DefaultConfig()
	if o.Scale == "paper" {
		return cfg
	}
	cfg.L1Sets = 64   // 16 KB
	cfg.L2Sets = 128  // 64 KB
	cfg.LLCSets = 256 // 256 KB
	return cfg
}

// validateBatch rejects option combinations the batched inference tier
// cannot serve: the scheduler decodes through the arena fast path, so the
// legacy autograd path cannot participate.
func (o Options) validateBatch() error {
	if o.Batch > 0 && o.DisableFastPath {
		return fmt.Errorf("experiments: Batch=%d requires the fast path (unset DisableFastPath)", o.Batch)
	}
	if o.F32 && o.Int8 {
		return fmt.Errorf("experiments: F32 and Int8 are mutually exclusive (pick one reduced-precision engine)")
	}
	return nil
}

// workers resolves the scheduler's pool size: Workers, defaulting to
// GOMAXPROCS, clamped to 1 when the legacy inference path is selected
// (it toggles process-global autograd state and must run serially).
func (o Options) workers() int {
	if o.DisableFastPath {
		return 1
	}
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// graphScale returns log2(vertices) for generated graphs.
func (o Options) graphScale() int {
	if o.GraphScale > 0 {
		return o.GraphScale
	}
	if o.Scale == "paper" {
		return 15
	}
	return 12
}

// frameworkOptions returns the trace-generation options.
func (o Options) frameworkOptions() frameworks.Options {
	return frameworks.Options{
		Cores:         4,
		MaxIterations: o.TraceIterations,
		Seed:          o.Seed,
		PartitionSize: 1 << (o.graphScale() - 3),
	}
}

// Workload identifies one framework × application × dataset cell.
type Workload struct {
	Framework string
	App       frameworks.App
	Dataset   string
}

func (w Workload) String() string {
	return fmt.Sprintf("%s/%s/%s", w.Framework, w.App, w.Dataset)
}

// ParseWorkload parses the Workload String form "framework/app/dataset"
// (e.g. "gpop/pr/rmat"), validating the framework name and its app support.
// Dataset names are not validated here — the graph builder reports unknown
// datasets when the trace is built.
func ParseWorkload(s string) (Workload, error) {
	parts := strings.Split(s, "/")
	if len(parts) != 3 || parts[0] == "" || parts[1] == "" || parts[2] == "" {
		return Workload{}, fmt.Errorf("experiments: bad workload %q (want framework/app/dataset, e.g. gpop/pr/rmat)", s)
	}
	fw, err := frameworks.ByName(parts[0])
	if err != nil {
		return Workload{}, fmt.Errorf("experiments: bad workload %q: %w", s, err)
	}
	app := frameworks.App(parts[1])
	if !containsApp(fw.Apps(), app) {
		return Workload{}, fmt.Errorf("experiments: framework %s does not run app %q (supports %v)", fw.Name(), app, fw.Apps())
	}
	return Workload{Framework: fw.Name(), App: app, Dataset: parts[2]}, nil
}

// Workloads enumerates the Table 1 benchmark matrix over the configured
// datasets, honouring the Apps filter.
func (o Options) Workloads() []Workload {
	var out []Workload
	for _, fw := range frameworks.All() {
		for _, app := range fw.Apps() {
			if len(o.Apps) > 0 && !containsApp(o.Apps, app) {
				continue
			}
			for _, ds := range o.Datasets {
				out = append(out, Workload{Framework: fw.Name(), App: app, Dataset: ds})
			}
		}
	}
	return out
}

func containsApp(apps []frameworks.App, app frameworks.App) bool {
	for _, a := range apps {
		if a == app {
			return true
		}
	}
	return false
}

// section prints a report header.
func section(w io.Writer, title string) {
	fmt.Fprintf(w, "\n=== %s ===\n", title)
}
