package experiments

import (
	"fmt"
	"io"
	"strings"
)

// Table is a minimal column-aligned report printer.
type Table struct {
	Header []string
	Rows   [][]string
}

// Add appends a row.
func (t *Table) Add(cells ...string) { t.Rows = append(t.Rows, cells) }

// Print writes the aligned table.
func (t *Table) Print(w io.Writer) {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
}

func f3(v float64) string  { return fmt.Sprintf("%.3f", v) }
func f4(v float64) string  { return fmt.Sprintf("%.4f", v) }
func pct(v float64) string { return fmt.Sprintf("%.2f%%", v*100) }
func d(v int) string       { return fmt.Sprintf("%d", v) }

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
