package experiments

import (
	"bytes"
	"strings"
	"testing"

	"mpgraph/internal/core"
	"mpgraph/internal/frameworks"
	"mpgraph/internal/models"
)

// tinyOptions is a minimal configuration exercising every pipeline stage.
func tinyOptions() Options {
	o := DefaultOptions()
	o.GraphScale = 10
	o.Apps = []frameworks.App{frameworks.PR}
	o.TraceIterations = 3
	o.MaxTestAccesses = 40_000
	o.TrainSamples = 200
	o.EvalSamples = 80
	o.Epochs = 1
	if raceDetectorEnabled {
		// The race gate (make race, CI) checks concurrency correctness,
		// not model quality, and the detector's ~10x slowdown would blow
		// the go test timeout at full tiny scale. Every pipeline stage
		// still runs, just on less data.
		o.GraphScale = 9
		o.MaxTestAccesses = 10_000
		o.TrainSamples = 60
		o.EvalSamples = 30
	}
	return o
}

// One shared runner keeps the test suite fast: traces and model suites are
// trained once and reused by every runner-under-test.
var shared = NewRunner(tinyOptions())

func runAndCheck(t *testing.T, name string, fn func() error, buf *bytes.Buffer, wantSubstrings ...string) {
	t.Helper()
	if err := fn(); err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	out := buf.String()
	if len(out) == 0 {
		t.Fatalf("%s: no output", name)
	}
	for _, want := range wantSubstrings {
		if !strings.Contains(out, want) {
			t.Fatalf("%s: output missing %q:\n%s", name, want, out)
		}
	}
}

func TestOptionsScales(t *testing.T) {
	small := DefaultOptions()
	if small.ModelConfig().AttnDim >= PaperOptions().ModelConfig().AttnDim {
		t.Fatal("small model must be smaller")
	}
	if small.SimConfig().LLCSets >= PaperOptions().SimConfig().LLCSets {
		t.Fatal("small sim must be smaller")
	}
	if len(PaperOptions().Datasets) != 7 {
		t.Fatal("paper scale sweeps all 7 datasets")
	}
	if PaperOptions().graphScale() <= DefaultOptions().graphScale() {
		t.Fatal("paper graphs larger")
	}
}

func TestWorkloadEnumeration(t *testing.T) {
	o := DefaultOptions()
	if got := len(o.Workloads()); got != 12 {
		t.Fatalf("full matrix = %d workloads, want 12 (Table 1)", got)
	}
	o.Apps = []frameworks.App{frameworks.TC}
	wls := o.Workloads()
	if len(wls) != 1 || wls[0].Framework != "powergraph" {
		t.Fatalf("TC filter = %v", wls)
	}
	if wls[0].String() == "" {
		t.Fatal("String")
	}
}

func TestPipelineData(t *testing.T) {
	wl := shared.Opt.Workloads()[0]
	d, err := shared.Data(wl)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.LLCTrain) == 0 || len(d.LLCTest) == 0 || len(d.TestRaw) == 0 {
		t.Fatal("empty pipeline outputs")
	}
	if d.BaselineMetrics.IPC() <= 0 {
		t.Fatal("baseline sim did not run")
	}
	// Cache must return the identical object.
	d2, err := shared.Data(wl)
	if err != nil || d2 != d {
		t.Fatal("data not cached")
	}
	if _, err := shared.Data(Workload{Framework: "nope", App: frameworks.PR, Dataset: "rmat"}); err == nil {
		t.Fatal("unknown framework must fail")
	}
	if _, err := shared.Data(Workload{Framework: "gpop", App: frameworks.PR, Dataset: "nope"}); err == nil {
		t.Fatal("unknown dataset must fail")
	}
}

func TestSuiteTrainingAndCache(t *testing.T) {
	wl := shared.Opt.Workloads()[0]
	s, err := shared.Suite(wl)
	if err != nil {
		t.Fatal(err)
	}
	if s.Train == nil || s.Test == nil || len(s.PSDelta.Models) != s.NumPhases {
		t.Fatal("suite incomplete")
	}
	s2, err := shared.Suite(wl)
	if err != nil || s2 != s {
		t.Fatal("suite not cached")
	}
}

func TestStaticTables(t *testing.T) {
	var buf bytes.Buffer
	runAndCheck(t, "table1", func() error { return TableFrameworks(&buf, shared) }, &buf, "gpop", "GAS")
	buf.Reset()
	runAndCheck(t, "table2", func() error { return TableDatasets(&buf, shared) }, &buf, "roadCA", "rmat")
	buf.Reset()
	runAndCheck(t, "table3", func() error { return TableSimParams(&buf, shared) }, &buf, "DRAM", "LL cache")
	buf.Reset()
	runAndCheck(t, "table5", func() error { return TableAMMAConfig(&buf, shared) }, &buf, "History T", "params")
}

func TestCharacterizationFigures(t *testing.T) {
	var buf bytes.Buffer
	runAndCheck(t, "fig2", func() error { return FigurePCA(&buf, shared) }, &buf, "Separation")
	buf.Reset()
	runAndCheck(t, "fig3", func() error { return FigurePageJumps(&buf, shared) }, &buf, "scatter", "gather")
}

func TestPhaseDetectionTable(t *testing.T) {
	var buf bytes.Buffer
	runAndCheck(t, "table4", func() error { return TablePhaseDetection(&buf, shared) }, &buf,
		"kswin", "soft-kswin", "dt", "soft-dt")
	buf.Reset()
	runAndCheck(t, "fig9", func() error { return FigureCaseStudy(&buf, shared) }, &buf, "Soft-KSWIN")
}

func TestPredictionTables(t *testing.T) {
	var buf bytes.Buffer
	runAndCheck(t, "table6", func() error { return TableDeltaPrediction(&buf, shared) }, &buf, "AMMA-PS")
	buf.Reset()
	runAndCheck(t, "table7", func() error { return TablePagePrediction(&buf, shared) }, &buf, "AMMA-PS")
}

func TestPrefetchFigures(t *testing.T) {
	var buf bytes.Buffer
	runAndCheck(t, "fig10", func() error { return FigurePrefetchAccuracy(&buf, shared) }, &buf, "mpgraph", "bo")
	buf.Reset()
	runAndCheck(t, "fig11", func() error { return FigurePrefetchCoverage(&buf, shared) }, &buf, "average")
	buf.Reset()
	runAndCheck(t, "fig12", func() error { return FigureIPC(&buf, shared) }, &buf, "Framework avg")
}

func TestComplexityTable(t *testing.T) {
	var buf bytes.Buffer
	runAndCheck(t, "table8", func() error { return TableComplexity(&buf, shared) }, &buf, "MPGraph", "O(nl)")
}

func TestAblations(t *testing.T) {
	var buf bytes.Buffer
	runAndCheck(t, "ablation-cstp", func() error { return AblationCSTP(&buf, shared) }, &buf, "cstp-full", "spatial-only")
	buf.Reset()
	runAndCheck(t, "ablation-phase", func() error { return AblationPhases(&buf, shared) }, &buf, "oracle")
}

func TestCompressionFigures(t *testing.T) {
	var buf bytes.Buffer
	runAndCheck(t, "fig13", func() error { return FigureDistillation(&buf, shared) }, &buf, "teacher", "+KD")
	buf.Reset()
	runAndCheck(t, "fig14", func() error { return FigureDistancePrefetch(&buf, shared) }, &buf, "MPGraph+DP", "BO")
}

func TestAblationPerCore(t *testing.T) {
	var buf bytes.Buffer
	runAndCheck(t, "ablation-percore", func() error { return AblationPerCore(&buf, shared) }, &buf,
		"per-core detectors", "shared detector")
}

func TestExtendedBaselines(t *testing.T) {
	var buf bytes.Buffer
	runAndCheck(t, "extended", func() error { return TableExtendedBaselines(&buf, shared) }, &buf,
		"vldp", "domino", "imp", "sms", "markov", "ensemble", "bo+throttle")
}

// TestF32Option: Options.F32 swaps the MPGraph suite for the narrowed f32
// mirrors (single-flight, cached), rejects incompatible combinations, and
// the converted pair drives a working prefetcher.
func TestF32Option(t *testing.T) {
	wl := shared.Opt.Workloads()[0]
	if _, err := shared.Suite(wl); err != nil {
		t.Fatal(err)
	}
	r2 := NewRunner(shared.Opt)
	r2.Opt.F32 = true
	r2.suites = shared.suites // reuse the trained suite; conversion is the unit under test
	r2.data = shared.data
	r2.graphs = shared.graphs

	fp, err := r2.f32PS(wl)
	if err != nil {
		t.Fatal(err)
	}
	for p, sub := range fp.delta.Models {
		if _, ok := sub.(*models.F32AMMADelta); !ok {
			t.Fatalf("phase %d delta is %T, want *models.F32AMMADelta", p, sub)
		}
	}
	for p, sub := range fp.page.Models {
		if _, ok := sub.(*models.F32AMMAPage); !ok {
			t.Fatalf("phase %d page is %T, want *models.F32AMMAPage", p, sub)
		}
	}
	fp2, err := r2.f32PS(wl)
	if err != nil || fp2 != fp {
		t.Fatal("f32 pair not cached")
	}

	mp, err := r2.MPGraph(wl, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	m, base, err := r2.Simulate(wl, mp)
	if err != nil {
		t.Fatal(err)
	}
	if m.IPC() <= 0 || base.IPC() <= 0 {
		t.Fatal("f32 sweep cell did not simulate")
	}
	if err := mp.Health(); err != nil {
		t.Fatalf("healthy f32 suite latched: %v", err)
	}

	bad := shared.Opt
	bad.F32, bad.Int8 = true, true
	if err := bad.validateBatch(); err == nil {
		t.Fatal("F32+Int8 must be a configuration error")
	}
	// DisableFastPath+F32 is tolerated (f32 is simply inert off the fast
	// path, mirroring Int8); construction must not fail.
	r3 := NewRunner(shared.Opt)
	r3.Opt.F32, r3.Opt.DisableFastPath = true, true
	r3.suites = shared.suites
	r3.data = shared.data
	r3.graphs = shared.graphs
	if _, err := r3.MPGraph(wl, core.DefaultOptions()); err != nil {
		t.Fatalf("F32 with DisableFastPath should be inert, got %v", err)
	}
}
