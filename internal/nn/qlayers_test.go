package nn

import (
	"math"
	"math/rand"
	"testing"

	"mpgraph/internal/tensor"
)

// calibrate runs n random inputs through forward (the Q-layer in calibration
// mode) and returns the inputs for the post-freeze comparison.
func calibInputs(rows, cols, n int, rng *rand.Rand) []*tensor.Tensor {
	xs := make([]*tensor.Tensor, n)
	for i := range xs {
		xs[i] = tensor.Randn(rows, cols, 1, rng)
	}
	return xs
}

func maxRelErr(a, b *tensor.Tensor) float64 {
	var m, rng float64
	for i := range a.Data {
		if v := math.Abs(b.Data[i]); v > rng {
			rng = v
		}
	}
	if rng == 0 {
		rng = 1
	}
	for i := range a.Data {
		if e := math.Abs(a.Data[i]-b.Data[i]) / rng; e > m {
			m = e
		}
	}
	return m
}

func TestQLinearCalibrationDelegatesToFloat(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	l := NewLinear(12, 8, rng)
	q := NewQLinear(l)
	ctx := tensor.NewCtx()
	x := tensor.Randn(3, 12, 1, rng)
	got := q.ForwardCtx(ctx, x)
	want := l.ForwardCtx(ctx, x)
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("calibration forward diverges from float at %d", i)
		}
	}
}

func TestQLinearFrozenTracksFloat(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	l := NewLinear(24, 16, rng)
	q := NewQLinear(l)
	ctx := tensor.NewCtx()
	for _, x := range calibInputs(4, 24, 16, rng) {
		q.ForwardCtx(ctx, x)
		ctx.Reset()
	}
	q.Freeze()
	x := tensor.Randn(4, 24, 1, rng)
	got := q.ForwardCtx(ctx, x)
	want := l.ForwardCtx(ctx, x)
	if e := maxRelErr(got, want); e > 0.05 {
		t.Fatalf("frozen QLinear rel error %g > 0.05", e)
	}
}

func TestQSelfAttentionFrozenTracksFloat(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := NewSelfAttention(16, 16, rng)
	q := NewQSelfAttention(s)
	ctx := tensor.NewCtx()
	for _, x := range calibInputs(6, 16, 16, rng) {
		q.ForwardCtx(ctx, x)
		ctx.Reset()
	}
	q.Freeze()
	x := tensor.Randn(6, 16, 1, rng)
	got := q.ForwardCtx(ctx, x)
	want := s.ForwardCtx(ctx, x)
	if e := maxRelErr(got, want); e > 0.05 {
		t.Fatalf("frozen QSelfAttention rel error %g > 0.05", e)
	}
}

func TestQTransformerLayerFrozenTracksFloat(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	tl := NewTransformerLayer(16, 2, rng)
	q := NewQTransformerLayer(tl)
	ctx := tensor.NewCtx()
	for _, x := range calibInputs(5, 16, 16, rng) {
		q.ForwardCtx(ctx, x)
		ctx.Reset()
	}
	q.Freeze()
	x := tensor.Randn(5, 16, 1, rng)
	got := q.ForwardCtx(ctx, x)
	want := tl.ForwardCtx(ctx, x)
	// LayerNorm renormalises, so int8 projection noise stays bounded.
	if e := maxRelErr(got, want); e > 0.15 {
		t.Fatalf("frozen QTransformerLayer rel error %g > 0.15", e)
	}
}

func TestQMLPFrozenTracksFloat(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := NewMLP([]int{20, 32, 10}, rng)
	q := NewQMLP(m)
	ctx := tensor.NewCtx()
	for _, x := range calibInputs(1, 20, 16, rng) {
		q.ForwardCtx(ctx, x)
		ctx.Reset()
	}
	q.Freeze()
	x := tensor.Randn(1, 20, 1, rng)
	got := q.ForwardCtx(ctx, x)
	want := m.ForwardCtx(ctx, x)
	if e := maxRelErr(got, want); e > 0.08 {
		t.Fatalf("frozen QMLP rel error %g > 0.08", e)
	}
}

func TestQMMAFFrozenTracksFloat(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	m := NewMMAF(16, 16, rng)
	q := NewQMMAF(m)
	ctx := tensor.NewCtx()
	for i := 0; i < 16; i++ {
		a := tensor.Randn(3, 16, 1, rng)
		b := tensor.Randn(4, 16, 1, rng)
		q.ForwardCtx2(ctx, a, b)
		ctx.Reset()
	}
	q.Freeze()
	a := tensor.Randn(3, 16, 1, rng)
	b := tensor.Randn(4, 16, 1, rng)
	got := q.ForwardCtx2(ctx, a, b)
	want := m.ForwardCtx2(ctx, a, b)
	if e := maxRelErr(got, want); e > 0.05 {
		t.Fatalf("frozen QMMAF rel error %g > 0.05", e)
	}
}

func TestUncalibratedFreezeDegradesGracefully(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	l := NewLinear(8, 4, rng)
	q := NewQLinear(l)
	q.Freeze() // never observed: scale guard must kick in
	ctx := tensor.NewCtx()
	out := q.ForwardCtx(ctx, tensor.Randn(1, 8, 1, rng))
	for _, v := range out.Data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatal("uncalibrated frozen layer produced non-finite output")
		}
	}
}

func TestQuantizePerChannelTightensMaxError(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	mkLayer := func() *Linear {
		l := NewLinear(16, 8, rng)
		// One wide column dominates the per-tensor scale.
		for i := 0; i < l.W.Rows; i++ {
			l.W.Data[i*l.W.Cols] *= 50
		}
		return l
	}
	perTensor := mkLayer()
	src := perTensor.W.Clone().Data
	perChannel := NewLinear(16, 8, rng)
	copy(perChannel.W.Data, src)
	copy(perChannel.B.Data, perTensor.B.Data)

	repT, err := Quantize(perTensor, 8)
	if err != nil {
		t.Fatal(err)
	}
	repC, err := QuantizePerChannel(perChannel, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !repC.PerChannel || repT.PerChannel {
		t.Fatal("PerChannel flag not recorded")
	}
	if repC.MaxError >= repT.MaxError {
		t.Fatalf("per-channel MaxError %g not tighter than per-tensor %g", repC.MaxError, repT.MaxError)
	}
	if repC.StorageBytes <= repT.StorageBytes {
		t.Fatalf("per-channel storage %d should charge for scales (per-tensor %d)", repC.StorageBytes, repT.StorageBytes)
	}
}

func TestQuantizedBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	q := NewQLinear(NewLinear(16, 4, rng))
	if got, want := q.QuantizedBytes(), 16*4+8*4+8*4; got != want {
		t.Fatalf("QuantizedBytes = %d, want %d", got, want)
	}
}
