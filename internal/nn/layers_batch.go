package nn

import (
	"math"

	"mpgraph/internal/tensor"
)

// ForwardBatchCtx plumbing: every layer that is not purely row-wise gets a
// batch-aware forward over a stacked [blocks*T x d] tensor, one session per
// block of rows. Row-wise layers (Linear, LayerNorm, Embedding, FFN, MLP)
// are batch-oblivious — their batched forward is the same kernel at more
// rows, routed through the batched GEMM so the weight panel streams through
// cache once for the whole batch.

// ForwardBatchCtx applies the layer to a stacked activation block through
// the batched panel kernels.
//
//mpgraph:noalloc
func (l *Linear) ForwardBatchCtx(c *tensor.Ctx, x *tensor.Tensor) *tensor.Tensor {
	return c.LinearActBatch(x, l.W, l.B, tensor.ActNone)
}

// ForwardBatchCtx attends independently inside each of the `blocks` session
// blocks of the stacked sequence.
//
//mpgraph:noalloc
func (s *SelfAttention) ForwardBatchCtx(c *tensor.Ctx, x *tensor.Tensor, blocks int) *tensor.Tensor {
	q := c.LinearActBatch(x, s.Wq.W, s.Wq.B, tensor.ActNone)
	k := c.LinearActBatch(x, s.Wk.W, s.Wk.B, tensor.ActNone)
	v := c.LinearActBatch(x, s.Wv.W, s.Wv.B, tensor.ActNone)
	return c.AttentionBlocks(q, k, v, blocks, 1/math.Sqrt(float64(s.dim)), false)
}

// ForwardBatchCtx runs every head over the stacked block and reprojects.
//
//mpgraph:noalloc
func (m *MultiHeadSelfAttention) ForwardBatchCtx(c *tensor.Ctx, x *tensor.Tensor, blocks int) *tensor.Tensor {
	outs := c.Ptrs(len(m.Heads))
	for i, h := range m.Heads {
		outs[i] = h.ForwardBatchCtx(c, x, blocks)
	}
	return m.Wo.ForwardBatchCtx(c, c.ConcatCols(outs...))
}

// ForwardBatchCtx applies the FFN over the stacked block with the ReLU fused
// into the first batched GEMM.
//
//mpgraph:noalloc
func (f *FFN) ForwardBatchCtx(c *tensor.Ctx, x *tensor.Tensor) *tensor.Tensor {
	return f.L2.ForwardBatchCtx(c, c.LinearActBatch(x, f.L1.W, f.L1.B, tensor.ActReLU))
}

// ForwardBatchCtx applies the layer to the stacked block; attention respects
// session boundaries, residuals and norms are row-wise.
//
//mpgraph:noalloc
func (t *TransformerLayer) ForwardBatchCtx(c *tensor.Ctx, x *tensor.Tensor, blocks int) *tensor.Tensor {
	x = t.N1.ForwardCtx(c, c.Add(x, t.MSA.ForwardBatchCtx(c, x, blocks)))
	return t.N2.ForwardCtx(c, c.Add(x, t.FF.ForwardBatchCtx(c, x)))
}

// ForwardBatchCtx2 fuses two stacked modality sequences block by block —
// the batched AMMA fusion.
//
//mpgraph:noalloc
func (m *MMAF) ForwardBatchCtx2(c *tensor.Ctx, a, b *tensor.Tensor, blocks int) *tensor.Tensor {
	return m.Attn.ForwardBatchCtx(c, c.ConcatRowsBatch2(a, b, blocks), blocks)
}

// ForwardBatchCtx applies the MLP to the stacked block through the batched
// GEMMs.
//
//mpgraph:noalloc
func (m *MLP) ForwardBatchCtx(c *tensor.Ctx, x *tensor.Tensor) *tensor.Tensor {
	for i, l := range m.Layers {
		act := tensor.ActReLU
		if i+1 == len(m.Layers) {
			act = tensor.ActNone
		}
		x = c.LinearActBatch(x, l.W, l.B, act)
	}
	return x
}

// ForwardBatchCtx consumes `blocks` stacked sequences step-synchronously:
// at each timestep the per-session rows are gathered into one [blocks x in]
// block so all four gates run as true batched GEMMs against the recurrent
// state block, and the cell update is one fused loop with a vectorized tanh.
// Returns the final hidden states [blocks x hidden].
//
//mpgraph:noalloc
func (l *LSTM) ForwardBatchCtx(ctx *tensor.Ctx, x *tensor.Tensor, blocks int) *tensor.Tensor {
	t := x.Rows / blocks
	h := ctx.Zeros(blocks, l.Hidden)
	c := ctx.Zeros(blocks, l.Hidden)
	for step := 0; step < t; step++ {
		xt := ctx.GatherRowsStride(x, step, t, blocks)
		i := ctx.Linear2ActBatch(xt, l.Wxi, h, l.Whi, l.Bi, tensor.ActSigmoid)
		f := ctx.Linear2ActBatch(xt, l.Wxf, h, l.Whf, l.Bf, tensor.ActSigmoid)
		g := ctx.Linear2ActBatch(xt, l.Wxg, h, l.Whg, l.Bg, tensor.ActTanh)
		o := ctx.Linear2ActBatch(xt, l.Wxo, h, l.Who, l.Bo, tensor.ActSigmoid)
		for j := range c.Data {
			cv := f.Data[j]*c.Data[j] + i.Data[j]*g.Data[j]
			c.Data[j] = cv
			h.Data[j] = cv
		}
		tensor.ApplyActFast(h.Data, tensor.ActTanh) //mpgraph:allow noalloc -- in-place over the arena row; the cross-package naming rule keys on Ctx/Into suffixes
		for j := range h.Data {
			h.Data[j] *= o.Data[j]
		}
	}
	return h
}
