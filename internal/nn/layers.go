package nn

import (
	"math"
	"math/rand"

	"mpgraph/internal/invariant"
	"mpgraph/internal/tensor"
)

// Linear is a fully-connected layer y = xW + b.
type Linear struct {
	W *tensor.Tensor // [in x out]
	B *tensor.Tensor // [1 x out]
}

// NewLinear builds a Linear with Xavier-style initialisation.
func NewLinear(in, out int, rng *rand.Rand) *Linear {
	scale := math.Sqrt(2.0 / float64(in+out))
	return &Linear{
		W: tensor.Randn(in, out, scale, rng).Param(),
		B: tensor.Zeros(1, out).Param(),
	}
}

// Forward applies the layer to x [T x in].
func (l *Linear) Forward(x *tensor.Tensor) *tensor.Tensor {
	return l.ForwardCtx(nil, x)
}

// ForwardCtx is Forward on the ctx fast path (fused GEMM+bias when c is
// non-nil, the autograd composition when c is nil).
//
//mpgraph:noalloc
func (l *Linear) ForwardCtx(c *tensor.Ctx, x *tensor.Tensor) *tensor.Tensor {
	return c.LinearAct(x, l.W, l.B, tensor.ActNone)
}

// Params implements Module.
func (l *Linear) Params() []*tensor.Tensor { return []*tensor.Tensor{l.W, l.B} }

// Embedding maps integer ids to dense rows.
type Embedding struct {
	Table *tensor.Tensor // [vocab x dim]
}

// NewEmbedding builds a vocab x dim embedding table.
func NewEmbedding(vocab, dim int, rng *rand.Rand) *Embedding {
	return &Embedding{Table: tensor.Randn(vocab, dim, 0.1, rng).Param()}
}

// Forward looks up ids.
func (e *Embedding) Forward(ids []int) *tensor.Tensor {
	return e.ForwardCtx(nil, ids)
}

// ForwardCtx looks up ids on the ctx fast path.
//
//mpgraph:noalloc
func (e *Embedding) ForwardCtx(c *tensor.Ctx, ids []int) *tensor.Tensor {
	return c.EmbeddingLookup(e.Table, ids)
}

// Params implements Module.
func (e *Embedding) Params() []*tensor.Tensor { return []*tensor.Tensor{e.Table} }

// Vocab returns the table's vocabulary size.
func (e *Embedding) Vocab() int { return e.Table.Rows }

// LayerNorm normalises each row and applies a learnable gain and bias.
type LayerNorm struct {
	Gain *tensor.Tensor
	Bias *tensor.Tensor
	Eps  float64
}

// NewLayerNorm builds a LayerNorm over dim features.
func NewLayerNorm(dim int) *LayerNorm {
	g := tensor.Zeros(1, dim)
	for i := range g.Data {
		g.Data[i] = 1
	}
	return &LayerNorm{Gain: g.Param(), Bias: tensor.Zeros(1, dim).Param(), Eps: 1e-5}
}

// Forward normalises x rows.
func (l *LayerNorm) Forward(x *tensor.Tensor) *tensor.Tensor {
	return l.ForwardCtx(nil, x)
}

// ForwardCtx normalises x rows, in one fused pass on the ctx fast path.
//
//mpgraph:noalloc
func (l *LayerNorm) ForwardCtx(c *tensor.Ctx, x *tensor.Tensor) *tensor.Tensor {
	return c.LayerNorm(x, l.Gain, l.Bias, l.Eps)
}

// Params implements Module.
func (l *LayerNorm) Params() []*tensor.Tensor { return []*tensor.Tensor{l.Gain, l.Bias} }

// SelfAttention is single-head scaled dot-product self-attention (Eq. 7):
// Attention(Q,K,V) = softmax(QKᵀ/√d)·V with Q,K,V linear projections of the
// input sequence.
type SelfAttention struct {
	Wq, Wk, Wv *Linear
	dim        int
}

// NewSelfAttention projects in-dim inputs to dim-sized Q/K/V.
func NewSelfAttention(in, dim int, rng *rand.Rand) *SelfAttention {
	return &SelfAttention{
		Wq:  NewLinear(in, dim, rng),
		Wk:  NewLinear(in, dim, rng),
		Wv:  NewLinear(in, dim, rng),
		dim: dim,
	}
}

// Forward attends over x [T x in] and returns [T x dim].
func (s *SelfAttention) Forward(x *tensor.Tensor) *tensor.Tensor {
	return s.ForwardCtx(nil, x)
}

// ForwardCtx attends over x on the ctx fast path (transpose-free scores,
// in-place softmax when c is non-nil).
//
//mpgraph:noalloc
func (s *SelfAttention) ForwardCtx(c *tensor.Ctx, x *tensor.Tensor) *tensor.Tensor {
	q := s.Wq.ForwardCtx(c, x)
	k := s.Wk.ForwardCtx(c, x)
	v := s.Wv.ForwardCtx(c, x)
	scores := c.MatMulNTScale(q, k, 1/math.Sqrt(float64(s.dim)))
	return c.MatMul(c.SoftmaxRows(scores), v)
}

// Params implements Module.
func (s *SelfAttention) Params() []*tensor.Tensor { return collect(s.Wq, s.Wk, s.Wv) }

// MultiHeadSelfAttention is Eq. 9: H parallel attention heads concatenated
// and reprojected.
type MultiHeadSelfAttention struct {
	Heads []*SelfAttention
	Wo    *Linear
}

// NewMultiHeadSelfAttention builds heads of size dim/heads over dim inputs.
func NewMultiHeadSelfAttention(dim, heads int, rng *rand.Rand) *MultiHeadSelfAttention {
	if dim%heads != 0 {
		invariant.Fail("nn: dim must divide by heads")
	}
	m := &MultiHeadSelfAttention{Wo: NewLinear(dim, dim, rng)}
	for h := 0; h < heads; h++ {
		m.Heads = append(m.Heads, NewSelfAttention(dim, dim/heads, rng))
	}
	return m
}

// Forward attends over x [T x dim] and returns [T x dim].
func (m *MultiHeadSelfAttention) Forward(x *tensor.Tensor) *tensor.Tensor {
	return m.ForwardCtx(nil, x)
}

// ForwardCtx attends over x on the ctx fast path.
//
//mpgraph:noalloc
func (m *MultiHeadSelfAttention) ForwardCtx(c *tensor.Ctx, x *tensor.Tensor) *tensor.Tensor {
	outs := c.Ptrs(len(m.Heads))
	for i, h := range m.Heads {
		outs[i] = h.ForwardCtx(c, x)
	}
	return m.Wo.ForwardCtx(c, c.ConcatCols(outs...))
}

// Params implements Module.
func (m *MultiHeadSelfAttention) Params() []*tensor.Tensor {
	ms := make([]Module, 0, len(m.Heads)+1)
	for _, h := range m.Heads {
		ms = append(ms, h)
	}
	ms = append(ms, m.Wo)
	return collect(ms...)
}

// FFN is the Transformer point-wise feed-forward network (Eq. 10).
type FFN struct {
	L1, L2 *Linear
}

// NewFFN builds dim → hidden → dim.
func NewFFN(dim, hidden int, rng *rand.Rand) *FFN {
	return &FFN{L1: NewLinear(dim, hidden, rng), L2: NewLinear(hidden, dim, rng)}
}

// Forward applies max(0, xW1+b1)W2+b2.
func (f *FFN) Forward(x *tensor.Tensor) *tensor.Tensor {
	return f.ForwardCtx(nil, x)
}

// ForwardCtx applies the FFN with the ReLU fused into the first GEMM on the
// ctx fast path.
//
//mpgraph:noalloc
func (f *FFN) ForwardCtx(c *tensor.Ctx, x *tensor.Tensor) *tensor.Tensor {
	return f.L2.ForwardCtx(c, c.LinearAct(x, f.L1.W, f.L1.B, tensor.ActReLU))
}

// Params implements Module.
func (f *FFN) Params() []*tensor.Tensor { return collect(f.L1, f.L2) }

// TransformerLayer is MSA + FFN with residual connections and layer norms.
type TransformerLayer struct {
	MSA *MultiHeadSelfAttention
	FF  *FFN
	N1  *LayerNorm
	N2  *LayerNorm
}

// NewTransformerLayer builds one layer of width dim with the given heads and
// a 2x FFN expansion.
func NewTransformerLayer(dim, heads int, rng *rand.Rand) *TransformerLayer {
	return &TransformerLayer{
		MSA: NewMultiHeadSelfAttention(dim, heads, rng),
		FF:  NewFFN(dim, 2*dim, rng),
		N1:  NewLayerNorm(dim),
		N2:  NewLayerNorm(dim),
	}
}

// Forward applies the layer to x [T x dim].
func (t *TransformerLayer) Forward(x *tensor.Tensor) *tensor.Tensor {
	return t.ForwardCtx(nil, x)
}

// ForwardCtx applies the layer on the ctx fast path.
//
//mpgraph:noalloc
func (t *TransformerLayer) ForwardCtx(c *tensor.Ctx, x *tensor.Tensor) *tensor.Tensor {
	x = t.N1.ForwardCtx(c, c.Add(x, t.MSA.ForwardCtx(c, x)))
	return t.N2.ForwardCtx(c, c.Add(x, t.FF.ForwardCtx(c, x)))
}

// Params implements Module.
func (t *TransformerLayer) Params() []*tensor.Tensor { return collect(t.MSA, t.FF, t.N1, t.N2) }

// MMAF is the multi-modality attention fusion layer (Eq. 8): the modality
// sequences are concatenated along the sequence axis and fused by one
// self-attention over the combined sequence.
type MMAF struct {
	Attn *SelfAttention
}

// NewMMAF fuses in-dim modality embeddings into dim features.
func NewMMAF(in, dim int, rng *rand.Rand) *MMAF {
	return &MMAF{Attn: NewSelfAttention(in, dim, rng)}
}

// Forward fuses the modality sequences (each [Ti x in]) into
// [ΣTi x dim].
func (m *MMAF) Forward(modalities ...*tensor.Tensor) *tensor.Tensor {
	return m.ForwardCtx(nil, modalities...)
}

// ForwardCtx fuses the modality sequences on the ctx fast path.
//
//mpgraph:noalloc
func (m *MMAF) ForwardCtx(c *tensor.Ctx, modalities ...*tensor.Tensor) *tensor.Tensor {
	return m.Attn.ForwardCtx(c, c.ConcatRows(modalities...))
}

// ForwardCtx2 fuses exactly two modality sequences — the AMMA hot path —
// avoiding the escaping variadic slice a ForwardCtx call site would build.
//
//mpgraph:noalloc
func (m *MMAF) ForwardCtx2(c *tensor.Ctx, a, b *tensor.Tensor) *tensor.Tensor {
	return m.Attn.ForwardCtx(c, c.ConcatRows2(a, b))
}

// Params implements Module.
func (m *MMAF) Params() []*tensor.Tensor { return m.Attn.Params() }

// MLP is a multi-layer perceptron head with ReLU between layers and raw
// logits out.
type MLP struct {
	Layers []*Linear
}

// NewMLP builds an MLP over the given layer widths (len >= 2).
func NewMLP(widths []int, rng *rand.Rand) *MLP {
	if len(widths) < 2 {
		invariant.Fail("nn: MLP needs at least input and output widths")
	}
	m := &MLP{}
	for i := 0; i+1 < len(widths); i++ {
		m.Layers = append(m.Layers, NewLinear(widths[i], widths[i+1], rng))
	}
	return m
}

// Forward applies the MLP to x.
func (m *MLP) Forward(x *tensor.Tensor) *tensor.Tensor {
	return m.ForwardCtx(nil, x)
}

// ForwardCtx applies the MLP with ReLUs fused into the hidden GEMMs on the
// ctx fast path.
//
//mpgraph:noalloc
func (m *MLP) ForwardCtx(c *tensor.Ctx, x *tensor.Tensor) *tensor.Tensor {
	for i, l := range m.Layers {
		act := tensor.ActReLU
		if i+1 == len(m.Layers) {
			act = tensor.ActNone
		}
		x = c.LinearAct(x, l.W, l.B, act)
	}
	return x
}

// Params implements Module.
func (m *MLP) Params() []*tensor.Tensor {
	ms := make([]Module, len(m.Layers))
	for i, l := range m.Layers {
		ms[i] = l
	}
	return collect(ms...)
}
