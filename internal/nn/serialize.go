package nn

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

const paramMagic = 0x4d504e4e // "MPNN"

// Save serialises a module's parameters (shape-checked on Load).
func Save(w io.Writer, m Module) error {
	bw := bufio.NewWriter(w)
	params := m.Params()
	if err := binary.Write(bw, binary.LittleEndian, uint64(paramMagic)); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint64(len(params))); err != nil {
		return err
	}
	for _, p := range params {
		if err := binary.Write(bw, binary.LittleEndian, [2]uint64{uint64(p.Rows), uint64(p.Cols)}); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, p.Data); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Load fills a structurally-identical module's parameters from r.
func Load(r io.Reader, m Module) error {
	br := bufio.NewReader(r)
	var magic, count uint64
	if err := binary.Read(br, binary.LittleEndian, &magic); err != nil {
		return err
	}
	if magic != paramMagic {
		return fmt.Errorf("nn: bad magic %#x", magic)
	}
	if err := binary.Read(br, binary.LittleEndian, &count); err != nil {
		return err
	}
	params := m.Params()
	if int(count) != len(params) {
		return fmt.Errorf("nn: snapshot has %d params, module has %d", count, len(params))
	}
	for i, p := range params {
		var shape [2]uint64
		if err := binary.Read(br, binary.LittleEndian, &shape); err != nil {
			return err
		}
		if int(shape[0]) != p.Rows || int(shape[1]) != p.Cols {
			return fmt.Errorf("nn: param %d shape %dx%d, snapshot %dx%d", i, p.Rows, p.Cols, shape[0], shape[1])
		}
		if err := binary.Read(br, binary.LittleEndian, p.Data); err != nil {
			return err
		}
	}
	return nil
}

// CopyParams copies src's parameter values into dst (shapes must match).
func CopyParams(dst, src Module) error {
	dp, sp := dst.Params(), src.Params()
	if len(dp) != len(sp) {
		return fmt.Errorf("nn: param count mismatch %d vs %d", len(dp), len(sp))
	}
	for i := range dp {
		if dp[i].Rows != sp[i].Rows || dp[i].Cols != sp[i].Cols {
			return fmt.Errorf("nn: param %d shape mismatch", i)
		}
		copy(dp[i].Data, sp[i].Data)
	}
	return nil
}
