package nn

import (
	"fmt"
	"math"
)

// QuantizationReport summarises a (simulated) fixed-point quantization pass.
type QuantizationReport struct {
	Bits         int
	Params       int
	StorageBytes int     // parameter storage at the quantized width
	MaxError     float64 // worst absolute rounding error introduced
	MeanError    float64
}

// Quantize rounds every parameter of m to a bits-wide symmetric fixed-point
// grid (per-tensor scale), in place — the standard simulated-quantization
// treatment of Section 6.1 ("representing the weights in the models using 8
// bits"). It returns the storage/error report.
func Quantize(m Module, bits int) (QuantizationReport, error) {
	if bits < 2 || bits > 16 {
		return QuantizationReport{}, fmt.Errorf("nn: quantize bits %d out of [2,16]", bits)
	}
	rep := QuantizationReport{Bits: bits}
	levels := float64(int(1)<<(bits-1)) - 1
	var errSum float64
	for _, p := range m.Params() {
		rep.Params += len(p.Data)
		scale := p.MaxAbs() / levels
		if scale == 0 {
			continue
		}
		for i, v := range p.Data {
			q := math.Round(v/scale) * scale
			e := math.Abs(q - v)
			if e > rep.MaxError {
				rep.MaxError = e
			}
			errSum += e
			p.Data[i] = q
		}
	}
	if rep.Params > 0 {
		rep.MeanError = errSum / float64(rep.Params)
	}
	rep.StorageBytes = (rep.Params*bits + 7) / 8
	return rep, nil
}

// StorageBytes reports the parameter storage of m at the given bit width
// without modifying the model.
func StorageBytes(m Module, bits int) int {
	return (CountParams(m)*bits + 7) / 8
}
