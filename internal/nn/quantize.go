package nn

import (
	"fmt"
	"math"
)

// SimQuantReport summarises a SIMULATED fixed-point quantization pass: the
// weights are rounded onto a bits-wide grid but remain float64, so the model
// keeps running on the float kernels at the quantized model's accuracy.
// Storage numbers describe what the int representation would occupy; they do
// not claim the process stores ints. For the real int8 engine — int8 tensors,
// int32 accumulation, measured speed — see the Q-layer mirrors in qlayers.go
// and DESIGN.md §10.
type SimQuantReport struct {
	Bits         int
	PerChannel   bool
	Params       int
	StorageBytes int     // parameter storage at the quantized width
	MaxError     float64 // worst absolute rounding error introduced
	MeanError    float64
}

// Quantize rounds every parameter of m to a bits-wide symmetric fixed-point
// grid with one scale per tensor, in place — the simulated-quantization
// treatment of Section 6.1 ("representing the weights in the models using 8
// bits"). It returns the storage/error report. For matrices with
// mixed-magnitude columns, QuantizePerChannel gives a tighter grid.
func Quantize(m Module, bits int) (SimQuantReport, error) {
	return quantizeSim(m, bits, false)
}

// QuantizePerChannel is Quantize with one scale per output channel (matrix
// column) instead of one per tensor. A single wide column no longer dictates
// the grid for every other column, so MaxError on mixed-magnitude layers
// drops to each column's own half-step. Vectors (biases, gains) keep the
// per-tensor scale — they have one channel each. The storage report charges
// one extra float64 scale per channel.
func QuantizePerChannel(m Module, bits int) (SimQuantReport, error) {
	return quantizeSim(m, bits, true)
}

func quantizeSim(m Module, bits int, perChannel bool) (SimQuantReport, error) {
	if bits < 2 || bits > 16 {
		return SimQuantReport{}, fmt.Errorf("nn: quantize bits %d out of [2,16]", bits)
	}
	rep := SimQuantReport{Bits: bits, PerChannel: perChannel}
	levels := float64(int(1)<<(bits-1)) - 1
	var errSum float64
	scales := 0
	for _, p := range m.Params() {
		rep.Params += len(p.Data)
		if perChannel && p.Rows > 1 && p.Cols > 1 {
			scales += p.Cols
			for j := 0; j < p.Cols; j++ {
				var maxAbs float64
				for i := 0; i < p.Rows; i++ {
					if v := math.Abs(p.Data[i*p.Cols+j]); v > maxAbs {
						maxAbs = v
					}
				}
				scale := maxAbs / levels
				if scale == 0 {
					continue
				}
				for i := 0; i < p.Rows; i++ {
					idx := i*p.Cols + j
					q := math.Round(p.Data[idx]/scale) * scale
					e := math.Abs(q - p.Data[idx])
					if e > rep.MaxError {
						rep.MaxError = e
					}
					errSum += e
					p.Data[idx] = q
				}
			}
			continue
		}
		scales++
		scale := p.MaxAbs() / levels
		if scale == 0 {
			continue
		}
		for i, v := range p.Data {
			q := math.Round(v/scale) * scale
			e := math.Abs(q - v)
			if e > rep.MaxError {
				rep.MaxError = e
			}
			errSum += e
			p.Data[i] = q
		}
	}
	if rep.Params > 0 {
		rep.MeanError = errSum / float64(rep.Params)
	}
	rep.StorageBytes = (rep.Params*bits + 7) / 8
	if perChannel {
		rep.StorageBytes += 8 * scales
	}
	return rep, nil
}

// StorageBytes reports the parameter storage of m at the given bit width
// without modifying the model.
func StorageBytes(m Module, bits int) int {
	return (CountParams(m)*bits + 7) / 8
}
