package nn

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"mpgraph/internal/tensor"
)

// Half-precision parameter snapshots (DESIGN.md §13). The wire layout
// mirrors Save/Load — magic, param count, per-param shape — but stores each
// value as one IEEE binary16, halving snapshot size. Encoding rounds to
// nearest-even once, directly from the float64 bits; decoding widens
// exactly, so SaveF16→LoadF16 is a pure (deterministic) precision cut and a
// second round trip is lossless.

const paramMagicF16 = 0x4d504e48 // "MPNH"

// SaveF16 serialises a module's parameters at binary16 precision.
func SaveF16(w io.Writer, m Module) error {
	bw := bufio.NewWriter(w)
	params := m.Params()
	if err := binary.Write(bw, binary.LittleEndian, uint64(paramMagicF16)); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint64(len(params))); err != nil {
		return err
	}
	var halves []uint16
	for _, p := range params {
		if err := binary.Write(bw, binary.LittleEndian, [2]uint64{uint64(p.Rows), uint64(p.Cols)}); err != nil {
			return err
		}
		if cap(halves) < len(p.Data) {
			halves = make([]uint16, len(p.Data))
		}
		halves = halves[:len(p.Data)]
		tensor.EncodeF16(halves, p.Data)
		if err := binary.Write(bw, binary.LittleEndian, halves); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// LoadF16 fills a structurally-identical module's parameters from a SaveF16
// snapshot, widening each binary16 value exactly.
func LoadF16(r io.Reader, m Module) error {
	br := bufio.NewReader(r)
	var magic, count uint64
	if err := binary.Read(br, binary.LittleEndian, &magic); err != nil {
		return err
	}
	if magic != paramMagicF16 {
		return fmt.Errorf("nn: bad f16 magic %#x", magic)
	}
	if err := binary.Read(br, binary.LittleEndian, &count); err != nil {
		return err
	}
	params := m.Params()
	if int(count) != len(params) {
		return fmt.Errorf("nn: f16 snapshot has %d params, module has %d", count, len(params))
	}
	var halves []uint16
	for i, p := range params {
		var shape [2]uint64
		if err := binary.Read(br, binary.LittleEndian, &shape); err != nil {
			return err
		}
		if int(shape[0]) != p.Rows || int(shape[1]) != p.Cols {
			return fmt.Errorf("nn: param %d shape %dx%d, f16 snapshot %dx%d", i, p.Rows, p.Cols, shape[0], shape[1])
		}
		if cap(halves) < len(p.Data) {
			halves = make([]uint16, len(p.Data))
		}
		halves = halves[:len(p.Data)]
		if err := binary.Read(br, binary.LittleEndian, halves); err != nil {
			return err
		}
		tensor.WidenF16(p.Data, halves)
	}
	return nil
}
