package nn

// Int8 mirrors of the ForwardCtx layer set (DESIGN.md §10). Each Q-layer is
// built from a trained float layer and starts in CALIBRATION mode: forwards
// delegate to the float layer while an Observer records the input range, so
// downstream observers see true float activations. Freeze() locks the
// observed activation scale and switches the layer to the int8 kernels.
// Matrix weights are quantized (per-output-channel symmetric int8); biases,
// LayerNorm and softmax stay float — they are O(dim) work on O(dim²)
// layers and keeping them exact costs nothing.

import (
	"math"

	"mpgraph/internal/tensor"
)

// Observer accumulates the maximum absolute activation value seen during
// calibration; Scale() converts it to a symmetric int8 scale.
type Observer struct {
	maxAbs float64
}

// Observe folds one activation buffer into the running range.
//
//mpgraph:noalloc
func (o *Observer) Observe(xs []float64) {
	m := o.maxAbs
	for _, v := range xs {
		if v < 0 {
			v = -v
		}
		if v > m {
			m = v
		}
	}
	o.maxAbs = m
}

// Scale returns the symmetric int8 scale for the observed range (1 when
// nothing was observed, so an uncalibrated layer degrades rather than
// dividing by zero).
func (o *Observer) Scale() float64 { return tensor.QuantScale(o.maxAbs) }

// QLinear is the int8 mirror of Linear: per-channel int8 weights, float
// bias, one calibrated input scale.
type QLinear struct {
	W *tensor.QTensor
	B *tensor.Tensor

	in    Observer
	scale float64
	src   *Linear // calibration source; nil once frozen
}

// NewQLinear quantizes l's weights and returns the mirror in calibration
// mode. l's bias tensor is shared, not copied.
func NewQLinear(l *Linear) *QLinear {
	return &QLinear{W: tensor.QuantizeWeights(l.W), B: l.B, src: l}
}

// ForwardActCtx applies the layer with a fused activation. In calibration
// mode it observes the input and runs the float layer; frozen, it runs the
// int8 kernel.
//
//mpgraph:noalloc
func (q *QLinear) ForwardActCtx(c *tensor.Ctx, x *tensor.Tensor, act tensor.Act) *tensor.Tensor {
	if q.src != nil {
		q.in.Observe(x.Data)
		return c.LinearAct(x, q.src.W, q.src.B, act)
	}
	return c.QLinearAct(x, q.scale, q.W, q.B, act)
}

// ForwardCtx applies the layer with no activation.
//
//mpgraph:noalloc
func (q *QLinear) ForwardCtx(c *tensor.Ctx, x *tensor.Tensor) *tensor.Tensor {
	return q.ForwardActCtx(c, x, tensor.ActNone)
}

// Freeze locks the calibrated activation scale and switches to int8.
func (q *QLinear) Freeze() {
	q.scale = q.in.Scale()
	q.src = nil
}

// QSelfAttention is the int8 mirror of SelfAttention. The input row is
// quantized ONCE and shared across the Q/K/V projections — three GEMMs, one
// quantization pass. Scores and softmax stay float.
type QSelfAttention struct {
	Wq, Wk, Wv *tensor.QTensor
	bq, bk, bv *tensor.Tensor
	dim        int

	in    Observer
	scale float64
	src   *SelfAttention
}

// NewQSelfAttention quantizes s's projection weights and returns the mirror
// in calibration mode.
func NewQSelfAttention(s *SelfAttention) *QSelfAttention {
	return &QSelfAttention{
		Wq: tensor.QuantizeWeights(s.Wq.W), bq: s.Wq.B,
		Wk: tensor.QuantizeWeights(s.Wk.W), bk: s.Wk.B,
		Wv: tensor.QuantizeWeights(s.Wv.W), bv: s.Wv.B,
		dim: s.dim,
		src: s,
	}
}

// ForwardCtx attends over x.
//
//mpgraph:noalloc
func (s *QSelfAttention) ForwardCtx(c *tensor.Ctx, x *tensor.Tensor) *tensor.Tensor {
	if s.src != nil {
		s.in.Observe(x.Data)
		return s.src.ForwardCtx(c, x)
	}
	xq := c.QuantizeActs(x, s.scale)
	q := c.QLinearActQ(xq, x.Rows, s.scale, s.Wq, s.bq, tensor.ActNone)
	k := c.QLinearActQ(xq, x.Rows, s.scale, s.Wk, s.bk, tensor.ActNone)
	v := c.QLinearActQ(xq, x.Rows, s.scale, s.Wv, s.bv, tensor.ActNone)
	scores := c.MatMulNTScale(q, k, 1/math.Sqrt(float64(s.dim)))
	return c.MatMul(c.SoftmaxRows(scores), v)
}

// Freeze locks the calibrated activation scale and switches to int8.
func (s *QSelfAttention) Freeze() {
	s.scale = s.in.Scale()
	s.src = nil
}

// QMultiHeadSelfAttention is the int8 mirror of MultiHeadSelfAttention.
type QMultiHeadSelfAttention struct {
	Heads []*QSelfAttention
	Wo    *QLinear
}

// NewQMultiHeadSelfAttention mirrors every head and the output projection.
func NewQMultiHeadSelfAttention(m *MultiHeadSelfAttention) *QMultiHeadSelfAttention {
	q := &QMultiHeadSelfAttention{Wo: NewQLinear(m.Wo)}
	for _, h := range m.Heads {
		q.Heads = append(q.Heads, NewQSelfAttention(h))
	}
	return q
}

// ForwardCtx attends over x with every head and reprojects.
//
//mpgraph:noalloc
func (m *QMultiHeadSelfAttention) ForwardCtx(c *tensor.Ctx, x *tensor.Tensor) *tensor.Tensor {
	outs := c.Ptrs(len(m.Heads))
	for i, h := range m.Heads {
		outs[i] = h.ForwardCtx(c, x)
	}
	return m.Wo.ForwardCtx(c, c.ConcatCols(outs...))
}

// Freeze freezes every head and the output projection.
func (m *QMultiHeadSelfAttention) Freeze() {
	for _, h := range m.Heads {
		h.Freeze()
	}
	m.Wo.Freeze()
}

// QFFN is the int8 mirror of FFN, ReLU fused into the first GEMM.
type QFFN struct {
	L1, L2 *QLinear
}

// NewQFFN mirrors both linear layers.
func NewQFFN(f *FFN) *QFFN { return &QFFN{L1: NewQLinear(f.L1), L2: NewQLinear(f.L2)} }

// ForwardCtx applies max(0, xW1+b1)W2+b2 on int8 kernels.
//
//mpgraph:noalloc
func (f *QFFN) ForwardCtx(c *tensor.Ctx, x *tensor.Tensor) *tensor.Tensor {
	return f.L2.ForwardCtx(c, f.L1.ForwardActCtx(c, x, tensor.ActReLU))
}

// Freeze freezes both layers.
func (f *QFFN) Freeze() {
	f.L1.Freeze()
	f.L2.Freeze()
}

// QTransformerLayer is the int8 mirror of TransformerLayer. The two
// LayerNorms are shared with the float layer and stay float.
type QTransformerLayer struct {
	MSA *QMultiHeadSelfAttention
	FF  *QFFN
	n1  *LayerNorm
	n2  *LayerNorm
}

// NewQTransformerLayer mirrors the attention and FFN blocks.
func NewQTransformerLayer(t *TransformerLayer) *QTransformerLayer {
	return &QTransformerLayer{
		MSA: NewQMultiHeadSelfAttention(t.MSA),
		FF:  NewQFFN(t.FF),
		n1:  t.N1,
		n2:  t.N2,
	}
}

// ForwardCtx applies the layer with residuals and float layer norms.
//
//mpgraph:noalloc
func (t *QTransformerLayer) ForwardCtx(c *tensor.Ctx, x *tensor.Tensor) *tensor.Tensor {
	x = t.n1.ForwardCtx(c, c.Add(x, t.MSA.ForwardCtx(c, x)))
	return t.n2.ForwardCtx(c, c.Add(x, t.FF.ForwardCtx(c, x)))
}

// Freeze freezes the attention and FFN blocks.
func (t *QTransformerLayer) Freeze() {
	t.MSA.Freeze()
	t.FF.Freeze()
}

// QMMAF is the int8 mirror of the multi-modality attention fusion layer.
type QMMAF struct {
	Attn *QSelfAttention
}

// NewQMMAF mirrors the fusion attention.
func NewQMMAF(m *MMAF) *QMMAF { return &QMMAF{Attn: NewQSelfAttention(m.Attn)} }

// ForwardCtx2 fuses exactly two modality sequences — the AMMA hot path.
//
//mpgraph:noalloc
func (m *QMMAF) ForwardCtx2(c *tensor.Ctx, a, b *tensor.Tensor) *tensor.Tensor {
	return m.Attn.ForwardCtx(c, c.ConcatRows2(a, b))
}

// Freeze freezes the fusion attention.
func (m *QMMAF) Freeze() { m.Attn.Freeze() }

// QMLP is the int8 mirror of MLP, ReLUs fused into the hidden GEMMs.
type QMLP struct {
	Layers []*QLinear
}

// NewQMLP mirrors every layer.
func NewQMLP(m *MLP) *QMLP {
	q := &QMLP{}
	for _, l := range m.Layers {
		q.Layers = append(q.Layers, NewQLinear(l))
	}
	return q
}

// ForwardCtx applies the MLP and returns raw logits.
//
//mpgraph:noalloc
func (m *QMLP) ForwardCtx(c *tensor.Ctx, x *tensor.Tensor) *tensor.Tensor {
	for i, l := range m.Layers {
		act := tensor.ActReLU
		if i+1 == len(m.Layers) {
			act = tensor.ActNone
		}
		x = l.ForwardActCtx(c, x, act)
	}
	return x
}

// Freeze freezes every layer.
func (m *QMLP) Freeze() {
	for _, l := range m.Layers {
		l.Freeze()
	}
}

// QuantizedBytes reports the storage of a quantized weight set: int8 weights
// plus per-channel float64 scales, with float biases kept at full width.
func (q *QLinear) QuantizedBytes() int { return q.W.StorageBytes() + 8*len(q.B.Data) }
