package nn

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"mpgraph/internal/tensor"
)

func TestLinearShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	l := NewLinear(4, 3, rng)
	x := tensor.Randn(5, 4, 1, rng)
	y := l.Forward(x)
	if y.Rows != 5 || y.Cols != 3 {
		t.Fatalf("shape %dx%d, want 5x3", y.Rows, y.Cols)
	}
	if len(l.Params()) != 2 {
		t.Fatal("params")
	}
}

func TestEmbedding(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	e := NewEmbedding(10, 4, rng)
	out := e.Forward([]int{3, 3, 7})
	if out.Rows != 3 || out.Cols != 4 {
		t.Fatal("shape")
	}
	for c := 0; c < 4; c++ {
		if out.At(0, c) != out.At(1, c) {
			t.Fatal("same id must give same row")
		}
	}
	if e.Vocab() != 10 {
		t.Fatal("vocab")
	}
}

func TestLayerNormOutput(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ln := NewLayerNorm(8)
	x := tensor.Randn(4, 8, 5, rng)
	y := ln.Forward(x)
	// With gain=1, bias=0 each row is standardised.
	for r := 0; r < y.Rows; r++ {
		mean := 0.0
		for c := 0; c < 8; c++ {
			mean += y.At(r, c)
		}
		if math.Abs(mean/8) > 1e-9 {
			t.Fatalf("row %d mean %g", r, mean/8)
		}
	}
}

func TestAttentionShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	sa := NewSelfAttention(6, 8, rng)
	x := tensor.Randn(9, 6, 1, rng)
	y := sa.Forward(x)
	if y.Rows != 9 || y.Cols != 8 {
		t.Fatalf("self-attention shape %dx%d", y.Rows, y.Cols)
	}
	msa := NewMultiHeadSelfAttention(8, 4, rng)
	z := msa.Forward(y)
	if z.Rows != 9 || z.Cols != 8 {
		t.Fatalf("MSA shape %dx%d", z.Rows, z.Cols)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("dim not divisible by heads must panic")
		}
	}()
	NewMultiHeadSelfAttention(10, 4, rng)
}

func TestMMAFFusesModalities(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := NewMMAF(6, 12, rng)
	addr := tensor.Randn(9, 6, 1, rng)
	pc := tensor.Randn(9, 6, 1, rng)
	out := m.Forward(addr, pc)
	if out.Rows != 18 || out.Cols != 12 {
		t.Fatalf("MMAF shape %dx%d, want 18x12", out.Rows, out.Cols)
	}
}

func TestTransformerLayer(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	tl := NewTransformerLayer(16, 4, rng)
	x := tensor.Randn(7, 16, 1, rng)
	y := tl.Forward(x)
	if y.Rows != 7 || y.Cols != 16 {
		t.Fatal("transformer must preserve shape")
	}
	if CountParams(tl) == 0 {
		t.Fatal("no params")
	}
}

func TestMLP(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := NewMLP([]int{8, 16, 4}, rng)
	y := m.Forward(tensor.Randn(2, 8, 1, rng))
	if y.Rows != 2 || y.Cols != 4 {
		t.Fatal("mlp shape")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("short widths must panic")
		}
	}()
	NewMLP([]int{3}, rng)
}

func TestLSTMShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	l := NewLSTM(5, 12, rng)
	h := l.Forward(tensor.Randn(9, 5, 1, rng))
	if h.Rows != 1 || h.Cols != 12 {
		t.Fatalf("lstm out %dx%d", h.Rows, h.Cols)
	}
	if len(l.Params()) != 12 {
		t.Fatal("lstm param count")
	}
}

// A tiny attention classifier must learn a separable toy task, proving
// forward+backward+Adam work together.
func TestTrainingLearnsToyTask(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	sa := NewSelfAttention(4, 8, rng)
	head := NewMLP([]int{8, 2}, rng)
	params := append(sa.Params(), head.Params()...)
	opt := NewAdam(0.01)

	// Task: class = whether the first feature of the last row is positive.
	sample := func() (*tensor.Tensor, int) {
		x := tensor.Randn(5, 4, 1, rng)
		label := 0
		if x.At(4, 0) > 0 {
			label = 1
		}
		return x, label
	}
	forward := func(x *tensor.Tensor) *tensor.Tensor {
		h := sa.Forward(x)
		return head.Forward(tensor.SliceRows(h, 4, 5))
	}
	for step := 0; step < 300; step++ {
		x, label := sample()
		loss := tensor.CrossEntropyLogits(forward(x), label)
		if err := loss.Backward(); err != nil {
			t.Fatal(err)
		}
		opt.Step(params)
		for _, p := range params {
			p.ZeroGrad()
		}
	}
	correct := 0
	for i := 0; i < 200; i++ {
		x, label := sample()
		out := forward(x)
		pred := 0
		if out.At(0, 1) > out.At(0, 0) {
			pred = 1
		}
		if pred == label {
			correct++
		}
	}
	if correct < 160 {
		t.Fatalf("toy accuracy %d/200, want >= 160", correct)
	}
}

// The LSTM must learn a short memory task (copy first input's sign).
func TestLSTMLearnsMemoryTask(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	l := NewLSTM(2, 8, rng)
	head := NewMLP([]int{8, 2}, rng)
	params := append(l.Params(), head.Params()...)
	opt := NewAdam(0.02)
	sample := func() (*tensor.Tensor, int) {
		x := tensor.Randn(4, 2, 1, rng)
		label := 0
		if x.At(0, 0) > 0 {
			label = 1
		}
		return x, label
	}
	for step := 0; step < 400; step++ {
		x, label := sample()
		loss := tensor.CrossEntropyLogits(head.Forward(l.Forward(x)), label)
		if err := loss.Backward(); err != nil {
			t.Fatal(err)
		}
		opt.Step(params)
		for _, p := range params {
			p.ZeroGrad()
		}
	}
	correct := 0
	for i := 0; i < 200; i++ {
		x, label := sample()
		out := head.Forward(l.Forward(x))
		pred := 0
		if out.At(0, 1) > out.At(0, 0) {
			pred = 1
		}
		if pred == label {
			correct++
		}
	}
	if correct < 150 {
		t.Fatalf("lstm memory accuracy %d/200", correct)
	}
}

func TestAdamReducesLossDeterministically(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	l := NewLinear(3, 1, rng)
	opt := NewAdam(0.05)
	x := tensor.Randn(16, 3, 1, rng)
	targets := make([]float64, 16)
	for i := 0; i < 16; i++ {
		targets[i] = 2*x.At(i, 0) - x.At(i, 1)
	}
	var first, last float64
	for step := 0; step < 200; step++ {
		loss := tensor.MSE(l.Forward(x), targets)
		if step == 0 {
			first = loss.Data[0]
		}
		last = loss.Data[0]
		if err := loss.Backward(); err != nil {
			t.Fatal(err)
		}
		opt.Step(l.Params())
		ZeroGrads(l)
	}
	if last > first/10 {
		t.Fatalf("loss %g -> %g: Adam not converging", first, last)
	}
}

func TestGradClipping(t *testing.T) {
	p := tensor.New(1, 2, []float64{0, 0}).Param()
	p.Grad = []float64{300, 400} // norm 500
	opt := NewAdam(1)
	opt.ClipNorm = 5
	opt.Step([]*tensor.Tensor{p})
	// After clipping, grad norm must be 5 (direction preserved: 3,4 scaled).
	norm := math.Hypot(p.Grad[0], p.Grad[1])
	if math.Abs(norm-5) > 1e-9 {
		t.Fatalf("clipped norm %g, want 5", norm)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	src := NewTransformerLayer(8, 2, rng)
	dst := NewTransformerLayer(8, 2, rand.New(rand.NewSource(99)))
	var buf bytes.Buffer
	if err := Save(&buf, src); err != nil {
		t.Fatal(err)
	}
	if err := Load(&buf, dst); err != nil {
		t.Fatal(err)
	}
	sp, dp := src.Params(), dst.Params()
	for i := range sp {
		for j := range sp[i].Data {
			if sp[i].Data[j] != dp[i].Data[j] {
				t.Fatalf("param %d differs after load", i)
			}
		}
	}
	// Shape mismatch must be rejected.
	other := NewTransformerLayer(16, 2, rng)
	var buf2 bytes.Buffer
	if err := Save(&buf2, src); err != nil {
		t.Fatal(err)
	}
	if err := Load(&buf2, other); err == nil {
		t.Fatal("shape mismatch must fail")
	}
	if err := Load(bytes.NewReader(make([]byte, 32)), dst); err == nil {
		t.Fatal("bad magic must fail")
	}
}

func TestCopyParams(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	a := NewLinear(3, 3, rng)
	b := NewLinear(3, 3, rng)
	if err := CopyParams(b, a); err != nil {
		t.Fatal(err)
	}
	if a.W.Data[0] != b.W.Data[0] {
		t.Fatal("copy failed")
	}
	c := NewLinear(4, 3, rng)
	if err := CopyParams(c, a); err == nil {
		t.Fatal("shape mismatch must fail")
	}
}

func TestQuantize(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	m := NewLinear(8, 8, rng)
	before := m.W.Clone()
	rep, err := Quantize(m, 8)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Params != CountParams(m) {
		t.Fatal("param count")
	}
	if rep.StorageBytes != rep.Params {
		t.Fatalf("8-bit storage %d bytes for %d params", rep.StorageBytes, rep.Params)
	}
	// Error bound: half a quantization step of the per-tensor scale.
	maxStep := before.MaxAbs() / 127
	if rep.MaxError > maxStep/2+1e-12 {
		t.Fatalf("max error %g exceeds half-step %g", rep.MaxError, maxStep/2)
	}
	if _, err := Quantize(m, 1); err == nil {
		t.Fatal("1-bit must be rejected")
	}
	if StorageBytes(m, 8) != CountParams(m) {
		t.Fatal("StorageBytes")
	}
}

// Property: quantization error never exceeds half the per-tensor step for
// any bit width.
func TestQuickQuantizeErrorBound(t *testing.T) {
	f := func(seed int64, rawBits uint8) bool {
		bits := int(rawBits)%15 + 2
		rng := rand.New(rand.NewSource(seed))
		m := NewLinear(4, 4, rng)
		maxAbs := 0.0
		for _, p := range m.Params() {
			if a := p.MaxAbs(); a > maxAbs {
				maxAbs = a
			}
		}
		rep, err := Quantize(m, bits)
		if err != nil {
			return false
		}
		step := maxAbs / (float64(int(1)<<(bits-1)) - 1)
		return rep.MaxError <= step/2+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestZeroGradsAndCount(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	l := NewLinear(2, 2, rng)
	if CountParams(l) != 6 {
		t.Fatalf("CountParams = %d, want 6", CountParams(l))
	}
	loss := tensor.MSE(l.Forward(tensor.Randn(1, 2, 1, rng)), []float64{0, 0})
	if err := loss.Backward(); err != nil {
		t.Fatal(err)
	}
	ZeroGrads(l)
	for _, p := range l.Params() {
		for _, g := range p.Grad {
			if g != 0 {
				t.Fatal("grads not zeroed")
			}
		}
	}
}

// layerGradCheck numerically verifies the full backward pass through a
// layer's parameters.
func layerGradCheck(t *testing.T, name string, m Module, forward func() *tensor.Tensor) {
	t.Helper()
	loss := forward()
	if err := loss.Backward(); err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	const h = 1e-6
	for pi, p := range m.Params() {
		if p.Grad == nil {
			t.Fatalf("%s: param %d missing grad", name, pi)
		}
		// Spot-check a few elements per parameter to keep runtime sane.
		step := len(p.Data)/5 + 1
		for i := 0; i < len(p.Data); i += step {
			orig := p.Data[i]
			p.Data[i] = orig + h
			up := forward().Data[0]
			p.Data[i] = orig - h
			down := forward().Data[0]
			p.Data[i] = orig
			numeric := (up - down) / (2 * h)
			if diff := numeric - p.Grad[i]; diff > 1e-4 || diff < -1e-4 {
				t.Fatalf("%s: param %d elem %d: autograd %g numeric %g", name, pi, i, p.Grad[i], numeric)
			}
		}
	}
	ZeroGrads(m)
}

func TestGradLSTMLayer(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	l := NewLSTM(3, 4, rng)
	x := tensor.Randn(4, 3, 1, rng)
	layerGradCheck(t, "lstm", l, func() *tensor.Tensor {
		return tensor.MSE(l.Forward(x), make([]float64, 4))
	})
}

func TestGradSelfAttentionLayer(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	sa := NewSelfAttention(4, 6, rng)
	x := tensor.Randn(5, 4, 1, rng)
	layerGradCheck(t, "selfattention", sa, func() *tensor.Tensor {
		return tensor.MSE(sa.Forward(x), make([]float64, 30))
	})
}

func TestGradTransformerLayerFull(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	tl := NewTransformerLayer(8, 2, rng)
	x := tensor.Randn(3, 8, 1, rng)
	layerGradCheck(t, "transformer", tl, func() *tensor.Tensor {
		return tensor.MSE(tl.Forward(x), make([]float64, 24))
	})
}

func TestGradMMAFLayer(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	m := NewMMAF(4, 6, rng)
	a := tensor.Randn(3, 4, 1, rng)
	b := tensor.Randn(3, 4, 1, rng)
	layerGradCheck(t, "mmaf", m, func() *tensor.Tensor {
		return tensor.MSE(m.Forward(a, b), make([]float64, 36))
	})
}

func TestSGDConvergesOnLinearRegression(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	l := NewLinear(3, 1, rng)
	opt := NewSGD(0.05, 0.9)
	x := tensor.Randn(16, 3, 1, rng)
	targets := make([]float64, 16)
	for i := 0; i < 16; i++ {
		targets[i] = x.At(i, 0) - 2*x.At(i, 2)
	}
	var first, last float64
	for step := 0; step < 300; step++ {
		loss := tensor.MSE(l.Forward(x), targets)
		if step == 0 {
			first = loss.Data[0]
		}
		last = loss.Data[0]
		if err := loss.Backward(); err != nil {
			t.Fatal(err)
		}
		opt.Step(l.Params())
		ZeroGrads(l)
	}
	if last > first/20 {
		t.Fatalf("SGD did not converge: %g -> %g", first, last)
	}
}

func TestSGDWeightDecayShrinksWeights(t *testing.T) {
	p := tensor.New(1, 1, []float64{10}).Param()
	p.Grad = []float64{0}
	opt := NewSGD(0.1, 0)
	opt.WeightDecay = 0.5
	opt.Step([]*tensor.Tensor{p})
	if p.Data[0] >= 10 {
		t.Fatal("weight decay must shrink weights with zero grad")
	}
}

func TestSchedules(t *testing.T) {
	st := StepSchedule{Every: 10, Gamma: 0.5}
	if st.Factor(0) != 1 || st.Factor(9) != 1 {
		t.Fatal("step schedule before boundary")
	}
	if st.Factor(10) != 0.5 || st.Factor(25) != 0.25 {
		t.Fatalf("step schedule decay: %v %v", st.Factor(10), st.Factor(25))
	}
	if (StepSchedule{}).Factor(100) != 1 {
		t.Fatal("degenerate step schedule")
	}

	cs := CosineSchedule{Total: 100, Floor: 0.1}
	if cs.Factor(0) != 1 {
		t.Fatal("cosine starts at 1")
	}
	if math.Abs(cs.Factor(100)-0.1) > 1e-12 || math.Abs(cs.Factor(150)-0.1) > 1e-12 {
		t.Fatal("cosine floor")
	}
	mid := cs.Factor(50)
	if mid <= 0.1 || mid >= 1 {
		t.Fatalf("cosine midpoint %v", mid)
	}
	// Monotone non-increasing.
	prev := 2.0
	for s := 0; s <= 100; s += 5 {
		f := cs.Factor(s)
		if f > prev+1e-12 {
			t.Fatalf("cosine not monotone at %d", s)
		}
		prev = f
	}
	if (CosineSchedule{}).Factor(5) != 1 {
		t.Fatal("degenerate cosine")
	}

	sl := ScheduledLR{Base: 0.2, Schedule: st}
	if sl.At(10) != 0.1 {
		t.Fatalf("scheduled LR %v", sl.At(10))
	}
	if (ScheduledLR{Base: 3}).At(7) != 3 {
		t.Fatal("nil schedule")
	}
}
