package nn

import (
	"math"

	"mpgraph/internal/tensor"
)

// Single-precision mirrors of the ForwardCtx layer set (DESIGN.md §13).
// Unlike the int8 mirrors there is no calibration phase: f32 keeps enough
// mantissa that weights are narrowed once at construction (or widened from
// an f16 snapshot) and used directly. Float64 stays the training and
// autograd reference; the f32 tier is inference-only, so every forward
// requires a non-nil ctx — model-level callers fall back to their float64
// source when no arena is available.

// F32Linear is the f32 mirror of Linear.
type F32Linear struct {
	W *tensor.F32Tensor // [in x out]
	B *tensor.F32Tensor // [1 x out]
}

// NewF32Linear narrows l's weights into an f32 mirror.
func NewF32Linear(l *Linear) *F32Linear {
	return &F32Linear{W: tensor.NarrowF32(l.W), B: tensor.NarrowF32(l.B)}
}

// ForwardActCtx applies the layer with a fused activation.
//
//mpgraph:noalloc
func (l *F32Linear) ForwardActCtx(c *tensor.Ctx, x *tensor.F32Tensor, act tensor.Act) *tensor.F32Tensor {
	return c.LinearActF32(x, l.W, l.B, act)
}

// ForwardCtx applies the layer with no activation.
//
//mpgraph:noalloc
func (l *F32Linear) ForwardCtx(c *tensor.Ctx, x *tensor.F32Tensor) *tensor.F32Tensor {
	return l.ForwardActCtx(c, x, tensor.ActNone)
}

// F32Embedding is the f32 mirror of Embedding.
type F32Embedding struct {
	Table *tensor.F32Tensor // [vocab x dim]
}

// NewF32Embedding narrows e's table into an f32 mirror.
func NewF32Embedding(e *Embedding) *F32Embedding {
	return &F32Embedding{Table: tensor.NarrowF32(e.Table)}
}

// ForwardCtx looks up ids.
//
//mpgraph:noalloc
func (e *F32Embedding) ForwardCtx(c *tensor.Ctx, ids []int) *tensor.F32Tensor {
	return c.EmbeddingLookupF32(e.Table, ids)
}

// Vocab returns the table's vocabulary size.
func (e *F32Embedding) Vocab() int { return e.Table.Rows }

// F32LayerNorm is the f32 mirror of LayerNorm.
type F32LayerNorm struct {
	Gain *tensor.F32Tensor
	Bias *tensor.F32Tensor
	Eps  float32
}

// NewF32LayerNorm narrows l's gain and bias into an f32 mirror.
func NewF32LayerNorm(l *LayerNorm) *F32LayerNorm {
	return &F32LayerNorm{
		Gain: tensor.NarrowF32(l.Gain),
		Bias: tensor.NarrowF32(l.Bias),
		Eps:  float32(l.Eps),
	}
}

// ForwardCtx normalises x rows in one fused pass.
//
//mpgraph:noalloc
func (l *F32LayerNorm) ForwardCtx(c *tensor.Ctx, x *tensor.F32Tensor) *tensor.F32Tensor {
	return c.LayerNormF32(x, l.Gain, l.Bias, l.Eps)
}

// F32SelfAttention is the f32 mirror of SelfAttention. Scores, softmax and
// the value GEMM all stay in f32 through the block-attention kernel.
type F32SelfAttention struct {
	Wq, Wk, Wv *F32Linear
	dim        int
}

// NewF32SelfAttention narrows s's projections into an f32 mirror.
func NewF32SelfAttention(s *SelfAttention) *F32SelfAttention {
	return &F32SelfAttention{
		Wq:  NewF32Linear(s.Wq),
		Wk:  NewF32Linear(s.Wk),
		Wv:  NewF32Linear(s.Wv),
		dim: s.dim,
	}
}

// ForwardCtx attends over x [T x in] and returns [T x dim]. One sequence is
// the blocks=1 case of the batched kernel, so sequential and batched f32
// attention share one code path (and bits).
//
//mpgraph:noalloc
func (s *F32SelfAttention) ForwardCtx(c *tensor.Ctx, x *tensor.F32Tensor) *tensor.F32Tensor {
	return s.ForwardBatchCtx(c, x, 1)
}

// ForwardBatchCtx attends independently inside each of the `blocks` session
// blocks of the stacked sequence.
//
//mpgraph:noalloc
func (s *F32SelfAttention) ForwardBatchCtx(c *tensor.Ctx, x *tensor.F32Tensor, blocks int) *tensor.F32Tensor {
	q := s.Wq.ForwardCtx(c, x)
	k := s.Wk.ForwardCtx(c, x)
	v := s.Wv.ForwardCtx(c, x)
	return c.AttentionBlocksF32(q, k, v, blocks, float32(1/math.Sqrt(float64(s.dim))))
}

// F32MultiHeadSelfAttention is the f32 mirror of MultiHeadSelfAttention.
type F32MultiHeadSelfAttention struct {
	Heads []*F32SelfAttention
	Wo    *F32Linear
}

// NewF32MultiHeadSelfAttention mirrors every head and the output projection.
func NewF32MultiHeadSelfAttention(m *MultiHeadSelfAttention) *F32MultiHeadSelfAttention {
	f := &F32MultiHeadSelfAttention{Wo: NewF32Linear(m.Wo)}
	for _, h := range m.Heads {
		f.Heads = append(f.Heads, NewF32SelfAttention(h))
	}
	return f
}

// ForwardCtx attends over x with every head and reprojects.
//
//mpgraph:noalloc
func (m *F32MultiHeadSelfAttention) ForwardCtx(c *tensor.Ctx, x *tensor.F32Tensor) *tensor.F32Tensor {
	return m.ForwardBatchCtx(c, x, 1)
}

// ForwardBatchCtx runs every head over the stacked block and reprojects.
//
//mpgraph:noalloc
func (m *F32MultiHeadSelfAttention) ForwardBatchCtx(c *tensor.Ctx, x *tensor.F32Tensor, blocks int) *tensor.F32Tensor {
	outs := c.F32Ptrs(len(m.Heads))
	for i, h := range m.Heads {
		outs[i] = h.ForwardBatchCtx(c, x, blocks)
	}
	return m.Wo.ForwardCtx(c, c.ConcatColsF32(outs))
}

// F32FFN is the f32 mirror of FFN, ReLU fused into the first GEMM.
type F32FFN struct {
	L1, L2 *F32Linear
}

// NewF32FFN mirrors both linear layers.
func NewF32FFN(f *FFN) *F32FFN { return &F32FFN{L1: NewF32Linear(f.L1), L2: NewF32Linear(f.L2)} }

// ForwardCtx applies max(0, xW1+b1)W2+b2.
//
//mpgraph:noalloc
func (f *F32FFN) ForwardCtx(c *tensor.Ctx, x *tensor.F32Tensor) *tensor.F32Tensor {
	return f.L2.ForwardCtx(c, f.L1.ForwardActCtx(c, x, tensor.ActReLU))
}

// F32TransformerLayer is the f32 mirror of TransformerLayer.
type F32TransformerLayer struct {
	MSA *F32MultiHeadSelfAttention
	FF  *F32FFN
	N1  *F32LayerNorm
	N2  *F32LayerNorm
}

// NewF32TransformerLayer mirrors the attention, FFN and norm blocks.
func NewF32TransformerLayer(t *TransformerLayer) *F32TransformerLayer {
	return &F32TransformerLayer{
		MSA: NewF32MultiHeadSelfAttention(t.MSA),
		FF:  NewF32FFN(t.FF),
		N1:  NewF32LayerNorm(t.N1),
		N2:  NewF32LayerNorm(t.N2),
	}
}

// ForwardCtx applies the layer to x [T x dim].
//
//mpgraph:noalloc
func (t *F32TransformerLayer) ForwardCtx(c *tensor.Ctx, x *tensor.F32Tensor) *tensor.F32Tensor {
	return t.ForwardBatchCtx(c, x, 1)
}

// ForwardBatchCtx applies the layer to the stacked block; attention respects
// session boundaries, residuals and norms are row-wise.
//
//mpgraph:noalloc
func (t *F32TransformerLayer) ForwardBatchCtx(c *tensor.Ctx, x *tensor.F32Tensor, blocks int) *tensor.F32Tensor {
	x = t.N1.ForwardCtx(c, c.AddF32(x, t.MSA.ForwardBatchCtx(c, x, blocks)))
	return t.N2.ForwardCtx(c, c.AddF32(x, t.FF.ForwardCtx(c, x)))
}

// F32MMAF is the f32 mirror of the multi-modality attention fusion layer.
type F32MMAF struct {
	Attn *F32SelfAttention
}

// NewF32MMAF mirrors the fusion attention.
func NewF32MMAF(m *MMAF) *F32MMAF { return &F32MMAF{Attn: NewF32SelfAttention(m.Attn)} }

// ForwardCtx2 fuses exactly two modality sequences — the AMMA hot path.
//
//mpgraph:noalloc
func (m *F32MMAF) ForwardCtx2(c *tensor.Ctx, a, b *tensor.F32Tensor) *tensor.F32Tensor {
	return m.Attn.ForwardCtx(c, c.ConcatRows2F32(a, b))
}

// ForwardBatchCtx2 fuses two stacked modality sequences block by block.
//
//mpgraph:noalloc
func (m *F32MMAF) ForwardBatchCtx2(c *tensor.Ctx, a, b *tensor.F32Tensor, blocks int) *tensor.F32Tensor {
	return m.Attn.ForwardBatchCtx(c, c.ConcatRowsBatch2F32(a, b, blocks), blocks)
}

// F32MLP is the f32 mirror of MLP, ReLUs fused into the hidden GEMMs.
type F32MLP struct {
	Layers []*F32Linear
}

// NewF32MLP mirrors every layer.
func NewF32MLP(m *MLP) *F32MLP {
	f := &F32MLP{}
	for _, l := range m.Layers {
		f.Layers = append(f.Layers, NewF32Linear(l))
	}
	return f
}

// ForwardCtx applies the MLP and returns raw logits.
//
//mpgraph:noalloc
func (m *F32MLP) ForwardCtx(c *tensor.Ctx, x *tensor.F32Tensor) *tensor.F32Tensor {
	for i, l := range m.Layers {
		act := tensor.ActReLU
		if i+1 == len(m.Layers) {
			act = tensor.ActNone
		}
		x = l.ForwardActCtx(c, x, act)
	}
	return x
}

// F32LSTM is the f32 mirror of LSTM.
type F32LSTM struct {
	Wxi, Whi, Bi *tensor.F32Tensor
	Wxf, Whf, Bf *tensor.F32Tensor
	Wxg, Whg, Bg *tensor.F32Tensor
	Wxo, Who, Bo *tensor.F32Tensor
	Hidden       int
}

// NewF32LSTM narrows l's gate weights into an f32 mirror.
func NewF32LSTM(l *LSTM) *F32LSTM {
	n := tensor.NarrowF32
	return &F32LSTM{
		Wxi: n(l.Wxi), Whi: n(l.Whi), Bi: n(l.Bi),
		Wxf: n(l.Wxf), Whf: n(l.Whf), Bf: n(l.Bf),
		Wxg: n(l.Wxg), Whg: n(l.Whg), Bg: n(l.Bg),
		Wxo: n(l.Wxo), Who: n(l.Who), Bo: n(l.Bo),
		Hidden: l.Hidden,
	}
}

// ForwardCtx consumes the sequence x [T x in] one row at a time and returns
// the final hidden state [1 x hidden]. The cell update mirrors the batched
// kernel's structure (h = tanh(c) via the vectorized activation, then the
// output-gate product) so sequential and batched f32 LSTMs are bit-identical.
//
//mpgraph:noalloc
func (l *F32LSTM) ForwardCtx(ctx *tensor.Ctx, x *tensor.F32Tensor) *tensor.F32Tensor {
	h := ctx.ZerosF32(1, l.Hidden)
	c := ctx.ZerosF32(1, l.Hidden)
	for t := 0; t < x.Rows; t++ {
		xt := ctx.RowViewF32(x, t)
		i := ctx.Linear2ActF32(xt, l.Wxi, h, l.Whi, l.Bi, tensor.ActSigmoid)
		f := ctx.Linear2ActF32(xt, l.Wxf, h, l.Whf, l.Bf, tensor.ActSigmoid)
		g := ctx.Linear2ActF32(xt, l.Wxg, h, l.Whg, l.Bg, tensor.ActTanh)
		o := ctx.Linear2ActF32(xt, l.Wxo, h, l.Who, l.Bo, tensor.ActSigmoid)
		for j := range c.Data {
			cv := f.Data[j]*c.Data[j] + i.Data[j]*g.Data[j]
			c.Data[j] = cv
			h.Data[j] = cv
		}
		tensor.ApplyActFastF32(h.Data, tensor.ActTanh) //mpgraph:allow noalloc -- in-place over the arena row; the cross-package naming rule keys on Ctx/Into suffixes
		for j := range h.Data {
			h.Data[j] *= o.Data[j]
		}
	}
	return h
}

// ForwardBatchCtx consumes `blocks` stacked sequences step-synchronously,
// mirroring LSTM.ForwardBatchCtx. Returns the final hidden states
// [blocks x hidden].
//
//mpgraph:noalloc
func (l *F32LSTM) ForwardBatchCtx(ctx *tensor.Ctx, x *tensor.F32Tensor, blocks int) *tensor.F32Tensor {
	t := x.Rows / blocks
	h := ctx.ZerosF32(blocks, l.Hidden)
	c := ctx.ZerosF32(blocks, l.Hidden)
	for step := 0; step < t; step++ {
		xt := ctx.GatherRowsStrideF32(x, step, t, blocks)
		i := ctx.Linear2ActF32(xt, l.Wxi, h, l.Whi, l.Bi, tensor.ActSigmoid)
		f := ctx.Linear2ActF32(xt, l.Wxf, h, l.Whf, l.Bf, tensor.ActSigmoid)
		g := ctx.Linear2ActF32(xt, l.Wxg, h, l.Whg, l.Bg, tensor.ActTanh)
		o := ctx.Linear2ActF32(xt, l.Wxo, h, l.Who, l.Bo, tensor.ActSigmoid)
		for j := range c.Data {
			cv := f.Data[j]*c.Data[j] + i.Data[j]*g.Data[j]
			c.Data[j] = cv
			h.Data[j] = cv
		}
		tensor.ApplyActFastF32(h.Data, tensor.ActTanh) //mpgraph:allow noalloc -- in-place over the arena row; the cross-package naming rule keys on Ctx/Into suffixes
		for j := range h.Data {
			h.Data[j] *= o.Data[j]
		}
	}
	return h
}
