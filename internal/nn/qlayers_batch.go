package nn

import (
	"math"

	"mpgraph/internal/tensor"
)

// Batched forwards for the int8 mirror layers. The quantized per-row kernels
// (QuantizeActs, QLinearActQ, QMLP) are batch-oblivious: each output row is
// an exact int32 dot of its own quantized activation row, so they run on the
// stacked block unchanged. Only attention must know the session boundary,
// and it uses AttentionBlocks in exact mode — per block it executes the
// identical float score/softmax/AV sequence as the sequential path, which is
// why the batched int8 tier is bit-identical to sequential int8 inference.

// ForwardBatchCtx attends independently inside each session block of the
// stacked sequence through the int8 projection kernels.
//
//mpgraph:noalloc
func (s *QSelfAttention) ForwardBatchCtx(c *tensor.Ctx, x *tensor.Tensor, blocks int) *tensor.Tensor {
	if s.src != nil {
		s.in.Observe(x.Data)
		return s.src.ForwardBatchCtx(c, x, blocks)
	}
	xq := c.QuantizeActs(x, s.scale)
	q := c.QLinearActQ(xq, x.Rows, s.scale, s.Wq, s.bq, tensor.ActNone)
	k := c.QLinearActQ(xq, x.Rows, s.scale, s.Wk, s.bk, tensor.ActNone)
	v := c.QLinearActQ(xq, x.Rows, s.scale, s.Wv, s.bv, tensor.ActNone)
	return c.AttentionBlocks(q, k, v, blocks, 1/math.Sqrt(float64(s.dim)), true)
}

// ForwardBatchCtx runs every int8 head over the stacked block and
// reprojects through the (batch-oblivious) int8 output projection.
//
//mpgraph:noalloc
func (m *QMultiHeadSelfAttention) ForwardBatchCtx(c *tensor.Ctx, x *tensor.Tensor, blocks int) *tensor.Tensor {
	outs := c.Ptrs(len(m.Heads))
	for i, h := range m.Heads {
		outs[i] = h.ForwardBatchCtx(c, x, blocks)
	}
	return m.Wo.ForwardCtx(c, c.ConcatCols(outs...))
}

// ForwardBatchCtx applies the int8 layer to the stacked block; residuals and
// the shared float layer norms are row-wise and need no batch form.
//
//mpgraph:noalloc
func (t *QTransformerLayer) ForwardBatchCtx(c *tensor.Ctx, x *tensor.Tensor, blocks int) *tensor.Tensor {
	x = t.n1.ForwardCtx(c, c.Add(x, t.MSA.ForwardBatchCtx(c, x, blocks)))
	return t.n2.ForwardCtx(c, c.Add(x, t.FF.ForwardCtx(c, x)))
}

// ForwardBatchCtx2 fuses two stacked modality sequences block by block
// through the int8 fusion attention.
//
//mpgraph:noalloc
func (m *QMMAF) ForwardBatchCtx2(c *tensor.Ctx, a, b *tensor.Tensor, blocks int) *tensor.Tensor {
	return m.Attn.ForwardBatchCtx(c, c.ConcatRowsBatch2(a, b, blocks), blocks)
}
