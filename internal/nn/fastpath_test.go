package nn

import (
	"math"
	"math/rand"
	"testing"

	"mpgraph/internal/tensor"
)

// randInput builds a deterministic dense input.
func randInput(rows, cols int, seed int64) *tensor.Tensor {
	rng := rand.New(rand.NewSource(seed))
	x := tensor.Zeros(rows, cols)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	return x
}

// wantClose asserts the fast-path output matches the autograd path within
// float reassociation tolerance (the fused kernels change summation order).
func wantClose(t *testing.T, name string, slow, fast *tensor.Tensor) {
	t.Helper()
	if slow.Rows != fast.Rows || slow.Cols != fast.Cols {
		t.Fatalf("%s: shape (%d,%d) vs (%d,%d)", name, slow.Rows, slow.Cols, fast.Rows, fast.Cols)
	}
	for i := range slow.Data {
		if math.Abs(slow.Data[i]-fast.Data[i]) > 1e-9 {
			t.Fatalf("%s: data[%d] = %g (slow) vs %g (fast)", name, i, slow.Data[i], fast.Data[i])
		}
	}
}

// Every layer's ForwardCtx with a live arena must reproduce the autograd
// Forward output: the fast path is a pure execution-strategy change.
func TestForwardCtxMatchesForward(t *testing.T) {
	ctx := tensor.NewCtx()
	x := randInput(9, 16, 7)

	layers := []struct {
		name string
		run  func(c *tensor.Ctx) *tensor.Tensor
	}{
		{"linear", func(c *tensor.Ctx) *tensor.Tensor {
			return NewLinear(16, 12, rand.New(rand.NewSource(1))).ForwardCtx(c, x)
		}},
		{"layernorm", func(c *tensor.Ctx) *tensor.Tensor {
			return NewLayerNorm(16).ForwardCtx(c, x)
		}},
		{"selfattention", func(c *tensor.Ctx) *tensor.Tensor {
			return NewSelfAttention(16, 8, rand.New(rand.NewSource(2))).ForwardCtx(c, x)
		}},
		{"mhsa", func(c *tensor.Ctx) *tensor.Tensor {
			return NewMultiHeadSelfAttention(16, 4, rand.New(rand.NewSource(3))).ForwardCtx(c, x)
		}},
		{"ffn", func(c *tensor.Ctx) *tensor.Tensor {
			return NewFFN(16, 32, rand.New(rand.NewSource(4))).ForwardCtx(c, x)
		}},
		{"transformer", func(c *tensor.Ctx) *tensor.Tensor {
			return NewTransformerLayer(16, 4, rand.New(rand.NewSource(5))).ForwardCtx(c, x)
		}},
		{"mlp", func(c *tensor.Ctx) *tensor.Tensor {
			return NewMLP([]int{16, 24, 6}, rand.New(rand.NewSource(6))).ForwardCtx(c, x)
		}},
		{"lstm", func(c *tensor.Ctx) *tensor.Tensor {
			return NewLSTM(16, 12, rand.New(rand.NewSource(8))).ForwardCtx(c, x)
		}},
	}
	for _, l := range layers {
		slow := l.run(nil)
		fast := l.run(ctx)
		wantClose(t, l.name, slow, fast)
		ctx.Reset()
	}
}

// Embedding and MMAF take non-tensor inputs; checked separately.
func TestForwardCtxMatchesForwardComposite(t *testing.T) {
	ctx := tensor.NewCtx()

	e := NewEmbedding(10, 8, rand.New(rand.NewSource(9)))
	ids := []int{1, 4, 9, 0, 4}
	wantClose(t, "embedding", e.ForwardCtx(nil, ids), e.ForwardCtx(ctx, ids))
	ctx.Reset()

	m := NewMMAF(16, 12, rand.New(rand.NewSource(10)))
	a, b := randInput(9, 16, 11), randInput(9, 16, 12)
	slow := m.Forward(a, b)
	wantClose(t, "mmaf", slow, m.ForwardCtx(ctx, a, b))
	ctx.Reset()
	wantClose(t, "mmaf2", slow, m.ForwardCtx2(ctx, a, b))
	ctx.Reset()

	// Repeated forwards after Reset must keep producing the same values
	// (arena reuse must not leak state between inferences).
	l := NewLinear(16, 12, rand.New(rand.NewSource(13)))
	x := randInput(9, 16, 14)
	first := l.ForwardCtx(ctx, x)
	snapshot := append([]float64(nil), first.Data...)
	ctx.Reset()
	second := l.ForwardCtx(ctx, x)
	for i := range snapshot {
		if math.Abs(snapshot[i]-second.Data[i]) > 0 {
			t.Fatalf("arena reuse changed output at %d: %g vs %g", i, snapshot[i], second.Data[i])
		}
	}
}
