package nn

import (
	"math"
	"math/rand"

	"mpgraph/internal/tensor"
)

// LSTM is a single-layer long short-term memory network, the backbone of the
// Delta-LSTM and Voyager baselines (Hochreiter & Schmidhuber 1997). Gates
// use separate weight matrices per gate, which keeps the autograd graph
// simple.
type LSTM struct {
	// Per-gate input and recurrent weights plus bias: i, f, g (cell), o.
	Wxi, Whi, Bi *tensor.Tensor
	Wxf, Whf, Bf *tensor.Tensor
	Wxg, Whg, Bg *tensor.Tensor
	Wxo, Who, Bo *tensor.Tensor
	Hidden       int
}

// NewLSTM builds an LSTM mapping in-dim inputs to a hidden-dim state.
func NewLSTM(in, hidden int, rng *rand.Rand) *LSTM {
	mk := func(r, c int) *tensor.Tensor { return tensor.Randn(r, c, 0.2, rng).Param() }
	l := &LSTM{
		Wxi: mk(in, hidden), Whi: mk(hidden, hidden), Bi: tensor.Zeros(1, hidden).Param(),
		Wxf: mk(in, hidden), Whf: mk(hidden, hidden), Bf: tensor.Zeros(1, hidden).Param(),
		Wxg: mk(in, hidden), Whg: mk(hidden, hidden), Bg: tensor.Zeros(1, hidden).Param(),
		Wxo: mk(in, hidden), Who: mk(hidden, hidden), Bo: tensor.Zeros(1, hidden).Param(),
		Hidden: hidden,
	}
	// Forget-gate bias starts at 1, the standard trick for gradient flow.
	for i := range l.Bf.Data {
		l.Bf.Data[i] = 1
	}
	return l
}

// Forward consumes the sequence x [T x in] one row at a time and returns
// the final hidden state [1 x hidden].
func (l *LSTM) Forward(x *tensor.Tensor) *tensor.Tensor {
	return l.ForwardCtx(nil, x)
}

// ForwardCtx is Forward on the ctx fast path: each gate is one fused
// input+recurrent GEMM with the nonlinearity in the epilogue, and the cell
// and hidden updates are a single in-place loop over the state vectors.
//
//mpgraph:noalloc
func (l *LSTM) ForwardCtx(ctx *tensor.Ctx, x *tensor.Tensor) *tensor.Tensor {
	if ctx == nil {
		h := tensor.Zeros(1, l.Hidden)
		c := tensor.Zeros(1, l.Hidden)
		for t := 0; t < x.Rows; t++ {
			xt := tensor.SliceRows(x, t, t+1)
			gate := func(wx, wh, b *tensor.Tensor) *tensor.Tensor {
				return tensor.AddBias(tensor.Add(tensor.MatMul(xt, wx), tensor.MatMul(h, wh)), b)
			}
			i := tensor.Sigmoid(gate(l.Wxi, l.Whi, l.Bi))
			f := tensor.Sigmoid(gate(l.Wxf, l.Whf, l.Bf))
			g := tensor.Tanh(gate(l.Wxg, l.Whg, l.Bg))
			o := tensor.Sigmoid(gate(l.Wxo, l.Who, l.Bo))
			c = tensor.Add(tensor.Mul(f, c), tensor.Mul(i, g))
			h = tensor.Mul(o, tensor.Tanh(c))
		}
		return h
	}
	h := ctx.Zeros(1, l.Hidden)
	c := ctx.Zeros(1, l.Hidden)
	for t := 0; t < x.Rows; t++ {
		xt := ctx.RowView(x, t)
		i := ctx.Linear2Act(xt, l.Wxi, h, l.Whi, l.Bi, tensor.ActSigmoid)
		f := ctx.Linear2Act(xt, l.Wxf, h, l.Whf, l.Bf, tensor.ActSigmoid)
		g := ctx.Linear2Act(xt, l.Wxg, h, l.Whg, l.Bg, tensor.ActTanh)
		o := ctx.Linear2Act(xt, l.Wxo, h, l.Who, l.Bo, tensor.ActSigmoid)
		for j := range c.Data {
			cv := f.Data[j]*c.Data[j] + i.Data[j]*g.Data[j]
			c.Data[j] = cv
			h.Data[j] = o.Data[j] * math.Tanh(cv)
		}
	}
	return h
}

// Params implements Module.
func (l *LSTM) Params() []*tensor.Tensor {
	return []*tensor.Tensor{
		l.Wxi, l.Whi, l.Bi,
		l.Wxf, l.Whf, l.Bf,
		l.Wxg, l.Whg, l.Bg,
		l.Wxo, l.Who, l.Bo,
	}
}
