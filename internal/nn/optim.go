package nn

import (
	"math"

	"mpgraph/internal/tensor"
)

// Adam is the Adam optimizer (Kingma & Ba) with the usual defaults.
type Adam struct {
	LR    float64
	Beta1 float64
	Beta2 float64
	Eps   float64
	// ClipNorm, when positive, rescales the global gradient norm to at most
	// this value before stepping (stabilises small-batch attention
	// training).
	ClipNorm float64

	t int
	m map[*tensor.Tensor][]float64
	v map[*tensor.Tensor][]float64
}

// NewAdam builds an Adam optimizer with the given learning rate.
func NewAdam(lr float64) *Adam {
	return &Adam{
		LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8, ClipNorm: 5,
		m: map[*tensor.Tensor][]float64{},
		v: map[*tensor.Tensor][]float64{},
	}
}

// Step applies one update to all parameters with gradients, then leaves the
// gradients untouched (callers ZeroGrads between batches).
func (a *Adam) Step(params []*tensor.Tensor) {
	a.t++
	if a.ClipNorm > 0 {
		total := 0.0
		for _, p := range params {
			for _, g := range p.Grad {
				total += g * g
			}
		}
		norm := math.Sqrt(total)
		if norm > a.ClipNorm {
			scale := a.ClipNorm / norm
			for _, p := range params {
				for i := range p.Grad {
					p.Grad[i] *= scale
				}
			}
		}
	}
	bc1 := 1 - math.Pow(a.Beta1, float64(a.t))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for _, p := range params {
		if p.Grad == nil {
			continue
		}
		m, ok := a.m[p]
		if !ok {
			m = make([]float64, len(p.Data))
			a.m[p] = m
			a.v[p] = make([]float64, len(p.Data))
		}
		v := a.v[p]
		for i, g := range p.Grad {
			m[i] = a.Beta1*m[i] + (1-a.Beta1)*g
			v[i] = a.Beta2*v[i] + (1-a.Beta2)*g*g
			mh := m[i] / bc1
			vh := v[i] / bc2
			p.Data[i] -= a.LR * mh / (math.Sqrt(vh) + a.Eps)
		}
	}
}
