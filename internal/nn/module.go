// Package nn builds the neural-network layer zoo used by the paper's models
// on top of the tensor autograd engine: Linear, Embedding, LayerNorm,
// scaled-dot-product self-attention, multi-head attention, the Transformer
// layer (MSA + FFN, Eq. 9-10), the multi-modality attention fusion layer
// (Eq. 8), and an LSTM for the baselines — plus the Adam optimizer,
// parameter (de)serialisation, and int8 quantization (Section 6.1).
package nn

import "mpgraph/internal/tensor"

// Module is anything owning trainable parameters.
type Module interface {
	// Params returns the trainable tensors in a stable order.
	Params() []*tensor.Tensor
}

// CountParams sums the element counts of all parameters.
func CountParams(m Module) int {
	n := 0
	for _, p := range m.Params() {
		n += len(p.Data)
	}
	return n
}

// ZeroGrads clears gradients of all parameters.
func ZeroGrads(m Module) {
	for _, p := range m.Params() {
		p.ZeroGrad()
	}
}

// collect concatenates parameter lists of sub-modules.
func collect(ms ...Module) []*tensor.Tensor {
	var out []*tensor.Tensor
	for _, m := range ms {
		out = append(out, m.Params()...)
	}
	return out
}
