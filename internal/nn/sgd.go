package nn

import (
	"math"

	"mpgraph/internal/tensor"
)

// SGD is stochastic gradient descent with classical momentum and optional
// weight decay — the ablation optimizer next to Adam.
type SGD struct {
	LR          float64
	Momentum    float64
	WeightDecay float64

	velocity map[*tensor.Tensor][]float64
}

// NewSGD builds an SGD optimizer.
func NewSGD(lr, momentum float64) *SGD {
	return &SGD{LR: lr, Momentum: momentum, velocity: map[*tensor.Tensor][]float64{}}
}

// Step applies one update to all parameters with gradients.
func (s *SGD) Step(params []*tensor.Tensor) {
	for _, p := range params {
		if p.Grad == nil {
			continue
		}
		v, ok := s.velocity[p]
		if !ok && s.Momentum != 0 {
			v = make([]float64, len(p.Data))
			s.velocity[p] = v
		}
		for i, g := range p.Grad {
			if s.WeightDecay != 0 {
				g += s.WeightDecay * p.Data[i]
			}
			if s.Momentum != 0 {
				v[i] = s.Momentum*v[i] + g
				g = v[i]
			}
			p.Data[i] -= s.LR * g
		}
	}
}

// Schedule maps a step index to a learning-rate multiplier.
type Schedule interface {
	// Factor returns the LR multiplier for step (0-based).
	Factor(step int) float64
}

// StepSchedule multiplies the LR by Gamma every Every steps.
type StepSchedule struct {
	Every int
	Gamma float64
}

// Factor implements Schedule.
func (s StepSchedule) Factor(step int) float64 {
	if s.Every <= 0 {
		return 1
	}
	return math.Pow(s.Gamma, float64(step/s.Every))
}

// CosineSchedule anneals the LR from 1 to Floor over Total steps.
type CosineSchedule struct {
	Total int
	Floor float64
}

// Factor implements Schedule.
func (s CosineSchedule) Factor(step int) float64 {
	if s.Total <= 0 {
		return 1
	}
	if step >= s.Total {
		return s.Floor
	}
	cos := 0.5 * (1 + math.Cos(math.Pi*float64(step)/float64(s.Total)))
	return s.Floor + (1-s.Floor)*cos
}

// ScheduledLR wraps a base learning rate with a schedule, for use as
//
//	opt.LR = sched.At(step)
type ScheduledLR struct {
	Base     float64
	Schedule Schedule
}

// At returns the learning rate for step.
func (s ScheduledLR) At(step int) float64 {
	if s.Schedule == nil {
		return s.Base
	}
	return s.Base * s.Schedule.Factor(step)
}
