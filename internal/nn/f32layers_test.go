package nn

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"mpgraph/internal/tensor"
)

// narrowInput narrows a float64 input into an arena f32 tensor.
func narrowInput(c *tensor.Ctx, x *tensor.Tensor) *tensor.F32Tensor {
	return c.NarrowCtxF32(x)
}

// wantCloseF32 asserts the f32 mirror tracks the float64 reference within
// single-precision tolerance (absolute + relative, since attention and
// softmax compound roundings across layers).
func wantCloseF32(t *testing.T, name string, ref *tensor.Tensor, got *tensor.F32Tensor, tol float64) {
	t.Helper()
	if ref.Rows != got.Rows || ref.Cols != got.Cols {
		t.Fatalf("%s: shape (%d,%d) vs (%d,%d)", name, ref.Rows, ref.Cols, got.Rows, got.Cols)
	}
	for i := range ref.Data {
		diff := math.Abs(ref.Data[i] - float64(got.Data[i]))
		if diff > tol && diff > tol*math.Abs(ref.Data[i]) {
			t.Fatalf("%s: data[%d] = %g (f64) vs %g (f32)", name, i, ref.Data[i], got.Data[i])
		}
	}
}

// Every f32 mirror must track its float64 layer within single-precision
// tolerance: the tier is a precision change, not an architecture change.
func TestF32LayersMatchFloat(t *testing.T) {
	ctx := tensor.NewCtx()
	x := randInput(9, 16, 7)

	layers := []struct {
		name string
		tol  float64
		run  func(c *tensor.Ctx) (*tensor.Tensor, *tensor.F32Tensor)
	}{
		{"linear", 1e-5, func(c *tensor.Ctx) (*tensor.Tensor, *tensor.F32Tensor) {
			l := NewLinear(16, 12, rand.New(rand.NewSource(1)))
			return l.ForwardCtx(c, x), NewF32Linear(l).ForwardCtx(c, narrowInput(c, x))
		}},
		{"layernorm", 1e-5, func(c *tensor.Ctx) (*tensor.Tensor, *tensor.F32Tensor) {
			l := NewLayerNorm(16)
			return l.ForwardCtx(c, x), NewF32LayerNorm(l).ForwardCtx(c, narrowInput(c, x))
		}},
		{"selfattention", 1e-4, func(c *tensor.Ctx) (*tensor.Tensor, *tensor.F32Tensor) {
			s := NewSelfAttention(16, 8, rand.New(rand.NewSource(2)))
			return s.ForwardCtx(c, x), NewF32SelfAttention(s).ForwardCtx(c, narrowInput(c, x))
		}},
		{"mhsa", 1e-4, func(c *tensor.Ctx) (*tensor.Tensor, *tensor.F32Tensor) {
			m := NewMultiHeadSelfAttention(16, 4, rand.New(rand.NewSource(3)))
			return m.ForwardCtx(c, x), NewF32MultiHeadSelfAttention(m).ForwardCtx(c, narrowInput(c, x))
		}},
		{"ffn", 1e-4, func(c *tensor.Ctx) (*tensor.Tensor, *tensor.F32Tensor) {
			f := NewFFN(16, 32, rand.New(rand.NewSource(4)))
			return f.ForwardCtx(c, x), NewF32FFN(f).ForwardCtx(c, narrowInput(c, x))
		}},
		{"transformer", 1e-3, func(c *tensor.Ctx) (*tensor.Tensor, *tensor.F32Tensor) {
			tr := NewTransformerLayer(16, 4, rand.New(rand.NewSource(5)))
			return tr.ForwardCtx(c, x), NewF32TransformerLayer(tr).ForwardCtx(c, narrowInput(c, x))
		}},
		{"mmaf", 1e-4, func(c *tensor.Ctx) (*tensor.Tensor, *tensor.F32Tensor) {
			m := NewMMAF(16, 8, rand.New(rand.NewSource(6)))
			xf := narrowInput(c, x)
			return m.ForwardCtx2(c, x, x), NewF32MMAF(m).ForwardCtx2(c, xf, xf)
		}},
		{"mlp", 1e-4, func(c *tensor.Ctx) (*tensor.Tensor, *tensor.F32Tensor) {
			m := NewMLP([]int{16, 24, 8}, rand.New(rand.NewSource(7)))
			return m.ForwardCtx(c, x), NewF32MLP(m).ForwardCtx(c, narrowInput(c, x))
		}},
		{"lstm", 1e-4, func(c *tensor.Ctx) (*tensor.Tensor, *tensor.F32Tensor) {
			l := NewLSTM(16, 12, rand.New(rand.NewSource(8)))
			return l.ForwardCtx(c, x), NewF32LSTM(l).ForwardCtx(c, narrowInput(c, x))
		}},
	}
	for _, lt := range layers {
		ctx.Reset()
		ref, got := lt.run(ctx)
		wantCloseF32(t, lt.name, ref, got, lt.tol)
	}
}

// The f32 LSTM's sequential forward and blocks=1 batched forward share the
// cell-update structure, so they must agree bit for bit; a multi-block batch
// must equal each sequence scored alone.
func TestF32LSTMBatchMatchesSequential(t *testing.T) {
	ctx := tensor.NewCtx()
	l := NewF32LSTM(NewLSTM(10, 8, rand.New(rand.NewSource(9))))
	blocks, steps := 5, 6
	x := randInput(blocks*steps, 10, 11)
	xf := narrowInput(ctx, x)
	batched := l.ForwardBatchCtx(ctx, xf, blocks)
	for blk := 0; blk < blocks; blk++ {
		seq := ctx.ZerosF32(steps, 10)
		copy(seq.Data, xf.Data[blk*steps*10:(blk+1)*steps*10])
		solo := l.ForwardCtx(ctx, seq)
		for j := range solo.Data {
			if math.Float32bits(solo.Data[j]) != math.Float32bits(batched.Data[blk*8+j]) {
				t.Fatalf("block %d elem %d: solo %g != batched %g",
					blk, j, solo.Data[j], batched.Data[blk*8+j])
			}
		}
	}
}

// SaveF16 must halve parameter payload, round-trip losslessly after one
// precision cut, and produce values within half-precision distance of the
// originals.
func TestSaveF16RoundTrip(t *testing.T) {
	src := NewTransformerLayer(16, 4, rand.New(rand.NewSource(12)))
	var buf bytes.Buffer
	if err := SaveF16(&buf, src); err != nil {
		t.Fatalf("SaveF16: %v", err)
	}
	var f64buf bytes.Buffer
	if err := Save(&f64buf, src); err != nil {
		t.Fatalf("Save: %v", err)
	}
	var elems int
	for _, p := range src.Params() {
		elems += len(p.Data)
	}
	if got, want := buf.Len(), f64buf.Len()-6*elems; got != want {
		t.Fatalf("f16 snapshot %d bytes, want %d (f64 %d minus 6 per element)", got, want, f64buf.Len())
	}

	dst := NewTransformerLayer(16, 4, rand.New(rand.NewSource(13)))
	if err := LoadF16(bytes.NewReader(buf.Bytes()), dst); err != nil {
		t.Fatalf("LoadF16: %v", err)
	}
	sp, dp := src.Params(), dst.Params()
	for i := range sp {
		for j := range sp[i].Data {
			want := tensor.F16Float64(tensor.F16Bits(sp[i].Data[j]))
			if dp[i].Data[j] != want {
				t.Fatalf("param %d elem %d: loaded %g, want f16 rounding %g (orig %g)",
					i, j, dp[i].Data[j], want, sp[i].Data[j])
			}
			if math.Abs(dp[i].Data[j]-sp[i].Data[j]) > math.Abs(sp[i].Data[j])*2e-3+1e-7 {
				t.Fatalf("param %d elem %d: f16 value %g too far from %g",
					i, j, dp[i].Data[j], sp[i].Data[j])
			}
		}
	}

	// Second round trip is lossless: the values are already binary16.
	var buf2 bytes.Buffer
	if err := SaveF16(&buf2, dst); err != nil {
		t.Fatalf("SaveF16 round 2: %v", err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("second SaveF16 differs: f16 encode/decode is not idempotent")
	}
}
