package sim

// LLCAccess describes one demand access reaching the shared LLC, as seen by
// a prefetcher.
type LLCAccess struct {
	// Block is the cache-block address (byte address >> 6).
	Block uint64
	// PC is the program counter of the access.
	PC uint64
	// Core is the issuing core.
	Core uint8
	// Hit reports whether the access hit in the LLC.
	Hit bool
	// Write marks stores.
	Write bool
	// Phase is the ground-truth phase label carried by the trace. Deployed
	// prefetchers must not read it (they detect phases themselves); it
	// exists for oracle-phase ablations.
	Phase uint8
}

// Prefetcher is the LLC prefetcher interface, mirroring ChampSim's
// l2c_prefetcher_operate hook: it observes every demand access that reaches
// the LLC and returns block addresses to prefetch. Implementations train
// online (BO, ISB) or run pretrained models (Delta-LSTM, Voyager, TransFetch,
// MPGraph).
type Prefetcher interface {
	// Name identifies the prefetcher in reports.
	Name() string
	// Operate observes acc and returns block addresses to prefetch into the
	// LLC. Returning nil issues nothing. The returned slice is only valid
	// until the next Operate call: the engine consumes it immediately and
	// never retains it, so implementations may return a reused buffer
	// (the ML prefetchers' zero-allocation fast path depends on this).
	Operate(acc LLCAccess) []uint64
}

// HealthReporter is implemented by prefetchers that self-screen their model
// outputs (e.g. for non-finite scores). Health returns nil while the model is
// sound and the first detected defect afterwards; a degradation wrapper polls
// it after every Operate call and falls back once it goes non-nil.
type HealthReporter interface {
	Health() error
}

// InferenceLatency is implemented by prefetchers whose predictions come from
// a model with a non-zero inference delay; the simulator adds the reported
// cycles before a prefetch may issue (Section 6.2 of the paper).
type InferenceLatency interface {
	InferenceLatencyCycles() uint64
}

// nopPrefetcher is the no-prefetching baseline.
type nopPrefetcher struct{}

func (nopPrefetcher) Name() string               { return "none" }
func (nopPrefetcher) Operate(LLCAccess) []uint64 { return nil }

// NoPrefetcher returns the baseline that never prefetches.
func NoPrefetcher() Prefetcher { return nopPrefetcher{} }
