package sim

import (
	"fmt"
	"sort"

	"mpgraph/internal/trace"
)

// Config mirrors Table 3 of the paper. All latencies are in core cycles.
type Config struct {
	Cores int

	L1Sets, L1Ways   int
	L1Latency        uint64
	L2Sets, L2Ways   int
	L2Latency        uint64
	LLCSets, LLCWays int
	LLCLatency       uint64

	DRAMLatency       uint64
	DRAMServiceCycles uint64

	// IssueWidth is instructions retired per cycle when not stalled (4-wide
	// OoO in Table 3).
	IssueWidth int
	// MaxOutstanding bounds per-core overlapped long-latency misses (the
	// ROB/LSQ-induced memory-level parallelism limit).
	MaxOutstanding int
	// PrefetchQueueMax bounds prefetches in flight; excess requests drop.
	PrefetchQueueMax int
	// PrefetchLatency is added before every prefetch issues, modelling ML
	// model inference latency (Fig. 14 sweeps this).
	PrefetchLatency uint64
}

// DefaultConfig returns the Table 3 configuration.
func DefaultConfig() Config {
	return Config{
		Cores:       4,
		L1Sets:      256, // 64 KB / 64 B / 4 ways
		L1Ways:      4,
		L1Latency:   4,
		L2Sets:      1024, // 512 KB / 64 B / 8 ways
		L2Ways:      8,
		L2Latency:   10,
		LLCSets:     2048, // 2 MB / 64 B / 16 ways
		LLCWays:     16,
		LLCLatency:  20,
		DRAMLatency: 150, // 3 x 12.5 ns at 4 GHz
		// Channel occupancy per 64 B block. The trace generator compresses
		// non-memory work into small instruction gaps, so the per-cycle
		// memory intensity is several times a real instruction stream's;
		// the service time is scaled down accordingly (2 channels with
		// bank-level pipelining) to preserve the paper's latency-bound
		// regime rather than its nominal 8 GB/s figure (DESIGN.md §2).
		DRAMServiceCycles: 4,
		IssueWidth:        4,
		MaxOutstanding:    8,
		PrefetchQueueMax:  64,
	}
}

// Metrics aggregates one simulation run.
type Metrics struct {
	Prefetcher   string
	Instructions uint64
	Cycles       uint64

	L1Hits, L1Misses   uint64
	L2Hits, L2Misses   uint64
	LLCHits, LLCMisses uint64 // demand only

	PrefetchesIssued  uint64
	PrefetchesDropped uint64
	UsefulPrefetches  uint64 // prefetched lines demand-hit before eviction
	LatePrefetches    uint64 // demand arrived before the fill completed
	PollutedEvictions uint64 // never-used prefetched lines evicted

	DRAMRequests   uint64
	DRAMQueueDelay uint64
}

// IPC is instructions per cycle.
func (m Metrics) IPC() float64 {
	if m.Cycles == 0 {
		return 0
	}
	return float64(m.Instructions) / float64(m.Cycles)
}

// Accuracy is the fraction of issued prefetches that were useful.
func (m Metrics) Accuracy() float64 {
	if m.PrefetchesIssued == 0 {
		return 0
	}
	return float64(m.UsefulPrefetches) / float64(m.PrefetchesIssued)
}

// Coverage is the fraction of would-be LLC misses eliminated by prefetching:
// useful / (useful + remaining demand misses).
func (m Metrics) Coverage() float64 {
	den := m.UsefulPrefetches + m.LLCMisses
	if den == 0 {
		return 0
	}
	return float64(m.UsefulPrefetches) / float64(den)
}

// IPCImprovement is the relative IPC gain of m over the baseline run.
func (m Metrics) IPCImprovement(baseline Metrics) float64 {
	b := baseline.IPC()
	if b == 0 {
		return 0
	}
	return (m.IPC() - b) / b
}

func (m Metrics) String() string {
	return fmt.Sprintf("%s: IPC=%.4f acc=%.3f cov=%.3f issued=%d useful=%d llcMiss=%d",
		m.Prefetcher, m.IPC(), m.Accuracy(), m.Coverage(), m.PrefetchesIssued, m.UsefulPrefetches, m.LLCMisses)
}

// inflightPrefetch is a prefetch waiting to fill the LLC.
type inflightPrefetch struct {
	block   uint64
	readyAt uint64
}

// Engine is the trace-driven simulator.
type Engine struct {
	cfg  Config
	l1   []*Cache
	l2   []*Cache
	llc  *Cache
	dram DRAM

	coreTime    []uint64
	outstanding [][]uint64 // completion times of in-flight long misses per core
	inflight    []inflightPrefetch

	pf      Prefetcher
	metrics Metrics

	// Recorder, when set, receives every demand access that reaches the LLC
	// along with its hit status — the "extract the shared LLC memory access
	// trace" step of the paper's workflow.
	Recorder func(acc trace.Access, hit bool)
}

// NewEngine builds an engine for cfg with prefetcher pf (nil means none).
func NewEngine(cfg Config, pf Prefetcher) (*Engine, error) {
	if cfg.Cores <= 0 {
		return nil, fmt.Errorf("sim: cores must be positive")
	}
	if pf == nil {
		pf = NoPrefetcher()
	}
	e := &Engine{cfg: cfg, pf: pf}
	for c := 0; c < cfg.Cores; c++ {
		l1, err := NewCache(fmt.Sprintf("l1d%d", c), cfg.L1Sets, cfg.L1Ways)
		if err != nil {
			return nil, err
		}
		l2, err := NewCache(fmt.Sprintf("l2%d", c), cfg.L2Sets, cfg.L2Ways)
		if err != nil {
			return nil, err
		}
		e.l1 = append(e.l1, l1)
		e.l2 = append(e.l2, l2)
	}
	llc, err := NewCache("llc", cfg.LLCSets, cfg.LLCWays)
	if err != nil {
		return nil, err
	}
	e.llc = llc
	e.dram = DRAM{Latency: cfg.DRAMLatency, ServiceCycles: cfg.DRAMServiceCycles}
	e.coreTime = make([]uint64, cfg.Cores)
	e.outstanding = make([][]uint64, cfg.Cores)
	e.metrics.Prefetcher = pf.Name()
	if il, ok := pf.(InferenceLatency); ok && cfg.PrefetchLatency == 0 {
		e.cfg.PrefetchLatency = il.InferenceLatencyCycles()
	}
	return e, nil
}

// Run processes the whole access slice and returns the metrics.
func (e *Engine) Run(accesses []trace.Access) Metrics {
	for i := range accesses {
		e.Step(accesses[i])
	}
	return e.Finish()
}

// Step processes one access.
func (e *Engine) Step(a trace.Access) {
	c := int(a.Core) % e.cfg.Cores
	now := e.coreTime[c]

	// Retire the non-memory instructions preceding this access.
	instr := uint64(a.Gap) + 1
	e.metrics.Instructions += instr
	now += (instr + uint64(e.cfg.IssueWidth) - 1) / uint64(e.cfg.IssueWidth)

	// Complete any inflight prefetch fills that are due.
	e.drainPrefetches(now)

	block := trace.Block(a.Addr)
	latency, longMiss := e.lookup(c, block, now, a)

	if longMiss {
		// The miss occupies an MSHR; the core stalls only when the
		// outstanding window is full (memory-level parallelism model).
		q := e.outstanding[c]
		q = append(q, now+latency)
		if len(q) > e.cfg.MaxOutstanding {
			sort.Slice(q, func(i, j int) bool { return q[i] < q[j] })
			head := q[0]
			q = q[1:]
			if head > now {
				now = head
			}
		}
		e.outstanding[c] = q
	} else {
		// Short-latency accesses retire within the window.
		now += latency / uint64(e.cfg.IssueWidth)
	}
	e.coreTime[c] = now
}

// lookup walks the hierarchy for a demand access, updating caches, issuing
// prefetcher work, and returning the access latency plus whether it is a
// long (LLC-or-beyond) miss that should occupy the overlap window.
func (e *Engine) lookup(c int, block uint64, now uint64, a trace.Access) (latency uint64, longMiss bool) {
	cfg := &e.cfg
	// wasPrefetch is structurally false at L1/L2 — only the LLC holds
	// prefetched fills — so just the hit flag and the fill time matter
	// here. A hit on a line whose fill is still in flight (readyAt in the
	// future) pays the remaining fill time, mirroring the LLC's
	// late-prefetch handling.
	if hit, readyAt, _ := e.l1[c].Lookup(block, true); hit {
		e.metrics.L1Hits++
		lat := cfg.L1Latency
		if readyAt > now+lat {
			lat = readyAt - now
		}
		return lat, false
	}
	e.metrics.L1Misses++
	if hit, readyAt, _ := e.l2[c].Lookup(block, true); hit {
		e.metrics.L2Hits++
		lat := cfg.L2Latency
		if readyAt > now+lat {
			lat = readyAt - now
		}
		e.l1[c].Insert(block, false, now+lat)
		return lat, false
	}
	e.metrics.L2Misses++

	// The access reaches the shared LLC: record and train the prefetcher.
	llcHit, readyAt, wasPF := e.llc.Lookup(block, true)
	if e.Recorder != nil {
		e.Recorder(a, llcHit)
	}
	acc := LLCAccess{Block: block, PC: a.PC, Core: a.Core, Hit: llcHit, Write: a.Write, Phase: a.Phase}
	wanted := e.pf.Operate(acc)
	e.issuePrefetches(wanted, now)

	if llcHit {
		e.metrics.LLCHits++
		if wasPF {
			e.metrics.UsefulPrefetches++
		}
		lat := cfg.LLCLatency
		if readyAt > now+lat {
			// Late prefetch: the line is allocated but data not yet back.
			// The demand promotes the in-flight fill to demand priority: it
			// completes no later than an unloaded demand fetch would (the
			// data moves once, so no second transfer is charged).
			if promoted := now + cfg.DRAMLatency; promoted < readyAt {
				readyAt = promoted
			}
			if readyAt > now+lat {
				lat = readyAt - now
			}
			e.metrics.LatePrefetches++
		}
		e.l2[c].Insert(block, false, now+lat)
		e.l1[c].Insert(block, false, now+lat)
		// LLC hits are long enough that the ROB overlaps them like misses;
		// only L1/L2 hits retire serially.
		return lat, true
	}

	// MSHR merge: a demand miss whose block is already being prefetched
	// waits for that fill instead of re-fetching — a late but useful
	// prefetch that still hides part of the DRAM latency.
	for i := range e.inflight {
		if e.inflight[i].block == block {
			ready := e.inflight[i].readyAt
			e.inflight = append(e.inflight[:i], e.inflight[i+1:]...)
			e.metrics.UsefulPrefetches++
			e.metrics.LatePrefetches++
			e.metrics.LLCHits++
			// Promotion: the merged demand raises the in-flight fill to
			// demand priority; it arrives no later than an unloaded demand
			// fetch (no second transfer is charged — the data moves once).
			if promoted := now + cfg.DRAMLatency; promoted < ready {
				ready = promoted
			}
			e.insertLLC(block, false, ready)
			lat := cfg.LLCLatency
			if ready > now {
				lat = ready - now + cfg.LLCLatency
			}
			e.l2[c].Insert(block, false, now+lat)
			e.l1[c].Insert(block, false, now+lat)
			return lat, true
		}
	}

	e.metrics.LLCMisses++
	ready := e.dram.Access(now)
	lat := (ready - now) + cfg.LLCLatency
	e.insertLLC(block, false, ready)
	e.l2[c].Insert(block, false, now+lat)
	e.l1[c].Insert(block, false, now+lat)
	return lat, true
}

// issuePrefetches files prefetch requests for the given block addresses.
func (e *Engine) issuePrefetches(blocks []uint64, now uint64) {
	for _, b := range blocks {
		if len(e.inflight) >= e.cfg.PrefetchQueueMax {
			e.metrics.PrefetchesDropped++
			continue
		}
		if e.llc.Contains(b) {
			continue // already cached: not issued, not counted
		}
		dup := false
		for i := range e.inflight {
			if e.inflight[i].block == b {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		e.metrics.PrefetchesIssued++
		issueAt := now + e.cfg.PrefetchLatency
		ready := e.dram.AccessPrefetch(issueAt)
		e.inflight = append(e.inflight, inflightPrefetch{block: b, readyAt: ready})
	}
}

// drainPrefetches fills the LLC with prefetches whose data has arrived.
func (e *Engine) drainPrefetches(now uint64) {
	if len(e.inflight) == 0 {
		return
	}
	kept := e.inflight[:0]
	for _, p := range e.inflight {
		if p.readyAt <= now {
			e.insertLLC(p.block, true, p.readyAt)
		} else {
			kept = append(kept, p)
		}
	}
	e.inflight = kept
}

func (e *Engine) insertLLC(block uint64, prefetched bool, readyAt uint64) {
	// The victim's identity and validity are deliberately unused: the
	// engine models no writeback traffic, so an evicted block costs
	// nothing; pollution accounting only needs the never-referenced
	// prefetch flag.
	_, _, unusedPF := e.llc.Insert(block, prefetched, readyAt) //mpgraph:allow errdrop -- no writeback modelling, victim identity is irrelevant
	if unusedPF {
		e.metrics.PollutedEvictions++
	}
}

// Finish computes the final cycle count (the slowest core, including its
// outstanding misses) and returns the metrics.
func (e *Engine) Finish() Metrics {
	maxTime := uint64(0)
	for _, t := range e.coreTime {
		if t > maxTime {
			maxTime = t
		}
	}
	for _, q := range e.outstanding {
		for _, t := range q {
			if t > maxTime {
				maxTime = t
			}
		}
	}
	e.metrics.Cycles = maxTime
	e.metrics.DRAMRequests = e.dram.Requests
	e.metrics.DRAMQueueDelay = e.dram.QueueDelay
	return e.metrics
}
