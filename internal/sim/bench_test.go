package sim

import (
	"math/rand"
	"testing"

	"mpgraph/internal/trace"
)

func BenchmarkEngineNoPrefetch(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	tr := make([]trace.Access, 100_000)
	for i := range tr {
		tr[i] = trace.Access{Addr: uint64(rng.Intn(1<<24)) * 64, Core: uint8(i % 4), Gap: 3}
	}
	b.SetBytes(int64(len(tr)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e, err := NewEngine(DefaultConfig(), nil)
		if err != nil {
			b.Fatal(err)
		}
		e.Run(tr)
	}
}

func BenchmarkCacheLookupInsert(b *testing.B) {
	c, _ := NewCache("bench", 2048, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		block := uint64(i) % (1 << 16)
		if hit, _, _ := c.Lookup(block, true); !hit {
			c.Insert(block, false, 0)
		}
	}
}
