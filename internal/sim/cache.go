// Package sim is the trace-driven multi-core memory-hierarchy simulator that
// substitutes for ChampSim (DESIGN.md §2). It models per-core L1D and L2
// caches, a shared last-level cache with a prefetcher hook, a bandwidth- and
// latency-modelled DRAM, and a ROB/MSHR-limited overlap model per core, and
// reports the metrics the paper evaluates prefetchers on: IPC, prefetch
// accuracy, and prefetch coverage.
package sim

import "fmt"

// line is one cache line's metadata.
type line struct {
	tag        uint64
	valid      bool
	prefetched bool // filled by a prefetch and not yet demand-referenced
	readyAt    uint64
	lastUse    uint64 // LRU timestamp
}

// Cache is a set-associative cache with true-LRU replacement.
type Cache struct {
	name     string
	sets     int
	ways     int
	lines    []line // sets*ways, row-major by set
	useClock uint64

	Hits, Misses uint64
}

// NewCache builds a cache with the given geometry. Sets must be a power of
// two.
func NewCache(name string, sets, ways int) (*Cache, error) {
	if sets <= 0 || sets&(sets-1) != 0 {
		return nil, fmt.Errorf("sim: %s sets %d must be a positive power of two", name, sets)
	}
	if ways <= 0 {
		return nil, fmt.Errorf("sim: %s ways %d must be positive", name, ways)
	}
	return &Cache{name: name, sets: sets, ways: ways, lines: make([]line, sets*ways)}, nil
}

// SizeBytes reports the cache capacity given 64-byte lines.
func (c *Cache) SizeBytes() int { return c.sets * c.ways * 64 }

func (c *Cache) set(block uint64) []line {
	idx := int(block) & (c.sets - 1)
	return c.lines[idx*c.ways : (idx+1)*c.ways]
}

// Lookup probes for block. On hit it refreshes LRU state and returns the
// line; the returned wasPrefetch reports whether this is the first demand
// touch of a prefetched line (and clears the flag when demand is true).
func (c *Cache) Lookup(block uint64, demand bool) (hit bool, readyAt uint64, wasPrefetch bool) {
	c.useClock++
	set := c.set(block)
	for i := range set {
		l := &set[i]
		if l.valid && l.tag == block {
			l.lastUse = c.useClock
			wasPrefetch = l.prefetched
			if demand {
				l.prefetched = false
				c.Hits++
			}
			return true, l.readyAt, wasPrefetch
		}
	}
	if demand {
		c.Misses++
	}
	return false, 0, false
}

// Insert fills block, evicting the LRU way. readyAt is the cycle at which
// the fill data arrives (demand hits earlier than that pay the difference).
// It returns the evicted block and whether the victim was a never-used
// prefetch (for pollution accounting).
func (c *Cache) Insert(block uint64, prefetched bool, readyAt uint64) (evicted uint64, evictedValid, evictedUnusedPrefetch bool) {
	c.useClock++
	set := c.set(block)
	victim := 0
	for i := range set {
		l := &set[i]
		if l.valid && l.tag == block {
			// Already present (racing fills); refresh.
			l.lastUse = c.useClock
			if !prefetched {
				l.prefetched = false
			}
			if readyAt < l.readyAt {
				l.readyAt = readyAt
			}
			return 0, false, false
		}
		if !l.valid {
			victim = i
			break
		}
		if l.lastUse < set[victim].lastUse {
			victim = i
		}
	}
	v := &set[victim]
	evicted, evictedValid, evictedUnusedPrefetch = v.tag, v.valid, v.valid && v.prefetched
	*v = line{tag: block, valid: true, prefetched: prefetched, readyAt: readyAt, lastUse: c.useClock}
	return evicted, evictedValid, evictedUnusedPrefetch
}

// Contains probes without touching LRU or counters (used by prefetch-issue
// filtering and tests).
func (c *Cache) Contains(block uint64) bool {
	set := c.set(block)
	for i := range set {
		if set[i].valid && set[i].tag == block {
			return true
		}
	}
	return false
}

// Reset clears contents and counters.
func (c *Cache) Reset() {
	for i := range c.lines {
		c.lines[i] = line{}
	}
	c.Hits, c.Misses, c.useClock = 0, 0, 0
}
