package sim

// DRAM models main memory with a fixed access latency plus a shared-channel
// bandwidth constraint: each block transfer occupies a channel for
// ServiceCycles, so bursts queue behind each other.
//
// The controller gives demand reads priority over prefetch fills, as real
// memory controllers do: a demand request queues only behind other demand
// requests, while a prefetch queues behind everything. (Slightly optimistic
// — an in-flight prefetch transfer is treated as preemptible — but it
// captures the first-order behaviour: prefetch traffic must not head-of-
// line-block demand misses.)
type DRAM struct {
	// Latency is the unloaded access latency in core cycles
	// (tRP+tRCD+tCAS at 12.5ns each ≈ 150 cycles at 4 GHz).
	Latency uint64
	// ServiceCycles is the channel occupancy per 64-byte block.
	ServiceCycles uint64

	demandFree   uint64 // next cycle the channel is free of demand traffic
	prefetchFree uint64 // next cycle the channel is fully idle
	Requests     uint64
	QueueDelay   uint64 // total cycles demand requests spent queued
}

// Access schedules a demand block fetch starting no earlier than now and
// returns the cycle at which the data is available. Demand requests queue
// only behind other demand requests.
func (d *DRAM) Access(now uint64) (readyAt uint64) {
	d.Requests++
	start := now
	if d.demandFree > start {
		d.QueueDelay += d.demandFree - start
		start = d.demandFree
	}
	d.demandFree = start + d.ServiceCycles
	if d.prefetchFree < d.demandFree {
		d.prefetchFree = d.demandFree
	}
	return start + d.Latency
}

// AccessPrefetch schedules a low-priority prefetch fill: it waits for all
// queued demand and prefetch traffic.
func (d *DRAM) AccessPrefetch(now uint64) (readyAt uint64) {
	d.Requests++
	start := now
	if d.prefetchFree > start {
		start = d.prefetchFree
	}
	d.prefetchFree = start + d.ServiceCycles
	return start + d.Latency
}

// Reset clears scheduling state and counters.
func (d *DRAM) Reset() {
	d.demandFree, d.prefetchFree, d.Requests, d.QueueDelay = 0, 0, 0, 0
}
