package sim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mpgraph/internal/trace"
)

func TestCacheGeometry(t *testing.T) {
	c, err := NewCache("x", 256, 4)
	if err != nil {
		t.Fatal(err)
	}
	if c.SizeBytes() != 64*1024 {
		t.Fatalf("size = %d, want 64KB", c.SizeBytes())
	}
	if _, err := NewCache("bad", 100, 4); err == nil {
		t.Fatal("non power-of-two sets must fail")
	}
	if _, err := NewCache("bad", 64, 0); err == nil {
		t.Fatal("zero ways must fail")
	}
}

func TestCacheHitMiss(t *testing.T) {
	c, _ := NewCache("x", 4, 2)
	if hit, _, _ := c.Lookup(100, true); hit {
		t.Fatal("cold lookup must miss")
	}
	c.Insert(100, false, 0)
	if hit, _, _ := c.Lookup(100, true); !hit {
		t.Fatal("lookup after insert must hit")
	}
	if c.Hits != 1 || c.Misses != 1 {
		t.Fatalf("counters %d/%d, want 1/1", c.Hits, c.Misses)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c, _ := NewCache("x", 1, 2) // one set, two ways
	c.Insert(1, false, 0)
	c.Insert(2, false, 0)
	c.Lookup(1, true) // make 2 the LRU
	ev, valid, _ := c.Insert(3, false, 0)
	if !valid || ev != 2 {
		t.Fatalf("evicted %d (valid=%v), want 2", ev, valid)
	}
	if !c.Contains(1) || !c.Contains(3) || c.Contains(2) {
		t.Fatal("LRU state wrong after eviction")
	}
}

func TestCachePrefetchFlag(t *testing.T) {
	c, _ := NewCache("x", 4, 2)
	c.Insert(8, true, 50)
	hit, ready, wasPF := c.Lookup(8, true)
	if !hit || !wasPF || ready != 50 {
		t.Fatalf("prefetched lookup = %v,%d,%v", hit, ready, wasPF)
	}
	// Second demand touch is no longer "first use of prefetch".
	_, _, wasPF = c.Lookup(8, true)
	if wasPF {
		t.Fatal("prefetch flag must clear on first demand touch")
	}
}

func TestCacheUnusedPrefetchEviction(t *testing.T) {
	c, _ := NewCache("x", 1, 1)
	c.Insert(1, true, 0)
	_, _, unused := c.Insert(2, false, 0)
	if !unused {
		t.Fatal("evicting never-used prefetch must be flagged")
	}
	c.Insert(3, true, 0)
	c.Lookup(3, true)
	_, _, unused = c.Insert(4, false, 0)
	if unused {
		t.Fatal("used prefetch eviction must not be flagged")
	}
}

func TestCacheDuplicateInsert(t *testing.T) {
	c, _ := NewCache("x", 1, 2)
	c.Insert(5, true, 100)
	c.Insert(5, false, 40) // demand fill of same block
	hit, ready, wasPF := c.Lookup(5, true)
	if !hit || wasPF || ready != 40 {
		t.Fatalf("duplicate insert: hit=%v ready=%d wasPF=%v", hit, ready, wasPF)
	}
}

// Property: a cache never holds more than ways copies mapping to one set,
// and Contains agrees with Lookup.
func TestQuickCacheInvariants(t *testing.T) {
	f := func(blocks []uint64) bool {
		c, _ := NewCache("q", 8, 2)
		for _, b := range blocks {
			b %= 64
			if c.Contains(b) {
				hit, _, _ := c.Lookup(b, true)
				if !hit {
					return false
				}
			} else {
				c.Insert(b, false, 0)
				if !c.Contains(b) {
					return false
				}
			}
		}
		// Count valid lines per set.
		for s := 0; s < 8; s++ {
			n := 0
			for b := uint64(0); b < 64; b++ {
				if int(b)&7 == s && c.Contains(b) {
					n++
				}
			}
			if n > 2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDRAMQueueing(t *testing.T) {
	d := DRAM{Latency: 100, ServiceCycles: 16}
	r1 := d.Access(0)
	r2 := d.Access(0)
	if r1 != 100 {
		t.Fatalf("first access ready at %d, want 100", r1)
	}
	if r2 != 116 {
		t.Fatalf("second access must queue: ready %d, want 116", r2)
	}
	if d.QueueDelay != 16 {
		t.Fatalf("queue delay %d, want 16", d.QueueDelay)
	}
	// After the channel drains, no queueing.
	r3 := d.Access(1000)
	if r3 != 1100 {
		t.Fatalf("idle access ready %d, want 1100", r3)
	}
}

func TestDRAMDemandPriority(t *testing.T) {
	d := DRAM{Latency: 100, ServiceCycles: 16}
	// A burst of prefetches must not delay a demand request...
	for i := 0; i < 10; i++ {
		d.AccessPrefetch(0)
	}
	if r := d.Access(0); r != 100 {
		t.Fatalf("demand delayed by prefetch burst: ready %d, want 100", r)
	}
	// ...but prefetches queue behind demand traffic.
	d.Reset()
	d.Access(0) // demandFree=16, prefetchFree=16
	if r := d.AccessPrefetch(0); r != 116 {
		t.Fatalf("prefetch must yield to demand: ready %d, want 116", r)
	}
	// And prefetches queue behind each other.
	if r := d.AccessPrefetch(0); r != 132 {
		t.Fatalf("prefetch self-queueing: ready %d, want 132", r)
	}
	d.Reset()
	if d.Requests != 0 {
		t.Fatal("reset")
	}
}

// seqTrace builds a sequential one-core stream over n distinct blocks.
func seqTrace(n int) []trace.Access {
	out := make([]trace.Access, n)
	for i := range out {
		out[i] = trace.Access{Addr: uint64(i) * 64, PC: 0x400000, Gap: 2}
	}
	return out
}

// nextLine is a trivial test prefetcher.
type nextLine struct{ degree int }

func (nextLine) Name() string { return "nextline" }
func (p nextLine) Operate(a LLCAccess) []uint64 {
	var out []uint64
	for d := 1; d <= p.degree; d++ {
		out = append(out, a.Block+uint64(d))
	}
	return out
}

func TestEngineBasics(t *testing.T) {
	cfg := DefaultConfig()
	e, err := NewEngine(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	m := e.Run(seqTrace(10000))
	if m.Instructions == 0 || m.Cycles == 0 {
		t.Fatal("no work simulated")
	}
	if m.IPC() <= 0 || m.IPC() > float64(cfg.IssueWidth) {
		t.Fatalf("IPC %.3f out of range", m.IPC())
	}
	// A cold sequential stream of distinct blocks misses everywhere.
	if m.LLCMisses == 0 {
		t.Fatal("expected LLC misses on cold stream")
	}
	if m.Prefetcher != "none" {
		t.Fatalf("prefetcher name %q", m.Prefetcher)
	}
}

func TestEngineRejectsBadConfig(t *testing.T) {
	if _, err := NewEngine(Config{}, nil); err == nil {
		t.Fatal("zero cores must fail")
	}
	cfg := DefaultConfig()
	cfg.L1Sets = 3
	if _, err := NewEngine(cfg, nil); err == nil {
		t.Fatal("bad cache geometry must fail")
	}
}

func TestPrefetchingImprovesSequentialIPC(t *testing.T) {
	tr := seqTrace(50000)
	cfg := DefaultConfig()
	base, _ := NewEngine(cfg, nil)
	mb := base.Run(tr)
	pf, _ := NewEngine(cfg, nextLine{degree: 4})
	mp := pf.Run(tr)
	if mp.PrefetchesIssued == 0 {
		t.Fatal("no prefetches issued")
	}
	if mp.Accuracy() < 0.8 {
		t.Fatalf("next-line accuracy on sequential stream = %.3f, want high", mp.Accuracy())
	}
	if mp.Coverage() < 0.5 {
		t.Fatalf("coverage = %.3f, want substantial", mp.Coverage())
	}
	if mp.IPCImprovement(mb) <= 0 {
		t.Fatalf("IPC must improve: base %.4f, pf %.4f", mb.IPC(), mp.IPC())
	}
}

func TestUselessPrefetchesHurtAccuracy(t *testing.T) {
	// Random-stride stream: next-line prefetches are useless.
	rng := rand.New(rand.NewSource(5))
	var tr []trace.Access
	for i := 0; i < 20000; i++ {
		tr = append(tr, trace.Access{Addr: uint64(rng.Intn(1<<22)) * 64 * 7, Gap: 2})
	}
	e, _ := NewEngine(DefaultConfig(), nextLine{degree: 2})
	m := e.Run(tr)
	if m.Accuracy() > 0.2 {
		t.Fatalf("accuracy on random stream = %.3f, want low", m.Accuracy())
	}
	if m.PollutedEvictions == 0 {
		t.Fatal("useless prefetches should pollute")
	}
}

func TestCacheHierarchyFiltering(t *testing.T) {
	// Re-touching a tiny working set should be absorbed by L1 after the
	// first pass: LLC sees each block roughly once.
	var tr []trace.Access
	for pass := 0; pass < 10; pass++ {
		for b := 0; b < 64; b++ {
			tr = append(tr, trace.Access{Addr: uint64(b) * 64, Gap: 1})
		}
	}
	e, _ := NewEngine(DefaultConfig(), nil)
	m := e.Run(tr)
	if m.LLCMisses > 70 {
		t.Fatalf("LLC demand misses %d; L1 should filter re-touches", m.LLCMisses)
	}
	if m.L1Hits < 500 {
		t.Fatalf("L1 hits %d, want most accesses", m.L1Hits)
	}
}

func TestRecorderCapturesLLCStream(t *testing.T) {
	tr := seqTrace(5000)
	e, _ := NewEngine(DefaultConfig(), nil)
	var captured []trace.Access
	e.Recorder = func(a trace.Access, hit bool) { captured = append(captured, a) }
	m := e.Run(tr)
	if uint64(len(captured)) != m.LLCHits+m.LLCMisses {
		t.Fatalf("recorder saw %d accesses, LLC stats say %d", len(captured), m.LLCHits+m.LLCMisses)
	}
	if len(captured) == 0 {
		t.Fatal("recorder captured nothing")
	}
}

func TestPrefetchLatencyDelaysFills(t *testing.T) {
	tr := seqTrace(30000)
	cfg := DefaultConfig()
	fast, _ := NewEngine(cfg, nextLine{degree: 2})
	mf := fast.Run(tr)
	cfg.PrefetchLatency = 2000 // absurdly slow model
	slow, _ := NewEngine(cfg, nextLine{degree: 2})
	ms := slow.Run(tr)
	if ms.IPC() >= mf.IPC() {
		t.Fatalf("huge inference latency must hurt: fast %.4f slow %.4f", mf.IPC(), ms.IPC())
	}
}

type fixedLatencyPF struct{ nextLine }

func (fixedLatencyPF) InferenceLatencyCycles() uint64 { return 123 }

func TestInferenceLatencyInterface(t *testing.T) {
	e, err := NewEngine(DefaultConfig(), fixedLatencyPF{nextLine{degree: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if e.cfg.PrefetchLatency != 123 {
		t.Fatalf("engine did not adopt model latency: %d", e.cfg.PrefetchLatency)
	}
	cfg := DefaultConfig()
	cfg.PrefetchLatency = 7 // explicit config wins
	e2, _ := NewEngine(cfg, fixedLatencyPF{nextLine{degree: 1}})
	if e2.cfg.PrefetchLatency != 7 {
		t.Fatal("explicit PrefetchLatency must not be overridden")
	}
}

func TestPrefetchQueueBounded(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PrefetchQueueMax = 4
	e, _ := NewEngine(cfg, nextLine{degree: 16})
	m := e.Run(seqTrace(5000))
	if m.PrefetchesDropped == 0 {
		t.Fatal("tiny queue must drop prefetches")
	}
}

func TestMetricsMath(t *testing.T) {
	m := Metrics{Instructions: 1000, Cycles: 500, PrefetchesIssued: 10, UsefulPrefetches: 8, LLCMisses: 2}
	if m.IPC() != 2.0 {
		t.Fatal("IPC")
	}
	if m.Accuracy() != 0.8 {
		t.Fatal("Accuracy")
	}
	if m.Coverage() != 0.8 {
		t.Fatal("Coverage")
	}
	base := Metrics{Instructions: 1000, Cycles: 1000}
	if got := m.IPCImprovement(base); got != 1.0 {
		t.Fatalf("IPCImprovement = %v", got)
	}
	var zero Metrics
	if zero.IPC() != 0 || zero.Accuracy() != 0 || zero.Coverage() != 0 || zero.IPCImprovement(zero) != 0 {
		t.Fatal("zero metrics must not divide by zero")
	}
	if m.String() == "" {
		t.Fatal("String")
	}
}

// Property: IPC never exceeds issue width, and instruction count equals the
// trace's own sum, for arbitrary gap patterns.
func TestQuickEngineSanity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var tr []trace.Access
		want := uint64(0)
		for i := 0; i < 2000; i++ {
			g := uint8(rng.Intn(8))
			want += uint64(g) + 1
			tr = append(tr, trace.Access{
				Addr: uint64(rng.Intn(1<<20)) * 64,
				Core: uint8(rng.Intn(4)),
				Gap:  g,
			})
		}
		e, err := NewEngine(DefaultConfig(), nil)
		if err != nil {
			return false
		}
		m := e.Run(tr)
		return m.Instructions == want && m.IPC() <= 4.0+1e-9 && m.Cycles > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
