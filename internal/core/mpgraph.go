package core

import (
	"fmt"

	"mpgraph/internal/models"
	"mpgraph/internal/phasedet"
	"mpgraph/internal/sim"
	"mpgraph/internal/tensor"
	"mpgraph/internal/trace"
)

// Options configures the MPGraph prefetcher.
type Options struct {
	// SpatialDegree Ds: deltas issued per chain step (paper: 2).
	SpatialDegree int
	// TemporalDegree Dt: page-chain length (paper: 2). Total degree obeys
	// Eq. 11: Ds+1 <= Dp <= Ds*(Dt+1).
	TemporalDegree int
	// PBOTSize bounds the page base-offset table.
	PBOTSize int
	// ProbationWindow is how many accesses the controller scores the
	// candidate phase predictors after a detected transition before
	// switching (Section 4.4.1).
	ProbationWindow int
	// InferEvery throttles inference to every k-th LLC access.
	InferEvery int
	// LatencyCycles is the model inference latency reported to the
	// simulator (Fig. 14 studies 200 cycles).
	LatencyCycles uint64
	// OraclePhase bypasses the detector and uses the trace's ground-truth
	// phase label (ablation only).
	OraclePhase bool
	// DisableFastPath runs inference on the legacy allocating autograd
	// path instead of the per-instance arena. The legacy path toggles the
	// global grad flag, so it must not run concurrently with training —
	// it exists as the perf baseline the benchmarks compare against.
	DisableFastPath bool
	// Scheduler, when non-nil, routes every model call through an external
	// batching tier (one session per MPGraph instance — see
	// prefetch.BatchScheduler). Requires the fast path.
	Scheduler ModelScheduler
}

// ModelScheduler is the structural seam to an external batched-inference
// tier. core deliberately does not import the package providing it
// (prefetch.BatchSession satisfies this); calls block until the scheduler
// runs the fused round containing them, and returned slices stay valid until
// the session's next call.
type ModelScheduler interface {
	// Join registers the session with the scheduler's flush watermark;
	// Leave unregisters it so waiters never stall on a finished session.
	Join()
	Leave()
	// DeltaScores returns the delta model's raw score vector for s.
	DeltaScores(m models.DeltaModel, s *models.Sample) []float64
	// TopPages appends the page model's top-k pages for s to dst.
	TopPages(m models.PageModel, s *models.Sample, k int, dst []uint64) []uint64
}

// DefaultOptions mirrors Section 5.4.1: Ds=2, Dt=2, total degree 6.
func DefaultOptions() Options {
	return Options{
		SpatialDegree:   2,
		TemporalDegree:  2,
		PBOTSize:        4096,
		ProbationWindow: 48,
		InferEvery:      1,
	}
}

// MaxTotalDegree is the Eq. 11 upper bound Ds*(Dt+1).
func (o Options) MaxTotalDegree() int { return o.SpatialDegree * (o.TemporalDegree + 1) }

// MPGraph is the prefetcher: a phase detector feeding a controller that
// switches between phase-specific delta/page predictors and issues chain
// spatio-temporal prefetches.
type MPGraph struct {
	opt      Options
	historyT int

	detector phasedet.Detector
	deltas   []models.DeltaModel // one per phase
	pages    []models.PageModel

	hist  *models.History
	pbot  *PBOT
	phase int
	tick  int

	// Inference fast path: per-instance arena plus reusable scratch
	// buffers so a steady-state Operate call allocates nothing. ctx == nil
	// selects the legacy allocating path (Options.DisableFastPath).
	ctx         *tensor.Ctx
	sampScratch models.Sample
	tailScratch models.Sample
	out         []uint64
	deltaBuf    []uint64
	pageBuf     []uint64

	// Probation state: after a detected transition all candidate phases'
	// recent predictions are scored against arriving demand accesses.
	probing     bool
	probeLeft   int
	probeScores []int
	probeSets   []map[uint64]bool

	// Stats for introspection.
	Transitions int
	Switches    int

	// health holds the first model defect detected by score screening.
	health error
}

// New builds an MPGraph prefetcher from per-phase trained predictors and a
// phase-transition detector. len(deltas) must equal len(pages) and match the
// framework's phase count.
func New(opt Options, historyT int, detector phasedet.Detector, deltas []models.DeltaModel, pages []models.PageModel) (*MPGraph, error) {
	if len(deltas) == 0 || len(deltas) != len(pages) {
		return nil, fmt.Errorf("core: need matching per-phase delta/page models, got %d/%d", len(deltas), len(pages))
	}
	if opt.SpatialDegree <= 0 || opt.TemporalDegree < 0 {
		return nil, fmt.Errorf("core: bad degrees Ds=%d Dt=%d", opt.SpatialDegree, opt.TemporalDegree)
	}
	if !opt.OraclePhase && detector == nil {
		return nil, fmt.Errorf("core: detector required unless OraclePhase")
	}
	if opt.Scheduler != nil && opt.DisableFastPath {
		return nil, fmt.Errorf("core: Scheduler requires the fast path (DisableFastPath must be false)")
	}
	if opt.InferEvery <= 0 {
		opt.InferEvery = 1
	}
	if opt.ProbationWindow <= 0 {
		opt.ProbationWindow = 48
	}
	m := &MPGraph{
		opt:      opt,
		historyT: historyT,
		detector: detector,
		deltas:   deltas,
		pages:    pages,
		hist:     models.NewHistory(historyT),
		pbot:     NewPBOT(opt.PBOTSize),
	}
	if !opt.DisableFastPath {
		m.ctx = tensor.NewCtx()
	}
	return m, nil
}

// Name implements sim.Prefetcher.
func (m *MPGraph) Name() string { return "mpgraph" }

// InferenceLatencyCycles implements sim.InferenceLatency.
func (m *MPGraph) InferenceLatencyCycles() uint64 { return m.opt.LatencyCycles }

// Phase exposes the currently selected phase (tests, case studies).
func (m *MPGraph) Phase() int { return m.phase }

// Health implements sim.HealthReporter: nil until score screening detects a
// non-finite model output, then the first such defect.
func (m *MPGraph) Health() error { return m.health }

// JoinBatch registers this instance's scheduler session with the batch flush
// watermark (no-op without a scheduler).
func (m *MPGraph) JoinBatch() {
	if m.opt.Scheduler != nil {
		m.opt.Scheduler.Join()
	}
}

// LeaveBatch unregisters the scheduler session (no-op without a scheduler).
func (m *MPGraph) LeaveBatch() {
	if m.opt.Scheduler != nil {
		m.opt.Scheduler.Leave()
	}
}

// deltaTargetsAppend is the one delta decode cstp and probation use: through
// the batch scheduler when one is attached, the in-process path otherwise.
// Either way the scores decode via models.AppendDeltaTargets on m.ctx.
func (m *MPGraph) deltaTargetsAppend(dm models.DeltaModel, s *models.Sample, base uint64, k int, dst []uint64) ([]uint64, error) {
	if m.opt.Scheduler != nil {
		return models.AppendDeltaTargets(m.ctx, m.opt.Scheduler.DeltaScores(dm, s), base, k, dst)
	}
	return topDeltaBlocksAppend(m.ctx, dm, s, base, k, dst)
}

// topPages is the page-model counterpart of deltaTargetsAppend.
func (m *MPGraph) topPages(pm models.PageModel, s *models.Sample, k int, dst []uint64) []uint64 {
	if m.opt.Scheduler != nil {
		return m.opt.Scheduler.TopPages(pm, s, k, dst)
	}
	return models.TopPagesWith(m.ctx, pm, s, k, dst)
}

func (m *MPGraph) recordHealth(err error) {
	if m.health == nil {
		m.health = err
	}
}

// Operate implements sim.Prefetcher: the CSTP strategy of Fig. 8.
func (m *MPGraph) Operate(acc sim.LLCAccess) []uint64 {
	// Probation scoring: does any candidate phase predict this access?
	if m.probing {
		m.scoreProbe(acc.Block)
	}

	m.pbot.Update(acc.Block, acc.PC)
	m.hist.Push(acc.Block, acc.PC)

	// Phase tracking.
	if m.opt.OraclePhase {
		if int(acc.Phase) != m.phase {
			m.phase = int(acc.Phase)
			m.Transitions++
		}
	} else if m.detector.Observe(float64(acc.PC)) {
		m.Transitions++
		m.beginProbation()
	}

	m.tick++
	if !m.hist.Warm() || m.tick%m.opt.InferEvery != 0 {
		return nil
	}

	if m.ctx == nil {
		// Legacy path: graph construction suppressed globally (serial use
		// only — see Options.DisableFastPath).
		restore := tensor.SetGradEnabled(false)
		defer tensor.SetGradEnabled(restore)
		if m.probing {
			m.feedProbe()
		}
		return m.cstp(acc.Block)
	}
	defer m.ctx.Reset()
	if m.probing {
		m.feedProbe()
	}
	return m.cstp(acc.Block)
}

// cstp performs chain spatio-temporal prefetching from the current block.
func (m *MPGraph) cstp(block uint64) []uint64 {
	maxDegree := m.opt.MaxTotalDegree()
	out := m.out[:0]
	if m.ctx == nil {
		out = make([]uint64, 0, maxDegree)
	}

	var sample *models.Sample
	if m.ctx == nil {
		sample = m.hist.Sample(m.phase)
	} else {
		sample = m.hist.SampleInto(&m.sampScratch, m.phase)
	}
	delta := m.deltas[m.phase%len(m.deltas)]
	page := m.pages[m.phase%len(m.pages)]

	// Step 0: spatial deltas at the current block.
	var err error
	m.deltaBuf, err = m.deltaTargetsAppend(delta, sample, block, m.opt.SpatialDegree, m.deltaBuf[:0])
	if err != nil {
		m.recordHealth(err)
	}
	for _, b := range m.deltaBuf {
		out = addUnique(out, b, maxDegree)
	}

	// Temporal chain: predicted page -> PBOT offset -> further spatial and
	// temporal inference, until the degree budget, a missing PBOT entry, or
	// the temporal depth runs out.
	cur := sample
	for step := 0; step < m.opt.TemporalDegree; step++ {
		m.pageBuf = m.topPages(page, cur, 1, m.pageBuf[:0])
		if len(m.pageBuf) == 0 {
			break
		}
		next := m.pageBuf[0]
		entry, ok := m.pbot.Lookup(next)
		if !ok {
			break
		}
		base := trace.BlockOfPageOffset(next, entry.Offset)
		out = addUnique(out, base, maxDegree)
		if m.ctx == nil {
			cur = m.hist.SampleWithTail(m.phase, base, entry.PC)
		} else {
			cur = m.hist.SampleWithTailInto(&m.tailScratch, m.phase, base, entry.PC)
		}
		m.deltaBuf, err = m.deltaTargetsAppend(delta, cur, base, m.opt.SpatialDegree, m.deltaBuf[:0])
		if err != nil {
			m.recordHealth(err)
		}
		for _, b := range m.deltaBuf {
			if len(out) >= maxDegree {
				break
			}
			out = addUnique(out, b, maxDegree)
		}
		if len(out) >= maxDegree {
			break
		}
	}
	if m.ctx != nil {
		m.out = out
	}
	return out
}

// addUnique appends b to out unless it is already present or the degree
// budget is spent — the dedupe the legacy path kept in a map, linearised
// because maxDegree is at most Ds·(Dt+1) (6 at paper settings).
func addUnique(out []uint64, b uint64, maxDegree int) []uint64 {
	if len(out) >= maxDegree {
		return out
	}
	for _, x := range out {
		if x == b {
			return out
		}
	}
	return append(out, b)
}

// beginProbation activates all phase predictors in parallel for scoring
// (Section 4.4.1).
func (m *MPGraph) beginProbation() {
	m.probing = true
	m.probeLeft = m.opt.ProbationWindow
	m.probeScores = make([]int, len(m.deltas))
	m.probeSets = make([]map[uint64]bool, len(m.deltas))
	for i := range m.probeSets {
		m.probeSets[i] = map[uint64]bool{}
	}
}

// feedProbe lets every candidate phase predict from the current history so
// later demand accesses can score them.
func (m *MPGraph) feedProbe() {
	if !m.hist.Warm() {
		return
	}
	base := m.hist.CurrentBlock()
	for p, dm := range m.deltas {
		var s *models.Sample
		if m.ctx == nil {
			s = m.hist.Sample(p)
		} else {
			s = m.hist.SampleInto(&m.sampScratch, p)
		}
		var err error
		m.deltaBuf, err = m.deltaTargetsAppend(dm, s, base, m.opt.SpatialDegree, m.deltaBuf[:0])
		if err != nil {
			m.recordHealth(err)
		}
		for _, b := range m.deltaBuf {
			m.probeSets[p][b] = true
		}
	}
}

// scoreProbe credits phases whose predictions cover the arriving access and
// commits the winner when the window closes.
func (m *MPGraph) scoreProbe(block uint64) {
	for p := range m.probeSets {
		if m.probeSets[p][block] {
			m.probeScores[p]++
		}
	}
	m.probeLeft--
	if m.probeLeft > 0 {
		return
	}
	best := 0
	for p, s := range m.probeScores {
		if s > m.probeScores[best] {
			best = p
		}
	}
	if best != m.phase {
		m.Switches++
	}
	m.phase = best
	m.probing = false
}
