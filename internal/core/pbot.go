// Package core implements MPGraph, the paper's primary contribution: an
// LLC prefetcher for graph analytics driven by a phase-transition detector,
// phase-specific multi-modality predictors, and the Chain Spatio-Temporal
// Prefetching (CSTP) controller with its Page Base-Offset Table (PBOT).
package core

import "mpgraph/internal/trace"

// PBOTEntry is the state CSTP keeps per page: the most recent block offset
// and the PC that accessed it (Section 4.4.2).
type PBOTEntry struct {
	Offset uint64
	PC     uint64
}

// PBOT is the page base-offset table: a bounded FIFO-evicted map from page
// to its latest (offset, PC).
type PBOT struct {
	max     int
	entries map[uint64]PBOTEntry
	fifo    []uint64
}

// NewPBOT builds a table bounded to max pages.
func NewPBOT(max int) *PBOT {
	if max <= 0 {
		max = 4096
	}
	return &PBOT{max: max, entries: make(map[uint64]PBOTEntry)}
}

// Update records the latest offset and PC for the page containing block.
func (p *PBOT) Update(block, pc uint64) {
	page := trace.PageOfBlock(block)
	if _, ok := p.entries[page]; !ok {
		if len(p.fifo) >= p.max {
			delete(p.entries, p.fifo[0])
			p.fifo = p.fifo[1:]
		}
		p.fifo = append(p.fifo, page)
	}
	p.entries[page] = PBOTEntry{Offset: trace.BlockOffset(block), PC: pc}
}

// Lookup returns the entry for page.
func (p *PBOT) Lookup(page uint64) (PBOTEntry, bool) {
	e, ok := p.entries[page]
	return e, ok
}

// Len reports the number of tracked pages.
func (p *PBOT) Len() int { return len(p.entries) }
