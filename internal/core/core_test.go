package core

import (
	"testing"
	"testing/quick"

	"mpgraph/internal/models"
	"mpgraph/internal/phasedet"
	"mpgraph/internal/sim"
	"mpgraph/internal/tensor"
	"mpgraph/internal/trace"
)

// fakeDelta always predicts a fixed delta with certainty.
type fakeDelta struct {
	delta   int64
	classes int
}

func (f fakeDelta) DeltaLoss(*models.Sample) *tensor.Tensor { panic("inference only") }
func (f fakeDelta) Params() []*tensor.Tensor                { return nil }
func (f fakeDelta) DeltaScores(*models.Sample) []float64 {
	out := make([]float64, f.classes)
	half := f.classes / 2
	var cls int
	if f.delta < 0 {
		cls = int(f.delta) + half
	} else {
		cls = int(f.delta) + half - 1
	}
	out[cls] = 1
	return out
}

// fakePage always predicts a fixed page sequence.
type fakePage struct{ pages []uint64 }

func (f fakePage) PageLoss(*models.Sample) *tensor.Tensor { panic("inference only") }
func (f fakePage) Params() []*tensor.Tensor               { return nil }
func (f fakePage) TopPages(_ *models.Sample, k int) []uint64 {
	if k > len(f.pages) {
		k = len(f.pages)
	}
	return f.pages[:k]
}

// silentDetector never fires.
type silentDetector struct{}

func (silentDetector) Name() string         { return "silent" }
func (silentDetector) Observe(float64) bool { return false }
func (silentDetector) Reset()               {}

// scriptedDetector fires at a fixed observation count.
type scriptedDetector struct {
	at, seen int
}

func (d *scriptedDetector) Name() string { return "scripted" }
func (d *scriptedDetector) Observe(float64) bool {
	d.seen++
	return d.seen == d.at
}
func (d *scriptedDetector) Reset() { d.seen = 0 }

func TestPBOT(t *testing.T) {
	p := NewPBOT(2)
	p.Update(trace.BlockOfPageOffset(10, 5), 0xA)
	p.Update(trace.BlockOfPageOffset(11, 7), 0xB)
	e, ok := p.Lookup(10)
	if !ok || e.Offset != 5 || e.PC != 0xA {
		t.Fatalf("entry %+v", e)
	}
	// Updating an existing page must not evict.
	p.Update(trace.BlockOfPageOffset(10, 9), 0xC)
	if p.Len() != 2 {
		t.Fatal("update must not grow")
	}
	e, _ = p.Lookup(10)
	if e.Offset != 9 || e.PC != 0xC {
		t.Fatal("update must overwrite")
	}
	// Third page evicts the FIFO head (page 10).
	p.Update(trace.BlockOfPageOffset(12, 1), 0xD)
	if _, ok := p.Lookup(10); ok {
		t.Fatal("page 10 should be evicted")
	}
	if _, ok := p.Lookup(11); !ok {
		t.Fatal("page 11 should survive")
	}
	if NewPBOT(0).max != 4096 {
		t.Fatal("default size")
	}
}

func newTestMPGraph(t *testing.T, opt Options, det interface {
	Name() string
	Observe(float64) bool
	Reset()
}, deltas []models.DeltaModel, pages []models.PageModel) *MPGraph {
	t.Helper()
	m, err := New(opt, 4, det, deltas, pages)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewValidation(t *testing.T) {
	d := []models.DeltaModel{fakeDelta{1, 8}}
	p := []models.PageModel{fakePage{}}
	if _, err := New(DefaultOptions(), 4, silentDetector{}, nil, nil); err == nil {
		t.Fatal("empty models must fail")
	}
	if _, err := New(DefaultOptions(), 4, silentDetector{}, d, nil); err == nil {
		t.Fatal("mismatched models must fail")
	}
	bad := DefaultOptions()
	bad.SpatialDegree = 0
	if _, err := New(bad, 4, silentDetector{}, d, p); err == nil {
		t.Fatal("zero spatial degree must fail")
	}
	if _, err := New(DefaultOptions(), 4, nil, d, p); err == nil {
		t.Fatal("nil detector without oracle must fail")
	}
	oracle := DefaultOptions()
	oracle.OraclePhase = true
	if _, err := New(oracle, 4, nil, d, p); err != nil {
		t.Fatalf("oracle without detector should work: %v", err)
	}
}

func TestCSTPChain(t *testing.T) {
	opt := DefaultOptions()
	opt.SpatialDegree = 2
	opt.TemporalDegree = 2
	deltas := []models.DeltaModel{fakeDelta{1, 126}}
	pages := []models.PageModel{fakePage{pages: []uint64{500}}}
	m := newTestMPGraph(t, opt, silentDetector{}, deltas, pages)

	// Prime PBOT with page 500 at offset 3 and warm the history.
	m.Operate(sim.LLCAccess{Block: trace.BlockOfPageOffset(500, 3), PC: 1})
	var out []uint64
	for i := 0; i < 6; i++ {
		out = m.Operate(sim.LLCAccess{Block: trace.BlockOfPageOffset(100, uint64(i)), PC: 1})
	}
	if len(out) == 0 {
		t.Fatal("no prefetches")
	}
	if len(out) > opt.MaxTotalDegree() {
		t.Fatalf("degree %d exceeds Eq.11 bound %d", len(out), opt.MaxTotalDegree())
	}
	// The chain must include page 500's base block (offset 3, as updated by
	// later PBOT writes it may move — it was only written once).
	base := trace.BlockOfPageOffset(500, 3)
	foundChain := false
	for _, b := range out {
		if trace.PageOfBlock(b) == 500 {
			foundChain = true
		}
	}
	if !foundChain {
		t.Fatalf("chain did not reach predicted page: %v (want page of %d)", out, base)
	}
	// Spatial prediction at current block (+1) must be present.
	cur := trace.BlockOfPageOffset(100, 5)
	foundSpatial := false
	for _, b := range out {
		if b == cur+1 {
			foundSpatial = true
		}
	}
	if !foundSpatial {
		t.Fatalf("missing spatial prefetch %d in %v", cur+1, out)
	}
}

func TestCSTPChainStopsWithoutPBOT(t *testing.T) {
	opt := DefaultOptions()
	deltas := []models.DeltaModel{fakeDelta{1, 126}}
	pages := []models.PageModel{fakePage{pages: []uint64{999}}} // never accessed
	m := newTestMPGraph(t, opt, silentDetector{}, deltas, pages)
	var out []uint64
	for i := 0; i < 6; i++ {
		out = m.Operate(sim.LLCAccess{Block: uint64(6400 + i), PC: 1})
	}
	// Only the spatial step should fire: page 999 is not in PBOT.
	for _, b := range out {
		if trace.PageOfBlock(b) == 999 {
			t.Fatalf("chain used missing PBOT entry: %v", out)
		}
	}
	if len(out) == 0 || len(out) > opt.SpatialDegree {
		t.Fatalf("want only spatial prefetches, got %v", out)
	}
}

// Property (Eq. 11): for any degree settings, the issued degree never
// exceeds Ds*(Dt+1).
func TestQuickDegreeBound(t *testing.T) {
	f := func(rawDs, rawDt uint8) bool {
		ds := int(rawDs)%4 + 1
		dt := int(rawDt) % 4
		opt := DefaultOptions()
		opt.SpatialDegree, opt.TemporalDegree = ds, dt
		deltas := []models.DeltaModel{fakeDelta{1, 126}}
		pages := []models.PageModel{fakePage{pages: []uint64{77}}}
		m, err := New(opt, 4, silentDetector{}, deltas, pages)
		if err != nil {
			return false
		}
		m.Operate(sim.LLCAccess{Block: trace.BlockOfPageOffset(77, 0), PC: 1})
		var out []uint64
		for i := 0; i < 8; i++ {
			out = m.Operate(sim.LLCAccess{Block: trace.BlockOfPageOffset(33, uint64(i)), PC: 1})
		}
		return len(out) <= ds*(dt+1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestOraclePhaseSwitching(t *testing.T) {
	opt := DefaultOptions()
	opt.OraclePhase = true
	deltas := []models.DeltaModel{fakeDelta{1, 126}, fakeDelta{2, 126}}
	pages := []models.PageModel{fakePage{}, fakePage{}}
	m := newTestMPGraph(t, opt, nil, deltas, pages)
	for i := 0; i < 10; i++ {
		m.Operate(sim.LLCAccess{Block: uint64(100 + i), PC: 1, Phase: 0})
	}
	if m.Phase() != 0 {
		t.Fatal("phase 0 expected")
	}
	var out []uint64
	for i := 0; i < 10; i++ {
		out = m.Operate(sim.LLCAccess{Block: uint64(200 + i), PC: 1, Phase: 1})
	}
	if m.Phase() != 1 || m.Transitions != 1 {
		t.Fatalf("phase %d transitions %d", m.Phase(), m.Transitions)
	}
	// Phase 1 model predicts +2.
	cur := uint64(209)
	found := false
	for _, b := range out {
		if b == cur+2 {
			found = true
		}
	}
	if !found {
		t.Fatalf("phase-1 model (+2) not used: %v", out)
	}
}

// After a detected transition, probation must pick the phase whose
// predictor matches the new access pattern.
func TestProbationSelectsBestPhase(t *testing.T) {
	opt := DefaultOptions()
	opt.ProbationWindow = 20
	det := &scriptedDetector{at: 30}
	deltas := []models.DeltaModel{fakeDelta{5, 126}, fakeDelta{1, 126}}
	pages := []models.PageModel{fakePage{}, fakePage{}}
	m := newTestMPGraph(t, opt, det, deltas, pages)

	// Phase 0 regime: +5 strides (phase 0's model matches).
	b := uint64(1 << 16)
	for i := 0; i < 30; i++ {
		m.Operate(sim.LLCAccess{Block: b, PC: 1})
		b += 5
	}
	// Detector fires at access 30; the stream switches to +1 strides,
	// matching phase 1's model.
	for i := 0; i < 40; i++ {
		m.Operate(sim.LLCAccess{Block: b, PC: 1})
		b++
	}
	if m.Transitions != 1 {
		t.Fatalf("transitions %d", m.Transitions)
	}
	if m.Phase() != 1 {
		t.Fatalf("probation picked phase %d, want 1 (scores)", m.Phase())
	}
	if m.Switches != 1 {
		t.Fatalf("switches %d", m.Switches)
	}
}

func TestMPGraphName(t *testing.T) {
	opt := DefaultOptions()
	opt.LatencyCycles = 123
	m := newTestMPGraph(t, opt, silentDetector{},
		[]models.DeltaModel{fakeDelta{1, 126}}, []models.PageModel{fakePage{}})
	if m.Name() != "mpgraph" {
		t.Fatal("name")
	}
	if m.InferenceLatencyCycles() != 123 {
		t.Fatal("latency")
	}
	var _ sim.Prefetcher = m
	var _ sim.InferenceLatency = m
}

func TestPerCoreValidation(t *testing.T) {
	d := []models.DeltaModel{fakeDelta{1, 126}}
	p := []models.PageModel{fakePage{}}
	mk := func() phasedet.Detector { return silentDetector{} }
	if _, err := NewPerCore(DefaultOptions(), 4, 0, mk, d, p); err == nil {
		t.Fatal("zero cores must fail")
	}
	if _, err := NewPerCore(DefaultOptions(), 4, 2, nil, d, p); err == nil {
		t.Fatal("nil factory must fail")
	}
	if _, err := NewPerCore(DefaultOptions(), 4, 2, mk, nil, nil); err == nil {
		t.Fatal("empty models must fail")
	}
	bad := DefaultOptions()
	bad.SpatialDegree = 0
	if _, err := NewPerCore(bad, 4, 2, mk, d, p); err == nil {
		t.Fatal("bad degrees must fail")
	}
	m, err := NewPerCore(DefaultOptions(), 4, 2, mk, d, p)
	if err != nil {
		t.Fatal(err)
	}
	if m.Name() != "mpgraph-percore" {
		t.Fatal("name")
	}
	var _ sim.Prefetcher = m
}

// Each core's detector advances that core's phase independently — the
// asynchronous-framework extension from the paper's conclusion.
func TestPerCoreIndependentPhases(t *testing.T) {
	opt := DefaultOptions()
	deltas := []models.DeltaModel{fakeDelta{1, 126}, fakeDelta{2, 126}}
	pages := []models.PageModel{fakePage{}, fakePage{}}
	// Core 0's detector fires at its 5th observation; core 1's never does.
	made := 0
	mk := func() phasedet.Detector {
		made++
		if made == 1 {
			return &scriptedDetector{at: 5}
		}
		return silentDetector{}
	}
	m, err := NewPerCore(opt, 4, 2, mk, deltas, pages)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		m.Operate(sim.LLCAccess{Block: uint64(100 + i), PC: 1, Core: 0})
		m.Operate(sim.LLCAccess{Block: uint64(500 + i), PC: 1, Core: 1})
	}
	if m.CorePhase(0) != 1 {
		t.Fatalf("core 0 phase = %d, want 1 after detection", m.CorePhase(0))
	}
	if m.CorePhase(1) != 0 {
		t.Fatalf("core 1 phase = %d, want 0", m.CorePhase(1))
	}
	if m.Transitions != 1 {
		t.Fatalf("transitions %d", m.Transitions)
	}
	// Core 0 now predicts with the phase-1 model (+2), core 1 with phase-0 (+1).
	out0 := m.Operate(sim.LLCAccess{Block: 200, PC: 1, Core: 0})
	found := false
	for _, b := range out0 {
		if b == 202 {
			found = true
		}
	}
	if !found {
		t.Fatalf("core 0 should use +2 model: %v", out0)
	}
	out1 := m.Operate(sim.LLCAccess{Block: 600, PC: 1, Core: 1})
	found = false
	for _, b := range out1 {
		if b == 601 {
			found = true
		}
	}
	if !found {
		t.Fatalf("core 1 should use +1 model: %v", out1)
	}
}

func TestPerCoreChainAndDegreeBound(t *testing.T) {
	opt := DefaultOptions()
	opt.LatencyCycles = 55
	deltas := []models.DeltaModel{fakeDelta{1, 126}}
	pages := []models.PageModel{fakePage{pages: []uint64{321}}}
	m, err := NewPerCore(opt, 4, 2, func() phasedet.Detector { return silentDetector{} }, deltas, pages)
	if err != nil {
		t.Fatal(err)
	}
	if m.InferenceLatencyCycles() != 55 {
		t.Fatal("latency")
	}
	m.Operate(sim.LLCAccess{Block: trace.BlockOfPageOffset(321, 7), PC: 9, Core: 0})
	var out []uint64
	for i := 0; i < 6; i++ {
		out = m.Operate(sim.LLCAccess{Block: trace.BlockOfPageOffset(50, uint64(i)), PC: 9, Core: 0})
	}
	if len(out) == 0 || len(out) > opt.MaxTotalDegree() {
		t.Fatalf("degree bound violated: %d not in (0,%d]", len(out), opt.MaxTotalDegree())
	}
	reached := false
	for _, b := range out {
		if trace.PageOfBlock(b) == 321 {
			reached = true
		}
	}
	if !reached {
		t.Fatalf("chain should reach page 321 via shared PBOT: %v", out)
	}
}
