package core

import (
	"fmt"

	"mpgraph/internal/models"
	"mpgraph/internal/phasedet"
	"mpgraph/internal/sim"
	"mpgraph/internal/tensor"
	"mpgraph/internal/trace"
)

// PerCoreMPGraph implements the extension sketched in the paper's
// conclusion: "graph frameworks using asynchronous execution allow processes
// to go beyond the current phase without a barrier ... the phase transition
// detector in MPGraph can be extended to each thread". Each core gets its
// own phase detector and history window, so cores may run different
// phase-specific predictors simultaneously; the PBOT stays shared because
// the LLC (and therefore the page state) is shared.
type PerCoreMPGraph struct {
	opt      Options
	historyT int

	detectors []phasedet.Detector
	deltas    []models.DeltaModel
	pages     []models.PageModel

	hists  []*models.History
	phases []int
	ticks  []int
	pbot   *PBOT

	// Inference fast path (see MPGraph): one arena per instance — Operate
	// is called serially by the engine regardless of which core the access
	// came from, so the scratch buffers are shared across cores.
	ctx         *tensor.Ctx
	sampScratch models.Sample
	tailScratch models.Sample
	out         []uint64
	deltaBuf    []uint64
	pageBuf     []uint64

	// Transitions counts detector firings summed over cores.
	Transitions int

	// health holds the first model defect detected by score screening.
	health error
}

// NewPerCore builds the per-core variant. makeDetector is called once per
// core so each core owns independent detector state.
func NewPerCore(opt Options, historyT, cores int, makeDetector func() phasedet.Detector,
	deltas []models.DeltaModel, pages []models.PageModel) (*PerCoreMPGraph, error) {
	if cores <= 0 {
		return nil, fmt.Errorf("core: cores must be positive")
	}
	if len(deltas) == 0 || len(deltas) != len(pages) {
		return nil, fmt.Errorf("core: need matching per-phase delta/page models, got %d/%d", len(deltas), len(pages))
	}
	if opt.SpatialDegree <= 0 || opt.TemporalDegree < 0 {
		return nil, fmt.Errorf("core: bad degrees Ds=%d Dt=%d", opt.SpatialDegree, opt.TemporalDegree)
	}
	if makeDetector == nil {
		return nil, fmt.Errorf("core: detector factory required")
	}
	if opt.InferEvery <= 0 {
		opt.InferEvery = 1
	}
	m := &PerCoreMPGraph{
		opt:      opt,
		historyT: historyT,
		deltas:   deltas,
		pages:    pages,
		pbot:     NewPBOT(opt.PBOTSize),
		phases:   make([]int, cores),
		ticks:    make([]int, cores),
	}
	for c := 0; c < cores; c++ {
		m.detectors = append(m.detectors, makeDetector())
		m.hists = append(m.hists, models.NewHistory(historyT))
	}
	if !opt.DisableFastPath {
		m.ctx = tensor.NewCtx()
	}
	return m, nil
}

// Name implements sim.Prefetcher.
func (m *PerCoreMPGraph) Name() string { return "mpgraph-percore" }

// InferenceLatencyCycles implements sim.InferenceLatency.
func (m *PerCoreMPGraph) InferenceLatencyCycles() uint64 { return m.opt.LatencyCycles }

// CorePhase exposes core c's current phase (tests).
func (m *PerCoreMPGraph) CorePhase(c int) int { return m.phases[c%len(m.phases)] }

// Health implements sim.HealthReporter: nil until score screening detects a
// non-finite model output, then the first such defect.
func (m *PerCoreMPGraph) Health() error { return m.health }

func (m *PerCoreMPGraph) recordHealth(err error) {
	if m.health == nil {
		m.health = err
	}
}

// Operate implements sim.Prefetcher: per-core phase tracking with the same
// CSTP strategy per core stream.
func (m *PerCoreMPGraph) Operate(acc sim.LLCAccess) []uint64 {
	c := int(acc.Core) % len(m.hists)
	m.pbot.Update(acc.Block, acc.PC)
	m.hists[c].Push(acc.Block, acc.PC)

	if m.detectors[c].Observe(float64(acc.PC)) {
		m.Transitions++
		// Asynchronous phase advance: without a barrier to resynchronise,
		// the core cycles to the next phase model.
		m.phases[c] = (m.phases[c] + 1) % len(m.deltas)
	}

	m.ticks[c]++
	if !m.hists[c].Warm() || m.ticks[c]%m.opt.InferEvery != 0 {
		return nil
	}
	return m.cstp(c, acc.Block)
}

func (m *PerCoreMPGraph) cstp(c int, block uint64) []uint64 {
	phase := m.phases[c]
	hist := m.hists[c]
	maxDegree := m.opt.MaxTotalDegree()
	out := m.out[:0]
	if m.ctx == nil {
		out = make([]uint64, 0, maxDegree)
	}
	delta := m.deltas[phase%len(m.deltas)]
	page := m.pages[phase%len(m.pages)]
	var sample *models.Sample
	if m.ctx == nil {
		sample = hist.Sample(phase)
	} else {
		defer m.ctx.Reset()
		sample = hist.SampleInto(&m.sampScratch, phase)
	}
	var err error
	m.deltaBuf, err = topDeltaBlocksAppend(m.ctx, delta, sample, block, m.opt.SpatialDegree, m.deltaBuf[:0])
	if err != nil {
		m.recordHealth(err)
	}
	for _, b := range m.deltaBuf {
		out = addUnique(out, b, maxDegree)
	}
	cur := sample
	for step := 0; step < m.opt.TemporalDegree; step++ {
		m.pageBuf = models.TopPagesWith(m.ctx, page, cur, 1, m.pageBuf[:0])
		if len(m.pageBuf) == 0 {
			break
		}
		entry, ok := m.pbot.Lookup(m.pageBuf[0])
		if !ok {
			break
		}
		base := trace.BlockOfPageOffset(m.pageBuf[0], entry.Offset)
		out = addUnique(out, base, maxDegree)
		if m.ctx == nil {
			cur = hist.SampleWithTail(phase, base, entry.PC)
		} else {
			cur = hist.SampleWithTailInto(&m.tailScratch, phase, base, entry.PC)
		}
		m.deltaBuf, err = topDeltaBlocksAppend(m.ctx, delta, cur, base, m.opt.SpatialDegree, m.deltaBuf[:0])
		if err != nil {
			m.recordHealth(err)
		}
		for _, b := range m.deltaBuf {
			if len(out) >= maxDegree {
				break
			}
			out = addUnique(out, b, maxDegree)
		}
		if len(out) >= maxDegree {
			break
		}
	}
	if m.ctx != nil {
		m.out = out
	}
	return out
}

// topDeltaBlocksAppend is the shared top-k delta decode (also used by
// MPGraph): it appends the decoded block targets to dst, drawing every
// intermediate from the ctx arena when one is supplied. Scores are screened
// for non-finite values first; on a screening failure dst is returned
// unmodified alongside the error so callers can record the health defect
// instead of issuing prefetches ranked by NaN.
func topDeltaBlocksAppend(c *tensor.Ctx, model models.DeltaModel, s *models.Sample, base uint64, k int, dst []uint64) ([]uint64, error) {
	return models.AppendDeltaTargets(c, models.DeltaScoresWith(c, model, s), base, k, dst)
}
