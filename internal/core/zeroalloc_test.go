package core

import (
	"testing"

	"mpgraph/internal/models"
	"mpgraph/internal/sim"
)

// newAMMAMPGraph builds an MPGraph over untrained (random-init) AMMA
// models: weight values are irrelevant to allocation and timing behavior,
// so training is skipped.
func newAMMAMPGraph(tb testing.TB, opt Options) *MPGraph {
	tb.Helper()
	cfg := models.SmallConfig()
	var pcVals, pageVals []uint64
	for i := 0; i < 32; i++ {
		pcVals = append(pcVals, 0x400000+0x40*uint64(i))
		pageVals = append(pageVals, uint64(1<<14+i))
	}
	pcs := models.BuildVocab(pcVals, cfg.PCVocab)
	pages := models.BuildVocab(pageVals, cfg.PageVocab)
	delta := models.NewAMMADelta(cfg, pcs, 0, 1)
	page := models.NewAMMAPage(cfg, pages, pcs, 0, 2)
	m, err := New(opt, cfg.HistoryT, silentDetector{}, []models.DeltaModel{delta}, []models.PageModel{page})
	if err != nil {
		tb.Fatal(err)
	}
	return m
}

// mpgraphStepper drives Operate with a 64-block cyclic pattern confined to
// one page, so the PBOT and history stay in steady state.
func mpgraphStepper(m *MPGraph) func() {
	i := 0
	return func() {
		i++
		m.Operate(sim.LLCAccess{Block: uint64(1<<20 + i%64), PC: 0x400000 + 0x40*uint64(i%3)})
	}
}

func TestMPGraphOperateZeroAlloc(t *testing.T) {
	m := newAMMAMPGraph(t, DefaultOptions())
	step := mpgraphStepper(m)
	for n := 0; n < 96; n++ {
		step()
	}
	if allocs := testing.AllocsPerRun(64, step); allocs != 0 {
		t.Fatalf("steady-state AMMA MPGraph.Operate allocates %.1f/op, want 0", allocs)
	}
}

func benchMPGraphOperate(b *testing.B, opt Options) {
	m := newAMMAMPGraph(b, opt)
	step := mpgraphStepper(m)
	for n := 0; n < 96; n++ {
		step()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		step()
	}
}

func BenchmarkOperateMPGraphAMMA(b *testing.B) {
	benchMPGraphOperate(b, DefaultOptions())
}

func BenchmarkOperateMPGraphAMMALegacy(b *testing.B) {
	opt := DefaultOptions()
	opt.DisableFastPath = true
	benchMPGraphOperate(b, opt)
}
