package core

import (
	"testing"

	"mpgraph/internal/models"
	"mpgraph/internal/sim"
)

// newAMMAMPGraph builds an MPGraph over untrained (random-init) AMMA
// models: weight values are irrelevant to allocation and timing behavior,
// so training is skipped.
func newAMMAMPGraph(tb testing.TB, opt Options) *MPGraph {
	tb.Helper()
	cfg := models.SmallConfig()
	var pcVals, pageVals []uint64
	for i := 0; i < 32; i++ {
		pcVals = append(pcVals, 0x400000+0x40*uint64(i))
		pageVals = append(pageVals, uint64(1<<14+i))
	}
	pcs := models.BuildVocab(pcVals, cfg.PCVocab)
	pages := models.BuildVocab(pageVals, cfg.PageVocab)
	delta := models.NewAMMADelta(cfg, pcs, 0, 1)
	page := models.NewAMMAPage(cfg, pages, pcs, 0, 2)
	m, err := New(opt, cfg.HistoryT, silentDetector{}, []models.DeltaModel{delta}, []models.PageModel{page})
	if err != nil {
		tb.Fatal(err)
	}
	return m
}

// mpgraphStepper drives Operate with a 64-block cyclic pattern confined to
// one page, so the PBOT and history stay in steady state.
func mpgraphStepper(m *MPGraph) func() {
	i := 0
	return func() {
		i++
		m.Operate(sim.LLCAccess{Block: uint64(1<<20 + i%64), PC: 0x400000 + 0x40*uint64(i%3)})
	}
}

func TestMPGraphOperateZeroAlloc(t *testing.T) {
	m := newAMMAMPGraph(t, DefaultOptions())
	step := mpgraphStepper(m)
	for n := 0; n < 96; n++ {
		step()
	}
	if allocs := testing.AllocsPerRun(64, step); allocs != 0 {
		t.Fatalf("steady-state AMMA MPGraph.Operate allocates %.1f/op, want 0", allocs)
	}
}

func benchMPGraphOperate(b *testing.B, opt Options) {
	m := newAMMAMPGraph(b, opt)
	step := mpgraphStepper(m)
	for n := 0; n < 96; n++ {
		step()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		step()
	}
}

func BenchmarkOperateMPGraphAMMA(b *testing.B) {
	benchMPGraphOperate(b, DefaultOptions())
}

func BenchmarkOperateMPGraphAMMALegacy(b *testing.B) {
	opt := DefaultOptions()
	opt.DisableFastPath = true
	benchMPGraphOperate(b, opt)
}

// calibSamples builds calibration samples matching the stepper's access
// pattern, so the int8 activation scales see the distribution the
// benchmarks run.
func calibSamples(cfg models.Config, n int) []*models.Sample {
	out := make([]*models.Sample, n)
	for i := range out {
		s := &models.Sample{
			Blocks: make([]uint64, cfg.HistoryT),
			PCs:    make([]uint64, cfg.HistoryT),
		}
		for t := 0; t < cfg.HistoryT; t++ {
			j := i + t
			s.Blocks[t] = uint64(1<<20 + j%64)
			s.PCs[t] = 0x400000 + 0x40*uint64(j%3)
		}
		out[i] = s
	}
	return out
}

// newInt8AMMAMPGraph is newAMMAMPGraph with the models swapped for their
// calibrated int8 mirrors.
func newInt8AMMAMPGraph(tb testing.TB, opt Options) *MPGraph {
	tb.Helper()
	cfg := models.SmallConfig()
	var pcVals, pageVals []uint64
	for i := 0; i < 32; i++ {
		pcVals = append(pcVals, 0x400000+0x40*uint64(i))
		pageVals = append(pageVals, uint64(1<<14+i))
	}
	pcs := models.BuildVocab(pcVals, cfg.PCVocab)
	pages := models.BuildVocab(pageVals, cfg.PageVocab)
	calib := calibSamples(cfg, 64)
	delta, page, err := models.QuantizeSuite(
		models.NewAMMADelta(cfg, pcs, 0, 1),
		models.NewAMMAPage(cfg, pages, pcs, 0, 2), calib)
	if err != nil {
		tb.Fatal(err)
	}
	m, err := New(opt, cfg.HistoryT, silentDetector{}, []models.DeltaModel{delta}, []models.PageModel{page})
	if err != nil {
		tb.Fatal(err)
	}
	return m
}

// newStudentMPGraph builds an MPGraph over the §6.1 compressed-student
// shape: an AMMA delta plus a binary-encoded page head, optionally swapped
// for their int8 mirrors.
func newStudentMPGraph(tb testing.TB, opt Options, int8Path bool) *MPGraph {
	tb.Helper()
	cfg := models.SmallConfig()
	var pcVals, pageVals []uint64
	for i := 0; i < 32; i++ {
		pcVals = append(pcVals, 0x400000+0x40*uint64(i))
		pageVals = append(pageVals, uint64(1<<14+i))
	}
	pcs := models.BuildVocab(pcVals, cfg.PCVocab)
	pages := models.BuildVocab(pageVals, cfg.PageVocab)
	var delta models.DeltaModel = models.NewAMMADelta(cfg, pcs, 0, 3)
	var page models.PageModel = models.NewBinaryPage(cfg, pages, pcs, 4)
	if int8Path {
		var err error
		delta, page, err = models.QuantizeSuite(delta, page, calibSamples(cfg, 64))
		if err != nil {
			tb.Fatal(err)
		}
	}
	m, err := New(opt, cfg.HistoryT, silentDetector{}, []models.DeltaModel{delta}, []models.PageModel{page})
	if err != nil {
		tb.Fatal(err)
	}
	return m
}

func TestMPGraphOperateZeroAllocInt8(t *testing.T) {
	m := newInt8AMMAMPGraph(t, DefaultOptions())
	step := mpgraphStepper(m)
	for n := 0; n < 96; n++ {
		step()
	}
	if allocs := testing.AllocsPerRun(64, step); allocs != 0 {
		t.Fatalf("steady-state int8 MPGraph.Operate allocates %.1f/op, want 0", allocs)
	}
}

func TestMPGraphOperateZeroAllocStudent(t *testing.T) {
	for _, int8Path := range []bool{false, true} {
		m := newStudentMPGraph(t, DefaultOptions(), int8Path)
		step := mpgraphStepper(m)
		for n := 0; n < 96; n++ {
			step()
		}
		if allocs := testing.AllocsPerRun(64, step); allocs != 0 {
			t.Fatalf("steady-state student MPGraph.Operate (int8=%v) allocates %.1f/op, want 0", int8Path, allocs)
		}
	}
}

// BenchmarkOperateMPGraphAMMAInt8 pairs with BenchmarkOperateMPGraphAMMA
// (mpgraph-bench derives the int8 speedup from the name).
func BenchmarkOperateMPGraphAMMAInt8(b *testing.B) {
	m := newInt8AMMAMPGraph(b, DefaultOptions())
	step := mpgraphStepper(m)
	for n := 0; n < 96; n++ {
		step()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		step()
	}
}

func benchStudentOperate(b *testing.B, int8Path bool) {
	m := newStudentMPGraph(b, DefaultOptions(), int8Path)
	step := mpgraphStepper(m)
	for n := 0; n < 96; n++ {
		step()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		step()
	}
}

// newF32AMMAMPGraph is newAMMAMPGraph with the models swapped for their
// narrowed single-precision mirrors.
func newF32AMMAMPGraph(tb testing.TB, opt Options) *MPGraph {
	tb.Helper()
	cfg := models.SmallConfig()
	var pcVals, pageVals []uint64
	for i := 0; i < 32; i++ {
		pcVals = append(pcVals, 0x400000+0x40*uint64(i))
		pageVals = append(pageVals, uint64(1<<14+i))
	}
	pcs := models.BuildVocab(pcVals, cfg.PCVocab)
	pages := models.BuildVocab(pageVals, cfg.PageVocab)
	delta, page, err := models.ConvertSuiteF32(
		models.NewAMMADelta(cfg, pcs, 0, 1),
		models.NewAMMAPage(cfg, pages, pcs, 0, 2))
	if err != nil {
		tb.Fatal(err)
	}
	m, err := New(opt, cfg.HistoryT, silentDetector{}, []models.DeltaModel{delta}, []models.PageModel{page})
	if err != nil {
		tb.Fatal(err)
	}
	return m
}

func TestMPGraphOperateZeroAllocF32(t *testing.T) {
	m := newF32AMMAMPGraph(t, DefaultOptions())
	step := mpgraphStepper(m)
	for n := 0; n < 96; n++ {
		step()
	}
	if allocs := testing.AllocsPerRun(64, step); allocs != 0 {
		t.Fatalf("steady-state f32 MPGraph.Operate allocates %.1f/op, want 0", allocs)
	}
}

// BenchmarkOperateMPGraphAMMAF32 pairs with BenchmarkOperateMPGraphAMMA
// (mpgraph-bench derives the f32 speedup from the name).
func BenchmarkOperateMPGraphAMMAF32(b *testing.B) {
	m := newF32AMMAMPGraph(b, DefaultOptions())
	step := mpgraphStepper(m)
	for n := 0; n < 96; n++ {
		step()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		step()
	}
}

func BenchmarkOperateMPGraphStudent(b *testing.B) { benchStudentOperate(b, false) }

// BenchmarkOperateMPGraphStudentInt8 pairs with BenchmarkOperateMPGraphStudent.
func BenchmarkOperateMPGraphStudentInt8(b *testing.B) { benchStudentOperate(b, true) }
