// Batched multi-stream inference: a BatchScheduler collects pending model
// calls from concurrent sweep workers and runs them as one fused GEMM pass,
// amortizing weight traffic across sessions.
//
// Determinism contract: the batched kernels are composition-independent (a
// sample's output row is a pure function of that sample — see
// tensor/gemm_batch.go), so the grouping the scheduler happens to pick under
// scheduling races never changes any result bit. That is what keeps sweep
// reports byte-identical for any batch size and worker count.
//
// Liveness contract: a flush fires as soon as every session that could still
// submit has submitted (watermark min(batch, joined−inFlight)), with no
// wall-clock timers. Sessions in a non-inferring stretch delay a flush but
// never deadlock it: each joined session eventually submits again or Leaves,
// and Leave re-evaluates the watermark.
package prefetch

import (
	"sync"

	"mpgraph/internal/invariant"
	"mpgraph/internal/models"
	"mpgraph/internal/tensor"
)

// batchReq is one blocking model call in flight through the scheduler. A
// session owns exactly one, reused across calls; the result buffers and done
// channel live for the session's lifetime so steady state allocates nothing
// per call.
type batchReq struct {
	dm     models.DeltaModel
	pm     models.PageModel
	s      *models.Sample
	k      int
	scores []float64
	pages  []uint64
	done   chan struct{}
}

// BatchScheduler batches model calls from concurrent prefetcher sessions
// into fused multi-row inference passes. Workers block in their session's
// DeltaScores/TopPages call until the round containing their request runs;
// the worker that trips the flush watermark executes the round itself (no
// background goroutine, no timer).
type BatchScheduler struct {
	mu       sync.Mutex
	batch    int
	joined   int
	inFlight int
	flushing bool
	pending  []*batchReq

	// Flush-round scratch, reused every round; only the flusher touches it.
	// round is consumed by processRound (entries nil as they are grouped);
	// notify keeps the pristine set for the wake-up signals.
	ctx    *tensor.Ctx
	round  []*batchReq
	notify []*batchReq
	group  []*batchReq
	ss     []*models.Sample
	dst    [][]uint64
}

// NewBatchScheduler builds a scheduler that fuses up to batch requests per
// inference round.
func NewBatchScheduler(batch int) *BatchScheduler {
	invariant.Checkf(batch > 0, "prefetch: batch size %d must be positive", batch)
	return &BatchScheduler{batch: batch, ctx: tensor.NewCtx()}
}

// NewSession creates a session handle for one prefetcher. The handle is not
// counted by the flush watermark until Join.
func (b *BatchScheduler) NewSession() *BatchSession {
	return &BatchSession{sched: b, req: batchReq{done: make(chan struct{}, 1)}}
}

// readyLocked reports whether a flush round should fire: every session that
// could still submit has a request pending (or a full batch accumulated).
func (b *BatchScheduler) readyLocked() bool {
	if len(b.pending) == 0 {
		return false
	}
	lim := b.joined - b.inFlight
	if lim < 1 {
		lim = 1
	}
	if lim > b.batch {
		lim = b.batch
	}
	return len(b.pending) >= lim
}

// submit enqueues r and blocks until its round has run. The goroutine that
// makes the scheduler ready becomes the flusher.
func (b *BatchScheduler) submit(r *batchReq) {
	b.mu.Lock()
	b.pending = append(b.pending, r)
	b.runFlushesLocked() //mpgraph:allow lockcheck -- flush protocol: relocks before returning, and the inference pass runs outside the lock
	b.mu.Unlock()
	<-r.done
}

// runFlushesLocked drains flush rounds while the watermark holds and no other
// goroutine is mid-round. Called with b.mu held; temporarily releases it
// around the inference pass.
func (b *BatchScheduler) runFlushesLocked() {
	for !b.flushing && b.readyLocked() { //mpgraph:allow lockcheck -- readyLocked is pure field arithmetic and cannot panic
		b.flushing = true
		n := len(b.pending)
		if n > b.batch {
			n = b.batch
		}
		b.round = append(b.round[:0], b.pending[:n]...)
		b.notify = append(b.notify[:0], b.pending[:n]...)
		rest := copy(b.pending, b.pending[n:])
		for i := rest; i < len(b.pending); i++ {
			b.pending[i] = nil
		}
		b.pending = b.pending[:rest]
		b.inFlight += n

		b.mu.Unlock()
		b.processRound(b.round)
		b.mu.Lock()

		b.inFlight -= n
		b.flushing = false
		for _, r := range b.notify {
			r.done <- struct{}{} //mpgraph:allow lockcheck -- done is buffered (cap 1) with one outstanding request per session, so the send never blocks
		}
	}
}

// processRound groups the round's requests by (model, kind, k) with a linear
// scan in insertion order and runs one batched inference per group, copying
// each result row into the owning request's buffer.
func (b *BatchScheduler) processRound(round []*batchReq) {
	for i := range round {
		lead := round[i]
		if lead == nil {
			continue
		}
		b.group = b.group[:0]
		b.ss = b.ss[:0]
		for j := i; j < len(round); j++ {
			r := round[j]
			if r == nil {
				continue
			}
			if lead.dm != nil {
				if r.dm != lead.dm {
					continue
				}
			} else if r.pm != lead.pm || r.k != lead.k {
				continue
			}
			b.group = append(b.group, r)
			b.ss = append(b.ss, r.s)
			round[j] = nil
		}
		if lead.dm != nil {
			out := models.DeltaScoresBatchWith(b.ctx, lead.dm, b.ss)
			for gi, r := range b.group {
				r.scores = append(r.scores[:0], out.Data[gi*out.Cols:(gi+1)*out.Cols]...)
			}
		} else {
			b.dst = b.dst[:0]
			for _, r := range b.group {
				b.dst = append(b.dst, r.pages[:0])
			}
			models.TopPagesBatchWith(b.ctx, lead.pm, b.ss, lead.k, b.dst)
			for gi, r := range b.group {
				r.pages = b.dst[gi]
			}
		}
		b.ctx.Reset()
	}
}

// BatchSession is one prefetcher's handle into a BatchScheduler. Its model
// calls block until the scheduler runs the round containing them; the
// returned slices are session-owned and valid until the next call.
type BatchSession struct {
	sched *BatchScheduler
	req   batchReq
}

// join and leave are the nil-safe forms the prefetchers' JoinBatch and
// LeaveBatch delegate to, so batch-mode hooks are no-ops without a scheduler.
func (s *BatchSession) join() {
	if s != nil {
		s.Join()
	}
}

func (s *BatchSession) leave() {
	if s != nil {
		s.Leave()
	}
}

// Join registers the session with the flush watermark. Call before the
// session's simulation loop starts submitting.
func (s *BatchSession) Join() {
	s.sched.mu.Lock()
	s.sched.joined++
	s.sched.mu.Unlock()
}

// Leave unregisters the session and re-evaluates the watermark so waiters do
// not stall on a session that will never submit again.
func (s *BatchSession) Leave() {
	s.sched.mu.Lock()
	s.sched.joined--
	s.sched.runFlushesLocked() //mpgraph:allow lockcheck -- flush protocol: relocks before returning, and the inference pass runs outside the lock
	s.sched.mu.Unlock()
}

// DeltaScores runs the delta model on s through the batched tier and returns
// the raw score vector (session-owned, valid until the next call).
func (s *BatchSession) DeltaScores(m models.DeltaModel, sample *models.Sample) []float64 {
	r := &s.req
	r.dm, r.pm, r.s = m, nil, sample
	s.sched.submit(r)
	r.dm, r.s = nil, nil
	return r.scores
}

// TopPages runs the page model on s through the batched tier, appending the
// top-k pages to dst.
func (s *BatchSession) TopPages(m models.PageModel, sample *models.Sample, k int, dst []uint64) []uint64 {
	r := &s.req
	r.dm, r.pm, r.s, r.k, r.pages = nil, m, sample, k, dst
	s.sched.submit(r)
	out := r.pages
	r.pm, r.s, r.pages = nil, nil, nil
	return out
}
