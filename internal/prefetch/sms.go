package prefetch

import "mpgraph/internal/sim"

// SMSConfig parameterises Spatial Memory Streaming.
type SMSConfig struct {
	// RegionBlocks is the spatial region size in blocks (power of two;
	// the original uses 2 KB regions = 32 blocks).
	RegionBlocks int
	// ActiveRegions bounds the active generation table.
	ActiveRegions int
	// PatternTable bounds the pattern history table.
	PatternTable int
	// MaxPrefetches caps the footprint replay per trigger.
	MaxPrefetches int
}

// DefaultSMSConfig mirrors the ISCA 2006 proposal with a degree-6 cap.
func DefaultSMSConfig() SMSConfig {
	return SMSConfig{RegionBlocks: 32, ActiveRegions: 64, PatternTable: 4096, MaxPrefetches: 6}
}

// SMS models Spatial Memory Streaming (Somogyi et al., ISCA 2006), a
// related-work spatial prefetcher: it learns, per (trigger PC, trigger
// offset) signature, the footprint bitmap of blocks a code region touches
// within a spatial region, and replays that footprint on the next trigger
// with the same signature.
type SMS struct {
	cfg SMSConfig

	// active generations: region -> accumulating footprint.
	active     map[uint64]*smsGeneration
	activeFIFO []uint64

	// pattern history: signature -> footprint bitmap.
	patterns    map[uint64]uint64
	patternFIFO []uint64
}

type smsGeneration struct {
	signature uint64
	footprint uint64 // bit i = block i of the region was touched
}

// NewSMS builds the prefetcher.
func NewSMS(cfg SMSConfig) *SMS {
	if cfg.RegionBlocks <= 0 || cfg.RegionBlocks > 64 || cfg.RegionBlocks&(cfg.RegionBlocks-1) != 0 {
		cfg.RegionBlocks = 32
	}
	return &SMS{cfg: cfg, active: make(map[uint64]*smsGeneration), patterns: make(map[uint64]uint64)}
}

// Name implements sim.Prefetcher.
func (p *SMS) Name() string { return "sms" }

func (p *SMS) region(block uint64) (region uint64, offset int) {
	return block / uint64(p.cfg.RegionBlocks), int(block % uint64(p.cfg.RegionBlocks))
}

func signature(pc uint64, offset int) uint64 {
	// The shift packs a (pc, first-offset) pair into one table key: offset
	// is < RegionBlocks <= 64, so 6 bits separate the two fields. It is key
	// hashing, not address geometry.
	return pc<<6 ^ uint64(offset) //mpgraph:allow addrhelpers -- packs a 6-bit region offset into a table key, not line geometry
}

// Operate implements sim.Prefetcher.
func (p *SMS) Operate(acc sim.LLCAccess) []uint64 {
	region, offset := p.region(acc.Block)
	gen, ok := p.active[region]
	if ok {
		gen.footprint |= 1 << offset
		return nil
	}

	// Region trigger: end the oldest generation if the table is full,
	// committing its footprint to the pattern table.
	if len(p.activeFIFO) >= p.cfg.ActiveRegions {
		old := p.activeFIFO[0]
		p.activeFIFO = p.activeFIFO[1:]
		p.commit(p.active[old])
		delete(p.active, old)
	}
	sig := signature(acc.PC, offset)
	p.active[region] = &smsGeneration{signature: sig, footprint: 1 << offset}
	p.activeFIFO = append(p.activeFIFO, region)

	// Replay the learned footprint for this signature.
	pattern, ok := p.patterns[sig]
	if !ok {
		return nil
	}
	base := region * uint64(p.cfg.RegionBlocks)
	out := make([]uint64, 0, p.cfg.MaxPrefetches)
	for b := 0; b < p.cfg.RegionBlocks && len(out) < p.cfg.MaxPrefetches; b++ {
		if b != offset && pattern&(1<<b) != 0 {
			out = append(out, base+uint64(b))
		}
	}
	return out
}

func (p *SMS) commit(gen *smsGeneration) {
	if gen == nil {
		return
	}
	if _, exists := p.patterns[gen.signature]; !exists {
		if len(p.patternFIFO) >= p.cfg.PatternTable {
			delete(p.patterns, p.patternFIFO[0])
			p.patternFIFO = p.patternFIFO[1:]
		}
		p.patternFIFO = append(p.patternFIFO, gen.signature)
	}
	p.patterns[gen.signature] = gen.footprint
}
