package prefetch

import (
	"testing"

	"mpgraph/internal/sim"
)

// stepper drives a prefetcher with a 64-block cyclic pattern confined to one
// page, so every table (history, Voyager's page map) reaches steady state
// and stays there.
func stepper(pf sim.Prefetcher) func() {
	i := 0
	return func() {
		i++
		pf.Operate(sim.LLCAccess{Block: uint64(1<<20 + i%64), PC: 0x40 * uint64(i%3)})
	}
}

// checkZeroAlloc warms pf past its history window and arena high-water
// marks, then asserts a steady-state Operate call performs zero heap
// allocations — the fast-path regression gate.
func checkZeroAlloc(t *testing.T, pf sim.Prefetcher, warm int) {
	t.Helper()
	step := stepper(pf)
	for n := 0; n < warm; n++ {
		step()
	}
	if allocs := testing.AllocsPerRun(64, step); allocs != 0 {
		t.Fatalf("steady-state %s.Operate allocates %.1f/op, want 0", pf.Name(), allocs)
	}
}

func TestDeltaLSTMOperateZeroAlloc(t *testing.T) {
	ds, delta, _ := tinyTrainedModels(t)
	checkZeroAlloc(t, NewDeltaLSTM(delta, ds.Cfg.HistoryT, MLOptions{Degree: 6}), ds.Cfg.HistoryT+64)
}

func TestTransFetchOperateZeroAlloc(t *testing.T) {
	ds, delta, _ := tinyTrainedModels(t)
	checkZeroAlloc(t, NewTransFetch(delta, ds.Cfg.HistoryT, MLOptions{Degree: 6}), ds.Cfg.HistoryT+64)
}

func TestVoyagerOperateZeroAlloc(t *testing.T) {
	ds, delta, page := tinyTrainedModels(t)
	checkZeroAlloc(t, NewVoyager(page, delta, ds.Cfg.HistoryT, MLOptions{Degree: 6}), ds.Cfg.HistoryT+64)
}

// benchOperate times steady-state Operate calls (ReportAllocs shows the
// fast-vs-legacy allocation difference in `make bench` output).
func benchOperate(b *testing.B, pf sim.Prefetcher, warm int) {
	step := stepper(pf)
	for n := 0; n < warm; n++ {
		step()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		step()
	}
}

func BenchmarkOperateDeltaLSTM(b *testing.B) {
	ds, delta, _ := tinyTrainedModels(b)
	benchOperate(b, NewDeltaLSTM(delta, ds.Cfg.HistoryT, MLOptions{Degree: 6}), ds.Cfg.HistoryT+64)
}

func BenchmarkOperateDeltaLSTMLegacy(b *testing.B) {
	ds, delta, _ := tinyTrainedModels(b)
	benchOperate(b, NewDeltaLSTM(delta, ds.Cfg.HistoryT, MLOptions{Degree: 6, DisableFastPath: true}), ds.Cfg.HistoryT+64)
}

func BenchmarkOperateTransFetch(b *testing.B) {
	ds, delta, _ := tinyTrainedModels(b)
	benchOperate(b, NewTransFetch(delta, ds.Cfg.HistoryT, MLOptions{Degree: 6}), ds.Cfg.HistoryT+64)
}

func BenchmarkOperateTransFetchLegacy(b *testing.B) {
	ds, delta, _ := tinyTrainedModels(b)
	benchOperate(b, NewTransFetch(delta, ds.Cfg.HistoryT, MLOptions{Degree: 6, DisableFastPath: true}), ds.Cfg.HistoryT+64)
}

func BenchmarkOperateVoyager(b *testing.B) {
	ds, delta, page := tinyTrainedModels(b)
	benchOperate(b, NewVoyager(page, delta, ds.Cfg.HistoryT, MLOptions{Degree: 6}), ds.Cfg.HistoryT+64)
}

func BenchmarkOperateVoyagerLegacy(b *testing.B) {
	ds, delta, page := tinyTrainedModels(b)
	benchOperate(b, NewVoyager(page, delta, ds.Cfg.HistoryT, MLOptions{Degree: 6, DisableFastPath: true}), ds.Cfg.HistoryT+64)
}
