package prefetch

import "mpgraph/internal/sim"

// MarkovConfig parameterises the Markov prefetcher.
type MarkovConfig struct {
	// Successors per block (the original keeps up to 4).
	Successors int
	// TableSize bounds the number of tracked blocks (FIFO eviction).
	TableSize int
	// Degree is the total prefetches per access (top successors of the
	// current block, then of the most likely successor, breadth-first).
	Degree int
}

// DefaultMarkovConfig mirrors the ISCA 1997 proposal at degree 6.
func DefaultMarkovConfig() MarkovConfig {
	return MarkovConfig{Successors: 4, TableSize: 16384, Degree: 6}
}

// Markov models the classic Markov prefetcher (Joseph & Grunwald, ISCA
// 1997): a first-order transition table keeping the most frequent
// successors of each miss address, replayed breadth-first on each access.
type Markov struct {
	cfg   MarkovConfig
	table map[uint64][]markovEdge
	fifo  []uint64
	prev  uint64
	warm  bool
}

type markovEdge struct {
	next  uint64
	count int
}

// NewMarkov builds the prefetcher.
func NewMarkov(cfg MarkovConfig) *Markov {
	return &Markov{cfg: cfg, table: make(map[uint64][]markovEdge)}
}

// Name implements sim.Prefetcher.
func (p *Markov) Name() string { return "markov" }

// Operate implements sim.Prefetcher.
func (p *Markov) Operate(acc sim.LLCAccess) []uint64 {
	if p.warm && p.prev != acc.Block {
		p.record(p.prev, acc.Block)
	}
	p.prev = acc.Block
	p.warm = true

	// Breadth-first replay: successors of the current block, then the
	// successors of the best successor, until the degree budget fills.
	out := make([]uint64, 0, p.cfg.Degree)
	seen := map[uint64]bool{acc.Block: true}
	enqueued := map[uint64]bool{acc.Block: true}
	frontier := []uint64{acc.Block}
	for len(frontier) > 0 && len(out) < p.cfg.Degree {
		cur := frontier[0]
		frontier = frontier[1:]
		for _, e := range p.table[cur] {
			if seen[e.next] {
				continue
			}
			seen[e.next] = true
			out = append(out, e.next)
			if len(out) >= p.cfg.Degree {
				break
			}
		}
		// Expand only through unvisited best successors so cyclic chains
		// terminate.
		if edges := p.table[cur]; len(edges) > 0 && !enqueued[edges[0].next] {
			enqueued[edges[0].next] = true
			frontier = append(frontier, edges[0].next)
		}
	}
	return out
}

// record updates the successor list of prev, keeping it sorted by count.
func (p *Markov) record(prev, next uint64) {
	edges, exists := p.table[prev]
	if !exists {
		if len(p.fifo) >= p.cfg.TableSize {
			delete(p.table, p.fifo[0])
			p.fifo = p.fifo[1:]
		}
		p.fifo = append(p.fifo, prev)
	}
	for i := range edges {
		if edges[i].next == next {
			edges[i].count++
			// Bubble toward the front to keep descending counts.
			for i > 0 && edges[i-1].count < edges[i].count {
				edges[i-1], edges[i] = edges[i], edges[i-1]
				i--
			}
			p.table[prev] = edges
			return
		}
	}
	if len(edges) < p.cfg.Successors {
		edges = append(edges, markovEdge{next: next, count: 1})
	} else {
		// Replace the weakest successor.
		edges[len(edges)-1] = markovEdge{next: next, count: 1}
	}
	p.table[prev] = edges
}
