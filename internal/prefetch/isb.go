package prefetch

import "mpgraph/internal/sim"

// ISBConfig parameterises the Irregular Stream Buffer.
type ISBConfig struct {
	// MaxPairs bounds the correlation table (FIFO eviction).
	MaxPairs int
	// Degree is the successor-chain walk length.
	Degree int
}

// DefaultISBConfig returns the paper's degree-6 setup with an 8K-pair table
// (≈ the 8 KB budget Section 6.1 quotes).
func DefaultISBConfig() ISBConfig { return ISBConfig{MaxPairs: 8192, Degree: 6} }

// ISB models the Irregular Stream Buffer (Jain & Lin, MICRO 2013): a
// record-and-replay temporal prefetcher that PC-localises the access stream,
// links each block to its observed successor within the same PC stream, and
// replays the successor chain on a hit. As the paper observes, interleaved
// multi-core execution breaks the recorded orders, which is why ISB fares
// poorly on these workloads.
type ISB struct {
	cfg       ISBConfig
	lastByPC  map[uint64]uint64 // PC-localised previous block
	successor map[uint64]uint64 // block -> next block in its PC stream
	fifo      []uint64          // insertion order for bounded eviction
}

// NewISB builds the prefetcher.
func NewISB(cfg ISBConfig) *ISB {
	return &ISB{
		cfg:       cfg,
		lastByPC:  make(map[uint64]uint64),
		successor: make(map[uint64]uint64),
	}
}

// Name implements sim.Prefetcher.
func (p *ISB) Name() string { return "isb" }

// Operate implements sim.Prefetcher.
func (p *ISB) Operate(acc sim.LLCAccess) []uint64 {
	// Record: link the previous block of this PC stream to the new one.
	if prev, ok := p.lastByPC[acc.PC]; ok && prev != acc.Block {
		if _, exists := p.successor[prev]; !exists {
			if len(p.fifo) >= p.cfg.MaxPairs {
				delete(p.successor, p.fifo[0])
				p.fifo = p.fifo[1:]
			}
			p.fifo = append(p.fifo, prev)
		}
		p.successor[prev] = acc.Block
	}
	p.lastByPC[acc.PC] = acc.Block

	// Replay: walk the successor chain.
	out := make([]uint64, 0, p.cfg.Degree)
	cur := acc.Block
	for k := 0; k < p.cfg.Degree; k++ {
		next, ok := p.successor[cur]
		if !ok || next == cur {
			break
		}
		out = append(out, next)
		cur = next
	}
	return out
}
