package prefetch

import (
	"mpgraph/internal/sim"
	"mpgraph/internal/trace"
)

// VLDPConfig parameterises the Variable Length Delta Prefetcher.
type VLDPConfig struct {
	// HistoryLen is the longest delta-history key (the original uses up to
	// 3 deltas).
	HistoryLen int
	// TableSize bounds each delta-history table (FIFO eviction).
	TableSize int
	// Degree is the prediction-chain walk length.
	Degree int
}

// DefaultVLDPConfig mirrors the MICRO 2015 proposal at degree 6.
func DefaultVLDPConfig() VLDPConfig { return VLDPConfig{HistoryLen: 3, TableSize: 4096, Degree: 6} }

// VLDP models the Variable Length Delta Prefetcher (Shevgoor et al., MICRO
// 2015), a rule-based spatial prefetcher the paper's related work discusses:
// per page, the recent delta history is matched against delta-history
// tables of increasing key length, longer matches taking precedence; the
// predicted delta chain generates prefetches within the page region.
type VLDP struct {
	cfg VLDPConfig
	// tables[k] maps a (k+1)-delta history key to the next delta.
	tables []map[string]int64
	fifos  [][]string
	// per-page last block and delta history.
	pages     map[uint64]*vldpPage
	pageFIFO  []uint64
	pageLimit int
}

type vldpPage struct {
	lastBlock uint64
	history   []int64
}

// NewVLDP builds the prefetcher.
func NewVLDP(cfg VLDPConfig) *VLDP {
	v := &VLDP{cfg: cfg, pages: make(map[uint64]*vldpPage), pageLimit: 256}
	for k := 0; k < cfg.HistoryLen; k++ {
		v.tables = append(v.tables, make(map[string]int64))
		v.fifos = append(v.fifos, nil)
	}
	return v
}

// Name implements sim.Prefetcher.
func (v *VLDP) Name() string { return "vldp" }

func historyKey(h []int64) string {
	b := make([]byte, 0, len(h)*8)
	for _, d := range h {
		for s := 0; s < 64; s += 8 {
			b = append(b, byte(d>>s))
		}
	}
	return string(b)
}

// Operate implements sim.Prefetcher.
func (v *VLDP) Operate(acc sim.LLCAccess) []uint64 {
	page := trace.PageOfBlock(acc.Block)
	st, ok := v.pages[page]
	if !ok {
		if len(v.pageFIFO) >= v.pageLimit {
			delete(v.pages, v.pageFIFO[0])
			v.pageFIFO = v.pageFIFO[1:]
		}
		st = &vldpPage{lastBlock: acc.Block}
		v.pages[page] = st
		v.pageFIFO = append(v.pageFIFO, page)
		return nil
	}
	delta := int64(acc.Block) - int64(st.lastBlock)
	st.lastBlock = acc.Block
	if delta == 0 {
		return nil
	}
	// Train every history length with the observed delta.
	for k := 0; k < v.cfg.HistoryLen && k < len(st.history); k++ {
		key := historyKey(st.history[len(st.history)-k-1:])
		if _, exists := v.tables[k][key]; !exists {
			if len(v.fifos[k]) >= v.cfg.TableSize {
				delete(v.tables[k], v.fifos[k][0])
				v.fifos[k] = v.fifos[k][1:]
			}
			v.fifos[k] = append(v.fifos[k], key)
		}
		v.tables[k][key] = delta
	}
	st.history = append(st.history, delta)
	if len(st.history) > v.cfg.HistoryLen {
		st.history = st.history[1:]
	}

	// Predict: walk a chain, each step matched with the longest available
	// history.
	out := make([]uint64, 0, v.cfg.Degree)
	hist := append([]int64(nil), st.history...)
	block := acc.Block
	for i := 0; i < v.cfg.Degree; i++ {
		next, ok := v.lookup(hist)
		if !ok {
			break
		}
		t := int64(block) + next
		if t < 0 {
			break
		}
		block = uint64(t)
		out = append(out, block)
		hist = append(hist, next)
		if len(hist) > v.cfg.HistoryLen {
			hist = hist[1:]
		}
	}
	return out
}

// lookup returns the predicted next delta for the longest matching history.
func (v *VLDP) lookup(hist []int64) (int64, bool) {
	for k := min(v.cfg.HistoryLen, len(hist)) - 1; k >= 0; k-- {
		key := historyKey(hist[len(hist)-k-1:])
		if d, ok := v.tables[k][key]; ok {
			return d, true
		}
	}
	return 0, false
}
