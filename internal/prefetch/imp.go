package prefetch

import "mpgraph/internal/sim"

// IMPConfig parameterises the Indirect Memory Prefetcher.
type IMPConfig struct {
	// StreamPCs bounds the number of tracked streaming (index) PCs.
	StreamPCs int
	// Candidates bounds concurrent (coefficient, base) hypotheses per
	// indirect PC.
	Candidates int
	// Confidence is the hypothesis hit count required before prefetching.
	Confidence int
	// Degree is how many future index elements to prefetch through.
	Degree int
}

// DefaultIMPConfig mirrors the MICRO 2015 proposal at degree 6.
func DefaultIMPConfig() IMPConfig {
	return IMPConfig{StreamPCs: 64, Candidates: 4, Confidence: 2, Degree: 6}
}

// IMP models the Indirect Memory Prefetcher (Yu et al., MICRO 2015), the
// related-work baseline for A[B[i]]-style graph accesses: it detects
// sequential "index" streams (the B array), pairs them with an "indirect"
// PC whose addresses correlate as addr = coeff·index + base, and, once a
// hypothesis is confident, prefetches the indirect targets of upcoming
// index values.
//
// The block-granular LLC stream hides the index *values* real IMP reads
// from fill data, so this model approximates indices by the index stream's
// element slot: addr = coeff·slot + base. Linear slot-addressed indirect
// patterns (CSR offset walks) are covered; data-dependent jumps are not —
// matching the paper's observation that IMP-style rules cannot capture
// graph analytics' full irregularity.
type IMP struct {
	cfg IMPConfig
	// streams: per-PC sequential stream state (last block, run length,
	// slot counter).
	streams map[uint64]*impStream
	// bindings: indirect PC -> the stream PC it correlates with plus the
	// active linear hypotheses.
	bindings map[uint64]*impBinding
	lastPC   uint64
}

type impStream struct {
	lastBlock uint64
	run       int
	slot      int64
}

type impHypothesis struct {
	coeff, base int64
	hits        int
}

type impBinding struct {
	streamPC uint64
	prevSlot int64
	prevAddr uint64
	cands    []impHypothesis
}

// NewIMP builds the prefetcher.
func NewIMP(cfg IMPConfig) *IMP {
	return &IMP{cfg: cfg, streams: make(map[uint64]*impStream), bindings: make(map[uint64]*impBinding)}
}

// Name implements sim.Prefetcher.
func (p *IMP) Name() string { return "imp" }

// Operate implements sim.Prefetcher.
func (p *IMP) Operate(acc sim.LLCAccess) []uint64 {
	prevPC := p.lastPC
	p.lastPC = acc.PC

	// Track every PC's stream behaviour (sequential runs of delta 0/1 mark
	// an index stream); PCs beyond the tracking budget are ignored.
	st, ok := p.streams[acc.PC]
	if !ok {
		if len(p.streams) >= p.cfg.StreamPCs {
			return nil
		}
		p.streams[acc.PC] = &impStream{lastBlock: acc.Block}
		return nil
	}
	d := int64(acc.Block) - int64(st.lastBlock)
	st.lastBlock = acc.Block
	if d == 0 || d == 1 {
		st.run++
		st.slot++
	} else {
		st.run = 0
	}
	if st.run >= 2 {
		// This PC is acting as a sequential index stream itself.
		return nil
	}

	// Non-stream access right after a streaming PC: candidate indirect pair.
	ls, isStream := p.streams[prevPC]
	if !isStream || ls.run < 2 || prevPC == acc.PC {
		return nil
	}
	b, okB := p.bindings[acc.PC]
	if !okB {
		b = &impBinding{streamPC: prevPC, prevSlot: ls.slot, prevAddr: acc.Block}
		p.bindings[acc.PC] = b
		return nil
	}
	if b.streamPC != prevPC {
		return nil
	}
	// Update hypotheses with the (slot, addr) observation.
	dSlot := ls.slot - b.prevSlot
	if dSlot > 0 {
		coeff := (int64(acc.Block) - int64(b.prevAddr)) / dSlot
		base := int64(acc.Block) - coeff*ls.slot
		matched := false
		for i := range b.cands {
			if b.cands[i].coeff == coeff && b.cands[i].base == base {
				b.cands[i].hits++
				matched = true
				break
			}
		}
		if !matched {
			if len(b.cands) >= p.cfg.Candidates {
				// Evict the weakest hypothesis.
				weak := 0
				for i := range b.cands {
					if b.cands[i].hits < b.cands[weak].hits {
						weak = i
					}
				}
				b.cands[weak] = impHypothesis{coeff: coeff, base: base}
			} else {
				b.cands = append(b.cands, impHypothesis{coeff: coeff, base: base})
			}
		}
	}
	b.prevSlot, b.prevAddr = ls.slot, acc.Block

	// Prefetch through the confident hypothesis for upcoming index slots.
	var best *impHypothesis
	for i := range b.cands {
		if b.cands[i].hits >= p.cfg.Confidence && (best == nil || b.cands[i].hits > best.hits) {
			best = &b.cands[i]
		}
	}
	if best == nil || best.coeff == 0 {
		return nil
	}
	out := make([]uint64, 0, p.cfg.Degree)
	for k := 1; k <= p.cfg.Degree; k++ {
		t := best.coeff*(ls.slot+int64(k)) + best.base
		if t < 0 {
			break
		}
		out = append(out, uint64(t))
	}
	return out
}
