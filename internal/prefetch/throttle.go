package prefetch

import "mpgraph/internal/sim"

// ThrottleConfig parameterises the feedback-directed degree controller.
type ThrottleConfig struct {
	// MaxDegree caps the issued prefetches per access.
	MaxDegree int
	// Interval is the accuracy-evaluation epoch in LLC accesses.
	Interval int
	// HighWater raises the degree when measured accuracy exceeds it.
	HighWater float64
	// LowWater lowers the degree when measured accuracy falls below it.
	LowWater float64
	// Window bounds the issued-block tracking set.
	Window int
}

// DefaultThrottleConfig mirrors feedback-directed prefetching's classic
// thresholds.
func DefaultThrottleConfig() ThrottleConfig {
	return ThrottleConfig{MaxDegree: 6, Interval: 512, HighWater: 0.75, LowWater: 0.40, Window: 4096}
}

// Throttle wraps any prefetcher with feedback-directed degree control
// (Srinath et al.'s FDP idea, applied here as the dynamic-degree knob the
// paper leaves to the controller): it measures its own prefetch accuracy
// over epochs and truncates the inner prefetcher's requests when accuracy
// is poor, restoring the full degree when accuracy recovers.
type Throttle struct {
	cfg   ThrottleConfig
	inner sim.Prefetcher

	degree                   int
	issued                   map[uint64]bool
	fifo                     []uint64
	epochIssued, epochUseful int
	tick                     int
}

// NewThrottle wraps inner.
func NewThrottle(inner sim.Prefetcher, cfg ThrottleConfig) *Throttle {
	if cfg.MaxDegree <= 0 {
		cfg.MaxDegree = 6
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 512
	}
	if cfg.Window <= 0 {
		cfg.Window = 4096
	}
	return &Throttle{cfg: cfg, inner: inner, degree: cfg.MaxDegree, issued: make(map[uint64]bool)}
}

// Name implements sim.Prefetcher.
func (t *Throttle) Name() string { return t.inner.Name() + "+throttle" }

// Degree exposes the current dynamic degree (tests, reports).
func (t *Throttle) Degree() int { return t.degree }

// InferenceLatencyCycles forwards the inner model's latency, if any.
func (t *Throttle) InferenceLatencyCycles() uint64 {
	if il, ok := t.inner.(sim.InferenceLatency); ok {
		return il.InferenceLatencyCycles()
	}
	return 0
}

// Operate implements sim.Prefetcher.
func (t *Throttle) Operate(acc sim.LLCAccess) []uint64 {
	// Feedback: a demand access to a tracked issued block is a useful
	// prefetch.
	if t.issued[acc.Block] {
		delete(t.issued, acc.Block)
		t.epochUseful++
	}
	t.tick++
	if t.tick%t.cfg.Interval == 0 && t.epochIssued > 0 {
		accuracy := float64(t.epochUseful) / float64(t.epochIssued)
		switch {
		case accuracy > t.cfg.HighWater && t.degree < t.cfg.MaxDegree:
			t.degree++
		case accuracy < t.cfg.LowWater && t.degree > 1:
			t.degree--
		}
		t.epochIssued, t.epochUseful = 0, 0
	}

	out := t.inner.Operate(acc)
	if len(out) > t.degree {
		out = out[:t.degree]
	}
	for _, b := range out {
		if !t.issued[b] {
			if len(t.fifo) >= t.cfg.Window {
				delete(t.issued, t.fifo[0])
				t.fifo = t.fifo[1:]
			}
			t.issued[b] = true
			t.fifo = append(t.fifo, b)
			// Duplicate requests are filtered by the LLC anyway; only
			// newly tracked blocks count toward the accuracy estimate.
			t.epochIssued++
		}
	}
	return out
}
