package prefetch

import (
	"fmt"

	"mpgraph/internal/resilience"
	"mpgraph/internal/sim"
)

// GuardConfig tunes the Guarded degradation wrapper.
type GuardConfig struct {
	// MaxBlock is the highest block address a prefetch may target; anything
	// above it is an out-of-range violation. The default (1<<52) corresponds
	// to the 64-bit virtual address space ceiling (2^58 bytes >> 6).
	MaxBlock uint64
	// LatencyBudgetNS bounds the wall-clock cost of one Operate call; 0
	// disables the budget (the default — wall-clock checks are inherently
	// non-deterministic, so sweeps that must be byte-identical leave this
	// off).
	LatencyBudgetNS int64
	// MaxViolations is how many violations are tolerated before the primary
	// is quarantined for good (default 3).
	MaxViolations int
	// Now supplies monotonic nanoseconds for the latency budget. Tests
	// inject a fake clock; required when LatencyBudgetNS > 0.
	Now func() int64
}

func (c GuardConfig) withDefaults() GuardConfig {
	if c.MaxBlock == 0 {
		c.MaxBlock = 1 << 52
	}
	if c.MaxViolations <= 0 {
		c.MaxViolations = 3
	}
	return c
}

// Guarded screens an ML prefetcher's outputs and degrades to a baseline when
// the model misbehaves. It watches for four defect classes: panics during
// Operate (recovered via a resilience boundary), self-reported model health
// failures (non-finite scores, see sim.HealthReporter), out-of-range block
// addresses, and per-inference latency-budget violations. Each defect is a
// violation; after GuardConfig.MaxViolations the primary is quarantined and
// every subsequent access is served by the fallback.
//
// The fallback runs warm: it observes every access from the start, so its
// online-trained state (e.g. BO's offset scores) is ready the moment the
// primary is benched. While the primary is healthy Guarded is transparent —
// same Name, same outputs, same inference latency — so healthy sweep reports
// are byte-identical with and without the wrapper.
type Guarded struct {
	primary  sim.Prefetcher
	fallback sim.Prefetcher
	cfg      GuardConfig
	events   *resilience.Log

	violations  int
	quarantined bool
}

// NewGuarded wraps primary with degradation to fallback. events may be nil.
func NewGuarded(primary, fallback sim.Prefetcher, cfg GuardConfig, events *resilience.Log) *Guarded {
	return &Guarded{primary: primary, fallback: fallback, cfg: cfg.withDefaults(), events: events}
}

// Name implements sim.Prefetcher. It always reports the primary's name:
// report rows keep their identity across a mid-sweep degradation.
func (g *Guarded) Name() string { return g.primary.Name() }

// InferenceLatencyCycles implements sim.InferenceLatency, following
// whichever prefetcher is currently serving predictions.
func (g *Guarded) InferenceLatencyCycles() uint64 {
	serving := g.primary
	if g.quarantined {
		serving = g.fallback
	}
	if il, ok := serving.(sim.InferenceLatency); ok {
		return il.InferenceLatencyCycles()
	}
	return 0
}

// JoinBatch forwards batch-scheduler registration to the primary when it
// participates in batched inference (heuristic fallbacks never do). A
// quarantined primary stays joined but silent until LeaveBatch; the
// scheduler's watermark tolerates that — its cell still finishes on the
// fallback and leaves, at which point waiters flush.
func (g *Guarded) JoinBatch() {
	if j, ok := g.primary.(interface{ JoinBatch() }); ok {
		j.JoinBatch()
	}
}

// LeaveBatch forwards batch-scheduler deregistration to the primary.
func (g *Guarded) LeaveBatch() {
	if l, ok := g.primary.(interface{ LeaveBatch() }); ok {
		l.LeaveBatch()
	}
}

// Quarantined reports whether the primary has been benched.
func (g *Guarded) Quarantined() bool { return g.quarantined }

// Violations reports how many defects have been observed so far.
func (g *Guarded) Violations() int { return g.violations }

// Operate implements sim.Prefetcher.
func (g *Guarded) Operate(acc sim.LLCAccess) []uint64 {
	// Warm standby: the fallback trains on every access so its state is
	// ready whenever the primary is benched.
	fbOut := g.fallback.Operate(acc)
	if g.quarantined {
		return fbOut
	}

	var start int64
	if g.cfg.LatencyBudgetNS > 0 && g.cfg.Now != nil {
		start = g.cfg.Now()
	}
	out, err := resilience.GuardVal("prefetch/"+g.primary.Name(), func() ([]uint64, error) {
		return g.primary.Operate(acc), nil
	})
	if err != nil {
		g.violate("panic-recovered", err.Error())
		return fbOut
	}
	if hr, ok := g.primary.(sim.HealthReporter); ok {
		if herr := hr.Health(); herr != nil {
			g.violate("model-health", herr.Error())
			return fbOut
		}
	}
	for _, b := range out {
		if b > g.cfg.MaxBlock {
			g.violate("out-of-range", fmt.Sprintf("block %#x exceeds max %#x", b, g.cfg.MaxBlock))
			return fbOut
		}
	}
	if start != 0 {
		if elapsed := g.cfg.Now() - start; elapsed > g.cfg.LatencyBudgetNS {
			g.violate("latency-budget", fmt.Sprintf("inference took %dns (budget %dns)", elapsed, g.cfg.LatencyBudgetNS))
			return fbOut
		}
	}
	return out
}

// violate records one defect, engages the fallback for this access, and
// quarantines the primary once the violation budget is spent.
func (g *Guarded) violate(action, detail string) {
	g.violations++
	component := "prefetch/" + g.primary.Name()
	g.events.Add(component, action, detail)
	g.events.Add(component, "fallback", "serving "+g.fallback.Name()+" for this access")
	if g.violations >= g.cfg.MaxViolations {
		g.quarantined = true
		g.events.Add(component, "quarantine",
			fmt.Sprintf("%d violations: degraded to %s permanently", g.violations, g.fallback.Name()))
	}
}
