package prefetch

import "mpgraph/internal/sim"

// EnsembleConfig parameterises the reinforced ensemble.
type EnsembleConfig struct {
	// Degree is the per-access prefetch budget shared by the components.
	Degree int
	// Epsilon is the exploration floor: every component keeps at least this
	// share of the budget (so it can re-earn weight after a phase change).
	Epsilon float64
	// DecayEvery halves all component credits periodically, so the
	// arbitration tracks the current phase rather than lifetime totals.
	DecayEvery int
	// Window bounds the per-component issued-block tracking sets.
	Window int
}

// DefaultEnsembleConfig mirrors ReSemble's spirit at total degree 6.
func DefaultEnsembleConfig() EnsembleConfig {
	return EnsembleConfig{Degree: 6, Epsilon: 0.1, DecayEvery: 4096, Window: 2048}
}

// Ensemble is a ReSemble-style (Zhang et al., SC 2022 — the paper's own
// citation for spatio-temporal ensembling) reinforced ensemble: several
// component prefetchers run side by side, each earns credit when a demand
// access hits a block it requested, and the shared degree budget is split
// proportionally to recent credit with an exploration floor.
type Ensemble struct {
	cfg        EnsembleConfig
	components []sim.Prefetcher
	credit     []float64
	issued     []map[uint64]bool
	fifo       [][]uint64
	tick       int
}

// NewEnsemble wraps the component prefetchers (at least one).
func NewEnsemble(cfg EnsembleConfig, components ...sim.Prefetcher) *Ensemble {
	if cfg.Degree <= 0 {
		cfg.Degree = 6
	}
	if cfg.DecayEvery <= 0 {
		cfg.DecayEvery = 4096
	}
	if cfg.Window <= 0 {
		cfg.Window = 2048
	}
	if cfg.Epsilon <= 0 {
		cfg.Epsilon = 0.1
	}
	e := &Ensemble{cfg: cfg, components: components}
	for range components {
		e.credit = append(e.credit, 1)
		e.issued = append(e.issued, map[uint64]bool{})
		e.fifo = append(e.fifo, nil)
	}
	return e
}

// Name implements sim.Prefetcher.
func (e *Ensemble) Name() string { return "ensemble" }

// Credits exposes the current component credits (tests, reports).
func (e *Ensemble) Credits() []float64 {
	out := make([]float64, len(e.credit))
	copy(out, e.credit)
	return out
}

// InferenceLatencyCycles reports the slowest component's latency (they run
// in parallel).
func (e *Ensemble) InferenceLatencyCycles() uint64 {
	var worst uint64
	for _, c := range e.components {
		if il, ok := c.(sim.InferenceLatency); ok && il.InferenceLatencyCycles() > worst {
			worst = il.InferenceLatencyCycles()
		}
	}
	return worst
}

// Operate implements sim.Prefetcher.
func (e *Ensemble) Operate(acc sim.LLCAccess) []uint64 {
	// Reward components whose past requests cover this access.
	for i := range e.components {
		if e.issued[i][acc.Block] {
			delete(e.issued[i], acc.Block)
			e.credit[i]++
		}
	}
	e.tick++
	if e.tick%e.cfg.DecayEvery == 0 {
		for i := range e.credit {
			e.credit[i] = e.credit[i]/2 + 0.5 // decay toward the floor
		}
	}

	// Every component proposes; the budget is split by credit share with an
	// epsilon floor.
	proposals := make([][]uint64, len(e.components))
	total := 0.0
	for i, c := range e.components {
		proposals[i] = c.Operate(acc)
		total += e.credit[i]
	}
	floor := float64(e.cfg.Degree) * e.cfg.Epsilon / float64(len(e.components))
	out := make([]uint64, 0, e.cfg.Degree)
	seen := map[uint64]bool{}
	for i := range e.components {
		share := floor + float64(e.cfg.Degree)*(1-e.cfg.Epsilon)*e.credit[i]/total
		quota := int(share + 0.5)
		if quota < 1 {
			quota = 1
		}
		for _, b := range proposals[i] {
			if quota == 0 || len(out) >= e.cfg.Degree {
				break
			}
			if seen[b] {
				continue
			}
			seen[b] = true
			out = append(out, b)
			quota--
			e.track(i, b)
		}
	}
	// Spend leftover budget on the strongest component's remaining
	// proposals.
	if len(out) < e.cfg.Degree {
		best := 0
		for i := range e.credit {
			if e.credit[i] > e.credit[best] {
				best = i
			}
		}
		for _, b := range proposals[best] {
			if len(out) >= e.cfg.Degree {
				break
			}
			if !seen[b] {
				seen[b] = true
				out = append(out, b)
				e.track(best, b)
			}
		}
	}
	return out
}

func (e *Ensemble) track(i int, block uint64) {
	if e.issued[i][block] {
		return
	}
	if len(e.fifo[i]) >= e.cfg.Window {
		delete(e.issued[i], e.fifo[i][0])
		e.fifo[i] = e.fifo[i][1:]
	}
	e.issued[i][block] = true
	e.fifo[i] = append(e.fifo[i], block)
}
