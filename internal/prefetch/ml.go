package prefetch

import (
	"mpgraph/internal/models"
	"mpgraph/internal/sim"
	"mpgraph/internal/tensor"
	"mpgraph/internal/trace"
)

// MLOptions tunes the ML baseline prefetchers.
type MLOptions struct {
	// Degree is the total prefetch degree (6 for all baselines, Section
	// 5.4.1).
	Degree int
	// InferEvery throttles inference to every k-th LLC access (1 = every
	// access); predictions persist between inferences.
	InferEvery int
	// LatencyCycles is the model inference latency reported to the
	// simulator.
	LatencyCycles uint64
}

func (o MLOptions) withDefaults() MLOptions {
	if o.Degree <= 0 {
		o.Degree = 6
	}
	if o.InferEvery <= 0 {
		o.InferEvery = 1
	}
	return o
}

// DeltaLSTM is the Delta-LSTM baseline (Hashemi et al. 2018): a pretrained
// LSTM over delta/PC history predicting the top future deltas.
type DeltaLSTM struct {
	opt   MLOptions
	model models.DeltaModel
	hist  *models.History
	tick  int
}

// NewDeltaLSTM wraps a trained delta model (expected: models.LSTMDelta).
func NewDeltaLSTM(model models.DeltaModel, historyT int, opt MLOptions) *DeltaLSTM {
	return &DeltaLSTM{opt: opt.withDefaults(), model: model, hist: models.NewHistory(historyT)}
}

// Name implements sim.Prefetcher.
func (p *DeltaLSTM) Name() string { return "delta-lstm" }

// InferenceLatencyCycles implements sim.InferenceLatency.
func (p *DeltaLSTM) InferenceLatencyCycles() uint64 { return p.opt.LatencyCycles }

// Operate implements sim.Prefetcher.
func (p *DeltaLSTM) Operate(acc sim.LLCAccess) []uint64 {
	p.hist.Push(acc.Block, acc.PC)
	p.tick++
	if !p.hist.Warm() || p.tick%p.opt.InferEvery != 0 {
		return nil
	}
	restore := tensor.SetGradEnabled(false)
	defer tensor.SetGradEnabled(restore)
	return deltaPrefetches(p.model, p.hist.Sample(0), acc.Block, p.opt.Degree)
}

// TransFetch is the TransFetch baseline (Zhang et al. 2022): an
// attention-based delta predictor with fine-grained address segmentation.
type TransFetch struct {
	opt   MLOptions
	model models.DeltaModel
	hist  *models.History
	tick  int
}

// NewTransFetch wraps a trained delta model (expected: models.AttnDelta).
func NewTransFetch(model models.DeltaModel, historyT int, opt MLOptions) *TransFetch {
	return &TransFetch{opt: opt.withDefaults(), model: model, hist: models.NewHistory(historyT)}
}

// Name implements sim.Prefetcher.
func (p *TransFetch) Name() string { return "transfetch" }

// InferenceLatencyCycles implements sim.InferenceLatency.
func (p *TransFetch) InferenceLatencyCycles() uint64 { return p.opt.LatencyCycles }

// Operate implements sim.Prefetcher.
func (p *TransFetch) Operate(acc sim.LLCAccess) []uint64 {
	p.hist.Push(acc.Block, acc.PC)
	p.tick++
	if !p.hist.Warm() || p.tick%p.opt.InferEvery != 0 {
		return nil
	}
	restore := tensor.SetGradEnabled(false)
	defer tensor.SetGradEnabled(restore)
	return deltaPrefetches(p.model, p.hist.Sample(0), acc.Block, p.opt.Degree)
}

// Voyager is the Voyager baseline (Shi et al. 2021): two models — a page
// predictor and an offset/delta predictor — whose predictions compose into
// prefetch addresses. The predicted page is based at its last-seen offset
// (tracked per page), where the offset model's deltas apply.
type Voyager struct {
	opt        MLOptions
	pageModel  models.PageModel
	deltaModel models.DeltaModel
	hist       *models.History
	lastOffset map[uint64]uint64
	fifo       []uint64
	tick       int
}

// NewVoyager wraps trained page and delta models (expected: LSTM-based).
func NewVoyager(pageModel models.PageModel, deltaModel models.DeltaModel, historyT int, opt MLOptions) *Voyager {
	return &Voyager{
		opt:        opt.withDefaults(),
		pageModel:  pageModel,
		deltaModel: deltaModel,
		hist:       models.NewHistory(historyT),
		lastOffset: make(map[uint64]uint64),
	}
}

// Name implements sim.Prefetcher.
func (p *Voyager) Name() string { return "voyager" }

// InferenceLatencyCycles implements sim.InferenceLatency.
func (p *Voyager) InferenceLatencyCycles() uint64 { return p.opt.LatencyCycles }

// Operate implements sim.Prefetcher.
func (p *Voyager) Operate(acc sim.LLCAccess) []uint64 {
	page := trace.PageOfBlock(acc.Block)
	if _, seen := p.lastOffset[page]; !seen {
		if len(p.fifo) >= 4096 {
			delete(p.lastOffset, p.fifo[0])
			p.fifo = p.fifo[1:]
		}
		p.fifo = append(p.fifo, page)
	}
	p.lastOffset[page] = trace.BlockOffset(acc.Block)
	p.hist.Push(acc.Block, acc.PC)
	p.tick++
	if !p.hist.Warm() || p.tick%p.opt.InferEvery != 0 {
		return nil
	}
	restore := tensor.SetGradEnabled(false)
	defer tensor.SetGradEnabled(restore)

	s := p.hist.Sample(0)
	// Half the degree goes spatially at the current block, half at the
	// predicted page.
	half := p.opt.Degree / 2
	out := deltaPrefetches(p.deltaModel, s, acc.Block, half)
	for _, pg := range p.pageModel.TopPages(s, 1) {
		off, ok := p.lastOffset[pg]
		if !ok {
			off = 0
		}
		base := trace.BlockOfPageOffset(pg, off)
		out = append(out, base)
		rest := p.opt.Degree - len(out)
		if rest > 0 {
			out = append(out, deltaPrefetches(p.deltaModel, s, base, rest)...)
		}
	}
	if len(out) > p.opt.Degree {
		out = out[:p.opt.Degree]
	}
	return out
}

// deltaPrefetches converts a delta model's top-k classes into block
// addresses relative to base.
func deltaPrefetches(m models.DeltaModel, s *models.Sample, base uint64, k int) []uint64 {
	if k <= 0 {
		return nil
	}
	scores := m.DeltaScores(s)
	cfgRange := len(scores) / 2
	out := make([]uint64, 0, k)
	for _, cls := range models.TopKClasses(scores, k) {
		var delta int64
		if cls < cfgRange {
			delta = int64(cls) - int64(cfgRange)
		} else {
			delta = int64(cls-cfgRange) + 1
		}
		target := int64(base) + delta
		if target >= 0 {
			out = append(out, uint64(target))
		}
	}
	return out
}
