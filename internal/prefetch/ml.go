package prefetch

import (
	"mpgraph/internal/invariant"
	"mpgraph/internal/models"
	"mpgraph/internal/sim"
	"mpgraph/internal/tensor"
	"mpgraph/internal/trace"
)

// MLOptions tunes the ML baseline prefetchers.
type MLOptions struct {
	// Degree is the total prefetch degree (6 for all baselines, Section
	// 5.4.1).
	Degree int
	// InferEvery throttles inference to every k-th LLC access (1 = every
	// access); predictions persist between inferences.
	InferEvery int
	// LatencyCycles is the model inference latency reported to the
	// simulator.
	LatencyCycles uint64
	// DisableFastPath runs inference on the legacy allocating autograd
	// path instead of the arena fast path. The legacy path toggles the
	// global grad flag, so it must not run concurrently with training —
	// it exists as the perf baseline the benchmarks compare against.
	DisableFastPath bool
	// Scheduler, when non-nil, routes model calls through a shared
	// BatchScheduler so concurrent sweep workers share fused inference
	// rounds. Requires the fast path (incompatible with DisableFastPath).
	Scheduler *BatchScheduler
}

func (o MLOptions) withDefaults() MLOptions {
	if o.Degree <= 0 {
		o.Degree = 6
	}
	if o.InferEvery <= 0 {
		o.InferEvery = 1
	}
	return o
}

// newCtx builds the per-prefetcher inference arena (nil = legacy path).
func (o MLOptions) newCtx() *tensor.Ctx {
	if o.DisableFastPath {
		return nil
	}
	return tensor.NewCtx()
}

// newSession attaches the prefetcher to the shared batch scheduler, if any.
// The batched tier decodes with the arena fast path, so combining a scheduler
// with the legacy path is a construction defect.
func (o MLOptions) newSession() *BatchSession {
	if o.Scheduler == nil {
		return nil
	}
	invariant.Check(!o.DisableFastPath, "prefetch: Scheduler requires the fast path (DisableFastPath must be false)")
	return o.Scheduler.NewSession()
}

// inferGate bundles the warmup/throttle logic shared by every ML
// prefetcher: push the access into the history window, then gate inference
// on the window being warm and on the InferEvery throttle.
type inferGate struct {
	hist  *models.History
	every int
	tick  int
}

func newInferGate(historyT, inferEvery int) inferGate {
	return inferGate{hist: models.NewHistory(historyT), every: inferEvery}
}

// observe records the access and reports whether to infer on this tick.
func (g *inferGate) observe(block, pc uint64) bool {
	g.hist.Push(block, pc)
	g.tick++
	return g.hist.Warm() && g.tick%g.every == 0
}

// DeltaLSTM is the Delta-LSTM baseline (Hashemi et al. 2018): a pretrained
// LSTM over delta/PC history predicting the top future deltas.
type DeltaLSTM struct {
	opt     MLOptions
	model   models.DeltaModel
	gate    inferGate
	ctx     *tensor.Ctx
	sess    *BatchSession
	scratch models.Sample
	out     []uint64
	health  error
}

// NewDeltaLSTM wraps a trained delta model (expected: models.LSTMDelta).
func NewDeltaLSTM(model models.DeltaModel, historyT int, opt MLOptions) *DeltaLSTM {
	opt = opt.withDefaults()
	return &DeltaLSTM{opt: opt, model: model, gate: newInferGate(historyT, opt.InferEvery), ctx: opt.newCtx(), sess: opt.newSession()}
}

// Name implements sim.Prefetcher.
func (p *DeltaLSTM) Name() string { return "delta-lstm" }

// InferenceLatencyCycles implements sim.InferenceLatency.
func (p *DeltaLSTM) InferenceLatencyCycles() uint64 { return p.opt.LatencyCycles }

// Health implements sim.HealthReporter.
func (p *DeltaLSTM) Health() error { return p.health }

// JoinBatch registers this prefetcher's session with the shared batch
// scheduler's flush watermark (no-op without a scheduler).
func (p *DeltaLSTM) JoinBatch() { p.sess.join() }

// LeaveBatch unregisters the session (no-op without a scheduler).
func (p *DeltaLSTM) LeaveBatch() { p.sess.leave() }

// Operate implements sim.Prefetcher.
func (p *DeltaLSTM) Operate(acc sim.LLCAccess) []uint64 {
	if !p.gate.observe(acc.Block, acc.PC) {
		return nil
	}
	if p.ctx == nil {
		restore := tensor.SetGradEnabled(false)
		defer tensor.SetGradEnabled(restore)
		out, err := deltaPrefetches(p.model, p.gate.hist.Sample(0), acc.Block, p.opt.Degree)
		p.health = keepFirst(p.health, err)
		return out
	}
	defer p.ctx.Reset()
	s := p.gate.hist.SampleInto(&p.scratch, 0)
	var err error
	if p.sess != nil {
		scores := p.sess.DeltaScores(p.model, s)
		p.out, err = models.AppendDeltaTargets(p.ctx, scores, acc.Block, p.opt.Degree, p.out[:0])
	} else {
		p.out, err = deltaPrefetchesAppend(p.ctx, p.model, s, acc.Block, p.opt.Degree, p.out[:0])
	}
	p.health = keepFirst(p.health, err)
	return p.out
}

// TransFetch is the TransFetch baseline (Zhang et al. 2022): an
// attention-based delta predictor with fine-grained address segmentation.
type TransFetch struct {
	opt     MLOptions
	model   models.DeltaModel
	gate    inferGate
	ctx     *tensor.Ctx
	sess    *BatchSession
	scratch models.Sample
	out     []uint64
	health  error
}

// NewTransFetch wraps a trained delta model (expected: models.AttnDelta).
func NewTransFetch(model models.DeltaModel, historyT int, opt MLOptions) *TransFetch {
	opt = opt.withDefaults()
	return &TransFetch{opt: opt, model: model, gate: newInferGate(historyT, opt.InferEvery), ctx: opt.newCtx(), sess: opt.newSession()}
}

// Name implements sim.Prefetcher.
func (p *TransFetch) Name() string { return "transfetch" }

// InferenceLatencyCycles implements sim.InferenceLatency.
func (p *TransFetch) InferenceLatencyCycles() uint64 { return p.opt.LatencyCycles }

// Health implements sim.HealthReporter.
func (p *TransFetch) Health() error { return p.health }

// JoinBatch registers this prefetcher's session with the shared batch
// scheduler's flush watermark (no-op without a scheduler).
func (p *TransFetch) JoinBatch() { p.sess.join() }

// LeaveBatch unregisters the session (no-op without a scheduler).
func (p *TransFetch) LeaveBatch() { p.sess.leave() }

// Operate implements sim.Prefetcher.
func (p *TransFetch) Operate(acc sim.LLCAccess) []uint64 {
	if !p.gate.observe(acc.Block, acc.PC) {
		return nil
	}
	if p.ctx == nil {
		restore := tensor.SetGradEnabled(false)
		defer tensor.SetGradEnabled(restore)
		out, err := deltaPrefetches(p.model, p.gate.hist.Sample(0), acc.Block, p.opt.Degree)
		p.health = keepFirst(p.health, err)
		return out
	}
	defer p.ctx.Reset()
	s := p.gate.hist.SampleInto(&p.scratch, 0)
	var err error
	if p.sess != nil {
		scores := p.sess.DeltaScores(p.model, s)
		p.out, err = models.AppendDeltaTargets(p.ctx, scores, acc.Block, p.opt.Degree, p.out[:0])
	} else {
		p.out, err = deltaPrefetchesAppend(p.ctx, p.model, s, acc.Block, p.opt.Degree, p.out[:0])
	}
	p.health = keepFirst(p.health, err)
	return p.out
}

// Voyager is the Voyager baseline (Shi et al. 2021): two models — a page
// predictor and an offset/delta predictor — whose predictions compose into
// prefetch addresses. The predicted page is based at its last-seen offset
// (tracked per page), where the offset model's deltas apply.
type Voyager struct {
	opt        MLOptions
	pageModel  models.PageModel
	deltaModel models.DeltaModel
	gate       inferGate
	ctx        *tensor.Ctx
	sess       *BatchSession
	scratch    models.Sample
	out        []uint64
	pages      []uint64
	lastOffset map[uint64]uint64
	fifo       []uint64
	health     error
}

// NewVoyager wraps trained page and delta models (expected: LSTM-based).
func NewVoyager(pageModel models.PageModel, deltaModel models.DeltaModel, historyT int, opt MLOptions) *Voyager {
	opt = opt.withDefaults()
	return &Voyager{
		opt:        opt,
		pageModel:  pageModel,
		deltaModel: deltaModel,
		gate:       newInferGate(historyT, opt.InferEvery),
		ctx:        opt.newCtx(),
		sess:       opt.newSession(),
		lastOffset: make(map[uint64]uint64),
	}
}

// Name implements sim.Prefetcher.
func (p *Voyager) Name() string { return "voyager" }

// InferenceLatencyCycles implements sim.InferenceLatency.
func (p *Voyager) InferenceLatencyCycles() uint64 { return p.opt.LatencyCycles }

// Health implements sim.HealthReporter.
func (p *Voyager) Health() error { return p.health }

// JoinBatch registers this prefetcher's session with the shared batch
// scheduler's flush watermark (no-op without a scheduler).
func (p *Voyager) JoinBatch() { p.sess.join() }

// LeaveBatch unregisters the session (no-op without a scheduler).
func (p *Voyager) LeaveBatch() { p.sess.leave() }

// Operate implements sim.Prefetcher.
func (p *Voyager) Operate(acc sim.LLCAccess) []uint64 {
	page := trace.PageOfBlock(acc.Block)
	if _, seen := p.lastOffset[page]; !seen {
		if len(p.fifo) >= 4096 {
			delete(p.lastOffset, p.fifo[0])
			p.fifo = p.fifo[1:]
		}
		p.fifo = append(p.fifo, page)
	}
	p.lastOffset[page] = trace.BlockOffset(acc.Block)
	if !p.gate.observe(acc.Block, acc.PC) {
		return nil
	}
	if p.ctx == nil {
		restore := tensor.SetGradEnabled(false)
		defer tensor.SetGradEnabled(restore)
		return p.predict(nil, p.gate.hist.Sample(0), acc.Block, nil)
	}
	defer p.ctx.Reset()
	s := p.gate.hist.SampleInto(&p.scratch, 0)
	p.out = p.predict(p.ctx, s, acc.Block, p.out[:0])
	return p.out
}

// predict composes the page and delta model outputs into prefetch targets:
// half the degree goes spatially at the current block, half at the
// predicted page. Screening failures are recorded as the prefetcher's first
// health defect. With a batch session, both models route through the shared
// scheduler; the delta score vector is computed once and decoded at both
// bases (the sequential path computes it twice with identical results).
func (p *Voyager) predict(c *tensor.Ctx, s *models.Sample, block uint64, out []uint64) []uint64 {
	if p.sess != nil {
		return p.predictBatch(s, block, out)
	}
	half := p.opt.Degree / 2
	var err error
	out, err = deltaPrefetchesAppend(c, p.deltaModel, s, block, half, out)
	p.health = keepFirst(p.health, err)
	p.pages = models.TopPagesWith(c, p.pageModel, s, 1, p.pages[:0])
	for _, pg := range p.pages {
		off, ok := p.lastOffset[pg]
		if !ok {
			off = 0
		}
		base := trace.BlockOfPageOffset(pg, off)
		out = append(out, base)
		rest := p.opt.Degree - len(out)
		if rest > 0 {
			out, err = deltaPrefetchesAppend(c, p.deltaModel, s, base, rest, out)
			p.health = keepFirst(p.health, err)
		}
	}
	if len(out) > p.opt.Degree {
		out = out[:p.opt.Degree]
	}
	return out
}

// predictBatch is predict through the shared batch scheduler. The returned
// score slice is session-owned and stable across the TopPages call, so one
// inference serves both the spatial and the page-relative decode.
func (p *Voyager) predictBatch(s *models.Sample, block uint64, out []uint64) []uint64 {
	half := p.opt.Degree / 2
	scores := p.sess.DeltaScores(p.deltaModel, s)
	var err error
	out, err = models.AppendDeltaTargets(p.ctx, scores, block, half, out)
	p.health = keepFirst(p.health, err)
	p.pages = p.sess.TopPages(p.pageModel, s, 1, p.pages[:0])
	for _, pg := range p.pages {
		off, ok := p.lastOffset[pg]
		if !ok {
			off = 0
		}
		base := trace.BlockOfPageOffset(pg, off)
		out = append(out, base)
		if rest := p.opt.Degree - len(out); rest > 0 {
			out, err = models.AppendDeltaTargets(p.ctx, scores, base, rest, out)
			p.health = keepFirst(p.health, err)
		}
	}
	if len(out) > p.opt.Degree {
		out = out[:p.opt.Degree]
	}
	return out
}

// keepFirst retains the first non-nil error a prefetcher observes, so Health
// reports the original defect rather than the most recent repetition.
func keepFirst(health, err error) error {
	if health != nil {
		return health
	}
	return err
}

// deltaPrefetches converts a delta model's top-k classes into block
// addresses relative to base (the allocating legacy entry point).
func deltaPrefetches(m models.DeltaModel, s *models.Sample, base uint64, k int) ([]uint64, error) {
	if k <= 0 {
		return nil, nil
	}
	return deltaPrefetchesAppend(nil, m, s, base, k, make([]uint64, 0, k))
}

// deltaPrefetchesAppend appends up to k prefetch targets derived from the
// delta model's top classes to dst. With a non-nil ctx the scores, ranking
// scratch and result all reuse per-prefetcher buffers. Scores are screened
// for non-finite values; on a screening failure dst is returned unmodified
// alongside the error so callers record the health defect instead of issuing
// prefetches ranked by NaN.
func deltaPrefetchesAppend(c *tensor.Ctx, m models.DeltaModel, s *models.Sample, base uint64, k int, dst []uint64) ([]uint64, error) {
	if k <= 0 {
		return dst, nil
	}
	return models.AppendDeltaTargets(c, models.DeltaScoresWith(c, m, s), base, k, dst)
}
