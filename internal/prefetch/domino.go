package prefetch

import "mpgraph/internal/sim"

// DominoConfig parameterises the Domino temporal prefetcher.
type DominoConfig struct {
	// MaxPairs bounds the history table (FIFO eviction).
	MaxPairs int
	// Degree is the replay-chain length.
	Degree int
}

// DefaultDominoConfig mirrors the HPCA 2018 proposal at degree 6.
func DefaultDominoConfig() DominoConfig { return DominoConfig{MaxPairs: 16384, Degree: 6} }

// Domino models the Domino temporal prefetcher (Bakhshalipour et al., HPCA
// 2018): where ISB indexes its history with one address, Domino indexes
// with the pair of the last two misses, which disambiguates interleaved
// streams better — at the cost of needing two warm accesses after every
// divergence. It is the natural stronger rule-based temporal baseline next
// to ISB.
type Domino struct {
	cfg DominoConfig
	// successor maps (prev2, prev1) to the next block; a single-address
	// fallback map handles cold pairs.
	successor map[[2]uint64]uint64
	fallback  map[uint64]uint64
	fifo      [][2]uint64
	prev1     uint64
	prev2     uint64
	warm      int
}

// NewDomino builds the prefetcher.
func NewDomino(cfg DominoConfig) *Domino {
	return &Domino{
		cfg:       cfg,
		successor: make(map[[2]uint64]uint64),
		fallback:  make(map[uint64]uint64),
	}
}

// Name implements sim.Prefetcher.
func (p *Domino) Name() string { return "domino" }

// Operate implements sim.Prefetcher.
func (p *Domino) Operate(acc sim.LLCAccess) []uint64 {
	// Record.
	if p.warm >= 2 {
		key := [2]uint64{p.prev2, p.prev1}
		if _, exists := p.successor[key]; !exists {
			if len(p.fifo) >= p.cfg.MaxPairs {
				delete(p.successor, p.fifo[0])
				p.fifo = p.fifo[1:]
			}
			p.fifo = append(p.fifo, key)
		}
		p.successor[key] = acc.Block
		p.fallback[p.prev1] = acc.Block
	} else if p.warm == 1 {
		p.fallback[p.prev1] = acc.Block
	}
	p.prev2, p.prev1 = p.prev1, acc.Block
	if p.warm < 2 {
		p.warm++
	}

	// Replay: walk the two-index chain from the current context.
	out := make([]uint64, 0, p.cfg.Degree)
	a, b := p.prev2, p.prev1
	for i := 0; i < p.cfg.Degree; i++ {
		next, ok := p.successor[[2]uint64{a, b}]
		if !ok {
			next, ok = p.fallback[b]
			if !ok {
				break
			}
		}
		if next == b {
			break
		}
		out = append(out, next)
		a, b = b, next
	}
	return out
}
