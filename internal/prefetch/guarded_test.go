package prefetch

import (
	"errors"
	"math"
	"strings"
	"testing"

	"mpgraph/internal/resilience"
	"mpgraph/internal/sim"
)

// markerFB is a fallback stub whose output is recognisable and which counts
// how many accesses it has observed (warm-standby check).
type markerFB struct{ observed int }

func (*markerFB) Name() string { return "marker-fallback" }
func (f *markerFB) Operate(a sim.LLCAccess) []uint64 {
	f.observed++
	return []uint64{a.Block + 1000}
}

// panicPF panics on every Operate call.
type panicPF struct{}

func (panicPF) Name() string                   { return "panicky" }
func (panicPF) Operate(sim.LLCAccess) []uint64 { panic("model exploded") }

// farPF returns an out-of-range block.
type farPF struct{}

func (farPF) Name() string                   { return "far" }
func (farPF) Operate(sim.LLCAccess) []uint64 { return []uint64{1 << 60} }

// sickPF reports unhealthy after sickAfter calls.
type sickPF struct {
	calls, sickAfter int
}

func (*sickPF) Name() string { return "sick" }
func (p *sickPF) Operate(a sim.LLCAccess) []uint64 {
	p.calls++
	return []uint64{a.Block + 1}
}
func (p *sickPF) Health() error {
	if p.calls > p.sickAfter {
		return errors.New("scores went non-finite")
	}
	return nil
}

func TestGuardedTransparentWhenHealthy(t *testing.T) {
	fb := &markerFB{}
	g := NewGuarded(nextLine{degree: 2}, fb, GuardConfig{}, nil)
	if g.Name() != "nextline" {
		t.Fatalf("Name = %q, want primary's", g.Name())
	}
	for i := 0; i < 50; i++ {
		out := g.Operate(sim.LLCAccess{Block: uint64(100 + i)})
		if len(out) != 2 || out[0] != uint64(100+i)+1 {
			t.Fatalf("healthy guarded output %v differs from primary", out)
		}
	}
	if g.Quarantined() || g.Violations() != 0 {
		t.Fatal("healthy primary must not accrue violations")
	}
	if fb.observed != 50 {
		t.Fatalf("fallback observed %d of 50 accesses; warm standby broken", fb.observed)
	}
}

func TestGuardedRecoversPanicsAndQuarantines(t *testing.T) {
	events := &resilience.Log{}
	fb := &markerFB{}
	g := NewGuarded(panicPF{}, fb, GuardConfig{MaxViolations: 3}, events)
	for i := 0; i < 5; i++ {
		out := g.Operate(sim.LLCAccess{Block: uint64(i)})
		if len(out) != 1 || out[0] != uint64(i)+1000 {
			t.Fatalf("access %d: output %v, want fallback's", i, out)
		}
	}
	if !g.Quarantined() {
		t.Fatal("3 panics must quarantine the primary")
	}
	if g.Violations() != 3 {
		t.Fatalf("violations = %d: quarantined primary must not run again", g.Violations())
	}
	if events.Count("prefetch/panicky", "panic-recovered") != 3 {
		t.Fatalf("events:\n%v", events.Events())
	}
	if events.Count("prefetch/panicky", "quarantine") != 1 {
		t.Fatal("missing quarantine event")
	}
	// The recovered panic detail must carry the boundary and panic value.
	for _, e := range events.Events() {
		if e.Action == "panic-recovered" && !strings.Contains(e.Detail, "model exploded") {
			t.Fatalf("panic detail lost: %q", e.Detail)
		}
	}
}

func TestGuardedScreensOutOfRange(t *testing.T) {
	events := &resilience.Log{}
	g := NewGuarded(farPF{}, &markerFB{}, GuardConfig{MaxBlock: 1 << 52, MaxViolations: 1}, events)
	out := g.Operate(sim.LLCAccess{Block: 7})
	if len(out) != 1 || out[0] != 1007 {
		t.Fatalf("out-of-range output must be replaced by fallback, got %v", out)
	}
	if !g.Quarantined() || events.Count("prefetch/far", "out-of-range") != 1 {
		t.Fatalf("quarantined=%v events=%v", g.Quarantined(), events.Events())
	}
}

func TestGuardedConsultsHealthReporter(t *testing.T) {
	events := &resilience.Log{}
	p := &sickPF{sickAfter: 10}
	g := NewGuarded(p, &markerFB{}, GuardConfig{MaxViolations: 2}, events)
	for i := 0; i < 10; i++ {
		if out := g.Operate(sim.LLCAccess{Block: uint64(i)}); out[0] != uint64(i)+1 {
			t.Fatal("healthy phase must pass primary output")
		}
	}
	for i := 10; i < 14; i++ {
		g.Operate(sim.LLCAccess{Block: uint64(i)})
	}
	if !g.Quarantined() || events.Count("prefetch/sick", "model-health") != 2 {
		t.Fatalf("quarantined=%v events=%v", g.Quarantined(), events.Events())
	}
}

func TestGuardedLatencyBudget(t *testing.T) {
	events := &resilience.Log{}
	var now int64
	clock := func() int64 {
		now += 500 // every clock read advances 500ns: each inference "takes" 500ns
		return now
	}
	g := NewGuarded(nextLine{degree: 1}, &markerFB{},
		GuardConfig{LatencyBudgetNS: 100, MaxViolations: 2, Now: clock}, events)
	g.Operate(sim.LLCAccess{Block: 1})
	g.Operate(sim.LLCAccess{Block: 2})
	if !g.Quarantined() || events.Count("prefetch/nextline", "latency-budget") != 2 {
		t.Fatalf("quarantined=%v events=%v", g.Quarantined(), events.Events())
	}
}

func TestGuardedLatencyCyclesFollowServing(t *testing.T) {
	g := NewGuarded(fixedLatencyPF2{}, nextLine{degree: 1}, GuardConfig{}, nil)
	if g.InferenceLatencyCycles() != 42 {
		t.Fatal("healthy: primary latency")
	}
	g.quarantined = true
	if g.InferenceLatencyCycles() != 0 {
		t.Fatal("quarantined: fallback latency")
	}
}

// TestGuardedDegradesOnNaNModel is the end-to-end screen: a trained
// Delta-LSTM whose parameters are poisoned with NaN must trip score
// screening, flip its Health, and be quarantined by the wrapper — while the
// BO fallback keeps serving prefetches.
func TestGuardedDegradesOnNaNModel(t *testing.T) {
	ds, delta, _ := tinyTrainedModels(t)
	T := ds.Cfg.HistoryT
	primary := NewDeltaLSTM(delta, T, MLOptions{Degree: 6})
	events := &resilience.Log{}
	g := NewGuarded(primary, NewBO(DefaultBOConfig()), GuardConfig{MaxViolations: 3}, events)

	// Healthy warm-up: primary serves.
	for i := 0; i < T+5; i++ {
		g.Operate(sim.LLCAccess{Block: uint64(4096 + i), PC: 0x40})
	}
	if g.Violations() != 0 {
		t.Fatalf("healthy model accrued %d violations", g.Violations())
	}

	// Poison the model mid-run.
	delta.Params()[0].Data[0] = math.NaN()

	var out []uint64
	for i := 0; i < 20; i++ {
		out = g.Operate(sim.LLCAccess{Block: uint64(5000 + i*2), PC: 0x40})
	}
	if !g.Quarantined() {
		t.Fatal("NaN model must be quarantined")
	}
	if primary.Health() == nil {
		t.Fatal("primary must self-report the non-finite scores")
	}
	if events.Count("prefetch/delta-lstm", "model-health") == 0 ||
		events.Count("prefetch/delta-lstm", "quarantine") != 1 {
		t.Fatalf("events:\n%v", events.Events())
	}
	// BO has been warm the whole run: it still issues prefetches.
	if len(out) == 0 {
		t.Fatal("fallback must keep serving after quarantine")
	}
}
