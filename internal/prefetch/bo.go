// Package prefetch implements the baseline prefetchers the paper compares
// MPGraph against (Section 5.4.1): the rule-based Best-Offset (BO) and
// Irregular Stream Buffer (ISB), and the ML-based Delta-LSTM, Voyager, and
// TransFetch, all behind the sim.Prefetcher interface.
package prefetch

import (
	"mpgraph/internal/sim"
)

// BOConfig parameterises the Best-Offset prefetcher (Michaud, HPCA 2016).
type BOConfig struct {
	// MaxOffset bounds the candidate offset magnitude (both signs tested).
	MaxOffset int
	// RoundLength is the number of accesses per learning round.
	RoundLength int
	// ScoreMax ends a round early when any offset reaches it.
	ScoreMax int
	// RRSize is the recent-requests table size (power of two).
	RRSize int
	// Degree is how many multiples of the best offset to issue (the paper
	// sets all baselines to degree 6).
	Degree int
}

// DefaultBOConfig mirrors the original proposal at degree 6.
func DefaultBOConfig() BOConfig {
	return BOConfig{MaxOffset: 32, RoundLength: 128, ScoreMax: 31, RRSize: 256, Degree: 6}
}

// BO is the Best-Offset prefetcher: it scores candidate offsets d by
// checking whether X-d was recently requested (meaning a d-offset prefetch
// issued back then would have been timely) and prefetches multiples of the
// winning offset.
type BO struct {
	cfg        BOConfig
	rr         []uint64 // recent requests, direct-mapped by block
	offsets    []int64
	scores     []int
	roundCount int
	best       int64
}

// NewBO builds the prefetcher.
func NewBO(cfg BOConfig) *BO {
	b := &BO{cfg: cfg, rr: make([]uint64, cfg.RRSize), best: 1}
	for d := 1; d <= cfg.MaxOffset; d++ {
		b.offsets = append(b.offsets, int64(d), int64(-d))
	}
	b.scores = make([]int, len(b.offsets))
	return b
}

// Name implements sim.Prefetcher.
func (b *BO) Name() string { return "bo" }

// BestOffset exposes the current winner (tests).
func (b *BO) BestOffset() int64 { return b.best }

func (b *BO) rrIndex(block uint64) int { return int(block) & (b.cfg.RRSize - 1) }

// Operate implements sim.Prefetcher.
func (b *BO) Operate(acc sim.LLCAccess) []uint64 {
	x := acc.Block
	// Score offsets against the recent-requests table. The round ends only
	// after the full scoring pass so every offset sees the same number of
	// scoring opportunities; the winner on a ScoreMax tie is the
	// smallest-index (smallest-magnitude) offset, as in the original.
	trigger := -1
	for i, d := range b.offsets {
		base := uint64(int64(x) - d)
		if b.rr[b.rrIndex(base)] == base {
			b.scores[i]++
			if b.scores[i] >= b.cfg.ScoreMax && trigger < 0 {
				trigger = i
			}
		}
	}
	b.roundCount++
	if trigger >= 0 {
		b.endRound(trigger)
	} else if b.roundCount >= b.cfg.RoundLength {
		bestIdx := 0
		for i, s := range b.scores {
			if s > b.scores[bestIdx] {
				bestIdx = i
			}
		}
		b.endRound(bestIdx)
	}
	// Record the request (the original records the base of completed
	// fills; block granularity suffices here).
	b.rr[b.rrIndex(x)] = x

	out := make([]uint64, 0, b.cfg.Degree)
	for k := 1; k <= b.cfg.Degree; k++ {
		target := int64(x) + b.best*int64(k)
		if target < 0 {
			break
		}
		out = append(out, uint64(target))
	}
	return out
}

func (b *BO) endRound(bestIdx int) {
	if b.scores[bestIdx] > 0 {
		b.best = b.offsets[bestIdx]
	}
	for i := range b.scores {
		b.scores[i] = 0
	}
	b.roundCount = 0
}
