package prefetch

import (
	"testing"

	"mpgraph/internal/models"
	"mpgraph/internal/sim"
	"mpgraph/internal/trace"
)

func TestBOLearnsPositiveStride(t *testing.T) {
	bo := NewBO(DefaultBOConfig())
	var last []uint64
	for i := 0; i < 2000; i++ {
		last = bo.Operate(sim.LLCAccess{Block: uint64(i) * 3})
	}
	if bo.BestOffset() != 3 {
		t.Fatalf("best offset = %d, want 3", bo.BestOffset())
	}
	if len(last) != 6 {
		t.Fatalf("degree-6 BO issued %d", len(last))
	}
	base := uint64(1999 * 3)
	for k, b := range last {
		if b != base+uint64(3*(k+1)) {
			t.Fatalf("prefetch %d = %d, want %d", k, b, base+uint64(3*(k+1)))
		}
	}
}

func TestBOLearnsNegativeStride(t *testing.T) {
	bo := NewBO(DefaultBOConfig())
	start := uint64(1 << 20)
	for i := 0; i < 2000; i++ {
		bo.Operate(sim.LLCAccess{Block: start - uint64(i)*2})
	}
	if bo.BestOffset() != -2 {
		t.Fatalf("best offset = %d, want -2", bo.BestOffset())
	}
}

func TestBOClampsAtZero(t *testing.T) {
	bo := NewBO(DefaultBOConfig())
	for i := 0; i < 500; i++ {
		bo.Operate(sim.LLCAccess{Block: uint64(500-i) * 2})
	}
	out := bo.Operate(sim.LLCAccess{Block: 1})
	for _, b := range out {
		if b > 1<<40 {
			t.Fatalf("wrapped prefetch %d", b)
		}
	}
}

func TestBOInSimulatorImprovesIPC(t *testing.T) {
	var tr []trace.Access
	for i := 0; i < 40000; i++ {
		tr = append(tr, trace.Access{Addr: uint64(i) * 64 * 2, Gap: 2})
	}
	cfg := sim.DefaultConfig()
	base, _ := sim.NewEngine(cfg, nil)
	mb := base.Run(tr)
	eng, _ := sim.NewEngine(cfg, NewBO(DefaultBOConfig()))
	mp := eng.Run(tr)
	if mp.IPCImprovement(mb) <= 0.02 {
		t.Fatalf("BO should clearly improve strided IPC: %.4f vs %.4f", mp.IPC(), mb.IPC())
	}
	if mp.Accuracy() < 0.6 {
		t.Fatalf("BO accuracy on stride = %.3f", mp.Accuracy())
	}
}

func TestISBReplaysTemporalStream(t *testing.T) {
	isb := NewISB(DefaultISBConfig())
	seq := []uint64{100, 5000, 42, 777, 31337}
	pc := uint64(0x400000)
	// Two passes record the successor chain; third pass replays it.
	var out []uint64
	for pass := 0; pass < 3; pass++ {
		for _, b := range seq {
			out = isb.Operate(sim.LLCAccess{Block: b, PC: pc})
		}
	}
	// After the last element, the successor of 31337 is 100 (wrap).
	if len(out) == 0 || out[0] != seq[0] {
		t.Fatalf("ISB replay after chain = %v, want head %d", out, seq[0])
	}
	// From the first element the full chain should replay.
	out = isb.Operate(sim.LLCAccess{Block: seq[0], PC: pc})
	want := []uint64{5000, 42, 777, 31337, 100, 5000}
	for i := range want {
		if i >= len(out) || out[i] != want[i] {
			t.Fatalf("chain %v, want prefix %v", out, want)
		}
	}
}

func TestISBPCLocalization(t *testing.T) {
	isb := NewISB(DefaultISBConfig())
	// Interleaved streams on two PCs: correlations must not cross.
	for i := 0; i < 50; i++ {
		isb.Operate(sim.LLCAccess{Block: uint64(1000 + i%5), PC: 0xA})
		isb.Operate(sim.LLCAccess{Block: uint64(2000 + i%5), PC: 0xB})
	}
	out := isb.Operate(sim.LLCAccess{Block: 1000, PC: 0xA})
	for _, b := range out {
		if b >= 2000 && b < 3000 {
			t.Fatalf("cross-PC correlation leaked: %v", out)
		}
	}
}

func TestISBBoundedTable(t *testing.T) {
	isb := NewISB(ISBConfig{MaxPairs: 8, Degree: 2})
	for i := 0; i < 1000; i++ {
		isb.Operate(sim.LLCAccess{Block: uint64(i), PC: 7})
	}
	if len(isb.successor) > 8 {
		t.Fatalf("successor table grew to %d", len(isb.successor))
	}
}

// tinyTrainedModels trains the small baseline models on a short synthetic
// stream and returns them with the dataset (testing.TB: the Operate
// benchmarks share it).
func tinyTrainedModels(t testing.TB) (*models.Dataset, models.DeltaModel, models.PageModel) {
	t.Helper()
	cfg := models.SmallConfig()
	var stream []trace.Access
	block := uint64(1 << 20)
	for i := 0; i < 2500; i++ {
		stream = append(stream, trace.Access{Addr: trace.BlockAddr(block), PC: 0x40 * uint64(i%3)})
		block += uint64(1 + i%2)
	}
	ds, err := models.BuildDataset(cfg, stream, models.DatasetOptions{})
	if err != nil {
		t.Fatal(err)
	}
	delta := models.NewLSTMDelta(cfg, 3)
	if err := models.TrainDelta(delta, ds, models.TrainOptions{Epochs: 1, Seed: 1, MaxSamplesPerEpoch: 100}); err != nil {
		t.Fatal(err)
	}
	page := models.NewLSTMPage(cfg, ds.Pages, ds.PCs, 5)
	if err := models.TrainPage(page, ds, models.TrainOptions{Epochs: 1, Seed: 1, MaxSamplesPerEpoch: 60}); err != nil {
		t.Fatal(err)
	}
	return ds, delta, page
}

func TestMLPrefetchersOperate(t *testing.T) {
	ds, delta, page := tinyTrainedModels(t)
	T := ds.Cfg.HistoryT
	pfs := []sim.Prefetcher{
		NewDeltaLSTM(delta, T, MLOptions{Degree: 6}),
		NewTransFetch(delta, T, MLOptions{Degree: 6}),
		NewVoyager(page, delta, T, MLOptions{Degree: 6}),
	}
	for _, pf := range pfs {
		var out []uint64
		for i := 0; i < T+5; i++ {
			out = pf.Operate(sim.LLCAccess{Block: uint64(4096 + i), PC: 0x40})
		}
		if len(out) == 0 {
			t.Fatalf("%s: no prefetches after warm-up", pf.Name())
		}
		if len(out) > 6 {
			t.Fatalf("%s: degree exceeded: %d", pf.Name(), len(out))
		}
	}
}

func TestMLWarmupNoPrefetch(t *testing.T) {
	ds, delta, _ := tinyTrainedModels(t)
	pf := NewDeltaLSTM(delta, ds.Cfg.HistoryT, MLOptions{})
	if out := pf.Operate(sim.LLCAccess{Block: 1}); out != nil {
		t.Fatal("cold prefetcher must stay silent")
	}
}

func TestInferEveryThrottle(t *testing.T) {
	ds, delta, _ := tinyTrainedModels(t)
	T := ds.Cfg.HistoryT
	pf := NewTransFetch(delta, T, MLOptions{Degree: 4, InferEvery: 4})
	issued := 0
	for i := 0; i < 4*20+T; i++ {
		if out := pf.Operate(sim.LLCAccess{Block: uint64(i), PC: 1}); len(out) > 0 {
			issued++
		}
	}
	if issued == 0 || issued > 25 {
		t.Fatalf("throttled prefetcher issued on %d of ~89 accesses", issued)
	}
}

func TestInferenceLatencyReported(t *testing.T) {
	ds, delta, page := tinyTrainedModels(t)
	T := ds.Cfg.HistoryT
	for _, pf := range []sim.InferenceLatency{
		NewDeltaLSTM(delta, T, MLOptions{LatencyCycles: 99}),
		NewTransFetch(delta, T, MLOptions{LatencyCycles: 99}),
		NewVoyager(page, delta, T, MLOptions{LatencyCycles: 99}),
	} {
		if pf.InferenceLatencyCycles() != 99 {
			t.Fatal("latency not reported")
		}
	}
}

func TestVLDPLearnsAlternatingDeltas(t *testing.T) {
	v := NewVLDP(DefaultVLDPConfig())
	// Within one page: deltas alternate +1, +2 — a pattern a single-delta
	// table mispredicts but a history-length-2 table nails.
	block := trace.BlockOfPageOffset(100, 0)
	var out []uint64
	deltas := []uint64{1, 2}
	for i := 0; i < 40; i++ {
		out = v.Operate(sim.LLCAccess{Block: block})
		block += deltas[i%2]
	}
	if len(out) == 0 {
		t.Fatal("no predictions after training")
	}
	// After the final +2 step the history ends ...,1,2 wait: reconstruct —
	// the returned chain must alternate deltas, not repeat one.
	d1 := int64(out[0]) - int64(block-deltas[(40-1)%2])
	if len(out) >= 2 {
		d2 := int64(out[1]) - int64(out[0])
		if d1 == d2 {
			t.Fatalf("chain repeats a single delta (%d,%d); should alternate", d1, d2)
		}
	}
}

func TestVLDPPageLocality(t *testing.T) {
	v := NewVLDP(VLDPConfig{HistoryLen: 2, TableSize: 64, Degree: 2})
	// Two pages with independent strides must keep separate last-block
	// state.
	a := trace.BlockOfPageOffset(10, 0)
	b := trace.BlockOfPageOffset(20, 0)
	for i := 0; i < 20; i++ {
		v.Operate(sim.LLCAccess{Block: a})
		v.Operate(sim.LLCAccess{Block: b})
		a++
		b += 2
	}
	outA := v.Operate(sim.LLCAccess{Block: a})
	if len(outA) == 0 || outA[0] != a+1 {
		t.Fatalf("page A stride prediction = %v, want %d", outA, a+1)
	}
}

func TestVLDPBoundedTables(t *testing.T) {
	v := NewVLDP(VLDPConfig{HistoryLen: 2, TableSize: 8, Degree: 2})
	rngBlock := uint64(0)
	for i := 0; i < 5000; i++ {
		rngBlock += uint64(i%97 + 1)
		v.Operate(sim.LLCAccess{Block: rngBlock})
	}
	for k, tbl := range v.tables {
		if len(tbl) > 8 {
			t.Fatalf("table %d grew to %d", k, len(tbl))
		}
	}
	if len(v.pages) > v.pageLimit {
		t.Fatal("page table unbounded")
	}
}

func TestDominoReplaysAndDisambiguates(t *testing.T) {
	p := NewDomino(DefaultDominoConfig())
	// Two interleaved contexts: (A,X) -> B and (A,Y) -> C. A single-index
	// replayer would conflate them; the pair index must not.
	seq := []uint64{7, 100, 200, 7, 111, 300}
	for pass := 0; pass < 4; pass++ {
		for _, b := range seq {
			p.Operate(sim.LLCAccess{Block: b})
		}
	}
	// Context (7,100): next must be 200.
	p.Operate(sim.LLCAccess{Block: 7})
	out := p.Operate(sim.LLCAccess{Block: 100})
	if len(out) == 0 || out[0] != 200 {
		t.Fatalf("context (7,100) -> %v, want 200 first", out)
	}
	// Context (7,111): next must be 300.
	p.Operate(sim.LLCAccess{Block: 7})
	out = p.Operate(sim.LLCAccess{Block: 111})
	if len(out) == 0 || out[0] != 300 {
		t.Fatalf("context (7,111) -> %v, want 300 first", out)
	}
}

func TestDominoBounded(t *testing.T) {
	p := NewDomino(DominoConfig{MaxPairs: 16, Degree: 2})
	for i := 0; i < 2000; i++ {
		p.Operate(sim.LLCAccess{Block: uint64(i * 3)})
	}
	if len(p.successor) > 16 {
		t.Fatalf("pair table grew to %d", len(p.successor))
	}
}

func TestIMPDetectsIndirectPattern(t *testing.T) {
	p := NewIMP(DefaultIMPConfig())
	idxPC, indPC := uint64(0x400000), uint64(0x400040)
	idxBase := uint64(1 << 10)
	indBase := int64(1 << 20)
	coeff := int64(3)
	var out []uint64
	var slot int64
	for i := 0; i < 30; i++ {
		p.Operate(sim.LLCAccess{Block: idxBase + uint64(i), PC: idxPC})
		slot = int64(i)
		out = p.Operate(sim.LLCAccess{Block: uint64(indBase + coeff*slot), PC: indPC})
	}
	if len(out) == 0 {
		t.Fatal("IMP never predicted")
	}
	// Note: the stream's slot counter only advances on streaming steps, so
	// recover the expected next target from IMP's own observed pairing: the
	// predictions must continue the linear pattern with the learned coeff.
	if int64(out[0])-int64(uint64(indBase+coeff*slot)) != coeff {
		t.Fatalf("first prediction %d does not continue the coeff-%d pattern from %d", out[0], coeff, indBase+coeff*slot)
	}
	for k := 1; k < len(out); k++ {
		if int64(out[k])-int64(out[k-1]) != coeff {
			t.Fatalf("prediction chain not linear: %v", out)
		}
	}
}

func TestIMPIgnoresRandomPairs(t *testing.T) {
	p := NewIMP(DefaultIMPConfig())
	rng := uint64(12345)
	issued := 0
	for i := 0; i < 500; i++ {
		p.Operate(sim.LLCAccess{Block: uint64(1000 + i), PC: 0xA})
		rng = rng*6364136223846793005 + 1442695040888963407
		if out := p.Operate(sim.LLCAccess{Block: rng % (1 << 30), PC: 0xB}); len(out) > 0 {
			issued += len(out)
		}
	}
	if issued > 200 {
		t.Fatalf("IMP issued %d prefetches on random indirection; confidence too loose", issued)
	}
}

// randomPF issues useless prefetches at distant addresses.
type randomPF struct{ n uint64 }

func (randomPF) Name() string { return "random" }
func (r *randomPF) Operate(sim.LLCAccess) []uint64 {
	out := make([]uint64, 6)
	for i := range out {
		r.n = r.n*6364136223846793005 + 1442695040888963407
		out[i] = r.n % (1 << 40)
	}
	return out
}

func TestThrottleLowersDegreeOnUselessPrefetches(t *testing.T) {
	th := NewThrottle(&randomPF{n: 7}, DefaultThrottleConfig())
	for i := 0; i < 6000; i++ {
		th.Operate(sim.LLCAccess{Block: uint64(i)})
	}
	if th.Degree() != 1 {
		t.Fatalf("degree = %d after useless epochs, want 1", th.Degree())
	}
}

func TestThrottleKeepsDegreeOnAccuratePrefetches(t *testing.T) {
	cfg := DefaultThrottleConfig()
	th := NewThrottle(nextLine{degree: 6}, cfg)
	for i := 0; i < 6000; i++ {
		th.Operate(sim.LLCAccess{Block: uint64(i)})
	}
	if th.Degree() != cfg.MaxDegree {
		t.Fatalf("degree = %d on perfect stream, want %d", th.Degree(), cfg.MaxDegree)
	}
}

func TestThrottleRecovers(t *testing.T) {
	// Phase 1: random addresses (degree collapses). Phase 2: sequential
	// (degree climbs back).
	th := NewThrottle(nextLine{degree: 6}, DefaultThrottleConfig())
	rng := uint64(3)
	for i := 0; i < 4000; i++ {
		rng = rng*6364136223846793005 + 1442695040888963407
		th.Operate(sim.LLCAccess{Block: rng % (1 << 40)})
	}
	low := th.Degree()
	if low >= 6 {
		t.Fatalf("degree should have dropped, got %d", low)
	}
	for i := 0; i < 8000; i++ {
		th.Operate(sim.LLCAccess{Block: uint64(1<<20 + i)})
	}
	if th.Degree() <= low {
		t.Fatalf("degree should recover: %d -> %d", low, th.Degree())
	}
}

func TestThrottleForwardsNameAndLatency(t *testing.T) {
	th := NewThrottle(fixedLatencyPF2{}, ThrottleConfig{})
	if th.Name() != "fixed+throttle" {
		t.Fatalf("name %q", th.Name())
	}
	if th.InferenceLatencyCycles() != 42 {
		t.Fatal("latency not forwarded")
	}
	plain := NewThrottle(nextLine{degree: 2}, ThrottleConfig{})
	if plain.InferenceLatencyCycles() != 0 {
		t.Fatal("plain inner has no latency")
	}
}

type fixedLatencyPF2 struct{}

func (fixedLatencyPF2) Name() string                   { return "fixed" }
func (fixedLatencyPF2) Operate(sim.LLCAccess) []uint64 { return nil }
func (fixedLatencyPF2) InferenceLatencyCycles() uint64 { return 42 }

// nextLine test helper shared with the simulator tests.
type nextLine struct{ degree int }

func (nextLine) Name() string { return "nextline" }
func (p nextLine) Operate(a sim.LLCAccess) []uint64 {
	var out []uint64
	for d := 1; d <= p.degree; d++ {
		out = append(out, a.Block+uint64(d))
	}
	return out
}

func TestSMSLearnsFootprints(t *testing.T) {
	p := NewSMS(DefaultSMSConfig())
	// A code site touches offsets {0, 3, 7} of many regions; after the
	// pattern is committed, triggering a new region at offset 0 with the
	// same PC must replay offsets 3 and 7.
	pc := uint64(0x400000)
	region := uint64(1000)
	for r := 0; r < 70; r++ { // > ActiveRegions so generations commit
		base := (region + uint64(r)) * 32
		p.Operate(sim.LLCAccess{Block: base + 0, PC: pc})
		p.Operate(sim.LLCAccess{Block: base + 3, PC: pc})
		p.Operate(sim.LLCAccess{Block: base + 7, PC: pc})
	}
	newBase := uint64(99999) * 32
	out := p.Operate(sim.LLCAccess{Block: newBase + 0, PC: pc})
	want := map[uint64]bool{newBase + 3: true, newBase + 7: true}
	if len(out) != 2 || !want[out[0]] || !want[out[1]] {
		t.Fatalf("footprint replay = %v, want offsets 3 and 7", out)
	}
}

func TestSMSSignatureSelectivity(t *testing.T) {
	p := NewSMS(DefaultSMSConfig())
	for r := 0; r < 70; r++ {
		base := uint64(r) * 32
		p.Operate(sim.LLCAccess{Block: base, PC: 0xA})
		p.Operate(sim.LLCAccess{Block: base + 5, PC: 0xA})
	}
	// A different trigger PC must not replay PC 0xA's footprint.
	out := p.Operate(sim.LLCAccess{Block: 88888 * 32, PC: 0xB})
	if len(out) != 0 {
		t.Fatalf("foreign signature replayed %v", out)
	}
}

func TestSMSConfigSanitised(t *testing.T) {
	p := NewSMS(SMSConfig{RegionBlocks: 33})
	if p.cfg.RegionBlocks != 32 {
		t.Fatal("bad region size must fall back to 32")
	}
}

func TestMarkovReplaysChains(t *testing.T) {
	p := NewMarkov(DefaultMarkovConfig())
	seq := []uint64{10, 20, 30, 40}
	for pass := 0; pass < 5; pass++ {
		for _, b := range seq {
			p.Operate(sim.LLCAccess{Block: b})
		}
	}
	out := p.Operate(sim.LLCAccess{Block: 10})
	if len(out) == 0 || out[0] != 20 {
		t.Fatalf("first successor of 10 = %v, want 20", out)
	}
	// Breadth-first expansion should continue the chain.
	found30 := false
	for _, b := range out {
		if b == 30 {
			found30 = true
		}
	}
	if !found30 {
		t.Fatalf("chain expansion missing 30: %v", out)
	}
}

func TestMarkovFrequencyOrdering(t *testing.T) {
	p := NewMarkov(MarkovConfig{Successors: 2, TableSize: 64, Degree: 2})
	// 5 -> 6 three times, 5 -> 7 once: 6 must rank first.
	for _, next := range []uint64{6, 7, 6, 6} {
		p.Operate(sim.LLCAccess{Block: 5})
		p.Operate(sim.LLCAccess{Block: next})
	}
	out := p.Operate(sim.LLCAccess{Block: 5})
	if len(out) == 0 || out[0] != 6 {
		t.Fatalf("most frequent successor must rank first: %v", out)
	}
}

func TestMarkovBounded(t *testing.T) {
	p := NewMarkov(MarkovConfig{Successors: 2, TableSize: 8, Degree: 2})
	for i := 0; i < 1000; i++ {
		p.Operate(sim.LLCAccess{Block: uint64(i * 17)})
	}
	if len(p.table) > 8 {
		t.Fatalf("table grew to %d", len(p.table))
	}
}

func TestEnsembleRewardsUsefulComponent(t *testing.T) {
	// Component 0: accurate next-line; component 1: useless random.
	e := NewEnsemble(DefaultEnsembleConfig(), nextLine{degree: 6}, &randomPF{n: 3})
	for i := 0; i < 8000; i++ {
		e.Operate(sim.LLCAccess{Block: uint64(i)})
	}
	credits := e.Credits()
	if credits[0] <= 2*credits[1] {
		t.Fatalf("useful component must dominate: %v", credits)
	}
	// The budget is respected and the useful component fills most of it.
	out := e.Operate(sim.LLCAccess{Block: 1 << 20})
	if len(out) == 0 || len(out) > 6 {
		t.Fatalf("budget violated: %d", len(out))
	}
}

func TestEnsembleDedupsProposals(t *testing.T) {
	e := NewEnsemble(EnsembleConfig{Degree: 4}, nextLine{degree: 4}, nextLine{degree: 4})
	var out []uint64
	for i := 0; i < 10; i++ {
		out = e.Operate(sim.LLCAccess{Block: uint64(100 + i)})
	}
	seen := map[uint64]bool{}
	for _, b := range out {
		if seen[b] {
			t.Fatalf("duplicate prefetch %d in %v", b, out)
		}
		seen[b] = true
	}
}

func TestEnsembleLatencyIsWorstComponent(t *testing.T) {
	e := NewEnsemble(EnsembleConfig{}, fixedLatencyPF2{}, nextLine{degree: 1})
	if e.InferenceLatencyCycles() != 42 {
		t.Fatal("ensemble latency must be the slowest component's")
	}
	if e.Name() != "ensemble" {
		t.Fatal("name")
	}
}
