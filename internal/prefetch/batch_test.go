package prefetch

import (
	"sync"
	"testing"

	"mpgraph/internal/models"
	"mpgraph/internal/sim"
)

// batchPF is the surface a batched sweep worker drives.
type batchPF interface {
	sim.Prefetcher
	JoinBatch()
	LeaveBatch()
}

// buildWorkerPF gives worker w a fixed prefetcher identity (cycling the three
// ML baselines so every scheduler round mixes delta and page models).
func buildWorkerPF(w int, delta models.DeltaModel, page models.PageModel, historyT int, opt MLOptions) batchPF {
	switch w % 3 {
	case 0:
		return NewDeltaLSTM(delta, historyT, opt)
	case 1:
		return NewTransFetch(delta, historyT, opt)
	default:
		return NewVoyager(page, delta, historyT, opt)
	}
}

// workerAccess is worker w's deterministic access stream, fixed by w alone so
// the worker's outputs must be identical under any worker count or batch
// size.
func workerAccess(w, i int) sim.LLCAccess {
	return sim.LLCAccess{
		Block: uint64(4096*(w+1) + i + i%3),
		PC:    0x40 * uint64((w+i)%3),
	}
}

// runBatchWorkers simulates nWorkers concurrent prefetcher sessions through
// one shared BatchScheduler and returns each worker's full output sequence.
func runBatchWorkers(t *testing.T, delta models.DeltaModel, page models.PageModel, historyT, nWorkers, batch, accesses int) [][][]uint64 {
	t.Helper()
	sched := NewBatchScheduler(batch)
	opt := MLOptions{Degree: 6, Scheduler: sched}
	results := make([][][]uint64, nWorkers)
	var wg sync.WaitGroup
	for w := 0; w < nWorkers; w++ {
		pf := buildWorkerPF(w, delta, page, historyT, opt)
		wg.Add(1)
		go func(w int, pf batchPF) {
			defer wg.Done()
			pf.JoinBatch()
			defer pf.LeaveBatch()
			for i := 0; i < accesses; i++ {
				out := pf.Operate(workerAccess(w, i))
				results[w] = append(results[w], append([]uint64(nil), out...))
			}
		}(w, pf)
	}
	wg.Wait()
	return results
}

// TestBatchSchedulerByteIdentical: worker w's prefetch sequence is a pure
// function of its own stream — the shared scheduler's grouping under
// scheduling races must never leak into results. Run with -race in CI.
func TestBatchSchedulerByteIdentical(t *testing.T) {
	ds, delta, page := tinyTrainedModels(t)
	T := ds.Cfg.HistoryT
	const accesses = 60

	ref := runBatchWorkers(t, delta, page, T, 8, 1, accesses)
	for _, nWorkers := range []int{1, 4, 8} {
		for _, batch := range []int{1, 8, 64} {
			got := runBatchWorkers(t, delta, page, T, nWorkers, batch, accesses)
			for w := 0; w < nWorkers; w++ {
				if len(got[w]) != len(ref[w]) {
					t.Fatalf("workers=%d batch=%d: worker %d made %d calls, ref %d",
						nWorkers, batch, w, len(got[w]), len(ref[w]))
				}
				for i := range got[w] {
					if len(got[w][i]) != len(ref[w][i]) {
						t.Fatalf("workers=%d batch=%d worker %d access %d: %v != ref %v",
							nWorkers, batch, w, i, got[w][i], ref[w][i])
					}
					for j := range got[w][i] {
						if got[w][i][j] != ref[w][i][j] {
							t.Fatalf("workers=%d batch=%d worker %d access %d: %v != ref %v",
								nWorkers, batch, w, i, got[w][i], ref[w][i])
						}
					}
				}
			}
		}
	}
}

// TestBatchUnjoinedSessionFlushesImmediately: a session that submits without
// Join (e.g. an ablation running a single prefetcher serially) must not
// deadlock — the watermark clamps to one outstanding request.
func TestBatchUnjoinedSessionFlushesImmediately(t *testing.T) {
	ds, delta, _ := tinyTrainedModels(t)
	T := ds.Cfg.HistoryT
	sched := NewBatchScheduler(64)
	pf := NewDeltaLSTM(delta, T, MLOptions{Degree: 6, Scheduler: sched})
	var out []uint64
	for i := 0; i < T+5; i++ {
		out = pf.Operate(workerAccess(0, i))
	}
	if len(out) == 0 {
		t.Fatal("unjoined batch session produced no prefetches after warm-up")
	}
}

// TestBatchMatchesUnbatchedPrefetches: the batch tier must agree with the
// in-process fast path on the decoded prefetch targets (both decode the same
// model through kernels equal to 1e-9, and top-k decisions on these trained
// models are stable at that tolerance).
func TestBatchMatchesUnbatchedPrefetches(t *testing.T) {
	ds, delta, page := tinyTrainedModels(t)
	T := ds.Cfg.HistoryT
	const accesses = 60
	batched := runBatchWorkers(t, delta, page, T, 3, 8, accesses)
	for w := 0; w < 3; w++ {
		pf := buildWorkerPF(w, delta, page, T, MLOptions{Degree: 6})
		for i := 0; i < accesses; i++ {
			out := pf.Operate(workerAccess(w, i))
			if len(out) != len(batched[w][i]) {
				t.Fatalf("%s access %d: batched %v vs unbatched %v", pf.Name(), i, batched[w][i], out)
			}
			for j := range out {
				if out[j] != batched[w][i][j] {
					t.Fatalf("%s access %d: batched %v vs unbatched %v", pf.Name(), i, batched[w][i], out)
				}
			}
		}
	}
}

// TestBatchSchedulerJoinLeaveChurn mirrors the serving daemon's per-chunk
// membership protocol under -race: workers repeatedly Join, run a short
// burst, and Leave (an evicted session idles between feeds), with a third
// of the fleet retiring early. However membership churns, each worker's
// output sequence must stay a pure function of its own stream — compared
// here against an unbatched reference — and every round's flush watermark
// must keep the survivors live.
func TestBatchSchedulerJoinLeaveChurn(t *testing.T) {
	ds, delta, page := tinyTrainedModels(t)
	T := ds.Cfg.HistoryT
	const (
		nWorkers = 12
		rounds   = 8
		perRound = 10
	)
	sched := NewBatchScheduler(8)
	results := make([][][]uint64, nWorkers)
	var wg sync.WaitGroup
	for w := 0; w < nWorkers; w++ {
		pf := buildWorkerPF(w, delta, page, T, MLOptions{Degree: 6, Scheduler: sched})
		// Workers 8..11 retire after shrinking round counts, so later
		// rounds run with a strictly smaller joined set.
		myRounds := rounds
		if w >= 8 {
			myRounds = rounds - (w - 7)
		}
		wg.Add(1)
		go func(w, myRounds int, pf batchPF) {
			defer wg.Done()
			i := 0
			for r := 0; r < myRounds; r++ {
				pf.JoinBatch()
				for k := 0; k < perRound; k++ {
					out := pf.Operate(workerAccess(w, i))
					results[w] = append(results[w], append([]uint64(nil), out...))
					i++
				}
				pf.LeaveBatch()
			}
		}(w, myRounds, pf)
	}
	wg.Wait()

	for w := 0; w < nWorkers; w++ {
		ref := buildWorkerPF(w, delta, page, T, MLOptions{Degree: 6})
		for i := range results[w] {
			want := ref.Operate(workerAccess(w, i))
			if len(results[w][i]) != len(want) {
				t.Fatalf("worker %d access %d: churned %v vs reference %v", w, i, results[w][i], want)
			}
			for j := range want {
				if results[w][i][j] != want[j] {
					t.Fatalf("worker %d access %d: churned %v vs reference %v", w, i, results[w][i], want)
				}
			}
		}
	}
}
