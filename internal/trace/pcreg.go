package trace

// PCRegistry assigns stable program-counter values to named static code
// sites. Real instrumentation (Intel Pin in the paper) reports the
// instruction address of each load/store; here every framework code site —
// "gpop.scatter.readVertex", "powergraph.gather.readEdge", ... — receives a
// fixed synthetic text address. Sites registered while a given phase is
// active land in that phase's code range, reproducing the PC↔phase
// clustering of Fig. 2b.
type PCRegistry struct {
	base  uint64
	step  uint64
	sites map[string]uint64
	order []string
}

// NewPCRegistry creates a registry with code starting at base.
func NewPCRegistry(base uint64) *PCRegistry {
	return &PCRegistry{base: base, step: 0x40, sites: make(map[string]uint64)}
}

// PC returns the program counter for site, allocating one on first use.
func (r *PCRegistry) PC(site string) uint64 {
	if pc, ok := r.sites[site]; ok {
		return pc
	}
	pc := r.base + uint64(len(r.order))*r.step
	r.sites[site] = pc
	r.order = append(r.order, site)
	return pc
}

// Site returns the name registered for pc, or "".
func (r *PCRegistry) Site(pc uint64) string {
	for name, p := range r.sites {
		if p == pc {
			return name
		}
	}
	return ""
}

// NumSites reports how many distinct code sites have been registered.
func (r *PCRegistry) NumSites() int { return len(r.order) }
