package trace

import "math/rand"

// Interleave merges per-core access streams into one shared-LLC order. The
// paper's challenge #2 is that "parallel executions under multi-core systems
// introduce randomness and irregularity"; this merge models it: cores make
// progress in bursts (geometric run lengths) rather than strict round-robin,
// so the LLC sees interleaved instruction streams from different cores.
//
// The merge keeps each core's internal order (program order is preserved
// per core) and is deterministic for a given seed.
func Interleave(streams [][]Access, meanBurst int, seed int64) []Access {
	if meanBurst < 1 {
		meanBurst = 1
	}
	rng := rand.New(rand.NewSource(seed))
	pos := make([]int, len(streams))
	total := 0
	for _, s := range streams {
		total += len(s)
	}
	out := make([]Access, 0, total)
	live := 0
	for _, s := range streams {
		if len(s) > 0 {
			live++
		}
	}
	for live > 0 {
		// Pick a random live core, weighted by remaining work so long
		// streams do not starve at the tail.
		c := pickLive(rng, streams, pos)
		// Burst length ~ Geometric(1/meanBurst).
		burst := 1
		for rng.Float64() < 1-1/float64(meanBurst) {
			burst++
		}
		for i := 0; i < burst && pos[c] < len(streams[c]); i++ {
			a := streams[c][pos[c]]
			a.Core = uint8(c)
			out = append(out, a)
			pos[c]++
		}
		if pos[c] >= len(streams[c]) {
			live = 0
			for ci, s := range streams {
				if pos[ci] < len(s) {
					live++
				}
			}
		}
	}
	return out
}

func pickLive(rng *rand.Rand, streams [][]Access, pos []int) int {
	remaining := 0
	for c, s := range streams {
		remaining += len(s) - pos[c]
	}
	r := rng.Intn(remaining)
	for c, s := range streams {
		left := len(s) - pos[c]
		if r < left {
			return c
		}
		r -= left
	}
	// Unreachable when remaining > 0.
	for c, s := range streams {
		if pos[c] < len(s) {
			return c
		}
	}
	return 0
}
