package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

const traceMagic = 0x4d505452 // "MPTR"

// Write serialises a trace in a compact little-endian binary format.
func Write(w io.Writer, t *Trace) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if err := binary.Write(bw, binary.LittleEndian, uint64(traceMagic)); err != nil {
		return err
	}
	for _, s := range []string{t.App, t.Framework} {
		if err := writeString(bw, s); err != nil {
			return err
		}
	}
	hdr := []uint64{uint64(t.NumPhases), uint64(len(t.IterationStarts)), uint64(len(t.Accesses))}
	for _, h := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, h); err != nil {
			return err
		}
	}
	for _, s := range t.IterationStarts {
		if err := binary.Write(bw, binary.LittleEndian, uint64(s)); err != nil {
			return err
		}
	}
	for _, a := range t.Accesses {
		var flags uint8
		if a.Write {
			flags = 1
		}
		rec := [2]uint64{a.Addr, a.PC}
		if err := binary.Write(bw, binary.LittleEndian, rec); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, [4]uint8{a.Core, a.Phase, a.Gap, flags}); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read deserialises a trace written by Write.
func Read(r io.Reader) (*Trace, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var magic uint64
	if err := binary.Read(br, binary.LittleEndian, &magic); err != nil {
		return nil, err
	}
	if magic != traceMagic {
		return nil, fmt.Errorf("trace: bad magic %#x", magic)
	}
	t := &Trace{}
	var err error
	if t.App, err = readString(br); err != nil {
		return nil, err
	}
	if t.Framework, err = readString(br); err != nil {
		return nil, err
	}
	var numPhases, numIters, numAcc uint64
	for _, p := range []*uint64{&numPhases, &numIters, &numAcc} {
		if err := binary.Read(br, binary.LittleEndian, p); err != nil {
			return nil, err
		}
	}
	if numIters > 1<<24 || numAcc > 1<<32 {
		return nil, fmt.Errorf("trace: implausible header iters=%d accesses=%d", numIters, numAcc)
	}
	t.NumPhases = int(numPhases)
	t.IterationStarts = make([]int, numIters)
	for i := range t.IterationStarts {
		var v uint64
		if err := binary.Read(br, binary.LittleEndian, &v); err != nil {
			return nil, err
		}
		t.IterationStarts[i] = int(v)
	}
	t.Accesses = make([]Access, numAcc)
	for i := range t.Accesses {
		var rec [2]uint64
		var meta [4]uint8
		if err := binary.Read(br, binary.LittleEndian, &rec); err != nil {
			return nil, err
		}
		if err := binary.Read(br, binary.LittleEndian, &meta); err != nil {
			return nil, err
		}
		t.Accesses[i] = Access{Addr: rec[0], PC: rec[1], Core: meta[0], Phase: meta[1], Gap: meta[2], Write: meta[3]&1 != 0}
	}
	return t, nil
}

func writeString(w io.Writer, s string) error {
	if err := binary.Write(w, binary.LittleEndian, uint32(len(s))); err != nil {
		return err
	}
	_, err := w.Write([]byte(s))
	return err
}

func readString(r io.Reader) (string, error) {
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return "", err
	}
	if n > 1<<16 {
		return "", fmt.Errorf("trace: implausible string length %d", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}
