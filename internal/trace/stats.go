package trace

import (
	"fmt"
	"io"
	"sort"
)

// PhaseSummary aggregates one phase's access behaviour across a trace.
type PhaseSummary struct {
	Phase       uint8
	Accesses    int
	Writes      int
	UniquePages int
	UniquePCs   int
	// WideJumpFraction is the fraction of consecutive same-phase accesses
	// whose pages differ by more than 8 (the Fig. 3 signal).
	WideJumpFraction float64
}

// Summary describes a whole trace.
type Summary struct {
	App, Framework string
	Accesses       int
	Iterations     int
	UniqueBlocks   int
	UniquePages    int
	Cores          int
	Phases         []PhaseSummary
}

// Summarize scans the trace once and aggregates per-phase statistics.
func Summarize(t *Trace) Summary {
	s := Summary{
		App:        t.App,
		Framework:  t.Framework,
		Accesses:   len(t.Accesses),
		Iterations: t.NumIterations(),
	}
	blocks := map[uint64]bool{}
	pages := map[uint64]bool{}
	cores := map[uint8]bool{}
	type phaseAgg struct {
		accesses, writes, jumps, steps int
		pages                          map[uint64]bool
		pcs                            map[uint64]bool
		lastPage                       uint64
		havePrev                       bool
	}
	byPhase := map[uint8]*phaseAgg{}
	for _, a := range t.Accesses {
		blocks[Block(a.Addr)] = true
		page := Page(a.Addr)
		pages[page] = true
		cores[a.Core] = true
		agg, ok := byPhase[a.Phase]
		if !ok {
			agg = &phaseAgg{pages: map[uint64]bool{}, pcs: map[uint64]bool{}}
			byPhase[a.Phase] = agg
		}
		agg.accesses++
		if a.Write {
			agg.writes++
		}
		agg.pages[page] = true
		agg.pcs[a.PC] = true
		if agg.havePrev {
			agg.steps++
			j := int64(page) - int64(agg.lastPage)
			if j > 8 || j < -8 {
				agg.jumps++
			}
		}
		agg.lastPage = page
		agg.havePrev = true
	}
	s.UniqueBlocks = len(blocks)
	s.UniquePages = len(pages)
	s.Cores = len(cores)
	phaseIDs := make([]int, 0, len(byPhase))
	for p := range byPhase {
		phaseIDs = append(phaseIDs, int(p))
	}
	sort.Ints(phaseIDs)
	for _, p := range phaseIDs {
		agg := byPhase[uint8(p)]
		ps := PhaseSummary{
			Phase:       uint8(p),
			Accesses:    agg.accesses,
			Writes:      agg.writes,
			UniquePages: len(agg.pages),
			UniquePCs:   len(agg.pcs),
		}
		if agg.steps > 0 {
			ps.WideJumpFraction = float64(agg.jumps) / float64(agg.steps)
		}
		s.Phases = append(s.Phases, ps)
	}
	return s
}

// Print writes a human-readable report.
func (s Summary) Print(w io.Writer) {
	fmt.Fprintf(w, "trace %s/%s: %d accesses, %d iterations, %d cores\n",
		s.Framework, s.App, s.Accesses, s.Iterations, s.Cores)
	fmt.Fprintf(w, "footprint: %d blocks (%.1f MB), %d pages\n",
		s.UniqueBlocks, float64(s.UniqueBlocks)*64/1e6, s.UniquePages)
	for _, p := range s.Phases {
		fmt.Fprintf(w, "  phase %d: %8d accesses (%4.1f%% writes), %6d pages, %3d PCs, wide jumps %.1f%%\n",
			p.Phase, p.Accesses, 100*float64(p.Writes)/float64(max(p.Accesses, 1)),
			p.UniquePages, p.UniquePCs, 100*p.WideJumpFraction)
	}
}
