// Package trace defines the memory-access trace representation shared by the
// framework simulators (which produce traces), the cache simulator (which
// consumes them and can capture the filtered LLC stream), and the ML models
// (which train on the LLC stream). It also provides the address arithmetic
// for blocks and pages, a PC registry that assigns stable program-counter
// values to static code sites, a virtual address-space allocator, and a
// multi-core stream interleaver.
package trace

import "fmt"

const (
	// BlockBits is log2 of the 64-byte cache-line size (Table 3).
	BlockBits = 6
	// PageBits is log2 of the 4 KiB page size.
	PageBits = 12
	// BlocksPerPage is the number of cache lines per page (64).
	BlocksPerPage = 1 << (PageBits - BlockBits)
)

// Access is one memory reference observed by the memory hierarchy.
type Access struct {
	// Addr is the virtual byte address.
	Addr uint64
	// PC identifies the static code site issuing the access.
	PC uint64
	// Core is the issuing core id.
	Core uint8
	// Phase is the ground-truth framework phase label (available because we
	// generate the trace; detectors must not peek except for supervised
	// training, mirroring the paper's "phase label accessible" scenario).
	Phase uint8
	// Gap is the number of non-memory instructions the core executed since
	// its previous memory access; it gives IPC a denominator.
	Gap uint8
	// Write marks stores.
	Write bool
}

// Block returns the cache-block index of a byte address.
func Block(addr uint64) uint64 { return addr >> BlockBits }

// Page returns the page index of a byte address.
func Page(addr uint64) uint64 { return addr >> PageBits }

// PageOfBlock returns the page index of a block index.
func PageOfBlock(block uint64) uint64 { return block >> (PageBits - BlockBits) }

// BlockOffset returns the block's offset within its page, in [0,BlocksPerPage).
func BlockOffset(block uint64) uint64 { return block & (BlocksPerPage - 1) }

// BlockAddr returns the first byte address of a block index.
func BlockAddr(block uint64) uint64 { return block << BlockBits }

// BlockOfPageOffset reassembles a block index from a page index and an
// offset within the page.
func BlockOfPageOffset(page, offset uint64) uint64 {
	return page<<(PageBits-BlockBits) | (offset & (BlocksPerPage - 1))
}

// Trace is an ordered access stream plus the barrier structure the
// generating framework observed.
type Trace struct {
	Accesses []Access
	// IterationStarts holds the index in Accesses where each iteration
	// (super-step) begins; IterationStarts[0] == 0 when non-empty.
	IterationStarts []int
	// NumPhases is the framework's phase count per iteration (Table 1).
	NumPhases int
	// App and Framework identify the generating workload.
	App, Framework string
}

// Iteration returns the half-open access range [lo,hi) of iteration i.
func (t *Trace) Iteration(i int) (lo, hi int, err error) {
	if i < 0 || i >= len(t.IterationStarts) {
		return 0, 0, fmt.Errorf("trace: iteration %d out of range [0,%d)", i, len(t.IterationStarts))
	}
	lo = t.IterationStarts[i]
	hi = len(t.Accesses)
	if i+1 < len(t.IterationStarts) {
		hi = t.IterationStarts[i+1]
	}
	return lo, hi, nil
}

// NumIterations reports how many barrier-delimited iterations the trace holds.
func (t *Trace) NumIterations() int { return len(t.IterationStarts) }

// Slice returns a shallow sub-trace covering accesses [lo,hi).
func (t *Trace) Slice(lo, hi int) *Trace {
	if lo < 0 {
		lo = 0
	}
	if hi > len(t.Accesses) {
		hi = len(t.Accesses)
	}
	if lo > hi {
		lo = hi
	}
	sub := &Trace{Accesses: t.Accesses[lo:hi], NumPhases: t.NumPhases, App: t.App, Framework: t.Framework}
	for _, s := range t.IterationStarts {
		if s >= lo && s < hi {
			sub.IterationStarts = append(sub.IterationStarts, s-lo)
		}
	}
	return sub
}

// PhaseTransitions returns the indices at which the ground-truth phase label
// changes (used to score detectors).
func (t *Trace) PhaseTransitions() []int {
	var out []int
	for i := 1; i < len(t.Accesses); i++ {
		if t.Accesses[i].Phase != t.Accesses[i-1].Phase {
			out = append(out, i)
		}
	}
	return out
}

// Validate checks trace invariants used by property tests.
func (t *Trace) Validate() error {
	prev := -1
	for i, s := range t.IterationStarts {
		if s <= prev {
			return fmt.Errorf("trace: iteration starts not strictly increasing at %d", i)
		}
		if s >= len(t.Accesses) && len(t.Accesses) > 0 {
			return fmt.Errorf("trace: iteration start %d beyond accesses", s)
		}
		prev = s
	}
	if len(t.IterationStarts) > 0 && t.IterationStarts[0] != 0 {
		return fmt.Errorf("trace: first iteration must start at 0")
	}
	for i, a := range t.Accesses {
		if t.NumPhases > 0 && int(a.Phase) >= t.NumPhases {
			return fmt.Errorf("trace: access %d phase %d >= NumPhases %d", i, a.Phase, t.NumPhases)
		}
	}
	return nil
}
