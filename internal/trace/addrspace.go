package trace

import "mpgraph/internal/invariant"

// Region is a named, page-aligned virtual address range backing one data
// structure of a framework (a vertex-value array, the CSR edge array, a
// per-partition update bin, ...).
type Region struct {
	Name string
	Base uint64
	Size uint64
}

// Contains reports whether addr falls inside the region.
func (r Region) Contains(addr uint64) bool { return addr >= r.Base && addr < r.Base+r.Size }

// Elem returns the byte address of the i-th element of elemSize bytes.
// It panics if the element lies outside the region — that is always a
// framework-model bug, not an input error.
func (r Region) Elem(i int, elemSize uint64) uint64 {
	addr := r.Base + uint64(i)*elemSize
	if addr+elemSize > r.Base+r.Size {
		invariant.Failf("trace: %s[%d] (elem %dB) outside region of %dB", r.Name, i, elemSize, r.Size)
	}
	return addr
}

// AddressSpace hands out non-overlapping page-aligned regions, modelling the
// heap layout a real framework run would produce. A guard gap is left
// between regions so that distinct structures never share a page, matching
// the behaviour of large malloc'd arrays.
type AddressSpace struct {
	next    uint64
	regions []Region
}

// NewAddressSpace starts allocating at base (rounded up to a page).
func NewAddressSpace(base uint64) *AddressSpace {
	mask := uint64(1)<<PageBits - 1
	return &AddressSpace{next: (base + mask) &^ mask}
}

// Alloc reserves size bytes under name and returns the region.
func (as *AddressSpace) Alloc(name string, size uint64) Region {
	mask := uint64(1)<<PageBits - 1
	sz := (size + mask) &^ mask
	if sz == 0 {
		sz = 1 << PageBits
	}
	r := Region{Name: name, Base: as.next, Size: sz}
	as.regions = append(as.regions, r)
	// One guard page between regions.
	as.next += sz + (1 << PageBits)
	return r
}

// Regions returns all allocations in order.
func (as *AddressSpace) Regions() []Region { return as.regions }

// NameOf returns the region name covering addr, or "".
func (as *AddressSpace) NameOf(addr uint64) string {
	for _, r := range as.regions {
		if r.Contains(addr) {
			return r.Name
		}
	}
	return ""
}
