package trace

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestAddressMath(t *testing.T) {
	addr := uint64(0x12345678)
	if Block(addr) != addr>>6 {
		t.Fatal("Block")
	}
	if Page(addr) != addr>>12 {
		t.Fatal("Page")
	}
	b := Block(addr)
	if PageOfBlock(b) != Page(addr) {
		t.Fatal("PageOfBlock inconsistent with Page")
	}
	if BlockAddr(b)>>6 != b {
		t.Fatal("BlockAddr not inverse of Block")
	}
	if BlockOffset(b) >= BlocksPerPage {
		t.Fatal("BlockOffset out of range")
	}
	if BlockOfPageOffset(PageOfBlock(b), BlockOffset(b)) != b {
		t.Fatal("BlockOfPageOffset not inverse")
	}
}

func TestQuickBlockPageRoundTrip(t *testing.T) {
	f := func(addr uint64) bool {
		b := Block(addr)
		return BlockOfPageOffset(PageOfBlock(b), BlockOffset(b)) == b &&
			BlockAddr(b) <= addr && addr < BlockAddr(b)+64
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTraceIterations(t *testing.T) {
	tr := &Trace{
		Accesses:        make([]Access, 10),
		IterationStarts: []int{0, 4, 7},
		NumPhases:       2,
	}
	cases := []struct{ i, lo, hi int }{{0, 0, 4}, {1, 4, 7}, {2, 7, 10}}
	for _, c := range cases {
		lo, hi, err := tr.Iteration(c.i)
		if err != nil || lo != c.lo || hi != c.hi {
			t.Fatalf("Iteration(%d) = %d,%d,%v want %d,%d", c.i, lo, hi, err, c.lo, c.hi)
		}
	}
	if _, _, err := tr.Iteration(3); err == nil {
		t.Fatal("want error for out-of-range iteration")
	}
	if tr.NumIterations() != 3 {
		t.Fatal("NumIterations")
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTraceValidateRejects(t *testing.T) {
	bad := &Trace{Accesses: make([]Access, 3), IterationStarts: []int{1}}
	if err := bad.Validate(); err == nil {
		t.Fatal("first iteration must start at 0")
	}
	bad2 := &Trace{Accesses: make([]Access, 3), IterationStarts: []int{0, 2, 2}}
	if err := bad2.Validate(); err == nil {
		t.Fatal("non-increasing starts must fail")
	}
	bad3 := &Trace{Accesses: []Access{{Phase: 5}}, NumPhases: 2}
	if err := bad3.Validate(); err == nil {
		t.Fatal("phase out of range must fail")
	}
}

func TestTraceSlice(t *testing.T) {
	tr := &Trace{Accesses: make([]Access, 10), IterationStarts: []int{0, 4, 7}, NumPhases: 2}
	sub := tr.Slice(4, 10)
	if len(sub.Accesses) != 6 {
		t.Fatalf("slice len %d", len(sub.Accesses))
	}
	if len(sub.IterationStarts) != 2 || sub.IterationStarts[0] != 0 || sub.IterationStarts[1] != 3 {
		t.Fatalf("slice iteration starts %v", sub.IterationStarts)
	}
	clamped := tr.Slice(-3, 99)
	if len(clamped.Accesses) != 10 {
		t.Fatal("slice should clamp")
	}
	empty := tr.Slice(6, 2)
	if len(empty.Accesses) != 0 {
		t.Fatal("inverted slice should be empty")
	}
}

func TestPhaseTransitions(t *testing.T) {
	tr := &Trace{Accesses: []Access{{Phase: 0}, {Phase: 0}, {Phase: 1}, {Phase: 1}, {Phase: 0}}}
	got := tr.PhaseTransitions()
	if len(got) != 2 || got[0] != 2 || got[1] != 4 {
		t.Fatalf("PhaseTransitions = %v, want [2 4]", got)
	}
}

func TestAddressSpace(t *testing.T) {
	as := NewAddressSpace(0x1000_0000)
	a := as.Alloc("vertices", 100)
	b := as.Alloc("edges", 1<<16)
	if a.Base%4096 != 0 || b.Base%4096 != 0 {
		t.Fatal("regions must be page aligned")
	}
	if a.Base+a.Size > b.Base {
		t.Fatal("regions overlap")
	}
	if Page(a.Base+a.Size-1) == Page(b.Base) {
		t.Fatal("regions share a page")
	}
	if as.NameOf(a.Base+10) != "vertices" || as.NameOf(b.Base) != "edges" {
		t.Fatal("NameOf")
	}
	if as.NameOf(0) != "" {
		t.Fatal("NameOf miss should be empty")
	}
	if len(as.Regions()) != 2 {
		t.Fatal("Regions")
	}
	zero := as.Alloc("tiny", 0)
	if zero.Size == 0 {
		t.Fatal("zero alloc should round up to a page")
	}
}

func TestRegionElem(t *testing.T) {
	r := Region{Name: "x", Base: 0x1000, Size: 0x1000}
	if r.Elem(3, 8) != 0x1000+24 {
		t.Fatal("Elem math")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Elem out of range must panic")
		}
	}()
	r.Elem(512, 8)
}

func TestPCRegistry(t *testing.T) {
	r := NewPCRegistry(0x400000)
	a := r.PC("scatter.read")
	b := r.PC("scatter.write")
	if a == b {
		t.Fatal("distinct sites must get distinct PCs")
	}
	if r.PC("scatter.read") != a {
		t.Fatal("PC must be stable")
	}
	if r.Site(a) != "scatter.read" {
		t.Fatal("Site lookup")
	}
	if r.Site(0xdead) != "" {
		t.Fatal("Site miss")
	}
	if r.NumSites() != 2 {
		t.Fatal("NumSites")
	}
}

func TestInterleavePreservesPerCoreOrder(t *testing.T) {
	streams := make([][]Access, 4)
	for c := range streams {
		for i := 0; i < 100; i++ {
			streams[c] = append(streams[c], Access{Addr: uint64(c*1000 + i)})
		}
	}
	out := Interleave(streams, 8, 42)
	if len(out) != 400 {
		t.Fatalf("merged length %d, want 400", len(out))
	}
	last := map[uint8]uint64{}
	seen := map[uint8]bool{}
	for _, a := range out {
		if seen[a.Core] && a.Addr <= last[a.Core] {
			t.Fatalf("core %d out of order: %d after %d", a.Core, a.Addr, last[a.Core])
		}
		last[a.Core] = a.Addr
		seen[a.Core] = true
	}
	for c := uint8(0); c < 4; c++ {
		if !seen[c] {
			t.Fatalf("core %d never appears", c)
		}
	}
}

func TestInterleaveDeterministic(t *testing.T) {
	streams := [][]Access{{{Addr: 1}, {Addr: 2}}, {{Addr: 3}}}
	a := Interleave(streams, 2, 9)
	b := Interleave(streams, 2, 9)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must give same interleaving")
		}
	}
}

func TestInterleaveActuallyInterleaves(t *testing.T) {
	// With 4 equal streams and small bursts, the output should not be one
	// stream fully before another.
	streams := make([][]Access, 4)
	for c := range streams {
		for i := 0; i < 200; i++ {
			streams[c] = append(streams[c], Access{Addr: uint64(i)})
		}
	}
	out := Interleave(streams, 4, 1)
	switches := 0
	for i := 1; i < len(out); i++ {
		if out[i].Core != out[i-1].Core {
			switches++
		}
	}
	if switches < 20 {
		t.Fatalf("only %d core switches; not interleaved", switches)
	}
}

func TestInterleaveEmptyAndUneven(t *testing.T) {
	out := Interleave(nil, 4, 1)
	if len(out) != 0 {
		t.Fatal("empty input")
	}
	streams := [][]Access{{}, {{Addr: 7}}, {}}
	out = Interleave(streams, 0, 1)
	if len(out) != 1 || out[0].Addr != 7 || out[0].Core != 1 {
		t.Fatalf("uneven interleave got %v", out)
	}
}

func TestTraceIORoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tr := &Trace{App: "pr", Framework: "gpop", NumPhases: 2, IterationStarts: []int{0, 50}}
	for i := 0; i < 100; i++ {
		tr.Accesses = append(tr.Accesses, Access{
			Addr:  rng.Uint64(),
			PC:    rng.Uint64(),
			Core:  uint8(rng.Intn(4)),
			Phase: uint8(rng.Intn(2)),
			Gap:   uint8(rng.Intn(32)),
			Write: rng.Intn(2) == 0,
		})
	}
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.App != "pr" || got.Framework != "gpop" || got.NumPhases != 2 {
		t.Fatal("header mismatch")
	}
	if len(got.Accesses) != len(tr.Accesses) {
		t.Fatal("length mismatch")
	}
	for i := range got.Accesses {
		if got.Accesses[i] != tr.Accesses[i] {
			t.Fatalf("access %d mismatch: %+v vs %+v", i, got.Accesses[i], tr.Accesses[i])
		}
	}
	if len(got.IterationStarts) != 2 || got.IterationStarts[1] != 50 {
		t.Fatal("iteration starts mismatch")
	}
}

func TestTraceReadBadMagic(t *testing.T) {
	if _, err := Read(bytes.NewReader(make([]byte, 128))); err == nil {
		t.Fatal("want error for bad magic")
	}
}

func TestQuickTraceIORoundTrip(t *testing.T) {
	f := func(addrs []uint64, phases []uint8) bool {
		tr := &Trace{NumPhases: 256}
		for i, a := range addrs {
			p := uint8(0)
			if i < len(phases) {
				p = phases[i]
			}
			tr.Accesses = append(tr.Accesses, Access{Addr: a, Phase: p})
		}
		if len(tr.Accesses) > 0 {
			tr.IterationStarts = []int{0}
		}
		var buf bytes.Buffer
		if Write(&buf, tr) != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil || len(got.Accesses) != len(tr.Accesses) {
			return false
		}
		for i := range got.Accesses {
			if got.Accesses[i] != tr.Accesses[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSummarize(t *testing.T) {
	tr := &Trace{App: "pr", Framework: "gpop", NumPhases: 2, IterationStarts: []int{0}}
	// Phase 0: sequential pages; phase 1: wide jumps.
	for i := 0; i < 100; i++ {
		tr.Accesses = append(tr.Accesses, Access{
			Addr: uint64(i) << PageBits, PC: 0x400000, Phase: 0, Write: i%4 == 0,
		})
	}
	for i := 0; i < 100; i++ {
		tr.Accesses = append(tr.Accesses, Access{
			Addr: uint64(i*1000) << PageBits, PC: 0x500000, Phase: 1, Core: 1,
		})
	}
	s := Summarize(tr)
	if s.Accesses != 200 || s.Iterations != 1 || s.Cores != 2 {
		t.Fatalf("summary header: %+v", s)
	}
	if len(s.Phases) != 2 {
		t.Fatalf("phases %d", len(s.Phases))
	}
	p0, p1 := s.Phases[0], s.Phases[1]
	if p0.Phase != 0 || p1.Phase != 1 {
		t.Fatal("phase ordering")
	}
	if p0.Writes != 25 {
		t.Fatalf("writes %d", p0.Writes)
	}
	if p0.WideJumpFraction != 0 {
		t.Fatalf("phase 0 jumps sequential pages by 1: %v", p0.WideJumpFraction)
	}
	if p1.WideJumpFraction < 0.9 {
		t.Fatalf("phase 1 should be all wide jumps: %v", p1.WideJumpFraction)
	}
	if p0.UniquePCs != 1 || p1.UniquePCs != 1 {
		t.Fatal("unique PCs")
	}
	var buf bytes.Buffer
	s.Print(&buf)
	if !strings.Contains(buf.String(), "phase 1") {
		t.Fatal("print output")
	}
}
