package tensor

import (
	"math"
	"math/rand"
	"testing"
)

func randSliceF32(rng *rand.Rand, n int) []float32 {
	s := make([]float32, n)
	for i := range s {
		s[i] = float32(rng.NormFloat64())
	}
	return s
}

// gemmRefF64 accumulates the f32 operands in float64 — the high-precision
// reference the f32 kernels (scalar and vector alike) are bounded against.
func gemmRefF64(out []float64, a, b []float32, m, k, n int) {
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			s := out[i*n+j]
			for p := 0; p < k; p++ {
				s += float64(a[i*k+p]) * float64(b[p*n+j])
			}
			out[i*n+j] = s
		}
	}
}

// f32TolFor bounds the accumulated rounding error of a k-term f32 dot
// product against the f64 reference: each of the k adds contributes at most
// one half-ulp of the running magnitude.
func f32TolFor(k int, magnitude float64) float64 {
	return float64(k+2) * magnitude * 0x1p-23
}

func TestFMAPanelsF32MatchReference(t *testing.T) {
	if !batchKernelAvailable() {
		t.Skip("no AVX-512F batch kernels on this machine")
	}
	rng := rand.New(rand.NewSource(31))
	for _, m := range []int{1, 2, 3, 4, 5, 8, 9, 64} {
		for _, k := range []int{1, 3, 16, 33} {
			for _, n := range []int{1, 7, 15, 16, 17, 31, 32, 33, 64, 65} {
				a := randSliceF32(rng, m*k)
				b := randSliceF32(rng, k*n)
				got := randSliceF32(rng, m*n)
				want := make([]float64, m*n)
				for i, v := range got {
					want[i] = float64(v)
				}
				fmaPanelsF32(got, a, b, m, k, n)
				gemmRefF64(want, a, b, m, k, n)
				tol := f32TolFor(k, 4*math.Sqrt(float64(k)))
				for i := range got {
					if math.Abs(float64(got[i])-want[i]) > tol {
						t.Fatalf("m=%d k=%d n=%d: out[%d] = %g, want %g (tol %g)",
							m, k, n, i, got[i], want[i], tol)
					}
				}
			}
		}
	}
}

// TestFMAPanelsF32BatchComposition mirrors the f64 cornerstone: any stacking
// of rows through the 4-row tile and 1-row remainder must be bit-identical,
// or f32 sweep reports would vary with batch size.
func TestFMAPanelsF32BatchComposition(t *testing.T) {
	if !batchKernelAvailable() {
		t.Skip("no AVX-512F batch kernels on this machine")
	}
	rng := rand.New(rand.NewSource(32))
	m, k, n := 13, 24, 37
	a := randSliceF32(rng, m*k)
	b := randSliceF32(rng, k*n)
	batched := make([]float32, m*n)
	fmaPanelsF32(batched, a, b, m, k, n)
	for i := 0; i < m; i++ {
		solo := make([]float32, n)
		fmaPanelsF32(solo, a[i*k:(i+1)*k], b, 1, k, n)
		for j := range solo {
			if math.Float32bits(solo[j]) != math.Float32bits(batched[i*n+j]) {
				t.Fatalf("row %d col %d: solo %x != batched %x",
					i, j, math.Float32bits(solo[j]), math.Float32bits(batched[i*n+j]))
			}
		}
	}
}

func TestVactF32Accuracy(t *testing.T) {
	if !batchKernelAvailable() {
		t.Skip("no AVX-512F batch kernels on this machine")
	}
	xs := []float32{0, 1, -1, 0.5, -0.5, 3.7, -3.7, 12, -12, 39, -39, 45, -45,
		86, -86, 100, -100, 1e-12, -1e-12, 40.5, -40.5}
	rng := rand.New(rand.NewSource(33))
	for i := 0; i < 200; i++ {
		xs = append(xs, float32(rng.NormFloat64()*20))
	}

	relErr := func(got float32, want float64) float64 {
		if want == 0 {
			return math.Abs(float64(got))
		}
		return math.Abs(float64(got)-want) / math.Max(math.Abs(want), 1e-300)
	}

	// exp(x - bias): vector kernel clamps at ±87, inside f32 range.
	for _, bias := range []float32{0, 2.5, -1.25} {
		buf := append([]float32(nil), xs...)
		vexpRowF32(buf, bias)
		for i, x := range xs {
			arg := x - bias // the kernel subtracts in f32; mirror that
			if arg > 87 || arg < -87 {
				continue // clamped to ±87 by design
			}
			want := math.Exp(float64(arg))
			if relErr(buf[i], want) > 1e-6 {
				t.Fatalf("exp(%g-%g) = %g, want %g", x, bias, buf[i], want)
			}
		}
	}

	// sigmoid
	buf := append([]float32(nil), xs...)
	vsigmoidRowF32(buf)
	for i, x := range xs {
		want := 1 / (1 + math.Exp(-float64(x)))
		if relErr(buf[i], want) > 1e-6 && math.Abs(float64(buf[i])-want) > 1e-9 {
			t.Fatalf("sigmoid(%g) = %g, want %g", x, buf[i], want)
		}
	}

	// tanh: saturates exactly to ±1 past the clamp
	buf = append([]float32(nil), xs...)
	vtanhRowF32(buf)
	for i, x := range xs {
		want := math.Tanh(float64(x))
		if relErr(buf[i], want) > 1e-6 && math.Abs(float64(buf[i])-want) > 1e-9 {
			t.Fatalf("tanh(%g) = %g, want %g", x, buf[i], want)
		}
	}
}

func TestGemmBatchBiasActF32MatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	for _, act := range []Act{ActNone, ActReLU, ActSigmoid, ActTanh} {
		for _, m := range []int{1, 5, 8, 64} {
			k, n := 23, 41
			a := randSliceF32(rng, m*k)
			b := randSliceF32(rng, k*n)
			bias := randSliceF32(rng, n)
			got := make([]float32, m*n)
			want := make([]float32, m*n)
			gemmBatchBiasActF32(got, a, b, bias, m, k, n, act)
			gemmBiasActF32(want, a, b, bias, m, k, n, act)
			for i := range got {
				if math.Abs(float64(got[i])-float64(want[i])) > 1e-4 {
					t.Fatalf("act=%d m=%d: out[%d] = %g, want %g (diff %g)",
						act, m, i, got[i], want[i], got[i]-want[i])
				}
			}
		}
	}
}

func TestGemm2BatchBiasActF32MatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	m, k1, k2, n := 8, 12, 19, 31
	a1 := randSliceF32(rng, m*k1)
	b1 := randSliceF32(rng, k1*n)
	a2 := randSliceF32(rng, m*k2)
	b2 := randSliceF32(rng, k2*n)
	bias := randSliceF32(rng, n)
	for _, act := range []Act{ActNone, ActSigmoid, ActTanh} {
		got := make([]float32, m*n)
		want := make([]float32, m*n)
		gemm2BatchBiasActF32(got, a1, b1, a2, b2, bias, m, k1, k2, n, act)
		gemm2BiasActF32(want, a1, b1, a2, b2, bias, m, k1, k2, n, act)
		for i := range got {
			if math.Abs(float64(got[i])-float64(want[i])) > 1e-4 {
				t.Fatalf("act=%d: out[%d] = %g, want %g", act, i, got[i], want[i])
			}
		}
	}
}

func TestSoftmaxInPlaceFastF32Matches(t *testing.T) {
	rng := rand.New(rand.NewSource(36))
	for _, n := range []int{1, 2, 7, 15, 16, 17, 33} {
		row := randSliceF32(rng, n)
		for i := range row {
			row[i] *= 10
		}
		want := append([]float32(nil), row...)
		softmaxInPlaceFastF32(row)
		softmaxInPlaceF32(want)
		var sum float64
		for i := range row {
			if math.Abs(float64(row[i])-float64(want[i])) > 1e-6 {
				t.Fatalf("n=%d: softmax[%d] = %g, want %g", n, i, row[i], want[i])
			}
			sum += float64(row[i])
		}
		if math.Abs(sum-1) > 1e-5 {
			t.Fatalf("n=%d: softmax sums to %g", n, sum)
		}
	}
}

func TestAttentionBlocksF32CompositionIndependent(t *testing.T) {
	c := NewCtx()
	rng := rand.New(rand.NewSource(37))
	blocks, tt, d := 6, 5, 16
	qd := randSliceF32(rng, blocks*tt*d)
	kd := randSliceF32(rng, blocks*tt*d)
	vd := randSliceF32(rng, blocks*tt*d)
	q := c.viewF32(blocks*tt, d, qd)
	k := c.viewF32(blocks*tt, d, kd)
	v := c.viewF32(blocks*tt, d, vd)
	full := c.AttentionBlocksF32(q, k, v, blocks, 0.25)
	for blk := 0; blk < blocks; blk++ {
		qb := c.viewF32(tt, d, qd[blk*tt*d:(blk+1)*tt*d])
		kb := c.viewF32(tt, d, kd[blk*tt*d:(blk+1)*tt*d])
		vb := c.viewF32(tt, d, vd[blk*tt*d:(blk+1)*tt*d])
		solo := c.AttentionBlocksF32(qb, kb, vb, 1, 0.25)
		for i := range solo.Data {
			gotB := math.Float32bits(full.Data[blk*tt*d+i])
			soloB := math.Float32bits(solo.Data[i])
			if gotB != soloB {
				t.Fatalf("block %d elem %d: %x != %x", blk, i, soloB, gotB)
			}
		}
	}
}

// TestF32OpsSequentialBatchIdentical pins the f32 tier's determinism
// contract at the op level: a row scored alone and the same row scored
// inside a stacked batch produce identical bits.
func TestF32OpsSequentialBatchIdentical(t *testing.T) {
	c := NewCtx()
	rng := rand.New(rand.NewSource(38))
	m, k, n := 9, 17, 29
	xd := randSliceF32(rng, m*k)
	wd := randSliceF32(rng, k*n)
	bd := randSliceF32(rng, n)
	x := c.viewF32(m, k, xd)
	w := c.viewF32(k, n, wd)
	b := c.viewF32(1, n, bd)
	batched := c.LinearActF32(x, w, b, ActSigmoid)
	for i := 0; i < m; i++ {
		solo := c.LinearActF32(c.RowViewF32(x, i), w, b, ActSigmoid)
		for j := range solo.Data {
			if math.Float32bits(solo.Data[j]) != math.Float32bits(batched.Data[i*n+j]) {
				t.Fatalf("row %d col %d: solo %x != batched %x",
					i, j, math.Float32bits(solo.Data[j]), math.Float32bits(batched.Data[i*n+j]))
			}
		}
	}
}

// TestF32OpsZeroAlloc pins the arena contract for the new tier: a full
// f32 op chain allocates nothing per run once the arena is warm.
func TestF32OpsZeroAlloc(t *testing.T) {
	c := NewCtx()
	rng := rand.New(rand.NewSource(39))
	m, k, n := 8, 16, 24
	xd := randSliceF32(rng, m*k)
	wd := randSliceF32(rng, k*n)
	bd := randSliceF32(rng, n)
	gd := randSliceF32(rng, k)
	run := func() {
		c.Reset()
		x := c.viewF32(m, k, xd)
		w := c.viewF32(k, n, wd)
		b := c.viewF32(1, n, bd)
		gain := c.viewF32(1, k, gd)
		h := c.LayerNormF32(x, gain, gain, 1e-5)
		h = c.LinearActF32(h, w, b, ActReLU)
		h = c.SoftmaxRowsF32(h)
		att := c.AttentionBlocksF32(x, x, x, 2, 0.5)
		_ = c.MeanRowsBatchF32(att, 2)
		_ = c.WidenCtxF32(h)
		_ = c.Halfs(64)
	}
	run() // warm the slabs
	if avg := testing.AllocsPerRun(100, run); avg != 0 {
		t.Fatalf("f32 op chain allocates %v per run, want 0", avg)
	}
}

// TestArenaF32Slabs covers the new slab classes directly.
func TestArenaF32Slabs(t *testing.T) {
	c := NewCtx()
	f := c.Float32s(10)
	if len(f) != 10 {
		t.Fatalf("Float32s(10) len %d", len(f))
	}
	for i, v := range f {
		if v != 0 {
			t.Fatalf("Float32s not zeroed at %d: %g", i, v)
		}
	}
	h := c.Halfs(7)
	if len(h) != 7 {
		t.Fatalf("Halfs(7) len %d", len(h))
	}
	p := c.F32Ptrs(3)
	if len(p) != 3 || p[0] != nil {
		t.Fatalf("F32Ptrs(3) = %v", p)
	}
	zt := c.ZerosF32(3, 4)
	if zt.Rows != 3 || zt.Cols != 4 || len(zt.Data) != 12 {
		t.Fatalf("ZerosF32 shape %dx%d len %d", zt.Rows, zt.Cols, len(zt.Data))
	}
	c.Reset()
	// nil-ctx accessors still hand out plain slices
	var nc *Ctx
	if got := nc.Float32s(4); len(got) != 4 {
		t.Fatalf("nil Float32s len %d", len(got))
	}
	if got := nc.Halfs(4); len(got) != 4 {
		t.Fatalf("nil Halfs len %d", len(got))
	}
	if got := nc.F32Ptrs(2); len(got) != 2 {
		t.Fatalf("nil F32Ptrs len %d", len(got))
	}
}
