package tensor

import "math"

// Single-precision twins of the fused inference kernels (DESIGN.md §13).
// The f32 tier exists only for inference — float64 stays the training and
// autograd reference — so there is no parallel fan-out here: inference
// matrices sit far below gemmParallelThreshold and the sweep scheduler
// already saturates the cores one simulation per worker.
//
// Numerics: products and sums accumulate in float32, which is what buys the
// 2x SIMD width and halved memory traffic; transcendental activations
// evaluate through the float64 math package and narrow once, so the scalar
// tier's sigmoid/tanh/exp are correctly-rounded-from-f64 references the
// vector tier is parity-tested against.

// maddRowF32 computes orow += av * brow, 4-way unrolled (see maddRow).
//
//mpgraph:noalloc
func maddRowF32(orow, brow []float32, av float32) {
	n := len(brow)
	orow = orow[:n]
	j := 0
	for ; j+4 <= n; j += 4 {
		orow[j] += av * brow[j]
		orow[j+1] += av * brow[j+1]
		orow[j+2] += av * brow[j+2]
		orow[j+3] += av * brow[j+3]
	}
	for ; j < n; j++ {
		orow[j] += av * brow[j]
	}
}

// maddRows4F32 computes orow += a0·b0 + a1·b1 + a2·b2 + a3·b3 in one pass
// (see maddRows4: the madd kernels are store-bound, so four accumulated rows
// per orow store is the main single-thread win).
//
//mpgraph:noalloc
func maddRows4F32(orow, b0, b1, b2, b3 []float32, a0, a1, a2, a3 float32) {
	n := len(orow)
	b0, b1, b2, b3 = b0[:n], b1[:n], b2[:n], b3[:n]
	for j := 0; j < n; j++ {
		orow[j] += a0*b0[j] + a1*b1[j] + a2*b2[j] + a3*b3[j]
	}
}

// maddPanelF32 computes orow += arow @ b for one output row, blocking the
// shared dimension four rows of b at a time with the all-zero block skip.
//
//mpgraph:noalloc
func maddPanelF32(orow, arow, b []float32, n int) {
	k := len(arow)
	p := 0
	for ; p+4 <= k; p += 4 {
		a0, a1, a2, a3 := arow[p], arow[p+1], arow[p+2], arow[p+3]
		if a0 == 0 && a1 == 0 && a2 == 0 && a3 == 0 {
			continue
		}
		maddRows4F32(orow,
			b[p*n:(p+1)*n], b[(p+1)*n:(p+2)*n],
			b[(p+2)*n:(p+3)*n], b[(p+3)*n:(p+4)*n],
			a0, a1, a2, a3)
	}
	for ; p < k; p++ {
		if av := arow[p]; av != 0 {
			maddRowF32(orow, b[p*n:(p+1)*n], av)
		}
	}
}

// gemmF32 computes out += a@b with a [m x k], b [k x n], serially.
//
//mpgraph:noalloc
func gemmF32(out, a, b []float32, m, k, n int) {
	for i := 0; i < m; i++ {
		maddPanelF32(out[i*n:(i+1)*n], a[i*k:(i+1)*k], b, n)
	}
}

// dotRowsF32 returns the dot product of two equal-length rows, 4-way
// unrolled with independent partial sums.
//
//mpgraph:noalloc
func dotRowsF32(a, b []float32) float32 {
	n := len(a)
	b = b[:n]
	var s0, s1, s2, s3 float32
	j := 0
	for ; j+4 <= n; j += 4 {
		s0 += a[j] * b[j]
		s1 += a[j+1] * b[j+1]
		s2 += a[j+2] * b[j+2]
		s3 += a[j+3] * b[j+3]
	}
	s := s0 + s1 + s2 + s3
	for ; j < n; j++ {
		s += a[j] * b[j]
	}
	return s
}

// dotRows4F32 returns arow's dot product with four b rows in one pass.
//
//mpgraph:noalloc
func dotRows4F32(a, b0, b1, b2, b3 []float32) (s0, s1, s2, s3 float32) {
	n := len(a)
	b0, b1, b2, b3 = b0[:n], b1[:n], b2[:n], b3[:n]
	for j := 0; j < n; j++ {
		av := a[j]
		s0 += av * b0[j]
		s1 += av * b1[j]
		s2 += av * b2[j]
		s3 += av * b3[j]
	}
	return
}

// dotPanelF32 computes orow[j] = [orow[j] +] dot(arow, b-row j)·s for all n
// output columns, blocked four columns at a time (see dotPanel).
//
//mpgraph:noalloc
func dotPanelF32(orow, arow, b []float32, k, n int, s float32, acc bool) {
	j := 0
	for ; j+4 <= n; j += 4 {
		s0, s1, s2, s3 := dotRows4F32(arow,
			b[j*k:(j+1)*k], b[(j+1)*k:(j+2)*k],
			b[(j+2)*k:(j+3)*k], b[(j+3)*k:(j+4)*k])
		if acc {
			orow[j] += s0 * s
			orow[j+1] += s1 * s
			orow[j+2] += s2 * s
			orow[j+3] += s3 * s
		} else {
			orow[j] = s0 * s
			orow[j+1] = s1 * s
			orow[j+2] = s2 * s
			orow[j+3] = s3 * s
		}
	}
	for ; j < n; j++ {
		d := dotRowsF32(arow, b[j*k:(j+1)*k]) * s
		if acc {
			orow[j] += d
		} else {
			orow[j] = d
		}
	}
}

// applyActF32 applies act to row in place. Sigmoid and tanh evaluate in
// float64 and narrow once — the scalar f32 reference the vector tier's
// parity tests compare against.
//
//mpgraph:noalloc
func applyActF32(row []float32, act Act) {
	switch act {
	case ActReLU:
		for i, v := range row {
			if v < 0 {
				row[i] = 0
			}
		}
	case ActSigmoid:
		for i, v := range row {
			row[i] = float32(1 / (1 + math.Exp(-float64(v))))
		}
	case ActTanh:
		for i, v := range row {
			row[i] = float32(math.Tanh(float64(v)))
		}
	}
}

// gemmBiasActF32 computes out = act(a@b + bias) with a [m x k], b [k x n],
// bias [n] (nil for no bias), overwriting out.
//
//mpgraph:noalloc
func gemmBiasActF32(out, a, b, bias []float32, m, k, n int, act Act) {
	for i := 0; i < m; i++ {
		orow := out[i*n : (i+1)*n]
		clear(orow)
		maddPanelF32(orow, a[i*k:(i+1)*k], b, n)
		if bias != nil {
			for j, bv := range bias {
				orow[j] += bv
			}
		}
		applyActF32(orow, act)
	}
}

// gemm2BiasActF32 computes out = act(a1@b1 + a2@b2 + bias) — the LSTM gate
// shape (input and recurrent product sharing one epilogue).
//
//mpgraph:noalloc
func gemm2BiasActF32(out, a1, b1, a2, b2, bias []float32, m, k1, k2, n int, act Act) {
	for i := 0; i < m; i++ {
		orow := out[i*n : (i+1)*n]
		clear(orow)
		maddPanelF32(orow, a1[i*k1:(i+1)*k1], b1, n)
		maddPanelF32(orow, a2[i*k2:(i+1)*k2], b2, n)
		if bias != nil {
			for j, bv := range bias {
				orow[j] += bv
			}
		}
		applyActF32(orow, act)
	}
}

// gemmNTScaleF32 computes out = (a@b^T)·s with a [m x k], b [n x k] — the
// attention-score shape QKᵀ/√d without materialising the transpose.
//
//mpgraph:noalloc
func gemmNTScaleF32(out, a, b []float32, m, k, n int, s float32) {
	for i := 0; i < m; i++ {
		dotPanelF32(out[i*n:(i+1)*n], a[i*k:(i+1)*k], b, k, n, s, false)
	}
}

// softmaxInPlaceF32 applies a numerically-stable softmax to one row (exp in
// float64, narrowed once; the max-subtract and 1/sum order matches the f64
// kernel).
//
//mpgraph:noalloc
func softmaxInPlaceF32(row []float32) {
	maxV := float32(math.Inf(-1))
	for _, v := range row {
		if v > maxV {
			maxV = v
		}
	}
	var sum float32
	for i, v := range row {
		e := float32(math.Exp(float64(v - maxV)))
		row[i] = e
		sum += e
	}
	inv := 1 / sum
	for i := range row {
		row[i] *= inv
	}
}
