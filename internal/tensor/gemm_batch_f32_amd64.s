//go:build amd64

// AVX-512F kernels for the single-precision inference tier (DESIGN.md §13).
//
// fmaPanel4F32Asm / fmaPanel1F32Asm are the float32 ports of the f64 panel
// kernels: out += a @ b for four (resp. one) consecutive rows of a row-major
// activation block against one shared weight panel b, walked in 32-column
// zmm tile pairs (16 lanes per register — twice the f64 width, half the
// traffic). Per output element both kernels execute the identical
// ascending-p FMA sequence, so a row's result is a pure function of its own
// input row and batch composition cannot change any row's bits.
//
// vactF32AVX512 applies an elementwise activation in place: mode 0 is
// exp(x-bias), 1 sigmoid, 2 tanh. Same Cody-Waite + Taylor structure as the
// f64 kernel with single-precision constants (ln2 split per fdlibm's float
// variant, clamp at ±87 against float32 exp overflow at ~88.7); relative
// error is ~1e-7, inside the f32 tier's parity budget against the
// math.Exp-and-narrow scalar reference.

#include "textflag.h"

// func fmaPanel4F32Asm(out, a, b *float32, k, n int64)
TEXT ·fmaPanel4F32Asm(SB), NOSPLIT, $0-40
	MOVQ out+0(FP), DI
	MOVQ a+8(FP), SI
	MOVQ b+16(FP), R14
	MOVQ k+24(FP), R8
	MOVQ n+32(FP), R9

	MOVQ R8, R10
	SHLQ $2, R10  // a row stride in bytes (k*4)
	MOVQ R9, R11
	SHLQ $2, R11  // b/out row stride in bytes (n*4)
	MOVQ R9, R15  // columns remaining

tile4:
	TESTQ R15, R15
	JLE   done4

	// Column masks for this 32-wide tile: K2 covers lanes 0-15, K3 16-31.
	MOVQ R15, R13
	CMPQ R13, $32
	JLE  lanes4
	MOVQ $32, R13

lanes4:
	MOVQ  $1, AX
	MOVQ  R13, CX
	SHLQ  CX, AX
	DECQ  AX
	MOVQ  AX, BX
	ANDQ  $0xFFFF, BX
	KMOVW BX, K2
	SHRQ  $16, AX
	KMOVW AX, K3

	// Load the 4x32 accumulator tile from out.
	LEAQ      (DI)(R11*2), BX
	VMOVUPS.Z (DI), K2, Z0
	VMOVUPS.Z 64(DI), K3, Z1
	VMOVUPS.Z (DI)(R11*1), K2, Z2
	VMOVUPS.Z 64(DI)(R11*1), K3, Z3
	VMOVUPS.Z (BX), K2, Z4
	VMOVUPS.Z 64(BX), K3, Z5
	VMOVUPS.Z (BX)(R11*1), K2, Z6
	VMOVUPS.Z 64(BX)(R11*1), K3, Z7

	MOVQ SI, DX   // a cursor, row 0
	MOVQ R14, AX  // b cursor, current tile
	MOVQ R8, CX

kloop4:
	TESTQ CX, CX
	JLE   kdone4
	VMOVUPS.Z (AX), K2, Z8
	VMOVUPS.Z 64(AX), K3, Z9
	LEAQ      (DX)(R10*2), R12
	VBROADCASTSS (DX), Z10
	VFMADD231PS  Z8, Z10, Z0
	VFMADD231PS  Z9, Z10, Z1
	VBROADCASTSS (DX)(R10*1), Z11
	VFMADD231PS  Z8, Z11, Z2
	VFMADD231PS  Z9, Z11, Z3
	VBROADCASTSS (R12), Z12
	VFMADD231PS  Z8, Z12, Z4
	VFMADD231PS  Z9, Z12, Z5
	VBROADCASTSS (R12)(R10*1), Z13
	VFMADD231PS  Z8, Z13, Z6
	VFMADD231PS  Z9, Z13, Z7
	ADDQ $4, DX
	ADDQ R11, AX
	DECQ CX
	JMP  kloop4

kdone4:
	LEAQ    (DI)(R11*2), BX
	VMOVUPS Z0, K2, (DI)
	VMOVUPS Z1, K3, 64(DI)
	VMOVUPS Z2, K2, (DI)(R11*1)
	VMOVUPS Z3, K3, 64(DI)(R11*1)
	VMOVUPS Z4, K2, (BX)
	VMOVUPS Z5, K3, 64(BX)
	VMOVUPS Z6, K2, (BX)(R11*1)
	VMOVUPS Z7, K3, 64(BX)(R11*1)

	ADDQ $128, DI
	ADDQ $128, R14
	SUBQ $32, R15
	JMP  tile4

done4:
	VZEROUPPER
	RET

// func fmaPanel1F32Asm(out, a, b *float32, k, n int64)
//
// Single-row remainder kernel; per element it runs the exact FMA sequence of
// one fmaPanel4F32Asm row, so 4-row and 1-row tilings produce identical bits.
TEXT ·fmaPanel1F32Asm(SB), NOSPLIT, $0-40
	MOVQ out+0(FP), DI
	MOVQ a+8(FP), SI
	MOVQ b+16(FP), R14
	MOVQ k+24(FP), R8
	MOVQ n+32(FP), R9

	MOVQ R9, R11
	SHLQ $2, R11
	MOVQ R9, R15

tile1:
	TESTQ R15, R15
	JLE   done1

	MOVQ R15, R13
	CMPQ R13, $32
	JLE  lanes1
	MOVQ $32, R13

lanes1:
	MOVQ  $1, AX
	MOVQ  R13, CX
	SHLQ  CX, AX
	DECQ  AX
	MOVQ  AX, BX
	ANDQ  $0xFFFF, BX
	KMOVW BX, K2
	SHRQ  $16, AX
	KMOVW AX, K3

	VMOVUPS.Z (DI), K2, Z0
	VMOVUPS.Z 64(DI), K3, Z1

	MOVQ SI, DX
	MOVQ R14, AX
	MOVQ R8, CX

kloop1:
	TESTQ CX, CX
	JLE   kdone1
	VMOVUPS.Z (AX), K2, Z8
	VMOVUPS.Z 64(AX), K3, Z9
	VBROADCASTSS (DX), Z10
	VFMADD231PS  Z8, Z10, Z0
	VFMADD231PS  Z9, Z10, Z1
	ADDQ $4, DX
	ADDQ R11, AX
	DECQ CX
	JMP  kloop1

kdone1:
	VMOVUPS Z0, K2, (DI)
	VMOVUPS Z1, K3, 64(DI)

	ADDQ $128, DI
	ADDQ $128, R14
	SUBQ $32, R15
	JMP  tile1

done1:
	VZEROUPPER
	RET

DATA fclamplo<>+0(SB)/4, $-87.0
GLOBL fclamplo<>(SB), RODATA, $4
DATA fclamphi<>+0(SB)/4, $87.0
GLOBL fclamphi<>(SB), RODATA, $4
DATA flog2e<>+0(SB)/4, $1.44269504088896340736
GLOBL flog2e<>(SB), RODATA, $4
DATA fln2hi<>+0(SB)/4, $0.693359375
GLOBL fln2hi<>(SB), RODATA, $4
DATA fln2lo<>+0(SB)/4, $-2.12194440e-4
GLOBL fln2lo<>(SB), RODATA, $4
DATA fneg40<>+0(SB)/4, $-40.0
GLOBL fneg40<>(SB), RODATA, $4
DATA fpos40<>+0(SB)/4, $40.0
GLOBL fpos40<>(SB), RODATA, $4
DATA fone<>+0(SB)/4, $1.0
GLOBL fone<>(SB), RODATA, $4
DATA ftwo<>+0(SB)/4, $2.0
GLOBL ftwo<>(SB), RODATA, $4
DATA fc8<>+0(SB)/4, $2.48015873015873e-05
GLOBL fc8<>(SB), RODATA, $4
DATA fc7<>+0(SB)/4, $0.0001984126984126984
GLOBL fc7<>(SB), RODATA, $4
DATA fc6<>+0(SB)/4, $0.001388888888888889
GLOBL fc6<>(SB), RODATA, $4
DATA fc5<>+0(SB)/4, $0.008333333333333333
GLOBL fc5<>(SB), RODATA, $4
DATA fc4<>+0(SB)/4, $0.041666666666666664
GLOBL fc4<>(SB), RODATA, $4
DATA fc3<>+0(SB)/4, $0.16666666666666666
GLOBL fc3<>(SB), RODATA, $4
DATA fc2<>+0(SB)/4, $0.5
GLOBL fc2<>(SB), RODATA, $4

// func vactF32AVX512(p *float32, n, mode int64, bias float32)
TEXT ·vactF32AVX512(SB), NOSPLIT, $0-28
	MOVQ p+0(FP), DI
	MOVQ n+8(FP), R9
	MOVQ mode+16(FP), R10
	VBROADCASTSS bias+24(FP), Z10

	VBROADCASTSS fclamplo<>(SB), Z12
	VBROADCASTSS fclamphi<>(SB), Z13
	VBROADCASTSS fc8<>(SB), Z14
	VBROADCASTSS fc7<>(SB), Z15
	VBROADCASTSS flog2e<>(SB), Z16
	VBROADCASTSS fln2hi<>(SB), Z17
	VBROADCASTSS fln2lo<>(SB), Z18
	VBROADCASTSS fneg40<>(SB), Z19
	VBROADCASTSS fpos40<>(SB), Z20
	VBROADCASTSS fone<>(SB), Z21
	VBROADCASTSS ftwo<>(SB), Z22
	VBROADCASTSS fc6<>(SB), Z26
	VBROADCASTSS fc5<>(SB), Z27
	VBROADCASTSS fc4<>(SB), Z28
	VBROADCASTSS fc3<>(SB), Z29
	VBROADCASTSS fc2<>(SB), Z30

vloop:
	TESTQ R9, R9
	JLE   vdone

	MOVQ R9, R13
	CMPQ R13, $16
	JLE  vlanes
	MOVQ $16, R13

vlanes:
	MOVQ  $1, AX
	MOVQ  R13, CX
	SHLQ  CX, AX
	DECQ  AX
	KMOVW AX, K1

	VMOVUPS.Z (DI), K1, Z0

	CMPQ R10, $1
	JEQ  presig
	CMPQ R10, $2
	JEQ  pretanh

	// mode 0: exp(x - bias)
	VSUBPS Z10, Z0, Z0
	JMP    expblk

presig:
	// sigmoid(x) = 1/(1+exp(-x)); clamp |x| to 40 so exp stays finite.
	VMINPS Z20, Z0, Z0
	VMAXPS Z19, Z0, Z0
	VPXORQ Z5, Z5, Z5
	VSUBPS Z0, Z5, Z0
	JMP    expblk

pretanh:
	// tanh(x) = 1 - 2/(exp(2x)+1); clamp 2x to 40 so extremes saturate to +-1.
	VADDPS Z0, Z0, Z0
	VMINPS Z20, Z0, Z0
	VMAXPS Z19, Z0, Z0

expblk:
	// Cody-Waite: n = round(x*log2e), r = x - n*ln2hi - n*ln2lo, then a
	// degree-8 Taylor in r and a VSCALEFPS 2^n rescale. Degree 8 puts the
	// truncation term (r^9/9! at |r| <= ln2/2) three orders below f32 eps.
	VMINPS       Z13, Z0, Z0
	VMAXPS       Z12, Z0, Z0
	VMULPS       Z16, Z0, Z1
	VRNDSCALEPS  $0, Z1, Z1
	VMOVAPS      Z0, Z2
	VFNMADD231PS Z17, Z1, Z2
	VFNMADD231PS Z18, Z1, Z2
	VMOVAPS      Z14, Z3
	VFMADD213PS  Z15, Z2, Z3
	VFMADD213PS  Z26, Z2, Z3
	VFMADD213PS  Z27, Z2, Z3
	VFMADD213PS  Z28, Z2, Z3
	VFMADD213PS  Z29, Z2, Z3
	VFMADD213PS  Z30, Z2, Z3
	VFMADD213PS  Z21, Z2, Z3
	VFMADD213PS  Z21, Z2, Z3
	VSCALEFPS    Z1, Z3, Z4

	CMPQ R10, $1
	JEQ  postsig
	CMPQ R10, $2
	JEQ  posttanh
	JMP  vstore

postsig:
	VADDPS Z21, Z4, Z4
	VDIVPS Z4, Z21, Z4
	JMP    vstore

posttanh:
	VADDPS Z21, Z4, Z5
	VDIVPS Z5, Z22, Z5
	VSUBPS Z5, Z21, Z4

vstore:
	VMOVUPS Z4, K1, (DI)
	ADDQ    $64, DI
	SUBQ    $16, R9
	JMP     vloop

vdone:
	VZEROUPPER
	RET
