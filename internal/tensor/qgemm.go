package tensor

// This file implements the int8 inference kernels (DESIGN.md §10). Weights
// are quantized once, offline, to int8 with a per-output-channel symmetric
// scale; activations are quantized per row at a calibrated static scale.
// Products accumulate in int32 and a fused epilogue dequantizes, adds the
// float bias and applies the activation — one pass over the output row, the
// same shape discipline as gemmBiasAct.
//
// There are two accelerated kernel tiers behind one dispatch point
// (qgemmBiasActFast). On amd64 with AVX-512 VNNI, an assembly kernel runs
// VPDPBUSD u8×s8 dot products with a fused dequantize epilogue (see
// qgemm_vnni_amd64.s). Everywhere else, a portable SWAR kernel runs. Both
// accumulate in exact int32/lane arithmetic, so both are bit-identical to
// the scalar reference kernel in this file — the tier is a pure speed
// choice, never a numerics choice.
//
// The speed win on scalar Go is SWAR (SIMD within a register): weights are
// offset to unsigned (w+128 ∈ [1,255]) and packed two output channels per
// uint64, one per 32-bit lane. Activations are offset the same way (a+128
// ∈ [1,255]), so one 64-bit multiply by the scalar offset activation
// computes two products at once, and because a product is ≤ 255·255 =
// 65025, a 32-bit lane absorbs the whole shared-dimension sum in place —
// no widening, no masking, just multiply-add on uint64 words. The inner
// loop is one load + one IMUL + one ADD per two MACs, against one load +
// one MULSD + one ADDSD per single MAC for the float kernels. All lane
// arithmetic is exact integer math, so the packed kernel produces
// bit-identical int32 dots to the scalar reference below.
//
// The double offset is corrected exactly in the epilogue:
// Σ (a+128)(w+128) = Σ a·w + 128·Σw_c + 128·Σa + 128²·k, so
// dot_c = U_c − corr_c − 128·sumA with corr_c = 128·colSum_c + 128²·k
// precomputed at pack time and sumA the signed activation row sum.
// Overflow bound: the low lane stays isolated while k·65025 < 2^32 and the
// int32 dot is exact while U_c < 2^31, i.e. k ≈ 33k — orders of magnitude
// above any layer width here.
//
// Data keeps the canonical TRANSPOSED ([Out x In] row-major) int8 weights:
// the nil-Ctx reference path and Dequantize read it, and it is what
// StorageBytes charges for (the packed words are a derived runtime
// acceleration structure, not extra model storage).

import (
	"math"

	"mpgraph/internal/invariant"
)

// qmax is the symmetric int8 quantization ceiling. The grid is [-127, 127];
// -128 is never produced, so negation stays in range.
const qmax = 127

// QuantScale returns the symmetric int8 scale for a tensor whose maximum
// absolute value is maxAbs. A zero maxAbs (all-zero or never-observed data)
// maps to scale 1 so dequantization never divides by zero.
//
//mpgraph:noalloc
func QuantScale(maxAbs float64) float64 {
	if maxAbs <= 0 || math.IsNaN(maxAbs) || math.IsInf(maxAbs, 0) {
		return 1
	}
	return maxAbs / qmax
}

// QTensor is an int8-quantized weight matrix for a linear layer. The float
// source is [In x Out] row-major (the nn.Linear convention); Data holds the
// TRANSPOSE, [Out x In] row-major, so output channel j is the contiguous
// int8 row Data[j*In:(j+1)*In] with its own symmetric scale Scales[j].
type QTensor struct {
	In, Out int
	Data    []int8
	Scales  []float64

	// SWAR acceleration structure (see the file comment). Blocks of eight
	// output channels; each block's In·4 words are CONTIGUOUS so the inner
	// loop streams memory sequentially: packed[(b·In + p)·4 + t] is word t
	// of block b for input row p, holding channel b·8+t in its low 32-bit
	// lane and channel b·8+t+4 in its high lane, weights offset to
	// unsigned (w+128). Channels past Out are padded with weight zero.
	// corr[c] = 128·colSum_c + 128²·In is the channel's constant share of
	// the double-offset correction.
	packed []uint64
	corr   []int32
	blocks int

	// VNNI acceleration structure, built only when the CPU supports
	// AVX-512 VNNI (useVNNI): plain s8 weights interleaved for VPDPBUSD in
	// blocks of 16 output channels — vnni[blk·bstride + g·64 + c·4 + t] is
	// shared-dimension byte g·4+t of channel blk·16+c, zero-padded in both
	// dimensions. Only the activations are offset (+128, unsigned), so the
	// exact correction is vcorr[c] = 128·colSum_c with no row term.
	vnni  []byte
	vcorr []int32
}

// QuantizeWeights quantizes a float [in x out] weight matrix to int8 with
// one symmetric scale per output channel: scale_j = maxabs(column j)/127.
// Per-channel scales keep narrow channels from being crushed by one wide
// channel's range — the per-tensor failure mode nn.Quantize documents.
func QuantizeWeights(w *Tensor) *QTensor {
	in, out := w.Rows, w.Cols
	q := &QTensor{
		In:     in,
		Out:    out,
		Data:   make([]int8, in*out),
		Scales: make([]float64, out),
	}
	for j := 0; j < out; j++ {
		var maxAbs float64
		for i := 0; i < in; i++ {
			if v := math.Abs(w.Data[i*out+j]); v > maxAbs {
				maxAbs = v
			}
		}
		s := QuantScale(maxAbs)
		q.Scales[j] = s
		inv := 1 / s
		qrow := q.Data[j*in : (j+1)*in]
		for i := 0; i < in; i++ {
			qrow[i] = quantizeValue(w.Data[i*out+j], inv)
		}
	}
	q.pack()
	return q
}

// pack builds the SWAR representation from Data: eight output channels per
// block, weights offset to unsigned, 32-bit lanes. Padded channels (Out not
// a multiple of eight) carry int8 weight 0, i.e. lane value 128; their lane
// sums are computed and discarded by the epilogue.
func (q *QTensor) pack() {
	nb := (q.Out + 7) / 8
	q.blocks = nb
	q.packed = make([]uint64, q.In*nb*4)
	q.corr = make([]int32, nb*8)
	uw := func(j, p int) uint64 {
		if j >= q.Out {
			return 128
		}
		return uint64(int64(q.Data[j*q.In+p]) + 128)
	}
	for b := 0; b < nb; b++ {
		for p := 0; p < q.In; p++ {
			for t := 0; t < 4; t++ {
				q.packed[(b*q.In+p)*4+t] = uw(b*8+t, p) | uw(b*8+t+4, p)<<32
			}
		}
	}
	for j := 0; j < q.Out; j++ {
		colSum := int32(0)
		for p := 0; p < q.In; p++ {
			colSum += int32(q.Data[j*q.In+p])
		}
		q.corr[j] = 128*colSum + 128*128*int32(q.In)
	}
	// Padding channels accumulate Σ(a+128)·128 = 128·sumA + 128²·In; the
	// matching correction keeps qlane extraction uniform (their dots come
	// out zero and are never stored).
	for j := q.Out; j < nb*8; j++ {
		q.corr[j] = 128 * 128 * int32(q.In)
	}
	if useVNNI {
		q.packVNNI()
	}
}

// packVNNI builds the VPDPBUSD weight interleave: 16 output channels per
// block, each group of four shared-dimension bytes stored contiguously per
// channel (the 4-byte dot-product granule VPDPBUSD consumes). Weights stay
// plain signed int8; padding in either dimension is weight zero, which
// contributes nothing regardless of the activation byte.
func (q *QTensor) packVNNI() {
	k4 := (q.In + 3) &^ 3
	nb := (q.Out + 15) / 16
	bstride := k4 * 16
	q.vnni = make([]byte, nb*bstride)
	for blk := 0; blk < nb; blk++ {
		base := blk * bstride
		for g := 0; g < k4/4; g++ {
			for ch := 0; ch < 16; ch++ {
				j := blk*16 + ch
				if j >= q.Out {
					continue
				}
				for t := 0; t < 4; t++ {
					p := g*4 + t
					if p >= q.In {
						continue
					}
					q.vnni[base+g*64+ch*4+t] = byte(q.Data[j*q.In+p])
				}
			}
		}
	}
	q.vcorr = make([]int32, nb*16)
	for j := 0; j < q.Out; j++ {
		var colSum int32
		for p := 0; p < q.In; p++ {
			colSum += int32(q.Data[j*q.In+p])
		}
		q.vcorr[j] = 128 * colSum
	}
}

// Dequantize reconstructs the float [In x Out] weight matrix the quantized
// representation encodes (test and parity-analysis helper).
func (q *QTensor) Dequantize() *Tensor {
	w := Zeros(q.In, q.Out)
	for j := 0; j < q.Out; j++ {
		s := q.Scales[j]
		qrow := q.Data[j*q.In : (j+1)*q.In]
		for i := 0; i < q.In; i++ {
			w.Data[i*q.Out+j] = float64(qrow[i]) * s
		}
	}
	return w
}

// StorageBytes returns the on-disk size of the quantized representation:
// int8 weights plus one float64 scale per output channel.
func (q *QTensor) StorageBytes() int { return len(q.Data) + 8*len(q.Scales) }

// quantizeValue rounds v/scale (inv = 1/scale) to the nearest int8 on the
// symmetric grid, saturating at ±qmax. Rounding is half-up (Floor(x+0.5))
// rather than half-away-from-zero: the two differ only at exact negative
// .5 ties, and Floor compiles to a single ROUNDSD on amd64 where math.Round
// is a multi-op bit dance — this sits on the per-element activation
// quantization path, so it shows up in profiles.
//
//mpgraph:noalloc
func quantizeValue(v, inv float64) int8 {
	r := math.Floor(v*inv + 0.5)
	if r > qmax {
		return qmax
	}
	if r < -qmax {
		return -qmax
	}
	return int8(r)
}

// quantizeRowInto quantizes src at 1/inv into dst, element for element. On
// AVX-512 hardware the vector kernel runs instead of the scalar loop; both
// produce bit-identical output (same multiply/round/clamp sequence).
//
//mpgraph:noalloc
func quantizeRowInto(dst []int8, src []float64, inv float64) {
	if quantizeRowFast(dst, src, inv) {
		return
	}
	_ = dst[len(src)-1]
	for i, v := range src {
		dst[i] = quantizeValue(v, inv)
	}
}

// qdotRows returns the int32 dot product of two equal-length int8 rows,
// 4-way unrolled with independent partial sums, mirroring dotRows.
//
//mpgraph:noalloc
func qdotRows(a, b []int8) int32 {
	n := len(a)
	b = b[:n]
	var s0, s1, s2, s3 int32
	j := 0
	for ; j+4 <= n; j += 4 {
		s0 += int32(a[j]) * int32(b[j])
		s1 += int32(a[j+1]) * int32(b[j+1])
		s2 += int32(a[j+2]) * int32(b[j+2])
		s3 += int32(a[j+3]) * int32(b[j+3])
	}
	s := s0 + s1 + s2 + s3
	for ; j < n; j++ {
		s += int32(a[j]) * int32(b[j])
	}
	return s
}

// qdotRows4 returns a's dot product with four weight rows in one pass, so
// the activation row is streamed once per four output channels — the same
// register blocking as dotRows4. int32 accumulation is exact: |sum| ≤
// k·127² needs k > 2^31/127² ≈ 133k to overflow, orders of magnitude above
// any layer width here.
//
//mpgraph:noalloc
func qdotRows4(a, b0, b1, b2, b3 []int8) (s0, s1, s2, s3 int32) {
	n := len(a)
	b0, b1, b2, b3 = b0[:n], b1[:n], b2[:n], b3[:n]
	for j := 0; j < n; j++ {
		av := int32(a[j])
		s0 += av * int32(b0[j])
		s1 += av * int32(b1[j])
		s2 += av * int32(b2[j])
		s3 += av * int32(b3[j])
	}
	return
}

// qdotPanel computes one output row of the quantized linear: for each
// output channel j, orow[j] = dot_int32(xq, wrow_j)·sx·scales[j] + bias[j],
// blocked four channels at a time. sx is the activation scale; bias may be
// nil. The epilogue is the dequantization — int32 counts leave the kernel
// already folded back to float.
//
//mpgraph:noalloc
func qdotPanel(orow []float64, xq, wt []int8, k, n int, sx float64, scales, bias []float64) {
	j := 0
	for ; j+4 <= n; j += 4 {
		s0, s1, s2, s3 := qdotRows4(xq,
			wt[j*k:(j+1)*k], wt[(j+1)*k:(j+2)*k],
			wt[(j+2)*k:(j+3)*k], wt[(j+3)*k:(j+4)*k])
		orow[j] = float64(s0) * sx * scales[j]
		orow[j+1] = float64(s1) * sx * scales[j+1]
		orow[j+2] = float64(s2) * sx * scales[j+2]
		orow[j+3] = float64(s3) * sx * scales[j+3]
	}
	for ; j < n; j++ {
		orow[j] = float64(qdotRows(xq, wt[j*k:(j+1)*k])) * sx * scales[j]
	}
	if bias != nil {
		for j, bv := range bias {
			orow[j] += bv
		}
	}
}

// qgemmBiasAct computes out = act(deq(xq@W^T) + bias) with xq [m x k] int8,
// W^T [n x k] int8 (QTensor layout), bias [n] float (nil for none) — the
// quantized mirror of gemmBiasAct. This is the scalar reference kernel: the
// nil-Ctx slow path runs it, and the arena fast path below must produce
// bit-identical output (int32 accumulation is exact, so the SWAR
// restructuring cannot diverge).
//
//mpgraph:noalloc
func qgemmBiasAct(out []float64, xq, wt []int8, m, k, n int, sx float64, scales, bias []float64, act Act) {
	for i := 0; i < m; i++ {
		orow := out[i*n : (i+1)*n]
		qdotPanel(orow, xq[i*k:(i+1)*k], wt, k, n, sx, scales, bias)
		applyAct(orow, act)
	}
}

// qblockAccum accumulates one eight-channel block's unsigned lane sums over
// the offset activation row (ua[p] = xq[p]+128, precomputed by the caller).
// wb is the block's contiguous In·4 packed words. One 64-bit multiply per
// word computes two products that accumulate in their 32-bit lanes with no
// widening (see the file comment for the overflow bound). Accumulator t
// holds channels t (low lane) and t+4 (high lane). The i+4 <= len(wb) loop
// condition lets the compiler drop the weight bounds checks.
//
//mpgraph:noalloc
func qblockAccum(wb []uint64, ua []int) (a0, a1, a2, a3 uint64) {
	for i := 0; i+4 <= len(wb); i += 4 {
		a := uint64(ua[i>>2])
		a0 += wb[i] * a
		a1 += wb[i+1] * a
		a2 += wb[i+2] * a
		a3 += wb[i+3] * a
	}
	return
}

// qlane picks channel c (0..7) of a block out of the lane accumulators —
// remainder-block helper; full blocks extract lanes inline.
//
//mpgraph:noalloc
func qlane(a0, a1, a2, a3 uint64, c int) int32 {
	var w uint64
	switch c % 4 {
	case 0:
		w = a0
	case 1:
		w = a1
	case 2:
		w = a2
	default:
		w = a3
	}
	if c >= 4 {
		w >>= 32
	}
	return int32(uint32(w))
}

// qmaddRow computes one output row of the quantized linear through the
// packed SWAR representation: orow[j] = dot_int32(xq, col_j)·sx·Scales[j]
// (+ bias[j]). ua is the row's offset activations (xq+128) and rowCorr its
// precomputed 128·sumA share of the double-offset correction.
//
//mpgraph:noalloc
func qmaddRow(orow []float64, ua []int, rowCorr int32, q *QTensor, sx float64, bias []float64) {
	bw := q.In * 4
	full := q.Out / 8
	for b := 0; b < full; b++ {
		a0, a1, a2, a3 := qblockAccum(q.packed[b*bw:(b+1)*bw], ua)
		base := b * 8
		co := q.corr[base : base+8 : base+8]
		d0 := int32(uint32(a0)) - co[0] - rowCorr
		d1 := int32(uint32(a1)) - co[1] - rowCorr
		d2 := int32(uint32(a2)) - co[2] - rowCorr
		d3 := int32(uint32(a3)) - co[3] - rowCorr
		d4 := int32(uint32(a0>>32)) - co[4] - rowCorr
		d5 := int32(uint32(a1>>32)) - co[5] - rowCorr
		d6 := int32(uint32(a2>>32)) - co[6] - rowCorr
		d7 := int32(uint32(a3>>32)) - co[7] - rowCorr
		ob := orow[base : base+8 : base+8]
		sc := q.Scales[base : base+8 : base+8]
		ob[0] = float64(d0) * sx * sc[0]
		ob[1] = float64(d1) * sx * sc[1]
		ob[2] = float64(d2) * sx * sc[2]
		ob[3] = float64(d3) * sx * sc[3]
		ob[4] = float64(d4) * sx * sc[4]
		ob[5] = float64(d5) * sx * sc[5]
		ob[6] = float64(d6) * sx * sc[6]
		ob[7] = float64(d7) * sx * sc[7]
	}
	if base := full * 8; base < q.Out {
		a0, a1, a2, a3 := qblockAccum(q.packed[full*bw:(full+1)*bw], ua)
		for j := base; j < q.Out; j++ {
			d := qlane(a0, a1, a2, a3, j-base) - q.corr[j] - rowCorr
			orow[j] = float64(d) * sx * q.Scales[j]
		}
	}
	if bias != nil {
		for j, bv := range bias {
			orow[j] += bv
		}
	}
}

// qgemmBiasActFast is the arena mirror of qgemmBiasAct. On CPUs with
// AVX-512 VNNI it runs the assembly VPDPBUSD row kernel; everywhere else it
// runs the portable SWAR row kernel. Both accumulate in exact int32, so both
// are bit-identical to the scalar reference. The only scratch is one k-wide
// offset-activation row, reused across output rows.
//
//mpgraph:noalloc
func (c *Ctx) qgemmBiasActFast(out []float64, xq []int8, q *QTensor, m int, sx float64, bias []float64, act Act) {
	k, n := q.In, q.Out
	if q.vnni != nil {
		k4 := (k + 3) &^ 3
		ub := c.Bytes(k4)
		for p := k; p < k4; p++ {
			ub[p] = 0
		}
		for i := 0; i < m; i++ {
			orow := out[i*n : (i+1)*n]
			row := xq[i*k : (i+1)*k]
			for p, v := range row {
				ub[p] = byte(int(v) + 128)
			}
			qmaddRowVNNI(orow, ub, q, sx, bias)
			applyAct(orow, act)
		}
		return
	}
	ua := c.Ints(k)
	for i := 0; i < m; i++ {
		orow := out[i*n : (i+1)*n]
		row := xq[i*k : (i+1)*k]
		sumA := 0
		for p, v := range row {
			sumA += int(v)
			ua[p] = int(v) + 128
		}
		qmaddRow(orow, ua, int32(128*sumA), q, sx, bias)
		applyAct(orow, act)
	}
}

// QuantizeActs quantizes every element of x at the given activation scale
// into an arena-backed int8 buffer laid out like x.Data. The buffer obeys
// the arena lifetime rules: valid until the next Reset.
//
//mpgraph:noalloc
func (c *Ctx) QuantizeActs(x *Tensor, scale float64) []int8 {
	out := c.Int8s(len(x.Data))
	quantizeRowInto(out, x.Data, 1/scale)
	return out
}

// QLinearActQ returns act(deq(xq@W^T) + bias) for an already-quantized
// activation buffer xq of the given row count — the shared-activation entry
// the attention projections use (quantize x once, run Wq/Wk/Wv against the
// same buffer). bias may be nil.
//
//mpgraph:noalloc
func (c *Ctx) QLinearActQ(xq []int8, rows int, scale float64, w *QTensor, bias *Tensor, act Act) *Tensor {
	if len(xq) != rows*w.In {
		invariant.Failf("tensor: qlinear %d int8 acts for %dx%d", len(xq), rows, w.In)
	}
	var bd []float64
	if bias != nil {
		if bias.Rows != 1 || bias.Cols != w.Out {
			invariant.Failf("tensor: qlinear bias %dx%d for width %d", bias.Rows, bias.Cols, w.Out)
		}
		bd = bias.Data
	}
	if c == nil {
		out := Zeros(rows, w.Out)
		qgemmBiasAct(out.Data, xq, w.Data, rows, w.In, w.Out, scale, w.Scales, bd, act)
		return out
	}
	out := c.uninit(rows, w.Out)
	c.qgemmBatch(out.Data, xq, w, rows, scale, bd, act)
	return out
}

// QLinearAct quantizes x at scale and returns act(deq(q(x)@W^T) + bias) —
// the quantized mirror of LinearAct. Valid on a nil receiver (allocating
// slow path with identical numerics).
//
//mpgraph:noalloc
func (c *Ctx) QLinearAct(x *Tensor, scale float64, w *QTensor, bias *Tensor, act Act) *Tensor {
	if x.Cols != w.In {
		invariant.Failf("tensor: qlinear %dx%d @ q%dx%d", x.Rows, x.Cols, w.In, w.Out)
	}
	return c.QLinearActQ(c.QuantizeActs(x, scale), x.Rows, scale, w, bias, act)
}
