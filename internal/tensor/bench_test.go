package tensor

import (
	"math/rand"
	"testing"
)

func BenchmarkGEMM64(b *testing.B)  { benchGEMM(b, 64) }
func BenchmarkGEMM128(b *testing.B) { benchGEMM(b, 128) }
func BenchmarkGEMM256(b *testing.B) { benchGEMM(b, 256) }

func benchGEMM(b *testing.B, n int) {
	rng := rand.New(rand.NewSource(1))
	x := Randn(n, n, 1, rng)
	y := Randn(n, n, 1, rng)
	b.SetBytes(int64(n * n * n * 2 * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMul(x, y)
	}
}

func BenchmarkSoftmaxRows(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := Randn(64, 256, 1, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SoftmaxRows(x)
	}
}

func BenchmarkBackwardMLP(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	w1 := Randn(32, 64, 0.1, rng).Param()
	w2 := Randn(64, 16, 0.1, rng).Param()
	x := Randn(8, 32, 1, rng)
	targets := make([]float64, 8*16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		loss := MSE(MatMul(ReLU(MatMul(x, w1)), w2), targets)
		if err := loss.Backward(); err != nil {
			b.Fatal(err)
		}
		w1.ZeroGrad()
		w2.ZeroGrad()
	}
}
