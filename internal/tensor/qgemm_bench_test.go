package tensor

import (
	"fmt"
	"math/rand"
	"testing"
)

// The shapes the AMMA fast path actually runs under SmallConfig: modality
// feature/projection linears, fusion-width transformer matmuls, and the two
// classifier heads. The int8 kernels must win on these, not on asymptotic
// GEMM sizes.
var qbenchShapes = []struct{ m, k, n int }{
	{9, 8, 16},    // modality feature linear
	{9, 16, 16},   // attention projection
	{18, 32, 32},  // fusion/transformer projection
	{18, 32, 64},  // FFN expand
	{18, 64, 32},  // FFN contract
	{1, 32, 127},  // delta head
	{1, 32, 1024}, // page head
}

func qbenchTensors(m, k, n int, sparse bool) (*Tensor, *Tensor, *Tensor) {
	rng := rand.New(rand.NewSource(7))
	x := Randn(m, k, 1, rng)
	if sparse {
		for i, v := range x.Data {
			if v < 0 {
				x.Data[i] = 0
			}
		}
	}
	w := Randn(k, n, 1, rng)
	bias := Randn(1, n, 1, rng)
	return x, w, bias
}

func BenchmarkLinearActShapes(b *testing.B) {
	for _, sh := range qbenchShapes {
		x, w, bias := qbenchTensors(sh.m, sh.k, sh.n, false)
		c := NewCtx()
		b.Run(fmt.Sprintf("%dx%dx%d", sh.m, sh.k, sh.n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c.LinearAct(x, w, bias, ActReLU)
				c.Reset()
			}
		})
	}
}

func BenchmarkQLinearActShapes(b *testing.B) {
	for _, sh := range qbenchShapes {
		x, w, bias := qbenchTensors(sh.m, sh.k, sh.n, false)
		qw := QuantizeWeights(w)
		scale := QuantScale(x.MaxAbs())
		c := NewCtx()
		b.Run(fmt.Sprintf("%dx%dx%d", sh.m, sh.k, sh.n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c.QLinearAct(x, scale, qw, bias, ActReLU)
				c.Reset()
			}
		})
	}
}

func BenchmarkLinearActSparse(b *testing.B) {
	x, w, bias := qbenchTensors(18, 64, 32, true)
	c := NewCtx()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.LinearAct(x, w, bias, ActReLU)
		c.Reset()
	}
}

func BenchmarkQLinearActSparse(b *testing.B) {
	x, w, bias := qbenchTensors(18, 64, 32, true)
	qw := QuantizeWeights(w)
	scale := QuantScale(x.MaxAbs())
	c := NewCtx()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.QLinearAct(x, scale, qw, bias, ActReLU)
		c.Reset()
	}
}
