//go:build amd64

package tensor

// Single-precision twins of the batched-GEMM and vector-activation asm
// entry points. They share the useAVX512F gate (and its test override) with
// the f64 tier: both are plain AVX-512F, so one CPUID answer covers both.

// fmaPanel4F32Asm is implemented in gemm_batch_f32_amd64.s: out += a @ b for
// four consecutive rows of the activation block (out rows stride n, a rows
// stride k), walking b in 32-column zmm tile pairs.
//
//mpgraph:noalloc
//
//go:noescape
func fmaPanel4F32Asm(out, a, b *float32, k, n int64)

// fmaPanel1F32Asm is the single-row remainder kernel; per element it
// executes the identical FMA sequence of one fmaPanel4F32Asm row, so batch
// composition never changes any row's bits.
//
//mpgraph:noalloc
//
//go:noescape
func fmaPanel1F32Asm(out, a, b *float32, k, n int64)

// vactF32AVX512 is implemented in gemm_batch_f32_amd64.s: elementwise
// activation in place over n float32s. mode 0 = exp(x-bias), 1 = sigmoid,
// 2 = tanh.
//
//mpgraph:noalloc
//
//go:noescape
func vactF32AVX512(p *float32, n, mode int64, bias float32)

// fmaPanelsF32 accumulates out += a @ b over all m rows through the
// AVX-512F f32 panel kernels, four rows at a time with a single-row
// remainder.
//
//mpgraph:noalloc
func fmaPanelsF32(out, a, b []float32, m, k, n int) {
	r := 0
	for ; r+4 <= m; r += 4 {
		fmaPanel4F32Asm(&out[r*n], &a[r*k], &b[0], int64(k), int64(n))
	}
	for ; r < m; r++ {
		fmaPanel1F32Asm(&out[r*n], &a[r*k], &b[0], int64(k), int64(n))
	}
}

// vexpRowF32 replaces row[i] with exp(row[i]-bias) through the vector kernel.
//
//mpgraph:noalloc
func vexpRowF32(row []float32, bias float32) {
	if len(row) == 0 {
		return
	}
	vactF32AVX512(&row[0], int64(len(row)), 0, bias)
}

// vsigmoidRowF32 applies sigmoid in place through the vector kernel.
//
//mpgraph:noalloc
func vsigmoidRowF32(row []float32) {
	if len(row) == 0 {
		return
	}
	vactF32AVX512(&row[0], int64(len(row)), 1, 0)
}

// vtanhRowF32 applies tanh in place through the vector kernel.
//
//mpgraph:noalloc
func vtanhRowF32(row []float32) {
	if len(row) == 0 {
		return
	}
	vactF32AVX512(&row[0], int64(len(row)), 2, 0)
}
