package tensor

// F32Tensor is the single-precision inference tensor (DESIGN.md §13). It is
// graph-free by construction: the f32 tier exists only on the inference fast
// path, float64 Tensors remain the training/autograd reference. Shapes follow
// Tensor (row-major Rows x Cols).
type F32Tensor struct {
	Data       []float32
	Rows, Cols int
}

// NewF32Tensor returns a zeroed heap-backed rows x cols F32Tensor (model
// parameters at conversion time; the hot path uses arena-backed ctx ops).
func NewF32Tensor(rows, cols int) *F32Tensor {
	return &F32Tensor{Data: make([]float32, rows*cols), Rows: rows, Cols: cols}
}

// NarrowF32 converts a float64 tensor to f32 by rounding every element —
// the weight-narrowing step of the mixed-precision ladder. Heap-allocating;
// used once per parameter at model conversion, never per inference.
func NarrowF32(t *Tensor) *F32Tensor {
	out := &F32Tensor{Data: make([]float32, len(t.Data)), Rows: t.Rows, Cols: t.Cols}
	for i, v := range t.Data {
		out.Data[i] = float32(v)
	}
	return out
}

// At returns the element at (r, c).
//
//mpgraph:noalloc
func (t *F32Tensor) At(r, c int) float32 { return t.Data[r*t.Cols+c] }

// Row returns row r as a shared sub-slice.
//
//mpgraph:noalloc
func (t *F32Tensor) Row(r int) []float32 { return t.Data[r*t.Cols : (r+1)*t.Cols] }
