package tensor

import (
	"math"
	"testing"
)

// TestF16EdgeCases pins the binary16 encoder/decoder over the edge-case
// table the storage tier's correctness rests on: signed zeros, subnormals at
// both edges, round-to-nearest-even ties, overflow-to-Inf, and NaN payload
// collapse (ISSUE 10 satellite).
func TestF16EdgeCases(t *testing.T) {
	cases := []struct {
		name string
		in   float64
		bits uint16
	}{
		{"pos-zero", 0.0, 0x0000},
		{"neg-zero", math.Copysign(0, -1), 0x8000},
		{"one", 1.0, 0x3c00},
		{"neg-two", -2.0, 0xc000},
		{"max-normal", 65504, 0x7bff},
		{"just-under-inf-threshold", 65519.99, 0x7bff}, // < 65520 rounds down to max normal
		{"inf-threshold", 65520, 0x7c00},               // ties away? no: 65520 is exactly halfway, even quotient is 0x7c00's mantissa overflow → Inf
		{"overflow", 1e5, 0x7c00},
		{"neg-overflow", -7e4, 0xfc00},
		{"pos-inf", math.Inf(1), 0x7c00},
		{"neg-inf", math.Inf(-1), 0xfc00},
		{"min-normal", 0x1p-14, 0x0400},
		{"max-subnormal", 0x1p-14 - 0x1p-24, 0x03ff},
		{"min-subnormal", 0x1p-24, 0x0001},
		{"neg-min-subnormal", -0x1p-24, 0x8001},
		{"subnormal-mid", 3 * 0x1p-24, 0x0003},
		{"below-min-sub-tie-even", 0x1p-25, 0x0000},            // exactly half the smallest subnormal: ties to even (0)
		{"below-min-sub-above-tie", 0x1p-25 + 0x1p-50, 0x0001}, // just above the tie: rounds up
		{"below-min-sub-under-tie", 0x1p-26, 0x0000},
		{"f64-subnormal", 0x1p-1060, 0x0000},
		{"neg-f64-subnormal", -0x1p-1060, 0x8000},
		// RNE ties in the normal range: 1 + 2^-11 is exactly halfway between
		// 1.0 (even mantissa) and 1+2^-10; 1 + 3*2^-11 is halfway between
		// 1+2^-10 (odd) and 1+2^-9 (even).
		{"tie-to-even-down", 1 + 0x1p-11, 0x3c00},
		{"tie-to-even-up", 1 + 3*0x1p-11, 0x3c02},
		{"above-tie-up", 1 + 0x1p-11 + 0x1p-40, 0x3c01},
		{"neg-tie-to-even-down", -(1 + 0x1p-11), 0xbc00},
		// Rounding carry across a binade: the largest half below 2.0 plus
		// half an ulp rounds up into the next exponent.
		{"carry-into-next-binade", 2 - 0x1p-11 + 0x1p-12, 0x4000},
		{"nan", math.NaN(), 0x7e00},
	}
	for _, tc := range cases {
		got := F16Bits(tc.in)
		if got != tc.bits {
			t.Errorf("%s: F16Bits(%g) = %#04x, want %#04x", tc.name, tc.in, got, tc.bits)
		}
	}
}

// TestF16NaNPayloadCollapse: every NaN payload encodes to the canonical quiet
// NaN, sign preserved.
func TestF16NaNPayloadCollapse(t *testing.T) {
	payloads := []uint64{1, 0xdead, 1 << 51, 1<<52 - 1}
	for _, p := range payloads {
		for _, sign := range []uint64{0, 1 << 63} {
			nan := math.Float64frombits(sign | 0x7ff<<52 | p)
			want := uint16(0x7e00)
			if sign != 0 {
				want |= 0x8000
			}
			if got := F16Bits(nan); got != want {
				t.Fatalf("F16Bits(NaN payload %#x sign %d) = %#04x, want %#04x", p, sign>>63, got, want)
			}
		}
	}
	if !math.IsNaN(F16Float64(0x7e00)) || !math.IsNaN(float64(F16Float32(0xfe00))) {
		t.Fatal("canonical f16 NaN must widen to NaN")
	}
}

// TestF16RoundTripExhaustive: decode is exact, so every one of the 65536 bit
// patterns must survive encode(decode(h)) — with NaNs collapsing to the
// canonical pattern rather than round-tripping their payload.
func TestF16RoundTripExhaustive(t *testing.T) {
	for h := 0; h < 1<<16; h++ {
		bits := uint16(h)
		v64 := F16Float64(bits)
		v32 := F16Float32(bits)

		if math.IsNaN(v64) {
			if !math.IsNaN(float64(v32)) {
				t.Fatalf("%#04x: f64 decode NaN but f32 decode %v", bits, v32)
			}
			want := uint16(f16NaN) | bits&f16SignMask
			if got := F16Bits(v64); got != want {
				t.Fatalf("%#04x: NaN re-encode %#04x, want canonical %#04x", bits, got, want)
			}
			continue
		}
		// Exact widening: the two decode targets must agree bit-for-bit.
		if float64(v32) != v64 {
			t.Fatalf("%#04x: f32 decode %g != f64 decode %g", bits, v32, v64)
		}
		if got := F16Bits(v64); got != bits {
			t.Fatalf("%#04x: round trip %#04x (value %g)", bits, got, v64)
		}
	}
}

// TestF16SingleRounding: encoding from float64 must round once. A value that
// would round differently through an intermediate float32 (double rounding)
// pins the direct path: pick x just below an f32-representable f16 tie so
// f64→f32 rounds up to the tie and a second f32→f16 RNE step would round to
// even, while direct f64→f16 correctly rounds down.
func TestF16SingleRounding(t *testing.T) {
	// tie = 1 + 2^-11 (halfway between halves 1.0 and 1+2^-10).
	// x = tie - 2^-40 < tie, so correct RNE(f16) is 1.0... but f64→f32
	// rounds x up to exactly tie (2^-40 is far below f32 precision at 1.0),
	// and f32→f16 then ties-to-even down to 1.0 as well — pick the other
	// side: x = tie + 2^-40 must round UP to 0x3c01; via f32 it would land
	// on the tie and go down to 0x3c00.
	x := 1 + 0x1p-11 + 0x1p-40
	if got := F16Bits(x); got != 0x3c01 {
		t.Fatalf("direct rounding of %x = %#04x, want 0x3c01", math.Float64bits(x), got)
	}
	viaF32 := F16Bits(float64(float32(x)))
	if viaF32 != 0x3c00 {
		t.Fatalf("double-rounding witness broke: via f32 got %#04x", viaF32)
	}
}

// TestF16SliceHelpers covers the bulk encode/widen paths the serializers use.
func TestF16SliceHelpers(t *testing.T) {
	src := []float64{0, -0.5, 1.25, 65504, 1e9, -1e9, 0x1p-24, math.Inf(1)}
	h := make([]uint16, len(src))
	if n := EncodeF16(h, src); n != len(src) {
		t.Fatalf("EncodeF16 wrote %d", n)
	}
	d64 := make([]float64, len(src))
	d32 := make([]float32, len(src))
	WidenF16(d64, h)
	WidenF16To32(d32, h)
	for i := range src {
		if float64(d32[i]) != d64[i] {
			t.Fatalf("widen disagreement at %d: %g vs %g", i, d32[i], d64[i])
		}
		if got := F16Bits(d64[i]); got != h[i] {
			t.Fatalf("re-encode mismatch at %d", i)
		}
	}
	if d64[4] != math.Inf(1) || d64[5] != math.Inf(-1) {
		t.Fatalf("1e9 must overflow to ±Inf, got %g %g", d64[4], d64[5])
	}
}
