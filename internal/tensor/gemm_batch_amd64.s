//go:build amd64

// AVX-512F kernels for the batched inference tier.
//
// fmaPanel4Asm / fmaPanel1Asm accumulate out += a @ b for four (resp. one)
// consecutive rows of a row-major activation block against one shared weight
// panel b. The panel is walked in 16-column zmm tiles so each b cache line is
// loaded once and amortized over four FMA chains — the weight-traffic
// amortization that motivates batching. Per output element both kernels
// execute the identical ascending-p FMA sequence, so a row's result is a pure
// function of its own input row: batch composition cannot change any row's
// bits, which is what makes sweep reports byte-identical at any batch size.
//
// vactAVX512 applies an elementwise activation in place: mode 0 is
// exp(x-bias) (softmax numerator), mode 1 sigmoid, mode 2 tanh. exp uses
// Cody-Waite range reduction (n = round(x*log2e), r = x - n*ln2hi - n*ln2lo),
// a degree-11 Taylor polynomial in r, and VSCALEFPD for the 2^n scale;
// relative error is ~1e-14, well inside the batch tier's 1e-9 equivalence
// budget against math.Exp-based sequential activations.

#include "textflag.h"

// func fmaPanel4Asm(out, a, b *float64, k, n int64)
TEXT ·fmaPanel4Asm(SB), NOSPLIT, $0-40
	MOVQ out+0(FP), DI
	MOVQ a+8(FP), SI
	MOVQ b+16(FP), R14
	MOVQ k+24(FP), R8
	MOVQ n+32(FP), R9

	MOVQ R8, R10
	SHLQ $3, R10  // a row stride in bytes (k*8)
	MOVQ R9, R11
	SHLQ $3, R11  // b/out row stride in bytes (n*8)
	MOVQ R9, R15  // columns remaining

tile4:
	TESTQ R15, R15
	JLE   done4

	// Column masks for this 16-wide tile: K2 covers lanes 0-7, K3 lanes 8-15.
	MOVQ R15, R13
	CMPQ R13, $16
	JLE  lanes4
	MOVQ $16, R13

lanes4:
	MOVQ  $1, AX
	MOVQ  R13, CX
	SHLQ  CX, AX
	DECQ  AX
	MOVQ  AX, BX
	ANDQ  $0xFF, BX
	KMOVW BX, K2
	SHRQ  $8, AX
	KMOVW AX, K3

	// Load the 4x16 accumulator tile from out.
	LEAQ     (DI)(R11*2), BX
	VMOVUPD.Z (DI), K2, Z0
	VMOVUPD.Z 64(DI), K3, Z1
	VMOVUPD.Z (DI)(R11*1), K2, Z2
	VMOVUPD.Z 64(DI)(R11*1), K3, Z3
	VMOVUPD.Z (BX), K2, Z4
	VMOVUPD.Z 64(BX), K3, Z5
	VMOVUPD.Z (BX)(R11*1), K2, Z6
	VMOVUPD.Z 64(BX)(R11*1), K3, Z7

	MOVQ SI, DX   // a cursor, row 0
	MOVQ R14, AX  // b cursor, current tile
	MOVQ R8, CX

kloop4:
	TESTQ CX, CX
	JLE   kdone4
	VMOVUPD.Z (AX), K2, Z8
	VMOVUPD.Z 64(AX), K3, Z9
	LEAQ      (DX)(R10*2), R12
	VBROADCASTSD (DX), Z10
	VFMADD231PD  Z8, Z10, Z0
	VFMADD231PD  Z9, Z10, Z1
	VBROADCASTSD (DX)(R10*1), Z11
	VFMADD231PD  Z8, Z11, Z2
	VFMADD231PD  Z9, Z11, Z3
	VBROADCASTSD (R12), Z12
	VFMADD231PD  Z8, Z12, Z4
	VFMADD231PD  Z9, Z12, Z5
	VBROADCASTSD (R12)(R10*1), Z13
	VFMADD231PD  Z8, Z13, Z6
	VFMADD231PD  Z9, Z13, Z7
	ADDQ $8, DX
	ADDQ R11, AX
	DECQ CX
	JMP  kloop4

kdone4:
	LEAQ    (DI)(R11*2), BX
	VMOVUPD Z0, K2, (DI)
	VMOVUPD Z1, K3, 64(DI)
	VMOVUPD Z2, K2, (DI)(R11*1)
	VMOVUPD Z3, K3, 64(DI)(R11*1)
	VMOVUPD Z4, K2, (BX)
	VMOVUPD Z5, K3, 64(BX)
	VMOVUPD Z6, K2, (BX)(R11*1)
	VMOVUPD Z7, K3, 64(BX)(R11*1)

	ADDQ $128, DI
	ADDQ $128, R14
	SUBQ $16, R15
	JMP  tile4

done4:
	VZEROUPPER
	RET

// func fmaPanel1Asm(out, a, b *float64, k, n int64)
//
// Single-row remainder kernel; per element it runs the exact FMA sequence of
// one fmaPanel4Asm row, so 4-row and 1-row tilings produce identical bits.
TEXT ·fmaPanel1Asm(SB), NOSPLIT, $0-40
	MOVQ out+0(FP), DI
	MOVQ a+8(FP), SI
	MOVQ b+16(FP), R14
	MOVQ k+24(FP), R8
	MOVQ n+32(FP), R9

	MOVQ R9, R11
	SHLQ $3, R11
	MOVQ R9, R15

tile1:
	TESTQ R15, R15
	JLE   done1

	MOVQ R15, R13
	CMPQ R13, $16
	JLE  lanes1
	MOVQ $16, R13

lanes1:
	MOVQ  $1, AX
	MOVQ  R13, CX
	SHLQ  CX, AX
	DECQ  AX
	MOVQ  AX, BX
	ANDQ  $0xFF, BX
	KMOVW BX, K2
	SHRQ  $8, AX
	KMOVW AX, K3

	VMOVUPD.Z (DI), K2, Z0
	VMOVUPD.Z 64(DI), K3, Z1

	MOVQ SI, DX
	MOVQ R14, AX
	MOVQ R8, CX

kloop1:
	TESTQ CX, CX
	JLE   kdone1
	VMOVUPD.Z (AX), K2, Z8
	VMOVUPD.Z 64(AX), K3, Z9
	VBROADCASTSD (DX), Z10
	VFMADD231PD  Z8, Z10, Z0
	VFMADD231PD  Z9, Z10, Z1
	ADDQ $8, DX
	ADDQ R11, AX
	DECQ CX
	JMP  kloop1

kdone1:
	VMOVUPD Z0, K2, (DI)
	VMOVUPD Z1, K3, 64(DI)

	ADDQ $128, DI
	ADDQ $128, R14
	SUBQ $16, R15
	JMP  tile1

done1:
	VZEROUPPER
	RET

DATA vclamplo<>+0(SB)/8, $-708.0
GLOBL vclamplo<>(SB), RODATA, $8
DATA vclamphi<>+0(SB)/8, $708.0
GLOBL vclamphi<>(SB), RODATA, $8
DATA vlog2e<>+0(SB)/8, $1.44269504088896340736
GLOBL vlog2e<>(SB), RODATA, $8
DATA vln2hi<>+0(SB)/8, $0.693147180369123816490
GLOBL vln2hi<>(SB), RODATA, $8
DATA vln2lo<>+0(SB)/8, $1.90821492927058770002e-10
GLOBL vln2lo<>(SB), RODATA, $8
DATA vneg40<>+0(SB)/8, $-40.0
GLOBL vneg40<>(SB), RODATA, $8
DATA vpos40<>+0(SB)/8, $40.0
GLOBL vpos40<>(SB), RODATA, $8
DATA vone<>+0(SB)/8, $1.0
GLOBL vone<>(SB), RODATA, $8
DATA vtwo<>+0(SB)/8, $2.0
GLOBL vtwo<>(SB), RODATA, $8
DATA vc11<>+0(SB)/8, $2.505210838544172e-08
GLOBL vc11<>(SB), RODATA, $8
DATA vc10<>+0(SB)/8, $2.755731922398589e-07
GLOBL vc10<>(SB), RODATA, $8
DATA vc9<>+0(SB)/8, $2.7557319223985893e-06
GLOBL vc9<>(SB), RODATA, $8
DATA vc8<>+0(SB)/8, $2.48015873015873e-05
GLOBL vc8<>(SB), RODATA, $8
DATA vc7<>+0(SB)/8, $0.0001984126984126984
GLOBL vc7<>(SB), RODATA, $8
DATA vc6<>+0(SB)/8, $0.001388888888888889
GLOBL vc6<>(SB), RODATA, $8
DATA vc5<>+0(SB)/8, $0.008333333333333333
GLOBL vc5<>(SB), RODATA, $8
DATA vc4<>+0(SB)/8, $0.041666666666666664
GLOBL vc4<>(SB), RODATA, $8
DATA vc3<>+0(SB)/8, $0.16666666666666666
GLOBL vc3<>(SB), RODATA, $8
DATA vc2<>+0(SB)/8, $0.5
GLOBL vc2<>(SB), RODATA, $8

// func vactAVX512(p *float64, n, mode int64, bias float64)
TEXT ·vactAVX512(SB), NOSPLIT, $0-32
	MOVQ p+0(FP), DI
	MOVQ n+8(FP), R9
	MOVQ mode+16(FP), R10
	VBROADCASTSD bias+24(FP), Z10

	VBROADCASTSD vclamplo<>(SB), Z12
	VBROADCASTSD vclamphi<>(SB), Z13
	VBROADCASTSD vc11<>(SB), Z14
	VBROADCASTSD vc10<>(SB), Z15
	VBROADCASTSD vlog2e<>(SB), Z16
	VBROADCASTSD vln2hi<>(SB), Z17
	VBROADCASTSD vln2lo<>(SB), Z18
	VBROADCASTSD vneg40<>(SB), Z19
	VBROADCASTSD vpos40<>(SB), Z20
	VBROADCASTSD vone<>(SB), Z21
	VBROADCASTSD vtwo<>(SB), Z22
	VBROADCASTSD vc9<>(SB), Z23
	VBROADCASTSD vc8<>(SB), Z24
	VBROADCASTSD vc7<>(SB), Z25
	VBROADCASTSD vc6<>(SB), Z26
	VBROADCASTSD vc5<>(SB), Z27
	VBROADCASTSD vc4<>(SB), Z28
	VBROADCASTSD vc3<>(SB), Z29
	VBROADCASTSD vc2<>(SB), Z30

vloop:
	TESTQ R9, R9
	JLE   vdone

	MOVQ R9, R13
	CMPQ R13, $8
	JLE  vlanes
	MOVQ $8, R13

vlanes:
	MOVQ  $1, AX
	MOVQ  R13, CX
	SHLQ  CX, AX
	DECQ  AX
	KMOVW AX, K1

	VMOVUPD.Z (DI), K1, Z0

	CMPQ R10, $1
	JEQ  presig
	CMPQ R10, $2
	JEQ  pretanh

	// mode 0: exp(x - bias)
	VSUBPD Z10, Z0, Z0
	JMP    expblk

presig:
	// sigmoid(x) = 1/(1+exp(-x)); clamp |x| to 40 so exp stays finite.
	VMINPD Z20, Z0, Z0
	VMAXPD Z19, Z0, Z0
	VPXORQ Z5, Z5, Z5
	VSUBPD Z0, Z5, Z0
	JMP    expblk

pretanh:
	// tanh(x) = 1 - 2/(exp(2x)+1); clamp 2x to 40 so extremes saturate to +-1.
	VADDPD Z0, Z0, Z0
	VMINPD Z20, Z0, Z0
	VMAXPD Z19, Z0, Z0

expblk:
	VMINPD       Z13, Z0, Z0
	VMAXPD       Z12, Z0, Z0
	VMULPD       Z16, Z0, Z1
	VRNDSCALEPD  $0, Z1, Z1
	VMOVAPD      Z0, Z2
	VFNMADD231PD Z17, Z1, Z2
	VFNMADD231PD Z18, Z1, Z2
	VMOVAPD      Z14, Z3
	VFMADD213PD  Z15, Z2, Z3
	VFMADD213PD  Z23, Z2, Z3
	VFMADD213PD  Z24, Z2, Z3
	VFMADD213PD  Z25, Z2, Z3
	VFMADD213PD  Z26, Z2, Z3
	VFMADD213PD  Z27, Z2, Z3
	VFMADD213PD  Z28, Z2, Z3
	VFMADD213PD  Z29, Z2, Z3
	VFMADD213PD  Z30, Z2, Z3
	VFMADD213PD  Z21, Z2, Z3
	VFMADD213PD  Z21, Z2, Z3
	VSCALEFPD    Z1, Z3, Z4

	CMPQ R10, $1
	JEQ  postsig
	CMPQ R10, $2
	JEQ  posttanh
	JMP  vstore

postsig:
	VADDPD Z21, Z4, Z4
	VDIVPD Z4, Z21, Z4
	JMP    vstore

posttanh:
	VADDPD Z21, Z4, Z5
	VDIVPD Z5, Z22, Z5
	VSUBPD Z5, Z21, Z4

vstore:
	VMOVUPD Z4, K1, (DI)
	ADDQ    $64, DI
	SUBQ    $8, R9
	JMP     vloop

vdone:
	VZEROUPPER
	RET
