//go:build !amd64

package tensor

// useVNNI is always false off amd64: the VNNI kernel is AVX-512 assembly.
// The portable SWAR path in qgemm.go serves every platform.
var useVNNI = false

// qmaddRowVNNI is unreachable off amd64 — qgemmBiasActFast only dispatches
// here when the QTensor carries a VNNI layout, which packVNNI never builds
// with useVNNI false.
//
//mpgraph:noalloc
func qmaddRowVNNI(orow []float64, ua []byte, q *QTensor, sx float64, bias []float64) {
	panic("tensor: VNNI kernel on non-amd64")
}

// quantizeRowFast always reports false off amd64: quantizeRowInto runs its
// scalar loop.
//
//mpgraph:noalloc
func quantizeRowFast(dst []int8, src []float64, inv float64) bool { return false }
