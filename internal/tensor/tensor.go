// Package tensor implements the dense float64 matrix type and reverse-mode
// automatic differentiation the neural-network stack is built on. It is a
// deliberate stdlib-only substitute for the PyTorch/TensorFlow substrate the
// paper's models assume (DESIGN.md §2): every op used by AMMA, the LSTM and
// attention baselines — matmul, softmax, attention fusion, embedding lookup,
// the losses — is implemented here with a hand-written backward pass and
// verified by numerical gradient checking in the tests.
package tensor

import (
	"fmt"
	"math"
	"math/rand"
	"sync/atomic"

	"mpgraph/internal/invariant"
)

// gradDisabled gates graph construction (inverted so the zero value means
// "grad on"). Inference hot paths (prefetchers running inside the
// simulator, possibly many simulations in parallel) disable it to avoid
// building tapes; the flag is atomic so concurrent inference goroutines may
// toggle it idempotently.
var gradDisabled atomic.Bool

// SetGradEnabled toggles autograd graph construction and returns the
// previous value. Each individual training or inference pass is
// single-goroutine; concurrent passes must agree on the mode (the
// experiment runner trains everything first, then runs inference-only
// simulations in parallel).
func SetGradEnabled(v bool) bool {
	return !gradDisabled.Swap(!v)
}

// GradEnabled reports whether autograd graph construction is on.
func GradEnabled() bool { return !gradDisabled.Load() }

// Tensor is a 2-D row-major matrix participating in reverse-mode autodiff.
// (All models in this repository operate on [sequence x features] or
// [features x features] matrices; higher ranks are unnecessary.)
type Tensor struct {
	Rows, Cols int
	Data       []float64
	// Grad accumulates d(loss)/d(this); allocated on demand.
	Grad []float64

	requiresGrad bool
	parents      []*Tensor
	backward     func()
}

// New creates a Rows x Cols tensor backed by data (taken over, not copied).
func New(rows, cols int, data []float64) *Tensor {
	if len(data) != rows*cols {
		invariant.Failf("tensor: data length %d != %dx%d", len(data), rows, cols)
	}
	return &Tensor{Rows: rows, Cols: cols, Data: data}
}

// Zeros creates a zero-filled tensor.
func Zeros(rows, cols int) *Tensor {
	return &Tensor{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// Randn creates a tensor of N(0, scale²) entries.
func Randn(rows, cols int, scale float64, rng *rand.Rand) *Tensor {
	t := Zeros(rows, cols)
	for i := range t.Data {
		t.Data[i] = rng.NormFloat64() * scale
	}
	return t
}

// Param marks t as a trainable parameter (gradients accumulate).
func (t *Tensor) Param() *Tensor {
	t.requiresGrad = true
	return t
}

// RequiresGrad reports whether t participates in gradients.
func (t *Tensor) RequiresGrad() bool { return t.requiresGrad }

// At returns element (r,c).
func (t *Tensor) At(r, c int) float64 { return t.Data[r*t.Cols+c] }

// Set assigns element (r,c).
func (t *Tensor) Set(r, c int, v float64) { t.Data[r*t.Cols+c] = v }

// Clone returns a detached deep copy (no graph edges).
func (t *Tensor) Clone() *Tensor {
	d := make([]float64, len(t.Data))
	copy(d, t.Data)
	return New(t.Rows, t.Cols, d)
}

// ensureGrad allocates the gradient buffer.
func (t *Tensor) ensureGrad() {
	if t.Grad == nil {
		t.Grad = make([]float64, len(t.Data))
	}
}

// ZeroGrad clears accumulated gradients.
func (t *Tensor) ZeroGrad() {
	for i := range t.Grad {
		t.Grad[i] = 0
	}
}

// newResult wires an op result into the graph.
func newResult(rows, cols int, parents []*Tensor, backward func()) *Tensor {
	out := Zeros(rows, cols)
	if gradDisabled.Load() {
		return out
	}
	for _, p := range parents {
		if p.requiresGrad {
			out.requiresGrad = true
			break
		}
	}
	if out.requiresGrad {
		out.parents = parents
		out.backward = backward
	}
	return out
}

// Backward runs reverse-mode autodiff from t, which must be 1x1 (a scalar
// loss). Gradients accumulate into every reachable tensor with
// requiresGrad.
func (t *Tensor) Backward() error {
	if t.Rows != 1 || t.Cols != 1 {
		return fmt.Errorf("tensor: Backward needs a scalar, got %dx%d", t.Rows, t.Cols)
	}
	if !t.requiresGrad {
		return fmt.Errorf("tensor: Backward on a tensor with no graph")
	}
	// Topological order via iterative DFS.
	var order []*Tensor
	visited := map[*Tensor]bool{}
	type frame struct {
		n    *Tensor
		next int
	}
	stack := []frame{{n: t}}
	visited[t] = true
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if f.next < len(f.n.parents) {
			p := f.n.parents[f.next]
			f.next++
			if !visited[p] && p.requiresGrad {
				visited[p] = true
				stack = append(stack, frame{n: p})
			}
			continue
		}
		order = append(order, f.n)
		stack = stack[:len(stack)-1]
	}
	t.ensureGrad()
	t.Grad[0] = 1
	// order is already reverse-topological leaves-first; walk from the end
	// (root) backwards.
	for i := len(order) - 1; i >= 0; i-- {
		n := order[i]
		if n.backward != nil {
			n.backward()
		}
	}
	return nil
}

// Detach returns a view sharing Data but cut from the graph.
func (t *Tensor) Detach() *Tensor {
	return &Tensor{Rows: t.Rows, Cols: t.Cols, Data: t.Data}
}

func (t *Tensor) String() string {
	return fmt.Sprintf("Tensor(%dx%d)", t.Rows, t.Cols)
}

// MaxAbs returns the largest absolute entry (used in tests and quantization).
func (t *Tensor) MaxAbs() float64 {
	m := 0.0
	for _, v := range t.Data {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}
