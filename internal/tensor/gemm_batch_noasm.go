//go:build !amd64

package tensor

import "mpgraph/internal/invariant"

// useAVX512F is always false off amd64: the batch tier delegates to the
// exact scalar kernels, so batched and sequential results match bit for bit.
var useAVX512F = false

//mpgraph:noalloc
func batchKernelAvailable() bool { return false }

func fmaPanels(out, a, b []float64, m, k, n int) {
	invariant.Fail("tensor: fmaPanels requires the amd64 batch kernels")
}

func vexpRow(row []float64, bias float64) {
	invariant.Fail("tensor: vexpRow requires the amd64 batch kernels")
}

func vsigmoidRow(row []float64) {
	invariant.Fail("tensor: vsigmoidRow requires the amd64 batch kernels")
}

func vtanhRow(row []float64) {
	invariant.Fail("tensor: vtanhRow requires the amd64 batch kernels")
}
