package tensor

import (
	"fmt"
	"math"
	"runtime"
	"runtime/debug"
	"sync"
)

// gemmParallelThreshold is the flop count above which GEMM fans out across
// goroutines; small model matrices stay single-threaded to avoid overhead.
const gemmParallelThreshold = 1 << 18

// maddRow computes orow += av * brow, 4-way unrolled. The explicit slicing
// lets the compiler drop per-element bounds checks; the unroll roughly
// halves loop overhead on the madd-dominated inference kernels.
//
//mpgraph:noalloc
func maddRow(orow, brow []float64, av float64) {
	n := len(brow)
	orow = orow[:n]
	j := 0
	for ; j+4 <= n; j += 4 {
		orow[j] += av * brow[j]
		orow[j+1] += av * brow[j+1]
		orow[j+2] += av * brow[j+2]
		orow[j+3] += av * brow[j+3]
	}
	for ; j < n; j++ {
		orow[j] += av * brow[j]
	}
}

// maddRows4 computes orow += a0·b0 + a1·b1 + a2·b2 + a3·b3 in one pass,
// loading and storing each orow element once for four accumulated rows
// instead of four times — the madd kernels are store-bound, so this
// register blocking is the main single-thread GEMM win.
//
//mpgraph:noalloc
func maddRows4(orow, b0, b1, b2, b3 []float64, a0, a1, a2, a3 float64) {
	n := len(orow)
	b0, b1, b2, b3 = b0[:n], b1[:n], b2[:n], b3[:n]
	for j := 0; j < n; j++ {
		orow[j] += a0*b0[j] + a1*b1[j] + a2*b2[j] + a3*b3[j]
	}
}

// maddPanel computes orow += arow @ b for one output row, blocking the
// shared dimension four rows of b at a time (remainder via maddRow). The
// all-zero block skip keeps one-hot and ReLU-sparse inputs cheap.
//
//mpgraph:noalloc
func maddPanel(orow, arow, b []float64, n int) {
	k := len(arow)
	p := 0
	for ; p+4 <= k; p += 4 {
		a0, a1, a2, a3 := arow[p], arow[p+1], arow[p+2], arow[p+3]
		if a0 == 0 && a1 == 0 && a2 == 0 && a3 == 0 {
			continue
		}
		maddRows4(orow,
			b[p*n:(p+1)*n], b[(p+1)*n:(p+2)*n],
			b[(p+2)*n:(p+3)*n], b[(p+3)*n:(p+4)*n],
			a0, a1, a2, a3)
	}
	for ; p < k; p++ {
		if av := arow[p]; av != 0 {
			maddRow(orow, b[p*n:(p+1)*n], av)
		}
	}
}

// dotRows returns the dot product of two equal-length rows, 4-way unrolled
// with independent partial sums so the FMAs pipeline.
//
//mpgraph:noalloc
func dotRows(a, b []float64) float64 {
	n := len(a)
	b = b[:n]
	var s0, s1, s2, s3 float64
	j := 0
	for ; j+4 <= n; j += 4 {
		s0 += a[j] * b[j]
		s1 += a[j+1] * b[j+1]
		s2 += a[j+2] * b[j+2]
		s3 += a[j+3] * b[j+3]
	}
	s := s0 + s1 + s2 + s3
	for ; j < n; j++ {
		s += a[j] * b[j]
	}
	return s
}

// gemm computes out += a@b with a [m x k] row-major, b [k x n] row-major.
// out must be zeroed (callers allocate fresh) or hold a partial sum that the
// product should accumulate into (gradient accumulation relies on +=).
// The serial case calls gemmRows directly: building the parallelRows
// closure heap-allocates (it escapes into goroutines), which would break
// the zero-allocation inference path.
//
//mpgraph:noalloc
func gemm(out, a, b []float64, m, k, n int) {
	if !shouldParallel(m, m*k*n) {
		gemmRows(out, a, b, k, n, 0, m)
		return
	}
	parallelRows(func(r0, r1 int) { gemmRows(out, a, b, k, n, r0, r1) }, m, m*k*n) //mpgraph:allow noalloc -- training-size fan-out; inference stays below the threshold
}

//mpgraph:noalloc
func gemmRows(out, a, b []float64, k, n, r0, r1 int) {
	for i := r0; i < r1; i++ {
		maddPanel(out[i*n:(i+1)*n], a[i*k:(i+1)*k], b, n)
	}
}

// dotRows4 returns arow's dot product with four b rows in one pass, so
// arow is streamed once per four output columns instead of once each.
//
//mpgraph:noalloc
func dotRows4(a, b0, b1, b2, b3 []float64) (s0, s1, s2, s3 float64) {
	n := len(a)
	b0, b1, b2, b3 = b0[:n], b1[:n], b2[:n], b3[:n]
	for j := 0; j < n; j++ {
		av := a[j]
		s0 += av * b0[j]
		s1 += av * b1[j]
		s2 += av * b2[j]
		s3 += av * b3[j]
	}
	return
}

// dotPanel computes orow[j] = [orow[j] +] dot(arow, b-row j)·s for all n
// output columns, blocked four columns at a time. acc selects accumulate
// (the gemm += contract) versus overwrite (fused kernels on uninitialised
// arena buffers).
//
//mpgraph:noalloc
func dotPanel(orow, arow, b []float64, k, n int, s float64, acc bool) {
	j := 0
	for ; j+4 <= n; j += 4 {
		s0, s1, s2, s3 := dotRows4(arow,
			b[j*k:(j+1)*k], b[(j+1)*k:(j+2)*k],
			b[(j+2)*k:(j+3)*k], b[(j+3)*k:(j+4)*k])
		if acc {
			orow[j] += s0 * s
			orow[j+1] += s1 * s
			orow[j+2] += s2 * s
			orow[j+3] += s3 * s
		} else {
			orow[j] = s0 * s
			orow[j+1] = s1 * s
			orow[j+2] = s2 * s
			orow[j+3] = s3 * s
		}
	}
	for ; j < n; j++ {
		d := dotRows(arow, b[j*k:(j+1)*k]) * s
		if acc {
			orow[j] += d
		} else {
			orow[j] = d
		}
	}
}

// gemmNT computes out += a@b^T with a [m x k], b [n x k] (so b^T is [k x n]).
func gemmNT(out, a, b []float64, m, k, n int) {
	if !shouldParallel(m, m*k*n) {
		gemmNTRows(out, a, b, k, n, 0, m)
		return
	}
	parallelRows(func(r0, r1 int) { gemmNTRows(out, a, b, k, n, r0, r1) }, m, m*k*n)
}

func gemmNTRows(out, a, b []float64, k, n, r0, r1 int) {
	for i := r0; i < r1; i++ {
		dotPanel(out[i*n:(i+1)*n], a[i*k:(i+1)*k], b, k, n, 1, true)
	}
}

// gemmTN computes out += a^T@b with a [r x m], b [r x n] (so a^T is [m x r]).
func gemmTN(out, a, b []float64, m, r, n int) {
	// Parallelising over output rows of a^T@b needs strided reads of a;
	// gradient matrices are small, so a simple accumulation loop is fine,
	// parallelised over the shared dimension chunks only when large.
	if m*r*n < gemmParallelThreshold {
		for p := 0; p < r; p++ {
			arow := a[p*m : (p+1)*m]
			brow := b[p*n : (p+1)*n]
			for i, av := range arow {
				if av == 0 {
					continue
				}
				orow := out[i*n : (i+1)*n]
				for j, bv := range brow {
					orow[j] += av * bv
				}
			}
		}
		return
	}
	body := func(i0, i1 int) {
		for p := 0; p < r; p++ {
			arow := a[p*m : (p+1)*m]
			brow := b[p*n : (p+1)*n]
			for i := i0; i < i1; i++ {
				av := arow[i]
				if av == 0 {
					continue
				}
				orow := out[i*n : (i+1)*n]
				for j, bv := range brow {
					orow[j] += av * bv
				}
			}
		}
	}
	parallelRows(body, m, m*r*n)
}

// --- fused inference kernels ---
//
// The fast path (arena.go, fastops.go) fuses GEMM, bias and activation into
// one kernel per layer so steady-state inference makes a single pass over
// the output row instead of three ops with three intermediate tensors. The
// fused kernels are deliberately single-threaded: inference matrices are
// [HistoryT x dim] sized (far below gemmParallelThreshold) and the parallel
// experiment scheduler already saturates the cores one simulation per
// worker, so nested fan-out would only add overhead and nondeterminism.

// Act selects the activation fused into a kernel epilogue.
type Act int

// Activation kinds understood by the fused kernels.
const (
	ActNone Act = iota
	ActReLU
	ActSigmoid
	ActTanh
)

// applyAct applies act to row in place.
//
//mpgraph:noalloc
func applyAct(row []float64, act Act) {
	switch act {
	case ActReLU:
		for i, v := range row {
			if v < 0 {
				row[i] = 0
			}
		}
	case ActSigmoid:
		for i, v := range row {
			row[i] = 1 / (1 + math.Exp(-v))
		}
	case ActTanh:
		for i, v := range row {
			row[i] = math.Tanh(v)
		}
	}
}

// gemmBiasAct computes out = act(a@b + bias) with a [m x k], b [k x n] and
// bias [n] (nil for no bias), overwriting out.
//
//mpgraph:noalloc
func gemmBiasAct(out, a, b, bias []float64, m, k, n int, act Act) {
	for i := 0; i < m; i++ {
		orow := out[i*n : (i+1)*n]
		clear(orow)
		maddPanel(orow, a[i*k:(i+1)*k], b, n)
		if bias != nil {
			for j, bv := range bias {
				orow[j] += bv
			}
		}
		applyAct(orow, act)
	}
}

// gemm2BiasAct computes out = act(a1@b1 + a2@b2 + bias) — the LSTM gate
// shape (input and recurrent product sharing one epilogue). a1 [m x k1],
// b1 [k1 x n], a2 [m x k2], b2 [k2 x n], bias [n] (nil for none).
//
//mpgraph:noalloc
func gemm2BiasAct(out, a1, b1, a2, b2, bias []float64, m, k1, k2, n int, act Act) {
	for i := 0; i < m; i++ {
		orow := out[i*n : (i+1)*n]
		clear(orow)
		maddPanel(orow, a1[i*k1:(i+1)*k1], b1, n)
		maddPanel(orow, a2[i*k2:(i+1)*k2], b2, n)
		if bias != nil {
			for j, bv := range bias {
				orow[j] += bv
			}
		}
		applyAct(orow, act)
	}
}

// gemmNTScale computes out = (a@b^T)·s with a [m x k], b [n x k] — the
// attention-score shape QKᵀ/√d without materialising the transpose.
//
//mpgraph:noalloc
func gemmNTScale(out, a, b []float64, m, k, n int, s float64) {
	for i := 0; i < m; i++ {
		dotPanel(out[i*n:(i+1)*n], a[i*k:(i+1)*k], b, k, n, s, false)
	}
}

// shouldParallel reports whether parallelRows would actually fan out —
// callers with an allocation-free serial variant check it first so the
// escaping body closure is only built when goroutines will run it.
//
// The profitability test is per worker, not aggregate: a small-batch GEMM
// whose total flops clear the old threshold still loses to fan-out overhead
// when each worker's share is tiny, so every worker's slice must itself be
// worth a dispatch.
//
//mpgraph:noalloc
func shouldParallel(rows, flops int) bool {
	workers := runtime.GOMAXPROCS(0)
	if workers <= 1 || rows < 2*workers {
		return false
	}
	return flops/workers >= gemmParallelThreshold
}

// workerFault captures the first panic raised inside a worker goroutine so
// the spawning function can re-raise it on the caller's stack after the
// WaitGroup join. Without it a panicking worker kills the process from a
// goroutine no caller can recover around; tensor deliberately does not
// import resilience (it sits below that package), so the boundary lives
// here as a marked helper.
type workerFault struct {
	mu    sync.Mutex
	val   any
	stack []byte
}

// capture is deferred by every worker: it records the first panic (and its
// stack) and lets the rest of the pool drain normally.
//
// mpgraph:recovers
func (f *workerFault) capture() {
	r := recover()
	if r == nil {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.val == nil {
		f.val = r
		f.stack = debug.Stack()
	}
}

// rethrow re-raises the captured worker panic, if any, on the spawner's
// stack, where callers' usual recovery boundaries apply.
//
// mpgraph:invariant
func (f *workerFault) rethrow() {
	if f.val == nil {
		return
	}
	panic(fmt.Sprintf("tensor: worker panic: %v\n%s", f.val, f.stack))
}

// parallelRows splits [0,rows) across workers when the flop estimate is
// large enough. Workers run behind a workerFault boundary and the join is
// unconditional, so a panicking body neither kills the process from a
// worker nor leaks a goroutine.
func parallelRows(body func(r0, r1 int), rows, flops int) {
	if !shouldParallel(rows, flops) {
		body(0, rows)
		return
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > rows {
		workers = rows
	}
	chunk := (rows + workers - 1) / workers
	var wg sync.WaitGroup
	var fault workerFault
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > rows {
			hi = rows
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			defer fault.capture()
			body(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
	fault.rethrow()
}
