package tensor

import (
	"runtime"
	"sync"
)

// gemmParallelThreshold is the flop count above which GEMM fans out across
// goroutines; small model matrices stay single-threaded to avoid overhead.
const gemmParallelThreshold = 1 << 18

// gemm computes out += a@b with a [m x k] row-major, b [k x n] row-major.
// out must be zeroed (callers allocate fresh) or hold a partial sum that the
// product should accumulate into (gradient accumulation relies on +=).
func gemm(out, a, b []float64, m, k, n int) {
	body := func(r0, r1 int) {
		for i := r0; i < r1; i++ {
			arow := a[i*k : (i+1)*k]
			orow := out[i*n : (i+1)*n]
			for p, av := range arow {
				if av == 0 {
					continue
				}
				brow := b[p*n : (p+1)*n]
				for j, bv := range brow {
					orow[j] += av * bv
				}
			}
		}
	}
	parallelRows(body, m, m*k*n)
}

// gemmNT computes out += a@b^T with a [m x k], b [n x k] (so b^T is [k x n]).
func gemmNT(out, a, b []float64, m, k, n int) {
	body := func(r0, r1 int) {
		for i := r0; i < r1; i++ {
			arow := a[i*k : (i+1)*k]
			orow := out[i*n : (i+1)*n]
			for j := 0; j < n; j++ {
				brow := b[j*k : (j+1)*k]
				s := 0.0
				for p := range arow {
					s += arow[p] * brow[p]
				}
				orow[j] += s
			}
		}
	}
	parallelRows(body, m, m*k*n)
}

// gemmTN computes out += a^T@b with a [r x m], b [r x n] (so a^T is [m x r]).
func gemmTN(out, a, b []float64, m, r, n int) {
	// Parallelising over output rows of a^T@b needs strided reads of a;
	// gradient matrices are small, so a simple accumulation loop is fine,
	// parallelised over the shared dimension chunks only when large.
	if m*r*n < gemmParallelThreshold {
		for p := 0; p < r; p++ {
			arow := a[p*m : (p+1)*m]
			brow := b[p*n : (p+1)*n]
			for i, av := range arow {
				if av == 0 {
					continue
				}
				orow := out[i*n : (i+1)*n]
				for j, bv := range brow {
					orow[j] += av * bv
				}
			}
		}
		return
	}
	body := func(i0, i1 int) {
		for p := 0; p < r; p++ {
			arow := a[p*m : (p+1)*m]
			brow := b[p*n : (p+1)*n]
			for i := i0; i < i1; i++ {
				av := arow[i]
				if av == 0 {
					continue
				}
				orow := out[i*n : (i+1)*n]
				for j, bv := range brow {
					orow[j] += av * bv
				}
			}
		}
	}
	parallelRows(body, m, m*r*n)
}

// parallelRows splits [0,rows) across workers when the flop estimate is
// large enough.
func parallelRows(body func(r0, r1 int), rows, flops int) {
	workers := runtime.GOMAXPROCS(0)
	if flops < gemmParallelThreshold || workers <= 1 || rows < 2*workers {
		body(0, rows)
		return
	}
	if workers > rows {
		workers = rows
	}
	chunk := (rows + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > rows {
			hi = rows
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			body(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
