package tensor

import (
	"math"
	"math/rand"
	"runtime"
	"testing"
)

// naiveGemm is the single-threaded reference: out += a@b.
func naiveGemm(out, a, b []float64, m, k, n int) {
	for i := 0; i < m; i++ {
		for p := 0; p < k; p++ {
			for j := 0; j < n; j++ {
				out[i*n+j] += a[i*k+p] * b[p*n+j]
			}
		}
	}
}

func randSlice(rng *rand.Rand, n int) []float64 {
	s := make([]float64, n)
	for i := range s {
		s[i] = rng.NormFloat64()
	}
	return s
}

// TestGemmParallelPathMatchesSerial forces the worker-goroutine fan-out in
// parallelRows (per-worker flops above gemmParallelThreshold) and checks the
// parallel kernels against the naive reference. Run under -race this is the
// regression test that the gemm workers write disjoint row ranges; it was
// clean when the race gate was introduced and must stay so.
func TestGemmParallelPathMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	// shouldParallel now demands a profitable per-worker share, so size m up
	// until the fan-out actually triggers on this machine's GOMAXPROCS.
	m, k, n := 96, 96, 96
	for !shouldParallel(m, m*k*n) && m < 1<<16 {
		m *= 2
	}
	if !shouldParallel(m, m*k*n) {
		// GOMAXPROCS=1: no fan-out exists to exercise; the comparisons below
		// still validate the serial kernels.
		t.Logf("parallel path unreachable on GOMAXPROCS=%d", runtime.GOMAXPROCS(0))
	}
	a := randSlice(rng, m*k)
	b := randSlice(rng, k*n)
	bt := make([]float64, n*k) // b^T for gemmNT
	for p := 0; p < k; p++ {
		for j := 0; j < n; j++ {
			bt[j*k+p] = b[p*n+j]
		}
	}
	at := make([]float64, k*m) // a^T for gemmTN
	for i := 0; i < m; i++ {
		for p := 0; p < k; p++ {
			at[p*m+i] = a[i*k+p]
		}
	}

	want := make([]float64, m*n)
	naiveGemm(want, a, b, m, k, n)

	kernels := []struct {
		name string
		run  func(out []float64)
	}{
		{"gemm", func(out []float64) { gemm(out, a, b, m, k, n) }},
		{"gemmNT", func(out []float64) { gemmNT(out, a, bt, m, k, n) }},
		{"gemmTN", func(out []float64) { gemmTN(out, at, b, m, k, n) }},
	}
	for _, kr := range kernels {
		got := make([]float64, m*n)
		kr.run(got)
		for i := range got {
			if math.Abs(got[i]-want[i]) > 1e-9 {
				t.Fatalf("%s: out[%d] = %g, want %g", kr.name, i, got[i], want[i])
			}
		}
	}
}

// TestGemmConcurrentCallers checks that independent GEMMs sharing read-only
// inputs are safe to run from concurrent goroutines (the pattern the
// experiment runner uses when evaluating several models on one dataset).
func TestGemmConcurrentCallers(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	m, k, n := 96, 96, 96
	a := randSlice(rng, m*k)
	b := randSlice(rng, k*n)
	want := make([]float64, m*n)
	naiveGemm(want, a, b, m, k, n)

	const callers = 8
	results := make([][]float64, callers)
	done := make(chan int, callers)
	for c := 0; c < callers; c++ {
		go func(c int) {
			out := make([]float64, m*n)
			gemm(out, a, b, m, k, n)
			results[c] = out
			done <- c
		}(c)
	}
	for range [callers]struct{}{} {
		<-done
	}
	for c, got := range results {
		for i := range got {
			if math.Abs(got[i]-want[i]) > 1e-9 {
				t.Fatalf("caller %d: out[%d] = %g, want %g", c, i, got[i], want[i])
			}
		}
	}
}
