package tensor

import "mpgraph/internal/invariant"

// Batch-aware arena ops. A "stacked" tensor holds one session per block of
// rows: [blocks*T x d] in session-major order. Row-wise ops (Linear,
// LayerNorm, AddBias, the int8 kernels) are batch-oblivious and run on the
// stacked tensor unchanged; the ops below are the ones that must know the
// block boundary. Each computes every block with the exact per-element
// operation sequence of its sequential counterpart, so a block's result
// never depends on batch composition.

// LinearActBatch is LinearAct through the batched panel kernels: one weight
// pass for all rows of the stacked block.
//
//mpgraph:noalloc
func (c *Ctx) LinearActBatch(x, w, bias *Tensor, act Act) *Tensor {
	if c == nil {
		return c.LinearAct(x, w, bias, act)
	}
	if x.Cols != w.Rows {
		invariant.Failf("tensor: linearBatch %dx%d @ %dx%d", x.Rows, x.Cols, w.Rows, w.Cols)
	}
	out := c.uninit(x.Rows, w.Cols)
	var bd []float64
	if bias != nil {
		if bias.Rows != 1 || bias.Cols != w.Cols {
			invariant.Failf("tensor: linearBatch bias %dx%d for width %d", bias.Rows, bias.Cols, w.Cols)
		}
		bd = bias.Data
	}
	gemmBatchBiasAct(out.Data, x.Data, w.Data, bd, x.Rows, x.Cols, w.Cols, act)
	return out
}

// Linear2ActBatch is Linear2Act through the batched panel kernels (the LSTM
// gate composition at m stacked rows).
//
//mpgraph:noalloc
func (c *Ctx) Linear2ActBatch(x1, w1, x2, w2, bias *Tensor, act Act) *Tensor {
	if c == nil {
		return c.Linear2Act(x1, w1, x2, w2, bias, act)
	}
	if x1.Cols != w1.Rows || x2.Cols != w2.Rows || x1.Rows != x2.Rows || w1.Cols != w2.Cols {
		invariant.Failf("tensor: linear2Batch %dx%d@%dx%d + %dx%d@%dx%d",
			x1.Rows, x1.Cols, w1.Rows, w1.Cols, x2.Rows, x2.Cols, w2.Rows, w2.Cols)
	}
	out := c.uninit(x1.Rows, w1.Cols)
	var bd []float64
	if bias != nil {
		bd = bias.Data
	}
	gemm2BatchBiasAct(out.Data, x1.Data, w1.Data, x2.Data, w2.Data, bd,
		x1.Rows, x1.Cols, x2.Cols, w1.Cols, act)
	return out
}

// AttentionBlocks runs scaled-dot-product attention independently inside
// each of the `blocks` equal row blocks of q/k/v (self-attention never
// crosses a session boundary). exact selects the sequential math kernels
// (softmaxInPlace + accumulate-gemm) for paths that must stay bit-identical
// to per-session inference — the int8 models use it; the float batch tier
// passes false and takes the vectorized exp and FMA AV product.
//
//mpgraph:noalloc
func (c *Ctx) AttentionBlocks(q, k, v *Tensor, blocks int, scale float64, exact bool) *Tensor {
	if c == nil || blocks <= 0 || q.Rows%blocks != 0 {
		invariant.Failf("tensor: attentionBlocks %d rows over %d blocks", q.Rows, blocks)
	}
	if q.Cols != k.Cols || q.Rows != k.Rows || k.Rows != v.Rows {
		invariant.Failf("tensor: attentionBlocks q %dx%d k %dx%d v %dx%d",
			q.Rows, q.Cols, k.Rows, k.Cols, v.Rows, v.Cols)
	}
	t := q.Rows / blocks
	d := q.Cols
	dv := v.Cols
	out := c.uninit(q.Rows, dv)
	scores := c.Floats(t * t)
	for blk := 0; blk < blocks; blk++ {
		qb := q.Data[blk*t*d : (blk+1)*t*d]
		kb := k.Data[blk*t*d : (blk+1)*t*d]
		vb := v.Data[blk*t*dv : (blk+1)*t*dv]
		ob := out.Data[blk*t*dv : (blk+1)*t*dv]
		gemmNTScale(scores, qb, kb, t, d, t, scale)
		for r := 0; r < t; r++ {
			if exact {
				softmaxInPlace(scores[r*t : (r+1)*t])
			} else {
				softmaxInPlaceFast(scores[r*t : (r+1)*t])
			}
		}
		clear(ob)
		if exact {
			gemm(ob, scores, vb, t, t, dv)
		} else {
			gemmBatch(ob, scores, vb, t, t, dv)
		}
	}
	return out
}

// MeanRowsBatch reduces each block of rows to its mean row: [blocks*T x d]
// -> [blocks x d], accumulating in the exact order MeanRows uses per block.
//
//mpgraph:noalloc
func (c *Ctx) MeanRowsBatch(a *Tensor, blocks int) *Tensor {
	if c == nil || blocks <= 0 || a.Rows%blocks != 0 {
		invariant.Failf("tensor: meanRowsBatch %d rows over %d blocks", a.Rows, blocks)
	}
	t := a.Rows / blocks
	out := c.zeros(blocks, a.Cols)
	inv := 1 / float64(t)
	for blk := 0; blk < blocks; blk++ {
		orow := out.Data[blk*a.Cols : (blk+1)*a.Cols]
		for r := 0; r < t; r++ {
			arow := a.Data[(blk*t+r)*a.Cols : (blk*t+r+1)*a.Cols]
			for j, av := range arow {
				orow[j] += av * inv
			}
		}
	}
	return out
}

// AddPosBatch adds a [T x d] positional table to every block of a stacked
// [blocks*T x d] tensor — the batched form of Add(x, pos).
//
//mpgraph:noalloc
func (c *Ctx) AddPosBatch(a, pos *Tensor, blocks int) *Tensor {
	if c == nil || blocks <= 0 || a.Rows != blocks*pos.Rows || a.Cols != pos.Cols {
		invariant.Failf("tensor: addPosBatch %dx%d + %dx%d over %d blocks",
			a.Rows, a.Cols, pos.Rows, pos.Cols, blocks)
	}
	out := c.uninit(a.Rows, a.Cols)
	n := len(pos.Data)
	for blk := 0; blk < blocks; blk++ {
		ab := a.Data[blk*n : (blk+1)*n]
		ob := out.Data[blk*n : (blk+1)*n]
		for i, av := range ab {
			ob[i] = av + pos.Data[i]
		}
	}
	return out
}

// ConcatRowsBatch2 interleaves two stacked tensors block by block:
// out block i = rows of a's block i followed by rows of b's block i. This is
// the batched ConcatRows2 the modality-fusion layer needs.
//
//mpgraph:noalloc
func (c *Ctx) ConcatRowsBatch2(a, b *Tensor, blocks int) *Tensor {
	if c == nil || blocks <= 0 || a.Cols != b.Cols || a.Rows%blocks != 0 || b.Rows%blocks != 0 {
		invariant.Failf("tensor: concatRowsBatch2 %dx%d + %dx%d over %d blocks",
			a.Rows, a.Cols, b.Rows, b.Cols, blocks)
	}
	ta := a.Rows / blocks
	tb := b.Rows / blocks
	d := a.Cols
	out := c.uninit(a.Rows+b.Rows, d)
	for blk := 0; blk < blocks; blk++ {
		base := blk * (ta + tb) * d
		copy(out.Data[base:base+ta*d], a.Data[blk*ta*d:(blk+1)*ta*d])
		copy(out.Data[base+ta*d:base+(ta+tb)*d], b.Data[blk*tb*d:(blk+1)*tb*d])
	}
	return out
}

// AddRowPerBlock adds table row ids[i] to every row of block i — the batched
// AddBias(x, embedding-row) the per-phase embedding uses.
//
//mpgraph:noalloc
func (c *Ctx) AddRowPerBlock(a, table *Tensor, ids []int, blocks int) *Tensor {
	if c == nil || blocks <= 0 || len(ids) != blocks || a.Rows%blocks != 0 || table.Cols != a.Cols {
		invariant.Failf("tensor: addRowPerBlock %dx%d, %d ids over %d blocks",
			a.Rows, a.Cols, len(ids), blocks)
	}
	t := a.Rows / blocks
	d := a.Cols
	out := c.uninit(a.Rows, a.Cols)
	for blk, id := range ids {
		if id < 0 || id >= table.Rows {
			invariant.Failf("tensor: addRowPerBlock id %d of %d rows", id, table.Rows)
		}
		bias := table.Data[id*d : (id+1)*d]
		for r := 0; r < t; r++ {
			arow := a.Data[(blk*t+r)*d : (blk*t+r+1)*d]
			orow := out.Data[(blk*t+r)*d : (blk*t+r+1)*d]
			for j, av := range arow {
				orow[j] = av + bias[j]
			}
		}
	}
	return out
}

// GatherRowsStride copies count rows starting at `first`, striding by
// `stride` rows — the LSTM timestep gather (row t of every session block).
//
//mpgraph:noalloc
func (c *Ctx) GatherRowsStride(a *Tensor, first, stride, count int) *Tensor {
	if c == nil || count <= 0 || stride <= 0 || first < 0 || first+(count-1)*stride >= a.Rows {
		invariant.Failf("tensor: gatherRowsStride first %d stride %d count %d of %d rows",
			first, stride, count, a.Rows)
	}
	out := c.uninit(count, a.Cols)
	d := a.Cols
	for i := 0; i < count; i++ {
		src := (first + i*stride) * d
		copy(out.Data[i*d:(i+1)*d], a.Data[src:src+d])
	}
	return out
}

// SigmoidInPlaceFast is SigmoidInPlace through the vector kernel; sequential
// callers keep the exact SigmoidInPlace.
//
//mpgraph:noalloc
func (c *Ctx) SigmoidInPlaceFast(a *Tensor) *Tensor {
	if c == nil {
		return Sigmoid(a)
	}
	applyActFast(a.Data, ActSigmoid)
	return a
}
