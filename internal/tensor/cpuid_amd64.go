//go:build amd64

package tensor

// cpuid and xgetbv are implemented in cpuid_amd64.s.
func cpuid(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
func xgetbv() (eax, edx uint32)

// hasAVX512VNNI reports whether the CPU and OS support the AVX-512 VNNI
// instructions the int8 GEMM fast kernel uses (VPDPBUSD on zmm registers):
// AVX512F + AVX512_VNNI with XMM/YMM/opmask/zmm state enabled in XCR0.
func hasAVX512VNNI() bool {
	maxID, _, _, _ := cpuid(0, 0) //mpgraph:allow errdrop -- leaf 0 only reports the max leaf in EAX
	if maxID < 7 {
		return false
	}
	_, _, c1, _ := cpuid(1, 0) //mpgraph:allow errdrop -- OSXSAVE lives in leaf 1 ECX alone
	const osxsave = 1 << 27
	if c1&osxsave == 0 {
		return false
	}
	// XCR0 bits: SSE(1), AVX(2), opmask(5), zmm_hi256(6), hi16_zmm(7).
	xlo, _ := xgetbv()
	const needed = 1<<1 | 1<<2 | 1<<5 | 1<<6 | 1<<7
	if xlo&needed != needed {
		return false
	}
	_, b7, c7, _ := cpuid(7, 0) //mpgraph:allow errdrop -- AVX-512 feature bits live in leaf 7 EBX/ECX
	const avx512f = 1 << 16
	const avx512vnni = 1 << 11
	return b7&avx512f != 0 && c7&avx512vnni != 0
}

// hasAVX512F reports whether the CPU and OS support the AVX-512 foundation
// instructions the float64 batched-GEMM and vector-activation kernels use —
// the same OS-state checks as hasAVX512VNNI without the VNNI requirement.
func hasAVX512F() bool {
	maxID, _, _, _ := cpuid(0, 0) //mpgraph:allow errdrop -- leaf 0 only reports the max leaf in EAX
	if maxID < 7 {
		return false
	}
	_, _, c1, _ := cpuid(1, 0) //mpgraph:allow errdrop -- OSXSAVE lives in leaf 1 ECX alone
	const osxsave = 1 << 27
	if c1&osxsave == 0 {
		return false
	}
	xlo, _ := xgetbv()
	const needed = 1<<1 | 1<<2 | 1<<5 | 1<<6 | 1<<7
	if xlo&needed != needed {
		return false
	}
	_, b7, _, _ := cpuid(7, 0) //mpgraph:allow errdrop -- AVX-512 feature bits live in leaf 7 EBX/ECX
	const avx512f = 1 << 16
	return b7&avx512f != 0
}
