package tensor

import (
	"math"

	"mpgraph/internal/invariant"
)

// NormalizeRows normalises each row to zero mean and unit variance
// (the statistics part of layer normalisation; learnable gain/bias live in
// the nn layer via MulBias/AddBias).
func NormalizeRows(a *Tensor, eps float64) *Tensor {
	out := newResult(a.Rows, a.Cols, []*Tensor{a}, nil)
	n := float64(a.Cols)
	means := make([]float64, a.Rows)
	invStds := make([]float64, a.Rows)
	for r := 0; r < a.Rows; r++ {
		base := r * a.Cols
		mean := 0.0
		for c := 0; c < a.Cols; c++ {
			mean += a.Data[base+c]
		}
		mean /= n
		variance := 0.0
		for c := 0; c < a.Cols; c++ {
			d := a.Data[base+c] - mean
			variance += d * d
		}
		variance /= n
		inv := 1 / math.Sqrt(variance+eps)
		means[r], invStds[r] = mean, inv
		for c := 0; c < a.Cols; c++ {
			out.Data[base+c] = (a.Data[base+c] - mean) * inv
		}
	}
	if out.requiresGrad {
		out.backward = func() {
			a.ensureGrad()
			for r := 0; r < a.Rows; r++ {
				base := r * a.Cols
				inv := invStds[r]
				// dL/dx = inv * (dy - mean(dy) - y*mean(dy*y))
				meanDy := 0.0
				meanDyY := 0.0
				for c := 0; c < a.Cols; c++ {
					meanDy += out.Grad[base+c]
					meanDyY += out.Grad[base+c] * out.Data[base+c]
				}
				meanDy /= n
				meanDyY /= n
				for c := 0; c < a.Cols; c++ {
					a.Grad[base+c] += inv * (out.Grad[base+c] - meanDy - out.Data[base+c]*meanDyY)
				}
			}
		}
	}
	return out
}

// MulBias multiplies every row of a [m x n] elementwise by the row vector
// gain [1 x n] (the learnable scale of layer normalisation).
func MulBias(a, gain *Tensor) *Tensor {
	if gain.Rows != 1 || gain.Cols != a.Cols {
		invariant.Failf("tensor: mulbias %dx%d * %dx%d", a.Rows, a.Cols, gain.Rows, gain.Cols)
	}
	out := newResult(a.Rows, a.Cols, []*Tensor{a, gain}, nil)
	for r := 0; r < a.Rows; r++ {
		base := r * a.Cols
		for c := 0; c < a.Cols; c++ {
			out.Data[base+c] = a.Data[base+c] * gain.Data[c]
		}
	}
	if out.requiresGrad {
		out.backward = func() {
			if a.requiresGrad {
				a.ensureGrad()
				for r := 0; r < a.Rows; r++ {
					base := r * a.Cols
					for c := 0; c < a.Cols; c++ {
						a.Grad[base+c] += out.Grad[base+c] * gain.Data[c]
					}
				}
			}
			if gain.requiresGrad {
				gain.ensureGrad()
				for r := 0; r < a.Rows; r++ {
					base := r * a.Cols
					for c := 0; c < a.Cols; c++ {
						gain.Grad[c] += out.Grad[base+c] * a.Data[base+c]
					}
				}
			}
		}
	}
	return out
}
