package tensor

// This file implements the inference scratch arena (DESIGN.md §8). Steady-
// state prefetcher inference runs the same model shapes every Operate call;
// the arena turns that into zero heap allocations per call: every tensor
// header, data slice, token buffer and pointer slice comes from a bump
// allocator that is rewound with Reset() between forwards.
//
// A Ctx is single-goroutine by construction — each prefetcher instance owns
// one — so no locking is needed, and the parallel experiment scheduler can
// run many simulations concurrently with one arena each.

// slab is a typed bump allocator. take hands out zeroed sub-slices of one
// backing buffer; when the buffer is exhausted it falls back to plain
// allocation and records the high-water mark so the next reset grows the
// buffer to cover it. After the first few calls of a fixed-shape workload
// the buffer has reached steady state and take never allocates again.
type slab[T any] struct {
	buf []T
	off int
	// need is the total requested since the last reset (the high-water
	// mark the buffer grows to).
	need int
}

// take returns a zeroed slice of n elements, capacity-clamped so appends
// cannot silently bleed into a neighbouring allocation.
//
//mpgraph:noalloc
func (s *slab[T]) take(n int) []T {
	s.need += n
	if s.off+n <= len(s.buf) {
		out := s.buf[s.off : s.off+n : s.off+n]
		s.off = s.off + n
		clear(out)
		return out
	}
	return make([]T, n) //mpgraph:allow noalloc -- growth fallback; steady state never reaches it
}

// takeUninit is take without the zeroing pass, for callers that overwrite
// every element before reading (fused kernels, concats, lookups). The
// contents are whatever the previous arena round left behind.
//
//mpgraph:noalloc
func (s *slab[T]) takeUninit(n int) []T {
	s.need += n
	if s.off+n <= len(s.buf) {
		out := s.buf[s.off : s.off+n : s.off+n]
		s.off = s.off + n
		return out
	}
	return make([]T, n) //mpgraph:allow noalloc -- growth fallback; steady state never reaches it
}

// reset rewinds the slab, growing the backing buffer to the high-water mark
// of the round just finished so the next round allocates nothing.
//
//mpgraph:noalloc
func (s *slab[T]) reset() {
	if s.need > len(s.buf) {
		s.buf = make([]T, s.need) //mpgraph:allow noalloc -- one-shot growth to the high-water mark
	}
	s.off = 0
	s.need = 0
}

// Ctx is an inference execution context: a scratch arena plus the graph-free
// fast-path ops defined in fastops.go. The nil *Ctx is valid and means "no
// fast path": every op method on a nil receiver falls back to the package
// autograd op, so model code can thread one ctx parameter through both
// training (nil) and inference (non-nil) without branching at call sites.
//
// Tensors returned by Ctx ops are arena-backed: their Data is only valid
// until the next Reset, they never carry graph edges, and they must not be
// stored in model state or passed to Backward.
type Ctx struct {
	f64     slab[float64]
	f32     slab[float32]
	u16     slab[uint16]
	ints    slab[int]
	i8      slab[int8]
	u8      slab[uint8]
	ts      slab[Tensor]
	f32ts   slab[F32Tensor]
	ptrs    slab[*Tensor]
	f32ptrs slab[*F32Tensor]
}

// NewCtx returns an empty inference context. Buffers are grown on demand
// during the first forwards and reach a fixed point once every shape has
// been seen.
func NewCtx() *Ctx { return &Ctx{} }

// Reset rewinds the arena. All tensors previously returned by this ctx are
// invalidated. Safe on a nil receiver (no-op) so call sites can
// unconditionally `defer ctx.Reset()`.
//
//mpgraph:noalloc
func (c *Ctx) Reset() {
	if c == nil {
		return
	}
	c.f64.reset()
	c.f32.reset()
	c.u16.reset()
	c.ints.reset()
	c.i8.reset()
	c.u8.reset()
	c.ts.reset()
	c.f32ts.reset()
	c.ptrs.reset()
	c.f32ptrs.reset()
}

// zeros allocates an arena-backed rows x cols tensor (data zeroed).
//
//mpgraph:noalloc
func (c *Ctx) zeros(rows, cols int) *Tensor {
	t := &c.ts.take(1)[0]
	t.Rows = rows
	t.Cols = cols
	t.Data = c.f64.take(rows * cols)
	return t
}

// uninit allocates an arena-backed rows x cols tensor without zeroing its
// data. Only for ops that overwrite every element before returning —
// anything else would leak values across Reset rounds.
//
//mpgraph:noalloc
func (c *Ctx) uninit(rows, cols int) *Tensor {
	t := &c.ts.take(1)[0]
	t.Rows = rows
	t.Cols = cols
	t.Data = c.f64.takeUninit(rows * cols)
	return t
}

// view allocates an arena-backed tensor header over existing data.
//
//mpgraph:noalloc
func (c *Ctx) view(rows, cols int, data []float64) *Tensor {
	t := &c.ts.take(1)[0]
	t.Rows = rows
	t.Cols = cols
	t.Data = data
	return t
}

// Floats returns a zeroed arena-backed []float64 of length n.
//
//mpgraph:noalloc
func (c *Ctx) Floats(n int) []float64 {
	if c == nil {
		return make([]float64, n)
	}
	return c.f64.take(n)
}

// Ints returns a zeroed arena-backed []int of length n (token buffers).
//
//mpgraph:noalloc
func (c *Ctx) Ints(n int) []int {
	if c == nil {
		return make([]int, n)
	}
	return c.ints.take(n)
}

// Ptrs returns a zeroed arena-backed []*Tensor of length n.
//
//mpgraph:noalloc
func (c *Ctx) Ptrs(n int) []*Tensor {
	if c == nil {
		return make([]*Tensor, n)
	}
	return c.ptrs.take(n)
}

// Float32s returns a zeroed arena-backed []float32 of length n (f32 score
// rows and activation scratch on the mixed-precision tier).
//
//mpgraph:noalloc
func (c *Ctx) Float32s(n int) []float32 {
	if c == nil {
		return make([]float32, n)
	}
	return c.f32.take(n)
}

// Halfs returns an uninitialised arena-backed []uint16 of length n (binary16
// staging buffers — every caller overwrites the full buffer before reading).
//
//mpgraph:noalloc
func (c *Ctx) Halfs(n int) []uint16 {
	if c == nil {
		return make([]uint16, n)
	}
	return c.u16.takeUninit(n)
}

// F32Ptrs returns a zeroed arena-backed []*F32Tensor of length n.
//
//mpgraph:noalloc
func (c *Ctx) F32Ptrs(n int) []*F32Tensor {
	if c == nil {
		return make([]*F32Tensor, n)
	}
	return c.f32ptrs.take(n)
}

// zerosF32 allocates an arena-backed rows x cols f32 tensor (data zeroed).
//
//mpgraph:noalloc
func (c *Ctx) zerosF32(rows, cols int) *F32Tensor {
	t := &c.f32ts.take(1)[0]
	t.Rows = rows
	t.Cols = cols
	t.Data = c.f32.take(rows * cols)
	return t
}

// uninitF32 is zerosF32 without the zeroing pass — only for ops that
// overwrite every element before returning.
//
//mpgraph:noalloc
func (c *Ctx) uninitF32(rows, cols int) *F32Tensor {
	t := &c.f32ts.take(1)[0]
	t.Rows = rows
	t.Cols = cols
	t.Data = c.f32.takeUninit(rows * cols)
	return t
}

// viewF32 allocates an arena-backed f32 tensor header over existing data.
//
//mpgraph:noalloc
func (c *Ctx) viewF32(rows, cols int, data []float32) *F32Tensor {
	t := &c.f32ts.take(1)[0]
	t.Rows = rows
	t.Cols = cols
	t.Data = data
	return t
}

// Int8s returns an uninitialised arena-backed []int8 of length n (quantized
// activation rows — every caller overwrites the full buffer before reading).
//
//mpgraph:noalloc
func (c *Ctx) Int8s(n int) []int8 {
	if c == nil {
		return make([]int8, n)
	}
	return c.i8.takeUninit(n)
}

// Bytes returns an uninitialised arena-backed []uint8 of length n (offset
// activation rows for the VNNI int8 kernel — callers overwrite before
// reading).
//
//mpgraph:noalloc
func (c *Ctx) Bytes(n int) []uint8 {
	if c == nil {
		return make([]uint8, n)
	}
	return c.u8.takeUninit(n)
}
