package tensor

import (
	"math"

	"mpgraph/internal/invariant"
)

// MatMul returns a@b for a [m x k] and b [k x n].
func MatMul(a, b *Tensor) *Tensor {
	if a.Cols != b.Rows {
		invariant.Failf("tensor: matmul %dx%d @ %dx%d", a.Rows, a.Cols, b.Rows, b.Cols)
	}
	out := newResult(a.Rows, b.Cols, []*Tensor{a, b}, nil)
	gemm(out.Data, a.Data, b.Data, a.Rows, a.Cols, b.Cols)
	if out.requiresGrad {
		out.backward = func() {
			if a.requiresGrad {
				a.ensureGrad()
				// dA = dOut @ B^T
				gemmNT(a.Grad, out.Grad, b.Data, a.Rows, b.Cols, a.Cols)
			}
			if b.requiresGrad {
				b.ensureGrad()
				// dB = A^T @ dOut
				gemmTN(b.Grad, a.Data, out.Grad, a.Cols, a.Rows, b.Cols)
			}
		}
	}
	return out
}

// Add returns a+b elementwise (same shape).
func Add(a, b *Tensor) *Tensor {
	checkSameShape("add", a, b)
	out := newResult(a.Rows, a.Cols, []*Tensor{a, b}, nil)
	for i := range out.Data {
		out.Data[i] = a.Data[i] + b.Data[i]
	}
	if out.requiresGrad {
		out.backward = func() {
			for _, p := range []*Tensor{a, b} {
				if p.requiresGrad {
					p.ensureGrad()
					for i := range p.Grad {
						p.Grad[i] += out.Grad[i]
					}
				}
			}
		}
	}
	return out
}

// AddBias adds row vector bias [1 x n] to every row of a [m x n].
func AddBias(a, bias *Tensor) *Tensor {
	if bias.Rows != 1 || bias.Cols != a.Cols {
		invariant.Failf("tensor: addbias %dx%d + %dx%d", a.Rows, a.Cols, bias.Rows, bias.Cols)
	}
	out := newResult(a.Rows, a.Cols, []*Tensor{a, bias}, nil)
	for r := 0; r < a.Rows; r++ {
		base := r * a.Cols
		for c := 0; c < a.Cols; c++ {
			out.Data[base+c] = a.Data[base+c] + bias.Data[c]
		}
	}
	if out.requiresGrad {
		out.backward = func() {
			if a.requiresGrad {
				a.ensureGrad()
				for i := range a.Grad {
					a.Grad[i] += out.Grad[i]
				}
			}
			if bias.requiresGrad {
				bias.ensureGrad()
				for r := 0; r < a.Rows; r++ {
					base := r * a.Cols
					for c := 0; c < a.Cols; c++ {
						bias.Grad[c] += out.Grad[base+c]
					}
				}
			}
		}
	}
	return out
}

// Mul returns a*b elementwise.
func Mul(a, b *Tensor) *Tensor {
	checkSameShape("mul", a, b)
	out := newResult(a.Rows, a.Cols, []*Tensor{a, b}, nil)
	for i := range out.Data {
		out.Data[i] = a.Data[i] * b.Data[i]
	}
	if out.requiresGrad {
		out.backward = func() {
			if a.requiresGrad {
				a.ensureGrad()
				for i := range a.Grad {
					a.Grad[i] += out.Grad[i] * b.Data[i]
				}
			}
			if b.requiresGrad {
				b.ensureGrad()
				for i := range b.Grad {
					b.Grad[i] += out.Grad[i] * a.Data[i]
				}
			}
		}
	}
	return out
}

// Scale returns a*s.
func Scale(a *Tensor, s float64) *Tensor {
	out := newResult(a.Rows, a.Cols, []*Tensor{a}, nil)
	for i := range out.Data {
		out.Data[i] = a.Data[i] * s
	}
	if out.requiresGrad {
		out.backward = func() {
			a.ensureGrad()
			for i := range a.Grad {
				a.Grad[i] += out.Grad[i] * s
			}
		}
	}
	return out
}

// ReLU returns max(0, a).
func ReLU(a *Tensor) *Tensor {
	out := newResult(a.Rows, a.Cols, []*Tensor{a}, nil)
	for i, v := range a.Data {
		if v > 0 {
			out.Data[i] = v
		}
	}
	if out.requiresGrad {
		out.backward = func() {
			a.ensureGrad()
			for i := range a.Grad {
				if a.Data[i] > 0 {
					a.Grad[i] += out.Grad[i]
				}
			}
		}
	}
	return out
}

// Sigmoid returns 1/(1+exp(-a)).
func Sigmoid(a *Tensor) *Tensor {
	out := newResult(a.Rows, a.Cols, []*Tensor{a}, nil)
	for i, v := range a.Data {
		out.Data[i] = 1 / (1 + math.Exp(-v))
	}
	if out.requiresGrad {
		out.backward = func() {
			a.ensureGrad()
			for i := range a.Grad {
				s := out.Data[i]
				a.Grad[i] += out.Grad[i] * s * (1 - s)
			}
		}
	}
	return out
}

// Tanh returns tanh(a).
func Tanh(a *Tensor) *Tensor {
	out := newResult(a.Rows, a.Cols, []*Tensor{a}, nil)
	for i, v := range a.Data {
		out.Data[i] = math.Tanh(v)
	}
	if out.requiresGrad {
		out.backward = func() {
			a.ensureGrad()
			for i := range a.Grad {
				th := out.Data[i]
				a.Grad[i] += out.Grad[i] * (1 - th*th)
			}
		}
	}
	return out
}

// SoftmaxRows applies softmax independently to each row.
func SoftmaxRows(a *Tensor) *Tensor {
	out := newResult(a.Rows, a.Cols, []*Tensor{a}, nil)
	for r := 0; r < a.Rows; r++ {
		base := r * a.Cols
		maxV := math.Inf(-1)
		for c := 0; c < a.Cols; c++ {
			if a.Data[base+c] > maxV {
				maxV = a.Data[base+c]
			}
		}
		sum := 0.0
		for c := 0; c < a.Cols; c++ {
			e := math.Exp(a.Data[base+c] - maxV)
			out.Data[base+c] = e
			sum += e
		}
		for c := 0; c < a.Cols; c++ {
			out.Data[base+c] /= sum
		}
	}
	if out.requiresGrad {
		out.backward = func() {
			a.ensureGrad()
			for r := 0; r < a.Rows; r++ {
				base := r * a.Cols
				dot := 0.0
				for c := 0; c < a.Cols; c++ {
					dot += out.Grad[base+c] * out.Data[base+c]
				}
				for c := 0; c < a.Cols; c++ {
					a.Grad[base+c] += out.Data[base+c] * (out.Grad[base+c] - dot)
				}
			}
		}
	}
	return out
}

// Transpose returns a^T.
func Transpose(a *Tensor) *Tensor {
	out := newResult(a.Cols, a.Rows, []*Tensor{a}, nil)
	for r := 0; r < a.Rows; r++ {
		for c := 0; c < a.Cols; c++ {
			out.Data[c*a.Rows+r] = a.Data[r*a.Cols+c]
		}
	}
	if out.requiresGrad {
		out.backward = func() {
			a.ensureGrad()
			for r := 0; r < a.Rows; r++ {
				for c := 0; c < a.Cols; c++ {
					a.Grad[r*a.Cols+c] += out.Grad[c*a.Rows+r]
				}
			}
		}
	}
	return out
}

// ConcatRows stacks tensors vertically (same Cols).
func ConcatRows(ts ...*Tensor) *Tensor {
	if len(ts) == 0 {
		invariant.Fail("tensor: ConcatRows of nothing")
	}
	cols := ts[0].Cols
	rows := 0
	for _, t := range ts {
		if t.Cols != cols {
			invariant.Fail("tensor: ConcatRows column mismatch")
		}
		rows += t.Rows
	}
	out := newResult(rows, cols, ts, nil)
	off := 0
	for _, t := range ts {
		copy(out.Data[off:], t.Data)
		off += len(t.Data)
	}
	if out.requiresGrad {
		out.backward = func() {
			off := 0
			for _, t := range ts {
				if t.requiresGrad {
					t.ensureGrad()
					for i := range t.Grad {
						t.Grad[i] += out.Grad[off+i]
					}
				}
				off += len(t.Data)
			}
		}
	}
	return out
}

// ConcatCols stacks tensors horizontally (same Rows).
func ConcatCols(ts ...*Tensor) *Tensor {
	if len(ts) == 0 {
		invariant.Fail("tensor: ConcatCols of nothing")
	}
	rows := ts[0].Rows
	cols := 0
	for _, t := range ts {
		if t.Rows != rows {
			invariant.Fail("tensor: ConcatCols row mismatch")
		}
		cols += t.Cols
	}
	out := newResult(rows, cols, ts, nil)
	colOff := 0
	for _, t := range ts {
		for r := 0; r < rows; r++ {
			copy(out.Data[r*cols+colOff:r*cols+colOff+t.Cols], t.Data[r*t.Cols:(r+1)*t.Cols])
		}
		colOff += t.Cols
	}
	if out.requiresGrad {
		out.backward = func() {
			colOff := 0
			for _, t := range ts {
				if t.requiresGrad {
					t.ensureGrad()
					for r := 0; r < rows; r++ {
						for c := 0; c < t.Cols; c++ {
							t.Grad[r*t.Cols+c] += out.Grad[r*cols+colOff+c]
						}
					}
				}
				colOff += t.Cols
			}
		}
	}
	return out
}

// SliceRows returns rows [lo,hi) as a new tensor in the graph.
func SliceRows(a *Tensor, lo, hi int) *Tensor {
	if lo < 0 || hi > a.Rows || lo >= hi {
		invariant.Failf("tensor: SliceRows [%d,%d) of %d rows", lo, hi, a.Rows)
	}
	out := newResult(hi-lo, a.Cols, []*Tensor{a}, nil)
	copy(out.Data, a.Data[lo*a.Cols:hi*a.Cols])
	if out.requiresGrad {
		out.backward = func() {
			a.ensureGrad()
			for i := range out.Grad {
				a.Grad[lo*a.Cols+i] += out.Grad[i]
			}
		}
	}
	return out
}

// MeanRows returns the column-wise mean as a 1 x Cols tensor.
func MeanRows(a *Tensor) *Tensor {
	out := newResult(1, a.Cols, []*Tensor{a}, nil)
	inv := 1.0 / float64(a.Rows)
	for r := 0; r < a.Rows; r++ {
		base := r * a.Cols
		for c := 0; c < a.Cols; c++ {
			out.Data[c] += a.Data[base+c] * inv
		}
	}
	if out.requiresGrad {
		out.backward = func() {
			a.ensureGrad()
			for r := 0; r < a.Rows; r++ {
				base := r * a.Cols
				for c := 0; c < a.Cols; c++ {
					a.Grad[base+c] += out.Grad[c] * inv
				}
			}
		}
	}
	return out
}

// EmbeddingLookup gathers rows of table [vocab x dim] by ids; backward
// scatter-adds into the table.
func EmbeddingLookup(table *Tensor, ids []int) *Tensor {
	for _, id := range ids {
		if id < 0 || id >= table.Rows {
			invariant.Failf("tensor: embedding id %d out of [0,%d)", id, table.Rows)
		}
	}
	out := newResult(len(ids), table.Cols, []*Tensor{table}, nil)
	for i, id := range ids {
		copy(out.Data[i*table.Cols:(i+1)*table.Cols], table.Data[id*table.Cols:(id+1)*table.Cols])
	}
	if out.requiresGrad {
		out.backward = func() {
			table.ensureGrad()
			for i, id := range ids {
				for c := 0; c < table.Cols; c++ {
					table.Grad[id*table.Cols+c] += out.Grad[i*table.Cols+c]
				}
			}
		}
	}
	return out
}

// --- losses ---

// BCEWithLogits is mean binary cross entropy over all elements of logits
// against targets in {0,1} (the paper's multi-label delta-bitmap loss).
func BCEWithLogits(logits *Tensor, targets []float64) *Tensor {
	if len(targets) != len(logits.Data) {
		invariant.Fail("tensor: BCE target length mismatch")
	}
	out := newResult(1, 1, []*Tensor{logits}, nil)
	n := float64(len(targets))
	loss := 0.0
	for i, z := range logits.Data {
		// Numerically stable: max(z,0) - z*y + log(1+exp(-|z|))
		loss += math.Max(z, 0) - z*targets[i] + math.Log1p(math.Exp(-math.Abs(z)))
	}
	out.Data[0] = loss / n
	if out.requiresGrad {
		out.backward = func() {
			logits.ensureGrad()
			g := out.Grad[0] / n
			for i, z := range logits.Data {
				s := 1 / (1 + math.Exp(-z))
				logits.Grad[i] += g * (s - targets[i])
			}
		}
	}
	return out
}

// CrossEntropyLogits is softmax cross entropy of a 1 x C logits row against
// class index target (the paper's page-classification loss).
func CrossEntropyLogits(logits *Tensor, target int) *Tensor {
	if logits.Rows != 1 {
		invariant.Fail("tensor: CrossEntropyLogits wants a 1xC row")
	}
	if target < 0 || target >= logits.Cols {
		invariant.Failf("tensor: target %d out of [0,%d)", target, logits.Cols)
	}
	out := newResult(1, 1, []*Tensor{logits}, nil)
	maxV := math.Inf(-1)
	for _, v := range logits.Data {
		if v > maxV {
			maxV = v
		}
	}
	sum := 0.0
	for _, v := range logits.Data {
		sum += math.Exp(v - maxV)
	}
	logZ := math.Log(sum) + maxV
	out.Data[0] = logZ - logits.Data[target]
	if out.requiresGrad {
		out.backward = func() {
			logits.ensureGrad()
			g := out.Grad[0]
			for i, v := range logits.Data {
				p := math.Exp(v - logZ)
				y := 0.0
				if i == target {
					y = 1
				}
				logits.Grad[i] += g * (p - y)
			}
		}
	}
	return out
}

// SoftCrossEntropy is the knowledge-distillation loss: cross entropy of
// student logits (1 x C) against a teacher probability row, both softened by
// temperature T: loss = -Σ teacherProbs_i · log softmax(logits/T)_i · T².
func SoftCrossEntropy(logits *Tensor, teacherProbs []float64, temperature float64) *Tensor {
	if logits.Rows != 1 || len(teacherProbs) != logits.Cols {
		invariant.Fail("tensor: SoftCrossEntropy shape mismatch")
	}
	if temperature <= 0 {
		invariant.Fail("tensor: temperature must be positive")
	}
	out := newResult(1, 1, []*Tensor{logits}, nil)
	scaled := make([]float64, logits.Cols)
	maxV := math.Inf(-1)
	for i, v := range logits.Data {
		scaled[i] = v / temperature
		if scaled[i] > maxV {
			maxV = scaled[i]
		}
	}
	sum := 0.0
	for _, v := range scaled {
		sum += math.Exp(v - maxV)
	}
	logZ := math.Log(sum) + maxV
	loss := 0.0
	for i, p := range teacherProbs {
		loss -= p * (scaled[i] - logZ)
	}
	out.Data[0] = loss * temperature * temperature
	if out.requiresGrad {
		out.backward = func() {
			logits.ensureGrad()
			g := out.Grad[0] * temperature // T² · (1/T) from the chain rule
			for i := range logits.Data {
				q := math.Exp(scaled[i] - logZ)
				logits.Grad[i] += g * (q - teacherProbs[i])
			}
		}
	}
	return out
}

// MSE is the mean squared error between a and target values.
func MSE(a *Tensor, targets []float64) *Tensor {
	if len(targets) != len(a.Data) {
		invariant.Fail("tensor: MSE target length mismatch")
	}
	out := newResult(1, 1, []*Tensor{a}, nil)
	n := float64(len(targets))
	for i, v := range a.Data {
		d := v - targets[i]
		out.Data[0] += d * d / n
	}
	if out.requiresGrad {
		out.backward = func() {
			a.ensureGrad()
			g := out.Grad[0]
			for i, v := range a.Data {
				a.Grad[i] += g * 2 * (v - targets[i]) / n
			}
		}
	}
	return out
}

//mpgraph:noalloc
func checkSameShape(op string, a, b *Tensor) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		invariant.Failf("tensor: %s shape mismatch %dx%d vs %dx%d", op, a.Rows, a.Cols, b.Rows, b.Cols)
	}
}
