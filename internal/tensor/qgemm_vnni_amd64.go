//go:build amd64

package tensor

// useVNNI gates the AVX-512 VNNI int8 GEMM kernel. It is a variable rather
// than a constant so tests can force the portable SWAR path and assert both
// paths produce bit-identical output; flip it only before any
// QuantizeWeights call (the VNNI layout is built at pack time).
var useVNNI = hasAVX512VNNI()

// vnniRowF64 is implemented in qgemm_vnni_amd64.s: one full output row of
// the quantized linear through the VNNI interleave, fused with the
// dequantize epilogue (see the .s file for the exact contract).
//
//mpgraph:noalloc
//
//go:noescape
func vnniRowF64(orow *float64, w *byte, ua *byte, scales *float64, corr *int32, groups int64, nOut int64, sx float64)

// quantizeRowAVX512 is implemented in qgemm_vnni_amd64.s: the vector mirror
// of quantizeValue, bit-identical on every input.
//
//mpgraph:noalloc
//
//go:noescape
func quantizeRowAVX512(dst *int8, src *float64, n int64, inv float64)

// qmaddRowVNNI computes one output row of the quantized linear through the
// VNNI representation: orow[j] = dot_int32(xq, col_j)·sx·Scales[j] (+
// bias[j]). ua is the row's offset activations (xq+128 as unsigned bytes)
// zero-padded to a multiple of four. Only the activations are offset, so
// the exact correction is the per-channel constant vcorr[j] = 128·colSum_j
// — there is no row-dependent term.
//
//mpgraph:noalloc
func qmaddRowVNNI(orow []float64, ua []byte, q *QTensor, sx float64, bias []float64) {
	vnniRowF64(&orow[0], &q.vnni[0], &ua[0], &q.Scales[0], &q.vcorr[0],
		int64(len(ua)/4), int64(q.Out), sx)
	if bias != nil {
		for j, bv := range bias {
			orow[j] += bv
		}
	}
}

// quantizeRowFast quantizes src into dst through the AVX-512 kernel,
// reporting false when the caller must run the scalar loop instead.
//
//mpgraph:noalloc
func quantizeRowFast(dst []int8, src []float64, inv float64) bool {
	if !useVNNI || len(src) == 0 {
		return false
	}
	quantizeRowAVX512(&dst[0], &src[0], int64(len(src)), inv)
	return true
}
