package tensor

// Batched-GEMM tier: one weight panel multiplied against an N-row stacked
// activation block. The sequential fast path (gemmBiasAct and friends) keeps
// its scalar register-blocked kernels untouched; the batch entry points below
// route through the AVX-512F panel kernels when available and fall back to
// the exact scalar kernels otherwise, so non-amd64 builds stay bit-identical
// to sequential inference.
//
// Determinism contract: every batch kernel computes output row r as a pure
// function of activation row r with a fixed per-row operation sequence that
// is identical between the 4-row and 1-row panel kernels. Results therefore
// do not depend on batch composition, which is what keeps sweep reports
// byte-identical for any batch size and worker count.

// initRowsBias seeds each of the m output rows with bias (or zeros), killing
// the per-row memclr+add the sequential path pays.
//
//mpgraph:noalloc
func initRowsBias(out, bias []float64, m, n int) {
	if bias == nil {
		clear(out[:m*n])
		return
	}
	for r := 0; r < m; r++ {
		copy(out[r*n:(r+1)*n], bias[:n])
	}
}

// gemmBatchBiasAct computes out = act(a@b + bias) for a stacked [m x k]
// activation block against one [k x n] weight panel. This is the batch
// tier's float entry point: b is streamed through cache once for all m rows.
//
//mpgraph:noalloc
func gemmBatchBiasAct(out, a, b, bias []float64, m, k, n int, act Act) {
	if m == 0 || n == 0 {
		return
	}
	if !batchKernelAvailable() {
		gemmBiasAct(out, a, b, bias, m, k, n, act)
		return
	}
	initRowsBias(out, bias, m, n)
	if k > 0 {
		fmaPanels(out, a, b, m, k, n)
	}
	applyActFast(out[:m*n], act)
}

// gemm2BatchBiasAct computes out = act(a1@b1 + a2@b2 + bias) — the fused
// two-input form the LSTM gates use — over a stacked m-row batch.
//
//mpgraph:noalloc
func gemm2BatchBiasAct(out, a1, b1, a2, b2, bias []float64, m, k1, k2, n int, act Act) {
	if m == 0 || n == 0 {
		return
	}
	if !batchKernelAvailable() {
		gemm2BiasAct(out, a1, b1, a2, b2, bias, m, k1, k2, n, act)
		return
	}
	initRowsBias(out, bias, m, n)
	if k1 > 0 {
		fmaPanels(out, a1, b1, m, k1, n)
	}
	if k2 > 0 {
		fmaPanels(out, a2, b2, m, k2, n)
	}
	applyActFast(out[:m*n], act)
}

// gemmBatch accumulates out += a @ b through the panel kernels (exact gemm
// fallback off AVX-512F). Used where the caller has already seeded out.
//
//mpgraph:noalloc
func gemmBatch(out, a, b []float64, m, k, n int) {
	if m == 0 || n == 0 || k == 0 {
		return
	}
	if !batchKernelAvailable() {
		gemm(out, a, b, m, k, n)
		return
	}
	fmaPanels(out, a, b, m, k, n)
}

// qgemmBatch is the int8 counterpart of gemmBatchBiasAct. The quantized
// per-row kernels (scalar/SWAR/VNNI) are already batch-oblivious — each
// output row is an exact int32 dot of its own quantized activation row — so
// the batched tier is the same kernel at m stacked rows, and batch output is
// bit-identical to m sequential calls by construction.
//
//mpgraph:noalloc
func (c *Ctx) qgemmBatch(out []float64, xq []int8, q *QTensor, m int, sx float64, bias []float64, act Act) {
	c.qgemmBiasActFast(out, xq, q, m, sx, bias, act)
}
