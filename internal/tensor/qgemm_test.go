package tensor

import (
	"math"
	"math/rand"
	"testing"
)

// refQuantLinear computes act(deq(q(x)@W^T)+bias) the slow, obvious way:
// explicit per-element quantize, integer matmul, dequantize. The fused
// kernels must match it exactly — same grid, same int32 arithmetic.
func refQuantLinear(x *Tensor, scale float64, q *QTensor, bias *Tensor, act Act) *Tensor {
	out := Zeros(x.Rows, q.Out)
	for i := 0; i < x.Rows; i++ {
		for j := 0; j < q.Out; j++ {
			var acc int32
			for p := 0; p < q.In; p++ {
				xq := quantizeValue(x.At(i, p), 1/scale)
				acc += int32(xq) * int32(q.Data[j*q.In+p])
			}
			v := float64(acc) * scale * q.Scales[j]
			if bias != nil {
				v += bias.At(0, j)
			}
			out.Set(i, j, v)
		}
	}
	for i := 0; i < out.Rows; i++ {
		applyAct(out.Data[i*out.Cols:(i+1)*out.Cols], act)
	}
	return out
}

func TestQuantizeWeightsPerChannel(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	w := Randn(13, 9, 1, rng)
	// Make channel ranges wildly different so a per-tensor scale would be
	// visibly lossier on the narrow channels.
	for i := 0; i < w.Rows; i++ {
		w.Data[i*w.Cols+0] *= 100
		w.Data[i*w.Cols+1] *= 0.01
	}
	q := QuantizeWeights(w)
	deq := q.Dequantize()
	for j := 0; j < w.Cols; j++ {
		var maxAbs, maxErr float64
		for i := 0; i < w.Rows; i++ {
			v := w.At(i, j)
			if a := math.Abs(v); a > maxAbs {
				maxAbs = a
			}
			if e := math.Abs(v - deq.At(i, j)); e > maxErr {
				maxErr = e
			}
		}
		// Symmetric 8-bit rounding error is bounded by half a step.
		if step := QuantScale(maxAbs); maxErr > step/2+1e-12 {
			t.Fatalf("channel %d: reconstruction error %g exceeds half step %g", j, maxErr, step/2)
		}
	}
}

func TestQuantScaleGuards(t *testing.T) {
	for _, v := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		if s := QuantScale(v); s != 1 {
			t.Fatalf("QuantScale(%v) = %g, want guard value 1", v, s)
		}
	}
	if s := QuantScale(127); s != 1 {
		t.Fatalf("QuantScale(127) = %g, want 1", s)
	}
}

func TestQuantizeValueSaturates(t *testing.T) {
	if v := quantizeValue(1000, 1); v != qmax {
		t.Fatalf("positive saturation: got %d", v)
	}
	if v := quantizeValue(-1000, 1); v != -qmax {
		t.Fatalf("negative saturation: got %d", v)
	}
}

func TestQLinearActMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, shape := range []struct{ m, k, n int }{
		{1, 5, 3}, {4, 16, 8}, {3, 33, 17}, {2, 7, 1},
	} {
		w := Randn(shape.k, shape.n, 0.5, rng)
		bias := Randn(1, shape.n, 0.1, rng)
		x := Randn(shape.m, shape.k, 1.5, rng)
		q := QuantizeWeights(w)
		scale := QuantScale(x.MaxAbs())
		for _, act := range []Act{ActNone, ActReLU, ActSigmoid, ActTanh} {
			want := refQuantLinear(x, scale, q, bias, act)
			ctx := NewCtx()
			for round := 0; round < 3; round++ {
				got := ctx.QLinearAct(x, scale, q, bias, act)
				for i := range want.Data {
					if got.Data[i] != want.Data[i] {
						t.Fatalf("shape %v act %d round %d: fused[%d]=%g ref=%g",
							shape, act, round, i, got.Data[i], want.Data[i])
					}
				}
				ctx.Reset()
			}
			// The nil-ctx slow path must agree bit for bit too.
			var nilCtx *Ctx
			got := nilCtx.QLinearAct(x, scale, q, bias, act)
			for i := range want.Data {
				if got.Data[i] != want.Data[i] {
					t.Fatalf("shape %v act %d: nil-ctx[%d]=%g ref=%g", shape, act, i, got.Data[i], want.Data[i])
				}
			}
		}
	}
}

// TestQLinearActSWARMatchesVNNI forces the portable SWAR path on hardware
// where the VNNI assembly kernel is live and checks the two produce
// bit-identical output (both are exact int32, so any divergence is a packing
// or correction bug, not rounding). On machines without VNNI both sides run
// SWAR and the test degenerates to a self-check.
func TestQLinearActSWARMatchesVNNI(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, shape := range []struct{ m, k, n int }{
		{1, 5, 3}, {4, 16, 16}, {3, 33, 17}, {1, 32, 127}, {2, 30, 1024},
	} {
		w := Randn(shape.k, shape.n, 0.5, rng)
		bias := Randn(1, shape.n, 0.1, rng)
		x := Randn(shape.m, shape.k, 1.5, rng)
		scale := QuantScale(x.MaxAbs())

		qDefault := QuantizeWeights(w)
		saved := useVNNI
		useVNNI = false
		qSWAR := QuantizeWeights(w)
		useVNNI = saved

		if saved && qSWAR.vnni != nil {
			t.Fatal("SWAR-forced QTensor still carries a VNNI layout")
		}
		ctx := NewCtx()
		a := ctx.QLinearAct(x, scale, qDefault, bias, ActReLU)
		b := ctx.QLinearAct(x, scale, qSWAR, bias, ActReLU)
		for i := range a.Data {
			if a.Data[i] != b.Data[i] {
				t.Fatalf("shape %v: default[%d]=%g swar=%g", shape, i, a.Data[i], b.Data[i])
			}
		}
		ctx.Reset()
	}
}

// TestQuantizeRowFastMatchesScalar pins the vector quantizer to the scalar
// grid bit for bit across magnitudes, saturation, and tail lengths.
func TestQuantizeRowFastMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for _, n := range []int{1, 3, 7, 8, 9, 16, 33, 127} {
		src := make([]float64, n)
		for i := range src {
			src[i] = rng.NormFloat64() * 3
		}
		src[0] = 1e6  // positive saturation
		if n > 1 {
			src[1] = -1e6 // negative saturation
		}
		inv := 1 / QuantScale(2.5)
		want := make([]int8, n)
		for i, v := range src {
			want[i] = quantizeValue(v, inv)
		}
		got := make([]int8, n)
		quantizeRowInto(got, src, inv)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("n=%d elt %d: fast %d scalar %d (src %g)", n, i, got[i], want[i], src[i])
			}
		}
	}
}

func TestQLinearActApproximatesFloat(t *testing.T) {
	// Quantized output should track the float linear closely relative to the
	// layer's output range — the layer-level guarantee the model parity
	// tests build on.
	rng := rand.New(rand.NewSource(23))
	w := Randn(32, 24, 0.4, rng)
	bias := Randn(1, 24, 0.1, rng)
	x := Randn(6, 32, 1, rng)
	q := QuantizeWeights(w)
	scale := QuantScale(x.MaxAbs())
	ctx := NewCtx()
	got := ctx.QLinearAct(x, scale, q, bias, ActNone)
	want := ctx.LinearAct(x, w, bias, ActNone)
	rangeAbs := want.MaxAbs()
	for i := range want.Data {
		if err := math.Abs(got.Data[i] - want.Data[i]); err > 0.05*rangeAbs {
			t.Fatalf("elt %d: quantized %g vs float %g (err %g, range %g)",
				i, got.Data[i], want.Data[i], err, rangeAbs)
		}
	}
}

func TestQuantizeActsSharedBuffer(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x := Randn(4, 10, 2, rng)
	scale := QuantScale(x.MaxAbs())
	ctx := NewCtx()
	xq := ctx.QuantizeActs(x, scale)
	if len(xq) != len(x.Data) {
		t.Fatalf("quantized buffer length %d != %d", len(xq), len(x.Data))
	}
	w := Randn(10, 6, 0.3, rng)
	q := QuantizeWeights(w)
	a := ctx.QLinearActQ(xq, x.Rows, scale, q, nil, ActNone)
	b := ctx.QLinearAct(x, scale, q, nil, ActNone)
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatalf("shared-buffer path diverges at %d: %g vs %g", i, a.Data[i], b.Data[i])
		}
	}
}

func TestQTensorStorageBytes(t *testing.T) {
	q := QuantizeWeights(Zeros(16, 4))
	if got, want := q.StorageBytes(), 16*4+8*4; got != want {
		t.Fatalf("StorageBytes = %d, want %d", got, want)
	}
}
