//go:build amd64

package tensor

// useAVX512F gates the float64 batched-GEMM and vector-activation kernels.
// It is a variable rather than a constant so tests can force the portable
// scalar path and compare both tiers on the same machine.
var useAVX512F = hasAVX512F()

// fmaPanel4Asm is implemented in gemm_batch_amd64.s: out += a @ b for four
// consecutive rows of the activation block (out rows stride n, a rows stride
// k), walking b in 16-column zmm tiles so one weight load feeds four FMA
// chains.
//
//mpgraph:noalloc
//
//go:noescape
func fmaPanel4Asm(out, a, b *float64, k, n int64)

// fmaPanel1Asm is the single-row remainder kernel; per element it executes
// the identical FMA sequence of one fmaPanel4Asm row, so batch composition
// never changes any row's bits.
//
//mpgraph:noalloc
//
//go:noescape
func fmaPanel1Asm(out, a, b *float64, k, n int64)

// vactAVX512 is implemented in gemm_batch_amd64.s: elementwise activation in
// place over n float64s. mode 0 = exp(x-bias), 1 = sigmoid, 2 = tanh.
//
//mpgraph:noalloc
//
//go:noescape
func vactAVX512(p *float64, n, mode int64, bias float64)

// batchKernelAvailable reports whether the AVX-512F batch tier is usable on
// this machine; callers fall back to the exact scalar kernels otherwise.
//
//mpgraph:noalloc
func batchKernelAvailable() bool { return useAVX512F }

// fmaPanels accumulates out += a @ b over all m rows through the AVX-512F
// panel kernels, four rows at a time with a single-row remainder.
//
//mpgraph:noalloc
func fmaPanels(out, a, b []float64, m, k, n int) {
	r := 0
	for ; r+4 <= m; r += 4 {
		fmaPanel4Asm(&out[r*n], &a[r*k], &b[0], int64(k), int64(n))
	}
	for ; r < m; r++ {
		fmaPanel1Asm(&out[r*n], &a[r*k], &b[0], int64(k), int64(n))
	}
}

// vexpRow replaces row[i] with exp(row[i]-bias) through the vector kernel.
//
//mpgraph:noalloc
func vexpRow(row []float64, bias float64) {
	if len(row) == 0 {
		return
	}
	vactAVX512(&row[0], int64(len(row)), 0, bias)
}

// vsigmoidRow applies sigmoid in place through the vector kernel.
//
//mpgraph:noalloc
func vsigmoidRow(row []float64) {
	if len(row) == 0 {
		return
	}
	vactAVX512(&row[0], int64(len(row)), 1, 0)
}

// vtanhRow applies tanh in place through the vector kernel.
//
//mpgraph:noalloc
func vtanhRow(row []float64) {
	if len(row) == 0 {
		return
	}
	vactAVX512(&row[0], int64(len(row)), 2, 0)
}
