package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// gradCheck numerically verifies d(loss)/d(p) for every parameter in params
// against the autograd result, where forward rebuilds the graph from the
// params' current Data.
func gradCheck(t *testing.T, name string, params []*Tensor, forward func() *Tensor) {
	t.Helper()
	loss := forward()
	if err := loss.Backward(); err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	const h = 1e-6
	for pi, p := range params {
		if p.Grad == nil {
			t.Fatalf("%s: param %d has no grad", name, pi)
		}
		for i := range p.Data {
			orig := p.Data[i]
			p.Data[i] = orig + h
			up := forward().Data[0]
			p.Data[i] = orig - h
			down := forward().Data[0]
			p.Data[i] = orig
			numeric := (up - down) / (2 * h)
			got := p.Grad[i]
			if math.Abs(numeric-got) > 1e-4*(1+math.Abs(numeric)) {
				t.Fatalf("%s: param %d elem %d: autograd %g vs numeric %g", name, pi, i, got, numeric)
			}
		}
	}
	// Clear grads so repeated checks start clean.
	for _, p := range params {
		p.ZeroGrad()
	}
}

func randParam(rng *rand.Rand, r, c int) *Tensor {
	return Randn(r, c, 0.5, rng).Param()
}

func TestGradMatMul(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a, b := randParam(rng, 3, 4), randParam(rng, 4, 2)
	gradCheck(t, "matmul", []*Tensor{a, b}, func() *Tensor {
		return MSE(MatMul(a, b), make([]float64, 6))
	})
}

func TestGradAddAndBias(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a, b := randParam(rng, 2, 3), randParam(rng, 2, 3)
	gradCheck(t, "add", []*Tensor{a, b}, func() *Tensor {
		return MSE(Add(a, b), []float64{1, 2, 3, 4, 5, 6})
	})
	x, bias := randParam(rng, 3, 2), randParam(rng, 1, 2)
	gradCheck(t, "addbias", []*Tensor{x, bias}, func() *Tensor {
		return MSE(AddBias(x, bias), make([]float64, 6))
	})
}

func TestGradMulScale(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a, b := randParam(rng, 2, 2), randParam(rng, 2, 2)
	gradCheck(t, "mul", []*Tensor{a, b}, func() *Tensor {
		return MSE(Mul(a, b), []float64{1, 0, -1, 2})
	})
	gradCheck(t, "scale", []*Tensor{a}, func() *Tensor {
		return MSE(Scale(a, -2.5), make([]float64, 4))
	})
}

func TestGradActivations(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := randParam(rng, 2, 3)
	gradCheck(t, "relu", []*Tensor{a}, func() *Tensor {
		return MSE(ReLU(a), []float64{1, 1, 1, 1, 1, 1})
	})
	gradCheck(t, "sigmoid", []*Tensor{a}, func() *Tensor {
		return MSE(Sigmoid(a), make([]float64, 6))
	})
	gradCheck(t, "tanh", []*Tensor{a}, func() *Tensor {
		return MSE(Tanh(a), make([]float64, 6))
	})
}

func TestGradSoftmax(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randParam(rng, 2, 4)
	target := []float64{0.5, 0, 0.5, 0, 0, 1, 0, 0}
	gradCheck(t, "softmax", []*Tensor{a}, func() *Tensor {
		return MSE(SoftmaxRows(a), target)
	})
}

func TestGradTransposeConcatSlice(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a, b := randParam(rng, 2, 3), randParam(rng, 2, 3)
	gradCheck(t, "transpose", []*Tensor{a}, func() *Tensor {
		return MSE(Transpose(a), make([]float64, 6))
	})
	gradCheck(t, "concatrows", []*Tensor{a, b}, func() *Tensor {
		return MSE(ConcatRows(a, b), make([]float64, 12))
	})
	gradCheck(t, "concatcols", []*Tensor{a, b}, func() *Tensor {
		return MSE(ConcatCols(a, b), make([]float64, 12))
	})
	gradCheck(t, "slicerows", []*Tensor{a}, func() *Tensor {
		return MSE(SliceRows(a, 1, 2), make([]float64, 3))
	})
	gradCheck(t, "meanrows", []*Tensor{a}, func() *Tensor {
		return MSE(MeanRows(a), make([]float64, 3))
	})
}

func TestGradEmbedding(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	table := randParam(rng, 5, 3)
	ids := []int{1, 4, 1}
	gradCheck(t, "embedding", []*Tensor{table}, func() *Tensor {
		return MSE(EmbeddingLookup(table, ids), make([]float64, 9))
	})
}

func TestGradLosses(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	logits := randParam(rng, 1, 6)
	targets := []float64{1, 0, 1, 0, 0, 1}
	gradCheck(t, "bce", []*Tensor{logits}, func() *Tensor {
		return BCEWithLogits(logits, targets)
	})
	gradCheck(t, "ce", []*Tensor{logits}, func() *Tensor {
		return CrossEntropyLogits(logits, 3)
	})
	teacher := []float64{0.1, 0.2, 0.05, 0.4, 0.15, 0.1}
	gradCheck(t, "kd", []*Tensor{logits}, func() *Tensor {
		return SoftCrossEntropy(logits, teacher, 2.0)
	})
}

// A composite network exercising the full op set: grads must match numerics
// end to end.
func TestGradComposite(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	x := randParam(rng, 4, 3)
	w1 := randParam(rng, 3, 5)
	b1 := randParam(rng, 1, 5)
	w2 := randParam(rng, 5, 4)
	gradCheck(t, "composite", []*Tensor{x, w1, b1, w2}, func() *Tensor {
		h := ReLU(AddBias(MatMul(x, w1), b1))
		attn := SoftmaxRows(Scale(MatMul(h, Transpose(h)), 0.5))
		ctx := MatMul(attn, h)
		out := MatMul(MeanRows(ctx), w2)
		return CrossEntropyLogits(out, 2)
	})
}

// Diamond graph: a tensor consumed by two branches must accumulate both
// gradient contributions.
func TestGradDiamond(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	a := randParam(rng, 2, 2)
	gradCheck(t, "diamond", []*Tensor{a}, func() *Tensor {
		left := Sigmoid(a)
		right := Tanh(a)
		return MSE(Add(left, right), make([]float64, 4))
	})
}

func TestBackwardErrors(t *testing.T) {
	a := Zeros(2, 2)
	if err := a.Backward(); err == nil {
		t.Fatal("non-scalar Backward must fail")
	}
	s := Zeros(1, 1)
	if err := s.Backward(); err == nil {
		t.Fatal("graphless Backward must fail")
	}
}

func TestSetGradEnabled(t *testing.T) {
	a := Zeros(2, 2).Param()
	old := SetGradEnabled(false)
	defer SetGradEnabled(old)
	if GradEnabled() {
		t.Fatal("grad should be disabled")
	}
	out := Sigmoid(a)
	if out.RequiresGrad() || out.backward != nil {
		t.Fatal("no-grad mode must not build graph")
	}
	SetGradEnabled(true)
	out2 := Sigmoid(a)
	if !out2.RequiresGrad() {
		t.Fatal("grad mode must build graph")
	}
}

func TestShapePanics(t *testing.T) {
	expectPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: want panic", name)
			}
		}()
		f()
	}
	a, b := Zeros(2, 3), Zeros(2, 2)
	expectPanic("matmul", func() { MatMul(a, b) })
	expectPanic("add", func() { Add(a, b) })
	expectPanic("addbias", func() { AddBias(a, Zeros(1, 2)) })
	expectPanic("mul", func() { Mul(a, b) })
	expectPanic("concatrows", func() { ConcatRows(a, b) })
	expectPanic("concatcols", func() { ConcatCols(a, Zeros(3, 3)) })
	expectPanic("slicerows", func() { SliceRows(a, 1, 1) })
	expectPanic("embedding", func() { EmbeddingLookup(a, []int{5}) })
	expectPanic("bce", func() { BCEWithLogits(a, []float64{1}) })
	expectPanic("ce-shape", func() { CrossEntropyLogits(a, 0) })
	expectPanic("ce-target", func() { CrossEntropyLogits(Zeros(1, 2), 7) })
	expectPanic("kd", func() { SoftCrossEntropy(Zeros(1, 2), []float64{1, 0}, 0) })
	expectPanic("mse", func() { MSE(a, []float64{1}) })
	expectPanic("new", func() { New(2, 2, []float64{1}) })
	expectPanic("concat-empty", func() { ConcatRows() })
}

func TestMatMulCorrectness(t *testing.T) {
	a := New(2, 3, []float64{1, 2, 3, 4, 5, 6})
	b := New(3, 2, []float64{7, 8, 9, 10, 11, 12})
	c := MatMul(a, b)
	want := []float64{58, 64, 139, 154}
	for i := range want {
		if c.Data[i] != want[i] {
			t.Fatalf("matmul[%d] = %g, want %g", i, c.Data[i], want[i])
		}
	}
}

// Property: the parallel GEMM matches a naive reference for random shapes.
func TestQuickGEMMMatchesNaive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, k, n := 1+rng.Intn(40), 1+rng.Intn(40), 1+rng.Intn(40)
		a := Randn(m, k, 1, rng)
		b := Randn(k, n, 1, rng)
		got := MatMul(a, b)
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				s := 0.0
				for p := 0; p < k; p++ {
					s += a.At(i, p) * b.At(p, j)
				}
				if math.Abs(s-got.At(i, j)) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Parallel GEMM path (big matrices) must agree with the serial path.
func TestGEMMParallelPath(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := Randn(128, 96, 1, rng)
	b := Randn(96, 64, 1, rng)
	big := MatMul(a, b) // exceeds gemmParallelThreshold
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			s := 0.0
			for p := 0; p < a.Cols; p++ {
				s += a.At(i, p) * b.At(p, j)
			}
			if math.Abs(s-big.At(i, j)) > 1e-9 {
				t.Fatalf("parallel gemm mismatch at %d,%d", i, j)
			}
		}
	}
}

// Property: softmax rows are positive and sum to one.
func TestQuickSoftmaxRows(t *testing.T) {
	f := func(vals []float64) bool {
		if len(vals) == 0 {
			return true
		}
		if len(vals) > 64 {
			vals = vals[:64]
		}
		for i, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				vals[i] = 0
			}
			// Clamp to a sane logit range.
			vals[i] = math.Mod(vals[i], 50)
		}
		a := New(1, len(vals), vals)
		s := SoftmaxRows(a)
		sum := 0.0
		for _, v := range s.Data {
			if v < 0 || v > 1 {
				return false
			}
			sum += v
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCloneDetachHelpers(t *testing.T) {
	a := New(2, 2, []float64{1, 2, 3, 4}).Param()
	c := a.Clone()
	c.Data[0] = 99
	if a.Data[0] != 1 {
		t.Fatal("Clone must deep copy")
	}
	d := a.Detach()
	if d.RequiresGrad() {
		t.Fatal("Detach must drop grad")
	}
	d.Data[1] = 42
	if a.Data[1] != 42 {
		t.Fatal("Detach must share storage")
	}
	if a.MaxAbs() != 42 {
		t.Fatalf("MaxAbs = %g", a.MaxAbs())
	}
	if a.String() == "" {
		t.Fatal("String")
	}
	a.Set(0, 0, 7)
	if a.At(0, 0) != 7 {
		t.Fatal("At/Set")
	}
}

func TestGradNormalizeRows(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	a := randParam(rng, 3, 5)
	gradCheck(t, "normalize", []*Tensor{a}, func() *Tensor {
		return MSE(NormalizeRows(a, 1e-5), make([]float64, 15))
	})
}

func TestGradMulBias(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	a, g := randParam(rng, 3, 4), randParam(rng, 1, 4)
	gradCheck(t, "mulbias", []*Tensor{a, g}, func() *Tensor {
		return MSE(MulBias(a, g), make([]float64, 12))
	})
}

func TestNormalizeRowsStatistics(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	a := Randn(4, 16, 3, rng)
	out := NormalizeRows(a, 1e-8)
	for r := 0; r < out.Rows; r++ {
		mean, sq := 0.0, 0.0
		for c := 0; c < out.Cols; c++ {
			mean += out.At(r, c)
		}
		mean /= float64(out.Cols)
		for c := 0; c < out.Cols; c++ {
			d := out.At(r, c) - mean
			sq += d * d
		}
		sq /= float64(out.Cols)
		if math.Abs(mean) > 1e-9 || math.Abs(sq-1) > 1e-6 {
			t.Fatalf("row %d: mean %g var %g", r, mean, sq)
		}
	}
}
