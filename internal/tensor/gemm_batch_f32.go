package tensor

// Batched entry points of the f32 compute tier (DESIGN.md §13). Structure
// mirrors gemm_batch.go: route through the AVX-512F f32 panel kernels when
// available, fall back to the exact scalar f32 kernels otherwise, and keep
// every output row a pure function of its own activation row so batch
// composition never changes bits.
//
// Unlike the f64 tier — whose sequential path predates batching and keeps
// its own scalar kernels — the f32 tier is new, so sequential f32 inference
// uses these same entry points at m = HistoryT-sized row counts and the
// vector tier accelerates both.

// initRowsBiasF32 seeds each of the m output rows with bias (or zeros).
//
//mpgraph:noalloc
func initRowsBiasF32(out, bias []float32, m, n int) {
	if bias == nil {
		clear(out[:m*n])
		return
	}
	for r := 0; r < m; r++ {
		copy(out[r*n:(r+1)*n], bias[:n])
	}
}

// gemmBatchBiasActF32 computes out = act(a@b + bias) for a stacked [m x k]
// activation block against one [k x n] f32 weight panel.
//
//mpgraph:noalloc
func gemmBatchBiasActF32(out, a, b, bias []float32, m, k, n int, act Act) {
	if m == 0 || n == 0 {
		return
	}
	if !batchKernelAvailable() {
		gemmBiasActF32(out, a, b, bias, m, k, n, act)
		return
	}
	initRowsBiasF32(out, bias, m, n)
	if k > 0 {
		fmaPanelsF32(out, a, b, m, k, n)
	}
	applyActFastF32(out[:m*n], act)
}

// gemm2BatchBiasActF32 computes out = act(a1@b1 + a2@b2 + bias) — the fused
// two-input LSTM gate form — over a stacked m-row batch.
//
//mpgraph:noalloc
func gemm2BatchBiasActF32(out, a1, b1, a2, b2, bias []float32, m, k1, k2, n int, act Act) {
	if m == 0 || n == 0 {
		return
	}
	if !batchKernelAvailable() {
		gemm2BiasActF32(out, a1, b1, a2, b2, bias, m, k1, k2, n, act)
		return
	}
	initRowsBiasF32(out, bias, m, n)
	if k1 > 0 {
		fmaPanelsF32(out, a1, b1, m, k1, n)
	}
	if k2 > 0 {
		fmaPanelsF32(out, a2, b2, m, k2, n)
	}
	applyActFastF32(out[:m*n], act)
}

// gemmBatchF32 accumulates out += a @ b through the panel kernels (exact
// scalar fallback off AVX-512F). Used where the caller has already seeded
// out.
//
//mpgraph:noalloc
func gemmBatchF32(out, a, b []float32, m, k, n int) {
	if m == 0 || n == 0 || k == 0 {
		return
	}
	if !batchKernelAvailable() {
		gemmF32(out, a, b, m, k, n)
		return
	}
	fmaPanelsF32(out, a, b, m, k, n)
}
