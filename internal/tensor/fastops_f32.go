package tensor

import (
	"math"

	"mpgraph/internal/invariant"
)

// Graph-free f32 ops (DESIGN.md §13). Unlike the float64 fast path — whose
// nil-ctx form falls back to autograd — the f32 tier is inference-only:
// training never runs in single precision, so every op below requires a
// non-nil ctx and fails the invariant otherwise (model mirrors fall back to
// their float64 source before reaching tensor code).
//
// Every op routes through the batched panel kernels, which dispatch to the
// AVX-512F tier when available and the exact scalar f32 kernels otherwise.
// Each output row is a pure function of its own input row with a fixed
// per-row operation sequence, so sequential (one-sample) and batched f32
// inference are bit-identical and batch composition never changes bits.

// requireCtx guards the f32 tier's non-nil ctx contract.
//
//mpgraph:noalloc
func requireCtx(c *Ctx, op string) {
	if c == nil {
		invariant.Failf("tensor: %s requires a non-nil ctx (f32 tier is inference-only)", op)
	}
}

// ZerosF32 returns a zeroed arena-backed rows x cols f32 tensor.
//
//mpgraph:noalloc
func (c *Ctx) ZerosF32(rows, cols int) *F32Tensor {
	requireCtx(c, "ZerosF32")
	return c.zerosF32(rows, cols)
}

// NarrowCtxF32 rounds a float64 tensor into an arena-backed f32 tensor — the
// activation-narrowing step where f64 feature builders hand off to the f32
// compute tier.
//
//mpgraph:noalloc
func (c *Ctx) NarrowCtxF32(t *Tensor) *F32Tensor {
	requireCtx(c, "NarrowCtxF32")
	out := c.uninitF32(t.Rows, t.Cols)
	for i, v := range t.Data {
		out.Data[i] = float32(v)
	}
	return out
}

// WidenCtxF32 widens an f32 tensor into an arena-backed float64 tensor —
// the exact (and rank-preserving) hand-off from f32 compute back to the
// float64 score consumers (screening, top-k decode).
//
//mpgraph:noalloc
func (c *Ctx) WidenCtxF32(t *F32Tensor) *Tensor {
	requireCtx(c, "WidenCtxF32")
	out := c.uninit(t.Rows, t.Cols)
	for i, v := range t.Data {
		out.Data[i] = float64(v)
	}
	return out
}

// AddF32 returns a+b elementwise.
//
//mpgraph:noalloc
func (c *Ctx) AddF32(a, b *F32Tensor) *F32Tensor {
	requireCtx(c, "AddF32")
	if a.Rows != b.Rows || a.Cols != b.Cols {
		invariant.Failf("tensor: addF32 %dx%d + %dx%d", a.Rows, a.Cols, b.Rows, b.Cols)
	}
	out := c.uninitF32(a.Rows, a.Cols)
	for i, av := range a.Data {
		out.Data[i] = av + b.Data[i]
	}
	return out
}

// AddBiasF32 broadcasts the [1 x d] bias row over every row of a.
//
//mpgraph:noalloc
func (c *Ctx) AddBiasF32(a, bias *F32Tensor) *F32Tensor {
	requireCtx(c, "AddBiasF32")
	if bias.Rows != 1 || bias.Cols != a.Cols {
		invariant.Failf("tensor: addBiasF32 %dx%d + %dx%d", a.Rows, a.Cols, bias.Rows, bias.Cols)
	}
	out := c.uninitF32(a.Rows, a.Cols)
	for r := 0; r < a.Rows; r++ {
		arow := a.Data[r*a.Cols : (r+1)*a.Cols]
		orow := out.Data[r*a.Cols : (r+1)*a.Cols]
		for j, av := range arow {
			orow[j] = av + bias.Data[j]
		}
	}
	return out
}

// MeanRowsF32 reduces a to its column means [1 x d] — the blocks=1 case of
// MeanRowsBatchF32.
//
//mpgraph:noalloc
func (c *Ctx) MeanRowsF32(a *F32Tensor) *F32Tensor {
	requireCtx(c, "MeanRowsF32")
	return c.MeanRowsBatchF32(a, 1)
}

// RowViewF32 returns row r of a as a zero-copy 1 x Cols view.
//
//mpgraph:noalloc
func (c *Ctx) RowViewF32(a *F32Tensor, r int) *F32Tensor {
	requireCtx(c, "RowViewF32")
	if r < 0 || r >= a.Rows {
		invariant.Failf("tensor: RowViewF32 %d of %d rows", r, a.Rows)
	}
	return c.viewF32(1, a.Cols, a.Data[r*a.Cols:(r+1)*a.Cols])
}

// ConcatRows2F32 stacks two tensors vertically (fixed arity keeps the hot
// path free of escaping slices, as ConcatRows2).
//
//mpgraph:noalloc
func (c *Ctx) ConcatRows2F32(a, b *F32Tensor) *F32Tensor {
	requireCtx(c, "ConcatRows2F32")
	if a.Cols != b.Cols {
		invariant.Fail("tensor: ConcatRows2F32 column mismatch")
	}
	out := c.uninitF32(a.Rows+b.Rows, a.Cols)
	copy(out.Data, a.Data)
	copy(out.Data[len(a.Data):], b.Data)
	return out
}

// ConcatCols2F32 stacks two tensors horizontally.
//
//mpgraph:noalloc
func (c *Ctx) ConcatCols2F32(a, b *F32Tensor) *F32Tensor {
	requireCtx(c, "ConcatCols2F32")
	if a.Rows != b.Rows {
		invariant.Fail("tensor: ConcatCols2F32 row mismatch")
	}
	rows, cols := a.Rows, a.Cols+b.Cols
	out := c.uninitF32(rows, cols)
	for r := 0; r < rows; r++ {
		copy(out.Data[r*cols:], a.Data[r*a.Cols:(r+1)*a.Cols])
		copy(out.Data[r*cols+a.Cols:], b.Data[r*b.Cols:(r+1)*b.Cols])
	}
	return out
}

// ConcatColsF32 stacks tensors horizontally (same Rows) — the multi-head
// concat; heads come from an arena F32Ptrs slice.
//
//mpgraph:noalloc
func (c *Ctx) ConcatColsF32(ts []*F32Tensor) *F32Tensor {
	requireCtx(c, "ConcatColsF32")
	if len(ts) == 0 {
		invariant.Fail("tensor: ConcatColsF32 of nothing")
	}
	rows := ts[0].Rows
	cols := 0
	for _, t := range ts {
		if t.Rows != rows {
			invariant.Fail("tensor: ConcatColsF32 row mismatch")
		}
		cols += t.Cols
	}
	out := c.uninitF32(rows, cols)
	colOff := 0
	for _, t := range ts {
		for r := 0; r < rows; r++ {
			copy(out.Data[r*cols+colOff:r*cols+colOff+t.Cols], t.Data[r*t.Cols:(r+1)*t.Cols])
		}
		colOff += t.Cols
	}
	return out
}

// EmbeddingLookupF32 gathers rows of table by ids.
//
//mpgraph:noalloc
func (c *Ctx) EmbeddingLookupF32(table *F32Tensor, ids []int) *F32Tensor {
	requireCtx(c, "EmbeddingLookupF32")
	for _, id := range ids {
		if id < 0 || id >= table.Rows {
			invariant.Failf("tensor: embeddingF32 id %d out of [0,%d)", id, table.Rows)
		}
	}
	out := c.uninitF32(len(ids), table.Cols)
	for i, id := range ids {
		copy(out.Data[i*table.Cols:(i+1)*table.Cols], table.Data[id*table.Cols:(id+1)*table.Cols])
	}
	return out
}

// LinearActF32 returns act(x@w + bias) through the batched f32 panel
// kernels (bias may be nil).
//
//mpgraph:noalloc
func (c *Ctx) LinearActF32(x, w, bias *F32Tensor, act Act) *F32Tensor {
	requireCtx(c, "LinearActF32")
	if x.Cols != w.Rows {
		invariant.Failf("tensor: linearF32 %dx%d @ %dx%d", x.Rows, x.Cols, w.Rows, w.Cols)
	}
	out := c.uninitF32(x.Rows, w.Cols)
	var bd []float32
	if bias != nil {
		if bias.Rows != 1 || bias.Cols != w.Cols {
			invariant.Failf("tensor: linearF32 bias %dx%d for width %d", bias.Rows, bias.Cols, w.Cols)
		}
		bd = bias.Data
	}
	gemmBatchBiasActF32(out.Data, x.Data, w.Data, bd, x.Rows, x.Cols, w.Cols, act)
	return out
}

// Linear2ActF32 returns act(x1@w1 + x2@w2 + bias) — the fused LSTM gate
// composition.
//
//mpgraph:noalloc
func (c *Ctx) Linear2ActF32(x1, w1, x2, w2, bias *F32Tensor, act Act) *F32Tensor {
	requireCtx(c, "Linear2ActF32")
	if x1.Cols != w1.Rows || x2.Cols != w2.Rows || x1.Rows != x2.Rows || w1.Cols != w2.Cols {
		invariant.Failf("tensor: linear2F32 %dx%d@%dx%d + %dx%d@%dx%d",
			x1.Rows, x1.Cols, w1.Rows, w1.Cols, x2.Rows, x2.Cols, w2.Rows, w2.Cols)
	}
	out := c.uninitF32(x1.Rows, w1.Cols)
	var bd []float32
	if bias != nil {
		bd = bias.Data
	}
	gemm2BatchBiasActF32(out.Data, x1.Data, w1.Data, x2.Data, w2.Data, bd,
		x1.Rows, x1.Cols, x2.Cols, w1.Cols, act)
	return out
}

// SoftmaxRowsF32 applies row-wise softmax in place and returns its input.
//
//mpgraph:noalloc
func (c *Ctx) SoftmaxRowsF32(a *F32Tensor) *F32Tensor {
	requireCtx(c, "SoftmaxRowsF32")
	for r := 0; r < a.Rows; r++ {
		softmaxInPlaceFastF32(a.Data[r*a.Cols : (r+1)*a.Cols])
	}
	return a
}

// SigmoidInPlaceF32 applies the logistic function in place.
//
//mpgraph:noalloc
func (c *Ctx) SigmoidInPlaceF32(a *F32Tensor) *F32Tensor {
	requireCtx(c, "SigmoidInPlaceF32")
	applyActFastF32(a.Data, ActSigmoid)
	return a
}

// LayerNormF32 normalises each row of x and applies gain and bias in one
// fused pass. The mean/variance accumulate in float32 (the f32 tier's
// numerics), matching the f64 kernel's operation order.
//
//mpgraph:noalloc
func (c *Ctx) LayerNormF32(x, gain, bias *F32Tensor, eps float32) *F32Tensor {
	requireCtx(c, "LayerNormF32")
	if gain.Cols != x.Cols || bias.Cols != x.Cols {
		invariant.Failf("tensor: layernormF32 gain/bias width for %dx%d", x.Rows, x.Cols)
	}
	out := c.uninitF32(x.Rows, x.Cols)
	n := float32(x.Cols)
	for r := 0; r < x.Rows; r++ {
		row := x.Data[r*x.Cols : (r+1)*x.Cols]
		orow := out.Data[r*x.Cols : (r+1)*x.Cols]
		var mean float32
		for _, v := range row {
			mean += v
		}
		mean /= n
		var variance float32
		for _, v := range row {
			d := v - mean
			variance += d * d
		}
		variance /= n
		inv := float32(1 / math.Sqrt(float64(variance+eps)))
		for j, v := range row {
			orow[j] = (v-mean)*inv*gain.Data[j] + bias.Data[j]
		}
	}
	return out
}

// AttentionBlocksF32 runs scaled-dot-product attention independently inside
// each of the `blocks` equal row blocks of q/k/v (see AttentionBlocks; the
// f32 tier has a single numerics mode, so there is no exact flag).
//
//mpgraph:noalloc
func (c *Ctx) AttentionBlocksF32(q, k, v *F32Tensor, blocks int, scale float32) *F32Tensor {
	requireCtx(c, "AttentionBlocksF32")
	if blocks <= 0 || q.Rows%blocks != 0 {
		invariant.Failf("tensor: attentionBlocksF32 %d rows over %d blocks", q.Rows, blocks)
	}
	if q.Cols != k.Cols || q.Rows != k.Rows || k.Rows != v.Rows {
		invariant.Failf("tensor: attentionBlocksF32 q %dx%d k %dx%d v %dx%d",
			q.Rows, q.Cols, k.Rows, k.Cols, v.Rows, v.Cols)
	}
	t := q.Rows / blocks
	d := q.Cols
	dv := v.Cols
	out := c.uninitF32(q.Rows, dv)
	scores := c.Float32s(t * t)
	for blk := 0; blk < blocks; blk++ {
		qb := q.Data[blk*t*d : (blk+1)*t*d]
		kb := k.Data[blk*t*d : (blk+1)*t*d]
		vb := v.Data[blk*t*dv : (blk+1)*t*dv]
		ob := out.Data[blk*t*dv : (blk+1)*t*dv]
		gemmNTScaleF32(scores, qb, kb, t, d, t, scale)
		for r := 0; r < t; r++ {
			softmaxInPlaceFastF32(scores[r*t : (r+1)*t])
		}
		clear(ob)
		gemmBatchF32(ob, scores, vb, t, t, dv)
	}
	return out
}

// MeanRowsBatchF32 reduces each block of rows to its mean row:
// [blocks*T x d] -> [blocks x d].
//
//mpgraph:noalloc
func (c *Ctx) MeanRowsBatchF32(a *F32Tensor, blocks int) *F32Tensor {
	requireCtx(c, "MeanRowsBatchF32")
	if blocks <= 0 || a.Rows%blocks != 0 {
		invariant.Failf("tensor: meanRowsBatchF32 %d rows over %d blocks", a.Rows, blocks)
	}
	t := a.Rows / blocks
	out := c.zerosF32(blocks, a.Cols)
	inv := 1 / float32(t)
	for blk := 0; blk < blocks; blk++ {
		orow := out.Data[blk*a.Cols : (blk+1)*a.Cols]
		for r := 0; r < t; r++ {
			arow := a.Data[(blk*t+r)*a.Cols : (blk*t+r+1)*a.Cols]
			for j, av := range arow {
				orow[j] += av * inv
			}
		}
	}
	return out
}

// AddPosBatchF32 adds a [T x d] positional table to every block of a stacked
// [blocks*T x d] tensor.
//
//mpgraph:noalloc
func (c *Ctx) AddPosBatchF32(a, pos *F32Tensor, blocks int) *F32Tensor {
	requireCtx(c, "AddPosBatchF32")
	if blocks <= 0 || a.Rows != blocks*pos.Rows || a.Cols != pos.Cols {
		invariant.Failf("tensor: addPosBatchF32 %dx%d + %dx%d over %d blocks",
			a.Rows, a.Cols, pos.Rows, pos.Cols, blocks)
	}
	out := c.uninitF32(a.Rows, a.Cols)
	n := len(pos.Data)
	for blk := 0; blk < blocks; blk++ {
		ab := a.Data[blk*n : (blk+1)*n]
		ob := out.Data[blk*n : (blk+1)*n]
		for i, av := range ab {
			ob[i] = av + pos.Data[i]
		}
	}
	return out
}

// ConcatRowsBatch2F32 interleaves two stacked tensors block by block (the
// batched ConcatRows2F32 the modality-fusion layer needs).
//
//mpgraph:noalloc
func (c *Ctx) ConcatRowsBatch2F32(a, b *F32Tensor, blocks int) *F32Tensor {
	requireCtx(c, "ConcatRowsBatch2F32")
	if blocks <= 0 || a.Cols != b.Cols || a.Rows%blocks != 0 || b.Rows%blocks != 0 {
		invariant.Failf("tensor: concatRowsBatch2F32 %dx%d + %dx%d over %d blocks",
			a.Rows, a.Cols, b.Rows, b.Cols, blocks)
	}
	ta := a.Rows / blocks
	tb := b.Rows / blocks
	d := a.Cols
	out := c.uninitF32(a.Rows+b.Rows, d)
	for blk := 0; blk < blocks; blk++ {
		base := blk * (ta + tb) * d
		copy(out.Data[base:base+ta*d], a.Data[blk*ta*d:(blk+1)*ta*d])
		copy(out.Data[base+ta*d:base+(ta+tb)*d], b.Data[blk*tb*d:(blk+1)*tb*d])
	}
	return out
}

// AddRowPerBlockF32 adds table row ids[i] to every row of block i (the
// per-phase embedding add).
//
//mpgraph:noalloc
func (c *Ctx) AddRowPerBlockF32(a, table *F32Tensor, ids []int, blocks int) *F32Tensor {
	requireCtx(c, "AddRowPerBlockF32")
	if blocks <= 0 || len(ids) != blocks || a.Rows%blocks != 0 || table.Cols != a.Cols {
		invariant.Failf("tensor: addRowPerBlockF32 %dx%d, %d ids over %d blocks",
			a.Rows, a.Cols, len(ids), blocks)
	}
	t := a.Rows / blocks
	d := a.Cols
	out := c.uninitF32(a.Rows, a.Cols)
	for blk, id := range ids {
		if id < 0 || id >= table.Rows {
			invariant.Failf("tensor: addRowPerBlockF32 id %d of %d rows", id, table.Rows)
		}
		bias := table.Data[id*d : (id+1)*d]
		for r := 0; r < t; r++ {
			arow := a.Data[(blk*t+r)*d : (blk*t+r+1)*d]
			orow := out.Data[(blk*t+r)*d : (blk*t+r+1)*d]
			for j, av := range arow {
				orow[j] = av + bias[j]
			}
		}
	}
	return out
}

// GatherRowsStrideF32 copies count rows starting at `first`, striding by
// `stride` rows — the LSTM timestep gather.
//
//mpgraph:noalloc
func (c *Ctx) GatherRowsStrideF32(a *F32Tensor, first, stride, count int) *F32Tensor {
	requireCtx(c, "GatherRowsStrideF32")
	if count <= 0 || stride <= 0 || first < 0 || first+(count-1)*stride >= a.Rows {
		invariant.Failf("tensor: gatherRowsStrideF32 first %d stride %d count %d of %d rows",
			first, stride, count, a.Rows)
	}
	out := c.uninitF32(count, a.Cols)
	d := a.Cols
	for i := 0; i < count; i++ {
		src := (first + i*stride) * d
		copy(out.Data[i*d:(i+1)*d], a.Data[src:src+d])
	}
	return out
}
