package tensor

import (
	"math"

	"mpgraph/internal/invariant"
)

// Graph-free fast-path ops. Every method on *Ctx mirrors one package op (or
// a fused composition of several) and dispatches on the receiver: a nil Ctx
// runs the exact autograd op so the training path is untouched; a non-nil
// Ctx runs an arena-backed kernel that builds no graph and allocates
// nothing once the arena has warmed up.
//
// Aliasing contract: fast-path results live in the arena until the next
// Reset, and in-place ops (SoftmaxRows, SigmoidInPlace) may overwrite their
// input. Callers on the hot path treat op inputs as consumed.

// Zeros returns a zero rows x cols tensor (arena-backed when c is non-nil).
//
//mpgraph:noalloc
func (c *Ctx) Zeros(rows, cols int) *Tensor {
	if c == nil {
		return Zeros(rows, cols)
	}
	return c.zeros(rows, cols)
}

// MatMul returns a@b.
//
//mpgraph:noalloc
func (c *Ctx) MatMul(a, b *Tensor) *Tensor {
	if c == nil {
		return MatMul(a, b)
	}
	if a.Cols != b.Rows {
		invariant.Failf("tensor: matmul %dx%d @ %dx%d", a.Rows, a.Cols, b.Rows, b.Cols)
	}
	out := c.zeros(a.Rows, b.Cols)
	gemm(out.Data, a.Data, b.Data, a.Rows, a.Cols, b.Cols)
	return out
}

// Add returns a+b elementwise.
//
//mpgraph:noalloc
func (c *Ctx) Add(a, b *Tensor) *Tensor {
	if c == nil {
		return Add(a, b)
	}
	checkSameShape("add", a, b)
	out := c.uninit(a.Rows, a.Cols)
	for i, av := range a.Data {
		out.Data[i] = av + b.Data[i]
	}
	return out
}

// AddBias adds row vector bias [1 x n] to every row of a.
//
//mpgraph:noalloc
func (c *Ctx) AddBias(a, bias *Tensor) *Tensor {
	if c == nil {
		return AddBias(a, bias)
	}
	if bias.Rows != 1 || bias.Cols != a.Cols {
		invariant.Failf("tensor: addbias %dx%d + %dx%d", a.Rows, a.Cols, bias.Rows, bias.Cols)
	}
	out := c.uninit(a.Rows, a.Cols)
	for r := 0; r < a.Rows; r++ {
		base := r * a.Cols
		for j, bv := range bias.Data {
			out.Data[base+j] = a.Data[base+j] + bv
		}
	}
	return out
}

// SoftmaxRows applies row-wise softmax. The fast path runs in place and
// returns its input; callers must not reuse the pre-softmax values.
//
//mpgraph:noalloc
func (c *Ctx) SoftmaxRows(a *Tensor) *Tensor {
	if c == nil {
		return SoftmaxRows(a)
	}
	for r := 0; r < a.Rows; r++ {
		softmaxInPlace(a.Data[r*a.Cols : (r+1)*a.Cols])
	}
	return a
}

// softmaxInPlace applies a numerically-stable softmax to one row.
//
//mpgraph:noalloc
func softmaxInPlace(row []float64) {
	maxV := math.Inf(-1)
	for _, v := range row {
		if v > maxV {
			maxV = v
		}
	}
	sum := 0.0
	for i, v := range row {
		e := math.Exp(v - maxV)
		row[i] = e
		sum += e
	}
	for i := range row {
		row[i] /= sum
	}
}

// SigmoidInPlace applies the logistic function. The fast path runs in place
// and returns its input; the nil path returns a fresh graph tensor.
//
//mpgraph:noalloc
func (c *Ctx) SigmoidInPlace(a *Tensor) *Tensor {
	if c == nil {
		return Sigmoid(a)
	}
	applyAct(a.Data, ActSigmoid)
	return a
}

// RowView returns row r of a as a 1 x Cols tensor. The fast path is a
// zero-copy view sharing a's data.
//
//mpgraph:noalloc
func (c *Ctx) RowView(a *Tensor, r int) *Tensor {
	if c == nil {
		return SliceRows(a, r, r+1)
	}
	if r < 0 || r >= a.Rows {
		invariant.Failf("tensor: RowView %d of %d rows", r, a.Rows)
	}
	return c.view(1, a.Cols, a.Data[r*a.Cols:(r+1)*a.Cols])
}

// ConcatRows stacks tensors vertically (same Cols).
//
//mpgraph:noalloc
func (c *Ctx) ConcatRows(ts ...*Tensor) *Tensor {
	if c == nil {
		return ConcatRows(ts...)
	}
	if len(ts) == 0 {
		invariant.Fail("tensor: ConcatRows of nothing")
	}
	cols := ts[0].Cols
	rows := 0
	for _, t := range ts {
		if t.Cols != cols {
			invariant.Fail("tensor: ConcatRows column mismatch")
		}
		rows += t.Rows
	}
	out := c.uninit(rows, cols)
	off := 0
	for _, t := range ts {
		copy(out.Data[off:], t.Data)
		off += len(t.Data)
	}
	return out
}

// ConcatCols stacks tensors horizontally (same Rows).
//
//mpgraph:noalloc
func (c *Ctx) ConcatCols(ts ...*Tensor) *Tensor {
	if c == nil {
		return ConcatCols(ts...)
	}
	if len(ts) == 0 {
		invariant.Fail("tensor: ConcatCols of nothing")
	}
	rows := ts[0].Rows
	cols := 0
	for _, t := range ts {
		if t.Rows != rows {
			invariant.Fail("tensor: ConcatCols row mismatch")
		}
		cols += t.Cols
	}
	out := c.uninit(rows, cols)
	colOff := 0
	for _, t := range ts {
		for r := 0; r < rows; r++ {
			copy(out.Data[r*cols+colOff:r*cols+colOff+t.Cols], t.Data[r*t.Cols:(r+1)*t.Cols])
		}
		colOff += t.Cols
	}
	return out
}

// ConcatRows2 is ConcatRows for exactly two tensors — the arity the models'
// hot paths use. A variadic call site builds an escaping []*Tensor on the
// heap; the fixed-arity form keeps steady-state inference allocation-free.
//
//mpgraph:noalloc
func (c *Ctx) ConcatRows2(a, b *Tensor) *Tensor {
	if c == nil {
		return ConcatRows(a, b)
	}
	if a.Cols != b.Cols {
		invariant.Fail("tensor: ConcatRows column mismatch")
	}
	out := c.uninit(a.Rows+b.Rows, a.Cols)
	copy(out.Data, a.Data)
	copy(out.Data[len(a.Data):], b.Data)
	return out
}

// ConcatCols2 is ConcatCols for exactly two tensors (see ConcatRows2).
//
//mpgraph:noalloc
func (c *Ctx) ConcatCols2(a, b *Tensor) *Tensor {
	if c == nil {
		return ConcatCols(a, b)
	}
	if a.Rows != b.Rows {
		invariant.Fail("tensor: ConcatCols row mismatch")
	}
	rows, cols := a.Rows, a.Cols+b.Cols
	out := c.uninit(rows, cols)
	for r := 0; r < rows; r++ {
		copy(out.Data[r*cols:], a.Data[r*a.Cols:(r+1)*a.Cols])
		copy(out.Data[r*cols+a.Cols:], b.Data[r*b.Cols:(r+1)*b.Cols])
	}
	return out
}

// MeanRows returns the column-wise mean as a 1 x Cols tensor.
//
//mpgraph:noalloc
func (c *Ctx) MeanRows(a *Tensor) *Tensor {
	if c == nil {
		return MeanRows(a)
	}
	out := c.zeros(1, a.Cols)
	inv := 1.0 / float64(a.Rows)
	for r := 0; r < a.Rows; r++ {
		base := r * a.Cols
		for j := range out.Data {
			out.Data[j] += a.Data[base+j] * inv
		}
	}
	return out
}

// EmbeddingLookup gathers rows of table by ids.
//
//mpgraph:noalloc
func (c *Ctx) EmbeddingLookup(table *Tensor, ids []int) *Tensor {
	if c == nil {
		return EmbeddingLookup(table, ids)
	}
	for _, id := range ids {
		if id < 0 || id >= table.Rows {
			invariant.Failf("tensor: embedding id %d out of [0,%d)", id, table.Rows)
		}
	}
	out := c.uninit(len(ids), table.Cols)
	for i, id := range ids {
		copy(out.Data[i*table.Cols:(i+1)*table.Cols], table.Data[id*table.Cols:(id+1)*table.Cols])
	}
	return out
}

// LinearAct returns act(x@w + bias) as one fused kernel (bias may be nil).
//
//mpgraph:noalloc
func (c *Ctx) LinearAct(x, w, bias *Tensor, act Act) *Tensor {
	if c == nil {
		out := MatMul(x, w)
		if bias != nil {
			out = AddBias(out, bias)
		}
		return applyActGraph(out, act)
	}
	if x.Cols != w.Rows {
		invariant.Failf("tensor: linear %dx%d @ %dx%d", x.Rows, x.Cols, w.Rows, w.Cols)
	}
	out := c.uninit(x.Rows, w.Cols)
	var bd []float64
	if bias != nil {
		if bias.Rows != 1 || bias.Cols != w.Cols {
			invariant.Failf("tensor: linear bias %dx%d for width %d", bias.Rows, bias.Cols, w.Cols)
		}
		bd = bias.Data
	}
	gemmBiasAct(out.Data, x.Data, w.Data, bd, x.Rows, x.Cols, w.Cols, act)
	return out
}

// Linear2Act returns act(x1@w1 + x2@w2 + bias) as one fused kernel — the
// LSTM gate composition (input product plus recurrent product).
//
//mpgraph:noalloc
func (c *Ctx) Linear2Act(x1, w1, x2, w2, bias *Tensor, act Act) *Tensor {
	if c == nil {
		out := Add(MatMul(x1, w1), MatMul(x2, w2))
		if bias != nil {
			out = AddBias(out, bias)
		}
		return applyActGraph(out, act)
	}
	if x1.Cols != w1.Rows || x2.Cols != w2.Rows || x1.Rows != x2.Rows || w1.Cols != w2.Cols {
		invariant.Failf("tensor: linear2 %dx%d@%dx%d + %dx%d@%dx%d",
			x1.Rows, x1.Cols, w1.Rows, w1.Cols, x2.Rows, x2.Cols, w2.Rows, w2.Cols)
	}
	out := c.uninit(x1.Rows, w1.Cols)
	var bd []float64
	if bias != nil {
		bd = bias.Data
	}
	gemm2BiasAct(out.Data, x1.Data, w1.Data, x2.Data, w2.Data, bd,
		x1.Rows, x1.Cols, x2.Cols, w1.Cols, act)
	return out
}

// MatMulNTScale returns (a@b^T)·s — attention scores QKᵀ/√d without
// materialising the transpose.
//
//mpgraph:noalloc
func (c *Ctx) MatMulNTScale(a, b *Tensor, s float64) *Tensor {
	if c == nil {
		return Scale(MatMul(a, Transpose(b)), s)
	}
	if a.Cols != b.Cols {
		invariant.Failf("tensor: matmulNT %dx%d @ (%dx%d)^T", a.Rows, a.Cols, b.Rows, b.Cols)
	}
	out := c.uninit(a.Rows, b.Rows)
	gemmNTScale(out.Data, a.Data, b.Data, a.Rows, a.Cols, b.Rows, s)
	return out
}

// LayerNorm normalises each row of x and applies gain and bias in a single
// fused pass (the nn.LayerNorm composition).
//
//mpgraph:noalloc
func (c *Ctx) LayerNorm(x, gain, bias *Tensor, eps float64) *Tensor {
	if c == nil {
		return AddBias(MulBias(NormalizeRows(x, eps), gain), bias)
	}
	if gain.Cols != x.Cols || bias.Cols != x.Cols {
		invariant.Failf("tensor: layernorm gain/bias width for %dx%d", x.Rows, x.Cols)
	}
	out := c.uninit(x.Rows, x.Cols)
	n := float64(x.Cols)
	for r := 0; r < x.Rows; r++ {
		row := x.Data[r*x.Cols : (r+1)*x.Cols]
		orow := out.Data[r*x.Cols : (r+1)*x.Cols]
		mean := 0.0
		for _, v := range row {
			mean += v
		}
		mean /= n
		variance := 0.0
		for _, v := range row {
			d := v - mean
			variance += d * d
		}
		variance /= n
		inv := 1 / math.Sqrt(variance+eps)
		for j, v := range row {
			orow[j] = (v-mean)*inv*gain.Data[j] + bias.Data[j]
		}
	}
	return out
}

// applyActGraph is the autograd (nil-ctx) epilogue matching applyAct.
func applyActGraph(t *Tensor, act Act) *Tensor {
	switch act {
	case ActReLU:
		return ReLU(t)
	case ActSigmoid:
		return Sigmoid(t)
	case ActTanh:
		return Tanh(t)
	default:
		return t
	}
}
