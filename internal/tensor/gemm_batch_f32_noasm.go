//go:build !amd64

package tensor

import "mpgraph/internal/invariant"

// Off amd64 the f32 tier delegates to its exact scalar kernels (the
// batchKernelAvailable gate in gemm_batch_f32.go never routes here), mirroring
// the f64 fallback contract.

func fmaPanelsF32(out, a, b []float32, m, k, n int) {
	invariant.Fail("tensor: fmaPanelsF32 requires the amd64 batch kernels")
}

func vexpRowF32(row []float32, bias float32) {
	invariant.Fail("tensor: vexpRowF32 requires the amd64 batch kernels")
}

func vsigmoidRowF32(row []float32) {
	invariant.Fail("tensor: vsigmoidRowF32 requires the amd64 batch kernels")
}

func vtanhRowF32(row []float32) {
	invariant.Fail("tensor: vtanhRowF32 requires the amd64 batch kernels")
}
