package tensor

// Fast elementwise math for the f32 tier. On AVX-512F machines these route
// through the vactF32AVX512 vector kernel (relative error ~1e-7 against the
// math-package-and-narrow scalar reference, inside the tier's parity
// budget); everywhere else they delegate to the exact scalar f32
// implementations, so fallback platforms are bit-identical to the scalar
// tier.

// ApplyActFastF32 applies act elementwise in place, vectorized when
// available. Exported for the nn f32 layers (LSTM cell tanh).
//
//mpgraph:noalloc
func ApplyActFastF32(row []float32, act Act) {
	applyActFastF32(row, act)
}

//mpgraph:noalloc
func applyActFastF32(row []float32, act Act) {
	if batchKernelAvailable() {
		switch act {
		case ActSigmoid:
			vsigmoidRowF32(row)
			return
		case ActTanh:
			vtanhRowF32(row)
			return
		}
	}
	applyActF32(row, act)
}

// softmaxInPlaceFastF32 mirrors softmaxInPlaceF32 with a vectorized exp. The
// max-subtraction and 1/sum normalization match the scalar kernel's
// operation order, so the only divergence is the exp evaluation itself.
//
//mpgraph:noalloc
func softmaxInPlaceFastF32(row []float32) {
	if !batchKernelAvailable() {
		softmaxInPlaceF32(row)
		return
	}
	if len(row) == 0 {
		return
	}
	maxV := row[0]
	for _, v := range row[1:] {
		if v > maxV {
			maxV = v
		}
	}
	vexpRowF32(row, maxV)
	var sum float32
	for _, v := range row {
		sum += v
	}
	inv := 1 / sum
	for i := range row {
		row[i] *= inv
	}
}
