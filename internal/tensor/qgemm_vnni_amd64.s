#include "textflag.h"

DATA qhalf<>+0(SB)/8, $0.5
GLOBL qhalf<>(SB), RODATA, $8
DATA qhi<>+0(SB)/8, $127.0
GLOBL qhi<>(SB), RODATA, $8
DATA qlo<>+0(SB)/8, $-127.0
GLOBL qlo<>(SB), RODATA, $8

// func vnniRowF64(orow *float64, w *byte, ua *byte, scales *float64, corr *int32, groups int64, nOut int64, sx float64)
//
// Computes one full output row of the quantized linear through the VNNI
// weight interleave built by QTensor.packVNNI, fused with the dequantize
// epilogue: orow[j] = (Σ_p ua[p]·w_j[p] − corr[j]) · sx · scales[j].
//
// Per 16-channel block, VPDPBUSD multiplies the broadcast unsigned offset
// activations (ua = xq+128, zero-padded to 4·groups bytes) by the signed
// weight bytes and accumulates the exact 4-product sums into 32-bit lanes —
// no intermediate saturation, so the int32 dots are bit-identical to the
// scalar reference kernel. Four independent accumulator chains hide the
// VPDPBUSD latency. The epilogue subtracts the per-channel offset
// correction, converts to float64, scales, and stores through per-lane
// masks so a trailing partial block never touches memory past nOut.
TEXT ·vnniRowF64(SB), NOSPLIT, $0-64
	MOVQ orow+0(FP), DI
	MOVQ w+8(FP), SI
	MOVQ ua+16(FP), R12
	MOVQ scales+24(FP), R8
	MOVQ corr+32(FP), R9
	MOVQ groups+40(FP), R10
	MOVQ nOut+48(FP), R11
	VBROADCASTSD sx+56(FP), Z8
blockloop:
	TESTQ R11, R11
	JLE  rowdone
	// lanes = min(nOut remaining, 16); K1 = 16-lane int32 mask,
	// K2/K3 = low/high 8-lane float64 masks.
	MOVQ R11, R13
	CMPQ R13, $16
	JLE  lanesok
	MOVQ $16, R13
lanesok:
	MOVQ $1, AX
	MOVQ R13, CX
	SHLQ CX, AX
	DECQ AX
	KMOVW AX, K1
	MOVQ AX, BX
	ANDQ $0xFF, BX
	KMOVW BX, K2
	SHRQ $8, AX
	KMOVW AX, K3
	// int32 dot products for this block's 16 channels.
	MOVQ R12, DX
	MOVQ R10, CX
	VPXORD Z0, Z0, Z0
	VPXORD Z1, Z1, Z1
	VPXORD Z2, Z2, Z2
	VPXORD Z3, Z3, Z3
loop4:
	CMPQ CX, $4
	JLT tail
	VPBROADCASTD (DX), Z4
	VPBROADCASTD 4(DX), Z5
	VPBROADCASTD 8(DX), Z6
	VPBROADCASTD 12(DX), Z7
	VPDPBUSD (SI), Z4, Z0
	VPDPBUSD 64(SI), Z5, Z1
	VPDPBUSD 128(SI), Z6, Z2
	VPDPBUSD 192(SI), Z7, Z3
	ADDQ $16, DX
	ADDQ $256, SI
	SUBQ $4, CX
	JMP  loop4
tail:
	TESTQ CX, CX
	JLE  epilogue
	VPBROADCASTD (DX), Z4
	VPDPBUSD (SI), Z4, Z0
	ADDQ $4, DX
	ADDQ $64, SI
	DECQ CX
	JMP  tail
epilogue:
	VPADDD Z1, Z0, Z0
	VPADDD Z3, Z2, Z2
	VPADDD Z2, Z0, Z0
	// dot − corr, then dequantize: float64(dot)·sx·scale per channel.
	VMOVDQU32 (R9), Z4
	VPSUBD Z4, Z0, Z0
	VCVTDQ2PD Y0, Z5
	VEXTRACTI64X4 $1, Z0, Y1
	VCVTDQ2PD Y1, Z6
	VMULPD Z8, Z5, Z5
	VMULPD Z8, Z6, Z6
	VMOVUPD.Z (R8), K2, Z7
	VMULPD Z7, Z5, Z5
	VMOVUPD.Z 64(R8), K3, Z7
	VMULPD Z7, Z6, Z6
	VMOVUPD Z5, K2, (DI)
	VMOVUPD Z6, K3, 64(DI)
	ADDQ $64, R9
	ADDQ $128, R8
	ADDQ $128, DI
	SUBQ $16, R11
	JMP  blockloop
rowdone:
	VZEROUPPER
	RET

// func quantizeRowAVX512(dst *int8, src *float64, n int64, inv float64)
//
// Vector mirror of quantizeValue: dst[i] = sat_±127(floor(src[i]·inv + 0.5))
// eight float64 lanes at a time. The rounding sequence matches the scalar
// kernel exactly — multiply, add 0.5, VRNDSCALEPD mode 1 (floor), clamp —
// so integral results convert exactly and the output is bit-identical. The
// tail runs the same sequence under a lane mask.
TEXT ·quantizeRowAVX512(SB), NOSPLIT, $0-32
	MOVQ dst+0(FP), DI
	MOVQ src+8(FP), SI
	MOVQ n+16(FP), CX
	VBROADCASTSD inv+24(FP), Z9
	VBROADCASTSD qhalf<>(SB), Z10
	VBROADCASTSD qhi<>(SB), Z11
	VBROADCASTSD qlo<>(SB), Z12
	MOVQ $0xFF, AX
	KMOVW AX, K1
qloop:
	CMPQ CX, $8
	JLT  qtail
	VMOVUPD (SI), Z0
	VMULPD Z9, Z0, Z0
	VADDPD Z10, Z0, Z0
	VRNDSCALEPD $1, Z0, Z0
	VMINPD Z11, Z0, Z0
	VMAXPD Z12, Z0, Z0
	VCVTPD2DQ Z0, Y0
	VPMOVDB Z0, K1, (DI)
	ADDQ $64, SI
	ADDQ $8, DI
	SUBQ $8, CX
	JMP  qloop
qtail:
	TESTQ CX, CX
	JLE  qdone
	MOVQ $1, AX
	SHLQ CX, AX
	DECQ AX
	KMOVW AX, K1
	VMOVUPD.Z (SI), K1, Z0
	VMULPD Z9, Z0, Z0
	VADDPD Z10, Z0, Z0
	VRNDSCALEPD $1, Z0, Z0
	VMINPD Z11, Z0, Z0
	VMAXPD Z12, Z0, Z0
	VCVTPD2DQ Z0, Y0
	VPMOVDB Z0, K1, (DI)
qdone:
	VZEROUPPER
	RET
