package tensor

// IEEE 754 binary16 ("half", f16) encode/decode for the mixed-precision
// storage tier (DESIGN.md §13). f16 is a storage-of-record format only: suite
// weights are serialized as 16-bit payloads and widened into f32 panels (or
// the float64 reference) at load time — nothing computes in half precision.
//
// Encoding rounds to nearest, ties to even, in a single rounding step from
// the float64 bit pattern (never via an intermediate float32, which could
// double-round). Subnormals, ±0, overflow-to-Inf and NaN are handled per the
// standard; NaN payloads collapse to the canonical quiet NaN 0x7e00 so the
// encoder is a pure function of the value class, not of payload bits.

import "math"

const (
	f16SignMask  = 0x8000
	f16ExpMask   = 0x7c00
	f16FracMask  = 0x03ff
	f16Inf       = 0x7c00
	f16NaN       = 0x7e00 // canonical quiet NaN
	f16FracBits  = 10
	f16ExpBias   = 15
	f16MaxExp    = 31
	f64FracBits  = 52
	f64ExpBias   = 1023
	f64ExpSpec   = 0x7ff
	f64FracMask  = 1<<f64FracBits - 1
	f16NormShift = f64FracBits - f16FracBits // 42: f64 frac → f16 frac
)

// F16Bits encodes x as IEEE binary16 with round-to-nearest-even, rounding
// once directly from the float64 significand. Values above the f16 range
// become ±Inf; values below the smallest subnormal round to ±0; every NaN
// collapses to the canonical quiet NaN 0x7e00 (sign preserved).
//
//mpgraph:noalloc
func F16Bits(x float64) uint16 {
	b := math.Float64bits(x)
	sign := uint16(b>>48) & f16SignMask
	exp := int(b>>f64FracBits) & f64ExpSpec
	frac := b & f64FracMask

	if exp == f64ExpSpec { // Inf or NaN
		if frac != 0 {
			return sign | f16NaN
		}
		return sign | f16Inf
	}
	if exp == 0 {
		// ±0, or an f64 subnormal (< 2^-1022) — more than 10^300 below the
		// smallest f16 subnormal, so it rounds to signed zero either way.
		return sign
	}

	e := exp - f64ExpBias // unbiased exponent, value = 1.frac × 2^e
	if e > 15 {
		return sign | f16Inf // ≥ 2^16: past the largest finite half
	}

	sig := frac | 1<<f64FracBits // 53-bit significand with implicit bit
	shift := f16NormShift
	if e < -14 {
		// Subnormal target: shift the extra exponent deficit into the
		// significand. Beyond the round bit of the smallest subnormal
		// everything is sticky; cap the shift so the uint64 shift stays
		// defined (q and the half-comparison below are already exact there).
		shift += -14 - e
		if shift > 63 {
			shift = 63
		}
	}
	q := sig >> shift
	rem := sig & (1<<shift - 1)
	half := uint64(1) << (shift - 1)
	if rem > half || (rem == half && q&1 == 1) {
		q++
	}

	if e >= -14 {
		// Normal: q ∈ [2^10, 2^11]; 2^11 means rounding carried into the
		// next binade (possibly overflowing to Inf at the top).
		be := e + f16ExpBias
		if q == 1<<(f16FracBits+1) {
			q >>= 1
			be++
		}
		if be >= f16MaxExp {
			return sign | f16Inf
		}
		return sign | uint16(be)<<f16FracBits | uint16(q)&f16FracMask
	}
	// Subnormal: q ∈ [0, 2^10]; 2^10 is the smallest normal (exp field 1,
	// fraction 0), which the plain OR below encodes for free.
	return sign | uint16(q)
}

// F16Float32 widens an f16 bit pattern to float32. Every finite half is
// exactly representable, so widening is lossless; quiet-NaN bit 9 maps onto
// the float32 quiet bit.
//
//mpgraph:noalloc
func F16Float32(h uint16) float32 {
	sign := uint32(h&f16SignMask) << 16
	exp := int(h>>f16FracBits) & 0x1f
	frac := uint32(h & f16FracMask)
	switch {
	case exp == 0x1f: // Inf / NaN
		return math.Float32frombits(sign | 0x7f800000 | frac<<13)
	case exp == 0:
		if frac == 0 {
			return math.Float32frombits(sign) // ±0
		}
		// Subnormal half = frac × 2^-24, a normal float32.
		v := float32(frac) * 0x1p-24
		if sign != 0 {
			return -v
		}
		return v
	default:
		return math.Float32frombits(sign | uint32(exp-f16ExpBias+127)<<23 | frac<<13)
	}
}

// F16Float64 widens an f16 bit pattern to float64 (lossless; see F16Float32).
//
//mpgraph:noalloc
func F16Float64(h uint16) float64 {
	sign := uint64(h&f16SignMask) << 48
	exp := int(h>>f16FracBits) & 0x1f
	frac := uint64(h & f16FracMask)
	switch {
	case exp == 0x1f:
		return math.Float64frombits(sign | uint64(f64ExpSpec)<<f64FracBits | frac<<f16NormShift)
	case exp == 0:
		if frac == 0 {
			return math.Float64frombits(sign)
		}
		v := float64(frac) * 0x1p-24
		if sign != 0 {
			return -v
		}
		return v
	default:
		return math.Float64frombits(sign | uint64(exp-f16ExpBias+f64ExpBias)<<f64FracBits | frac<<f16NormShift)
	}
}

// EncodeF16 rounds src into dst as binary16 payloads (dst must be at least as
// long as src). Returns the number of values written.
//
//mpgraph:noalloc
func EncodeF16(dst []uint16, src []float64) int {
	dst = dst[:len(src)]
	for i, v := range src {
		dst[i] = F16Bits(v)
	}
	return len(src)
}

// WidenF16 decodes binary16 payloads into float64 (dst at least as long as
// src). The inverse of EncodeF16 up to the encoder's rounding.
//
//mpgraph:noalloc
func WidenF16(dst []float64, src []uint16) int {
	dst = dst[:len(src)]
	for i, h := range src {
		dst[i] = F16Float64(h)
	}
	return len(src)
}

// WidenF16To32 decodes binary16 payloads into float32 panels — the load/
// first-touch widening of the mixed-precision storage tier. Because every
// finite half is exact in float32, this equals WidenF16 followed by a
// float64→float32 narrowing.
//
//mpgraph:noalloc
func WidenF16To32(dst []float32, src []uint16) int {
	dst = dst[:len(src)]
	for i, h := range src {
		dst[i] = F16Float32(h)
	}
	return len(src)
}
