package tensor

// Fast elementwise math for the batch tier. On AVX-512F machines these route
// through the vactAVX512 vector kernel (relative error ~1e-14 against the
// math package, inside the batch tier's 1e-9 equivalence budget); everywhere
// else they delegate to the exact sequential implementations, so fallback
// platforms produce batched output bit-identical to sequential inference.

// ApplyActFast applies act elementwise in place, vectorized when available.
// Exported for the nn batch layers (LSTM cell tanh); the sequential fast
// path keeps using the exact applyAct.
//
//mpgraph:noalloc
func ApplyActFast(row []float64, act Act) {
	applyActFast(row, act)
}

//mpgraph:noalloc
func applyActFast(row []float64, act Act) {
	if batchKernelAvailable() {
		switch act {
		case ActSigmoid:
			vsigmoidRow(row)
			return
		case ActTanh:
			vtanhRow(row)
			return
		}
	}
	applyAct(row, act)
}

// softmaxInPlaceFast mirrors softmaxInPlace with a vectorized exp. The
// max-subtraction and 1/sum normalization match the exact kernel's operation
// order, so the only divergence is the exp evaluation itself.
//
//mpgraph:noalloc
func softmaxInPlaceFast(row []float64) {
	if !batchKernelAvailable() {
		softmaxInPlace(row)
		return
	}
	if len(row) == 0 {
		return
	}
	maxV := row[0]
	for _, v := range row[1:] {
		if v > maxV {
			maxV = v
		}
	}
	vexpRow(row, maxV)
	sum := 0.0
	for _, v := range row {
		sum += v
	}
	inv := 1 / sum
	for i := range row {
		row[i] *= inv
	}
}
