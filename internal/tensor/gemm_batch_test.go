package tensor

import (
	"math"
	"math/rand"
	"testing"
)

// fmaRef mirrors the panel kernels' per-element contract exactly: an
// ascending-p chain of fused multiply-adds. On AVX-512F machines fmaPanels
// must match it bit for bit.
func fmaRef(out, a, b []float64, m, k, n int) {
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			s := out[i*n+j]
			for p := 0; p < k; p++ {
				s = math.FMA(a[i*k+p], b[p*n+j], s)
			}
			out[i*n+j] = s
		}
	}
}

func TestFMAPanelsMatchFMAReference(t *testing.T) {
	if !batchKernelAvailable() {
		t.Skip("no AVX-512F batch kernels on this machine")
	}
	rng := rand.New(rand.NewSource(21))
	for _, m := range []int{1, 2, 3, 4, 5, 8, 9, 64} {
		for _, k := range []int{1, 3, 16, 33} {
			for _, n := range []int{1, 7, 8, 15, 16, 17, 32, 65} {
				a := randSlice(rng, m*k)
				b := randSlice(rng, k*n)
				got := randSlice(rng, m*n)
				want := append([]float64(nil), got...)
				fmaPanels(got, a, b, m, k, n)
				fmaRef(want, a, b, m, k, n)
				for i := range got {
					if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
						t.Fatalf("m=%d k=%d n=%d: out[%d] = %x, want %x",
							m, k, n, i, math.Float64bits(got[i]), math.Float64bits(want[i]))
					}
				}
			}
		}
	}
}

// TestFMAPanelsBatchComposition is the determinism cornerstone: running the
// same row through the 4-row tile, the 1-row remainder, or any stacking must
// produce identical bits, or sweep reports would vary with batch size.
func TestFMAPanelsBatchComposition(t *testing.T) {
	if !batchKernelAvailable() {
		t.Skip("no AVX-512F batch kernels on this machine")
	}
	rng := rand.New(rand.NewSource(22))
	m, k, n := 13, 24, 37
	a := randSlice(rng, m*k)
	b := randSlice(rng, k*n)
	batched := make([]float64, m*n)
	fmaPanels(batched, a, b, m, k, n)
	for i := 0; i < m; i++ {
		solo := make([]float64, n)
		fmaPanels(solo, a[i*k:(i+1)*k], b, 1, k, n)
		for j := range solo {
			if math.Float64bits(solo[j]) != math.Float64bits(batched[i*n+j]) {
				t.Fatalf("row %d col %d: solo %x != batched %x",
					i, j, math.Float64bits(solo[j]), math.Float64bits(batched[i*n+j]))
			}
		}
	}
}

func TestVactAccuracy(t *testing.T) {
	if !batchKernelAvailable() {
		t.Skip("no AVX-512F batch kernels on this machine")
	}
	xs := []float64{0, 1, -1, 0.5, -0.5, 3.7, -3.7, 12, -12, 39, -39, 45, -45,
		700, -700, 1000, -1000, 1e-12, -1e-12, 87.3, -87.3}
	rng := rand.New(rand.NewSource(23))
	for i := 0; i < 200; i++ {
		xs = append(xs, rng.NormFloat64()*20)
	}

	relErr := func(got, want float64) float64 {
		if want == 0 {
			return math.Abs(got)
		}
		return math.Abs(got-want) / math.Max(math.Abs(want), 1e-300)
	}

	// exp(x - bias)
	for _, bias := range []float64{0, 2.5, -1.25} {
		buf := append([]float64(nil), xs...)
		vexpRow(buf, bias)
		for i, x := range xs {
			want := math.Exp(x - bias)
			if math.IsInf(want, 1) {
				continue // clamped to exp(708) by design
			}
			if relErr(buf[i], want) > 1e-12 {
				t.Fatalf("exp(%g-%g) = %g, want %g", x, bias, buf[i], want)
			}
		}
	}

	// sigmoid
	buf := append([]float64(nil), xs...)
	vsigmoidRow(buf)
	for i, x := range xs {
		want := 1 / (1 + math.Exp(-x))
		if relErr(buf[i], want) > 1e-12 && math.Abs(buf[i]-want) > 1e-15 {
			t.Fatalf("sigmoid(%g) = %g, want %g", x, buf[i], want)
		}
	}

	// tanh: saturates exactly to ±1 past the clamp
	buf = append([]float64(nil), xs...)
	vtanhRow(buf)
	for i, x := range xs {
		want := math.Tanh(x)
		if relErr(buf[i], want) > 1e-12 && math.Abs(buf[i]-want) > 1e-15 {
			t.Fatalf("tanh(%g) = %g, want %g", x, buf[i], want)
		}
	}
}

func TestGemmBatchBiasActMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	for _, act := range []Act{ActNone, ActReLU, ActSigmoid, ActTanh} {
		for _, m := range []int{1, 5, 8, 64} {
			k, n := 23, 41
			a := randSlice(rng, m*k)
			b := randSlice(rng, k*n)
			bias := randSlice(rng, n)
			got := make([]float64, m*n)
			want := make([]float64, m*n)
			gemmBatchBiasAct(got, a, b, bias, m, k, n, act)
			gemmBiasAct(want, a, b, bias, m, k, n, act)
			for i := range got {
				if math.Abs(got[i]-want[i]) > 1e-9 {
					t.Fatalf("act=%d m=%d: out[%d] = %g, want %g (diff %g)",
						act, m, i, got[i], want[i], got[i]-want[i])
				}
			}
		}
	}
}

func TestGemm2BatchBiasActMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	m, k1, k2, n := 8, 12, 19, 31
	a1 := randSlice(rng, m*k1)
	b1 := randSlice(rng, k1*n)
	a2 := randSlice(rng, m*k2)
	b2 := randSlice(rng, k2*n)
	bias := randSlice(rng, n)
	for _, act := range []Act{ActNone, ActSigmoid, ActTanh} {
		got := make([]float64, m*n)
		want := make([]float64, m*n)
		gemm2BatchBiasAct(got, a1, b1, a2, b2, bias, m, k1, k2, n, act)
		gemm2BiasAct(want, a1, b1, a2, b2, bias, m, k1, k2, n, act)
		for i := range got {
			if math.Abs(got[i]-want[i]) > 1e-9 {
				t.Fatalf("act=%d: out[%d] = %g, want %g", act, i, got[i], want[i])
			}
		}
	}
}

func TestSoftmaxInPlaceFastMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	for _, n := range []int{1, 2, 7, 8, 9, 16, 33} {
		row := randSlice(rng, n)
		for i := range row {
			row[i] *= 10
		}
		want := append([]float64(nil), row...)
		softmaxInPlaceFast(row)
		softmaxInPlace(want)
		for i := range row {
			if math.Abs(row[i]-want[i]) > 1e-12 {
				t.Fatalf("n=%d: softmax[%d] = %g, want %g", n, i, row[i], want[i])
			}
		}
	}
}

func TestAttentionBlocksCompositionIndependent(t *testing.T) {
	c := NewCtx()
	rng := rand.New(rand.NewSource(27))
	blocks, tt, d := 6, 5, 16
	q := c.view(blocks*tt, d, randSlice(rng, blocks*tt*d))
	k := c.view(blocks*tt, d, randSlice(rng, blocks*tt*d))
	v := c.view(blocks*tt, d, randSlice(rng, blocks*tt*d))
	for _, exact := range []bool{false, true} {
		full := c.AttentionBlocks(q, k, v, blocks, 0.25, exact)
		for blk := 0; blk < blocks; blk++ {
			qb := c.view(tt, d, q.Data[blk*tt*d:(blk+1)*tt*d])
			kb := c.view(tt, d, k.Data[blk*tt*d:(blk+1)*tt*d])
			vb := c.view(tt, d, v.Data[blk*tt*d:(blk+1)*tt*d])
			solo := c.AttentionBlocks(qb, kb, vb, 1, 0.25, exact)
			for i := range solo.Data {
				gotB := math.Float64bits(full.Data[blk*tt*d+i])
				soloB := math.Float64bits(solo.Data[i])
				if gotB != soloB {
					t.Fatalf("exact=%v block %d elem %d: %x != %x", exact, blk, i, soloB, gotB)
				}
			}
		}
		// exact=true must equal the sequential attention composition bit for bit
		if exact {
			for blk := 0; blk < blocks; blk++ {
				qb := c.view(tt, d, q.Data[blk*tt*d:(blk+1)*tt*d])
				kb := c.view(tt, d, k.Data[blk*tt*d:(blk+1)*tt*d])
				vb := c.view(tt, d, v.Data[blk*tt*d:(blk+1)*tt*d])
				ref := c.MatMul(c.SoftmaxRows(c.MatMulNTScale(qb, kb, 0.25)), vb)
				for i := range ref.Data {
					if math.Float64bits(ref.Data[i]) != math.Float64bits(full.Data[blk*tt*d+i]) {
						t.Fatalf("exact block %d elem %d diverges from sequential attention", blk, i)
					}
				}
			}
		}
	}
}
