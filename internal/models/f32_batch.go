package models

import (
	"mpgraph/internal/tensor"
)

// Batched f32 inference (DESIGN.md §13): the f32 mirrors implement the same
// DeltaScorerBatchCtx/PageTopperBatchCtx capability interfaces as their
// float64 sources, stacking B sessions into one [B*T x d] f32 activation
// block. The f32 kernels compute every output row as a pure function of its
// own session's rows, so f32 batch scores are bit-identical to sequential
// f32 scores at any batch size — the same cross-batch-size byte-identity
// contract the float64 and int8 tiers pin.

// --- batched f32 modality encoders / AMMA core ---

//mpgraph:noalloc
func (m *f32ModalityEncoder) encodeFeaturesBatchCtx(c *tensor.Ctx, x *tensor.F32Tensor, blocks int) *tensor.F32Tensor {
	return m.attn.ForwardBatchCtx(c, c.AddPosBatchF32(m.lin.ForwardCtx(c, x), m.pos, blocks), blocks)
}

//mpgraph:noalloc
func (m *f32ModalityEncoder) encodeTokensBatchCtx(c *tensor.Ctx, ids []int, blocks int) *tensor.F32Tensor {
	return m.attn.ForwardBatchCtx(c, c.AddPosBatchF32(m.table.ForwardCtx(c, ids), m.pos, blocks), blocks)
}

// forwardBatchCtx is f32AMMACore.forwardCtx over a stacked batch.
//
//mpgraph:noalloc
func (fc *f32AMMACore) forwardBatchCtx(c *tensor.Ctx, encA, encB *tensor.F32Tensor, ss []*Sample) *tensor.F32Tensor {
	blocks := len(ss)
	fused := fc.fusion.ForwardBatchCtx2(c, encA, encB, blocks) //mpgraph:allow noalloc -- fixed-arity fast path; the cross-package naming rule keys on a Ctx suffix
	if fc.phaseEmb != nil {
		ids := phaseIDsBatch(c, ss, fc.phaseEmb.Vocab()) //mpgraph:allow noalloc -- Vocab is a field read
		fused = c.AddRowPerBlockF32(fused, fc.phaseEmb.Table, ids, blocks)
	}
	for _, tl := range fc.trans {
		fused = tl.ForwardBatchCtx(c, fused, blocks)
	}
	return c.MeanRowsBatchF32(fused, blocks)
}

// --- batched f32 predictors ---

//mpgraph:noalloc
func (m *F32AMMADelta) flogitsBatchCtx(c *tensor.Ctx, ss []*Sample) *tensor.F32Tensor {
	t := batchT(ss)
	encA := m.fcore.modA.encodeFeaturesBatchCtx(c, c.NarrowCtxF32(addrFeatureTensorBatchCtx(c, m.cfg, ss, t)), len(ss))
	encB := m.fcore.modB.encodeTokensBatchCtx(c, pcTokensBatchCtx(c, m.pcs, ss, t), len(ss))
	return m.fhead.ForwardCtx(c, m.fcore.forwardBatchCtx(c, encA, encB, ss))
}

// DeltaScoresBatchCtx implements DeltaScorerBatchCtx on the f32 path.
//
//mpgraph:noalloc
func (m *F32AMMADelta) DeltaScoresBatchCtx(c *tensor.Ctx, ss []*Sample) *tensor.Tensor {
	return sigmoidScoresF32(c, m.flogitsBatchCtx(c, ss))
}

//mpgraph:noalloc
func (m *F32AMMAPage) flogitsBatchCtx(c *tensor.Ctx, ss []*Sample) *tensor.F32Tensor {
	t := batchT(ss)
	encA := m.fcore.modA.encodeTokensBatchCtx(c, pageTokensBatchCtx(c, m.pages, ss, t), len(ss))
	encB := m.fcore.modB.encodeTokensBatchCtx(c, pcTokensBatchCtx(c, m.pcs, ss, t), len(ss))
	return m.fhead.ForwardCtx(c, m.fcore.forwardBatchCtx(c, encA, encB, ss))
}

// TopPagesBatchAppendCtx implements PageTopperBatchCtx on the f32 path.
//
//mpgraph:noalloc
func (m *F32AMMAPage) TopPagesBatchAppendCtx(c *tensor.Ctx, ss []*Sample, k int, dst [][]uint64) {
	scores := c.WidenCtxF32(m.flogitsBatchCtx(c, ss))
	for i := range ss {
		row := scores.Data[i*scores.Cols : (i+1)*scores.Cols]
		dst[i] = topPagesAppendCtx(c, m.pages, row, k, dst[i])
	}
}

//mpgraph:noalloc
func (m *F32LSTMDelta) flogitsBatchCtx(c *tensor.Ctx, ss []*Sample) *tensor.F32Tensor {
	t := batchT(ss)
	x := c.NarrowCtxF32(concatStepFeaturesBatchCtx(c, m.cfg, ss, t))
	return m.fhead.ForwardCtx(c, m.flstm.ForwardBatchCtx(c, x, len(ss)))
}

// DeltaScoresBatchCtx implements DeltaScorerBatchCtx on the f32 path.
//
//mpgraph:noalloc
func (m *F32LSTMDelta) DeltaScoresBatchCtx(c *tensor.Ctx, ss []*Sample) *tensor.Tensor {
	return sigmoidScoresF32(c, m.flogitsBatchCtx(c, ss))
}
