package models

import (
	"fmt"
	"math"
)

// ScreenScores checks a model's raw score vector for non-finite values. A
// NaN or Inf score means the model's parameters have been corrupted (bad
// checkpoint, numeric blow-up, fault injection) and every ranking derived
// from the vector is meaningless, so callers treat a non-nil result as a
// health violation and degrade rather than issue garbage prefetches.
func ScreenScores(scores []float64) error {
	for i, s := range scores {
		if math.IsNaN(s) || math.IsInf(s, 0) {
			return fmt.Errorf("models: non-finite score %v at class %d of %d", s, i, len(scores))
		}
	}
	return nil
}
