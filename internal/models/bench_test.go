package models

import (
	"testing"

	"mpgraph/internal/tensor"
)

func benchSample(cfg Config) *Sample {
	blocks := make([]uint64, cfg.HistoryT)
	pcs := make([]uint64, cfg.HistoryT)
	for i := range blocks {
		blocks[i] = uint64(1<<20 + i)
		pcs[i] = 0x400000 + uint64(i%3)*0x40
	}
	return &Sample{Blocks: blocks, PCs: pcs}
}

func BenchmarkAMMADeltaInference(b *testing.B) {
	cfg := SmallConfig()
	pcs := BuildVocab([]uint64{0x400000, 0x400040, 0x400080}, cfg.PCVocab)
	m := NewAMMADelta(cfg, pcs, 0, 1)
	s := benchSample(cfg)
	restore := tensor.SetGradEnabled(false)
	defer tensor.SetGradEnabled(restore)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.DeltaScores(s)
	}
}

func BenchmarkAMMADeltaInferencePaperScale(b *testing.B) {
	cfg := PaperConfig()
	pcs := BuildVocab([]uint64{0x400000, 0x400040, 0x400080}, cfg.PCVocab)
	m := NewAMMADelta(cfg, pcs, 0, 1)
	s := benchSample(cfg)
	restore := tensor.SetGradEnabled(false)
	defer tensor.SetGradEnabled(restore)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.DeltaScores(s)
	}
}

func BenchmarkLSTMDeltaInference(b *testing.B) {
	cfg := SmallConfig()
	m := NewLSTMDelta(cfg, 1)
	s := benchSample(cfg)
	restore := tensor.SetGradEnabled(false)
	defer tensor.SetGradEnabled(restore)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.DeltaScores(s)
	}
}

func BenchmarkAMMADeltaTrainStep(b *testing.B) {
	cfg := SmallConfig()
	ds, err := BuildDataset(cfg, synthStream(2000, 1), DatasetOptions{})
	if err != nil {
		b.Fatal(err)
	}
	m := NewAMMADelta(cfg, ds.PCs, 0, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		loss := m.DeltaLoss(ds.Samples[i%len(ds.Samples)])
		if err := loss.Backward(); err != nil {
			b.Fatal(err)
		}
		for _, p := range m.Params() {
			p.ZeroGrad()
		}
	}
}
