package models

import (
	"fmt"

	"mpgraph/internal/trace"
)

// Sample is one supervised example extracted from the LLC access stream: a
// window of T past (block, PC) pairs, the ground-truth phase, and the two
// labels of Section 4.3 — the future-delta bitmap (spatial) and the next new
// page (temporal) — plus the next 10 pages for accuracy@10 scoring.
type Sample struct {
	Blocks []uint64
	PCs    []uint64
	Phase  int

	DeltaBits   []float64
	PageTok     int
	FuturePages []uint64
}

// CurrentBlock is the most recent history block (the delta base).
func (s *Sample) CurrentBlock() uint64 { return s.Blocks[len(s.Blocks)-1] }

// Dataset is a set of samples sharing tokenizers.
type Dataset struct {
	Cfg     Config
	Samples []*Sample
	Pages   *Vocab
	PCs     *Vocab
}

// DatasetOptions tunes extraction.
type DatasetOptions struct {
	// Stride subsamples the stream: a sample every Stride accesses
	// (default 1).
	Stride int
	// MaxSamples caps the dataset size (0 = unlimited).
	MaxSamples int
	// Pages / PCTokens reuse existing vocabularies (test sets must share
	// the training tokenizers); nil builds fresh ones from this stream.
	Pages *Vocab
	PCs   *Vocab
	// LabelDistance shifts the label windows LabelDistance accesses into
	// the future — the distance-prefetching training of Section 6.2, which
	// lets predictions stay ahead of demand despite inference latency.
	LabelDistance int
}

// BuildDataset extracts samples from an LLC access stream. The stream is
// what sim.Engine.Recorder captures: accesses that reached the shared LLC.
func BuildDataset(cfg Config, accesses []trace.Access, opt DatasetOptions) (*Dataset, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if opt.Stride <= 0 {
		opt.Stride = 1
	}
	T, F := cfg.HistoryT, cfg.LookForwardF
	dist := opt.LabelDistance
	if dist < 0 {
		return nil, fmt.Errorf("models: negative LabelDistance %d", dist)
	}
	if len(accesses) < T+dist+F+1 {
		return nil, fmt.Errorf("models: stream of %d accesses too short for T=%d F=%d dist=%d", len(accesses), T, F, dist)
	}

	blocks := make([]uint64, len(accesses))
	pages := make([]uint64, len(accesses))
	pcs := make([]uint64, len(accesses))
	for i, a := range accesses {
		blocks[i] = trace.Block(a.Addr)
		pages[i] = trace.Page(a.Addr)
		pcs[i] = a.PC
	}

	ds := &Dataset{Cfg: cfg, Pages: opt.Pages, PCs: opt.PCs}
	if ds.Pages == nil {
		ds.Pages = BuildVocab(pages, cfg.PageVocab)
	}
	if ds.PCs == nil {
		ds.PCs = BuildVocab(pcs, cfg.PCVocab)
	}

	for t := T; t+dist+F < len(accesses); t += opt.Stride {
		if opt.MaxSamples > 0 && len(ds.Samples) >= opt.MaxSamples {
			break
		}
		s := &Sample{
			Blocks: blocks[t-T : t],
			PCs:    pcs[t-T : t],
			Phase:  int(accesses[t-1].Phase),
		}
		cur := s.CurrentBlock()
		curPage := trace.PageOfBlock(cur)
		lo := t + dist

		// Spatial label: all future deltas within range over the
		// look-forward window.
		var deltas []int64
		for f := lo; f < lo+F; f++ {
			deltas = append(deltas, int64(blocks[f])-int64(cur))
		}
		s.DeltaBits = DeltaBitmap(cfg, deltas)

		// Temporal label: the first future page different from the current
		// one (the jump the chain prefetcher must anticipate); fall back to
		// the current page when the window never leaves it.
		s.PageTok = ds.Pages.Token(curPage)
		for f := lo; f < lo+F; f++ {
			if pages[f] != curPage {
				s.PageTok = ds.Pages.Token(pages[f])
				break
			}
		}

		// accuracy@10 ground truth (measured from the label window start).
		hi := lo + 10
		if hi > len(accesses) {
			hi = len(accesses)
		}
		s.FuturePages = pages[lo:hi]

		ds.Samples = append(ds.Samples, s)
	}
	if len(ds.Samples) == 0 {
		return nil, fmt.Errorf("models: no samples extracted")
	}
	return ds, nil
}

// FilterPhase returns the subset of samples with the given phase label,
// sharing vocabularies (the AMMA-PS training split).
func (d *Dataset) FilterPhase(phase int) *Dataset {
	out := &Dataset{Cfg: d.Cfg, Pages: d.Pages, PCs: d.PCs}
	for _, s := range d.Samples {
		if s.Phase == phase {
			out.Samples = append(out.Samples, s)
		}
	}
	return out
}

// NumPhases reports the highest phase label + 1.
func (d *Dataset) NumPhases() int {
	maxP := 0
	for _, s := range d.Samples {
		if s.Phase > maxP {
			maxP = s.Phase
		}
	}
	return maxP + 1
}
