package models

// Single-precision mirrors of the trained predictors (DESIGN.md §13). Like
// the int8 mirrors, an f32 model embeds its float64 source — training, the
// autograd scoring path and Params all delegate — and overrides only the
// ctx fast path with the f32 kernel composition, so the mirrors slot into
// DeltaScoresWith/TopPagesWith unchanged: a live ctx runs f32, a nil ctx
// falls back to the float64 model.
//
// Unlike int8 there is no calibration: weights are narrowed once at
// conversion (f64 → f32 round-to-nearest) and the activation path runs
// natively in f32. Scores cross back to float64 through the exact
// WidenCtxF32 hand-off — widening is monotonic and preserves every f32 Inf
// or NaN bit pattern, so rankings, exact tie ordering AND ScreenScores'
// non-finite health screen all see precisely what the f32 kernels produced
// (an f16/f32-range overflow surfaces as a screened Inf, never a silently
// clamped score).

import (
	"fmt"

	"mpgraph/internal/nn"
	"mpgraph/internal/tensor"
)

// --- f32 AMMA backbone ---

// f32ModalityEncoder mirrors modalityEncoder: projection/table, position row
// and attention all narrowed to f32.
type f32ModalityEncoder struct {
	lin   *nn.F32Linear    // nil for token modalities
	table *nn.F32Embedding // nil for feature modalities
	pos   *tensor.F32Tensor
	attn  *nn.F32SelfAttention
}

func convertModalityEncoderF32(m *modalityEncoder) *f32ModalityEncoder {
	f := &f32ModalityEncoder{
		pos:  tensor.NarrowF32(m.pos),
		attn: nn.NewF32SelfAttention(m.attn),
	}
	if m.lin != nil {
		f.lin = nn.NewF32Linear(m.lin)
	}
	if m.table != nil {
		f.table = nn.NewF32Embedding(m.table)
	}
	return f
}

//mpgraph:noalloc
func (m *f32ModalityEncoder) encodeFeaturesCtx(c *tensor.Ctx, x *tensor.F32Tensor) *tensor.F32Tensor {
	return m.attn.ForwardCtx(c, c.AddF32(m.lin.ForwardCtx(c, x), m.pos))
}

//mpgraph:noalloc
func (m *f32ModalityEncoder) encodeTokensCtx(c *tensor.Ctx, ids []int) *tensor.F32Tensor {
	return m.attn.ForwardCtx(c, c.AddF32(m.table.ForwardCtx(c, ids), m.pos))
}

// f32AMMACore mirrors ammaCore with every block narrowed to f32.
type f32AMMACore struct {
	modA, modB *f32ModalityEncoder
	fusion     *nn.F32MMAF
	trans      []*nn.F32TransformerLayer
	phaseEmb   *nn.F32Embedding // nil unless phase-informed
}

func convertAMMACoreF32(core *ammaCore) *f32AMMACore {
	fc := &f32AMMACore{
		modA:   convertModalityEncoderF32(core.modA),
		modB:   convertModalityEncoderF32(core.modB),
		fusion: nn.NewF32MMAF(core.fusion),
	}
	for _, tl := range core.trans {
		fc.trans = append(fc.trans, nn.NewF32TransformerLayer(tl))
	}
	if core.phaseEmb != nil {
		fc.phaseEmb = nn.NewF32Embedding(core.phaseEmb)
	}
	return fc
}

// forwardCtx is ammaCore.forwardCtx on the f32 kernels.
//
//mpgraph:noalloc
func (fc *f32AMMACore) forwardCtx(c *tensor.Ctx, encA, encB *tensor.F32Tensor, phase int) *tensor.F32Tensor {
	fused := fc.fusion.ForwardCtx2(c, encA, encB) //mpgraph:allow noalloc -- fixed-arity fast path; the cross-package naming rule keys on a Ctx suffix
	if fc.phaseEmb != nil {
		p := phase % fc.phaseEmb.Vocab() //mpgraph:allow noalloc -- Vocab is a field read
		fused = c.AddBiasF32(fused, fc.phaseEmb.ForwardCtx(c, phaseIDScratch(c, p)))
	}
	for _, tl := range fc.trans {
		fused = tl.ForwardCtx(c, fused)
	}
	return c.MeanRowsF32(fused)
}

// sigmoidScoresF32 widens sigmoid(logits) into the float64 score vector the
// decode paths consume. Sigmoid SATURATES: an overflowed f32 logit (e.g. an
// f16-poisoned weight widened to Inf) would squash to a perfectly finite
// probability and sail past ScreenScores. So non-finite logits short-circuit
// the activation and are widened verbatim — the Inf/NaN reaches ScreenScores
// and latches Health() exactly like a float64 blow-up would.
//
//mpgraph:noalloc
func sigmoidScoresF32(c *tensor.Ctx, logits *tensor.F32Tensor) *tensor.Tensor {
	for _, v := range logits.Data {
		if v-v != 0 { // non-finite: Inf-Inf and NaN-NaN are both NaN
			return c.WidenCtxF32(logits)
		}
	}
	return c.WidenCtxF32(c.SigmoidInPlaceF32(logits))
}

// --- f32 predictors ---

// F32AMMADelta is the f32 mirror of AMMADelta. The embedded float64 model
// serves training, Params and the nil-ctx path.
type F32AMMADelta struct {
	*AMMADelta
	fcore *f32AMMACore
	fhead *nn.F32MLP
}

// NewF32AMMADelta narrows m's weights into an f32 mirror.
func NewF32AMMADelta(m *AMMADelta) *F32AMMADelta {
	return &F32AMMADelta{AMMADelta: m, fcore: convertAMMACoreF32(m.core), fhead: nn.NewF32MLP(m.head)}
}

//mpgraph:noalloc
func (m *F32AMMADelta) flogitsCtx(c *tensor.Ctx, s *Sample) *tensor.F32Tensor {
	encA := m.fcore.modA.encodeFeaturesCtx(c, c.NarrowCtxF32(addrFeatureTensorCtx(c, m.cfg, s.Blocks)))
	encB := m.fcore.modB.encodeTokensCtx(c, pcTokensCtx(c, m.pcs, s.PCs))
	return m.fhead.ForwardCtx(c, m.fcore.forwardCtx(c, encA, encB, s.Phase))
}

// DeltaScoresCtx implements DeltaScorerCtx on the f32 path.
//
//mpgraph:noalloc
func (m *F32AMMADelta) DeltaScoresCtx(c *tensor.Ctx, s *Sample) []float64 {
	if c == nil {
		return m.DeltaScores(s)
	}
	return sigmoidScoresF32(c, m.flogitsCtx(c, s)).Data
}

// F32AMMAPage is the f32 mirror of AMMAPage.
type F32AMMAPage struct {
	*AMMAPage
	fcore *f32AMMACore
	fhead *nn.F32MLP
}

// NewF32AMMAPage narrows m's weights into an f32 mirror.
func NewF32AMMAPage(m *AMMAPage) *F32AMMAPage {
	return &F32AMMAPage{AMMAPage: m, fcore: convertAMMACoreF32(m.core), fhead: nn.NewF32MLP(m.head)}
}

//mpgraph:noalloc
func (m *F32AMMAPage) flogitsCtx(c *tensor.Ctx, s *Sample) *tensor.F32Tensor {
	encA := m.fcore.modA.encodeTokensCtx(c, pageTokensCtx(c, m.pages, s.Blocks))
	encB := m.fcore.modB.encodeTokensCtx(c, pcTokensCtx(c, m.pcs, s.PCs))
	return m.fhead.ForwardCtx(c, m.fcore.forwardCtx(c, encA, encB, s.Phase))
}

// TopPagesAppendCtx implements PageTopperCtx on the f32 path. Ranking runs
// over the exactly-widened f32 logits, so tie ordering matches what the f32
// kernels produced.
//
//mpgraph:noalloc
func (m *F32AMMAPage) TopPagesAppendCtx(c *tensor.Ctx, s *Sample, k int, dst []uint64) []uint64 {
	if c == nil {
		return append(dst, m.TopPages(s, k)...)
	}
	return topPagesAppendCtx(c, m.pages, c.WidenCtxF32(m.flogitsCtx(c, s)).Data, k, dst)
}

// F32LSTMDelta is the f32 mirror of the Delta-LSTM baseline — the
// single-model speed reference the mixed-precision benchmarks pin.
type F32LSTMDelta struct {
	*LSTMDelta
	flstm *nn.F32LSTM
	fhead *nn.F32MLP
}

// NewF32LSTMDelta narrows m's weights into an f32 mirror.
func NewF32LSTMDelta(m *LSTMDelta) *F32LSTMDelta {
	return &F32LSTMDelta{LSTMDelta: m, flstm: nn.NewF32LSTM(m.lstm), fhead: nn.NewF32MLP(m.head)}
}

//mpgraph:noalloc
func (m *F32LSTMDelta) flogitsCtx(c *tensor.Ctx, s *Sample) *tensor.F32Tensor {
	x := c.NarrowCtxF32(concatStepFeaturesCtx(c, m.cfg, s.Blocks, s.PCs))
	return m.fhead.ForwardCtx(c, m.flstm.ForwardCtx(c, x))
}

// DeltaScoresCtx implements DeltaScorerCtx on the f32 path.
//
//mpgraph:noalloc
func (m *F32LSTMDelta) DeltaScoresCtx(c *tensor.Ctx, s *Sample) []float64 {
	if c == nil {
		return m.DeltaScores(s)
	}
	return sigmoidScoresF32(c, m.flogitsCtx(c, s)).Data
}

// F32BinaryPage is the f32 mirror of the binary-encoded compressed page
// predictor. The backbone runs f32; the head stays FLOAT64 for the same
// reason QBinaryPage keeps it float — its outputs are thresholded at 0.5 to
// decode a bit code, and the head is a few hundred weights with nothing to
// win — so the pooled backbone output is widened once and the float head
// and candidate decode run unchanged.
type F32BinaryPage struct {
	*BinaryPage
	fcore *f32AMMACore
}

// NewF32BinaryPage narrows m's backbone weights into an f32 mirror.
func NewF32BinaryPage(m *BinaryPage) *F32BinaryPage {
	return &F32BinaryPage{BinaryPage: m, fcore: convertAMMACoreF32(m.core)}
}

//mpgraph:noalloc
func (m *F32BinaryPage) flogitsCtx(c *tensor.Ctx, s *Sample) *tensor.Tensor {
	encA := m.fcore.modA.encodeTokensCtx(c, pageTokensCtx(c, m.pages, s.Blocks))
	encB := m.fcore.modB.encodeTokensCtx(c, pcTokensCtx(c, m.pcs, s.PCs))
	pooled := c.WidenCtxF32(m.fcore.forwardCtx(c, encA, encB, s.Phase))
	return m.head.ForwardCtx(c, pooled)
}

// TopPagesAppendCtx implements PageTopperCtx on the f32 path, using the same
// bit-flip candidate decode as the float model.
//
//mpgraph:noalloc
func (m *F32BinaryPage) TopPagesAppendCtx(c *tensor.Ctx, s *Sample, k int, dst []uint64) []uint64 {
	if c == nil {
		return append(dst, m.TopPages(s, k)...)
	}
	probs := c.SigmoidInPlace(m.flogitsCtx(c, s)).Data
	return binaryTopPagesAppendCtx(c, m.pages, probs, k, dst)
}

// --- suite conversion ---

// ConvertDeltaF32 returns an f32 mirror of a trained delta model. AMMADelta,
// LSTMDelta and PhaseSpecificDelta are supported; anything else is an
// explicit error so callers cannot silently keep running float64.
func ConvertDeltaF32(m DeltaModel) (DeltaModel, error) {
	switch t := m.(type) {
	case *AMMADelta:
		return NewF32AMMADelta(t), nil
	case *LSTMDelta:
		return NewF32LSTMDelta(t), nil
	case *PhaseSpecificDelta:
		out := &PhaseSpecificDelta{Models: make([]DeltaModel, len(t.Models))}
		for p, sub := range t.Models {
			fsub, err := ConvertDeltaF32(sub)
			if err != nil {
				return nil, fmt.Errorf("phase %d: %w", p, err)
			}
			out.Models[p] = fsub
		}
		return out, nil
	default:
		return nil, fmt.Errorf("models: no f32 mirror for delta model %T", m)
	}
}

// ConvertPageF32 returns an f32 mirror of a trained page model. AMMAPage,
// BinaryPage and PhaseSpecificPage are supported.
func ConvertPageF32(m PageModel) (PageModel, error) {
	switch t := m.(type) {
	case *AMMAPage:
		return NewF32AMMAPage(t), nil
	case *BinaryPage:
		return NewF32BinaryPage(t), nil
	case *PhaseSpecificPage:
		out := &PhaseSpecificPage{Models: make([]PageModel, len(t.Models))}
		for p, sub := range t.Models {
			fsub, err := ConvertPageF32(sub)
			if err != nil {
				return nil, fmt.Errorf("phase %d: %w", p, err)
			}
			out.Models[p] = fsub
		}
		return out, nil
	default:
		return nil, fmt.Errorf("models: no f32 mirror for page model %T", m)
	}
}

// ConvertSuiteF32 converts a delta/page model pair — the wiring the
// experiments pipeline uses under Options.F32.
func ConvertSuiteF32(delta DeltaModel, page PageModel) (DeltaModel, PageModel, error) {
	fd, err := ConvertDeltaF32(delta)
	if err != nil {
		return nil, nil, err
	}
	fp, err := ConvertPageF32(page)
	if err != nil {
		return nil, nil, err
	}
	return fd, fp, nil
}
