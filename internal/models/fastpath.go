package models

import (
	"math"

	"mpgraph/internal/tensor"
	"mpgraph/internal/trace"
)

// Arena fast paths for model inference (DESIGN.md §8). Each predictor gains
// a ctx variant of its scoring entry point that threads a *tensor.Ctx
// through the forward pass: a nil ctx reproduces the exact autograd path,
// a non-nil ctx runs graph-free on the arena with zero steady-state heap
// allocations. The capability interfaces below keep the base DeltaModel /
// PageModel contracts untouched — implementations without a fast path
// (binary-compressed heads, distilled students) simply fall back.

// DeltaScorerCtx is a DeltaModel with an arena fast path. Fast-path scores
// are arena-backed: valid only until the ctx is reset.
type DeltaScorerCtx interface {
	DeltaScoresCtx(c *tensor.Ctx, s *Sample) []float64
}

// PageTopperCtx is a PageModel with an arena fast path. TopPagesAppendCtx
// appends up to k pages to dst and returns it, so callers can reuse one
// result buffer across calls.
type PageTopperCtx interface {
	TopPagesAppendCtx(c *tensor.Ctx, s *Sample, k int, dst []uint64) []uint64
}

// DeltaScoresWith scores s on the fast path when m supports it (and c is
// non-nil), falling back to the allocating DeltaScores otherwise.
func DeltaScoresWith(c *tensor.Ctx, m DeltaModel, s *Sample) []float64 {
	if fc, ok := m.(DeltaScorerCtx); ok && c != nil {
		return fc.DeltaScoresCtx(c, s)
	}
	return m.DeltaScores(s)
}

// TopPagesWith appends m's top-k pages for s to dst on the fast path when m
// supports it, falling back to TopPages otherwise.
func TopPagesWith(c *tensor.Ctx, m PageModel, s *Sample, k int, dst []uint64) []uint64 {
	if fc, ok := m.(PageTopperCtx); ok && c != nil {
		return fc.TopPagesAppendCtx(c, s, k, dst)
	}
	return append(dst, m.TopPages(s, k)...)
}

// --- encoding helpers (ctx variants of the package-level ones) ---

//mpgraph:noalloc
func pcTokensCtx(c *tensor.Ctx, v *Vocab, pcs []uint64) []int {
	out := c.Ints(len(pcs))
	for i, pc := range pcs {
		out[i] = v.Token(pc)
	}
	return out
}

//mpgraph:noalloc
func pageTokensCtx(c *tensor.Ctx, v *Vocab, blocks []uint64) []int {
	out := c.Ints(len(blocks))
	for i, b := range blocks {
		out[i] = v.Token(trace.PageOfBlock(b))
	}
	return out
}

// addrFeatureTensorCtx is AddrFeatureTensor on the arena.
//
//mpgraph:noalloc
func addrFeatureTensorCtx(c *tensor.Ctx, cfg Config, blocks []uint64) *tensor.Tensor {
	t := c.Zeros(len(blocks), cfg.NumSegments)
	for i, b := range blocks {
		SegmentBlockInto(cfg, b, t.Data[i*cfg.NumSegments:(i+1)*cfg.NumSegments])
	}
	return t
}

// concatStepFeaturesCtx is concatStepFeatures on the arena.
//
//mpgraph:noalloc
func concatStepFeaturesCtx(c *tensor.Ctx, cfg Config, blocks, pcs []uint64) *tensor.Tensor {
	cols := cfg.NumSegments + 1
	t := c.Zeros(len(blocks), cols)
	for i := range blocks {
		SegmentBlockInto(cfg, blocks[i], t.Data[i*cols:i*cols+cfg.NumSegments])
		t.Data[i*cols+cfg.NumSegments] = hashPC(pcs[i])
	}
	return t
}

// TopKClassesCtx is TopKClasses with the index scratch drawn from the
// arena; a nil ctx falls back to the allocating sort.
//
//mpgraph:noalloc
func TopKClassesCtx(c *tensor.Ctx, scores []float64, k int) []int {
	if c == nil {
		return TopKClasses(scores, k)
	}
	return topKSelectInto(c.Ints(len(scores)), scores, k)
}

// topKSelectInto ranks the k best-scoring indices into idxBuf (length
// len(scores)) by partial selection sort, reproducing TopKClasses' order
// exactly — descending score, equal scores broken by lower index — without
// sort.Slice's allocations.
//
//mpgraph:noalloc
func topKSelectInto(idxBuf []int, scores []float64, k int) []int {
	n := len(scores)
	for i := range idxBuf {
		idxBuf[i] = i
	}
	if k > n {
		k = n
	}
	for j := 0; j < k; j++ {
		best := j
		for i := j + 1; i < n; i++ {
			bi, bb := idxBuf[i], idxBuf[best]
			if scores[bi] > scores[bb] ||
				(scores[bi] == scores[bb] && bi < bb) { //mpgraph:allow floateq -- exact tie-break matches TopKClasses ordering
				best = i
			}
		}
		idxBuf[j], idxBuf[best] = idxBuf[best], idxBuf[j]
	}
	return idxBuf[:k]
}

// topPagesAppendCtx maps the best-scoring known tokens back to page values,
// appending to dst (the ctx analogue of topPagesFromScores).
//
//mpgraph:noalloc
func topPagesAppendCtx(c *tensor.Ctx, pages *Vocab, scores []float64, k int, dst []uint64) []uint64 {
	added := 0
	for _, tok := range topKSelectInto(c.Ints(len(scores)), scores, k+1) {
		if page, ok := pages.Value(tok); ok {
			dst = append(dst, page)
			added++
			if added == k {
				break
			}
		}
	}
	return dst
}

// --- modality encoder / AMMA core ---

//mpgraph:noalloc
func (m *modalityEncoder) encodeFeaturesCtx(c *tensor.Ctx, x *tensor.Tensor) *tensor.Tensor {
	return m.attn.ForwardCtx(c, c.Add(m.lin.ForwardCtx(c, x), m.pos))
}

//mpgraph:noalloc
func (m *modalityEncoder) encodeTokensCtx(c *tensor.Ctx, ids []int) *tensor.Tensor {
	return m.attn.ForwardCtx(c, c.Add(m.table.ForwardCtx(c, ids), m.pos))
}

// forwardCtx is ammaCore.forward on the fast path.
//
//mpgraph:noalloc
func (core *ammaCore) forwardCtx(c *tensor.Ctx, encA, encB *tensor.Tensor, phase int) *tensor.Tensor {
	fused := core.fusion.ForwardCtx2(c, encA, encB) //mpgraph:allow noalloc -- fixed-arity fast path; the cross-package naming rule keys on a Ctx suffix
	if core.phaseEmb != nil {
		p := phase % core.phaseEmb.Vocab() //mpgraph:allow noalloc -- Vocab is a field read
		fused = c.AddBias(fused, core.phaseEmb.ForwardCtx(c, phaseIDScratch(c, p)))
	}
	for _, tl := range core.trans {
		fused = tl.ForwardCtx(c, fused)
	}
	return c.MeanRows(fused)
}

// phaseIDScratch builds the single-id lookup slice without a heap alloc.
//
//mpgraph:noalloc
func phaseIDScratch(c *tensor.Ctx, p int) []int {
	ids := c.Ints(1)
	ids[0] = p
	return ids
}

// --- AMMA ---

//mpgraph:noalloc
func (m *AMMADelta) logitsCtx(c *tensor.Ctx, s *Sample) *tensor.Tensor {
	if c == nil {
		return m.logits(s)
	}
	encA := m.core.modA.encodeFeaturesCtx(c, addrFeatureTensorCtx(c, m.cfg, s.Blocks))
	encB := m.core.modB.encodeTokensCtx(c, pcTokensCtx(c, m.pcs, s.PCs))
	return m.head.ForwardCtx(c, m.core.forwardCtx(c, encA, encB, s.Phase))
}

// DeltaScoresCtx implements DeltaScorerCtx.
//
//mpgraph:noalloc
func (m *AMMADelta) DeltaScoresCtx(c *tensor.Ctx, s *Sample) []float64 {
	if c == nil {
		return m.DeltaScores(s)
	}
	return c.SigmoidInPlace(m.logitsCtx(c, s)).Data
}

//mpgraph:noalloc
func (m *AMMAPage) logitsCtx(c *tensor.Ctx, s *Sample) *tensor.Tensor {
	if c == nil {
		return m.logits(s)
	}
	encA := m.core.modA.encodeTokensCtx(c, pageTokensCtx(c, m.pages, s.Blocks))
	encB := m.core.modB.encodeTokensCtx(c, pcTokensCtx(c, m.pcs, s.PCs))
	return m.head.ForwardCtx(c, m.core.forwardCtx(c, encA, encB, s.Phase))
}

// TopPagesAppendCtx implements PageTopperCtx.
//
//mpgraph:noalloc
func (m *AMMAPage) TopPagesAppendCtx(c *tensor.Ctx, s *Sample, k int, dst []uint64) []uint64 {
	if c == nil {
		return append(dst, m.TopPages(s, k)...)
	}
	return topPagesAppendCtx(c, m.pages, m.logitsCtx(c, s).Data, k, dst)
}

// --- baselines ---

//mpgraph:noalloc
func (m *LSTMDelta) logitsCtx(c *tensor.Ctx, s *Sample) *tensor.Tensor {
	if c == nil {
		return m.logits(s)
	}
	return m.head.ForwardCtx(c, m.lstm.ForwardCtx(c, concatStepFeaturesCtx(c, m.cfg, s.Blocks, s.PCs)))
}

// DeltaScoresCtx implements DeltaScorerCtx.
//
//mpgraph:noalloc
func (m *LSTMDelta) DeltaScoresCtx(c *tensor.Ctx, s *Sample) []float64 {
	if c == nil {
		return m.DeltaScores(s)
	}
	return c.SigmoidInPlace(m.logitsCtx(c, s)).Data
}

//mpgraph:noalloc
func (m *LSTMPage) logitsCtx(c *tensor.Ctx, s *Sample) *tensor.Tensor {
	if c == nil {
		return m.logits(s)
	}
	pe := m.pageEmb.ForwardCtx(c, pageTokensCtx(c, m.pages, s.Blocks))
	ce := m.pcEmb.ForwardCtx(c, pcTokensCtx(c, m.pcs, s.PCs))
	return m.head.ForwardCtx(c, m.lstm.ForwardCtx(c, c.ConcatCols2(pe, ce)))
}

// TopPagesAppendCtx implements PageTopperCtx.
//
//mpgraph:noalloc
func (m *LSTMPage) TopPagesAppendCtx(c *tensor.Ctx, s *Sample, k int, dst []uint64) []uint64 {
	if c == nil {
		return append(dst, m.TopPages(s, k)...)
	}
	return topPagesAppendCtx(c, m.pages, m.logitsCtx(c, s).Data, k, dst)
}

//mpgraph:noalloc
func (m *AttnDelta) logitsCtx(c *tensor.Ctx, s *Sample) *tensor.Tensor {
	if c == nil {
		return m.logits(s)
	}
	x := c.Add(m.embed.ForwardCtx(c, concatStepFeaturesCtx(c, m.cfg, s.Blocks, s.PCs)), m.pos)
	for _, tl := range m.trans {
		x = tl.ForwardCtx(c, x)
	}
	return m.head.ForwardCtx(c, c.MeanRows(x))
}

// DeltaScoresCtx implements DeltaScorerCtx.
//
//mpgraph:noalloc
func (m *AttnDelta) DeltaScoresCtx(c *tensor.Ctx, s *Sample) []float64 {
	if c == nil {
		return m.DeltaScores(s)
	}
	return c.SigmoidInPlace(m.logitsCtx(c, s)).Data
}

//mpgraph:noalloc
func (m *AttnPage) logitsCtx(c *tensor.Ctx, s *Sample) *tensor.Tensor {
	if c == nil {
		return m.logits(s)
	}
	pe := m.pageEmb.ForwardCtx(c, pageTokensCtx(c, m.pages, s.Blocks))
	side := c.Zeros(len(s.PCs), 1)
	for i, pc := range s.PCs {
		side.Data[i] = hashPC(pc)
	}
	x := c.Add(m.mix.ForwardCtx(c, c.ConcatCols2(pe, side)), m.pos)
	for _, tl := range m.trans {
		x = tl.ForwardCtx(c, x)
	}
	return m.head.ForwardCtx(c, c.MeanRows(x))
}

// TopPagesAppendCtx implements PageTopperCtx.
//
//mpgraph:noalloc
func (m *AttnPage) TopPagesAppendCtx(c *tensor.Ctx, s *Sample, k int, dst []uint64) []uint64 {
	if c == nil {
		return append(dst, m.TopPages(s, k)...)
	}
	return topPagesAppendCtx(c, m.pages, m.logitsCtx(c, s).Data, k, dst)
}

// --- binary-encoded compressed head ---

// binaryTopPagesAppendCtx is the arena analogue of BinaryPage.TopPages'
// candidate decode: rank bits by confidence distance from 0.5 (ascending,
// the same swap-on-less pass as the float path so tie ordering is
// identical), then try the maximum-likelihood code followed by single-bit
// flips in uncertainty order, keeping up to k distinct known pages.
//
//mpgraph:noalloc
func binaryTopPagesAppendCtx(c *tensor.Ctx, pages *Vocab, probs []float64, k int, dst []uint64) []uint64 {
	base := DecodeBinary(probs)
	order := c.Ints(len(probs))
	for i := range order {
		order[i] = i
	}
	for i := 0; i < len(order); i++ {
		for j := i + 1; j < len(order); j++ {
			if math.Abs(probs[order[j]]-0.5) < math.Abs(probs[order[i]]-0.5) {
				order[i], order[j] = order[j], order[i]
			}
		}
	}
	// Candidate ci=0 is the base code; ci>0 flips bit order[ci-1]. The 4k
	// cap and known-page dedupe match the float path; dedupe scans the
	// region appended by this call instead of a map.
	start := len(dst)
	added := 0
	for ci := 0; ci < 4*k && ci <= len(order); ci++ {
		id := base
		if ci > 0 {
			id = base ^ (1 << order[ci-1])
		}
		page, ok := pages.Value(id)
		if !ok {
			continue
		}
		dup := false
		for _, p := range dst[start:] {
			if p == page {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		dst = append(dst, page)
		added++
		if added == k {
			break
		}
	}
	return dst
}

//mpgraph:noalloc
func (m *BinaryPage) pageLogitsCtx(c *tensor.Ctx, s *Sample) *tensor.Tensor {
	if c == nil {
		return m.PageLogits(s)
	}
	encA := m.core.modA.encodeTokensCtx(c, pageTokensCtx(c, m.pages, s.Blocks))
	encB := m.core.modB.encodeTokensCtx(c, pcTokensCtx(c, m.pcs, s.PCs))
	return m.head.ForwardCtx(c, m.core.forwardCtx(c, encA, encB, s.Phase))
}

// TopPagesAppendCtx implements PageTopperCtx: the float fast path of the
// binary-encoded compressed head (the int8 mirror is QBinaryPage).
//
//mpgraph:noalloc
func (m *BinaryPage) TopPagesAppendCtx(c *tensor.Ctx, s *Sample, k int, dst []uint64) []uint64 {
	if c == nil {
		return append(dst, m.TopPages(s, k)...)
	}
	probs := c.SigmoidInPlace(m.pageLogitsCtx(c, s)).Data
	return binaryTopPagesAppendCtx(c, m.pages, probs, k, dst)
}

// --- phase-specific wrappers (dispatch then recurse on the fast path) ---

// DeltaScoresCtx implements DeltaScorerCtx by dispatching on s.Phase.
func (ps *PhaseSpecificDelta) DeltaScoresCtx(c *tensor.Ctx, s *Sample) []float64 {
	return DeltaScoresWith(c, ps.modelFor(s.Phase), s)
}

// TopPagesAppendCtx implements PageTopperCtx by dispatching on s.Phase.
func (ps *PhaseSpecificPage) TopPagesAppendCtx(c *tensor.Ctx, s *Sample, k int, dst []uint64) []uint64 {
	return TopPagesWith(c, ps.modelFor(s.Phase), s, k, dst)
}
