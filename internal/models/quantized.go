package models

// Int8 quantized mirrors of the trained predictors (DESIGN.md §10). A
// quantized model embeds its float source — training, the autograd scoring
// path and Params all delegate — and overrides only the ctx fast path with
// the int8 kernel composition. The mirrors therefore slot into
// DeltaScoresWith/TopPagesWith unchanged: a live ctx runs int8, a nil ctx
// falls back to the float model.
//
// Construction is two-phase. NewQ* quantizes the weights (per-channel
// symmetric int8) and leaves every layer in calibration mode: forwards run
// the float path while observers record activation ranges. Calibrate/Freeze
// (run by the Quantize* helpers over a short sample pass) locks the
// activation scales and switches the forward to int8. Embeddings, position
// tables, LayerNorm and softmax stay float.

import (
	"fmt"

	"mpgraph/internal/nn"
	"mpgraph/internal/tensor"
)

// calibLimit caps the calibration pass: activation ranges saturate after a
// few dozen representative samples, and quantization is on the experiment
// build path where suites are constructed many times.
const calibLimit = 64

// --- quantized AMMA backbone ---

// qModalityEncoder mirrors modalityEncoder: quantized input projection (for
// the feature modality) and attention; embedding table and position row are
// shared with the float source.
type qModalityEncoder struct {
	src  *modalityEncoder
	lin  *nn.QLinear // nil for token modalities
	attn *nn.QSelfAttention
}

func quantizeModalityEncoder(m *modalityEncoder) *qModalityEncoder {
	q := &qModalityEncoder{src: m, attn: nn.NewQSelfAttention(m.attn)}
	if m.lin != nil {
		q.lin = nn.NewQLinear(m.lin)
	}
	return q
}

//mpgraph:noalloc
func (m *qModalityEncoder) encodeFeaturesCtx(c *tensor.Ctx, x *tensor.Tensor) *tensor.Tensor {
	return m.attn.ForwardCtx(c, c.Add(m.lin.ForwardCtx(c, x), m.src.pos))
}

//mpgraph:noalloc
func (m *qModalityEncoder) encodeTokensCtx(c *tensor.Ctx, ids []int) *tensor.Tensor {
	return m.attn.ForwardCtx(c, c.Add(m.src.table.ForwardCtx(c, ids), m.src.pos))
}

func (m *qModalityEncoder) freeze() {
	if m.lin != nil {
		m.lin.Freeze()
	}
	m.attn.Freeze()
}

// qAMMACore mirrors ammaCore; the phase embedding lookup stays float.
type qAMMACore struct {
	src        *ammaCore
	modA, modB *qModalityEncoder
	fusion     *nn.QMMAF
	trans      []*nn.QTransformerLayer
}

func quantizeAMMACore(core *ammaCore) *qAMMACore {
	qc := &qAMMACore{
		src:    core,
		modA:   quantizeModalityEncoder(core.modA),
		modB:   quantizeModalityEncoder(core.modB),
		fusion: nn.NewQMMAF(core.fusion),
	}
	for _, tl := range core.trans {
		qc.trans = append(qc.trans, nn.NewQTransformerLayer(tl))
	}
	return qc
}

// forwardCtx is ammaCore.forwardCtx on the int8 kernels.
//
//mpgraph:noalloc
func (qc *qAMMACore) forwardCtx(c *tensor.Ctx, encA, encB *tensor.Tensor, phase int) *tensor.Tensor {
	fused := qc.fusion.ForwardCtx2(c, encA, encB) //mpgraph:allow noalloc -- fixed-arity fast path; the cross-package naming rule keys on a Ctx suffix
	if qc.src.phaseEmb != nil {
		p := phase % qc.src.phaseEmb.Vocab() //mpgraph:allow noalloc -- Vocab is a field read
		fused = c.AddBias(fused, qc.src.phaseEmb.ForwardCtx(c, phaseIDScratch(c, p)))
	}
	for _, tl := range qc.trans {
		fused = tl.ForwardCtx(c, fused)
	}
	return c.MeanRows(fused)
}

func (qc *qAMMACore) freeze() {
	qc.modA.freeze()
	qc.modB.freeze()
	qc.fusion.Freeze()
	for _, tl := range qc.trans {
		tl.Freeze()
	}
}

// --- quantized predictors ---

// QAMMADelta is the int8 mirror of AMMADelta. The embedded float model
// serves training, Params and the nil-ctx path.
type QAMMADelta struct {
	*AMMADelta
	qcore *qAMMACore
	qhead *nn.QMLP
}

// NewQAMMADelta quantizes m's weights; the mirror starts in calibration
// mode (see Calibrate/Freeze).
func NewQAMMADelta(m *AMMADelta) *QAMMADelta {
	return &QAMMADelta{AMMADelta: m, qcore: quantizeAMMACore(m.core), qhead: nn.NewQMLP(m.head)}
}

//mpgraph:noalloc
func (m *QAMMADelta) qlogitsCtx(c *tensor.Ctx, s *Sample) *tensor.Tensor {
	encA := m.qcore.modA.encodeFeaturesCtx(c, addrFeatureTensorCtx(c, m.cfg, s.Blocks))
	encB := m.qcore.modB.encodeTokensCtx(c, pcTokensCtx(c, m.pcs, s.PCs))
	return m.qhead.ForwardCtx(c, m.qcore.forwardCtx(c, encA, encB, s.Phase))
}

// DeltaScoresCtx implements DeltaScorerCtx on the int8 path.
//
//mpgraph:noalloc
func (m *QAMMADelta) DeltaScoresCtx(c *tensor.Ctx, s *Sample) []float64 {
	if c == nil {
		return m.DeltaScores(s)
	}
	return c.SigmoidInPlace(m.qlogitsCtx(c, s)).Data
}

// Freeze locks the calibrated activation scales.
func (m *QAMMADelta) Freeze() {
	m.qcore.freeze()
	m.qhead.Freeze()
}

// QAMMAPage is the int8 mirror of AMMAPage.
type QAMMAPage struct {
	*AMMAPage
	qcore *qAMMACore
	qhead *nn.QMLP
}

// NewQAMMAPage quantizes m's weights; the mirror starts in calibration mode.
func NewQAMMAPage(m *AMMAPage) *QAMMAPage {
	return &QAMMAPage{AMMAPage: m, qcore: quantizeAMMACore(m.core), qhead: nn.NewQMLP(m.head)}
}

//mpgraph:noalloc
func (m *QAMMAPage) qlogitsCtx(c *tensor.Ctx, s *Sample) *tensor.Tensor {
	encA := m.qcore.modA.encodeTokensCtx(c, pageTokensCtx(c, m.pages, s.Blocks))
	encB := m.qcore.modB.encodeTokensCtx(c, pcTokensCtx(c, m.pcs, s.PCs))
	return m.qhead.ForwardCtx(c, m.qcore.forwardCtx(c, encA, encB, s.Phase))
}

// TopPagesAppendCtx implements PageTopperCtx on the int8 path.
//
//mpgraph:noalloc
func (m *QAMMAPage) TopPagesAppendCtx(c *tensor.Ctx, s *Sample, k int, dst []uint64) []uint64 {
	if c == nil {
		return append(dst, m.TopPages(s, k)...)
	}
	return topPagesAppendCtx(c, m.pages, m.qlogitsCtx(c, s).Data, k, dst)
}

// Freeze locks the calibrated activation scales.
func (m *QAMMAPage) Freeze() {
	m.qcore.freeze()
	m.qhead.Freeze()
}

// QBinaryPage is the int8 mirror of the binary-encoded compressed page
// predictor — the §6.1 configuration the int8 engine exists for: compressed
// storage AND integer inference speed. The backbone runs int8; the head
// stays FLOAT: it is FusionDim x log2(vocab) (a few hundred weights, no
// storage or compute to win), and its outputs are thresholded at 0.5 to
// decode a bit code, where quantization noise on a near-threshold logit
// flips the entire decoded id rather than perturbing a ranking.
type QBinaryPage struct {
	*BinaryPage
	qcore *qAMMACore
}

// NewQBinaryPage quantizes m's backbone weights; the mirror starts in
// calibration mode.
func NewQBinaryPage(m *BinaryPage) *QBinaryPage {
	return &QBinaryPage{BinaryPage: m, qcore: quantizeAMMACore(m.core)}
}

//mpgraph:noalloc
func (m *QBinaryPage) qlogitsCtx(c *tensor.Ctx, s *Sample) *tensor.Tensor {
	encA := m.qcore.modA.encodeTokensCtx(c, pageTokensCtx(c, m.pages, s.Blocks))
	encB := m.qcore.modB.encodeTokensCtx(c, pcTokensCtx(c, m.pcs, s.PCs))
	return m.head.ForwardCtx(c, m.qcore.forwardCtx(c, encA, encB, s.Phase))
}

// TopPagesAppendCtx implements PageTopperCtx on the int8 path, using the
// same bit-flip candidate decode as the float model.
//
//mpgraph:noalloc
func (m *QBinaryPage) TopPagesAppendCtx(c *tensor.Ctx, s *Sample, k int, dst []uint64) []uint64 {
	if c == nil {
		return append(dst, m.TopPages(s, k)...)
	}
	probs := c.SigmoidInPlace(m.qlogitsCtx(c, s)).Data
	return binaryTopPagesAppendCtx(c, m.pages, probs, k, dst)
}

// Freeze locks the calibrated activation scales.
func (m *QBinaryPage) Freeze() {
	m.qcore.freeze()
}

// --- calibration and suite quantization ---

// runDeltaCalibration forwards up to calibLimit samples through the mirror
// in calibration mode, then freezes it.
func runDeltaCalibration(q DeltaScorerCtx, freeze func(), samples []*Sample) {
	ctx := tensor.NewCtx()
	for i, s := range samples {
		if i == calibLimit {
			break
		}
		q.DeltaScoresCtx(ctx, s)
		ctx.Reset()
	}
	freeze()
}

// runPageCalibration is runDeltaCalibration for page mirrors.
func runPageCalibration(q PageTopperCtx, freeze func(), samples []*Sample) {
	ctx := tensor.NewCtx()
	var dst [1]uint64
	for i, s := range samples {
		if i == calibLimit {
			break
		}
		q.TopPagesAppendCtx(ctx, s, 1, dst[:0])
		ctx.Reset()
	}
	freeze()
}

// phaseSamples selects the calibration samples a phase-specific sub-model
// will actually see at inference (s.Phase mod the model count maps to it),
// falling back to the full set when the phase never occurs.
func phaseSamples(samples []*Sample, phase, nphases int) []*Sample {
	var out []*Sample
	for _, s := range samples {
		if s.Phase%nphases == phase {
			out = append(out, s)
			if len(out) == calibLimit {
				break
			}
		}
	}
	if len(out) == 0 {
		return samples
	}
	return out
}

// QuantizeDelta returns an int8 mirror of a trained delta model, calibrated
// on the given samples. AMMADelta and PhaseSpecificDelta (of AMMADeltas)
// are supported; anything else is an explicit error so callers cannot
// silently keep running float.
func QuantizeDelta(m DeltaModel, calib []*Sample) (DeltaModel, error) {
	switch t := m.(type) {
	case *AMMADelta:
		q := NewQAMMADelta(t)
		runDeltaCalibration(q, q.Freeze, calib)
		return q, nil
	case *PhaseSpecificDelta:
		out := &PhaseSpecificDelta{Models: make([]DeltaModel, len(t.Models))}
		for p, sub := range t.Models {
			qsub, err := QuantizeDelta(sub, phaseSamples(calib, p, len(t.Models)))
			if err != nil {
				return nil, fmt.Errorf("phase %d: %w", p, err)
			}
			out.Models[p] = qsub
		}
		return out, nil
	default:
		return nil, fmt.Errorf("models: no int8 mirror for delta model %T", m)
	}
}

// QuantizePage returns an int8 mirror of a trained page model, calibrated
// on the given samples. AMMAPage, BinaryPage and PhaseSpecificPage are
// supported.
func QuantizePage(m PageModel, calib []*Sample) (PageModel, error) {
	switch t := m.(type) {
	case *AMMAPage:
		q := NewQAMMAPage(t)
		runPageCalibration(q, q.Freeze, calib)
		return q, nil
	case *BinaryPage:
		q := NewQBinaryPage(t)
		runPageCalibration(q, q.Freeze, calib)
		return q, nil
	case *PhaseSpecificPage:
		out := &PhaseSpecificPage{Models: make([]PageModel, len(t.Models))}
		for p, sub := range t.Models {
			qsub, err := QuantizePage(sub, phaseSamples(calib, p, len(t.Models)))
			if err != nil {
				return nil, fmt.Errorf("phase %d: %w", p, err)
			}
			out.Models[p] = qsub
		}
		return out, nil
	default:
		return nil, fmt.Errorf("models: no int8 mirror for page model %T", m)
	}
}

// QuantizeSuite quantizes a delta/page model pair with one calibration
// sample set — the wiring the experiments pipeline uses under Options.Int8.
func QuantizeSuite(delta DeltaModel, page PageModel, calib []*Sample) (DeltaModel, PageModel, error) {
	qd, err := QuantizeDelta(delta, calib)
	if err != nil {
		return nil, nil, err
	}
	qp, err := QuantizePage(page, calib)
	if err != nil {
		return nil, nil, err
	}
	return qd, qp, nil
}
