package models

import (
	"fmt"
	"math/rand"

	"mpgraph/internal/nn"
	"mpgraph/internal/tensor"
)

// TrainOptions tunes the offline training loop (Section 4.3.1: models train
// on the first-iteration trace, then deploy for inference).
type TrainOptions struct {
	// Epochs over the dataset (default 3).
	Epochs int
	// LR is the Adam learning rate (default 1e-3).
	LR float64
	// Seed drives shuffling.
	Seed int64
	// MaxSamplesPerEpoch caps each epoch (0 = all).
	MaxSamplesPerEpoch int
	// Hook, when set, runs at the start of every epoch and aborts training
	// when it errors. The experiment pipeline uses it as the train-epoch
	// fault-injection point.
	Hook func(epoch int) error
}

func (o TrainOptions) withDefaults() TrainOptions {
	if o.Epochs <= 0 {
		o.Epochs = 3
	}
	if o.LR == 0 {
		o.LR = 1e-3
	}
	return o
}

// TrainDelta fits a delta model. For PhaseSpecificDelta the per-sample
// dispatch means each phase model sees exactly its own phase's samples.
func TrainDelta(m DeltaModel, ds *Dataset, opt TrainOptions) error {
	return trainLoop(m, ds, opt, func(s *Sample) *tensor.Tensor { return m.DeltaLoss(s) })
}

// TrainPage fits a page model.
func TrainPage(m PageModel, ds *Dataset, opt TrainOptions) error {
	return trainLoop(m, ds, opt, func(s *Sample) *tensor.Tensor { return m.PageLoss(s) })
}

func trainLoop(m nn.Module, ds *Dataset, opt TrainOptions, lossFn func(*Sample) *tensor.Tensor) error {
	opt = opt.withDefaults()
	if len(ds.Samples) == 0 {
		return fmt.Errorf("models: empty dataset")
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	adam := nn.NewAdam(opt.LR)
	params := m.Params()
	order := make([]int, len(ds.Samples))
	for i := range order {
		order[i] = i
	}
	for ep := 0; ep < opt.Epochs; ep++ {
		if opt.Hook != nil {
			if err := opt.Hook(ep); err != nil {
				return fmt.Errorf("models: epoch %d aborted: %w", ep, err)
			}
		}
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		n := len(order)
		if opt.MaxSamplesPerEpoch > 0 && opt.MaxSamplesPerEpoch < n {
			n = opt.MaxSamplesPerEpoch
		}
		for _, idx := range order[:n] {
			loss := lossFn(ds.Samples[idx])
			if err := loss.Backward(); err != nil {
				return err
			}
			adam.Step(params)
			nn.ZeroGrads(m)
		}
	}
	return nil
}

// EvalDeltaF1 computes the micro-averaged F1 of 0.5-thresholded sigmoid
// outputs against the delta bitmaps — the Table 6 metric.
func EvalDeltaF1(m DeltaModel, samples []*Sample, maxSamples int) float64 {
	restore := tensor.SetGradEnabled(false)
	defer tensor.SetGradEnabled(restore)
	var tp, fp, fn float64
	n := len(samples)
	if maxSamples > 0 && maxSamples < n {
		n = maxSamples
	}
	for _, s := range samples[:n] {
		scores := m.DeltaScores(s)
		for cls, p := range scores {
			pred := p >= 0.5
			truth := s.DeltaBits[cls] >= 0.5
			switch {
			case pred && truth:
				tp++
			case pred && !truth:
				fp++
			case !pred && truth:
				fn++
			}
		}
	}
	if 2*tp+fp+fn == 0 {
		return 0
	}
	return 2 * tp / (2*tp + fp + fn)
}

// EvalPageAccAtK computes accuracy@k (Hashemi et al.): the top-1 predicted
// page is correct when it occurs within the next k accesses — the Table 7
// metric with k=10.
func EvalPageAccAtK(m PageModel, samples []*Sample, k, maxSamples int) float64 {
	restore := tensor.SetGradEnabled(false)
	defer tensor.SetGradEnabled(restore)
	n := len(samples)
	if maxSamples > 0 && maxSamples < n {
		n = maxSamples
	}
	if n == 0 {
		return 0
	}
	hits := 0
	for _, s := range samples[:n] {
		top := m.TopPages(s, 1)
		if len(top) == 0 {
			continue
		}
		limit := k
		if limit > len(s.FuturePages) {
			limit = len(s.FuturePages)
		}
		for _, fut := range s.FuturePages[:limit] {
			if fut == top[0] {
				hits++
				break
			}
		}
	}
	return float64(hits) / float64(n)
}
