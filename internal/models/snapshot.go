package models

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"mpgraph/internal/nn"
)

const snapMagic = 0x4d505346 // "MPSF"

// PrefetcherModels is the deployable artifact of offline training (Fig. 6's
// "deploy" arrow): the configuration, the tokenizers, and the per-phase
// spatial and temporal predictors that the MPGraph controller switches
// between.
type PrefetcherModels struct {
	Cfg    Config
	Pages  *Vocab
	PCs    *Vocab
	Deltas []*AMMADelta
	PageMs []*AMMAPage
}

// NumPhases reports the phase count the models were trained for.
func (pm *PrefetcherModels) NumPhases() int { return len(pm.Deltas) }

// TrainPrefetcherModels trains phase-specific AMMA predictors on ds.
func TrainPrefetcherModels(ds *Dataset, phases int, opt TrainOptions) (*PrefetcherModels, error) {
	if phases < 1 {
		return nil, fmt.Errorf("models: need at least one phase")
	}
	pm := &PrefetcherModels{Cfg: ds.Cfg, Pages: ds.Pages, PCs: ds.PCs}
	for p := 0; p < phases; p++ {
		sub := ds.FilterPhase(p)
		if len(sub.Samples) == 0 {
			sub = ds
		}
		delta := NewAMMADelta(ds.Cfg, ds.PCs, 0, ds.Cfg.Seed+int64(p)*97)
		if err := TrainDelta(delta, sub, opt); err != nil {
			return nil, err
		}
		page := NewAMMAPage(ds.Cfg, ds.Pages, ds.PCs, 0, ds.Cfg.Seed+int64(p)*89)
		if err := TrainPage(page, sub, opt); err != nil {
			return nil, err
		}
		pm.Deltas = append(pm.Deltas, delta)
		pm.PageMs = append(pm.PageMs, page)
	}
	return pm, nil
}

// DeltaModels returns the per-phase spatial predictors as interfaces.
func (pm *PrefetcherModels) DeltaModels() []DeltaModel {
	out := make([]DeltaModel, len(pm.Deltas))
	for i, m := range pm.Deltas {
		out[i] = m
	}
	return out
}

// PageModels returns the per-phase temporal predictors as interfaces.
func (pm *PrefetcherModels) PageModels() []PageModel {
	out := make([]PageModel, len(pm.PageMs))
	for i, m := range pm.PageMs {
		out[i] = m
	}
	return out
}

// Save serialises the artifact.
func (pm *PrefetcherModels) Save(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	cfg := pm.Cfg
	hdr := []uint64{
		snapMagic, uint64(len(pm.Deltas)),
		uint64(cfg.HistoryT), uint64(cfg.LookForwardF), uint64(cfg.AttnDim),
		uint64(cfg.FusionDim), uint64(cfg.TransLayers), uint64(cfg.Heads),
		uint64(cfg.NumSegments), uint64(cfg.SegmentBits), uint64(cfg.DeltaRange),
		uint64(cfg.PageVocab), uint64(cfg.PCVocab), uint64(cfg.LSTMHidden),
		uint64(cfg.Seed),
	}
	for _, h := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, h); err != nil {
			return err
		}
	}
	for _, v := range []*Vocab{pm.Pages, pm.PCs} {
		if err := saveVocab(bw, v); err != nil {
			return err
		}
	}
	for i := range pm.Deltas {
		if err := nn.Save(bw, pm.Deltas[i]); err != nil {
			return err
		}
		if err := nn.Save(bw, pm.PageMs[i]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// LoadPrefetcherModels reconstructs a saved artifact.
func LoadPrefetcherModels(r io.Reader) (*PrefetcherModels, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	hdr := make([]uint64, 15)
	for i := range hdr {
		if err := binary.Read(br, binary.LittleEndian, &hdr[i]); err != nil {
			return nil, err
		}
	}
	if hdr[0] != snapMagic && hdr[0] != snapMagicF16 {
		return nil, fmt.Errorf("models: bad snapshot magic %#x", hdr[0])
	}
	// Dispatch parameter decoding on the magic: float64 blocks for Save,
	// binary16 blocks (widened exactly on read) for SaveF16.
	loadParams := nn.Load
	if hdr[0] == snapMagicF16 {
		loadParams = nn.LoadF16
	}
	phases := int(hdr[1])
	if phases < 1 || phases > 64 {
		return nil, fmt.Errorf("models: implausible phase count %d", phases)
	}
	cfg := Config{
		HistoryT: int(hdr[2]), LookForwardF: int(hdr[3]), AttnDim: int(hdr[4]),
		FusionDim: int(hdr[5]), TransLayers: int(hdr[6]), Heads: int(hdr[7]),
		NumSegments: int(hdr[8]), SegmentBits: int(hdr[9]), DeltaRange: int(hdr[10]),
		PageVocab: int(hdr[11]), PCVocab: int(hdr[12]), LSTMHidden: int(hdr[13]),
		Seed: int64(hdr[14]),
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	pm := &PrefetcherModels{Cfg: cfg}
	var err error
	if pm.Pages, err = loadVocab(br); err != nil {
		return nil, err
	}
	if pm.PCs, err = loadVocab(br); err != nil {
		return nil, err
	}
	for p := 0; p < phases; p++ {
		delta := NewAMMADelta(cfg, pm.PCs, 0, cfg.Seed)
		if err := loadParams(br, delta); err != nil {
			return nil, fmt.Errorf("models: phase %d delta: %w", p, err)
		}
		page := NewAMMAPage(cfg, pm.Pages, pm.PCs, 0, cfg.Seed)
		if err := loadParams(br, page); err != nil {
			return nil, fmt.Errorf("models: phase %d page: %w", p, err)
		}
		pm.Deltas = append(pm.Deltas, delta)
		pm.PageMs = append(pm.PageMs, page)
	}
	return pm, nil
}

func saveVocab(w io.Writer, v *Vocab) error {
	if err := binary.Write(w, binary.LittleEndian, uint64(v.cap)); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, uint64(len(v.values))); err != nil {
		return err
	}
	return binary.Write(w, binary.LittleEndian, v.values)
}

func loadVocab(r io.Reader) (*Vocab, error) {
	var capacity, n uint64
	if err := binary.Read(r, binary.LittleEndian, &capacity); err != nil {
		return nil, err
	}
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	if n == 0 || n > capacity || capacity > 1<<24 {
		return nil, fmt.Errorf("models: implausible vocab header cap=%d n=%d", capacity, n)
	}
	v := &Vocab{cap: int(capacity), tokens: make(map[uint64]int), values: make([]uint64, n)}
	if err := binary.Read(r, binary.LittleEndian, v.values); err != nil {
		return nil, err
	}
	for tok := 1; tok < len(v.values); tok++ {
		v.tokens[v.values[tok]] = tok
	}
	return v, nil
}
