package models

// History is the online inference window a prefetcher maintains: the last T
// (block, PC) pairs in program order. It produces label-free Samples for
// model inference.
type History struct {
	T      int
	blocks []uint64
	pcs    []uint64
	count  int
}

// NewHistory builds a window of length T.
func NewHistory(T int) *History {
	return &History{T: T, blocks: make([]uint64, T), pcs: make([]uint64, T)}
}

// Push appends the newest access, evicting the oldest.
func (h *History) Push(block, pc uint64) {
	copy(h.blocks, h.blocks[1:])
	copy(h.pcs, h.pcs[1:])
	h.blocks[h.T-1] = block
	h.pcs[h.T-1] = pc
	if h.count < h.T {
		h.count++
	}
}

// Warm reports whether the window is fully populated.
func (h *History) Warm() bool { return h.count >= h.T }

// CurrentBlock returns the newest block in the window.
func (h *History) CurrentBlock() uint64 { return h.blocks[h.T-1] }

// Sample snapshots the window as an inference sample with the given phase
// label (labels are absent: inference only).
func (h *History) Sample(phase int) *Sample {
	blocks := make([]uint64, h.T)
	pcs := make([]uint64, h.T)
	copy(blocks, h.blocks)
	copy(pcs, h.pcs)
	return &Sample{Blocks: blocks, PCs: pcs, Phase: phase}
}

// SampleWithTail snapshots the window shifted by one with (block, pc)
// appended — the pseudo-window CSTP uses to continue a chain from a
// predicted page's PBOT entry.
func (h *History) SampleWithTail(phase int, block, pc uint64) *Sample {
	blocks := make([]uint64, h.T)
	pcs := make([]uint64, h.T)
	copy(blocks, h.blocks[1:])
	copy(pcs, h.pcs[1:])
	blocks[h.T-1] = block
	pcs[h.T-1] = pc
	return &Sample{Blocks: blocks, PCs: pcs, Phase: phase}
}

// SampleInto is Sample writing into a caller-owned scratch sample, reusing
// its slices (zero allocations once the scratch has warmed up). Label
// fields are cleared: the result is inference-only, like Sample's.
func (h *History) SampleInto(s *Sample, phase int) *Sample {
	s.Blocks = append(s.Blocks[:0], h.blocks...)
	s.PCs = append(s.PCs[:0], h.pcs...)
	s.Phase = phase
	s.DeltaBits, s.FuturePages, s.PageTok = nil, nil, 0
	return s
}

// SampleWithTailInto is SampleWithTail writing into a caller-owned scratch
// sample. Callers chaining CSTP predictions need a scratch distinct from
// any live SampleInto result.
func (h *History) SampleWithTailInto(s *Sample, phase int, block, pc uint64) *Sample {
	s.Blocks = append(s.Blocks[:0], h.blocks[1:]...)
	s.PCs = append(s.PCs[:0], h.pcs[1:]...)
	s.Blocks = append(s.Blocks, block)
	s.PCs = append(s.PCs, pc)
	s.Phase = phase
	s.DeltaBits, s.FuturePages, s.PageTok = nil, nil, 0
	return s
}

// Reset clears the window.
func (h *History) Reset() {
	h.count = 0
	for i := range h.blocks {
		h.blocks[i], h.pcs[i] = 0, 0
	}
}
