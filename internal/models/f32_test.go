package models

import (
	"bytes"
	"math"
	"testing"

	"mpgraph/internal/tensor"
)

// f32UlpDist returns the distance in float32 ulps between two float64 scores
// after rounding both to float32 — the natural yardstick for a compute tier
// whose activations carry 24 significand bits.
func f32UlpDist(a, b float64) int64 {
	return int64Abs(orderedF32(float32(a)) - orderedF32(float32(b)))
}

// orderedF32 maps float32 bit patterns onto a monotonic integer line so that
// adjacent floats differ by exactly 1.
func orderedF32(f float32) int64 {
	u := math.Float32bits(f)
	if u&0x80000000 != 0 {
		return -int64(u &^ 0x80000000)
	}
	return int64(u)
}

func int64Abs(x int64) int64 {
	if x < 0 {
		return -x
	}
	return x
}

// maxScoreUlpsF32 is the pinned accuracy bound on raw f32-path scores vs the
// float64 reference, in float32 ulps (ISSUE: explicit max-ulp bound). The
// f32 tier accumulates rounding through ~10 GEMMs plus polynomial
// activations; measured maxima sit well under this across the parity
// datasets.
const maxScoreUlpsF32 = 1 << 12 // 4096 ulps ≈ 4.9e-4 relative

func TestF32DeltaParity(t *testing.T) {
	ds, delta, _, _ := quantParityData(t)
	fm, err := ConvertDeltaF32(delta)
	if err != nil {
		t.Fatal(err)
	}
	fc := fm.(DeltaScorerCtx)
	ctx := tensor.NewCtx()
	const topD = 8
	var overlapSum float64
	var maxUlp int64
	for _, s := range ds.Samples {
		want := delta.DeltaScores(s)
		got := fc.DeltaScoresCtx(ctx, s)
		overlapSum += overlapAtK(got, want, topD)
		for i := range want {
			if d := f32UlpDist(got[i], want[i]); d > maxUlp {
				maxUlp = d
			}
		}
		ctx.Reset()
	}
	if avg := overlapSum / float64(len(ds.Samples)); avg < 0.95 {
		t.Fatalf("f32 delta top-%d overlap %.4f < 0.95 over %d samples", topD, avg, len(ds.Samples))
	}
	if maxUlp > maxScoreUlpsF32 {
		t.Fatalf("f32 delta scores drift up to %d f32-ulps from float64, bound is %d", maxUlp, maxScoreUlpsF32)
	}
}

func TestF32PageParity(t *testing.T) {
	ds, _, page, _ := quantParityData(t)
	fm, err := ConvertPageF32(page)
	if err != nil {
		t.Fatal(err)
	}
	fc := fm.(PageTopperCtx)
	ctx := tensor.NewCtx()
	agree, total := 0, 0
	var dst []uint64
	for _, s := range ds.Samples {
		want := page.TopPages(s, 1)
		dst = fc.TopPagesAppendCtx(ctx, s, 1, dst[:0])
		ctx.Reset()
		if len(want) == 0 && len(dst) == 0 {
			continue
		}
		total++
		if len(want) > 0 && len(dst) > 0 && want[0] == dst[0] {
			agree++
		}
	}
	if total == 0 {
		t.Fatal("no samples produced a page prediction")
	}
	if frac := float64(agree) / float64(total); frac < 0.99 {
		t.Fatalf("f32 top-1 page agreement %.4f < 0.99 (%d/%d)", frac, agree, total)
	}
}

func TestF32BinaryPageParity(t *testing.T) {
	ds, _, _, bin := quantParityData(t)
	fm, err := ConvertPageF32(bin)
	if err != nil {
		t.Fatal(err)
	}
	fc := fm.(PageTopperCtx)
	ctx := tensor.NewCtx()
	agree, total := 0, 0
	var dst []uint64
	for _, s := range ds.Samples {
		want := bin.TopPages(s, 1)
		dst = fc.TopPagesAppendCtx(ctx, s, 1, dst[:0])
		ctx.Reset()
		if len(want) == 0 && len(dst) == 0 {
			continue
		}
		total++
		if len(want) > 0 && len(dst) > 0 && want[0] == dst[0] {
			agree++
		}
	}
	if total == 0 {
		t.Fatal("no samples produced a page prediction")
	}
	// Same rationale as the int8 bound: the binary head thresholds each bit
	// at 0.5, so backbone rounding noise on a near-threshold bit flips the
	// whole id rather than nudging a ranking.
	if frac := float64(agree) / float64(total); frac < 0.95 {
		t.Fatalf("f32 binary top-1 page agreement %.4f < 0.95 (%d/%d)", frac, agree, total)
	}
}

func TestConvertF32PhaseSpecific(t *testing.T) {
	ds := synthDataset(t, 1200, 41)
	ps := NewPhaseSpecificDelta(ds.Cfg, ds.PCs, ds.NumPhases(), 13)
	fm, err := ConvertDeltaF32(ps)
	if err != nil {
		t.Fatal(err)
	}
	fps, ok := fm.(*PhaseSpecificDelta)
	if !ok {
		t.Fatalf("converted phase-specific is %T", fm)
	}
	for p, sub := range fps.Models {
		if _, ok := sub.(*F32AMMADelta); !ok {
			t.Fatalf("phase %d sub-model is %T, want *F32AMMADelta", p, sub)
		}
	}
	ctx := tensor.NewCtx()
	restore := tensor.SetGradEnabled(false)
	defer tensor.SetGradEnabled(restore)
	got := fps.DeltaScoresCtx(ctx, ds.Samples[0])
	if len(got) != ds.Cfg.DeltaClasses() {
		t.Fatalf("scores width %d", len(got))
	}
}

func TestConvertF32UnsupportedModelErrors(t *testing.T) {
	ds := synthDataset(t, 800, 43)
	if _, err := ConvertDeltaF32(NewAttnDelta(ds.Cfg, 3)); err == nil {
		t.Fatal("expected explicit error for unsupported delta model")
	}
	if _, err := ConvertPageF32(NewLSTMPage(ds.Cfg, ds.Pages, ds.PCs, 3)); err == nil {
		t.Fatal("expected explicit error for unsupported page model")
	}
}

func TestF32NilCtxFallsBackToFloat(t *testing.T) {
	ds, delta, _, _ := quantParityData(t)
	fm, err := ConvertDeltaF32(delta)
	if err != nil {
		t.Fatal(err)
	}
	f := fm.(*F32AMMADelta)
	s := ds.Samples[0]
	want := delta.DeltaScores(s)
	got := f.DeltaScoresCtx(nil, s)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("nil-ctx f32 path diverges from float at %d", i)
		}
	}
}

func TestConvertSuiteF32Pair(t *testing.T) {
	ds, delta, page, _ := quantParityData(t)
	_ = ds
	fd, fp, err := ConvertSuiteF32(delta, page)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := fd.(*F32AMMADelta); !ok {
		t.Fatalf("suite delta is %T", fd)
	}
	if _, ok := fp.(*F32AMMAPage); !ok {
		t.Fatalf("suite page is %T", fp)
	}
}

// TestF32BatchMatchesSequential: the f32 batch path must be bit-identical to
// sequential f32 inference at every batch size — all f32 ops route through
// the batched panel kernels, so this is the same byte-identity contract the
// int8 tier pins.
func TestF32BatchMatchesSequential(t *testing.T) {
	cfg := SmallConfig()
	pages, pcs := batchTestVocabs(cfg)
	restore := tensor.SetGradEnabled(false)
	defer tensor.SetGradEnabled(restore)

	deltaModels := map[string]DeltaModel{
		"f32-lstm-delta": NewF32LSTMDelta(NewLSTMDelta(cfg, 1)),
		"f32-amma-delta": NewF32AMMADelta(NewAMMADelta(cfg, pcs, 0, 3)),
		"f32-pi-delta":   NewF32AMMADelta(NewAMMADelta(cfg, pcs, 3, 4)),
	}
	pageModels := map[string]PageModel{
		"f32-amma-page": NewF32AMMAPage(NewAMMAPage(cfg, pages, pcs, 0, 8)),
		"f32-pi-page":   NewF32AMMAPage(NewAMMAPage(cfg, pages, pcs, 3, 9)),
	}

	seqCtx := tensor.NewCtx()
	for _, B := range []int{1, 8, 64} {
		ss := batchSamples(cfg, B)
		for name, m := range deltaModels {
			ctx := tensor.NewCtx()
			out := DeltaScoresBatchWith(ctx, m, ss)
			if out.Rows != B {
				t.Fatalf("%s B=%d: got %d rows", name, B, out.Rows)
			}
			for i, s := range ss {
				seq := DeltaScoresWith(seqCtx, m, s)
				row := out.Data[i*out.Cols : (i+1)*out.Cols]
				if len(seq) != len(row) {
					t.Fatalf("%s B=%d: row %d width %d vs %d", name, B, i, len(row), len(seq))
				}
				for j := range seq {
					if math.Float64bits(seq[j]) != math.Float64bits(row[j]) {
						t.Fatalf("%s B=%d row %d: score[%d] = %x batched vs %x sequential",
							name, B, i, j, math.Float64bits(row[j]), math.Float64bits(seq[j]))
					}
				}
				seqCtx.Reset()
			}
		}
		for name, m := range pageModels {
			ctx := tensor.NewCtx()
			dst := make([][]uint64, B)
			TopPagesBatchWith(ctx, m, ss, 3, dst)
			for i, s := range ss {
				seq := TopPagesWith(seqCtx, m, s, 3, nil)
				seqCtx.Reset()
				if len(seq) != len(dst[i]) {
					t.Fatalf("%s B=%d row %d: %d pages vs %d", name, B, i, len(dst[i]), len(seq))
				}
				for j := range seq {
					if seq[j] != dst[i][j] {
						t.Fatalf("%s B=%d row %d: page[%d] = %d batched vs %d sequential",
							name, B, i, j, dst[i][j], seq[j])
					}
				}
			}
		}
	}
}

// TestF32ZeroAlloc: the sequential and batched f32 fast paths stay
// 0 allocs/op once the arena is warm.
func TestF32ZeroAlloc(t *testing.T) {
	cfg := SmallConfig()
	pages, pcs := batchTestVocabs(cfg)
	restore := tensor.SetGradEnabled(false)
	defer tensor.SetGradEnabled(restore)
	_ = pages

	models := map[string]DeltaModel{
		"f32-lstm-delta": NewF32LSTMDelta(NewLSTMDelta(cfg, 1)),
		"f32-amma-delta": NewF32AMMADelta(NewAMMADelta(cfg, pcs, 3, 3)),
	}
	for name, m := range models {
		ss := batchSamples(cfg, 8)
		ctx := tensor.NewCtx()
		for i := 0; i < 3; i++ {
			DeltaScoresBatchWith(ctx, m, ss)
			ctx.Reset()
			DeltaScoresWith(ctx, m, ss[0])
			ctx.Reset()
		}
		if avg := testing.AllocsPerRun(20, func() {
			DeltaScoresWith(ctx, m, ss[0])
			ctx.Reset()
		}); avg != 0 {
			t.Fatalf("%s sequential: %v allocs/op, want 0", name, avg)
		}
		if avg := testing.AllocsPerRun(20, func() {
			DeltaScoresBatchWith(ctx, m, ss)
			ctx.Reset()
		}); avg != 0 {
			t.Fatalf("%s batch: %v allocs/op, want 0", name, avg)
		}
	}
}

// TestScreenScoresCatchesPoisonedF16Weight (ISSUE satellite): a weight that
// overflows binary16 becomes Inf on the f16→f32 widen; the f32 delta path
// must surface it to ScreenScores — and hence latch Health() through
// AppendDeltaTargets — rather than letting the sigmoid saturate the Inf into
// a healthy-looking probability.
func TestScreenScoresCatchesPoisonedF16Weight(t *testing.T) {
	cfg := SmallConfig()
	pages, pcs := batchTestVocabs(cfg)
	restore := tensor.SetGradEnabled(false)
	defer tensor.SetGradEnabled(restore)

	pm := &PrefetcherModels{Cfg: cfg, Pages: pages, PCs: pcs}
	delta := NewAMMADelta(cfg, pcs, 0, 11)
	page := NewAMMAPage(cfg, pages, pcs, 0, 17)
	pm.Deltas = append(pm.Deltas, delta)
	pm.PageMs = append(pm.PageMs, page)

	// 1e6 is finite in f32 and f64 but overflows binary16's 65504 max, so
	// the f16 snapshot round-trip turns it into +Inf.
	out := delta.head.Layers[len(delta.head.Layers)-1]
	out.B.Data[0] = 1e6

	var buf bytes.Buffer
	if err := pm.SaveF16(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadPrefetcherModels(&buf)
	if err != nil {
		t.Fatal(err)
	}
	lb := loaded.Deltas[0].head.Layers[len(loaded.Deltas[0].head.Layers)-1].B.Data[0]
	if !math.IsInf(lb, 1) {
		t.Fatalf("poisoned bias survived the f16 round trip as %v, want +Inf", lb)
	}

	fm, err := ConvertDeltaF32(loaded.Deltas[0])
	if err != nil {
		t.Fatal(err)
	}
	ctx := tensor.NewCtx()
	s := batchSamples(cfg, 1)[0]
	scores := DeltaScoresWith(ctx, fm, s)
	if err := ScreenScores(scores); err == nil {
		t.Fatal("ScreenScores passed scores from an Inf-poisoned f16 weight")
	}
	if _, err := AppendDeltaTargets(ctx, scores, s.Blocks[len(s.Blocks)-1], 4, nil); err == nil {
		t.Fatal("AppendDeltaTargets issued prefetches from an Inf-poisoned model")
	}
	ctx.Reset()

	// The batched path must screen identically.
	ss := batchSamples(cfg, 8)
	out2 := DeltaScoresBatchWith(ctx, fm, ss)
	if err := ScreenScores(out2.Data[:out2.Cols]); err == nil {
		t.Fatal("batched f32 path masked the poisoned weight")
	}
}

// --- benchmark pairs: float64 vs f32 compute, f64 vs f16 storage ---

func benchF32DeltaModel() DeltaModel {
	return NewF32LSTMDelta(NewLSTMDelta(SmallConfig(), 1))
}

// BenchmarkOperate is the sequential float64 fast-path baseline the F32
// variant pairs with (one Operate == one single-sample inference).
func BenchmarkOperate(b *testing.B)    { benchBatchDelta(b, benchDeltaModel(), 1, true) }
func BenchmarkOperateF32(b *testing.B) { benchBatchDelta(b, benchF32DeltaModel(), 1, true) }

// The batched f32 pairs ride the same harness as the float64/int8 batch
// benchmarks: BenchmarkOperateF32Batch64 pairs with BenchmarkOperateBatch64
// in mpgraph-bench's speedups section.
func BenchmarkOperateF32Batch8(b *testing.B)  { benchBatchDelta(b, benchF32DeltaModel(), 8, false) }
func BenchmarkOperateF32Batch64(b *testing.B) { benchBatchDelta(b, benchF32DeltaModel(), 64, false) }

// benchSuiteSave measures suite serialisation; the reported suite_bytes
// metric is what documents the ~2x on-disk saving of the f16 artifact.
func benchSuiteSave(b *testing.B, f16 bool) {
	cfg := SmallConfig()
	pages, pcs := batchTestVocabs(cfg)
	pm := &PrefetcherModels{Cfg: cfg, Pages: pages, PCs: pcs}
	for p := 0; p < 2; p++ {
		pm.Deltas = append(pm.Deltas, NewAMMADelta(cfg, pcs, 0, int64(11+p)))
		pm.PageMs = append(pm.PageMs, NewAMMAPage(cfg, pages, pcs, 0, int64(17+p)))
	}
	var buf bytes.Buffer
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		var err error
		if f16 {
			err = pm.SaveF16(&buf)
		} else {
			err = pm.Save(&buf)
		}
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(buf.Len()), "suite_bytes")
}

func BenchmarkSuiteSave(b *testing.B)    { benchSuiteSave(b, false) }
func BenchmarkSuiteSaveF16(b *testing.B) { benchSuiteSave(b, true) }

// TestSnapshotF16Size: the f16 suite artifact must come in at no more than
// 55% of the float64 artifact (ISSUE: ~2x smaller suite weights).
func TestSnapshotF16Size(t *testing.T) {
	cfg := SmallConfig()
	pages, pcs := batchTestVocabs(cfg)
	pm := &PrefetcherModels{Cfg: cfg, Pages: pages, PCs: pcs}
	for p := 0; p < 2; p++ {
		pm.Deltas = append(pm.Deltas, NewAMMADelta(cfg, pcs, 0, int64(11+p)))
		pm.PageMs = append(pm.PageMs, NewAMMAPage(cfg, pages, pcs, 0, int64(17+p)))
	}
	var f64buf, f16buf bytes.Buffer
	if err := pm.Save(&f64buf); err != nil {
		t.Fatal(err)
	}
	if err := pm.SaveF16(&f16buf); err != nil {
		t.Fatal(err)
	}
	if ratio := float64(f16buf.Len()) / float64(f64buf.Len()); ratio > 0.55 {
		t.Fatalf("f16 snapshot is %.1f%% of f64 (%d / %d bytes), want <= 55%%",
			100*ratio, f16buf.Len(), f64buf.Len())
	}
}

// TestSnapshotF16RoundTrip: LoadPrefetcherModels dispatches on the magic and
// reconstructs every parameter as the exact widening of its binary16
// encoding.
func TestSnapshotF16RoundTrip(t *testing.T) {
	cfg := SmallConfig()
	pages, pcs := batchTestVocabs(cfg)
	pm := &PrefetcherModels{Cfg: cfg, Pages: pages, PCs: pcs}
	pm.Deltas = append(pm.Deltas, NewAMMADelta(cfg, pcs, 0, 11))
	pm.PageMs = append(pm.PageMs, NewAMMAPage(cfg, pages, pcs, 0, 17))

	var buf bytes.Buffer
	if err := pm.SaveF16(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadPrefetcherModels(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Cfg != cfg {
		t.Fatalf("config round trip: got %+v", loaded.Cfg)
	}
	want := pm.Deltas[0].Params()
	got := loaded.Deltas[0].Params()
	if len(want) != len(got) {
		t.Fatalf("param count %d vs %d", len(got), len(want))
	}
	for i := range want {
		for j := range want[i].Data {
			exp := tensor.F16Float64(tensor.F16Bits(want[i].Data[j]))
			if got[i].Data[j] != exp {
				t.Fatalf("param %d[%d]: loaded %g, want f16 round-trip %g", i, j, got[i].Data[j], exp)
			}
		}
	}
}
