package models

import (
	"mpgraph/internal/invariant"
	"mpgraph/internal/tensor"
	"mpgraph/internal/trace"
)

// Batched inference tier (DESIGN.md §11). A batch stacks B same-length
// history samples session-major into one [B*T x d] activation block and runs
// a single fused pass, so every weight panel streams through cache once for
// B predictions instead of B times. The gather helpers below build the
// stacked inputs; the per-model forwards mirror their sequential ctx
// counterparts layer for layer, swapping in the batch-aware ops (blocked
// attention, per-block mean/positional ops, batched GEMM) where the session
// boundary matters.
//
// Determinism: every batched op computes a session block as a pure function
// of that session's rows, so scores never depend on batch composition —
// batch-1 and batch-64 produce identical bits, which keeps sweep reports
// byte-identical at any batch size. Float batch scores sit within 1e-9 of
// sequential (FMA contraction + vectorized activations); the int8 batch path
// uses only the exact kernels and is bit-identical to sequential int8.

// DeltaScorerBatchCtx is a DeltaModel with a batched fast path: row i of the
// returned tensor holds the scores for ss[i]. Arena-backed, valid until the
// ctx is reset.
type DeltaScorerBatchCtx interface {
	DeltaScoresBatchCtx(c *tensor.Ctx, ss []*Sample) *tensor.Tensor
}

// PageTopperBatchCtx is a PageModel with a batched fast path: up to k pages
// for ss[i] are appended to dst[i] in place.
type PageTopperBatchCtx interface {
	TopPagesBatchAppendCtx(c *tensor.Ctx, ss []*Sample, k int, dst [][]uint64)
}

// DeltaScoresBatchWith scores every sample in one fused pass when m supports
// it (and c is non-nil), falling back to stacking sequential scores. The
// batch path is taken for ANY batch size including 1 — the cross-batch-size
// byte-identity contract requires every batched session to run the same
// kernels regardless of how many sessions flushed together.
func DeltaScoresBatchWith(c *tensor.Ctx, m DeltaModel, ss []*Sample) *tensor.Tensor {
	if bc, ok := m.(DeltaScorerBatchCtx); ok && c != nil {
		return bc.DeltaScoresBatchCtx(c, ss)
	}
	var out *tensor.Tensor
	for i, s := range ss {
		scores := DeltaScoresWith(c, m, s)
		if out == nil {
			if c != nil {
				out = c.Zeros(len(ss), len(scores))
			} else {
				out = tensor.Zeros(len(ss), len(scores))
			}
		}
		copy(out.Data[i*len(scores):(i+1)*len(scores)], scores)
	}
	return out
}

// TopPagesBatchWith ranks pages for every sample in one fused pass when m
// supports it, falling back to sequential calls. dst[i] receives ss[i]'s
// pages appended in place.
func TopPagesBatchWith(c *tensor.Ctx, m PageModel, ss []*Sample, k int, dst [][]uint64) {
	if bc, ok := m.(PageTopperBatchCtx); ok && c != nil {
		bc.TopPagesBatchAppendCtx(c, ss, k, dst)
		return
	}
	for i, s := range ss {
		dst[i] = TopPagesWith(c, m, s, k, dst[i])
	}
}

// AppendDeltaTargets screens a delta score vector, ranks the top-k classes,
// and decodes each class back to a block target around base, appending the
// non-negative targets to dst. This is the shared score→prefetch decode the
// CSTP paths (core and prefetch) and the batch scheduler all use; class
// cfgRange-1 maps to delta -1, cfgRange to +1 (no zero delta).
//
//mpgraph:noalloc
func AppendDeltaTargets(c *tensor.Ctx, scores []float64, base uint64, k int, dst []uint64) ([]uint64, error) {
	if err := ScreenScores(scores); err != nil { //mpgraph:allow noalloc -- allocates only on the non-finite failure path, which degrades the prefetcher
		return dst, err
	}
	cfgRange := len(scores) / 2
	for _, cls := range TopKClassesCtx(c, scores, k) {
		var d int64
		if cls < cfgRange {
			d = int64(cls) - int64(cfgRange)
		} else {
			d = int64(cls) - int64(cfgRange) + 1
		}
		if t := int64(base) + d; t >= 0 {
			dst = append(dst, uint64(t))
		}
	}
	return dst, nil
}

// --- stacked gather helpers ---

// batchT validates the uniform window length the stacked layout requires and
// returns it.
//
//mpgraph:noalloc
func batchT(ss []*Sample) int {
	if len(ss) == 0 {
		invariant.Fail("models: empty batch")
	}
	t := len(ss[0].Blocks)
	for _, s := range ss {
		if len(s.Blocks) != t || len(s.PCs) != t {
			invariant.Failf("models: ragged batch: %d/%d rows vs %d", len(s.Blocks), len(s.PCs), t)
		}
	}
	return t
}

//mpgraph:noalloc
func pcTokensBatchCtx(c *tensor.Ctx, v *Vocab, ss []*Sample, t int) []int {
	out := c.Ints(len(ss) * t)
	for i, s := range ss {
		for j, pc := range s.PCs {
			out[i*t+j] = v.Token(pc)
		}
	}
	return out
}

//mpgraph:noalloc
func pageTokensBatchCtx(c *tensor.Ctx, v *Vocab, ss []*Sample, t int) []int {
	out := c.Ints(len(ss) * t)
	for i, s := range ss {
		for j, b := range s.Blocks {
			out[i*t+j] = v.Token(trace.PageOfBlock(b))
		}
	}
	return out
}

// addrFeatureTensorBatchCtx stacks addrFeatureTensorCtx for every sample.
//
//mpgraph:noalloc
func addrFeatureTensorBatchCtx(c *tensor.Ctx, cfg Config, ss []*Sample, t int) *tensor.Tensor {
	out := c.Zeros(len(ss)*t, cfg.NumSegments)
	for i, s := range ss {
		for j, b := range s.Blocks {
			r := i*t + j
			SegmentBlockInto(cfg, b, out.Data[r*cfg.NumSegments:(r+1)*cfg.NumSegments])
		}
	}
	return out
}

// concatStepFeaturesBatchCtx stacks concatStepFeaturesCtx for every sample.
//
//mpgraph:noalloc
func concatStepFeaturesBatchCtx(c *tensor.Ctx, cfg Config, ss []*Sample, t int) *tensor.Tensor {
	cols := cfg.NumSegments + 1
	out := c.Zeros(len(ss)*t, cols)
	for i, s := range ss {
		for j := range s.Blocks {
			r := i*t + j
			SegmentBlockInto(cfg, s.Blocks[j], out.Data[r*cols:r*cols+cfg.NumSegments])
			out.Data[r*cols+cfg.NumSegments] = hashPC(s.PCs[j])
		}
	}
	return out
}

// phaseIDsBatch gathers each session's phase-embedding row id.
//
//mpgraph:noalloc
func phaseIDsBatch(c *tensor.Ctx, ss []*Sample, vocab int) []int {
	ids := c.Ints(len(ss))
	for i, s := range ss {
		ids[i] = s.Phase % vocab
	}
	return ids
}

// --- batched modality encoders / AMMA core (float) ---

//mpgraph:noalloc
func (m *modalityEncoder) encodeFeaturesBatchCtx(c *tensor.Ctx, x *tensor.Tensor, blocks int) *tensor.Tensor {
	return m.attn.ForwardBatchCtx(c, c.AddPosBatch(m.lin.ForwardBatchCtx(c, x), m.pos, blocks), blocks)
}

//mpgraph:noalloc
func (m *modalityEncoder) encodeTokensBatchCtx(c *tensor.Ctx, ids []int, blocks int) *tensor.Tensor {
	return m.attn.ForwardBatchCtx(c, c.AddPosBatch(m.table.ForwardCtx(c, ids), m.pos, blocks), blocks)
}

// forwardBatchCtx is ammaCore.forwardCtx over a stacked batch.
//
//mpgraph:noalloc
func (core *ammaCore) forwardBatchCtx(c *tensor.Ctx, encA, encB *tensor.Tensor, ss []*Sample) *tensor.Tensor {
	blocks := len(ss)
	fused := core.fusion.ForwardBatchCtx2(c, encA, encB, blocks) //mpgraph:allow noalloc -- fixed-arity fast path; the cross-package naming rule keys on a Ctx suffix
	if core.phaseEmb != nil {
		ids := phaseIDsBatch(c, ss, core.phaseEmb.Vocab()) //mpgraph:allow noalloc -- Vocab is a field read
		fused = c.AddRowPerBlock(fused, core.phaseEmb.Table, ids, blocks)
	}
	for _, tl := range core.trans {
		fused = tl.ForwardBatchCtx(c, fused, blocks)
	}
	return c.MeanRowsBatch(fused, blocks)
}

// --- AMMA ---

//mpgraph:noalloc
func (m *AMMADelta) logitsBatchCtx(c *tensor.Ctx, ss []*Sample) *tensor.Tensor {
	t := batchT(ss)
	encA := m.core.modA.encodeFeaturesBatchCtx(c, addrFeatureTensorBatchCtx(c, m.cfg, ss, t), len(ss))
	encB := m.core.modB.encodeTokensBatchCtx(c, pcTokensBatchCtx(c, m.pcs, ss, t), len(ss))
	return m.head.ForwardBatchCtx(c, m.core.forwardBatchCtx(c, encA, encB, ss))
}

// DeltaScoresBatchCtx implements DeltaScorerBatchCtx.
//
//mpgraph:noalloc
func (m *AMMADelta) DeltaScoresBatchCtx(c *tensor.Ctx, ss []*Sample) *tensor.Tensor {
	return c.SigmoidInPlaceFast(m.logitsBatchCtx(c, ss))
}

//mpgraph:noalloc
func (m *AMMAPage) logitsBatchCtx(c *tensor.Ctx, ss []*Sample) *tensor.Tensor {
	t := batchT(ss)
	encA := m.core.modA.encodeTokensBatchCtx(c, pageTokensBatchCtx(c, m.pages, ss, t), len(ss))
	encB := m.core.modB.encodeTokensBatchCtx(c, pcTokensBatchCtx(c, m.pcs, ss, t), len(ss))
	return m.head.ForwardBatchCtx(c, m.core.forwardBatchCtx(c, encA, encB, ss))
}

// TopPagesBatchAppendCtx implements PageTopperBatchCtx.
//
//mpgraph:noalloc
func (m *AMMAPage) TopPagesBatchAppendCtx(c *tensor.Ctx, ss []*Sample, k int, dst [][]uint64) {
	scores := m.logitsBatchCtx(c, ss)
	for i := range ss {
		row := scores.Data[i*scores.Cols : (i+1)*scores.Cols]
		dst[i] = topPagesAppendCtx(c, m.pages, row, k, dst[i])
	}
}

// --- baselines ---

//mpgraph:noalloc
func (m *LSTMDelta) logitsBatchCtx(c *tensor.Ctx, ss []*Sample) *tensor.Tensor {
	t := batchT(ss)
	x := concatStepFeaturesBatchCtx(c, m.cfg, ss, t)
	return m.head.ForwardBatchCtx(c, m.lstm.ForwardBatchCtx(c, x, len(ss)))
}

// DeltaScoresBatchCtx implements DeltaScorerBatchCtx.
//
//mpgraph:noalloc
func (m *LSTMDelta) DeltaScoresBatchCtx(c *tensor.Ctx, ss []*Sample) *tensor.Tensor {
	return c.SigmoidInPlaceFast(m.logitsBatchCtx(c, ss))
}

//mpgraph:noalloc
func (m *LSTMPage) logitsBatchCtx(c *tensor.Ctx, ss []*Sample) *tensor.Tensor {
	t := batchT(ss)
	pe := m.pageEmb.ForwardCtx(c, pageTokensBatchCtx(c, m.pages, ss, t))
	ce := m.pcEmb.ForwardCtx(c, pcTokensBatchCtx(c, m.pcs, ss, t))
	return m.head.ForwardBatchCtx(c, m.lstm.ForwardBatchCtx(c, c.ConcatCols2(pe, ce), len(ss)))
}

// TopPagesBatchAppendCtx implements PageTopperBatchCtx.
//
//mpgraph:noalloc
func (m *LSTMPage) TopPagesBatchAppendCtx(c *tensor.Ctx, ss []*Sample, k int, dst [][]uint64) {
	scores := m.logitsBatchCtx(c, ss)
	for i := range ss {
		row := scores.Data[i*scores.Cols : (i+1)*scores.Cols]
		dst[i] = topPagesAppendCtx(c, m.pages, row, k, dst[i])
	}
}

//mpgraph:noalloc
func (m *AttnDelta) logitsBatchCtx(c *tensor.Ctx, ss []*Sample) *tensor.Tensor {
	t := batchT(ss)
	x := c.AddPosBatch(m.embed.ForwardBatchCtx(c, concatStepFeaturesBatchCtx(c, m.cfg, ss, t)), m.pos, len(ss))
	for _, tl := range m.trans {
		x = tl.ForwardBatchCtx(c, x, len(ss))
	}
	return m.head.ForwardBatchCtx(c, c.MeanRowsBatch(x, len(ss)))
}

// DeltaScoresBatchCtx implements DeltaScorerBatchCtx.
//
//mpgraph:noalloc
func (m *AttnDelta) DeltaScoresBatchCtx(c *tensor.Ctx, ss []*Sample) *tensor.Tensor {
	return c.SigmoidInPlaceFast(m.logitsBatchCtx(c, ss))
}

//mpgraph:noalloc
func (m *AttnPage) logitsBatchCtx(c *tensor.Ctx, ss []*Sample) *tensor.Tensor {
	t := batchT(ss)
	pe := m.pageEmb.ForwardCtx(c, pageTokensBatchCtx(c, m.pages, ss, t))
	side := c.Zeros(len(ss)*t, 1)
	for i, s := range ss {
		for j, pc := range s.PCs {
			side.Data[i*t+j] = hashPC(pc)
		}
	}
	x := c.AddPosBatch(m.mix.ForwardBatchCtx(c, c.ConcatCols2(pe, side)), m.pos, len(ss))
	for _, tl := range m.trans {
		x = tl.ForwardBatchCtx(c, x, len(ss))
	}
	return m.head.ForwardBatchCtx(c, c.MeanRowsBatch(x, len(ss)))
}

// TopPagesBatchAppendCtx implements PageTopperBatchCtx.
//
//mpgraph:noalloc
func (m *AttnPage) TopPagesBatchAppendCtx(c *tensor.Ctx, ss []*Sample, k int, dst [][]uint64) {
	scores := m.logitsBatchCtx(c, ss)
	for i := range ss {
		row := scores.Data[i*scores.Cols : (i+1)*scores.Cols]
		dst[i] = topPagesAppendCtx(c, m.pages, row, k, dst[i])
	}
}
