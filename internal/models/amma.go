package models

import (
	"math/rand"

	"mpgraph/internal/nn"
	"mpgraph/internal/tensor"
	"mpgraph/internal/trace"
)

// DeltaModel is a spatial predictor: multi-label classification over block
// deltas within a page-sized range (Section 4.3.3).
type DeltaModel interface {
	nn.Module
	// DeltaLoss is the BCE training loss for s.
	DeltaLoss(s *Sample) *tensor.Tensor
	// DeltaScores returns per-class probabilities (sigmoid outputs).
	DeltaScores(s *Sample) []float64
}

// PageModel is a temporal predictor of the next new page (Section 4.3.4).
type PageModel interface {
	nn.Module
	// PageLoss is the CE training loss for s.
	PageLoss(s *Sample) *tensor.Tensor
	// TopPages returns the k most likely next pages (known-vocabulary
	// values only).
	TopPages(s *Sample, k int) []uint64
}

// PageProber is implemented by page models that can expose a full
// probability row over the page vocabulary (needed as the teacher side of
// knowledge distillation).
type PageProber interface {
	PageProbs(s *Sample) []float64
}

// modalityEncoder embeds one input modality and applies the per-modality
// self-attention layer of the AMMA figure: embed → +position → attention.
type modalityEncoder struct {
	lin   *nn.Linear    // feature inputs (address segments); nil if token
	table *nn.Embedding // token inputs (pages, PCs); nil if feature
	pos   *tensor.Tensor
	attn  *nn.SelfAttention
}

func newFeatureEncoder(inDim, T, attnDim int, rng *rand.Rand) *modalityEncoder {
	return &modalityEncoder{
		lin:  nn.NewLinear(inDim, attnDim, rng),
		pos:  tensor.Randn(T, attnDim, 0.05, rng).Param(),
		attn: nn.NewSelfAttention(attnDim, attnDim, rng),
	}
}

func newTokenEncoder(vocab, T, attnDim int, rng *rand.Rand) *modalityEncoder {
	return &modalityEncoder{
		table: nn.NewEmbedding(vocab, attnDim, rng),
		pos:   tensor.Randn(T, attnDim, 0.05, rng).Param(),
		attn:  nn.NewSelfAttention(attnDim, attnDim, rng),
	}
}

func (m *modalityEncoder) encodeFeatures(x *tensor.Tensor) *tensor.Tensor {
	return m.attn.Forward(tensor.Add(m.lin.Forward(x), m.pos))
}

func (m *modalityEncoder) encodeTokens(ids []int) *tensor.Tensor {
	return m.attn.Forward(tensor.Add(m.table.Forward(ids), m.pos))
}

func (m *modalityEncoder) params() []*tensor.Tensor {
	out := []*tensor.Tensor{m.pos}
	if m.lin != nil {
		out = append(out, m.lin.Params()...)
	}
	if m.table != nil {
		out = append(out, m.table.Params()...)
	}
	return append(out, m.attn.Params()...)
}

// ammaCore is the shared AMMA backbone: two modality encoders, the
// multi-modality attention fusion layer (Eq. 8), L Transformer layers
// (Eq. 9-10), optional phase embedding (AMMA-PI), and mean pooling.
type ammaCore struct {
	cfg        Config
	modA, modB *modalityEncoder
	fusion     *nn.MMAF
	trans      []*nn.TransformerLayer
	phaseEmb   *nn.Embedding // nil unless phase-informed
}

func newAMMACore(cfg Config, modA, modB *modalityEncoder, phases int, rng *rand.Rand) *ammaCore {
	c := &ammaCore{
		cfg:    cfg,
		modA:   modA,
		modB:   modB,
		fusion: nn.NewMMAF(cfg.AttnDim, cfg.FusionDim, rng),
	}
	for l := 0; l < cfg.TransLayers; l++ {
		c.trans = append(c.trans, nn.NewTransformerLayer(cfg.FusionDim, cfg.Heads, rng))
	}
	if phases > 0 {
		c.phaseEmb = nn.NewEmbedding(phases, cfg.FusionDim, rng)
	}
	return c
}

// forward fuses the two encoded modalities and pools to [1 x FusionDim].
func (c *ammaCore) forward(encA, encB *tensor.Tensor, phase int) *tensor.Tensor {
	fused := c.fusion.Forward(encA, encB)
	if c.phaseEmb != nil {
		// Phase embedding incorporated as side information after the
		// fusion of the two modalities (AMMA-PI, Section 5.3.1).
		p := phase % c.phaseEmb.Vocab()
		fused = tensor.AddBias(fused, c.phaseEmb.Forward([]int{p}))
	}
	for _, tl := range c.trans {
		fused = tl.Forward(fused)
	}
	return tensor.MeanRows(fused)
}

func (c *ammaCore) params() []*tensor.Tensor {
	out := append(c.modA.params(), c.modB.params()...)
	out = append(out, c.fusion.Params()...)
	for _, tl := range c.trans {
		out = append(out, tl.Params()...)
	}
	if c.phaseEmb != nil {
		out = append(out, c.phaseEmb.Params()...)
	}
	return out
}

// AMMADelta is the spatial delta predictor (Fig. 7a): address-segmentation
// modality + PC modality → AMMA → MLP head → sigmoid multi-label bitmap.
type AMMADelta struct {
	cfg  Config
	pcs  *Vocab
	core *ammaCore
	head *nn.MLP
}

// NewAMMADelta builds the delta predictor. phases > 0 selects the
// phase-informed variant (AMMA-PI); 0 is plain AMMA.
func NewAMMADelta(cfg Config, pcs *Vocab, phases int, seed int64) *AMMADelta {
	rng := rand.New(rand.NewSource(seed))
	modA := newFeatureEncoder(cfg.NumSegments, cfg.HistoryT, cfg.AttnDim, rng)
	modB := newTokenEncoder(cfg.PCVocab, cfg.HistoryT, cfg.AttnDim, rng)
	return &AMMADelta{
		cfg:  cfg,
		pcs:  pcs,
		core: newAMMACore(cfg, modA, modB, phases, rng),
		head: nn.NewMLP([]int{cfg.FusionDim, cfg.DeltaClasses()}, rng),
	}
}

func (m *AMMADelta) logits(s *Sample) *tensor.Tensor {
	encA := m.core.modA.encodeFeatures(AddrFeatureTensor(m.cfg, s.Blocks))
	encB := m.core.modB.encodeTokens(pcTokens(m.pcs, s.PCs))
	return m.head.Forward(m.core.forward(encA, encB, s.Phase))
}

// DeltaLoss implements DeltaModel.
func (m *AMMADelta) DeltaLoss(s *Sample) *tensor.Tensor {
	return tensor.BCEWithLogits(m.logits(s), s.DeltaBits)
}

// DeltaScores implements DeltaModel.
func (m *AMMADelta) DeltaScores(s *Sample) []float64 {
	return sigmoidSlice(m.logits(s).Data)
}

// Params implements nn.Module.
func (m *AMMADelta) Params() []*tensor.Tensor {
	return append(m.core.params(), m.head.Params()...)
}

// AMMAPage is the temporal page predictor (Fig. 7b): tokenized page modality
// + PC modality → AMMA → MLP head → softmax over the page vocabulary.
type AMMAPage struct {
	cfg   Config
	pages *Vocab
	pcs   *Vocab
	core  *ammaCore
	head  *nn.MLP
}

// NewAMMAPage builds the page predictor (phases > 0 → AMMA-PI).
func NewAMMAPage(cfg Config, pages, pcs *Vocab, phases int, seed int64) *AMMAPage {
	rng := rand.New(rand.NewSource(seed))
	modA := newTokenEncoder(cfg.PageVocab, cfg.HistoryT, cfg.AttnDim, rng)
	modB := newTokenEncoder(cfg.PCVocab, cfg.HistoryT, cfg.AttnDim, rng)
	return &AMMAPage{
		cfg:   cfg,
		pages: pages,
		pcs:   pcs,
		core:  newAMMACore(cfg, modA, modB, phases, rng),
		head:  nn.NewMLP([]int{cfg.FusionDim, cfg.PageVocab}, rng),
	}
}

func (m *AMMAPage) logits(s *Sample) *tensor.Tensor {
	encA := m.core.modA.encodeTokens(pageTokens(m.pages, s.Blocks))
	encB := m.core.modB.encodeTokens(pcTokens(m.pcs, s.PCs))
	return m.head.Forward(m.core.forward(encA, encB, s.Phase))
}

// PageLoss implements PageModel.
func (m *AMMAPage) PageLoss(s *Sample) *tensor.Tensor {
	return tensor.CrossEntropyLogits(m.logits(s), s.PageTok)
}

// TopPages implements PageModel.
func (m *AMMAPage) TopPages(s *Sample, k int) []uint64 {
	return topPagesFromScores(m.pages, m.logits(s).Data, k)
}

// PageProbs implements PageProber (the KD teacher interface).
func (m *AMMAPage) PageProbs(s *Sample) []float64 {
	return softmaxSlice(m.logits(s).Data)
}

// Params implements nn.Module.
func (m *AMMAPage) Params() []*tensor.Tensor {
	return append(m.core.params(), m.head.Params()...)
}

// --- shared encoding helpers ---

func pcTokens(v *Vocab, pcs []uint64) []int {
	out := make([]int, len(pcs))
	for i, pc := range pcs {
		out[i] = v.Token(pc)
	}
	return out
}

func pageTokens(v *Vocab, blocks []uint64) []int {
	out := make([]int, len(blocks))
	for i, b := range blocks {
		out[i] = v.Token(trace.PageOfBlock(b))
	}
	return out
}

func sigmoidSlice(logits []float64) []float64 {
	out := make([]float64, len(logits))
	for i, z := range logits {
		out[i] = 1 / (1 + exp(-z))
	}
	return out
}

func softmaxSlice(logits []float64) []float64 {
	out := make([]float64, len(logits))
	maxV := logits[0]
	for _, v := range logits {
		if v > maxV {
			maxV = v
		}
	}
	sum := 0.0
	for i, v := range logits {
		out[i] = exp(v - maxV)
		sum += out[i]
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

// topPagesFromScores maps the best-scoring known tokens back to page values.
func topPagesFromScores(pages *Vocab, scores []float64, k int) []uint64 {
	var out []uint64
	for _, tok := range TopKClasses(scores, k+1) {
		if page, ok := pages.Value(tok); ok {
			out = append(out, page)
			if len(out) == k {
				break
			}
		}
	}
	return out
}
