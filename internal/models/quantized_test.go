package models

import (
	"testing"

	"mpgraph/internal/tensor"
)

// quantTrainOpt is the brief training pass the parity tests use: enough
// epochs for the synthetic phases to become separable, small enough to keep
// the suite fast.
func quantParityData(t *testing.T) (*Dataset, *AMMADelta, *AMMAPage, *BinaryPage) {
	t.Helper()
	ds := synthDataset(t, 1600, 31)
	opt := TrainOptions{Epochs: 3, LR: 2e-3, Seed: 5, MaxSamplesPerEpoch: 700}
	delta := NewAMMADelta(ds.Cfg, ds.PCs, 0, 11)
	if err := TrainDelta(delta, ds, opt); err != nil {
		t.Fatal(err)
	}
	page := NewAMMAPage(ds.Cfg, ds.Pages, ds.PCs, 0, 17)
	if err := TrainPage(page, ds, opt); err != nil {
		t.Fatal(err)
	}
	bin := NewBinaryPage(ds.Cfg, ds.Pages, ds.PCs, 23)
	if err := TrainPage(bin, ds, opt); err != nil {
		t.Fatal(err)
	}
	return ds, delta, page, bin
}

// overlapAtK returns |topK(a) ∩ topK(b)| / k.
func overlapAtK(a, b []float64, k int) float64 {
	ta := TopKClasses(a, k)
	tb := TopKClasses(b, k)
	inB := map[int]bool{}
	for _, c := range tb {
		inB[c] = true
	}
	hit := 0
	for _, c := range ta {
		if inB[c] {
			hit++
		}
	}
	return float64(hit) / float64(k)
}

func TestQuantizedDeltaParity(t *testing.T) {
	ds, delta, _, _ := quantParityData(t)
	qm, err := QuantizeDelta(delta, ds.Samples)
	if err != nil {
		t.Fatal(err)
	}
	qc := qm.(DeltaScorerCtx)
	ctx := tensor.NewCtx()
	const topD = 8
	var overlapSum float64
	for _, s := range ds.Samples {
		want := delta.DeltaScores(s)
		got := qc.DeltaScoresCtx(ctx, s)
		overlapSum += overlapAtK(got, want, topD)
		ctx.Reset()
	}
	if avg := overlapSum / float64(len(ds.Samples)); avg < 0.95 {
		t.Fatalf("delta top-%d overlap %.4f < 0.95 over %d samples", topD, avg, len(ds.Samples))
	}
}

func TestQuantizedPageParity(t *testing.T) {
	ds, _, page, _ := quantParityData(t)
	qm, err := QuantizePage(page, ds.Samples)
	if err != nil {
		t.Fatal(err)
	}
	qc := qm.(PageTopperCtx)
	ctx := tensor.NewCtx()
	agree, total := 0, 0
	var dst []uint64
	for _, s := range ds.Samples {
		want := page.TopPages(s, 1)
		dst = qc.TopPagesAppendCtx(ctx, s, 1, dst[:0])
		ctx.Reset()
		if len(want) == 0 && len(dst) == 0 {
			continue
		}
		total++
		if len(want) > 0 && len(dst) > 0 && want[0] == dst[0] {
			agree++
		}
	}
	if total == 0 {
		t.Fatal("no samples produced a page prediction")
	}
	if frac := float64(agree) / float64(total); frac < 0.99 {
		t.Fatalf("top-1 page agreement %.4f < 0.99 (%d/%d)", frac, agree, total)
	}
}

func TestQuantizedBinaryPageParity(t *testing.T) {
	ds, _, _, bin := quantParityData(t)
	qm, err := QuantizePage(bin, ds.Samples)
	if err != nil {
		t.Fatal(err)
	}
	qc := qm.(PageTopperCtx)
	ctx := tensor.NewCtx()
	agree, total := 0, 0
	var dst []uint64
	for _, s := range ds.Samples {
		want := bin.TopPages(s, 1)
		dst = qc.TopPagesAppendCtx(ctx, s, 1, dst[:0])
		ctx.Reset()
		if len(want) == 0 && len(dst) == 0 {
			continue
		}
		total++
		if len(want) > 0 && len(dst) > 0 && want[0] == dst[0] {
			agree++
		}
	}
	if total == 0 {
		t.Fatal("no samples produced a page prediction")
	}
	// The binary head decodes by thresholding each bit at 0.5, so backbone
	// quantization noise on a near-threshold bit flips the whole id instead
	// of nudging a ranking — the 99% bound of the softmax head is not
	// reachable here. 95% matches what the bit-flip candidate search
	// recovers (DESIGN.md §10).
	if frac := float64(agree) / float64(total); frac < 0.95 {
		t.Fatalf("binary top-1 page agreement %.4f < 0.95 (%d/%d)", frac, agree, total)
	}
}

func TestBinaryPageFastPathMatchesSlow(t *testing.T) {
	// The float BinaryPage ctx fast path must reproduce TopPages exactly —
	// same candidate enumeration, same tie ordering.
	ds, _, _, bin := quantParityData(t)
	ctx := tensor.NewCtx()
	var dst []uint64
	for _, s := range ds.Samples[:200] {
		want := bin.TopPages(s, 3)
		dst = bin.TopPagesAppendCtx(ctx, s, 3, dst[:0])
		ctx.Reset()
		if len(want) != len(dst) {
			t.Fatalf("fast path returned %d pages, slow %d", len(dst), len(want))
		}
		for i := range want {
			if want[i] != dst[i] {
				t.Fatalf("fast path page[%d]=%d, slow %d", i, dst[i], want[i])
			}
		}
	}
}

func TestQuantizePhaseSpecific(t *testing.T) {
	ds := synthDataset(t, 1200, 41)
	opt := TrainOptions{Epochs: 2, LR: 2e-3, Seed: 5, MaxSamplesPerEpoch: 500}
	ps := NewPhaseSpecificDelta(ds.Cfg, ds.PCs, ds.NumPhases(), 13)
	if err := TrainDelta(ps, ds, opt); err != nil {
		t.Fatal(err)
	}
	qm, err := QuantizeDelta(ps, ds.Samples)
	if err != nil {
		t.Fatal(err)
	}
	qps, ok := qm.(*PhaseSpecificDelta)
	if !ok {
		t.Fatalf("quantized phase-specific is %T", qm)
	}
	for p, sub := range qps.Models {
		if _, ok := sub.(*QAMMADelta); !ok {
			t.Fatalf("phase %d sub-model is %T, want *QAMMADelta", p, sub)
		}
	}
	ctx := tensor.NewCtx()
	s := ds.Samples[0]
	got := qps.DeltaScoresCtx(ctx, s)
	if len(got) != ds.Cfg.DeltaClasses() {
		t.Fatalf("scores width %d", len(got))
	}
}

func TestQuantizeUnsupportedModelErrors(t *testing.T) {
	ds := synthDataset(t, 800, 43)
	lstm := NewLSTMDelta(ds.Cfg, 3)
	if _, err := QuantizeDelta(lstm, ds.Samples); err == nil {
		t.Fatal("expected explicit error for unsupported delta model")
	}
	lstmp := NewLSTMPage(ds.Cfg, ds.Pages, ds.PCs, 3)
	if _, err := QuantizePage(lstmp, ds.Samples); err == nil {
		t.Fatal("expected explicit error for unsupported page model")
	}
}

func TestQuantizedNilCtxFallsBackToFloat(t *testing.T) {
	ds, delta, _, _ := quantParityData(t)
	qm, err := QuantizeDelta(delta, ds.Samples)
	if err != nil {
		t.Fatal(err)
	}
	q := qm.(*QAMMADelta)
	s := ds.Samples[0]
	want := delta.DeltaScores(s)
	got := q.DeltaScoresCtx(nil, s)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("nil-ctx quantized path diverges from float at %d", i)
		}
	}
}

func TestQuantizeSuitePair(t *testing.T) {
	ds, delta, page, _ := quantParityData(t)
	qd, qp, err := QuantizeSuite(delta, page, ds.Samples)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := qd.(*QAMMADelta); !ok {
		t.Fatalf("suite delta is %T", qd)
	}
	if _, ok := qp.(*QAMMAPage); !ok {
		t.Fatalf("suite page is %T", qp)
	}
}
