package models

import (
	"math"
	"math/rand"

	"mpgraph/internal/nn"
	"mpgraph/internal/tensor"
)

func exp(x float64) float64 { return math.Exp(x) }

// hashPC folds a PC into a [0,1) feature, the "hashed and normalized"
// encoding the paper uses where the PC is side information.
//
//mpgraph:noalloc
func hashPC(pc uint64) float64 {
	pc ^= pc >> 33
	pc *= 0xff51afd7ed558ccd
	pc ^= pc >> 33
	return float64(pc%4096) / 4096
}

// concatStepFeatures builds the per-step [T x (NumSegments+1)] input the
// LSTM and vanilla-attention baselines consume: address segments
// concatenated with the hashed PC.
func concatStepFeatures(cfg Config, blocks, pcs []uint64) *tensor.Tensor {
	cols := cfg.NumSegments + 1
	t := tensor.Zeros(len(blocks), cols)
	for i := range blocks {
		copy(t.Data[i*cols:], SegmentBlock(cfg, blocks[i]))
		t.Data[i*cols+cfg.NumSegments] = hashPC(pcs[i])
	}
	return t
}

// LSTMDelta is the Delta-LSTM-style baseline for spatial prediction
// (Hashemi et al. 2018): concatenated address+PC steps through an LSTM.
type LSTMDelta struct {
	cfg  Config
	lstm *nn.LSTM
	head *nn.MLP
}

// NewLSTMDelta builds the baseline with cfg.LSTMHidden units.
func NewLSTMDelta(cfg Config, seed int64) *LSTMDelta {
	rng := rand.New(rand.NewSource(seed))
	return &LSTMDelta{
		cfg:  cfg,
		lstm: nn.NewLSTM(cfg.NumSegments+1, cfg.LSTMHidden, rng),
		head: nn.NewMLP([]int{cfg.LSTMHidden, cfg.DeltaClasses()}, rng),
	}
}

func (m *LSTMDelta) logits(s *Sample) *tensor.Tensor {
	return m.head.Forward(m.lstm.Forward(concatStepFeatures(m.cfg, s.Blocks, s.PCs)))
}

// DeltaLoss implements DeltaModel.
func (m *LSTMDelta) DeltaLoss(s *Sample) *tensor.Tensor {
	return tensor.BCEWithLogits(m.logits(s), s.DeltaBits)
}

// DeltaScores implements DeltaModel.
func (m *LSTMDelta) DeltaScores(s *Sample) []float64 { return sigmoidSlice(m.logits(s).Data) }

// Params implements nn.Module.
func (m *LSTMDelta) Params() []*tensor.Tensor { return append(m.lstm.Params(), m.head.Params()...) }

// LSTMPage is the LSTM baseline for temporal page prediction: embedded page
// tokens concatenated with embedded PC tokens per step.
type LSTMPage struct {
	cfg     Config
	pages   *Vocab
	pcs     *Vocab
	pageEmb *nn.Embedding
	pcEmb   *nn.Embedding
	lstm    *nn.LSTM
	head    *nn.MLP
}

// NewLSTMPage builds the baseline page predictor.
func NewLSTMPage(cfg Config, pages, pcs *Vocab, seed int64) *LSTMPage {
	rng := rand.New(rand.NewSource(seed))
	pageDim, pcDim := 24, 8
	return &LSTMPage{
		cfg:     cfg,
		pages:   pages,
		pcs:     pcs,
		pageEmb: nn.NewEmbedding(cfg.PageVocab, pageDim, rng),
		pcEmb:   nn.NewEmbedding(cfg.PCVocab, pcDim, rng),
		lstm:    nn.NewLSTM(pageDim+pcDim, cfg.LSTMHidden, rng),
		head:    nn.NewMLP([]int{cfg.LSTMHidden, cfg.PageVocab}, rng),
	}
}

func (m *LSTMPage) logits(s *Sample) *tensor.Tensor {
	pe := m.pageEmb.Forward(pageTokens(m.pages, s.Blocks))
	ce := m.pcEmb.Forward(pcTokens(m.pcs, s.PCs))
	return m.head.Forward(m.lstm.Forward(tensor.ConcatCols(pe, ce)))
}

// PageLoss implements PageModel.
func (m *LSTMPage) PageLoss(s *Sample) *tensor.Tensor {
	return tensor.CrossEntropyLogits(m.logits(s), s.PageTok)
}

// TopPages implements PageModel.
func (m *LSTMPage) TopPages(s *Sample, k int) []uint64 {
	return topPagesFromScores(m.pages, m.logits(s).Data, k)
}

// PageProbs implements PageProber.
func (m *LSTMPage) PageProbs(s *Sample) []float64 { return softmaxSlice(m.logits(s).Data) }

// Params implements nn.Module.
func (m *LSTMPage) Params() []*tensor.Tensor {
	out := append(m.pageEmb.Params(), m.pcEmb.Params()...)
	out = append(out, m.lstm.Params()...)
	return append(out, m.head.Params()...)
}

// AttnDelta is the vanilla-attention baseline (TransFetch-style): address
// input with PC as side information through stacked Transformer layers —
// single modality, no fusion layer.
type AttnDelta struct {
	cfg   Config
	embed *nn.Linear
	pos   *tensor.Tensor
	trans []*nn.TransformerLayer
	head  *nn.MLP
}

// NewAttnDelta builds the baseline with 2 Transformer layers of FusionDim.
func NewAttnDelta(cfg Config, seed int64) *AttnDelta {
	rng := rand.New(rand.NewSource(seed))
	m := &AttnDelta{
		cfg:   cfg,
		embed: nn.NewLinear(cfg.NumSegments+1, cfg.FusionDim, rng),
		pos:   tensor.Randn(cfg.HistoryT, cfg.FusionDim, 0.05, rng).Param(),
		head:  nn.NewMLP([]int{cfg.FusionDim, cfg.DeltaClasses()}, rng),
	}
	for l := 0; l < 2; l++ {
		m.trans = append(m.trans, nn.NewTransformerLayer(cfg.FusionDim, cfg.Heads, rng))
	}
	return m
}

func (m *AttnDelta) logits(s *Sample) *tensor.Tensor {
	x := tensor.Add(m.embed.Forward(concatStepFeatures(m.cfg, s.Blocks, s.PCs)), m.pos)
	for _, tl := range m.trans {
		x = tl.Forward(x)
	}
	return m.head.Forward(tensor.MeanRows(x))
}

// DeltaLoss implements DeltaModel.
func (m *AttnDelta) DeltaLoss(s *Sample) *tensor.Tensor {
	return tensor.BCEWithLogits(m.logits(s), s.DeltaBits)
}

// DeltaScores implements DeltaModel.
func (m *AttnDelta) DeltaScores(s *Sample) []float64 { return sigmoidSlice(m.logits(s).Data) }

// Params implements nn.Module.
func (m *AttnDelta) Params() []*tensor.Tensor {
	out := append(m.embed.Params(), m.pos)
	for _, tl := range m.trans {
		out = append(out, tl.Params()...)
	}
	return append(out, m.head.Params()...)
}

// AttnPage is the vanilla-attention page baseline: embedded page tokens with
// the hashed PC appended as a side-information feature column.
type AttnPage struct {
	cfg     Config
	pages   *Vocab
	pcs     *Vocab
	pageEmb *nn.Embedding
	mix     *nn.Linear
	pos     *tensor.Tensor
	trans   []*nn.TransformerLayer
	head    *nn.MLP
}

// NewAttnPage builds the baseline page predictor.
func NewAttnPage(cfg Config, pages, pcs *Vocab, seed int64) *AttnPage {
	rng := rand.New(rand.NewSource(seed))
	pageDim := 24
	m := &AttnPage{
		cfg:     cfg,
		pages:   pages,
		pcs:     pcs,
		pageEmb: nn.NewEmbedding(cfg.PageVocab, pageDim, rng),
		mix:     nn.NewLinear(pageDim+1, cfg.FusionDim, rng),
		pos:     tensor.Randn(cfg.HistoryT, cfg.FusionDim, 0.05, rng).Param(),
		head:    nn.NewMLP([]int{cfg.FusionDim, cfg.PageVocab}, rng),
	}
	for l := 0; l < 2; l++ {
		m.trans = append(m.trans, nn.NewTransformerLayer(cfg.FusionDim, cfg.Heads, rng))
	}
	return m
}

func (m *AttnPage) logits(s *Sample) *tensor.Tensor {
	pe := m.pageEmb.Forward(pageTokens(m.pages, s.Blocks))
	side := tensor.Zeros(len(s.PCs), 1)
	for i, pc := range s.PCs {
		side.Data[i] = hashPC(pc)
	}
	x := tensor.Add(m.mix.Forward(tensor.ConcatCols(pe, side)), m.pos)
	for _, tl := range m.trans {
		x = tl.Forward(x)
	}
	return m.head.Forward(tensor.MeanRows(x))
}

// PageLoss implements PageModel.
func (m *AttnPage) PageLoss(s *Sample) *tensor.Tensor {
	return tensor.CrossEntropyLogits(m.logits(s), s.PageTok)
}

// TopPages implements PageModel.
func (m *AttnPage) TopPages(s *Sample, k int) []uint64 {
	return topPagesFromScores(m.pages, m.logits(s).Data, k)
}

// PageProbs implements PageProber.
func (m *AttnPage) PageProbs(s *Sample) []float64 { return softmaxSlice(m.logits(s).Data) }

// Params implements nn.Module.
func (m *AttnPage) Params() []*tensor.Tensor {
	out := append(m.pageEmb.Params(), m.mix.Params()...)
	out = append(out, m.pos)
	for _, tl := range m.trans {
		out = append(out, tl.Params()...)
	}
	return append(out, m.head.Params()...)
}
