package models

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"mpgraph/internal/nn"
	"mpgraph/internal/trace"
)

// synthStream produces a two-phase LLC-like access stream with learnable
// structure: each phase has its own PC pool, within-page stride pattern, and
// page-visit cycle, mimicking the scatter/gather signatures the real traces
// exhibit.
func synthStream(n int, seed int64) []trace.Access {
	rng := rand.New(rand.NewSource(seed))
	type phaseSpec struct {
		pcs     []uint64
		strides []int64
		pages   []uint64
	}
	specs := []phaseSpec{
		{
			pcs:     []uint64{0x400000, 0x400040, 0x400080},
			strides: []int64{1, 2},
			pages:   []uint64{1000, 1004, 1008, 1012, 1016, 1020},
		},
		{
			pcs:     []uint64{0x500000, 0x500040, 0x500080},
			strides: []int64{3, 1},
			pages:   []uint64{2000, 2001, 2007, 2013, 2019, 2025},
		},
	}
	out := make([]trace.Access, 0, n)
	phaseLen := n / 4
	pagePos := 0
	for i := 0; i < n; {
		phase := (i / phaseLen) % 2
		sp := specs[phase]
		page := sp.pages[pagePos%len(sp.pages)]
		pagePos++
		block := trace.BlockOfPageOffset(page, uint64(rng.Intn(8)))
		// Dwell on the page: a few strided accesses, then jump.
		for s := 0; s < len(sp.strides)+1 && i < n; s++ {
			var pc uint64
			if s < len(sp.strides) {
				pc = sp.pcs[s]
			} else {
				pc = sp.pcs[len(sp.pcs)-1]
			}
			out = append(out, trace.Access{
				Addr:  trace.BlockAddr(block),
				PC:    pc,
				Phase: uint8(phase),
				Gap:   3,
			})
			if s < len(sp.strides) {
				block += uint64(sp.strides[s])
			}
			i++
		}
	}
	return out
}

func synthDataset(t *testing.T, n int, seed int64) *Dataset {
	t.Helper()
	cfg := SmallConfig()
	ds, err := BuildDataset(cfg, synthStream(n, seed), DatasetOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestVocab(t *testing.T) {
	vals := []uint64{5, 5, 5, 9, 9, 7, 1}
	v := BuildVocab(vals, 3) // OOV + 2 slots
	if v.Size() != 3 {
		t.Fatalf("size %d, want 3", v.Size())
	}
	if v.Token(5) != 1 {
		t.Fatalf("most frequent must be token 1, got %d", v.Token(5))
	}
	if v.Token(9) != 2 {
		t.Fatalf("second token, got %d", v.Token(9))
	}
	if v.Token(7) != 0 || v.Token(1) != 0 || v.Token(42) != 0 {
		t.Fatal("capped-out values must be OOV")
	}
	if got, ok := v.Value(1); !ok || got != 5 {
		t.Fatal("Value(1)")
	}
	if _, ok := v.Value(0); ok {
		t.Fatal("OOV has no value")
	}
	if _, ok := v.Value(99); ok {
		t.Fatal("unknown token has no value")
	}
	if v.Capacity() != 3 {
		t.Fatal("capacity")
	}
}

func TestQuickVocabRoundTrip(t *testing.T) {
	f := func(vals []uint64) bool {
		v := BuildVocab(vals, 64)
		for _, x := range vals {
			tok := v.Token(x)
			if tok == 0 {
				continue // capped out
			}
			got, ok := v.Value(tok)
			if !ok || got != x {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSegmentBlock(t *testing.T) {
	cfg := SmallConfig()
	feats := SegmentBlock(cfg, 0xDEADBEEF)
	if len(feats) != cfg.NumSegments {
		t.Fatal("segment count")
	}
	for _, f := range feats {
		if f < 0 || f > 1 {
			t.Fatalf("feature %g out of [0,1]", f)
		}
	}
	// 0xF in the low segment → 1.0.
	if got := SegmentBlock(cfg, 0xF)[0]; got != 1 {
		t.Fatalf("low segment of 0xF = %g", got)
	}
	at := AddrFeatureTensor(cfg, []uint64{1, 2, 3})
	if at.Rows != 3 || at.Cols != cfg.NumSegments {
		t.Fatal("AddrFeatureTensor shape")
	}
}

func TestQuickDeltaClassRoundTrip(t *testing.T) {
	cfg := PaperConfig()
	f := func(raw int16) bool {
		d := int64(raw) % int64(cfg.DeltaRange+1)
		cls, ok := cfg.DeltaToClass(d)
		if d == 0 {
			return !ok
		}
		if !ok {
			return false
		}
		return cfg.ClassToDelta(cls) == d && cls >= 0 && cls < cfg.DeltaClasses()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
	if _, ok := cfg.DeltaToClass(int64(cfg.DeltaRange) + 1); ok {
		t.Fatal("out of range delta must be rejected")
	}
}

func TestDeltaBitmapRoundTrip(t *testing.T) {
	cfg := SmallConfig()
	bits := DeltaBitmap(cfg, []int64{1, -3, 62, 0, 9999})
	got := BitmapDeltas(cfg, bits, 0.5)
	want := map[int64]bool{1: true, -3: true, 62: true}
	if len(got) != 3 {
		t.Fatalf("decoded %v", got)
	}
	for _, d := range got {
		if !want[d] {
			t.Fatalf("unexpected delta %d", d)
		}
	}
}

func TestQuickBinaryCodeRoundTrip(t *testing.T) {
	f := func(raw uint16) bool {
		id := int(raw) % 1024
		code, err := BinaryCode(id, 10)
		if err != nil {
			return false
		}
		return DecodeBinary(code) == id
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
	if _, err := BinaryCode(1024, 10); err == nil {
		t.Fatal("overflow must fail")
	}
}

func TestTopKClasses(t *testing.T) {
	got := TopKClasses([]float64{0.1, 0.9, 0.5, 0.9}, 3)
	if got[0] != 1 || got[1] != 3 || got[2] != 2 {
		t.Fatalf("TopK = %v", got)
	}
	if len(TopKClasses([]float64{1}, 5)) != 1 {
		t.Fatal("k beyond length")
	}
}

func TestConfigValidation(t *testing.T) {
	if err := PaperConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := SmallConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := PaperConfig()
	bad.FusionDim = 130 // not divisible by 4 heads
	if err := bad.Validate(); err == nil {
		t.Fatal("bad heads must fail")
	}
	bad2 := PaperConfig()
	bad2.HistoryT = 0
	if err := bad2.Validate(); err == nil {
		t.Fatal("zero history must fail")
	}
	bad3 := PaperConfig()
	bad3.NumSegments = 20
	bad3.SegmentBits = 10
	if err := bad3.Validate(); err == nil {
		t.Fatal("segmentation over 64 bits must fail")
	}
}

func TestBuildDataset(t *testing.T) {
	ds := synthDataset(t, 4000, 1)
	if len(ds.Samples) == 0 {
		t.Fatal("no samples")
	}
	if ds.NumPhases() != 2 {
		t.Fatalf("phases %d, want 2", ds.NumPhases())
	}
	s := ds.Samples[0]
	if len(s.Blocks) != ds.Cfg.HistoryT || len(s.PCs) != ds.Cfg.HistoryT {
		t.Fatal("window lengths")
	}
	if len(s.DeltaBits) != ds.Cfg.DeltaClasses() {
		t.Fatal("delta label width")
	}
	if len(s.FuturePages) == 0 || len(s.FuturePages) > 10 {
		t.Fatal("future pages")
	}
	// Phase filter partitions the samples.
	p0, p1 := ds.FilterPhase(0), ds.FilterPhase(1)
	if len(p0.Samples)+len(p1.Samples) != len(ds.Samples) {
		t.Fatal("phase filter must partition")
	}
	if len(p0.Samples) == 0 || len(p1.Samples) == 0 {
		t.Fatal("both phases must appear")
	}
}

func TestBuildDatasetOptions(t *testing.T) {
	cfg := SmallConfig()
	stream := synthStream(4000, 2)
	all, err := BuildDataset(cfg, stream, DatasetOptions{})
	if err != nil {
		t.Fatal(err)
	}
	strided, err := BuildDataset(cfg, stream, DatasetOptions{Stride: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(strided.Samples) >= len(all.Samples)/3 {
		t.Fatal("stride must subsample")
	}
	capped, err := BuildDataset(cfg, stream, DatasetOptions{MaxSamples: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(capped.Samples) != 7 {
		t.Fatal("max samples")
	}
	shared, err := BuildDataset(cfg, stream, DatasetOptions{Pages: all.Pages, PCs: all.PCs})
	if err != nil {
		t.Fatal(err)
	}
	if shared.Pages != all.Pages {
		t.Fatal("vocab must be shared")
	}
	if _, err := BuildDataset(cfg, stream[:10], DatasetOptions{}); err == nil {
		t.Fatal("short stream must fail")
	}
	if _, err := BuildDataset(Config{}, stream, DatasetOptions{}); err == nil {
		t.Fatal("invalid config must fail")
	}
}

func TestDatasetLabelsMatchFuture(t *testing.T) {
	ds := synthDataset(t, 3000, 3)
	cfg := ds.Cfg
	// Spot check: every set bit must correspond to an in-range future
	// delta by construction. Rebuild from the raw stream.
	stream := synthStream(3000, 3)
	blocks := make([]uint64, len(stream))
	for i, a := range stream {
		blocks[i] = trace.Block(a.Addr)
	}
	// The first sample is at t = HistoryT.
	s := ds.Samples[0]
	tpos := cfg.HistoryT
	cur := s.CurrentBlock()
	if cur != blocks[tpos-1] {
		t.Fatalf("current block mismatch: %d vs %d", cur, blocks[tpos-1])
	}
	wantBits := make(map[int]bool)
	for f := tpos; f < tpos+cfg.LookForwardF; f++ {
		if cls, ok := cfg.DeltaToClass(int64(blocks[f]) - int64(cur)); ok {
			wantBits[cls] = true
		}
	}
	for cls, v := range s.DeltaBits {
		if (v >= 0.5) != wantBits[cls] {
			t.Fatalf("bit %d mismatch", cls)
		}
	}
}

func trainedDeltaModels(t *testing.T, ds *Dataset) (*AMMADelta, *PhaseSpecificDelta) {
	t.Helper()
	opt := TrainOptions{Epochs: 3, LR: 2e-3, Seed: 5, MaxSamplesPerEpoch: 700}
	amma := NewAMMADelta(ds.Cfg, ds.PCs, 0, 11)
	if err := TrainDelta(amma, ds, opt); err != nil {
		t.Fatal(err)
	}
	ps := NewPhaseSpecificDelta(ds.Cfg, ds.PCs, ds.NumPhases(), 13)
	if err := TrainDelta(ps, ds, opt); err != nil {
		t.Fatal(err)
	}
	return amma, ps
}

func TestAMMADeltaLearns(t *testing.T) {
	ds := synthDataset(t, 6000, 4)
	amma, ps := trainedDeltaModels(t, ds)
	untrained := NewAMMADelta(ds.Cfg, ds.PCs, 0, 99)
	f1Untrained := EvalDeltaF1(untrained, ds.Samples, 300)
	f1 := EvalDeltaF1(amma, ds.Samples, 300)
	f1PS := EvalDeltaF1(ps, ds.Samples, 300)
	// Label noise from random-offset page revisits caps the achievable F1
	// around 0.5 on this stream; untrained models sit near 0.06.
	if f1 < 0.4 {
		t.Fatalf("AMMA delta F1 = %.3f, want learnable pattern > 0.4 (untrained %.3f)", f1, f1Untrained)
	}
	if f1 <= f1Untrained+0.2 {
		t.Fatalf("training must help: %.3f vs untrained %.3f", f1, f1Untrained)
	}
	// Each phase model sees only half the per-epoch sample budget, so PS
	// is undertrained relative to AMMA here; it just has to clearly learn.
	if f1PS < 0.3 {
		t.Fatalf("AMMA-PS delta F1 = %.3f", f1PS)
	}
}

func TestAMMAPageLearns(t *testing.T) {
	ds := synthDataset(t, 6000, 6)
	opt := TrainOptions{Epochs: 2, LR: 2e-3, Seed: 7, MaxSamplesPerEpoch: 500}
	page := NewAMMAPage(ds.Cfg, ds.Pages, ds.PCs, 0, 17)
	if err := TrainPage(page, ds, opt); err != nil {
		t.Fatal(err)
	}
	acc := EvalPageAccAtK(page, ds.Samples, 10, 300)
	if acc < 0.5 {
		t.Fatalf("AMMA page acc@10 = %.3f, want > 0.5 on cyclic pages", acc)
	}
	// Top pages must come from the known vocabulary.
	tops := page.TopPages(ds.Samples[0], 3)
	if len(tops) == 0 {
		t.Fatal("no top pages")
	}
	for _, p := range tops {
		if ds.Pages.Token(p) == 0 {
			t.Fatalf("top page %d not in vocab", p)
		}
	}
}

func TestPhaseInformedVariant(t *testing.T) {
	ds := synthDataset(t, 4000, 8)
	pi := NewAMMADelta(ds.Cfg, ds.PCs, ds.NumPhases(), 19)
	if err := TrainDelta(pi, ds, TrainOptions{Epochs: 1, Seed: 3, MaxSamplesPerEpoch: 300}); err != nil {
		t.Fatal(err)
	}
	if f1 := EvalDeltaF1(pi, ds.Samples, 200); f1 <= 0.2 {
		t.Fatalf("AMMA-PI F1 = %.3f", f1)
	}
	// The phase embedding must be among the params.
	piParams := len(pi.Params())
	plain := NewAMMADelta(ds.Cfg, ds.PCs, 0, 19)
	if piParams <= len(plain.Params()) {
		t.Fatal("PI variant must add the phase embedding")
	}
}

func TestBaselinesTrainSmoke(t *testing.T) {
	ds := synthDataset(t, 3000, 9)
	opt := TrainOptions{Epochs: 1, Seed: 3, MaxSamplesPerEpoch: 150}
	ld := NewLSTMDelta(ds.Cfg, 23)
	if err := TrainDelta(ld, ds, opt); err != nil {
		t.Fatal(err)
	}
	if f1 := EvalDeltaF1(ld, ds.Samples, 100); f1 < 0 || f1 > 1 {
		t.Fatalf("lstm F1 %v", f1)
	}
	ad := NewAttnDelta(ds.Cfg, 29)
	if err := TrainDelta(ad, ds, opt); err != nil {
		t.Fatal(err)
	}
	lp := NewLSTMPage(ds.Cfg, ds.Pages, ds.PCs, 31)
	if err := TrainPage(lp, ds, opt); err != nil {
		t.Fatal(err)
	}
	ap := NewAttnPage(ds.Cfg, ds.Pages, ds.PCs, 37)
	if err := TrainPage(ap, ds, opt); err != nil {
		t.Fatal(err)
	}
	psp := NewPhaseSpecificPage(ds.Cfg, ds.Pages, ds.PCs, 2, 41)
	if err := TrainPage(psp, ds, opt); err != nil {
		t.Fatal(err)
	}
	if acc := EvalPageAccAtK(psp, ds.Samples, 10, 100); acc < 0 || acc > 1 {
		t.Fatal("ps page acc range")
	}
	if probs := psp.PageProbs(ds.Samples[0]); len(probs) != ds.Cfg.PageVocab {
		t.Fatal("ps page probs")
	}
}

func TestBinaryPage(t *testing.T) {
	ds := synthDataset(t, 4000, 10)
	bp := NewBinaryPage(ds.Cfg, ds.Pages, ds.PCs, 43)
	if bp.Bits() != 10 { // PageVocab 1024
		t.Fatalf("bits = %d, want 10", bp.Bits())
	}
	if err := TrainPage(bp, ds, TrainOptions{Epochs: 2, Seed: 3, MaxSamplesPerEpoch: 400}); err != nil {
		t.Fatal(err)
	}
	tops := bp.TopPages(ds.Samples[0], 2)
	for _, p := range tops {
		if ds.Pages.Token(p) == 0 {
			t.Fatalf("binary top page %d not in vocab", p)
		}
	}
	// Binary head must be far smaller than the softmax head.
	full := NewAMMAPage(ds.Cfg, ds.Pages, ds.PCs, 0, 43)
	if nn.CountParams(bp) >= nn.CountParams(full) {
		t.Fatal("binary encoding must shrink the model")
	}
}

func TestDistillation(t *testing.T) {
	ds := synthDataset(t, 5000, 12)
	opt := TrainOptions{Epochs: 2, LR: 2e-3, Seed: 5, MaxSamplesPerEpoch: 400}
	teacher := NewAMMAPage(ds.Cfg, ds.Pages, ds.PCs, 0, 47)
	if err := TrainPage(teacher, ds, opt); err != nil {
		t.Fatal(err)
	}
	// Student: half-width config.
	small := ds.Cfg
	small.AttnDim = 8
	small.FusionDim = 16
	small.Heads = 2
	student := NewAMMAPage(small, ds.Pages, ds.PCs, 0, 53)
	dsSmall := &Dataset{Cfg: small, Samples: ds.Samples, Pages: ds.Pages, PCs: ds.PCs}
	if err := DistillPage(student, teacher, dsSmall, DistillOptions{TrainOptions: opt}); err != nil {
		t.Fatal(err)
	}
	accT := EvalPageAccAtK(teacher, ds.Samples, 10, 200)
	accS := EvalPageAccAtK(student, dsSmall.Samples, 10, 200)
	if accS < accT*0.5 {
		t.Fatalf("distilled student too weak: %.3f vs teacher %.3f", accS, accT)
	}
	if nn.CountParams(student) >= nn.CountParams(teacher) {
		t.Fatal("student must be smaller")
	}
	// Binary student distillation.
	bstudent := NewBinaryPage(small, ds.Pages, ds.PCs, 59)
	if err := DistillPage(bstudent, teacher, dsSmall, DistillOptions{TrainOptions: TrainOptions{Epochs: 1, Seed: 3, MaxSamplesPerEpoch: 200}}); err != nil {
		t.Fatal(err)
	}
}

func TestDistillDelta(t *testing.T) {
	ds := synthDataset(t, 4000, 14)
	opt := TrainOptions{Epochs: 1, LR: 2e-3, Seed: 5, MaxSamplesPerEpoch: 300}
	teacher := NewAMMADelta(ds.Cfg, ds.PCs, 0, 61)
	if err := TrainDelta(teacher, ds, opt); err != nil {
		t.Fatal(err)
	}
	small := ds.Cfg
	small.AttnDim = 8
	small.FusionDim = 16
	small.Heads = 2
	student := NewAMMADelta(small, ds.PCs, 0, 67)
	dsSmall := &Dataset{Cfg: small, Samples: ds.Samples, Pages: ds.Pages, PCs: ds.PCs}
	if err := DistillDelta(student, teacher, dsSmall, DistillOptions{TrainOptions: opt}); err != nil {
		t.Fatal(err)
	}
	if f1 := EvalDeltaF1(student, dsSmall.Samples, 150); f1 <= 0 {
		t.Fatalf("distilled delta student F1 %v", f1)
	}
}

func TestComplexityAccounting(t *testing.T) {
	cfg := PaperConfig()
	pages := BuildVocab([]uint64{1, 2, 3}, cfg.PageVocab)
	pcs := BuildVocab([]uint64{1, 2}, cfg.PCVocab)
	delta := NewAMMADelta(cfg, pcs, 0, 1)
	cd := AMMAComplexity(cfg, delta, cfg.DeltaClasses())
	if cd.Params != nn.CountParams(delta) || cd.Params == 0 {
		t.Fatal("params")
	}
	if cd.OPs <= 0 || cd.CriticalPath <= 0 {
		t.Fatal("ops/critical path")
	}
	if cd.CriticalPathClass != "O(l)" {
		t.Fatal("class")
	}
	lstm := NewLSTMDelta(cfg, 1)
	cl := LSTMComplexity(cfg, lstm, cfg.NumSegments+1, cfg.DeltaClasses())
	if cl.CriticalPathClass != "O(nl)" {
		t.Fatal("lstm class")
	}
	// The paper's Table 8 claim: the LSTM critical path grows with the
	// sequence length n while the attention path does not.
	long := cfg
	long.HistoryT = 64
	clLong := LSTMComplexity(long, lstm, cfg.NumSegments+1, cfg.DeltaClasses())
	cdLong := AMMAComplexity(long, delta, cfg.DeltaClasses())
	if clLong.CriticalPath <= cl.CriticalPath {
		t.Fatal("LSTM critical path must grow with n")
	}
	if cdLong.CriticalPath != cd.CriticalPath {
		t.Fatal("attention critical path must not depend on n")
	}
	if clLong.CriticalPath <= cdLong.CriticalPath {
		t.Fatalf("at n=64 LSTM path %d must exceed attention %d", clLong.CriticalPath, cdLong.CriticalPath)
	}
	// Compressed config shrinks both params and critical path.
	smallCfg := cfg
	smallCfg.AttnDim, smallCfg.FusionDim, smallCfg.Heads = 8, 8, 2
	smallDelta := NewAMMADelta(smallCfg, pcs, 0, 1)
	cs := AMMAComplexity(smallCfg, smallDelta, smallCfg.DeltaClasses())
	if cs.Params >= cd.Params || cs.CriticalPath >= cd.CriticalPath {
		t.Fatal("compression must shrink complexity")
	}
	_ = pages
}

func TestTrainErrors(t *testing.T) {
	cfg := SmallConfig()
	pcs := BuildVocab([]uint64{1}, cfg.PCVocab)
	m := NewAMMADelta(cfg, pcs, 0, 1)
	empty := &Dataset{Cfg: cfg, PCs: pcs}
	if err := TrainDelta(m, empty, TrainOptions{}); err == nil {
		t.Fatal("empty dataset must fail")
	}
}

func TestPrefetcherModelsSaveLoad(t *testing.T) {
	ds := synthDataset(t, 3000, 20)
	pm, err := TrainPrefetcherModels(ds, 2, TrainOptions{Epochs: 1, Seed: 3, MaxSamplesPerEpoch: 80})
	if err != nil {
		t.Fatal(err)
	}
	if pm.NumPhases() != 2 || len(pm.DeltaModels()) != 2 || len(pm.PageModels()) != 2 {
		t.Fatal("phase count")
	}
	var buf bytes.Buffer
	if err := pm.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadPrefetcherModels(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cfg != pm.Cfg {
		t.Fatalf("config mismatch: %+v vs %+v", got.Cfg, pm.Cfg)
	}
	if got.Pages.Size() != pm.Pages.Size() || got.PCs.Size() != pm.PCs.Size() {
		t.Fatal("vocab size mismatch")
	}
	// Predictions must be identical after the round trip.
	s := ds.Samples[0]
	want := pm.Deltas[0].DeltaScores(s)
	have := got.Deltas[0].DeltaScores(s)
	for i := range want {
		if math.Abs(want[i]-have[i]) > 1e-12 {
			t.Fatalf("delta score %d differs after load", i)
		}
	}
	wantP := pm.PageMs[1].TopPages(s, 3)
	haveP := got.PageMs[1].TopPages(s, 3)
	for i := range wantP {
		if wantP[i] != haveP[i] {
			t.Fatal("page prediction differs after load")
		}
	}
	// Vocab token mapping survives.
	for _, pg := range wantP {
		if got.Pages.Token(pg) != pm.Pages.Token(pg) {
			t.Fatal("vocab token mismatch")
		}
	}
}

func TestLoadPrefetcherModelsErrors(t *testing.T) {
	if _, err := LoadPrefetcherModels(bytes.NewReader(make([]byte, 200))); err == nil {
		t.Fatal("bad magic must fail")
	}
	if _, err := TrainPrefetcherModels(nil, 0, TrainOptions{}); err == nil {
		t.Fatal("zero phases must fail")
	}
}
