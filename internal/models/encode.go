package models

import (
	"fmt"
	"sort"

	"mpgraph/internal/tensor"
)

// Vocab is a frequency-capped tokenizer for pages or PCs. Token 0 is
// reserved for out-of-vocabulary values; tokens 1..Size-1 are assigned to
// the most frequent values seen during Build.
type Vocab struct {
	cap    int
	tokens map[uint64]int
	values []uint64 // token -> value; values[0] unused (OOV)
}

// BuildVocab assigns tokens to the most frequent values, capped at capacity.
func BuildVocab(values []uint64, capacity int) *Vocab {
	counts := map[uint64]int{}
	for _, v := range values {
		counts[v]++
	}
	type kv struct {
		v uint64
		n int
	}
	items := make([]kv, 0, len(counts))
	for v, n := range counts {
		items = append(items, kv{v, n})
	}
	sort.Slice(items, func(i, j int) bool {
		if items[i].n != items[j].n {
			return items[i].n > items[j].n
		}
		return items[i].v < items[j].v
	})
	voc := &Vocab{cap: capacity, tokens: make(map[uint64]int), values: []uint64{0}}
	for _, it := range items {
		if len(voc.values) >= capacity {
			break
		}
		voc.tokens[it.v] = len(voc.values)
		voc.values = append(voc.values, it.v)
	}
	return voc
}

// Token returns the token for v (0 when OOV).
//
//mpgraph:noalloc
func (v *Vocab) Token(x uint64) int { return v.tokens[x] }

// Value returns the value behind token t; ok=false for OOV/unknown tokens.
//
//mpgraph:noalloc
func (v *Vocab) Value(t int) (uint64, bool) {
	if t <= 0 || t >= len(v.values) {
		return 0, false
	}
	return v.values[t], true
}

// Size is the number of assigned tokens including OOV.
func (v *Vocab) Size() int { return len(v.values) }

// Capacity is the build-time cap (the embedding table size models use).
func (v *Vocab) Capacity() int { return v.cap }

// SegmentBlock splits a block address into cfg.NumSegments fields of
// cfg.SegmentBits bits (least-significant first) normalised to [0,1] — the
// TransFetch-style fine-grained address segmentation the spatial predictor
// consumes.
func SegmentBlock(cfg Config, block uint64) []float64 {
	out := make([]float64, cfg.NumSegments)
	SegmentBlockInto(cfg, block, out)
	return out
}

// SegmentBlockInto writes the segmentation of block into out (length
// cfg.NumSegments) without allocating.
//
//mpgraph:noalloc
func SegmentBlockInto(cfg Config, block uint64, out []float64) {
	mask := uint64(1)<<cfg.SegmentBits - 1
	norm := float64(mask)
	for s := 0; s < cfg.NumSegments; s++ {
		out[s] = float64((block>>(s*cfg.SegmentBits))&mask) / norm
	}
}

// AddrFeatureTensor encodes a window of block addresses as a
// [T x NumSegments] tensor of segment features.
func AddrFeatureTensor(cfg Config, blocks []uint64) *tensor.Tensor {
	t := tensor.Zeros(len(blocks), cfg.NumSegments)
	for i, b := range blocks {
		copy(t.Data[i*cfg.NumSegments:(i+1)*cfg.NumSegments], SegmentBlock(cfg, b))
	}
	return t
}

// DeltaBitmap encodes the set of observed future deltas as a multi-hot
// vector of cfg.DeltaClasses() entries.
func DeltaBitmap(cfg Config, deltas []int64) []float64 {
	out := make([]float64, cfg.DeltaClasses())
	for _, d := range deltas {
		if cls, ok := cfg.DeltaToClass(d); ok {
			out[cls] = 1
		}
	}
	return out
}

// BitmapDeltas decodes a thresholded bitmap back to deltas (tests and the
// prefetch controller's top-k path share DeltaToClass/ClassToDelta).
func BitmapDeltas(cfg Config, bits []float64, threshold float64) []int64 {
	var out []int64
	for cls, v := range bits {
		if v >= threshold {
			out = append(out, cfg.ClassToDelta(cls))
		}
	}
	return out
}

// TopKClasses returns the indices of the k largest logits in scores,
// descending.
func TopKClasses(scores []float64, k int) []int {
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		// Exact comparison is deliberate: equal scores fall through to the
		// index tie-break so the ranking is deterministic across runs.
		if scores[idx[a]] != scores[idx[b]] { //mpgraph:allow floateq -- exact tie-break keeps Top-K ordering deterministic
			return scores[idx[a]] > scores[idx[b]]
		}
		return idx[a] < idx[b]
	})
	if k > len(idx) {
		k = len(idx)
	}
	return idx[:k]
}

// BinaryCode returns the bits-wide binary encoding of class id (Section
// 6.1's binary-encoding compression: 2^16 classes become 16 sigmoid
// outputs).
func BinaryCode(id, bits int) ([]float64, error) {
	if id < 0 || id >= 1<<bits {
		return nil, fmt.Errorf("models: class %d does not fit in %d bits", id, bits)
	}
	out := make([]float64, bits)
	for b := 0; b < bits; b++ {
		if id&(1<<b) != 0 {
			out[b] = 1
		}
	}
	return out, nil
}

// DecodeBinary inverts BinaryCode by thresholding each bit at 0.5.
//
//mpgraph:noalloc
func DecodeBinary(bits []float64) int {
	id := 0
	for b, v := range bits {
		if v >= 0.5 {
			id |= 1 << b
		}
	}
	return id
}
