package models

import (
	"mpgraph/internal/invariant"
	"mpgraph/internal/tensor"
)

// PhaseSpecificDelta is AMMA-PS for spatial prediction: one delta model per
// phase, dispatched by the sample's phase label (at prefetch time the phase
// comes from the transition detector via the controller).
type PhaseSpecificDelta struct {
	Models []DeltaModel
}

// NewPhaseSpecificDelta builds one AMMA delta model per phase.
func NewPhaseSpecificDelta(cfg Config, pcs *Vocab, phases int, seed int64) *PhaseSpecificDelta {
	ps := &PhaseSpecificDelta{}
	for p := 0; p < phases; p++ {
		ps.Models = append(ps.Models, NewAMMADelta(cfg, pcs, 0, seed+int64(p)*7919))
	}
	return ps
}

func (ps *PhaseSpecificDelta) modelFor(phase int) DeltaModel {
	if len(ps.Models) == 0 {
		invariant.Fail("models: empty PhaseSpecificDelta")
	}
	return ps.Models[phase%len(ps.Models)]
}

// DeltaLoss implements DeltaModel (dispatching on s.Phase).
func (ps *PhaseSpecificDelta) DeltaLoss(s *Sample) *tensor.Tensor {
	return ps.modelFor(s.Phase).DeltaLoss(s)
}

// DeltaScores implements DeltaModel.
func (ps *PhaseSpecificDelta) DeltaScores(s *Sample) []float64 {
	return ps.modelFor(s.Phase).DeltaScores(s)
}

// Params implements nn.Module (union of all phase models).
func (ps *PhaseSpecificDelta) Params() []*tensor.Tensor {
	var out []*tensor.Tensor
	for _, m := range ps.Models {
		out = append(out, m.Params()...)
	}
	return out
}

// PhaseSpecificPage is AMMA-PS for temporal page prediction.
type PhaseSpecificPage struct {
	Models []PageModel
}

// NewPhaseSpecificPage builds one AMMA page model per phase.
func NewPhaseSpecificPage(cfg Config, pages, pcs *Vocab, phases int, seed int64) *PhaseSpecificPage {
	ps := &PhaseSpecificPage{}
	for p := 0; p < phases; p++ {
		ps.Models = append(ps.Models, NewAMMAPage(cfg, pages, pcs, 0, seed+int64(p)*7919))
	}
	return ps
}

func (ps *PhaseSpecificPage) modelFor(phase int) PageModel {
	if len(ps.Models) == 0 {
		invariant.Fail("models: empty PhaseSpecificPage")
	}
	return ps.Models[phase%len(ps.Models)]
}

// PageLoss implements PageModel.
func (ps *PhaseSpecificPage) PageLoss(s *Sample) *tensor.Tensor {
	return ps.modelFor(s.Phase).PageLoss(s)
}

// TopPages implements PageModel.
func (ps *PhaseSpecificPage) TopPages(s *Sample, k int) []uint64 {
	return ps.modelFor(s.Phase).TopPages(s, k)
}

// PageProbs implements PageProber when the per-phase models do.
func (ps *PhaseSpecificPage) PageProbs(s *Sample) []float64 {
	p, ok := ps.modelFor(s.Phase).(PageProber)
	if !ok {
		invariant.Failf("models: phase model %T cannot expose probabilities", ps.modelFor(s.Phase))
	}
	return p.PageProbs(s)
}

// Params implements nn.Module.
func (ps *PhaseSpecificPage) Params() []*tensor.Tensor {
	var out []*tensor.Tensor
	for _, m := range ps.Models {
		out = append(out, m.Params()...)
	}
	return out
}
