package models

import "mpgraph/internal/tensor"

// Batched int8 forwards. These MUST override the float batch methods the
// Q-models would otherwise inherit from their embedded float models, and
// they use only the exact kernels (per-row int8 GEMM, exact softmax/sigmoid,
// block-exact attention and mean): the int8 batch contract is bit-identity
// with sequential int8 inference, not 1e-9 closeness.

//mpgraph:noalloc
func (m *qModalityEncoder) encodeFeaturesBatchCtx(c *tensor.Ctx, x *tensor.Tensor, blocks int) *tensor.Tensor {
	return m.attn.ForwardBatchCtx(c, c.AddPosBatch(m.lin.ForwardCtx(c, x), m.src.pos, blocks), blocks)
}

//mpgraph:noalloc
func (m *qModalityEncoder) encodeTokensBatchCtx(c *tensor.Ctx, ids []int, blocks int) *tensor.Tensor {
	return m.attn.ForwardBatchCtx(c, c.AddPosBatch(m.src.table.ForwardCtx(c, ids), m.src.pos, blocks), blocks)
}

// forwardBatchCtx is qAMMACore.forwardCtx over a stacked batch.
//
//mpgraph:noalloc
func (qc *qAMMACore) forwardBatchCtx(c *tensor.Ctx, encA, encB *tensor.Tensor, ss []*Sample) *tensor.Tensor {
	blocks := len(ss)
	fused := qc.fusion.ForwardBatchCtx2(c, encA, encB, blocks) //mpgraph:allow noalloc -- fixed-arity fast path; the cross-package naming rule keys on a Ctx suffix
	if qc.src.phaseEmb != nil {
		ids := phaseIDsBatch(c, ss, qc.src.phaseEmb.Vocab()) //mpgraph:allow noalloc -- Vocab is a field read
		fused = c.AddRowPerBlock(fused, qc.src.phaseEmb.Table, ids, blocks)
	}
	for _, tl := range qc.trans {
		fused = tl.ForwardBatchCtx(c, fused, blocks)
	}
	return c.MeanRowsBatch(fused, blocks)
}

//mpgraph:noalloc
func (m *QAMMADelta) qlogitsBatchCtx(c *tensor.Ctx, ss []*Sample) *tensor.Tensor {
	t := batchT(ss)
	encA := m.qcore.modA.encodeFeaturesBatchCtx(c, addrFeatureTensorBatchCtx(c, m.cfg, ss, t), len(ss))
	encB := m.qcore.modB.encodeTokensBatchCtx(c, pcTokensBatchCtx(c, m.pcs, ss, t), len(ss))
	return m.qhead.ForwardCtx(c, m.qcore.forwardBatchCtx(c, encA, encB, ss))
}

// DeltaScoresBatchCtx implements DeltaScorerBatchCtx on the int8 path; the
// exact SigmoidInPlace keeps batch output bit-identical to sequential int8.
//
//mpgraph:noalloc
func (m *QAMMADelta) DeltaScoresBatchCtx(c *tensor.Ctx, ss []*Sample) *tensor.Tensor {
	return c.SigmoidInPlace(m.qlogitsBatchCtx(c, ss))
}

//mpgraph:noalloc
func (m *QAMMAPage) qlogitsBatchCtx(c *tensor.Ctx, ss []*Sample) *tensor.Tensor {
	t := batchT(ss)
	encA := m.qcore.modA.encodeTokensBatchCtx(c, pageTokensBatchCtx(c, m.pages, ss, t), len(ss))
	encB := m.qcore.modB.encodeTokensBatchCtx(c, pcTokensBatchCtx(c, m.pcs, ss, t), len(ss))
	return m.qhead.ForwardCtx(c, m.qcore.forwardBatchCtx(c, encA, encB, ss))
}

// TopPagesBatchAppendCtx implements PageTopperBatchCtx on the int8 path.
//
//mpgraph:noalloc
func (m *QAMMAPage) TopPagesBatchAppendCtx(c *tensor.Ctx, ss []*Sample, k int, dst [][]uint64) {
	scores := m.qlogitsBatchCtx(c, ss)
	for i := range ss {
		row := scores.Data[i*scores.Cols : (i+1)*scores.Cols]
		dst[i] = topPagesAppendCtx(c, m.pages, row, k, dst[i])
	}
}
