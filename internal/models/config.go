// Package models implements the paper's memory-access prediction models:
// the AMMA backbone (attention with multi-modality attention fusion), the
// spatial delta predictor and temporal page predictor built on it, the
// phase-informed (AMMA-PI) and phase-specific (AMMA-PS) variants, and the
// LSTM and vanilla-attention baselines of Tables 6-7 — plus the dataset
// extraction from LLC traces, the training/evaluation harness, and the
// Section 6 compression pipeline (binary page encoding, knowledge
// distillation, quantization) with the Table 8 complexity accounting.
package models

import "fmt"

// Config shapes every model in the package. The defaults mirror Table 5.
type Config struct {
	// HistoryT is the input window length (Table 5: 9).
	HistoryT int
	// LookForwardF is the label-collection window (Table 5: 256).
	LookForwardF int
	// AttnDim is the per-modality self-attention dimension (Table 5: 64).
	AttnDim int
	// FusionDim is the MMAF output dimension (Table 5: 128).
	FusionDim int
	// TransLayers is the Transformer layer count L (Table 5: 1).
	TransLayers int
	// Heads is the Transformer head count (Table 5: 4).
	Heads int
	// NumSegments and SegmentBits define the TransFetch-style address
	// segmentation: the block address is split into NumSegments fields of
	// SegmentBits bits each.
	NumSegments int
	SegmentBits int
	// DeltaRange bounds spatial predictions: deltas in
	// [-DeltaRange, +DeltaRange]\{0} blocks (a page is 64 blocks).
	DeltaRange int
	// PageVocab is the page-token vocabulary capacity (token 0 = OOV).
	PageVocab int
	// PCVocab is the PC-token vocabulary capacity (token 0 = OOV).
	PCVocab int
	// LSTMHidden is the baseline LSTM hidden size (Section 5.3.1: 256).
	LSTMHidden int
	// Seed drives parameter initialisation.
	Seed int64
}

// PaperConfig returns the Table 5 configuration.
func PaperConfig() Config {
	return Config{
		HistoryT:     9,
		LookForwardF: 256,
		AttnDim:      64,
		FusionDim:    128,
		TransLayers:  1,
		Heads:        4,
		NumSegments:  8,
		SegmentBits:  4,
		DeltaRange:   63,
		PageVocab:    4096,
		PCVocab:      256,
		LSTMHidden:   256,
		Seed:         1,
	}
}

// SmallConfig is a reduced-width configuration for fast tests and the
// default experiment scale (DESIGN.md §4); the architecture is unchanged.
func SmallConfig() Config {
	c := PaperConfig()
	c.LookForwardF = 48
	c.AttnDim = 16
	c.FusionDim = 32
	c.Heads = 2
	c.PageVocab = 1024
	c.PCVocab = 128
	c.LSTMHidden = 64
	return c
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.HistoryT < 1:
		return fmt.Errorf("models: HistoryT %d < 1", c.HistoryT)
	case c.LookForwardF < 1:
		return fmt.Errorf("models: LookForwardF %d < 1", c.LookForwardF)
	case c.AttnDim < 1 || c.FusionDim < 1:
		return fmt.Errorf("models: non-positive dims")
	case c.FusionDim%c.Heads != 0:
		return fmt.Errorf("models: FusionDim %d must divide by Heads %d", c.FusionDim, c.Heads)
	case c.TransLayers < 0:
		return fmt.Errorf("models: negative TransLayers")
	case c.NumSegments < 1 || c.SegmentBits < 1 || c.NumSegments*c.SegmentBits > 64:
		return fmt.Errorf("models: bad segmentation %dx%d bits", c.NumSegments, c.SegmentBits)
	case c.DeltaRange < 1 || c.DeltaRange > 512:
		return fmt.Errorf("models: DeltaRange %d out of range", c.DeltaRange)
	case c.PageVocab < 2 || c.PCVocab < 2:
		return fmt.Errorf("models: vocabularies need at least OOV + 1 tokens")
	case c.LSTMHidden < 1:
		return fmt.Errorf("models: LSTMHidden %d < 1", c.LSTMHidden)
	}
	return nil
}

// DeltaClasses is the multi-label output width of the delta predictor:
// 2*DeltaRange classes covering -DeltaRange..-1, +1..+DeltaRange.
func (c Config) DeltaClasses() int { return 2 * c.DeltaRange }

// DeltaToClass maps a block delta to its class index, ok=false if out of
// range or zero.
func (c Config) DeltaToClass(delta int64) (int, bool) {
	if delta == 0 || delta < -int64(c.DeltaRange) || delta > int64(c.DeltaRange) {
		return 0, false
	}
	if delta < 0 {
		return int(delta + int64(c.DeltaRange)), true // -R..-1 → 0..R-1
	}
	return int(delta) + c.DeltaRange - 1, true // 1..R → R..2R-1
}

// ClassToDelta inverts DeltaToClass.
func (c Config) ClassToDelta(class int) int64 {
	if class < c.DeltaRange {
		return int64(class) - int64(c.DeltaRange)
	}
	return int64(class - c.DeltaRange + 1)
}
