package models

import (
	"math"
	"testing"

	"mpgraph/internal/tensor"
)

// batchSamples builds B distinct same-length samples inside the test vocabs.
func batchSamples(cfg Config, b int) []*Sample {
	ss := make([]*Sample, b)
	for i := 0; i < b; i++ {
		blocks := make([]uint64, cfg.HistoryT)
		pcs := make([]uint64, cfg.HistoryT)
		for j := range blocks {
			blocks[j] = uint64(1<<14+(i*3+j)%40)<<6 + uint64((i+j)%7)
			pcs[j] = 0x400000 + 0x40*uint64((i+j)%5)
		}
		ss[i] = &Sample{Blocks: blocks, PCs: pcs, Phase: i % 3}
	}
	return ss
}

func batchTestVocabs(cfg Config) (pages, pcs *Vocab) {
	var pcVals, pageVals []uint64
	for i := 0; i < 40; i++ {
		pcVals = append(pcVals, 0x400000+0x40*uint64(i))
		pageVals = append(pageVals, uint64(1<<14+i))
	}
	return BuildVocab(pageVals, cfg.PageVocab), BuildVocab(pcVals, cfg.PCVocab)
}

// TestBatchMatchesSequential: the batched float tier must reproduce
// sequential fast-path scores within 1e-9 per model, page lists exactly, and
// batch results must be independent of batch composition (batch-1 bits ==
// batch-64 bits), which is the property that keeps sweep reports
// byte-identical across batch sizes.
func TestBatchMatchesSequential(t *testing.T) {
	cfg := SmallConfig()
	pages, pcs := batchTestVocabs(cfg)
	restore := tensor.SetGradEnabled(false)
	defer tensor.SetGradEnabled(restore)

	deltaModels := map[string]DeltaModel{
		"lstm-delta": NewLSTMDelta(cfg, 1),
		"attn-delta": NewAttnDelta(cfg, 2),
		"amma-delta": NewAMMADelta(cfg, pcs, 0, 3),
		"pi-delta":   NewAMMADelta(cfg, pcs, 3, 4),
	}
	pageModels := map[string]PageModel{
		"lstm-page": NewLSTMPage(cfg, pages, pcs, 6),
		"attn-page": NewAttnPage(cfg, pages, pcs, 7),
		"amma-page": NewAMMAPage(cfg, pages, pcs, 0, 8),
		"pi-page":   NewAMMAPage(cfg, pages, pcs, 3, 9),
	}

	seqCtx := tensor.NewCtx()
	for _, B := range []int{1, 8, 64} {
		ss := batchSamples(cfg, B)
		for name, m := range deltaModels {
			ctx := tensor.NewCtx()
			out := DeltaScoresBatchWith(ctx, m, ss)
			if out.Rows != B {
				t.Fatalf("%s B=%d: got %d rows", name, B, out.Rows)
			}
			for i, s := range ss {
				seq := DeltaScoresWith(seqCtx, m, s)
				row := out.Data[i*out.Cols : (i+1)*out.Cols]
				if len(seq) != len(row) {
					t.Fatalf("%s B=%d: row %d width %d vs %d", name, B, i, len(row), len(seq))
				}
				for j := range seq {
					if math.Abs(seq[j]-row[j]) > 1e-9 {
						t.Fatalf("%s B=%d row %d: score[%d] = %g batched vs %g sequential",
							name, B, i, j, row[j], seq[j])
					}
				}
				seqCtx.Reset()

				// Composition independence: the same sample alone must give
				// identical bits to its row inside the batch.
				soloCtx := tensor.NewCtx()
				solo := DeltaScoresBatchWith(soloCtx, m, ss[i:i+1])
				for j := range row {
					if math.Float64bits(solo.Data[j]) != math.Float64bits(row[j]) {
						t.Fatalf("%s B=%d row %d: batch-1 bits differ from batch-%d at %d",
							name, B, i, B, j)
					}
				}
			}
		}
		for name, m := range pageModels {
			ctx := tensor.NewCtx()
			dst := make([][]uint64, B)
			TopPagesBatchWith(ctx, m, ss, 3, dst)
			for i, s := range ss {
				seq := TopPagesWith(seqCtx, m, s, 3, nil)
				seqCtx.Reset()
				if len(seq) != len(dst[i]) {
					t.Fatalf("%s B=%d row %d: %d pages vs %d", name, B, i, len(dst[i]), len(seq))
				}
				for j := range seq {
					if seq[j] != dst[i][j] {
						t.Fatalf("%s B=%d row %d: page[%d] = %d batched vs %d sequential",
							name, B, i, j, dst[i][j], seq[j])
					}
				}
			}
		}
	}
}

// TestBatchMatchesSequentialInt8: the int8 batch path must be bit-identical
// to sequential int8 inference at every batch size.
func TestBatchMatchesSequentialInt8(t *testing.T) {
	cfg := SmallConfig()
	pages, pcs := batchTestVocabs(cfg)
	restore := tensor.SetGradEnabled(false)
	defer tensor.SetGradEnabled(restore)

	calib := batchSamples(cfg, 16)
	qd, err := QuantizeDelta(NewAMMADelta(cfg, pcs, 3, 3), calib)
	if err != nil {
		t.Fatal(err)
	}
	qp, err := QuantizePage(NewAMMAPage(cfg, pages, pcs, 3, 8), calib)
	if err != nil {
		t.Fatal(err)
	}

	seqCtx := tensor.NewCtx()
	for _, B := range []int{1, 8, 64} {
		ss := batchSamples(cfg, B)
		ctx := tensor.NewCtx()
		out := DeltaScoresBatchWith(ctx, qd, ss)
		for i, s := range ss {
			seq := DeltaScoresWith(seqCtx, qd, s)
			row := out.Data[i*out.Cols : (i+1)*out.Cols]
			for j := range seq {
				if math.Float64bits(seq[j]) != math.Float64bits(row[j]) {
					t.Fatalf("int8 delta B=%d row %d: score[%d] = %x batched vs %x sequential",
						B, i, j, math.Float64bits(row[j]), math.Float64bits(seq[j]))
				}
			}
			seqCtx.Reset()
		}

		dst := make([][]uint64, B)
		TopPagesBatchWith(ctx, qp, ss, 3, dst)
		for i, s := range ss {
			seq := TopPagesWith(seqCtx, qp, s, 3, nil)
			seqCtx.Reset()
			if len(seq) != len(dst[i]) {
				t.Fatalf("int8 page B=%d row %d: %d pages vs %d", B, i, len(dst[i]), len(seq))
			}
			for j := range seq {
				if seq[j] != dst[i][j] {
					t.Fatalf("int8 page B=%d row %d: page[%d] = %d vs %d", B, i, j, dst[i][j], seq[j])
				}
			}
		}
	}
}

// TestBatchZeroAlloc proves the stacked forward stays 0 allocs/op at batch 8
// and 64 once the arena is warm.
func TestBatchZeroAlloc(t *testing.T) {
	cfg := SmallConfig()
	pages, pcs := batchTestVocabs(cfg)
	restore := tensor.SetGradEnabled(false)
	defer tensor.SetGradEnabled(restore)

	calib := batchSamples(cfg, 16)
	qd, err := QuantizeDelta(NewAMMADelta(cfg, pcs, 3, 3), calib)
	if err != nil {
		t.Fatal(err)
	}

	models := map[string]DeltaModel{
		"lstm-delta":      NewLSTMDelta(cfg, 1),
		"amma-delta":      NewAMMADelta(cfg, pcs, 0, 3),
		"amma-delta-int8": qd,
	}
	_ = pages
	for name, m := range models {
		for _, B := range []int{8, 64} {
			ss := batchSamples(cfg, B)
			ctx := tensor.NewCtx()
			// Warm the arena slabs.
			for i := 0; i < 3; i++ {
				DeltaScoresBatchWith(ctx, m, ss)
				ctx.Reset()
			}
			avg := testing.AllocsPerRun(20, func() {
				DeltaScoresBatchWith(ctx, m, ss)
				ctx.Reset()
			})
			if avg != 0 {
				t.Fatalf("%s B=%d: %v allocs/op, want 0", name, B, avg)
			}
		}
	}
}

// --- benchmark pairs: batched vs sequential, float and int8 ---

func benchBatchDelta(b *testing.B, m DeltaModel, batch int, sequential bool) {
	cfg := SmallConfig()
	ss := batchSamples(cfg, batch)
	restore := tensor.SetGradEnabled(false)
	defer tensor.SetGradEnabled(restore)
	ctx := tensor.NewCtx()
	// Warm the arena slabs so the steady state (0 allocs/op on the batch
	// path) is what gets measured.
	for i := 0; i < 3; i++ {
		if sequential {
			for _, s := range ss {
				DeltaScoresWith(ctx, m, s)
				ctx.Reset()
			}
		} else {
			DeltaScoresBatchWith(ctx, m, ss)
			ctx.Reset()
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if sequential {
			for _, s := range ss {
				DeltaScoresWith(ctx, m, s)
				ctx.Reset()
			}
		} else {
			DeltaScoresBatchWith(ctx, m, ss)
			ctx.Reset()
		}
	}
}

func benchDeltaModel() DeltaModel {
	return NewLSTMDelta(SmallConfig(), 1)
}

func benchInt8DeltaModel(b *testing.B) DeltaModel {
	cfg := SmallConfig()
	_, pcs := batchTestVocabs(cfg)
	qd, err := QuantizeDelta(NewAMMADelta(cfg, pcs, 3, 3), batchSamples(cfg, 16))
	if err != nil {
		b.Fatal(err)
	}
	return qd
}

// One batched pass over 8 histories vs 8 sequential Operates — the "Legacy"
// benchmark is the sequential baseline mpgraph-bench pairs it with.
func BenchmarkOperateBatch8(b *testing.B)       { benchBatchDelta(b, benchDeltaModel(), 8, false) }
func BenchmarkOperateBatch8Legacy(b *testing.B) { benchBatchDelta(b, benchDeltaModel(), 8, true) }

func BenchmarkOperateBatch64(b *testing.B)       { benchBatchDelta(b, benchDeltaModel(), 64, false) }
func BenchmarkOperateBatch64Legacy(b *testing.B) { benchBatchDelta(b, benchDeltaModel(), 64, true) }

func BenchmarkOperateBatch8Int8(b *testing.B) { benchBatchDelta(b, benchInt8DeltaModel(b), 8, false) }
func BenchmarkOperateBatch8Int8Legacy(b *testing.B) {
	benchBatchDelta(b, benchInt8DeltaModel(b), 8, true)
}

func BenchmarkOperateBatch64Int8(b *testing.B) { benchBatchDelta(b, benchInt8DeltaModel(b), 64, false) }
func BenchmarkOperateBatch64Int8Legacy(b *testing.B) {
	benchBatchDelta(b, benchInt8DeltaModel(b), 64, true)
}
