package models

import (
	"bufio"
	"encoding/binary"
	"io"

	"mpgraph/internal/nn"
)

// Half-precision suite snapshots (DESIGN.md §13). Layout matches Save —
// header, vocabs, per-phase delta/page parameter blocks — with each block
// written by nn.SaveF16, roughly halving the artifact (vocabs and header
// stay exact; they are a sliver of the payload). LoadPrefetcherModels
// dispatches on the magic, so one load path serves both precisions and the
// f16 cut happens exactly once, at save time.

const snapMagicF16 = 0x4d505348 // "MPSH"

// SaveF16 serialises the artifact with binary16 parameters.
func (pm *PrefetcherModels) SaveF16(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	cfg := pm.Cfg
	hdr := []uint64{
		snapMagicF16, uint64(len(pm.Deltas)),
		uint64(cfg.HistoryT), uint64(cfg.LookForwardF), uint64(cfg.AttnDim),
		uint64(cfg.FusionDim), uint64(cfg.TransLayers), uint64(cfg.Heads),
		uint64(cfg.NumSegments), uint64(cfg.SegmentBits), uint64(cfg.DeltaRange),
		uint64(cfg.PageVocab), uint64(cfg.PCVocab), uint64(cfg.LSTMHidden),
		uint64(cfg.Seed),
	}
	for _, h := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, h); err != nil {
			return err
		}
	}
	for _, v := range []*Vocab{pm.Pages, pm.PCs} {
		if err := saveVocab(bw, v); err != nil {
			return err
		}
	}
	for i := range pm.Deltas {
		if err := nn.SaveF16(bw, pm.Deltas[i]); err != nil {
			return err
		}
		if err := nn.SaveF16(bw, pm.PageMs[i]); err != nil {
			return err
		}
	}
	return bw.Flush()
}
