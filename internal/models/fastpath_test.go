package models

import (
	"math"
	"testing"

	"mpgraph/internal/tensor"
)

// fastpathSample builds an inference-only sample inside the test vocabs.
func fastpathSample(cfg Config, phase int) *Sample {
	blocks := make([]uint64, cfg.HistoryT)
	pcs := make([]uint64, cfg.HistoryT)
	for i := range blocks {
		blocks[i] = uint64(1<<14+i)<<6 + uint64(i%7)
		pcs[i] = 0x400000 + 0x40*uint64(i%5)
	}
	return &Sample{Blocks: blocks, PCs: pcs, Phase: phase}
}

// The ctx scorers must reproduce the allocating slow path within float
// reassociation tolerance (fused kernels reorder summation), and the
// top-page decode must match exactly.
func TestCtxScorersMatchSlowPath(t *testing.T) {
	cfg := SmallConfig()
	var pcVals, pageVals []uint64
	for i := 0; i < 40; i++ {
		pcVals = append(pcVals, 0x400000+0x40*uint64(i))
		pageVals = append(pageVals, uint64(1<<14+i))
	}
	pcs := BuildVocab(pcVals, cfg.PCVocab)
	pages := BuildVocab(pageVals, cfg.PageVocab)
	s := fastpathSample(cfg, 1)
	ctx := tensor.NewCtx()

	restore := tensor.SetGradEnabled(false)
	defer tensor.SetGradEnabled(restore)

	deltaModels := map[string]DeltaModel{
		"lstm-delta": NewLSTMDelta(cfg, 1),
		"attn-delta": NewAttnDelta(cfg, 2),
		"amma-delta": NewAMMADelta(cfg, pcs, 0, 3),
		"pi-delta":   NewAMMADelta(cfg, pcs, 3, 4),
		"ps-delta":   NewPhaseSpecificDelta(cfg, pcs, 3, 5),
	}
	for name, m := range deltaModels {
		slow := m.DeltaScores(s)
		fast := DeltaScoresWith(ctx, m, s)
		if len(slow) != len(fast) {
			t.Fatalf("%s: score lengths %d vs %d", name, len(slow), len(fast))
		}
		for i := range slow {
			if math.Abs(slow[i]-fast[i]) > 1e-9 {
				t.Fatalf("%s: score[%d] = %g (slow) vs %g (fast)", name, i, slow[i], fast[i])
			}
		}
		ctx.Reset()
	}

	pageModels := map[string]PageModel{
		"lstm-page": NewLSTMPage(cfg, pages, pcs, 6),
		"attn-page": NewAttnPage(cfg, pages, pcs, 7),
		"amma-page": NewAMMAPage(cfg, pages, pcs, 0, 8),
		"pi-page":   NewAMMAPage(cfg, pages, pcs, 3, 9),
		"ps-page":   NewPhaseSpecificPage(cfg, pages, pcs, 3, 10),
	}
	for name, m := range pageModels {
		for _, k := range []int{1, 3} {
			slow := m.TopPages(s, k)
			fast := TopPagesWith(ctx, m, s, k, nil)
			if len(slow) != len(fast) {
				t.Fatalf("%s k=%d: lengths %d vs %d", name, k, len(slow), len(fast))
			}
			for i := range slow {
				if slow[i] != fast[i] {
					t.Fatalf("%s k=%d: page[%d] = %d (slow) vs %d (fast)", name, k, i, slow[i], fast[i])
				}
			}
			ctx.Reset()
		}
	}
}

// TopKClassesCtx must reproduce TopKClasses' ordering exactly, ties
// included, on top of the arena's index scratch.
func TestTopKClassesCtxMatches(t *testing.T) {
	ctx := tensor.NewCtx()
	scores := []float64{0.3, 0.9, 0.1, 0.9, 0.5, 0.0, 0.5, 0.7}
	for k := 0; k <= len(scores)+1; k++ {
		slow := TopKClasses(scores, k)
		fast := TopKClassesCtx(ctx, scores, k)
		if len(slow) != len(fast) {
			t.Fatalf("k=%d: lengths %d vs %d", k, len(slow), len(fast))
		}
		for i := range slow {
			if slow[i] != fast[i] {
				t.Fatalf("k=%d: class[%d] = %d (slow) vs %d (fast)", k, i, slow[i], fast[i])
			}
		}
		ctx.Reset()
	}
}

// Dispatchers fall back to the slow path when the ctx is nil or the model
// lacks the capability interface.
func TestDispatcherFallbacks(t *testing.T) {
	cfg := SmallConfig()
	pcVals := []uint64{0x400000, 0x400040}
	pcs := BuildVocab(pcVals, cfg.PCVocab)
	s := fastpathSample(cfg, 0)
	m := NewAMMADelta(cfg, pcs, 0, 1)

	restore := tensor.SetGradEnabled(false)
	defer tensor.SetGradEnabled(restore)

	slow := m.DeltaScores(s)
	viaNil := DeltaScoresWith(nil, m, s)
	for i := range slow {
		if math.Abs(slow[i]-viaNil[i]) > 1e-12 {
			t.Fatalf("nil-ctx dispatch diverged at %d", i)
		}
	}
}
