package analysis_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mpgraph/internal/analysis"
)

// writeModule lays out a throwaway module for loader tests.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for name, src := range files {
		path := filepath.Join(root, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

// TestLoadErrorsCarryPositions: a type error in a loaded package must
// surface with its file:line position (not just the package path), and
// every error must be listed, not only the first.
func TestLoadErrorsCarryPositions(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod": "module example.com/broken\n\ngo 1.22\n",
		"bad/bad.go": `package bad

func f() int { return "not an int" }

func g() string { return 42 }
`,
	})
	loader, err := analysis.NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	_, err = loader.Load([]string{"./bad"})
	if err == nil {
		t.Fatal("want type-check error, got nil")
	}
	msg := err.Error()
	if !strings.Contains(msg, "bad.go:3") {
		t.Errorf("error lacks first position: %q", msg)
	}
	if !strings.Contains(msg, "bad.go:5") {
		t.Errorf("error lacks second position (only first error reported): %q", msg)
	}
}

// TestLoadParseErrorsCarryPositions: syntax errors must also surface with
// positions.
func TestLoadParseErrorsCarryPositions(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod": "module example.com/syntax\n\ngo 1.22\n",
		"p/p.go": "package p\n\nfunc f() {\n",
	})
	loader, err := analysis.NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	_, err = loader.Load([]string{"./p"})
	if err == nil {
		t.Fatal("want parse error, got nil")
	}
	if !strings.Contains(err.Error(), "p.go:") {
		t.Errorf("parse error lacks position: %q", err.Error())
	}
}
