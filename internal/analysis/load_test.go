package analysis_test

import (
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	"mpgraph/internal/analysis"
)

// writeModule lays out a throwaway module for loader tests.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for name, src := range files {
		path := filepath.Join(root, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

// TestLoadErrorsCarryPositions: a type error in a loaded package must
// surface with its file:line position (not just the package path), and
// every error must be listed, not only the first.
func TestLoadErrorsCarryPositions(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod": "module example.com/broken\n\ngo 1.22\n",
		"bad/bad.go": `package bad

func f() int { return "not an int" }

func g() string { return 42 }
`,
	})
	loader, err := analysis.NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	_, err = loader.Load([]string{"./bad"})
	if err == nil {
		t.Fatal("want type-check error, got nil")
	}
	msg := err.Error()
	if !strings.Contains(msg, "bad.go:3") {
		t.Errorf("error lacks first position: %q", msg)
	}
	if !strings.Contains(msg, "bad.go:5") {
		t.Errorf("error lacks second position (only first error reported): %q", msg)
	}
}

// TestLoadHonorsBuildConstraints: a platform pair — one file with a
// GOOS/GOARCH-independent //go:build constraint excluding the host, one
// with the host's filename suffix — must load as a single declaration of
// each symbol, the way `go build` sees it, instead of failing to
// type-check as a redeclaration.
func TestLoadHonorsBuildConstraints(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod": "module example.com/tags\n\ngo 1.22\n",
		"p/fast_" + runtime.GOARCH + ".go": `package p

func impl() int { return 1 }
`,
		"p/portable.go": "//go:build !" + runtime.GOARCH + `

package p

func impl() int { return 0 }
`,
		"p/other.go": `package p

var V = impl()
`,
		// A foreign-platform suffix and a never-true //go:build line are
		// both invisible (each would redeclare impl otherwise).
		"p/fast_mips64.go": `package p

func impl() int { return 2 }
`,
		"p/disabled.go": `//go:build ignore

package p

func impl() int { return 3 }
`,
	})
	loader, err := analysis.NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Load([]string{"./p"})
	if err != nil {
		t.Fatalf("platform pair must load cleanly: %v", err)
	}
	if len(pkgs) != 1 || len(pkgs[0].Files) != 2 {
		t.Fatalf("want 1 package with 2 buildable files, got %d packages, %d files",
			len(pkgs), len(pkgs[0].Files))
	}
}

// TestLoadParseErrorsCarryPositions: syntax errors must also surface with
// positions.
func TestLoadParseErrorsCarryPositions(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod": "module example.com/syntax\n\ngo 1.22\n",
		"p/p.go": "package p\n\nfunc f() {\n",
	})
	loader, err := analysis.NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	_, err = loader.Load([]string{"./p"})
	if err == nil {
		t.Fatal("want parse error, got nil")
	}
	if !strings.Contains(err.Error(), "p.go:") {
		t.Errorf("parse error lacks position: %q", err.Error())
	}
}
