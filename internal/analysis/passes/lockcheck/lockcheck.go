// Package lockcheck proves the mutex discipline the mpgraph-serve daemon
// will depend on: a mutex acquired on some control-flow path must be
// released on every path out of the function, including the panic edges a
// call under the lock can take. Flow is tracked over the CFG layer
// (internal/analysis/cfg) with a may-held fixpoint: block entry state is
// the union of predecessor exits, so a lock leaked on any path is found.
//
// The pass reports five shapes:
//
//   - a mutex still held on some path reaching function exit ("may not be
//     released on every path");
//   - a call made while a manually-locked mutex has no deferred unlock —
//     if the callee panics, the lock escapes the function held;
//   - double Lock of the same (textual) receiver while already held;
//   - a channel send, receive or select while any lock is held;
//   - a call into mpgraph/internal/resilience (Guard/GuardVal) or an
//     mpgraph:recovers-marked helper while any lock is held — recovery
//     boundaries run arbitrary compute and must not extend a critical
//     section.
//
// Receivers are compared textually (types.ExprString), the same
// approximation the repo's other passes use for field paths: `s.mu` in one
// function is one lock. When no unlock for the mutex exists anywhere in the
// function, the suggested fix inserts `defer mu.Unlock()` directly after
// the acquisition; otherwise the release structure is a design choice the
// fix must not guess. Deliberate exceptions take
// //mpgraph:allow lockcheck -- <reason>.
package lockcheck

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"mpgraph/internal/analysis"
	"mpgraph/internal/analysis/cfg"
)

// Analyzer is the lockcheck pass.
var Analyzer = &analysis.Analyzer{
	Name:     "lockcheck",
	Doc:      "require mutexes to be released on every path out of a function, including panic paths, and never held across channel or resilience boundaries",
	Requires: []string{analysis.NeedCFG},
	Match: func(path string) bool {
		return path == "mpgraph" || strings.HasPrefix(path, "mpgraph/internal/")
	},
	Run: run,
}

// recoversMarker designates recovery-boundary helpers (shared with
// golifetime).
const recoversMarker = "mpgraph:recovers"

// resiliencePath is the recovery-boundary package.
const resiliencePath = "mpgraph/internal/resilience"

func run(pass *analysis.Pass) error {
	marked := markedDecls(pass)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkBody(pass, marked, fd.Body)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					checkBody(pass, marked, lit.Body)
				}
				return true
			})
		}
	}
	return nil
}

// markedDecls indexes this package's mpgraph:recovers-marked functions.
func markedDecls(pass *analysis.Pass) map[types.Object]bool {
	out := map[types.Object]bool{}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil || !strings.Contains(fd.Doc.Text(), recoversMarker) {
				continue
			}
			if obj := pass.TypesInfo.Defs[fd.Name]; obj != nil {
				out[obj] = true
			}
		}
	}
	return out
}

// eventKind is one lock-relevant occurrence inside a block node.
type eventKind int

const (
	evLock eventKind = iota
	evUnlock
	evDeferUnlock
	evChanOp
	evBoundary
	evCall
)

// event is one occurrence, in source order within its block.
type event struct {
	kind eventKind
	key  string // receiver render for lock/unlock events
	pos  token.Pos
	name string // callee render for evBoundary/evCall
}

// lockState is the per-key dataflow fact.
type lockState struct {
	held     bool
	deferred bool // a deferred unlock covers this key on this path
	lockPos  token.Pos
}

// checkBody analyses one function or literal body.
func checkBody(pass *analysis.Pass, marked map[types.Object]bool, body *ast.BlockStmt) {
	g := pass.CFG.FuncGraph(body)
	events := map[*cfg.Block][]event{}
	hasLock := false
	unlocked := map[string]bool{} // keys with any unlock (manual or deferred) in the body
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			evs := collect(pass, marked, n)
			for _, e := range evs {
				switch e.kind {
				case evLock:
					hasLock = true
				case evUnlock, evDeferUnlock:
					unlocked[e.key] = true
				}
			}
			events[b] = append(events[b], evs...)
		}
	}
	if !hasLock {
		return
	}

	// May-held fixpoint: in[b] = join over preds of out[p]. Reporting is a
	// separate sweep once the states converge, so iteration count cannot
	// duplicate or reorder findings.
	in := make([]map[string]lockState, len(g.Blocks))
	out := make([]map[string]lockState, len(g.Blocks))
	for changed := true; changed; {
		changed = false
		for _, b := range g.Blocks {
			st := join(in, out, b)
			if !sameState(in[b.Index], st) {
				in[b.Index] = st
				changed = true
			}
			cur := cloneState(st)
			for _, e := range events[b] {
				apply(nil, cur, e, nil, nil, false)
			}
			if !sameState(out[b.Index], cur) {
				out[b.Index] = cur
				changed = true
			}
		}
	}
	reported := map[token.Pos]bool{}
	leaked := map[string]bool{} // keys already reported through the panic-call rule
	var diags []analysis.Diagnostic
	for _, b := range g.Blocks {
		cur := cloneState(in[b.Index])
		for _, e := range events[b] {
			apply(&diags, cur, e, reported, leaked, true)
		}
	}
	// Exit imbalance: a key still held (and not deferred-released) entering
	// Exit was leaked on some path.
	exit := in[g.Exit.Index]
	var keys []string
	for k := range exit {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		st := exit[k]
		if !st.held || st.deferred || leaked[k] {
			continue
		}
		d := analysis.Diagnostic{
			Pos:     st.lockPos,
			Message: fmt.Sprintf("%s acquired here may not be released on every path to return", k),
		}
		if !unlocked[k] {
			if fix, ok := deferUnlockFix(pass.Fset, st.lockPos, k); ok {
				d.SuggestedFixes = []analysis.SuggestedFix{fix}
			}
		}
		diags = append(diags, d)
	}
	for _, d := range diags {
		pass.Report(d)
	}
}

// apply advances the state over one event, reporting when emit is set.
func apply(diags *[]analysis.Diagnostic, cur map[string]lockState, e event, reported map[token.Pos]bool, leaked map[string]bool, emit bool) {
	rep := func(pos token.Pos, format string, args ...any) {
		if !emit || reported[pos] {
			return
		}
		reported[pos] = true
		*diags = append(*diags, analysis.Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
	}
	switch e.kind {
	case evLock:
		st := cur[e.key]
		if st.held {
			rep(e.pos, "possible double lock of %s: already held on a path reaching this Lock", e.key)
		}
		st.held, st.lockPos = true, e.pos
		cur[e.key] = st
	case evUnlock:
		delete(cur, e.key)
	case evDeferUnlock:
		if st, ok := cur[e.key]; ok {
			st.deferred = true
			cur[e.key] = st
		} else {
			// defer before the Lock (idiomatic `defer mu.Unlock()` directly
			// after Lock is the common case; defer-first is rare but legal).
			cur[e.key] = lockState{deferred: true}
		}
	case evChanOp:
		for _, k := range heldKeys(cur) {
			rep(e.pos, "%s held across a channel operation; release the lock before blocking", k)
		}
	case evBoundary:
		for _, k := range heldKeys(cur) {
			rep(e.pos, "%s held across resilience boundary %s; recovery boundaries run arbitrary compute and must not extend a critical section", k, e.name)
		}
	case evCall:
		for _, k := range heldKeys(cur) {
			if st := cur[k]; !st.deferred {
				rep(e.pos, "%s is not released if %s panics; unlock with defer or release before the call", k, e.name)
				if emit {
					leaked[k] = true
				}
			}
		}
	}
}

// heldKeys lists the currently-held keys in sorted order.
func heldKeys(cur map[string]lockState) []string {
	var keys []string
	for k, st := range cur {
		if st.held {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys
}

// join unions the predecessors' exit states: held on any path counts as
// held; the deferred cover must hold on every path the key is held on.
func join(in, out []map[string]lockState, b *cfg.Block) map[string]lockState {
	st := map[string]lockState{}
	for _, p := range b.Preds {
		po := out[p.Index]
		for k, ps := range po {
			cur, ok := st[k]
			if !ok {
				st[k] = ps
				continue
			}
			cur.held = cur.held || ps.held
			cur.deferred = cur.deferred && ps.deferred
			if cur.lockPos == token.NoPos {
				cur.lockPos = ps.lockPos
			}
			st[k] = cur
		}
	}
	return st
}

func cloneState(st map[string]lockState) map[string]lockState {
	out := make(map[string]lockState, len(st))
	for k, v := range st {
		out[k] = v
	}
	return out
}

func sameState(a, b map[string]lockState) bool {
	if a == nil || len(a) != len(b) {
		return false
	}
	for k, va := range a {
		vb, ok := b[k]
		if !ok || va.held != vb.held || va.deferred != vb.deferred || va.lockPos != vb.lockPos {
			return false
		}
	}
	return true
}

// collect extracts the lock-relevant events from one block node, in source
// order, without descending into nested function literals (their bodies are
// analysed as functions of their own).
func collect(pass *analysis.Pass, marked map[types.Object]bool, n ast.Node) []event {
	var evs []event
	if ds, ok := n.(*ast.DeferStmt); ok {
		// defer mu.Unlock() — or a deferred closure releasing the lock.
		if key, kind, ok := lockMethod(pass.TypesInfo, ds.Call); ok && (kind == "Unlock" || kind == "RUnlock") {
			return []event{{kind: evDeferUnlock, key: key, pos: ds.Pos()}}
		}
		if lit, ok := ds.Call.Fun.(*ast.FuncLit); ok {
			ast.Inspect(lit.Body, func(m ast.Node) bool {
				if call, ok := m.(*ast.CallExpr); ok {
					if key, kind, ok := lockMethod(pass.TypesInfo, call); ok && (kind == "Unlock" || kind == "RUnlock") {
						evs = append(evs, event{kind: evDeferUnlock, key: key, pos: ds.Pos()})
					}
				}
				return true
			})
			return evs
		}
		return nil
	}
	ast.Inspect(n, func(m ast.Node) bool {
		switch x := m.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SendStmt:
			evs = append(evs, event{kind: evChanOp, pos: x.Pos()})
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				evs = append(evs, event{kind: evChanOp, pos: x.Pos()})
			}
		case *ast.SelectStmt:
			evs = append(evs, event{kind: evChanOp, pos: x.Pos()})
			return false // arm bodies live in their own blocks
		case *ast.CallExpr:
			if key, kind, ok := lockMethod(pass.TypesInfo, x); ok {
				switch kind {
				case "Lock", "RLock":
					evs = append(evs, event{kind: evLock, key: key, pos: x.Pos()})
				case "Unlock", "RUnlock":
					evs = append(evs, event{kind: evUnlock, key: key, pos: x.Pos()})
				}
				return true
			}
			if name, ok := boundaryCall(pass.TypesInfo, marked, x); ok {
				evs = append(evs, event{kind: evBoundary, pos: x.Pos(), name: name})
				return true
			}
			if name, ok := mayPanicCall(pass.TypesInfo, x); ok {
				evs = append(evs, event{kind: evCall, pos: x.Pos(), name: name})
			}
		}
		return true
	})
	return evs
}

// lockMethod recognises sync.Mutex/RWMutex method calls (including through
// embedding) and returns the textual receiver key plus the method name.
func lockMethod(info *types.Info, call *ast.CallExpr) (key, kind string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	obj, isFunc := info.Uses[sel.Sel].(*types.Func)
	if !isFunc || obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return "", "", false
	}
	switch obj.Name() {
	case "Lock", "RLock", "Unlock", "RUnlock":
		return types.ExprString(sel.X), obj.Name(), true
	}
	return "", "", false
}

// boundaryCall recognises recovery-boundary callees: the resilience package
// or an mpgraph:recovers-marked helper.
func boundaryCall(info *types.Info, marked map[types.Object]bool, call *ast.CallExpr) (string, bool) {
	obj := callee(info, call.Fun)
	if obj == nil {
		return "", false
	}
	if marked[obj] {
		return obj.Name(), true
	}
	if obj.Pkg() != nil && obj.Pkg().Path() == resiliencePath {
		return "resilience." + obj.Name(), true
	}
	return "", false
}

// mayPanicCall reports whether the call can panic out of the caller:
// anything but a conversion or a safe builtin. The explicit panic builtin
// counts — it is the clearest path out with the lock held.
func mayPanicCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	fun := ast.Unparen(call.Fun)
	obj := callee(info, fun)
	switch o := obj.(type) {
	case *types.Builtin:
		switch o.Name() {
		case "panic":
			return "panic", true
		default:
			return "", false // len, cap, append, make, close, ... never unwind past the caller usefully
		}
	case *types.TypeName:
		return "", false // conversion
	case nil:
		if _, isLit := fun.(*ast.FuncLit); isLit {
			return "(func literal)", true
		}
		return types.ExprString(fun), true
	default:
		return types.ExprString(fun), true
	}
}

// callee resolves the call target like dataflow.Callee but without needing
// the dataflow fact.
func callee(info *types.Info, fun ast.Expr) types.Object {
	switch e := ast.Unparen(fun).(type) {
	case *ast.Ident:
		return info.Uses[e]
	case *ast.SelectorExpr:
		return info.Uses[e.Sel]
	case *ast.IndexExpr:
		return callee(info, e.X)
	case *ast.IndexListExpr:
		return callee(info, e.X)
	default:
		return nil
	}
}

// deferUnlockFix inserts `defer <recv>.Unlock()` on the line after the Lock
// call, matching its indentation. Offered only when the function contains no
// unlock of the key at all, so the insertion cannot double-release.
func deferUnlockFix(fset *token.FileSet, lockPos token.Pos, key string) (analysis.SuggestedFix, bool) {
	tf := fset.File(lockPos)
	if tf == nil {
		return analysis.SuggestedFix{}, false
	}
	p := fset.Position(lockPos)
	line := p.Line
	var endOff int
	if line < tf.LineCount() {
		endOff = tf.Offset(tf.LineStart(line+1)) - 1 // the byte before the newline
	} else {
		endOff = tf.Size()
	}
	at := tf.Pos(endOff)
	indent := strings.Repeat("\t", p.Column-1)
	return analysis.SuggestedFix{
		Message: "release the mutex with defer immediately after acquiring it",
		TextEdits: []analysis.TextEdit{{
			Pos: at, End: at,
			NewText: "\n" + indent + "defer " + key + ".Unlock()",
		}},
	}, true
}
