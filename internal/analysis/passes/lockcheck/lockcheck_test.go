package lockcheck_test

import (
	"testing"

	"mpgraph/internal/analysis/analysistest"
	"mpgraph/internal/analysis/passes/lockcheck"
)

func TestLockcheck(t *testing.T) {
	analysistest.Run(t, "testdata", lockcheck.Analyzer, "a", "b")
}

// TestLockcheckFix checks the inserted defer unlock against the golden and
// that the fixed source analyses clean.
func TestLockcheckFix(t *testing.T) {
	analysistest.RunFix(t, "testdata", lockcheck.Analyzer, "fix")
}
