package fix

import "sync"

type counter struct {
	mu sync.Mutex
	n  int
}

// bump acquires and never releases; the fix inserts the deferred unlock.
func bump(c *counter) int {
	c.mu.Lock()
	c.n++
	return c.n
}
