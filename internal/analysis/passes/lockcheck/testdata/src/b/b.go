package b

import "sync"

type store struct {
	mu sync.Mutex
	rw sync.RWMutex
	n  int
}

func compute(n int) int { return n * 2 }

// deferred is the idiomatic shape: defer releases on every path, so calls
// under the lock are panic-safe.
func deferred(s *store) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return compute(s.n)
}

// balanced releases manually on every path and makes no calls while locked.
func balanced(s *store) int {
	s.mu.Lock()
	if s.n < 0 {
		s.mu.Unlock()
		return 0
	}
	v := s.n
	s.mu.Unlock()
	return compute(v)
}

// reads holds the read lock with a deferred release.
func reads(s *store) int {
	s.rw.RLock()
	defer s.rw.RUnlock()
	return s.n
}

// deferredClosure releases through a deferred literal.
func deferredClosure(s *store) int {
	s.mu.Lock()
	defer func() {
		s.mu.Unlock()
	}()
	return compute(s.n)
}

// builtinsLocked uses only non-panicking builtins while manually locked.
func builtinsLocked(s *store, xs []int) int {
	s.mu.Lock()
	n := len(xs) + cap(xs) + s.n
	s.mu.Unlock()
	return n
}

// relocked releases and reacquires in a loop: never doubly held.
func relocked(s *store, rounds int) {
	for i := 0; i < rounds; i++ {
		s.mu.Lock()
		s.n++
		s.mu.Unlock()
	}
}

// sendUnlocked releases before the channel operation.
func sendUnlocked(s *store, ch chan int) {
	s.mu.Lock()
	v := s.n
	s.mu.Unlock()
	ch <- v
}
