package a

import "sync"

type store struct {
	mu sync.Mutex
	rw sync.RWMutex
	n  int
}

func compute(n int) int { return n * 2 }

// recoverAll is a recovery boundary for the boundary-crossing case.
//
// mpgraph:recovers
func recoverAll() { _ = recover() }

// earlyReturn leaks the lock on the n < 0 path.
func earlyReturn(s *store) int {
	s.mu.Lock() // want `s\.mu acquired here may not be released on every path to return`
	if s.n < 0 {
		return 0
	}
	s.mu.Unlock()
	return s.n
}

// panicUnderLock makes a call while manually locked: a panic in the callee
// leaks the lock.
func panicUnderLock(s *store) int {
	s.mu.Lock()
	v := compute(s.n) // want `s\.mu is not released if compute panics; unlock with defer or release before the call`
	s.mu.Unlock()
	return v
}

// doubleLock locks twice on one path.
func doubleLock(s *store) {
	s.mu.Lock()
	if s.n > 0 {
		s.mu.Lock() // want `possible double lock of s\.mu: already held on a path reaching this Lock`
	}
	s.mu.Unlock()
	s.mu.Unlock()
}

// sendLocked blocks on a channel with the lock held.
func sendLocked(s *store, ch chan int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ch <- s.n // want `s\.mu held across a channel operation; release the lock before blocking`
}

// boundaryLocked runs a recovery boundary inside the critical section.
func boundaryLocked(s *store) {
	s.mu.Lock()
	defer s.mu.Unlock()
	recoverAll() // want `s\.mu held across resilience boundary recoverAll; recovery boundaries run arbitrary compute and must not extend a critical section`
}

// readLeak leaks an RLock on the early return.
func readLeak(s *store) int {
	s.rw.RLock() // want `s\.rw acquired here may not be released on every path to return`
	if s.n == 0 {
		return 0
	}
	s.rw.RUnlock()
	return s.n
}
