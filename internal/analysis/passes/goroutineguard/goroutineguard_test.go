package goroutineguard_test

import (
	"testing"

	"mpgraph/internal/analysis/analysistest"
	"mpgraph/internal/analysis/passes/goroutineguard"
)

func TestGoroutineGuard(t *testing.T) {
	analysistest.Run(t, "testdata", goroutineguard.Analyzer, "a", "b")
}
