// Package b is the negative fixture for goroutineguard: every goroutine
// reaches a marked recovery boundary, directly or through a local closure.
package b

import "sync"

// guard runs fn and converts a panic into an error.
//
// mpgraph:recovers
func guard(fn func() error) (err error) {
	defer func() {
		if v := recover(); v != nil {
			err = &panicErr{v}
		}
	}()
	return fn()
}

type panicErr struct{ value any }

func (e *panicErr) Error() string { return "recovered panic" }

func work(int) error { return nil }

// directBody: the spawned literal calls the boundary itself.
func directBody(n int) {
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = guard(func() error { return work(i) })
		}(i)
	}
	wg.Wait()
}

// throughClosure mirrors the scheduler: the boundary is wrapped in a local
// closure that the worker goroutines call.
func throughClosure(n, workers int) {
	run := func(i int) error {
		return guard(func() error { return work(i) })
	}
	errs := make([]error, n)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for i := w; i < n; i += workers {
				errs[i] = run(i)
			}
		}(w)
	}
	wg.Wait()
}

// spawnBoundary spawns the marked helper directly.
func spawnBoundary() {
	go guard(func() error { return work(0) }) //mpgraph:allow errdrop -- fixture: error handling is not under test
}
