// Package a is the positive fixture for goroutineguard: bare goroutines
// whose panics would kill the process.
package a

import "sync"

func work(int) {}

func barePool(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() { // want `goroutine without a resilience boundary`
			defer wg.Done()
			work(i)
		}()
	}
	wg.Wait()
}

func bareNamed() {
	go work(1) // want `goroutine without a resilience boundary`
}

// localRecover recovers, but carries no marker — ad-hoc recovery is
// invisible to callers and reviewers, so it does not count as a boundary.
func localRecover() {
	defer func() { _ = recover() }()
	work(2)
}

func bareAdHoc() {
	go localRecover() // want `goroutine without a resilience boundary`
}

func justified(done chan struct{}) {
	go func() { //mpgraph:allow goroutineguard -- fixture: closes a channel, cannot panic
		close(done)
	}()
}
