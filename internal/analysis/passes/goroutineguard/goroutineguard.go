// Package goroutineguard requires goroutines in the concurrency-bearing
// pipeline packages (internal/experiments, internal/prefetch) to route panics
// through a resilience boundary. A panic on a bare goroutine kills the whole
// process — no sweep report, no degradation event, no checkpoint flush — so
// every `go` statement there must reach a recovery point: a call into
// mpgraph/internal/resilience (Guard / GuardVal), or a call to a function
// whose doc comment carries the marker line
//
//	mpgraph:recovers
//
// either as the spawned function itself or somewhere in the spawned body
// (including through a locally-defined closure, the scheduler's shape). A
// deliberate bare goroutine needs a
// //mpgraph:allow goroutineguard -- <reason> directive.
package goroutineguard

import (
	"go/ast"
	"go/types"
	"strings"

	"mpgraph/internal/analysis"
)

// Analyzer is the goroutineguard pass.
var Analyzer = &analysis.Analyzer{
	Name: "goroutineguard",
	Doc:  "require goroutines in experiments/prefetch to route panics through a resilience boundary",
	Match: func(path string) bool {
		for _, p := range []string{"mpgraph/internal/experiments", "mpgraph/internal/prefetch"} {
			if path == p || strings.HasPrefix(path, p+"/") {
				return true
			}
		}
		return false
	},
	Run: run,
}

// marker designates a function as a panic-recovery boundary when present in
// its doc comment.
const marker = "mpgraph:recovers"

// resiliencePath is the package whose call sites count as boundaries without
// needing a marker.
const resiliencePath = "mpgraph/internal/resilience"

func run(pass *analysis.Pass) error {
	marked := markedDecls(pass)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			closures := closureBindings(pass, fd.Body)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				gs, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				c := &checker{pass: pass, marked: marked, closures: closures, visited: map[*ast.FuncLit]bool{}}
				if !c.guardedSpawn(gs.Call) {
					pass.Reportf(gs.Pos(), "goroutine without a resilience boundary: route panics through resilience.Guard/GuardVal or an mpgraph:recovers helper")
				}
				return true
			})
		}
	}
	return nil
}

// markedDecls indexes this package's mpgraph:recovers-marked functions by
// their type-checker object.
func markedDecls(pass *analysis.Pass) map[types.Object]bool {
	out := map[types.Object]bool{}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil || !strings.Contains(fd.Doc.Text(), marker) {
				continue
			}
			if obj := pass.TypesInfo.Defs[fd.Name]; obj != nil {
				out[obj] = true
			}
		}
	}
	return out
}

// closureBindings maps local variables to the function literals assigned to
// them (run := func(i int) error { ... }), so a goroutine body calling such a
// closure can be followed into it.
func closureBindings(pass *analysis.Pass, body *ast.BlockStmt) map[types.Object]*ast.FuncLit {
	out := map[types.Object]*ast.FuncLit{}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			lit, ok := rhs.(*ast.FuncLit)
			if !ok {
				continue
			}
			id, ok := as.Lhs[i].(*ast.Ident)
			if !ok {
				continue
			}
			obj := pass.TypesInfo.Defs[id]
			if obj == nil {
				obj = pass.TypesInfo.Uses[id]
			}
			if obj != nil {
				out[obj] = lit
			}
		}
		return true
	})
	return out
}

// checker walks one spawned call graph looking for a boundary.
type checker struct {
	pass     *analysis.Pass
	marked   map[types.Object]bool
	closures map[types.Object]*ast.FuncLit
	visited  map[*ast.FuncLit]bool
}

// guardedSpawn reports whether the `go` statement's call reaches a boundary:
// the callee itself is one, or (for literals and local closures) its body
// contains one.
func (c *checker) guardedSpawn(call *ast.CallExpr) bool {
	if c.boundaryCallee(call.Fun) {
		return true
	}
	if lit, ok := call.Fun.(*ast.FuncLit); ok {
		return c.guardedBody(lit)
	}
	if id, ok := call.Fun.(*ast.Ident); ok {
		if lit := c.closureFor(id); lit != nil {
			return c.guardedBody(lit)
		}
	}
	return false
}

// guardedBody reports whether the literal's body calls a boundary, following
// local closures at most once each.
func (c *checker) guardedBody(lit *ast.FuncLit) bool {
	if c.visited[lit] {
		return false
	}
	c.visited[lit] = true
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if c.boundaryCallee(call.Fun) {
			found = true
			return false
		}
		if id, ok := call.Fun.(*ast.Ident); ok {
			if inner := c.closureFor(id); inner != nil && c.guardedBody(inner) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// closureFor resolves an identifier to a locally-bound function literal.
func (c *checker) closureFor(id *ast.Ident) *ast.FuncLit {
	obj := c.pass.TypesInfo.Uses[id]
	if obj == nil {
		obj = c.pass.TypesInfo.Defs[id]
	}
	return c.closures[obj]
}

// boundaryCallee reports whether the call target is a recovery boundary: a
// function from mpgraph/internal/resilience, or one of this package's
// mpgraph:recovers-marked functions.
func (c *checker) boundaryCallee(fun ast.Expr) bool {
	var obj types.Object
	switch e := fun.(type) {
	case *ast.Ident:
		obj = c.pass.TypesInfo.Uses[e]
	case *ast.SelectorExpr:
		obj = c.pass.TypesInfo.Uses[e.Sel]
	case *ast.IndexExpr: // generic instantiation: resilience.GuardVal[T](...)
		return c.boundaryCallee(e.X)
	default:
		return false
	}
	if obj == nil {
		return false
	}
	if c.marked[obj] {
		return true
	}
	return obj.Pkg() != nil && obj.Pkg().Path() == resiliencePath
}
