package seededrand_test

import (
	"testing"

	"mpgraph/internal/analysis/analysistest"
	"mpgraph/internal/analysis/passes/seededrand"
)

func TestSeededRand(t *testing.T) {
	analysistest.Run(t, "testdata", seededrand.Analyzer, "a", "b")
}
