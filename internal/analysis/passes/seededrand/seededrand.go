// Package seededrand forbids nondeterministic randomness in library code.
// Every experiment in this repository must be replayable from an explicit
// seed (DESIGN.md §6): per-seed reproducibility is what makes the paper's
// accuracy/coverage tables comparable across runs. The analyzer flags
//
//   - calls to math/rand's package-level functions (rand.Intn, rand.Seed,
//     ...), which draw from the shared global source;
//   - seeds derived from time.Now() inside rand.New/rand.NewSource/rand.Seed
//     arguments.
//
// Constructing explicitly seeded generators (rand.New(rand.NewSource(seed)))
// is the sanctioned pattern and is not flagged.
package seededrand

import (
	"go/ast"
	"go/types"
	"strings"

	"mpgraph/internal/analysis"
)

// Analyzer is the seededrand pass.
var Analyzer = &analysis.Analyzer{
	Name: "seededrand",
	Doc:  "forbid global math/rand state and time-derived seeds so runs replay from explicit seeds",
	Match: func(path string) bool {
		return path == "mpgraph" || strings.HasPrefix(path, "mpgraph/internal/")
	},
	Run: run,
}

// allowedConstructors are the package-level math/rand functions that do not
// touch the global source.
var allowedConstructors = map[string]bool{"New": true, "NewSource": true, "NewZipf": true}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			pkgName, fn := pkgLevelCallee(pass, call)
			if pkgName == "" {
				return true
			}
			isRand := pkgName == "math/rand" || pkgName == "math/rand/v2"
			if !isRand {
				return true
			}
			if !allowedConstructors[fn] {
				pass.Reportf(call.Pos(), "call to global math/rand.%s: thread an explicitly seeded *rand.Rand instead", fn)
				return true
			}
			// Seed expressions must not be wall-clock derived.
			for _, arg := range call.Args {
				if tn := findTimeNow(pass, arg); tn != nil {
					pass.Reportf(tn.Pos(), "time.Now()-derived seed in rand.%s: experiments must replay from explicit seeds", fn)
				}
			}
			return true
		})
	}
	return nil
}

// pkgLevelCallee resolves a call of the form pkg.Fn() to the imported
// package path and function name, or ("", "") if the callee is anything
// else (method, local function, variable).
func pkgLevelCallee(pass *analysis.Pass, call *ast.CallExpr) (pkgPath, fn string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	ident, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", ""
	}
	pn, ok := pass.TypesInfo.Uses[ident].(*types.PkgName)
	if !ok {
		return "", ""
	}
	return pn.Imported().Path(), sel.Sel.Name
}

// findTimeNow returns the first time.Now call inside expr, if any.
func findTimeNow(pass *analysis.Pass, expr ast.Expr) ast.Node {
	var found ast.Node
	ast.Inspect(expr, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if pkg, fn := pkgLevelCallee(pass, call); pkg == "time" && fn == "Now" {
			found = call
			return false
		}
		return true
	})
	return found
}
