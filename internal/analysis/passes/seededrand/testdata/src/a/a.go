// Package a is the positive fixture for seededrand.
package a

import (
	"math/rand"
	"time"
)

func globalDraws() int {
	rand.Seed(42)       // want `global math/rand\.Seed`
	n := rand.Intn(10)  // want `global math/rand\.Intn`
	f := rand.Float64() // want `global math/rand\.Float64`
	return n + int(f)
}

func wallClockSeed() *rand.Rand {
	src := rand.NewSource(time.Now().UnixNano()) // want `time.Now\(\)-derived seed`
	return rand.New(src)
}

// explicitSeed is the sanctioned pattern: no findings.
func explicitSeed(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}
