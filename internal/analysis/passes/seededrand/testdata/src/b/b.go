// Package b is the negative fixture for seededrand: explicitly seeded
// generators threaded as values, plus unrelated time use, trigger nothing.
package b

import (
	"math/rand"
	"time"
)

type sampler struct {
	rng *rand.Rand
}

func newSampler(seed int64) *sampler {
	return &sampler{rng: rand.New(rand.NewSource(seed))}
}

func (s *sampler) draw(n int) int { return s.rng.Intn(n) }

// elapsed uses time.Now for measurement, not seeding — allowed.
func elapsed(start time.Time) time.Duration { return time.Now().Sub(start) }
