// Package noalloc verifies the repository's zero-allocation inference
// surface statically. A function whose doc comment carries a
// //mpgraph:noalloc directive promises that its steady-state execution
// performs no heap allocation — the property the AllocsPerRun gates
// (internal/core and internal/prefetch zeroalloc_test.go) measure
// dynamically. The analyzer rejects, inside a marked function:
//
//   - make / new calls and conversions between string and byte/rune slices;
//   - append whose destination is not a caller-provided parameter (growing
//     a caller's buffer is the sanctioned amortised-reuse pattern; growing
//     a local escapes the arena discipline);
//   - slice or map composite literals, and address-taken composite
//     literals (value struct literals live on the stack and are allowed);
//   - string concatenation (+ or += on strings);
//   - closures that capture variables (a capturing func literal is a heap
//     object) and go statements;
//   - calls to functions that are not proven allocation-free. Every callee
//     with a body — same package or not — is judged by its cross-package
//     fact (internal/analysis/facts), computed bottom-up over the module's
//     import graph, so the serve→prefetch→models→nn→tensor hot path is
//     proven end to end rather than trusted at package edges. A finding for
//     a broken callee carries the provenance chain down to the line that
//     actually allocates. The only remaining trust is facts.StdlibNoAlloc
//     (math, math/bits, runtime, sync/atomic) and bodiless assembly stubs,
//     whose own //mpgraph:noalloc marker is their contract. Interface and
//     func-value calls cannot be resolved and are reported.
//
// The nil-receiver fallback idiom is understood: statements inside an
// `if x == nil { ... }` guard are the sanctioned allocating slow path
// (tensor.Ctx dispatch) and are skipped, as are the arguments of a direct
// panic(...) call (a terminating path — the invariant helpers' formatted
// failure messages never run in steady state). Known-amortised allocations —
// a slab's growth fallback, the one-off parallel fan-out closure in gemm —
// carry //mpgraph:allow noalloc -- <reason> line directives, which the fact
// layer honours too. Variadic call sites and interface-value boxing are not
// modelled; AllocsPerRun remains the ground truth this analyzer
// approximates.
package noalloc

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"mpgraph/internal/analysis"
	"mpgraph/internal/analysis/dataflow"
	"mpgraph/internal/analysis/facts"
)

// Marker is the doc-comment directive that opts a function in.
const Marker = "mpgraph:noalloc"

// exemptPkgs is the closed standard-library trust set, shared with the fact
// layer. It contains no in-repo packages: module-internal callees are
// proven from their own facts, never assumed.
var exemptPkgs = facts.StdlibNoAlloc

// Analyzer is the noalloc pass.
var Analyzer = &analysis.Analyzer{
	Name:     "noalloc",
	Doc:      "verify //mpgraph:noalloc functions statically: no make/new/append-to-local/composite-literal/string-concat/capturing-closure, and every callee proven allocation-free via cross-package facts",
	Requires: []string{analysis.NeedDataflow, analysis.NeedFacts},
	Match: func(path string) bool {
		return path == "mpgraph" || strings.HasPrefix(path, "mpgraph/internal/")
	},
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hasMarker(fd) {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

func hasMarker(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		// Directive style only: the line must start with the marker, so
		// prose that merely mentions //mpgraph:noalloc does not opt in.
		if c.Text == "//"+Marker || strings.HasPrefix(c.Text, "//"+Marker+" ") {
			return true
		}
	}
	return false
}

// checkFunc walks one marked function with the shared allocation scanner
// (facts.ScanAlloc — the same rules the fact layer proves every body
// against), reporting direct violations at their positions and vetting each
// remaining call site against the callee's cross-package fact.
func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	report := func(pos token.Pos, format string, args ...any) {
		pass.Reportf(pos, "%s is marked //mpgraph:noalloc but %s",
			fd.Name.Name, fmt.Sprintf(format, args...))
	}
	facts.ScanAlloc(pass.TypesInfo, pass.Pkg, fd,
		func(pos token.Pos, reason string) { report(pos, "%s", reason) },
		func(call *ast.CallExpr) { checkCall(pass, fd, call, report) })
}

func checkCall(pass *analysis.Pass, fd *ast.FuncDecl, call *ast.CallExpr, report func(token.Pos, string, ...any)) {
	obj := dataflow.Callee(pass.TypesInfo, call)
	f, ok := obj.(*types.Func)
	if !ok {
		// Func-value or otherwise unresolvable call.
		report(call.Pos(), "makes a dynamic call the analyzer cannot verify")
		return
	}
	f = f.Origin()
	pkg := f.Pkg()
	if pkg == nil {
		return // universe-scope methods (error.Error): no allocation
	}
	if fact := pass.Facts.ForFunc(f); fact != nil {
		if fact.NoAlloc {
			return
		}
		chain := pass.Facts.Chain(pkg.Path(), fact)
		d := analysis.Diagnostic{
			Pos: call.Pos(),
			Message: fmt.Sprintf("%s is marked //mpgraph:noalloc but calls %s, which is not allocation-free (%s)",
				fd.Name.Name, calleeName(pass, f), strings.Join(chain, " -> ")),
			Provenance: chain,
		}
		pass.Report(d)
		return
	}
	// No fact: the callee is outside the analysis set. Interface methods
	// land here too — their resolved *types.Func is the interface's, which
	// has no body to summarise.
	if !exemptPkgs[pkg.Path()] {
		report(call.Pos(), "calls %s.%s, which is outside the trusted no-alloc set", pkg.Name(), f.Name())
	}
}

// calleeName renders a callee for the finding message: bare symbol for
// same-package calls (matching the pre-facts message shape), qualified by
// package name otherwise.
func calleeName(pass *analysis.Pass, f *types.Func) string {
	if f.Pkg() == pass.Pkg {
		return f.Name()
	}
	return f.Pkg().Name() + "." + f.Name()
}
