// Package noalloc verifies the repository's zero-allocation inference
// surface statically. A function whose doc comment carries a
// //mpgraph:noalloc directive promises that its steady-state execution
// performs no heap allocation — the property the AllocsPerRun gates
// (internal/core and internal/prefetch zeroalloc_test.go) measure
// dynamically. The analyzer rejects, inside a marked function:
//
//   - make / new calls and conversions between string and byte/rune slices;
//   - append whose destination is not a caller-provided parameter (growing
//     a caller's buffer is the sanctioned amortised-reuse pattern; growing
//     a local escapes the arena discipline);
//   - slice or map composite literals, and address-taken composite
//     literals (value struct literals live on the stack and are allowed);
//   - string concatenation (+ or += on strings);
//   - closures that capture variables (a capturing func literal is a heap
//     object) and go statements;
//   - calls to functions the analyzer cannot vouch for. Same-package
//     callees must themselves be marked //mpgraph:noalloc (the package
//     call graph makes the obligation transitive). Cross-package callees
//     are trusted when they live in an exempt package (math, math/bits,
//     runtime, sync/atomic, the invariant failure helpers, trace bit
//     arithmetic), are methods on an arena context (receiver type named
//     Ctx), or follow the fast-path naming convention (suffix "Ctx" or
//     "Into"); anything else is reported. Interface and func-value calls
//     cannot be resolved and are reported.
//
// The nil-receiver fallback idiom is understood: statements inside an
// `if x == nil { ... }` guard are the sanctioned allocating slow path
// (tensor.Ctx dispatch) and are skipped. Known-amortised allocations — a
// slab's growth fallback, the one-off parallel fan-out closure in gemm —
// carry //mpgraph:allow noalloc -- <reason> line directives. Variadic call
// sites and interface-value boxing are not modelled; AllocsPerRun remains
// the ground truth this analyzer approximates.
package noalloc

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"mpgraph/internal/analysis"
	"mpgraph/internal/analysis/dataflow"
)

// Marker is the doc-comment directive that opts a function in.
const Marker = "mpgraph:noalloc"

// exemptPkgs are packages whose functions are trusted not to allocate on
// the paths the kernels use.
var exemptPkgs = map[string]bool{
	"math":                       true,
	"math/bits":                  true,
	"runtime":                    true,
	"sync/atomic":                true,
	"mpgraph/internal/invariant": true, // failure path: terminates the run
	"mpgraph/internal/trace":     true, // pure bit arithmetic on addresses
}

// Analyzer is the noalloc pass.
var Analyzer = &analysis.Analyzer{
	Name:     "noalloc",
	Doc:      "verify //mpgraph:noalloc functions statically: no make/new/append-to-local/composite-literal/string-concat/capturing-closure, and only marked or trusted callees",
	Requires: []string{analysis.NeedDataflow},
	Match: func(path string) bool {
		return path == "mpgraph" || strings.HasPrefix(path, "mpgraph/internal/")
	},
	Run: run,
}

func run(pass *analysis.Pass) error {
	marked := markedFuncs(pass)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hasMarker(fd) {
				continue
			}
			checkFunc(pass, fd, marked)
		}
	}
	return nil
}

// markedFuncs collects the type objects of every //mpgraph:noalloc function
// in the package, so same-package calls can be verified transitively.
func markedFuncs(pass *analysis.Pass) map[types.Object]bool {
	marked := map[types.Object]bool{}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || !hasMarker(fd) {
				continue
			}
			if obj := pass.TypesInfo.Defs[fd.Name]; obj != nil {
				marked[obj] = true
			}
		}
	}
	return marked
}

func hasMarker(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		// Directive style only: the line must start with the marker, so
		// prose that merely mentions //mpgraph:noalloc does not opt in.
		if c.Text == "//"+Marker || strings.HasPrefix(c.Text, "//"+Marker+" ") {
			return true
		}
	}
	return false
}

// params collects the function's parameter objects (including the
// receiver): append may grow these, nothing else.
func params(info *types.Info, fd *ast.FuncDecl) map[types.Object]bool {
	out := map[types.Object]bool{}
	addField := func(f *ast.Field) {
		for _, name := range f.Names {
			if obj := info.Defs[name]; obj != nil {
				out[obj] = true
			}
		}
	}
	if fd.Recv != nil {
		for _, f := range fd.Recv.List {
			addField(f)
		}
	}
	for _, f := range fd.Type.Params.List {
		addField(f)
	}
	return out
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl, marked map[types.Object]bool) {
	info := pass.TypesInfo
	paramObjs := params(info, fd)
	report := func(pos token.Pos, format string, args ...any) {
		pass.Reportf(pos, "%s is marked //mpgraph:noalloc but %s",
			fd.Name.Name, fmt.Sprintf(format, args...))
	}

	var check func(root ast.Node)
	check = func(root ast.Node) {
		ast.Inspect(root, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.IfStmt:
				if isNilGuard(info, s.Cond) {
					// The nil-receiver dispatch idiom: the guarded block is
					// the sanctioned allocating fallback.
					if s.Init != nil {
						check(s.Init)
					}
					if s.Else != nil {
						check(s.Else)
					}
					return false
				}
			case *ast.CallExpr:
				checkCall(pass, s, marked, paramObjs, report)
			case *ast.UnaryExpr:
				if s.Op == token.AND {
					if _, ok := ast.Unparen(s.X).(*ast.CompositeLit); ok {
						report(s.Pos(), "takes the address of a composite literal")
					}
				}
			case *ast.CompositeLit:
				if tv, ok := info.Types[s]; ok {
					switch tv.Type.Underlying().(type) {
					case *types.Slice, *types.Map:
						report(s.Pos(), "builds a slice or map literal")
					}
				}
			case *ast.FuncLit:
				if capturesOuter(info, pass.Pkg, s) {
					report(s.Pos(), "builds a capturing closure")
				}
			case *ast.GoStmt:
				report(s.Pos(), "starts a goroutine")
			case *ast.BinaryExpr:
				if s.Op == token.ADD && isStringType(info.Types[s].Type) {
					report(s.Pos(), "concatenates strings")
				}
			case *ast.AssignStmt:
				if s.Tok == token.ADD_ASSIGN && len(s.Lhs) == 1 {
					if tv, ok := info.Types[s.Lhs[0]]; ok && isStringType(tv.Type) {
						report(s.Pos(), "concatenates strings")
					}
				}
			}
			return true
		})
	}
	check(fd.Body)
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr, marked, paramObjs map[types.Object]bool, report func(token.Pos, string, ...any)) {
	info := pass.TypesInfo

	// Type conversions: only string <-> []byte/[]rune copies the data.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			src, ok := info.Types[call.Args[0]]
			if ok && stringSliceConversion(tv.Type, src.Type) {
				report(call.Pos(), "converts between string and slice")
			}
		}
		return
	}

	// Builtins.
	if id := rootIdent(call.Fun); id != nil {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				report(call.Pos(), "calls make")
			case "new":
				report(call.Pos(), "calls new")
			case "append":
				if len(call.Args) > 0 {
					dst := rootIdent(call.Args[0])
					if dst == nil || !paramObjs[info.Uses[dst]] {
						name := "an expression"
						if dst != nil {
							name = dst.Name
						}
						report(call.Pos(), "appends to %s, which is not a caller-provided parameter", name)
					}
				}
			}
			return
		}
	}

	obj := dataflow.Callee(info, call)
	f, ok := obj.(*types.Func)
	if !ok {
		// Func-value or otherwise unresolvable call.
		report(call.Pos(), "makes a dynamic call the analyzer cannot verify")
		return
	}
	// Origin maps an instantiated generic method (slab[float64].take) back
	// to the declaration the marker was collected from.
	if marked[f] || marked[f.Origin()] {
		return
	}
	pkg := f.Pkg()
	switch {
	case pkg == nil:
		// Universe-scope methods (error.Error): no allocation.
	case pkg == pass.Pkg:
		report(call.Pos(), "calls %s, which is not marked //mpgraph:noalloc", f.Name())
	case exemptPkgs[pkg.Path()]:
	case ctxMethod(f):
	case strings.HasSuffix(f.Name(), "Ctx") || strings.HasSuffix(f.Name(), "Into"):
		// Fast-path naming convention: the callee's own package vets it.
	default:
		report(call.Pos(), "calls %s.%s, which is outside the trusted no-alloc set", pkg.Name(), f.Name())
	}
}

// ctxMethod reports whether f is a method on an arena context type (a named
// type called Ctx) — the tensor arena API, trusted across packages.
func ctxMethod(f *types.Func) bool {
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "Ctx"
}

// rootIdent unwraps an expression to its base identifier, if any.
func rootIdent(e ast.Expr) *ast.Ident {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return x
	case *ast.SelectorExpr:
		return x.Sel
	}
	return nil
}

// isNilGuard matches `x == nil` / `nil == x` conditions.
func isNilGuard(info *types.Info, cond ast.Expr) bool {
	be, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || be.Op != token.EQL {
		return false
	}
	return isNil(info, be.X) || isNil(info, be.Y)
}

func isNil(info *types.Info, e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	_, isNilObj := info.Uses[id].(*types.Nil)
	return isNilObj
}

func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// stringSliceConversion reports a conversion between string and a byte or
// rune slice in either direction (both copy).
func stringSliceConversion(dst, src types.Type) bool {
	return (isStringType(dst) && isByteOrRuneSlice(src)) ||
		(isStringType(src) && isByteOrRuneSlice(dst))
}

func isByteOrRuneSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune ||
		b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

// capturesOuter reports whether the func literal references a variable
// declared outside it (other than package-level variables and struct
// fields) — the condition under which the closure is heap-allocated.
func capturesOuter(info *types.Info, pkg *types.Package, lit *ast.FuncLit) bool {
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		if v.Parent() == pkg.Scope() {
			return true // package-level variable: not a capture
		}
		if v.Pos() < lit.Pos() || v.Pos() >= lit.End() {
			found = true
			return false
		}
		return true
	})
	return found
}
