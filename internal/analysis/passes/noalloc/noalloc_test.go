package noalloc_test

import (
	"testing"

	"mpgraph/internal/analysis/analysistest"
	"mpgraph/internal/analysis/passes/noalloc"
)

func TestNoalloc(t *testing.T) {
	analysistest.Run(t, "testdata", noalloc.Analyzer, "a", "b", "xa")
}
