// Package b holds noalloc negatives: marked functions that stay within the
// discipline, plus each escape hatch the analyzer honours.
package b

import "math"

//mpgraph:noalloc
func leaf(xs []float64) float64 {
	s := 0.0
	for _, v := range xs {
		s += math.Abs(v) // exempt package
	}
	return s
}

// callsMarked chains through another marked function: the obligation is
// discharged transitively.
//
//mpgraph:noalloc
func callsMarked(xs []float64) float64 {
	return leaf(xs)
}

// appendToParam grows a caller-provided buffer — the sanctioned amortised
// reuse pattern.
//
//mpgraph:noalloc
func appendToParam(dst []int, v int) []int {
	return append(dst, v)
}

type ctx struct{ buf []float64 }

// nilGuard allocates only on the nil-receiver fallback path, which the
// analyzer skips as the sanctioned slow-path dispatch idiom.
//
//mpgraph:noalloc
func nilGuard(c *ctx, n int) []float64 {
	if c == nil {
		return make([]float64, n)
	}
	return c.buf[:n]
}

type pair struct{ a, b int }

// valueLiteral returns a plain struct value: stack-allocated, not flagged.
//
//mpgraph:noalloc
func valueLiteral(a, b int) pair {
	return pair{a, b}
}

// allowed documents a deliberate allocation with the line directive.
//
//mpgraph:noalloc
func allowed(n int) []int {
	return make([]int, n) //mpgraph:allow noalloc -- growth fallback exercised in tests only
}

// unmarked functions may allocate freely.
func unmarked() []int {
	return []int{1, 2, 3}
}

// scale carries no marker, but its body proves allocation-free — the fact
// layer vouches for it, so callers need no naming convention or marker
// trust.
func scale(xs []float64, k float64) {
	for i := range xs {
		xs[i] *= k
	}
}

// callsProven discharges its obligation through the unmarked callee's
// computed fact.
//
//mpgraph:noalloc
func callsProven(xs []float64) {
	scale(xs, 2)
}

// failf mirrors the invariant helpers: the panic argument's allocations
// never run in steady state, so the terminating path is exempt.
//
//mpgraph:noalloc
func failf(ok bool, a, b string) {
	if !ok {
		panic("mismatch: " + a + b)
	}
}
