// Package bdep is the dependency half of the cross-package obligation
// fixture: it carries no markers at all. Its facts alone decide what
// importers may call.
package bdep

// Dot is provably allocation-free; the fact layer exports NoAlloc=true and
// importers' obligations discharge through it with no marker or naming
// convention.
func Dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Grow allocates; its exported fact breaks any importer's chain.
func Grow(n int) []float64 {
	return make([]float64, n)
}

// Wrap is clean itself but inherits Grow's allocation — the provenance chain
// an importer sees walks through Wrap to the leaf.
func Wrap(n int) []float64 {
	return Grow(n)
}
