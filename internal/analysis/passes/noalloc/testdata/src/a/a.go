// Package a holds noalloc positives: every allocation construct the
// analyzer detects, inside marked functions.
package a

//mpgraph:noalloc
func MakeSlice(n int) []int {
	return make([]int, n) // want `MakeSlice is marked //mpgraph:noalloc but calls make`
}

//mpgraph:noalloc
func NewInt() *int {
	return new(int) // want `NewInt is marked //mpgraph:noalloc but calls new`
}

//mpgraph:noalloc
func GrowLocal(xs []int) []int {
	var local []int
	local = append(local, xs...) // want `GrowLocal is marked //mpgraph:noalloc but appends to local, which is not a caller-provided parameter`
	return local
}

//mpgraph:noalloc
func SliceLit() []int {
	return []int{1, 2, 3} // want `SliceLit is marked //mpgraph:noalloc but builds a slice or map literal`
}

type point struct{ x, y int }

//mpgraph:noalloc
func EscapingStruct() *point {
	return &point{1, 2} // want `EscapingStruct is marked //mpgraph:noalloc but takes the address of a composite literal`
}

//mpgraph:noalloc
func Concat(a, b string) string {
	return a + b // want `Concat is marked //mpgraph:noalloc but concatenates strings`
}

//mpgraph:noalloc
func Closure(n int) func() int {
	return func() int { return n } // want `Closure is marked //mpgraph:noalloc but builds a capturing closure`
}

func helper(n int) []float64 { return make([]float64, n) }

//mpgraph:noalloc
func CallsUnproven(n int) {
	helper(n) // want `CallsUnproven is marked //mpgraph:noalloc but calls helper, which is not allocation-free \(a\.helper: calls make at a\.go:\d+\)`
}

// wrapper is clean itself but inherits helper's allocation; the chain in
// the finding walks through it to the leaf.
func wrapper(n int) []float64 { return helper(n) }

//mpgraph:noalloc
func CallsChain(n int) {
	wrapper(n) // want `CallsChain is marked //mpgraph:noalloc but calls wrapper, which is not allocation-free \(a\.wrapper -> a\.helper: calls make at a\.go:\d+\)`
}

//mpgraph:noalloc
func Dynamic(f func()) {
	f() // want `Dynamic is marked //mpgraph:noalloc but makes a dynamic call the analyzer cannot verify`
}

//mpgraph:noalloc
func Spawn(f func()) {
	go f() // want `Spawn is marked //mpgraph:noalloc but starts a goroutine` `Spawn is marked //mpgraph:noalloc but makes a dynamic call the analyzer cannot verify`
}

//mpgraph:noalloc
func Stringify(bs []byte) string {
	return string(bs) // want `Stringify is marked //mpgraph:noalloc but converts between string and slice`
}
