// Package a holds noalloc positives: every allocation construct the
// analyzer detects, inside marked functions.
package a

//mpgraph:noalloc
func MakeSlice(n int) []int {
	return make([]int, n) // want `MakeSlice is marked //mpgraph:noalloc but calls make`
}

//mpgraph:noalloc
func NewInt() *int {
	return new(int) // want `NewInt is marked //mpgraph:noalloc but calls new`
}

//mpgraph:noalloc
func GrowLocal(xs []int) []int {
	var local []int
	local = append(local, xs...) // want `GrowLocal is marked //mpgraph:noalloc but appends to local, which is not a caller-provided parameter`
	return local
}

//mpgraph:noalloc
func SliceLit() []int {
	return []int{1, 2, 3} // want `SliceLit is marked //mpgraph:noalloc but builds a slice or map literal`
}

type point struct{ x, y int }

//mpgraph:noalloc
func EscapingStruct() *point {
	return &point{1, 2} // want `EscapingStruct is marked //mpgraph:noalloc but takes the address of a composite literal`
}

//mpgraph:noalloc
func Concat(a, b string) string {
	return a + b // want `Concat is marked //mpgraph:noalloc but concatenates strings`
}

//mpgraph:noalloc
func Closure(n int) func() int {
	return func() int { return n } // want `Closure is marked //mpgraph:noalloc but builds a capturing closure`
}

func helper(xs []float64) { clear(xs) }

//mpgraph:noalloc
func CallsUnmarked(xs []float64) {
	helper(xs) // want `CallsUnmarked is marked //mpgraph:noalloc but calls helper, which is not marked //mpgraph:noalloc`
}

//mpgraph:noalloc
func Dynamic(f func()) {
	f() // want `Dynamic is marked //mpgraph:noalloc but makes a dynamic call the analyzer cannot verify`
}

//mpgraph:noalloc
func Spawn(f func()) {
	go f() // want `Spawn is marked //mpgraph:noalloc but starts a goroutine` `Spawn is marked //mpgraph:noalloc but makes a dynamic call the analyzer cannot verify`
}

//mpgraph:noalloc
func Stringify(bs []byte) string {
	return string(bs) // want `Stringify is marked //mpgraph:noalloc but converts between string and slice`
}
