// Package xa exercises cross-package obligations: marked functions calling
// into bdep are judged by bdep's exported facts, not by markers, naming, or
// package-level trust.
package xa

import "bdep"

//mpgraph:noalloc
func UsesProven(a, b []float64) float64 {
	return bdep.Dot(a, b)
}

//mpgraph:noalloc
func UsesBroken(n int) {
	bdep.Grow(n) // want `UsesBroken is marked //mpgraph:noalloc but calls bdep\.Grow, which is not allocation-free \(bdep\.Grow: calls make at bdep\.go:\d+\)`
}

//mpgraph:noalloc
func UsesChain(n int) {
	bdep.Wrap(n) // want `UsesChain is marked //mpgraph:noalloc but calls bdep\.Wrap, which is not allocation-free \(bdep\.Wrap -> bdep\.Grow: calls make at bdep\.go:\d+\)`
}
