// Package b is the negative fixture for addrhelpers: constant folding,
// non-geometry shifts, variable shift amounts, and narrower integer types
// trigger nothing.
package b

const tableSize = 1 << 12 // constant-folded: both operands constant

func hashFold(x uint64) uint64 { return x ^ x>>33 }

func variableShift(x uint64, bits uint) uint64 { return x >> bits }

func narrowType(x uint32) uint32 { return x >> 6 }

func powerOfTwoCheck(n int) bool { return n&(n-1) == 0 }

func lowBits(x uint64) uint64 { return x & 0xFF }
