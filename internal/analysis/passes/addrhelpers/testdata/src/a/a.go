// Package a is the positive fixture for addrhelpers.
package a

func blockOf(addr uint64) uint64 {
	return addr >> 6 // want `raw address geometry arithmetic \(>> 6 = BlockBits\)`
}

func pageOf(addr uint64) uint64 {
	return addr >> 12 // want `raw address geometry arithmetic \(>> 12 = PageBits\)`
}

func blockAddr(block uint64) uint64 {
	return block << 6 // want `raw address geometry arithmetic \(<< 6 = BlockBits\)`
}

func blockOffset(block uint64) uint64 {
	return block & 63 // want `raw address geometry arithmetic \(& 63 = block offset mask\)`
}

func pageAlign(addr uint64) uint64 {
	return addr &^ 4095 // want `raw address geometry arithmetic \(&\^ 4095 = page offset mask\)`
}

func maskOnLeft(addr uint64) uint64 {
	return 63 & addr // want `raw address geometry arithmetic \(& 63 = block offset mask\)`
}

func packedKeyJustified(pc, offset uint64) uint64 {
	return pc<<6 ^ offset //mpgraph:allow addrhelpers -- fixture: packs a 6-bit table key, not address geometry
}
