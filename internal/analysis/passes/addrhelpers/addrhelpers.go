// Package addrhelpers keeps the cache-line and page geometry in one place:
// internal/trace owns BlockBits/PageBits and the Block/Page/PageOfBlock/
// BlockOffset helpers, and every other package must go through them. The
// analyzer flags shift/mask expressions on uint64 operands that use the
// geometry constants directly —
//
//	x >> 6, x << 6, x >> 12, x << 12, x & 63, x &^ 63, x & 4095, x &^ 4095
//
// — outside internal/trace. Hard-coded 6s and 12s are how a "line size is
// 64 B" assumption leaks across a codebase and breaks the day a different
// geometry is simulated. Deliberate non-address bit packing can carry a
// //mpgraph:allow addrhelpers -- <reason> directive.
package addrhelpers

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"

	"mpgraph/internal/analysis"
)

// Analyzer is the addrhelpers pass.
var Analyzer = &analysis.Analyzer{
	Name: "addrhelpers",
	Doc:  "flag raw >>/<</&/&^ address geometry arithmetic outside internal/trace",
	Match: func(path string) bool {
		return path != "mpgraph/internal/trace" &&
			(path == "mpgraph" || strings.HasPrefix(path, "mpgraph/internal/") || strings.HasPrefix(path, "mpgraph/cmd/") || strings.HasPrefix(path, "mpgraph/examples/"))
	},
	Run: run,
}

// shiftAmounts and maskValues are the block/page geometry constants
// (64-byte lines, 4 KiB pages) whose raw use is reserved to internal/trace.
var (
	shiftAmounts = map[int64]string{6: "BlockBits", 12: "PageBits"}
	maskValues   = map[int64]string{63: "block offset mask", 4095: "page offset mask"}
)

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok {
				return true
			}
			var table map[int64]string
			switch be.Op {
			case token.SHR, token.SHL:
				table = shiftAmounts
			case token.AND, token.AND_NOT:
				table = maskValues
			default:
				return true
			}
			// Exactly one side must be a constant from the geometry table
			// and the other a non-constant uint64 (an address-like value);
			// constant-folded expressions like 1<<24 are fine.
			x, y := be.X, be.Y
			if be.Op == token.AND || be.Op == token.AND_NOT {
				// Masks may appear on either side of &.
				if cv := constVal(pass, x); cv != nil && constVal(pass, y) == nil {
					x, y = y, x
				}
			}
			cv := constVal(pass, y)
			if cv == nil || constVal(pass, x) != nil {
				return true
			}
			v, ok := constant.Int64Val(constant.ToInt(*cv))
			if !ok {
				return true
			}
			name, hit := table[v]
			if !hit || !isUint64(pass, x) {
				return true
			}
			pass.Reportf(be.OpPos, "raw address geometry arithmetic (%s %d = %s): use the internal/trace block/page helpers", be.Op, v, name)
			return true
		})
	}
	return nil
}

func constVal(pass *analysis.Pass, e ast.Expr) *constant.Value {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil {
		return nil
	}
	return &tv.Value
}

func isUint64(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Uint64 || b.Kind() == types.Uintptr)
}
