package addrhelpers_test

import (
	"testing"

	"mpgraph/internal/analysis/analysistest"
	"mpgraph/internal/analysis/passes/addrhelpers"
)

func TestAddrHelpers(t *testing.T) {
	analysistest.Run(t, "testdata", addrhelpers.Analyzer, "a", "b")
}
