// Package resilience is a miniature of the real injection surface: a Point
// roster, an Injector with the Fire/Arm/ArmProb shape, and a ParseInjector
// for the CLI grammar. The injectpoint analyzer matches these by shape, so
// this fixture stands in for mpgraph/internal/resilience.
package resilience

// Point names a fault-injection site.
type Point string

// The declared roster.
const (
	// PointAlpha is fired by package a's pipeline.
	PointAlpha Point = "alpha"
	// PointBeta is armed by package a's chaos drill.
	PointBeta Point = "beta"
	// PointGhost is declared but nothing in the fixture module fires or
	// arms it — the whole-program absence check reports it at this line.
	PointGhost Point = "ghost" // want `injection point "ghost" is declared in the roster but never fired or armed anywhere in the module`
)

// Points lists the valid injection points.
func Points() []Point {
	return []Point{PointAlpha, PointBeta, PointGhost}
}

// Kind selects how an armed point fails.
type Kind string

// Injector is the harness.
type Injector struct{ arms map[Point]Kind }

// Fire records a hit at point.
func (in *Injector) Fire(point Point) error {
	if in == nil || in.arms[point] == "" {
		return nil
	}
	return nil
}

// Arm arms point to fail with kind on the n-th hit.
func (in *Injector) Arm(point Point, kind Kind, n uint64) *Injector {
	in.arms[point] = kind
	return in
}

// ArmProb arms point to fail with probability p.
func (in *Injector) ArmProb(point Point, kind Kind, p float64) *Injector {
	in.arms[point] = kind
	return in
}

// ParseInjector parses a point:kind@N / point:kind~P spec.
func ParseInjector(spec string, seed int64) (*Injector, error) {
	_ = spec
	_ = seed
	return &Injector{arms: map[Point]Kind{}}, nil
}
