// Package a exercises every injectpoint defect class against the fixture
// roster, plus the clean shapes that must stay silent.
package a

import "resilience"

// Fires covers the happy path and the misspelling Fire would silently
// swallow at runtime.
func Fires(in *resilience.Injector) {
	_ = in.Fire(resilience.PointAlpha)
	_ = in.Fire("alpha")
	_ = in.Fire("alhpa") // want `fires undeclared injection point "alhpa" \(declared: alpha, beta, ghost\)`
}

// Arms covers the arming seam: a misspelled constant here is exactly what
// Injector.Arm rejects at runtime through the invariant helper.
func Arms(in *resilience.Injector) {
	in.Arm(resilience.PointBeta, "panic", 3)
	in.Arm("betaa", "panic", 1)      // want `arms undeclared injection point "betaa" \(declared: alpha, beta, ghost\)`
	in.ArmProb("bta", "err", 0.5)    // want `arms undeclared injection point "bta" \(declared: alpha, beta, ghost\)`
	in.ArmProb("beta", "err", 0.25)  // roster hit: silent
}

// Specs covers the CLI grammar.
func Specs() {
	_, _ = resilience.ParseInjector("alpha:err@1,beta:panic~0.5", 1)
	_, _ = resilience.ParseInjector("alhpa:err@1", 1)  // want `injection spec part "alhpa:err@1" names undeclared point "alhpa" \(declared: alpha, beta, ghost\)`
	_, _ = resilience.ParseInjector("alpha:boom@1", 1) // want `injection spec part "alpha:boom@1" names unknown kind "boom" \(valid: corrupt, err, panic\)`
	_, _ = resilience.ParseInjector("alpha:err@0", 1)  // want `injection spec part "alpha:err@0" has hit count "0" \(want an integer >= 1\)`
	_, _ = resilience.ParseInjector("alpha:err~1.5", 1) // want `injection spec part "alpha:err~1\.5" has probability "1\.5" outside \[0, 1\]`
	_, _ = resilience.ParseInjector("alpha", 1)        // want `injection spec part "alpha" is malformed \(want point:kind@N or point:kind~P\)`
	_, _ = resilience.ParseInjector("alpha:err", 1)    // want `injection spec part "alpha:err" is missing @N or ~P`
}
