// Package injectpoint cross-checks the fault-injection surface against the
// declared roster. The resilience package declares a closed set of injection
// points (`type Point`, enumerated by `Points()`); production code fires them
// (`Injector.Fire`), chaos tests arm them (`Arm`/`ArmProb`), and the CLI arms
// them through `ParseInjector` spec strings. A misspelled point literal at any
// of those seams fails only at runtime — Arm panics through the invariant
// helper, ParseInjector returns an error, and a Fire of an unknown point
// silently never fires, so a chaos drill against it would "pass" without
// injecting anything. This analyzer moves all three defects to vet time:
//
//   - a constant Point literal passed to Fire/Arm/ArmProb that is not on the
//     declaring package's roster is reported at the call site;
//   - a constant spec string passed to ParseInjector is parsed against the
//     real grammar (point:kind@N, point:kind~P; N >= 1, P in [0, 1], kind in
//     err/panic/corrupt) and each defect is reported with the roster;
//   - in whole-module runs, a roster point that no function anywhere fires or
//     arms is reported at its declaration — dead chaos surface (the check is
//     skipped when any call passes a non-constant point, recorded as "*" in
//     the facts, since the roster could then be exercised dynamically).
//
// Call sites are matched by shape, not import path — a method named
// Fire/Arm/ArmProb whose first parameter is a named type called Point, and a
// function named ParseInjector in a package that declares a roster — so
// analysistest fixtures can carry their own miniature resilience package.
// The roster itself and every function's fired/armed literals come from the
// cross-package fact store (internal/analysis/facts), which is also what
// makes the whole-module absence check possible: Finish sees every package's
// summary, not one package at a time.
package injectpoint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strconv"
	"strings"

	"mpgraph/internal/analysis"
	"mpgraph/internal/analysis/dataflow"
)

// Analyzer is the injectpoint pass.
var Analyzer = &analysis.Analyzer{
	Name:     "injectpoint",
	Doc:      "check injection-point literals (Fire/Arm/ArmProb/ParseInjector) against the declared resilience.Points roster, and flag declared points never fired anywhere in the module",
	Requires: []string{analysis.NeedFacts},
	Run:      run,
	Finish:   finish,
}

var validKinds = map[string]bool{"err": true, "panic": true, "corrupt": true}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			f, ok := dataflow.Callee(pass.TypesInfo, call).(*types.Func)
			if !ok {
				return true
			}
			switch {
			case isPointCall(f):
				checkPointArg(pass, f, call)
			case f.Name() == "ParseInjector":
				checkSpecArg(pass, f, call)
			}
			return true
		})
	}
	return nil
}

// isPointCall matches the injector arming/firing surface by shape: a
// function named Fire, Arm, or ArmProb whose first parameter is a named type
// called Point (the same shape rule the fact layer uses).
func isPointCall(f *types.Func) bool {
	switch f.Name() {
	case "Fire", "Arm", "ArmProb":
	default:
		return false
	}
	return pointParam(f) != nil
}

// pointParam returns the named Point type of the function's first parameter,
// or nil when the shape does not match.
func pointParam(f *types.Func) *types.Named {
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Params().Len() == 0 {
		return nil
	}
	named, ok := sig.Params().At(0).Type().(*types.Named)
	if !ok || named.Obj().Name() != "Point" {
		return nil
	}
	return named
}

// rosterFor returns the declared point set and import path of the package
// that owns the Point type, or nil when it declares no roster.
func rosterFor(pass *analysis.Pass, owner *types.Package) (map[string]bool, string) {
	if owner == nil {
		return nil, ""
	}
	pf := pass.Facts.Pkg(owner.Path())
	if pf == nil || len(pf.Points) == 0 {
		return nil, ""
	}
	set := make(map[string]bool, len(pf.Points))
	for _, p := range pf.Points {
		set[p.Name] = true
	}
	return set, owner.Path()
}

// checkPointArg vets a constant Point argument against the roster of the
// package declaring the Point type.
func checkPointArg(pass *analysis.Pass, f *types.Func, call *ast.CallExpr) {
	named := pointParam(f)
	roster, _ := rosterFor(pass, named.Obj().Pkg())
	if roster == nil || len(call.Args) == 0 {
		return
	}
	val, ok := constString(pass.TypesInfo, call.Args[0])
	if !ok || roster[val] {
		return
	}
	verb := "fires"
	if f.Name() != "Fire" {
		verb = "arms"
	}
	pass.Reportf(call.Args[0].Pos(), "%s undeclared injection point %q (declared: %s)",
		verb, val, rosterNames(roster))
}

// checkSpecArg vets a constant spec string passed to a roster package's
// ParseInjector against the CLI grammar, so a bad -inject flag value baked
// into code or docs-by-example fails at vet time instead of process start.
func checkSpecArg(pass *analysis.Pass, f *types.Func, call *ast.CallExpr) {
	roster, _ := rosterFor(pass, f.Pkg())
	if roster == nil || len(call.Args) == 0 {
		return
	}
	spec, ok := constString(pass.TypesInfo, call.Args[0])
	if !ok || strings.TrimSpace(spec) == "" {
		return
	}
	pos := call.Args[0].Pos()
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		point, rest, found := strings.Cut(part, ":")
		if !found {
			pass.Reportf(pos, "injection spec part %q is malformed (want point:kind@N or point:kind~P)", part)
			continue
		}
		if !roster[point] {
			pass.Reportf(pos, "injection spec part %q names undeclared point %q (declared: %s)", part, point, rosterNames(roster))
		}
		var kind, arg string
		probabilistic := false
		if k, a, ok := strings.Cut(rest, "@"); ok {
			kind, arg = k, a
		} else if k, a, ok := strings.Cut(rest, "~"); ok {
			kind, arg, probabilistic = k, a, true
		} else {
			pass.Reportf(pos, "injection spec part %q is missing @N or ~P", part)
			continue
		}
		if !validKinds[kind] {
			pass.Reportf(pos, "injection spec part %q names unknown kind %q (valid: corrupt, err, panic)", part, kind)
		}
		if probabilistic {
			if p, err := strconv.ParseFloat(arg, 64); err != nil || p < 0 || p > 1 {
				pass.Reportf(pos, "injection spec part %q has probability %q outside [0, 1]", part, arg)
			}
		} else if n, err := strconv.ParseUint(arg, 10, 64); err != nil || n == 0 {
			pass.Reportf(pos, "injection spec part %q has hit count %q (want an integer >= 1)", part, arg)
		}
	}
}

// finish is the whole-module absence check: every declared roster point must
// be fired or armed by some function in the analysis set, else the chaos
// surface it names is dead — no drill can ever exercise it. Sound only for
// whole-module invocations, and disabled entirely when any function passes a
// non-constant point (the "*" fact), since such a call could reach any point
// at runtime.
func finish(fp *analysis.FinishPass) error {
	if !fp.Complete {
		return nil
	}
	used := map[string]bool{}
	for _, path := range fp.Facts.Paths() {
		for _, fn := range fp.Facts.Pkg(path).Funcs {
			for _, p := range fn.Fires {
				used[p] = true
			}
			for _, p := range fn.Arms {
				used[p] = true
			}
		}
	}
	if used["*"] {
		return nil
	}
	for _, pkg := range fp.Packages {
		pf := fp.Facts.Pkg(pkg.Path)
		if pf == nil {
			continue
		}
		for _, decl := range pf.Points {
			if used[decl.Name] {
				continue
			}
			fp.Report(analysis.Diagnostic{
				Pos: declPos(pkg, decl.Name),
				Pkg: pkg.Path,
				Message: fmt.Sprintf("injection point %q is declared in the roster but never fired or armed anywhere in the module",
					decl.Name),
			})
		}
	}
	return nil
}

// declPos locates the constant declaring the named point in the roster
// package's syntax, falling back to the package's first file when the value
// is not bound to a constant.
func declPos(pkg *analysis.Package, name string) token.Pos {
	for _, file := range pkg.Files {
		for _, d := range file.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok || gd.Tok != token.CONST {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, id := range vs.Names {
					c, ok := pkg.Info.Defs[id].(*types.Const)
					if ok && c.Val().Kind() == constant.String && constant.StringVal(c.Val()) == name {
						return id.Pos()
					}
				}
			}
		}
	}
	if len(pkg.Files) > 0 {
		return pkg.Files[0].Package
	}
	return token.NoPos
}

// constString evaluates an expression to a compile-time string, if it is one.
func constString(info *types.Info, e ast.Expr) (string, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// rosterNames renders the declared points sorted, matching the runtime
// error/invariant message shape.
func rosterNames(roster map[string]bool) string {
	names := make([]string, 0, len(roster))
	for n := range roster {
		names = append(names, n)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}
