package injectpoint_test

import (
	"testing"

	"mpgraph/internal/analysis/analysistest"
	"mpgraph/internal/analysis/passes/injectpoint"
)

func TestInjectpoint(t *testing.T) {
	analysistest.Run(t, "testdata", injectpoint.Analyzer, "a")
}
