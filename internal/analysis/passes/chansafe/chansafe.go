// Package chansafe checks the channel-ownership contracts that make
// close() safe: the creating function owns the channel, closes it exactly
// once, and no send can execute after the close. Violations are runtime
// panics (send on closed, double close) or silent deadlocks (select arm on
// a forever-nil channel), and the mpgraph-serve daemon's session teardown
// is exactly where they breed.
//
// Four rules, per function body over the CFG layer:
//
//   - send after close: a send whose channel was close()d on a control-flow
//     path reaching the send;
//   - double close: a close reachable from another close of the same
//     channel (including a close on a loop cycle, which reaches itself);
//   - close by non-owner: closing a channel received as a function or
//     literal parameter — ownership stays with the creator, the only party
//     that knows no more sends are coming;
//   - nil select arm: a select case on a local channel variable that is
//     never assigned (or only assigned nil) and therefore can never fire.
//
// Channels are identified by type-checker object for plain identifiers and
// textually (types.ExprString) for field paths, the repo's usual
// approximation. Struct-field channels are exempt from the ownership rule:
// whether a method owns its receiver's channel is an architectural fact the
// pass cannot see intraprocedurally. Deliberate exceptions take
// //mpgraph:allow chansafe -- <reason>; the suggested fix on ownership
// findings inserts that directive with a TODO reason.
package chansafe

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"mpgraph/internal/analysis"
	"mpgraph/internal/analysis/cfg"
)

// Analyzer is the chansafe pass.
var Analyzer = &analysis.Analyzer{
	Name:     "chansafe",
	Doc:      "flag sends on possibly-closed channels, double closes, closes by non-owners, and select arms on forever-nil channels",
	Requires: []string{analysis.NeedCFG, analysis.NeedDataflow},
	Match: func(path string) bool {
		return path == "mpgraph" || strings.HasPrefix(path, "mpgraph/internal/")
	},
	Run: run,
}

func run(pass *analysis.Pass) error {
	params := paramObjects(pass)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkReachability(pass, params, fd.Body)
			checkSelectArms(pass, params, fd)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					checkReachability(pass, params, lit.Body)
				}
				return true
			})
		}
	}
	return nil
}

// paramObjects collects every function, method and literal parameter (and
// receiver) object in the package — the non-owner set for the close rule.
func paramObjects(pass *analysis.Pass) map[types.Object]bool {
	out := map[types.Object]bool{}
	addFields := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				if obj := pass.TypesInfo.Defs[name]; obj != nil {
					out[obj] = true
				}
			}
		}
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.FuncDecl:
				addFields(x.Recv)
				addFields(x.Type.Params)
			case *ast.FuncLit:
				addFields(x.Type.Params)
			}
			return true
		})
	}
	return out
}

// chanOp is one close or send, located in the body's CFG.
type chanOp struct {
	key   string // channel identity: object-qualified for idents, textual otherwise
	disp  string // how the channel reads in messages
	obj   types.Object
	block *cfg.Block
	idx   int // node ordinal within the block, for same-block ordering
	pos   token.Pos
}

// checkReachability applies the send-after-close and double-close rules to
// one function or literal body, and the ownership rule to its closes.
func checkReachability(pass *analysis.Pass, params map[types.Object]bool, body *ast.BlockStmt) {
	g := pass.CFG.FuncGraph(body)
	var closes, sends []chanOp
	for _, b := range g.Blocks {
		for i, n := range b.Nodes {
			ast.Inspect(n, func(m ast.Node) bool {
				switch x := m.(type) {
				case *ast.FuncLit:
					return false // analysed as its own body
				case *ast.SendStmt:
					sends = append(sends, op(pass, x.Chan, b, i, x.Pos()))
				case *ast.CallExpr:
					if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok && id.Name == "close" && len(x.Args) == 1 {
						if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
							closes = append(closes, op(pass, x.Args[0], b, i, x.Pos()))
						}
					}
				}
				return true
			})
		}
	}
	for _, c := range closes {
		if c.obj != nil && params[c.obj] {
			d := analysis.Diagnostic{
				Pos:     c.pos,
				Message: fmt.Sprintf("close of channel parameter %s: only the owning (creating) function should close a channel", c.disp),
			}
			if fix, ok := allowDirectiveFix(pass.Fset, c.pos); ok {
				d.SuggestedFixes = []analysis.SuggestedFix{fix}
			}
			pass.Report(d)
		}
	}
	reaches := func(a, b chanOp) bool {
		if a.block == b.block {
			if a.idx != b.idx {
				return a.idx < b.idx
			}
			return a.pos < b.pos || g.Reachable(a.block, a.block)
		}
		return g.Reachable(a.block, b.block)
	}
	// A pair reachable in BOTH directions sits on a loop cycle; the common
	// shape there is a channel remade every iteration (close then fresh
	// make), so one-directional reachability is what the rules key on.
	ordered := func(a, b chanOp) bool { return reaches(a, b) && !reaches(b, a) }
	for _, s := range sends {
		for _, c := range closes {
			if c.key == s.key && ordered(c, s) {
				pass.Reportf(s.pos, "send on %s may execute after close; a send on a closed channel panics", s.disp)
				break
			}
		}
	}
	for i, c2 := range closes {
		for j, c1 := range closes {
			if i != j && c1.key == c2.key && ordered(c1, c2) {
				pass.Reportf(c2.pos, "%s may already be closed when this close executes; a double close panics", c2.disp)
				break
			}
		}
	}
}

// op builds the channel identity for one operand expression: the object
// (shadowing-proof) for plain identifiers, the textual render otherwise.
func op(pass *analysis.Pass, ch ast.Expr, b *cfg.Block, idx int, pos token.Pos) chanOp {
	ch = ast.Unparen(ch)
	o := chanOp{key: types.ExprString(ch), disp: types.ExprString(ch), block: b, idx: idx, pos: pos}
	if id, ok := ch.(*ast.Ident); ok {
		if obj := pass.TypesInfo.Uses[id]; obj != nil {
			o.obj = obj
			o.key = fmt.Sprintf("%s@%d", id.Name, obj.Pos())
		}
	}
	return o
}

// checkSelectArms flags select cases on channels that are provably always
// nil: a local variable (not a parameter, not package-level) whose reaching
// definitions are absent or all literal nil.
func checkSelectArms(pass *analysis.Pass, params map[types.Object]bool, fd *ast.FuncDecl) {
	flow := pass.Dataflow.FuncFlow(fd)
	info := pass.TypesInfo
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		for _, clause := range sel.Body.List {
			cc, ok := clause.(*ast.CommClause)
			if !ok || cc.Comm == nil {
				continue
			}
			ch := commChannel(cc.Comm)
			if ch == nil {
				continue
			}
			id, ok := ast.Unparen(ch).(*ast.Ident)
			if !ok {
				continue
			}
			obj, ok := info.Uses[id].(*types.Var)
			if !ok || params[obj] || obj.Parent() == pass.Pkg.Scope() {
				continue
			}
			defs := flow.Defs[obj]
			nilForever := true
			for _, def := range defs {
				if di, ok := ast.Unparen(def).(*ast.Ident); !ok || di.Name != "nil" {
					nilForever = false
					break
				}
			}
			if nilForever {
				pass.Reportf(cc.Pos(), "select arm on %s which is always nil and can never fire", id.Name)
			}
		}
		return true
	})
}

// commChannel extracts the channel expression from a select comm statement.
func commChannel(comm ast.Stmt) ast.Expr {
	recvChan := func(e ast.Expr) ast.Expr {
		if u, ok := ast.Unparen(e).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
			return u.X
		}
		return nil
	}
	switch s := comm.(type) {
	case *ast.SendStmt:
		return s.Chan
	case *ast.ExprStmt:
		return recvChan(s.X)
	case *ast.AssignStmt:
		if len(s.Rhs) == 1 {
			return recvChan(s.Rhs[0])
		}
	}
	return nil
}

// allowDirectiveFix appends "//mpgraph:allow chansafe -- TODO..." at the
// end of pos's line, turning the exception into a documented decision.
func allowDirectiveFix(fset *token.FileSet, pos token.Pos) (analysis.SuggestedFix, bool) {
	tf := fset.File(pos)
	if tf == nil {
		return analysis.SuggestedFix{}, false
	}
	line := tf.Line(pos)
	var endOff int
	if line < tf.LineCount() {
		endOff = tf.Offset(tf.LineStart(line+1)) - 1 // the byte before the newline
	} else {
		endOff = tf.Size()
	}
	at := tf.Pos(endOff)
	return analysis.SuggestedFix{
		Message: "document the ownership exception with an allow directive",
		TextEdits: []analysis.TextEdit{{
			Pos: at, End: at,
			NewText: " //mpgraph:allow chansafe -- TODO: justify closing a channel this function does not own",
		}},
	}, true
}
