package a

// sendAfterClose closes before the send loop: every send panics.
func sendAfterClose(vs []int) {
	ch := make(chan int, len(vs))
	close(ch)
	for _, v := range vs {
		ch <- v // want `send on ch may execute after close; a send on a closed channel panics`
	}
}

// doubleClose may close twice when done is set.
func doubleClose(done bool) chan int {
	ch := make(chan int)
	if done {
		close(ch)
	}
	close(ch) // want `ch may already be closed when this close executes; a double close panics`
	return ch
}

// closeParam closes a channel it does not own.
func closeParam(ch chan int) {
	close(ch) // want `close of channel parameter ch: only the owning \(creating\) function should close a channel`
}

// nilArm selects on a channel that is never made: the arm cannot fire.
func nilArm() {
	var pause chan struct{}
	ready := make(chan struct{}, 1)
	ready <- struct{}{}
	select {
	case <-pause: // want `select arm on pause which is always nil and can never fire`
	case <-ready:
	}
}

// nilAssigned only ever assigns nil to the selected channel.
func nilAssigned(stop chan struct{}) {
	var gate chan int
	gate = nil
	select {
	case <-gate: // want `select arm on gate which is always nil and can never fire`
	case <-stop:
	}
}
