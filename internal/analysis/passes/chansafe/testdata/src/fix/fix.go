package fix

// shutdown closes a channel handed in by the caller; the fix documents the
// ownership exception with an allow directive.
func shutdown(done chan struct{}) {
	close(done)
}
