package b

// ownerClose is the contract shape: the creator sends, then closes once.
func ownerClose(vs []int) chan int {
	ch := make(chan int, len(vs))
	for _, v := range vs {
		ch <- v
	}
	close(ch)
	return ch
}

// remade closes a channel created fresh each iteration: the back edge leads
// to a new channel, not a closed one.
func remade(n int) {
	for i := 0; i < n; i++ {
		ch := make(chan int, 1)
		ch <- i
		close(ch)
	}
}

// sendToParam sends on a parameter without closing it: the owner closes.
func sendToParam(ch chan int, v int) {
	ch <- v
}

// branchClose closes on exactly one path.
func branchClose(done bool) chan int {
	ch := make(chan int)
	if done {
		close(ch)
		return ch
	}
	ch <- 1
	return ch
}

// liveArms selects only on channels that are actually made or received.
func liveArms(stop chan struct{}) {
	tick := make(chan int, 1)
	tick <- 0
	select {
	case <-tick:
	case <-stop:
	}
}

// lateMake assigns the channel before the select: not forever-nil.
func lateMake(ready bool) {
	var gate chan int
	if ready {
		gate = make(chan int, 1)
		gate <- 1
	}
	select {
	case v := <-gate:
		_ = v
	default:
	}
}
