package chansafe_test

import (
	"testing"

	"mpgraph/internal/analysis/analysistest"
	"mpgraph/internal/analysis/passes/chansafe"
)

func TestChansafe(t *testing.T) {
	analysistest.Run(t, "testdata", chansafe.Analyzer, "a", "b")
}

// TestChansafeFix checks the inserted allow directive against the golden
// and that the fixed source analyses clean.
func TestChansafeFix(t *testing.T) {
	analysistest.RunFix(t, "testdata", chansafe.Analyzer, "fix")
}
