package directive_test

import (
	"testing"

	"mpgraph/internal/analysis/analysistest"
	"mpgraph/internal/analysis/passes/directive"
)

func TestDirective(t *testing.T) {
	analysistest.Run(t, "testdata", directive.Analyzer, "a", "b")
}

// TestDirectiveFix checks the TODO-reason and marker-space repairs against
// the golden and that the fixed source analyses clean.
func TestDirectiveFix(t *testing.T) {
	analysistest.RunFix(t, "testdata", directive.Analyzer, "fix")
}
