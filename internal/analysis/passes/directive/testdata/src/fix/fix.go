package fix

// bare gets a TODO reason appended so the suppression is at least visibly
// undocumented.
func bare() int {
	x := 1
	return x //mpgraph:allow errdrop
}

//mpgraph:allow-walltime
func timing() int {
	return 2
}

//mpgraph:recovers
func boundary() {
	defer func() { recover() }()
}
