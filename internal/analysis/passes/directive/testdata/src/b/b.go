package b

// reasoned is the contract shape: names plus a reason.
func reasoned() float64 {
	x := 0.1 + 0.2
	return x //mpgraph:allow floateq -- demonstrates the documented-suppression form
}

// multiName silences two analyzers with one explained directive.
func multiName() float64 {
	y := 0.3 * 3.0
	return y //mpgraph:allow floateq,errdrop -- one reason can cover several checks
}

// walltimeReason documents why the timing gate is off here.
//
//mpgraph:allow-walltime -- measures its own calibration loop
func walltimeReason() int {
	return 1
}

// detachedReason documents the goroutine's lifetime story.
func detachedReason(ch chan int) {
	go func() { ch <- 1 }() //mpgraph:detached -- test stub; receiver drains before exit
}

//mpgraph:noalloc
func marker(dst, src []float64) {
	copy(dst, src)
}

// mpgraph:recovers
func spaceMarker() {
	defer func() { recover() }()
}

// prose that merely talks about //mpgraph:allow directives is not itself a
// directive, because the verb is not at the start of the comment.
func prose() int {
	return 2
}
