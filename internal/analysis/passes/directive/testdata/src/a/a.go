package a

// bareAllow suppresses without saying why.
func bareAllow() float64 {
	x := 0.1 + 0.2
	return x //mpgraph:allow floateq // want `mpgraph:allow directive without a reason`
}

// bogusName cites an analyzer that does not exist.
func bogusName() int {
	return 1 //mpgraph:allow bogus -- covered elsewhere // want `unknown analyzer "bogus" in mpgraph:allow directive`
}

// emptyAllow names nothing at all.
func emptyAllow() int {
	return 2 //mpgraph:allow // want `mpgraph:allow directive names no analyzers`
}

// bareWalltime gates a timing loop without a justification.
func bareWalltime() int {
	return 3 //mpgraph:allow-walltime // want `mpgraph:allow-walltime directive without a reason`
}

// bareDetached blesses a goroutine without a justification.
func bareDetached() {
	go func() {}() //mpgraph:detached // want `mpgraph:detached directive without a reason`
}

//mpgraph:recovers // want `mpgraph:recovers is a doc marker, not a directive`
func noSpaceMarker() {
	defer func() { recover() }()
}

// typo uses a verb nobody registered.
func typo() int {
	return 4 //mpgraph:alow floateq -- typo'd verb // want `unknown directive mpgraph:alow`
}
