// Package directive validates the //mpgraph: comment vocabulary itself.
// The other analyzers trust these comments — allow suppresses findings,
// detached blesses a goroutine, noalloc arms the allocation check — so a
// typo'd verb or a suppression without a reason silently weakens the whole
// suite. This pass makes the directives load-bearing:
//
//   - every suppression (allow, allow-walltime, detached) must carry a
//     " -- <reason>" tail; a bare directive reads as noise, an explained
//     one as a documented decision;
//   - //mpgraph:allow may only name analyzers that exist (the Known
//     roster, which cmd/mpgraph-vet asserts matches its suite);
//   - mpgraph:recovers and mpgraph:invariant are doc-comment markers, not
//     directives: written without a space they are directive-style
//     comments that go/ast strips from the doc text, making the marker
//     invisible to the passes that look for it;
//   - unknown verbs are reported instead of being ignored.
//
// Mechanical repairs (a TODO reason, the missing marker space) ship as
// suggested fixes.
package directive

import (
	"fmt"
	"go/ast"
	"strings"

	"mpgraph/internal/analysis"
)

// Known is the roster of analyzer names an //mpgraph:allow directive may
// cite. cmd/mpgraph-vet tests that this list matches the registered suite,
// so a new analyzer cannot ship without becoming suppressible-by-name.
var Known = []string{
	"addrhelpers",
	"chansafe",
	"ctxflow",
	"directive",
	"errdrop",
	"floateq",
	"golifetime",
	"injectpoint",
	"lockcheck",
	"maporder",
	"noalloc",
	"panicpolicy",
	"seededrand",
	"walltime",
}

// Analyzer is the directive pass.
var Analyzer = &analysis.Analyzer{
	Name: "directive",
	Doc:  "validate //mpgraph: directives: known verbs, real analyzer names in allow lists, a mandatory -- reason on every suppression, and space-form doc markers",
	Match: func(path string) bool {
		return path == "mpgraph" || strings.HasPrefix(path, "mpgraph/internal/")
	},
	Run: run,
}

const prefix = "//mpgraph:"

// todoReason is appended by the suggested fix for a reasonless suppression.
const todoReason = " -- TODO: justify this suppression"

func run(pass *analysis.Pass) error {
	known := map[string]bool{}
	for _, n := range Known {
		known[n] = true
	}
	for _, file := range pass.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, prefix) {
					continue
				}
				check(pass, c, known)
			}
		}
	}
	return nil
}

func check(pass *analysis.Pass, c *ast.Comment, known map[string]bool) {
	rest := c.Text[len(prefix):]
	// A directive runs to the end of the comment or to an embedded " // "
	// tail; the tail form is what lets analysistest fixtures append a
	// "// want" clause to the directive line under test.
	if i := strings.Index(rest, " // "); i >= 0 {
		rest = rest[:i]
	}
	verb := rest
	if i := strings.IndexByte(rest, ' '); i >= 0 {
		verb = rest[:i]
	}
	switch verb {
	case "noalloc":
		// Bare marker; nothing to validate.
	case "allow":
		checkAllow(pass, c, rest, known)
	case "allow-walltime", "detached":
		requireReason(pass, c, rest, verb)
	case "recovers", "invariant":
		pass.Report(analysis.Diagnostic{
			Pos: c.Pos(),
			Message: fmt.Sprintf("mpgraph:%s is a doc marker, not a directive: written without a space go/ast strips it from the doc text and the marker becomes invisible; write \"// mpgraph:%s\"", verb, verb),
			SuggestedFixes: []analysis.SuggestedFix{{
				Message: "insert the space that keeps the marker in the doc text",
				TextEdits: []analysis.TextEdit{{
					Pos:     c.Pos(),
					End:     c.Pos() + 2,
					NewText: "// ",
				}},
			}},
		})
	default:
		pass.Reportf(c.Pos(),
			"unknown directive mpgraph:%s; known verbs are allow, allow-walltime, detached, noalloc (plus the space-form doc markers mpgraph:recovers and mpgraph:invariant)",
			verb)
	}
}

// checkAllow validates the analyzer names and the reason of an allow
// directive.
func checkAllow(pass *analysis.Pass, c *ast.Comment, rest string, known map[string]bool) {
	body := strings.TrimPrefix(rest, "allow")
	namesPart := body
	if i := strings.Index(body, " -- "); i >= 0 {
		namesPart = body[:i]
	}
	names := strings.TrimSpace(namesPart)
	if names == "" {
		pass.Reportf(c.Pos(), "mpgraph:allow directive names no analyzers; write mpgraph:allow <name>[,<name>] followed by a reason")
		return
	}
	for _, name := range strings.Split(names, ",") {
		name = strings.TrimSpace(name)
		if name != "" && !known[name] {
			pass.Reportf(c.Pos(), "unknown analyzer %q in mpgraph:allow directive", name)
		}
	}
	requireReason(pass, c, rest, "allow")
}

// requireReason reports (with a TODO-reason fix) when the directive lacks a
// non-empty " -- <reason>" tail.
func requireReason(pass *analysis.Pass, c *ast.Comment, rest, verb string) {
	if i := strings.Index(rest, " -- "); i >= 0 && strings.TrimSpace(rest[i+4:]) != "" {
		return
	}
	pass.Report(analysis.Diagnostic{
		Pos:     c.Pos(),
		Message: fmt.Sprintf("mpgraph:%s directive without a reason; append -- <why> so the suppression documents itself", verb),
		SuggestedFixes: []analysis.SuggestedFix{{
			Message: "append a TODO reason to be filled in",
			TextEdits: []analysis.TextEdit{{
				Pos:     c.End(),
				End:     c.End(),
				NewText: todoReason,
			}},
		}},
	})
}
