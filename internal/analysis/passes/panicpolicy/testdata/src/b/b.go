// Package b is the negative fixture for panicpolicy: typed errors, invariant
// helpers, and a shadowed panic identifier trigger nothing.
package b

import "errors"

var errNegative = errors.New("negative input")

func checked(n int) (int, error) {
	if n < 0 {
		return 0, errNegative
	}
	return n, nil
}

// violated reports a broken internal invariant.
//
// mpgraph:invariant
func violated(msg string) {
	panic("invariant: " + msg)
}

func dispatch(phase, n int) int {
	if n == 0 {
		violated("no models")
	}
	return phase % n
}

func shadowed() {
	panic := func(string) {}
	panic("not the builtin")
}
