// Package a is the positive fixture for panicpolicy.
package a

import "fmt"

func rawPanic(n int) int {
	if n < 0 {
		panic("negative") // want `panic outside an mpgraph:invariant helper`
	}
	return n
}

func panicOnError(err error) {
	if err != nil {
		panic(err) // want `panic outside an mpgraph:invariant helper`
	}
}

// failf is this package's designated invariant helper.
//
// mpgraph:invariant
func failf(format string, args ...any) {
	panic(fmt.Sprintf(format, args...))
}

func usesHelper(rows, cols, n int) {
	if rows*cols != n {
		failf("shape %dx%d != %d", rows, cols, n)
	}
}

func justified() {
	panic("unreachable") //mpgraph:allow panicpolicy -- fixture: switch is exhaustive over a closed enum
}
