// Package panicpolicy restricts panic to designated invariant helpers. The
// policy: exported library APIs surface failures as typed errors a caller
// can handle; panic is reserved for provable programmer-error invariants
// (shape mismatches, impossible states), and those panics must be funnelled
// through helpers whose doc comment carries the marker line
//
//	mpgraph:invariant
//
// (the internal/invariant package provides the shared ones). Funnelling
// keeps the "what is allowed to crash the process" surface small and
// greppable. A raw panic elsewhere needs a
// //mpgraph:allow panicpolicy -- <reason> directive.
package panicpolicy

import (
	"go/ast"
	"go/types"
	"strings"

	"mpgraph/internal/analysis"
)

// Analyzer is the panicpolicy pass.
var Analyzer = &analysis.Analyzer{
	Name: "panicpolicy",
	Doc:  "restrict panic to mpgraph:invariant-marked helper functions in library packages",
	Match: func(path string) bool {
		return path == "mpgraph" || strings.HasPrefix(path, "mpgraph/internal/")
	},
	Run: run,
}

// marker designates a function as an invariant helper when present in its
// doc comment.
const marker = "mpgraph:invariant"

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fd.Doc != nil && strings.Contains(fd.Doc.Text(), marker) {
				continue // designated invariant helper
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				id, ok := call.Fun.(*ast.Ident)
				if !ok || id.Name != "panic" {
					return true
				}
				if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); !isBuiltin {
					return true // a local function shadowing the builtin
				}
				pass.Reportf(call.Pos(), "panic outside an mpgraph:invariant helper: return a typed error or use internal/invariant")
				return true
			})
		}
	}
	return nil
}
