package panicpolicy_test

import (
	"testing"

	"mpgraph/internal/analysis/analysistest"
	"mpgraph/internal/analysis/passes/panicpolicy"
)

func TestPanicPolicy(t *testing.T) {
	analysistest.Run(t, "testdata", panicpolicy.Analyzer, "a", "b")
}
