// Package floateq flags == and != between floating-point operands in the
// numeric packages (internal/models, internal/nn, internal/tensor), where
// metric comparisons must use tolerances: accuracy/coverage numbers that
// hinge on exact float equality silently change across compiler versions
// and refactorings (fused multiply-add, summation order).
//
// Two idioms are exempt because they are exact by construction:
//
//   - comparison against the literal constant 0 (sparsity fast paths,
//     "option unset" defaults);
//   - x != x / x == x on the syntactically identical expression (the NaN
//     test).
//
// Anything else needs an epsilon, or a documented
// //mpgraph:allow floateq -- <reason> directive (e.g. exact tie-breaking in
// a deterministic sort).
package floateq

import (
	"bytes"
	"go/ast"
	"go/constant"
	"go/printer"
	"go/token"
	"go/types"

	"mpgraph/internal/analysis"
)

// numericPackages are the packages where float comparisons are policed.
var numericPackages = map[string]bool{
	"mpgraph/internal/models": true,
	"mpgraph/internal/nn":     true,
	"mpgraph/internal/tensor": true,
}

// Analyzer is the floateq pass.
var Analyzer = &analysis.Analyzer{
	Name:  "floateq",
	Doc:   "flag exact ==/!= between floats in the numeric packages; compare with tolerances",
	Match: func(path string) bool { return numericPackages[path] },
	Run:   run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if !isFloat(pass, be.X) || !isFloat(pass, be.Y) {
				return true
			}
			if isZeroConst(pass, be.X) || isZeroConst(pass, be.Y) {
				return true
			}
			if sameExpr(pass, be.X, be.Y) {
				return true // NaN idiom
			}
			pass.Reportf(be.OpPos, "exact float comparison (%s): use a tolerance or justify with //mpgraph:allow floateq -- <reason>", be.Op)
			return true
		})
	}
	return nil
}

func isFloat(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

func isZeroConst(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	v, ok := constant.Float64Val(tv.Value)
	return ok && v == 0
}

// sameExpr reports whether two expressions have identical source form (the
// x != x NaN check).
func sameExpr(pass *analysis.Pass, a, b ast.Expr) bool {
	return exprString(pass.Fset, a) == exprString(pass.Fset, b)
}

func exprString(fset *token.FileSet, e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, e); err != nil {
		return ""
	}
	return buf.String()
}
