// Package b is the negative fixture for floateq: zero sentinels, the NaN
// idiom, tolerance comparisons, and integer equality trigger nothing.
package b

import "math"

func sparseSkip(av float64) bool { return av == 0 }

func unsetDefault(lr float64) float64 {
	if lr == 0 {
		return 1e-3
	}
	return lr
}

func isNaN(x float64) bool { return x != x }

func close(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func intEq(a, b int) bool { return a == b }
