// Package a is the positive fixture for floateq.
package a

func converged(loss, prev float64) bool {
	return loss == prev // want `exact float comparison \(==\)`
}

func drifted(a, b float32) bool {
	return a != b // want `exact float comparison \(!=\)`
}

func mixedExpr(xs []float64, i int) bool {
	return xs[i] == xs[i+1] // want `exact float comparison \(==\)`
}

func tieBreakJustified(a, b float64) bool {
	return a == b //mpgraph:allow floateq -- fixture: exact tie-break keeps sort deterministic
}
