package floateq_test

import (
	"testing"

	"mpgraph/internal/analysis/analysistest"
	"mpgraph/internal/analysis/passes/floateq"
)

func TestFloatEq(t *testing.T) {
	analysistest.Run(t, "testdata", floateq.Analyzer, "a", "b")
}
