package b

import (
	"context"
	"time"
)

func helper(ctx context.Context, n int) int { return n }

// threads passes the caller's context straight through.
func threads(ctx context.Context, n int) int {
	return helper(ctx, n)
}

// derived threads a context descended from ctx; taint through the tuple
// assignment keeps it legal.
func derived(ctx context.Context, n int) int {
	tctx, cancel := context.WithTimeout(ctx, time.Second)
	defer cancel()
	return helper(tctx, n)
}

// listens uses ctx.Done in the select, so the parameter is live.
func listens(ctx context.Context, ch chan int) int {
	select {
	case v := <-ch:
		return v
	case <-ctx.Done():
		return 0
	}
}

// root has no context parameter: minting Background here is legitimate.
func root(n int) int {
	return helper(context.Background(), n)
}

// unusedNoBlock ignores ctx but never blocks, which is merely dead weight,
// not a cancellation bug.
func unusedNoBlock(ctx context.Context, n int) int {
	return n + 1
}
