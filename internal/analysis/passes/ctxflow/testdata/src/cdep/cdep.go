// Package cdep is the dependency half of the severed-deadline fixture: its
// exported facts (Blocks, TakesCtx) are all the importer's analysis sees.
package cdep

import "context"

// Wait blocks on a channel receive and takes no context — a deadline dies
// at any call edge into it.
func Wait(ch chan int) int {
	return <-ch
}

// WaitCtx blocks but accepts the caller's context; threading it is the
// existing first rule's job, not the severed rule's.
func WaitCtx(ctx context.Context, ch chan int) int {
	select {
	case v := <-ch:
		return v
	case <-ctx.Done():
		return 0
	}
}

// Quick never blocks; calling it ctx-less is fine.
func Quick(x int) int { return x + 1 }

// Indirect blocks only through Wait — the Blocks fact propagates along the
// static call, so importers are charged at their edge into Indirect too.
func Indirect(ch chan int) int { return Wait(ch) }
