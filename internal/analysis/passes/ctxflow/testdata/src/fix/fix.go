package fix

import "context"

func helper(ctx context.Context, n int) int { return n }

// refresh drops the caller's context for a fresh one; the fix threads ctx.
func refresh(ctx context.Context, n int) int {
	return helper(context.Background(), n)
}
