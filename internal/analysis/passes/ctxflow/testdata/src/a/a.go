package a

import "context"

func helper(ctx context.Context, n int) int { return n }

// background mints a fresh context even though the caller handed one in.
func background(ctx context.Context, n int) int {
	return helper(context.Background(), n) // want `context\.Background\(\) passed while ctx is in scope; thread the caller's context`
}

// todo is the same bug spelled context.TODO.
func todo(ctx context.Context, n int) int {
	return helper(context.TODO(), n) // want `context\.TODO\(\) passed while ctx is in scope; thread the caller's context`
}

// laundered hides the fresh context behind a local variable; the generic
// not-derived message fires because c2 is not tainted by ctx.
func laundered(ctx context.Context, n int) int {
	c2 := context.Background()
	return helper(c2, n) // want `context not derived from ctx reaches a blocking callee; thread the caller's context`
}

// dropped never touches ctx but parks on a channel.
func dropped(ctx context.Context, ch chan int) int {
	return <-ch // want `ctx is never used but the function blocks here; select on ctx\.Done\(\) alongside the channel or drop the parameter`
}
