// Package xc exercises the severed-deadline rule across packages: functions
// holding a context call cdep helpers whose facts say they block.
package xc

import (
	"context"

	"cdep"
)

func Severed(ctx context.Context, ch chan int) int {
	return cdep.Wait(ch) // want `deadline severed: cdep\.Wait blocks but takes no context, so ctx cannot cancel it`
}

func SeveredTransitively(ctx context.Context, ch chan int) int {
	return cdep.Indirect(ch) // want `deadline severed: cdep\.Indirect blocks but takes no context, so ctx cannot cancel it`
}

// Threaded passes the deadline on; the callee takes ctx, so the severed
// rule stands down and the derivation rule is satisfied.
func Threaded(ctx context.Context, ch chan int) int {
	return cdep.WaitCtx(ctx, ch)
}

// NonBlocking calls a provably non-blocking helper ctx-less: fine.
func NonBlocking(ctx context.Context, x int) int {
	_ = ctx
	return cdep.Quick(x)
}

// localWait is in the same package; the rule charges intra-package edges
// identically.
func localWait(ch chan int) int { return <-ch }

func SeveredLocally(ctx context.Context, ch chan int) int {
	return localWait(ch) // want `deadline severed: localWait blocks but takes no context, so ctx cannot cancel it`
}

// NoCtx has no context parameter, so it is out of the analyzer's scope
// entirely — roots may block freely.
func NoCtx(ch chan int) int {
	return cdep.Wait(ch)
}
