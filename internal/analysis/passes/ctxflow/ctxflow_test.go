package ctxflow_test

import (
	"testing"

	"mpgraph/internal/analysis/analysistest"
	"mpgraph/internal/analysis/passes/ctxflow"
)

func TestCtxflow(t *testing.T) {
	analysistest.Run(t, "testdata", ctxflow.Analyzer, "a", "b", "xc")
}

// TestCtxflowFix checks the thread-the-context rewrite against the golden
// and that the fixed source analyses clean.
func TestCtxflowFix(t *testing.T) {
	analysistest.RunFix(t, "testdata", ctxflow.Analyzer, "fix")
}
