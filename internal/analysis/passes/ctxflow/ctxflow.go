// Package ctxflow enforces context threading: a function that takes a
// context.Context must pass that context (or one derived from it) to the
// blocking work it does, not drop it on the floor. A dropped context makes
// the callee uncancellable — exactly the bug that turns mpgraph-serve
// session teardown into goroutine leaks.
//
// Three rules, per function with a context.Context parameter:
//
//   - a call to a context-taking callee whose context argument is not
//     derived from the caller's context parameter (dataflow taint over the
//     function's assignment chains decides "derived"; context.Background()
//     and context.TODO() are the canonical offenders and get a suggested
//     fix replacing the argument with the parameter);
//   - a context parameter that is never used at all in a function that
//     blocks on channel operations — the select should be listening to
//     ctx.Done() alongside the channel;
//   - a statically resolved call to a module function whose cross-package
//     fact (internal/analysis/facts) says it blocks but whose signature
//     takes no context — the deadline entering this function is severed at
//     that edge, in this package or any other, and no caller can cancel the
//     blocked work. The fix is to thread a ctx parameter through the callee
//     or wrap the call in a select on ctx.Done().
//
// The severed-deadline rule is an under-approximation: the Blocks fact
// propagates only along statically resolved module-internal calls, so
// blocking reached through interfaces (core.ModelScheduler implementations)
// or func values is not charged to the caller. What it does guarantee is
// that every *statically visible* blocking path out of a context-taking
// function — e.g. a serve handler calling into prefetch/models helpers —
// either accepts the deadline or is explicitly allowed.
//
// Functions without a context parameter are out of scope: package main
// roots and tests legitimately mint Background contexts. Deliberate
// exceptions take //mpgraph:allow ctxflow -- <reason>.
package ctxflow

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"mpgraph/internal/analysis"
	"mpgraph/internal/analysis/dataflow"
)

// Analyzer is the ctxflow pass.
var Analyzer = &analysis.Analyzer{
	Name:     "ctxflow",
	Doc:      "require context.Context parameters to be threaded to blocking callees instead of dropped, replaced with context.Background, or severed at a ctx-less blocking callee",
	Requires: []string{analysis.NeedDataflow, analysis.NeedFacts},
	Match: func(path string) bool {
		return path == "mpgraph" || strings.HasPrefix(path, "mpgraph/internal/")
	},
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ctxParam := contextParam(pass.TypesInfo, fd)
			if ctxParam == nil {
				continue
			}
			checkFunc(pass, fd, ctxParam)
		}
	}
	return nil
}

// contextParam returns the function's first context.Context parameter
// object, or nil.
func contextParam(info *types.Info, fd *ast.FuncDecl) types.Object {
	for _, field := range fd.Type.Params.List {
		if !isContextType(field.Type, info) {
			continue
		}
		for _, name := range field.Names {
			if obj := info.Defs[name]; obj != nil {
				return obj
			}
		}
	}
	return nil
}

// isContextType reports whether the expression denotes context.Context.
func isContextType(e ast.Expr, info *types.Info) bool {
	tv, ok := info.Types[e]
	if !ok {
		return false
	}
	return isContext(tv.Type)
}

func isContext(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl, ctxParam types.Object) {
	info := pass.TypesInfo
	flow := pass.Dataflow.FuncFlow(fd)
	tainted := flow.Tainted(info, map[types.Object]bool{ctxParam: true}, nil)

	used := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == ctxParam {
			used = true
		}
		return !used
	})

	var firstBlocking token.Pos
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.SendStmt:
			if firstBlocking == token.NoPos {
				firstBlocking = x.Pos()
			}
		case *ast.UnaryExpr:
			if x.Op == token.ARROW && firstBlocking == token.NoPos {
				firstBlocking = x.Pos()
			}
		case *ast.SelectStmt:
			if firstBlocking == token.NoPos {
				firstBlocking = x.Pos()
			}
		case *ast.CallExpr:
			idx, ok := contextArgIndex(info, x)
			if !ok || idx >= len(x.Args) {
				checkSevered(pass, ctxParam, x)
				return true
			}
			arg := x.Args[idx]
			if dataflow.ExprTainted(info, arg, tainted, nil) {
				return true
			}
			d := analysis.Diagnostic{
				Pos: arg.Pos(),
				Message: fmt.Sprintf("context not derived from %s reaches a blocking callee; thread the caller's context",
					ctxParam.Name()),
			}
			if isFreshContext(info, arg) {
				d.Message = fmt.Sprintf("%s passed while %s is in scope; thread the caller's context",
					types.ExprString(arg), ctxParam.Name())
				d.SuggestedFixes = []analysis.SuggestedFix{{
					Message: "pass the caller's context instead of a fresh one",
					TextEdits: []analysis.TextEdit{{
						Pos: arg.Pos(), End: arg.End(), NewText: ctxParam.Name(),
					}},
				}}
			}
			pass.Report(d)
		}
		return true
	})

	if !used && firstBlocking != token.NoPos {
		pass.Reportf(firstBlocking,
			"%s is never used but the function blocks here; select on %s.Done() alongside the channel or drop the parameter",
			ctxParam.Name(), ctxParam.Name())
	}
}

// checkSevered applies the deadline-propagation rule to a call whose callee
// takes no context: if the callee's cross-package fact says it may block,
// the caller's deadline dies at this edge — report it. Callees without a
// fact (standard library, interface methods, func values) are out of scope;
// their blocking is charged by the Blocks fact of whichever module function
// wraps them statically.
func checkSevered(pass *analysis.Pass, ctxParam types.Object, call *ast.CallExpr) {
	f, ok := dataflow.Callee(pass.TypesInfo, call).(*types.Func)
	if !ok {
		return
	}
	fact := pass.Facts.ForFunc(f)
	if fact == nil || !fact.Blocks || fact.TakesCtx {
		return
	}
	name := f.Name()
	if f.Pkg() != nil && f.Pkg() != pass.Pkg {
		name = f.Pkg().Name() + "." + f.Name()
	}
	pass.Reportf(call.Pos(),
		"deadline severed: %s blocks but takes no context, so %s cannot cancel it; thread a context through %s or select on %s.Done()",
		name, ctxParam.Name(), name, ctxParam.Name())
}

// contextArgIndex returns the position of the callee's context.Context
// parameter, when the callee is a statically-known function that takes one.
func contextArgIndex(info *types.Info, call *ast.CallExpr) (int, bool) {
	obj := dataflow.Callee(info, call)
	fn, ok := obj.(*types.Func)
	if !ok {
		return 0, false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return 0, false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if isContext(sig.Params().At(i).Type()) {
			return i, true
		}
	}
	return 0, false
}

// isFreshContext recognises context.Background() and context.TODO() calls.
func isFreshContext(info *types.Info, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	obj := dataflow.Callee(info, call)
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "context" {
		return false
	}
	return obj.Name() == "Background" || obj.Name() == "TODO"
}
