// Package a holds maporder positives; a.go.golden is the committed output
// of applying the analyzer's sorted-keys fixes.
package a

import (
	"fmt"
	"strings"
)

// FloatAccum folds map values with +=: float addition is not associative,
// so the sum depends on iteration order.
func FloatAccum(m map[string]float64) float64 {
	total := 0.0
	for k, v := range m { // want `map iteration order reaches non-associative accumulation into "total"`
		_ = k
		total += v
	}
	return total
}

// Emit renders rows straight from the map range: line order is random.
func Emit(m map[int]string) string {
	var b strings.Builder
	for k, v := range m { // want `map iteration order reaches order-sensitive sink fmt.Fprintf`
		fmt.Fprintf(&b, "%d=%s\n", k, v)
	}
	return b.String()
}

// Collect gathers keys into a slice that is never sorted afterwards.
func Collect(m map[string]int) []string {
	var out []string
	for k := range m { // want `map iteration order reaches append to "out", which is never sorted afterwards`
		out = append(out, k)
	}
	return out
}

// Chained launders the value through intermediates before emitting, so the
// sink is only reachable through the dataflow taint chain.
func Chained(m map[string]string, w *strings.Builder) {
	for k, v := range m { // want `map iteration order reaches order-sensitive sink \(method\) WriteString`
		_ = k
		upper := strings.ToUpper(v)
		label := upper + "\n"
		w.WriteString(label)
	}
}
