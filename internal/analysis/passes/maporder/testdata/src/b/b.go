// Package b holds maporder negatives: sanctioned sorted-keys collection,
// order-independent folds, and the reasoned escape hatch.
package b

import (
	"fmt"
	"sort"
	"strings"
)

// SortedCollect is the sanctioned pattern: collect keys, sort, then emit.
func SortedCollect(m map[string]int) string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	var b strings.Builder
	for _, k := range ks {
		fmt.Fprintf(&b, "%s=%d\n", k, m[k])
	}
	return b.String()
}

// IntSum folds with integer +=, which is associative and commutative:
// iteration order cannot change the result.
func IntSum(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// MapCopy writes into another map: order-independent.
func MapCopy(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// Suppressed is genuinely order-dependent but deliberately tolerated, so it
// carries the reasoned line directive the driver honours.
func Suppressed(m map[string]float64) float64 {
	s := 0.0
	for _, v := range m { //mpgraph:allow maporder -- tolerance test accepts any summation order
		s += v
	}
	return s
}
