// Package maporder flags `range` loops over maps whose iteration order can
// leak into report or checkpoint output. Go randomises map order per run,
// so any order-dependent effect in such a loop breaks the repository's two
// byte-identity invariants — reports identical at any worker count
// (TestSweepParallelMatchesSerial) and across checkpoint-resume
// (TestCrashResumeByteIdentical). The analyzer taints the loop's key and
// value variables, propagates through the body's assignment chains
// (dataflow reaching definitions), and reports when a tainted value reaches
// an order-sensitive sink:
//
//   - an emission call: fmt.Fprint*/Print*/Sprint*/Errorf/Append*, or a
//     Write*/Add method (strings.Builder, bytes.Buffer, io.Writer,
//     experiments.Table.Add, resilience.Log.Add);
//   - an append to a slice that is never subsequently passed to a
//     sort.*/slices.Sort* call in the enclosing function — collecting keys
//     is the sanctioned pattern only when they are sorted before use;
//   - a compound accumulation (+=, -=, *=) into a float, complex or string
//     variable: those operators are not associative, so the result is
//     iteration-order-dependent even when every element is visited.
//
// Integer accumulation and map-to-map copying are order-independent and not
// flagged. The suggested fix rewrites the loop to collect the keys, sort
// them, and range over the sorted slice, binding the value from the map
// inside the body. Deliberately order-tolerant loops carry a
// //mpgraph:allow maporder -- <reason> directive on the `for` line.
package maporder

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"mpgraph/internal/analysis"
	"mpgraph/internal/analysis/dataflow"
)

// Analyzer is the maporder pass.
var Analyzer = &analysis.Analyzer{
	Name:     "maporder",
	Doc:      "forbid map iteration order from reaching report/checkpoint output: emit, accumulate or collect-without-sort under a map range must iterate sorted keys",
	Requires: []string{analysis.NeedDataflow},
	Match: func(path string) bool {
		return path == "mpgraph" || strings.HasPrefix(path, "mpgraph/internal/")
	},
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				rs, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				checkRange(pass, file, fd, rs)
				return true
			})
		}
	}
	return nil
}

// checkRange analyses one range statement (any kind; non-map ranges are
// ignored).
func checkRange(pass *analysis.Pass, file *ast.File, fd *ast.FuncDecl, rs *ast.RangeStmt) {
	tv, ok := pass.TypesInfo.Types[rs.X]
	if !ok {
		return
	}
	if _, ok := tv.Type.Underlying().(*types.Map); !ok {
		return
	}

	// Taint the key/value loop variables and close over the body's
	// assignment chains.
	seeds := map[types.Object]bool{}
	for _, e := range []ast.Expr{rs.Key, rs.Value} {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		if obj := pass.TypesInfo.Defs[id]; obj != nil {
			seeds[obj] = true
		} else if obj := pass.TypesInfo.Uses[id]; obj != nil {
			seeds[obj] = true
		}
	}
	if len(seeds) == 0 {
		return // `for range m` exposes no order-dependent values
	}
	flow := pass.Dataflow.BlockFlow(rs.Body)
	tainted := flow.Tainted(pass.TypesInfo, seeds, nil)

	info := pass.TypesInfo
	var sink string
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		if sink != "" {
			return false
		}
		switch s := n.(type) {
		case *ast.CallExpr:
			name, isSink := sinkCall(info, s)
			if !isSink {
				return true
			}
			for _, arg := range s.Args {
				if dataflow.ExprTainted(info, arg, tainted, nil) {
					sink = fmt.Sprintf("order-sensitive sink %s", name)
					return false
				}
			}
		case *ast.AssignStmt:
			if name, ok := unsortedAppend(pass, fd, rs, s, tainted); ok {
				sink = fmt.Sprintf("append to %q, which is never sorted afterwards", name)
				return false
			}
			if name, ok := nonAssociativeAccum(info, s, tainted); ok {
				sink = fmt.Sprintf("non-associative accumulation into %q", name)
				return false
			}
		}
		return true
	})
	if sink == "" {
		return
	}

	d := analysis.Diagnostic{
		Pos:     rs.For,
		Message: fmt.Sprintf("map iteration order reaches %s; iterate over sorted keys", sink),
	}
	if fix, ok := sortedKeysFix(pass, file, fd, rs); ok {
		d.SuggestedFixes = []analysis.SuggestedFix{fix}
	}
	pass.Report(d)
}

// sinkCall classifies emission calls whose argument order-dependence would
// reach rendered output.
func sinkCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		name := fun.Sel.Name
		if id, ok := fun.X.(*ast.Ident); ok {
			if pn, ok := info.Uses[id].(*types.PkgName); ok {
				// Package-level emission: fmt.Fprintf(w, ...), fmt.Sprintf, ...
				if pn.Imported().Path() == "fmt" {
					return "fmt." + name, true
				}
				return "", false
			}
		}
		// Method emission: builder/buffer/table/log writes.
		if name == "Add" || strings.HasPrefix(name, "Write") {
			return "(method) " + name, true
		}
	}
	return "", false
}

// unsortedAppend reports an `x = append(x, tainted...)` whose target slice
// is never handed to a sort.*/slices.Sort* call in the enclosing function.
func unsortedAppend(pass *analysis.Pass, fd *ast.FuncDecl, rs *ast.RangeStmt, s *ast.AssignStmt, tainted map[types.Object]bool) (string, bool) {
	if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
		return "", false
	}
	lhs, ok := ast.Unparen(s.Lhs[0]).(*ast.Ident)
	if !ok || lhs.Name == "_" {
		return "", false
	}
	call, ok := ast.Unparen(s.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return "", false
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); !ok || id.Name != "append" || pass.TypesInfo.Uses[id] != types.Universe.Lookup("append") {
		return "", false
	}
	taintedArg := false
	for _, arg := range call.Args[1:] {
		if dataflow.ExprTainted(pass.TypesInfo, arg, tainted, nil) {
			taintedArg = true
			break
		}
	}
	if !taintedArg {
		return "", false
	}
	obj := pass.TypesInfo.Uses[lhs]
	if obj == nil {
		obj = pass.TypesInfo.Defs[lhs]
	}
	if obj == nil || sortedInFunc(pass, fd, obj) {
		return "", false
	}
	return lhs.Name, true
}

// sortedInFunc reports whether obj appears as an argument to a sort.* or
// slices.* call anywhere in the function (before or after the loop — flow
// direction is not tracked; a sort anywhere is taken as the author handling
// order).
func sortedInFunc(pass *analysis.Pass, fd *ast.FuncDecl, obj types.Object) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
		if !ok {
			return true
		}
		if p := pn.Imported().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if mentionsObj(pass.TypesInfo, arg, obj) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

func mentionsObj(info *types.Info, expr ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && (info.Uses[id] == obj || info.Defs[id] == obj) {
			found = true
			return false
		}
		return true
	})
	return found
}

// nonAssociativeAccum reports compound accumulation of a tainted value into
// a float/complex/string variable.
func nonAssociativeAccum(info *types.Info, s *ast.AssignStmt, tainted map[types.Object]bool) (string, bool) {
	switch s.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
	default:
		return "", false
	}
	if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
		return "", false
	}
	lhs, ok := ast.Unparen(s.Lhs[0]).(*ast.Ident)
	if !ok {
		return "", false
	}
	tv, ok := info.Types[s.Lhs[0]]
	if !ok {
		return "", false
	}
	basic, ok := tv.Type.Underlying().(*types.Basic)
	if !ok {
		return "", false
	}
	if basic.Info()&(types.IsFloat|types.IsComplex|types.IsString) == 0 {
		return "", false // integer accumulation is associative
	}
	if !dataflow.ExprTainted(info, s.Rhs[0], tainted, nil) {
		return "", false
	}
	return lhs.Name, true
}
