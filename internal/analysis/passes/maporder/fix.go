package maporder

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"strings"

	"mpgraph/internal/analysis"
)

// sortedKeysFix builds the mechanical rewrite of a flagged map range:
//
//	for k, v := range m { BODY }
//
// becomes
//
//	ks := make([]K, 0, len(m))
//	for k := range m {
//		ks = append(ks, k)
//	}
//	sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
//	for _, k := range ks {
//		v := m[k]
//		BODY
//	}
//
// (plus a "sort" import when the file lacks one). Only the loop header is
// replaced — BODY text, including break/continue semantics, is untouched.
// The fix is offered only when it is provably safe to synthesise: a named,
// :=-declared key of an ordered type, a side-effect-free (identifier or
// selector) map expression, and a fresh name available for the key slice.
func sortedKeysFix(pass *analysis.Pass, file *ast.File, fd *ast.FuncDecl, rs *ast.RangeStmt) (analysis.SuggestedFix, bool) {
	var fix analysis.SuggestedFix
	key, ok := rs.Key.(*ast.Ident)
	if !ok || key.Name == "_" || rs.Tok != token.DEFINE {
		return fix, false
	}
	mapText, ok := exprText(rs.X)
	if !ok {
		return fix, false
	}
	tv, ok := pass.TypesInfo.Types[rs.X]
	if !ok {
		return fix, false
	}
	mt, ok := tv.Type.Underlying().(*types.Map)
	if !ok {
		return fix, false
	}
	basic, ok := mt.Key().Underlying().(*types.Basic)
	if !ok || basic.Info()&types.IsOrdered == 0 {
		return fix, false
	}
	keyTypeText, ok := typeText(pass.Pkg, mt.Key())
	if !ok {
		return fix, false
	}
	keysName := key.Name + "s"
	if identInUse(fd, keysName) {
		return fix, false
	}
	indent, ok := lineIndent(pass.Fset, rs.For)
	if !ok {
		return fix, false
	}
	inner := indent + "\t"

	var b strings.Builder
	fmt.Fprintf(&b, "%s := make([]%s, 0, len(%s))\n", keysName, keyTypeText, mapText)
	fmt.Fprintf(&b, "%sfor %s := range %s {\n", indent, key.Name, mapText)
	fmt.Fprintf(&b, "%s%s = append(%s, %s)\n", inner, keysName, keysName, key.Name)
	fmt.Fprintf(&b, "%s}\n", indent)
	fmt.Fprintf(&b, "%ssort.Slice(%s, func(i, j int) bool { return %s[i] < %s[j] })\n",
		indent, keysName, keysName, keysName)
	fmt.Fprintf(&b, "%sfor _, %s := range %s {", indent, key.Name, keysName)
	if v, ok := rs.Value.(*ast.Ident); ok && v.Name != "_" {
		fmt.Fprintf(&b, "\n%s%s := %s[%s]", inner, v.Name, mapText, key.Name)
	}

	fix = analysis.SuggestedFix{
		Message: "iterate over sorted keys",
		TextEdits: []analysis.TextEdit{
			{Pos: rs.For, End: rs.Body.Lbrace + 1, NewText: b.String()},
		},
	}
	if edit, needed, ok := sortImportEdit(file); ok {
		if needed {
			fix.TextEdits = append(fix.TextEdits, edit)
		}
	} else {
		return analysis.SuggestedFix{}, false // "sort" imported under an alias: cannot name it
	}
	return fix, true
}

// exprText renders side-effect-free map expressions (identifiers and
// selector chains); anything else may not be safe to evaluate twice.
func exprText(e ast.Expr) (string, bool) {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return x.Name, true
	case *ast.SelectorExpr:
		base, ok := exprText(x.X)
		if !ok {
			return "", false
		}
		return base + "." + x.Sel.Name, true
	}
	return "", false
}

// typeText renders the key type for the generated make call. Foreign named
// types would need the file's import alias, so the fix bails on them.
func typeText(pkg *types.Package, t types.Type) (string, bool) {
	switch tt := t.(type) {
	case *types.Basic:
		return tt.Name(), true
	case *types.Named:
		obj := tt.Obj()
		if obj.Pkg() == nil || obj.Pkg() == pkg {
			return obj.Name(), true
		}
	}
	return "", false
}

// identInUse reports whether name occurs anywhere in the function — a
// conservative freshness check for the synthesised key-slice variable.
func identInUse(fd *ast.FuncDecl, name string) bool {
	found := false
	ast.Inspect(fd, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && id.Name == name {
			found = true
			return false
		}
		return true
	})
	return found
}

// lineIndent reads the leading whitespace of pos's line from the source
// file, so synthesised lines align with the loop they replace.
func lineIndent(fset *token.FileSet, pos token.Pos) (string, bool) {
	p := fset.Position(pos)
	src, err := os.ReadFile(p.Filename)
	if err != nil {
		return "", false
	}
	start := p.Offset - (p.Column - 1)
	if start < 0 || p.Offset > len(src) {
		return "", false
	}
	line := src[start:p.Offset]
	for _, c := range line {
		if c != ' ' && c != '\t' {
			return "", false // something other than indent precedes the `for`
		}
	}
	return string(line), true
}

// sortImportEdit locates or synthesises the "sort" import. Returns
// (edit, neededInsertion, usableAsSort).
func sortImportEdit(file *ast.File) (analysis.TextEdit, bool, bool) {
	var importDecl *ast.GenDecl
	for _, d := range file.Decls {
		gd, ok := d.(*ast.GenDecl)
		if !ok || gd.Tok != token.IMPORT {
			continue
		}
		if importDecl == nil {
			importDecl = gd
		}
		for _, spec := range gd.Specs {
			is := spec.(*ast.ImportSpec)
			if is.Path.Value != `"sort"` {
				continue
			}
			if is.Name != nil && is.Name.Name != "sort" {
				return analysis.TextEdit{}, false, false
			}
			return analysis.TextEdit{}, false, true // already imported
		}
	}
	if importDecl == nil {
		// No imports at all: start a block after the package clause.
		return analysis.TextEdit{
			Pos: file.Name.End(), End: file.Name.End(),
			NewText: "\n\nimport \"sort\"",
		}, true, true
	}
	if !importDecl.Lparen.IsValid() {
		// Single-line import declaration: add a sibling declaration.
		return analysis.TextEdit{
			Pos: importDecl.End(), End: importDecl.End(),
			NewText: "\nimport \"sort\"",
		}, true, true
	}
	// Grouped imports: insert in path-sorted position.
	for _, spec := range importDecl.Specs {
		is := spec.(*ast.ImportSpec)
		if is.Path.Value > `"sort"` {
			return analysis.TextEdit{
				Pos: is.Pos(), End: is.Pos(),
				NewText: "\"sort\"\n\t",
			}, true, true
		}
	}
	last := importDecl.Specs[len(importDecl.Specs)-1]
	return analysis.TextEdit{
		Pos: last.End(), End: last.End(),
		NewText: "\n\t\"sort\"",
	}, true, true
}
