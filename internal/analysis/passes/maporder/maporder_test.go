package maporder_test

import (
	"testing"

	"mpgraph/internal/analysis/analysistest"
	"mpgraph/internal/analysis/passes/maporder"
)

func TestMapOrder(t *testing.T) {
	analysistest.Run(t, "testdata", maporder.Analyzer, "a", "b")
}

// TestMapOrderFix checks the sorted-keys rewrite against the committed
// goldens and proves a second -fix pass is a no-op.
func TestMapOrderFix(t *testing.T) {
	analysistest.RunFix(t, "testdata", maporder.Analyzer, "a", "b")
}
