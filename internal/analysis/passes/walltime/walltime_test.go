package walltime_test

import (
	"testing"

	"mpgraph/internal/analysis/analysistest"
	"mpgraph/internal/analysis/passes/walltime"
)

func TestWalltime(t *testing.T) {
	analysistest.Run(t, "testdata", walltime.Analyzer, "a", "b")
}

// TestWalltimeFix checks that the inserted allow directives match the golden
// and silence the findings on a second pass.
func TestWalltimeFix(t *testing.T) {
	analysistest.RunFix(t, "testdata", walltime.Analyzer, "a", "b")
}
