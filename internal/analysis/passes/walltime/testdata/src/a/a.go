// Package a holds walltime positives; a.go.golden shows each finding
// resolved by the inserted allow directive.
package a

import (
	"fmt"
	"math/rand"
	"strings"
	"time"
)

// Stamp embeds the current time in a rendered report row.
func Stamp(b *strings.Builder) {
	now := time.Now()
	fmt.Fprintf(b, "generated at %s\n", now.Format(time.RFC3339)) // want `wall-clock time reaches run-dependent sink fmt.Fprintf`
}

// Elapsed folds a measured latency into an event-log line.
func Elapsed(log *strings.Builder, f func()) {
	t0 := time.Now()
	f()
	dur := time.Since(t0)
	log.WriteString(dur.String()) // want `wall-clock time reaches run-dependent sink \(method\) WriteString`
}

// SeedFromClock seeds a PRNG from the wall clock, destroying replayability.
func SeedFromClock() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano())) // want `wall-clock time reaches run-dependent sink seeding call NewSource`
}
