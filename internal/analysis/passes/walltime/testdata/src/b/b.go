// Package b holds walltime negatives: latency-budget predicates, the
// function-level marker, and the reasoned line directive.
package b

import (
	"fmt"
	"strings"
	"time"
)

// Budget reads the clock only to enforce a deadline: the measured duration
// never reaches rendered output, which is exactly the guarded-prefetcher
// pattern the analyzer must not flag.
func Budget(f func()) bool {
	t0 := time.Now()
	f()
	return time.Since(t0) < 5*time.Millisecond
}

// Telemetry is a deliberately wall-clocked diagnostic surface, exempted
// wholesale by the doc-comment marker.
//
//mpgraph:allow-walltime -- latency telemetry reads the real clock by design
func Telemetry(b *strings.Builder) {
	fmt.Fprintf(b, "at %v\n", time.Now())
}

// Suppressed documents a single deliberate wall-clock emission in place.
func Suppressed(b *strings.Builder) {
	fmt.Fprintf(b, "at %v\n", time.Now()) //mpgraph:allow walltime -- debugging aid outside the byte-identity surface
}

// Derived shows that a duration used arithmetically but kept out of sinks
// stays silent even though it is tainted.
func Derived(f func()) int {
	t0 := time.Now()
	f()
	spent := time.Since(t0)
	retries := 0
	for spent > time.Second {
		spent /= 2
		retries++
	}
	return retries
}
