// Package walltime flags wall-clock readings (time.Now, time.Since) whose
// values flow into run-dependent output: report rows, event-log lines,
// checkpoint fingerprints, or PRNG seeds. The repository's experiments are
// replayed byte-for-byte (TestSweepParallelMatchesSerial,
// TestCrashResumeByteIdentical), and a timestamp embedded in any of those
// surfaces makes two otherwise-identical runs differ. Latency-budget logic —
// comparing a measured duration against a deadline, as the guarded
// prefetcher does — is fine: the reading never leaves the predicate.
//
// Dataflow taint starts at every time.Now()/time.Since() call expression,
// propagates through the function's assignment chains, and reports when a
// tainted value reaches:
//
//   - an emission call (fmt.*, or an Add/Sum/Write* method — builders,
//     buffers, hashes, experiments.Table, resilience.Log);
//   - a seeding call (a Seed method or a NewSource function).
//
// Escape hatches, in preference order: inject a clock (the pattern
// prefetch.GuardConfig.Now establishes); annotate a deliberately
// wall-clocked function with //mpgraph:allow-walltime in its doc comment
// (latency telemetry paths); or suppress a single line with
// //mpgraph:allow walltime -- <reason>. The suggested fix appends the line
// directive with a TODO reason, turning the finding into a documented,
// grep-able decision.
package walltime

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"mpgraph/internal/analysis"
	"mpgraph/internal/analysis/dataflow"
)

// FuncMarker in a function's doc comment exempts the whole function.
const FuncMarker = "mpgraph:allow-walltime"

// Analyzer is the walltime pass.
var Analyzer = &analysis.Analyzer{
	Name:     "walltime",
	Doc:      "forbid time.Now/time.Since values from reaching reports, event logs, fingerprints or seeds: wall-clock output breaks run-to-run byte identity",
	Requires: []string{analysis.NeedDataflow},
	Match: func(path string) bool {
		return path == "mpgraph" || strings.HasPrefix(path, "mpgraph/internal/")
	},
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || allowsWalltime(fd) {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

// allowsWalltime reports the function-level escape hatch: a doc-comment line
// containing the mpgraph:allow-walltime marker.
func allowsWalltime(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.Contains(c.Text, FuncMarker) {
			return true
		}
	}
	return false
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	info := pass.TypesInfo
	isSeed := func(e ast.Expr) bool {
		call, ok := e.(*ast.CallExpr)
		if !ok {
			return false
		}
		obj := dataflow.Callee(info, call)
		if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "time" {
			return false
		}
		return obj.Name() == "Now" || obj.Name() == "Since"
	}
	flow := pass.Dataflow.FuncFlow(fd)
	tainted := flow.Tainted(info, nil, isSeed)

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name, isSink := sinkCall(info, call)
		if !isSink {
			return true
		}
		for _, arg := range call.Args {
			if !dataflow.ExprTainted(info, arg, tainted, isSeed) {
				continue
			}
			d := analysis.Diagnostic{
				Pos: call.Pos(),
				Message: fmt.Sprintf(
					"wall-clock time reaches run-dependent sink %s; inject a clock or annotate the line with //mpgraph:allow walltime -- <reason>", name),
			}
			if fix, ok := allowDirectiveFix(pass.Fset, call.Pos()); ok {
				d.SuggestedFixes = []analysis.SuggestedFix{fix}
			}
			pass.Report(d)
			break
		}
		return true
	})
}

// sinkCall classifies calls that persist their arguments into run-visible
// state: emissions, fingerprint writes, and PRNG seeding.
func sinkCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fun.Name == "NewSource" {
			return "seeding call " + fun.Name, true
		}
	case *ast.SelectorExpr:
		name := fun.Sel.Name
		if id, ok := fun.X.(*ast.Ident); ok {
			if pn, ok := info.Uses[id].(*types.PkgName); ok {
				switch {
				case pn.Imported().Path() == "fmt":
					return "fmt." + name, true
				case name == "NewSource":
					return "seeding call " + name, true
				}
				return "", false
			}
		}
		switch {
		case name == "Add" || name == "Sum" || strings.HasPrefix(name, "Write"):
			return "(method) " + name, true
		case name == "Seed":
			return "seeding call " + name, true
		}
	}
	return "", false
}

// allowDirectiveFix appends "//mpgraph:allow walltime -- TODO..." at the end
// of pos's line. The directive suppresses the finding, so applying the fix
// twice is a no-op; the TODO reason keeps the debt visible until a human
// replaces it with a real justification or an injected clock.
func allowDirectiveFix(fset *token.FileSet, pos token.Pos) (analysis.SuggestedFix, bool) {
	tf := fset.File(pos)
	if tf == nil {
		return analysis.SuggestedFix{}, false
	}
	line := tf.Line(pos)
	var endOff int
	if line < tf.LineCount() {
		endOff = tf.Offset(tf.LineStart(line+1)) - 1 // the byte before the newline
	} else {
		endOff = tf.Size()
	}
	at := tf.Pos(endOff)
	return analysis.SuggestedFix{
		Message: "document the wall-clock escape with an allow directive",
		TextEdits: []analysis.TextEdit{{
			Pos: at, End: at,
			NewText: " //mpgraph:allow walltime -- TODO: justify wall-clock in output or inject a clock",
		}},
	}, true
}
