// Package b is the negative fixture for errdrop: handled errors, exempt
// print/builder calls, and single non-error discards trigger nothing.
package b

import (
	"fmt"
	"os"
	"strconv"
	"strings"
)

func handled() error {
	if err := os.Remove("scratch"); err != nil {
		return err
	}
	v, err := strconv.Atoi("7")
	if err != nil {
		return err
	}
	fmt.Println(v) // fmt print family is exempt
	var sb strings.Builder
	sb.WriteString("in-memory writers are exempt")
	return nil
}

func pairs() (int, bool) { return 0, false }

func singleNonErrorDiscard() int {
	n, _ := pairs()
	return n
}
