// Package a is the positive fixture for errdrop.
package a

import (
	"os"
	"strconv"
)

func twoResults() (bool, error) { return true, nil }

func threeResults() (bool, uint64, bool) { return false, 0, false }

func dropsError() {
	os.Remove("scratch") // want `error result of os.Remove is dropped`
}

func discardsIntoBlank() int {
	v, _ := strconv.Atoi("7") // want `error result of strconv.Atoi is discarded into _`
	return v
}

func multiBlankDiscard() bool {
	hit, _, _ := threeResults() // want `2 of 3 results of threeResults are discarded`
	return hit
}

func justifiedDiscard() bool {
	hit, _, _ := threeResults() //mpgraph:allow errdrop -- fixture: demand probe, victim bookkeeping handled by caller
	return hit
}

func parallelBlank() {
	_, err := twoResults()
	_ = err // want `error value is discarded into _`
}
