// Package errdrop flags silently discarded results in library code. A
// dropped error turns an I/O or configuration failure into a silently wrong
// experiment number, which is exactly the class of bug that makes ML
// prefetcher reproductions hard to validate. Two patterns are reported:
//
//   - a call whose result set includes an error, used as a bare statement
//     (the error vanishes without a trace);
//   - an assignment that discards an error result into _;
//   - an assignment that discards two or more results of one call into _
//     (e.g. `hit, _, _ := c.Lookup(...)`) — side-effectful APIs returning
//     several values deserve either consumption or a documented
//     //mpgraph:allow errdrop -- <reason> directive.
//
// The fmt print family and in-memory writers (strings.Builder,
// bytes.Buffer) are exempt: their errors are definitionally nil or
// universally ignored by convention.
package errdrop

import (
	"go/ast"
	"go/types"
	"strings"

	"mpgraph/internal/analysis"
)

// Analyzer is the errdrop pass.
var Analyzer = &analysis.Analyzer{
	Name: "errdrop",
	Doc:  "flag discarded error returns and undocumented multi-blank result discards in library code",
	Match: func(path string) bool {
		return path == "mpgraph" || strings.HasPrefix(path, "mpgraph/internal/")
	},
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.ExprStmt:
				call, ok := st.X.(*ast.CallExpr)
				if !ok {
					return true
				}
				if exempt(pass, call) {
					return true
				}
				if errorResultIndex(pass, call) >= 0 {
					pass.Reportf(call.Pos(), "error result of %s is dropped: handle it or assign it explicitly", calleeName(call))
				}
			case *ast.AssignStmt:
				checkAssign(pass, st)
			}
			return true
		})
	}
	return nil
}

func checkAssign(pass *analysis.Pass, st *ast.AssignStmt) {
	// Tuple assignment from a single call: lhs_i corresponds to result i.
	if len(st.Rhs) == 1 && len(st.Lhs) > 1 {
		call, ok := st.Rhs[0].(*ast.CallExpr)
		if !ok {
			return
		}
		if exempt(pass, call) {
			return
		}
		tup, ok := pass.TypesInfo.Types[call].Type.(*types.Tuple)
		if !ok || tup.Len() != len(st.Lhs) {
			return
		}
		blanks := 0
		for i, lhs := range st.Lhs {
			if !isBlank(lhs) {
				continue
			}
			blanks++
			if isErrorType(tup.At(i).Type()) {
				pass.Reportf(lhs.Pos(), "error result of %s is discarded into _", calleeName(call))
			}
		}
		if blanks >= 2 {
			pass.Reportf(st.Pos(), "%d of %d results of %s are discarded: consume them or justify with //mpgraph:allow errdrop -- <reason>", blanks, tup.Len(), calleeName(call))
		}
		return
	}
	// Parallel assignment: _ = expr with expr of type error.
	for i, lhs := range st.Lhs {
		if !isBlank(lhs) || i >= len(st.Rhs) {
			continue
		}
		tv, ok := pass.TypesInfo.Types[st.Rhs[i]]
		if ok && isErrorType(tv.Type) {
			pass.Reportf(lhs.Pos(), "error value is discarded into _")
		}
	}
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

func isErrorType(t types.Type) bool {
	return types.Implements(t, errorIface)
}

// errorResultIndex returns the index of an error in the call's result
// tuple, or -1.
func errorResultIndex(pass *analysis.Pass, call *ast.CallExpr) int {
	tv, ok := pass.TypesInfo.Types[call]
	if !ok || tv.Type == nil {
		return -1
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isErrorType(t.At(i).Type()) {
				return i
			}
		}
	default:
		if isErrorType(t) {
			return 0
		}
	}
	return -1
}

// exempt reports callees whose errors are ignored by universal convention.
func exempt(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	// fmt.Fprintf & friends, and methods on in-memory writers.
	if id, ok := sel.X.(*ast.Ident); ok {
		if pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName); ok && pn.Imported().Path() == "fmt" {
			return strings.HasPrefix(sel.Sel.Name, "Print") || strings.HasPrefix(sel.Sel.Name, "Fprint")
		}
	}
	if s, ok := pass.TypesInfo.Selections[sel]; ok {
		recv := s.Recv()
		if p, ok := recv.(*types.Pointer); ok {
			recv = p.Elem()
		}
		name := recv.String()
		return name == "strings.Builder" || name == "bytes.Buffer"
	}
	return false
}

func calleeName(call *ast.CallExpr) string {
	switch f := call.Fun.(type) {
	case *ast.Ident:
		return f.Name
	case *ast.SelectorExpr:
		if id, ok := f.X.(*ast.Ident); ok {
			return id.Name + "." + f.Sel.Name
		}
		return f.Sel.Name
	}
	return "call"
}
