package errdrop_test

import (
	"testing"

	"mpgraph/internal/analysis/analysistest"
	"mpgraph/internal/analysis/passes/errdrop"
)

func TestErrDrop(t *testing.T) {
	analysistest.Run(t, "testdata", errdrop.Analyzer, "a", "b")
}
