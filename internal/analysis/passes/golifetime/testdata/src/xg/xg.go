// Package xg exercises cross-package goroutine contracts: sinks and
// recovery boundaries that live in gdep are recognised through its facts.
package xg

import "gdep"

// SpawnBounded satisfies both contracts through gdep: the spawned body
// recovers inside gdep.Guarded and parks inside gdep.Forever's range.
func SpawnBounded(ch chan int) {
	go func() {
		gdep.Guarded(func() { gdep.Forever(ch) })
	}()
}

// SpawnDirect spawns the foreign sink directly; its Recovers gap still
// needs a boundary.
func SpawnDirect(ch chan int) {
	go gdep.Forever(ch) // want `goroutine without a resilience boundary`
}

// SpawnPlain gets no help from gdep.Plain's facts: both contracts fail.
func SpawnPlain() {
	go func() { // want `goroutine may outlive its spawner` `goroutine without a resilience boundary`
		gdep.Plain(1)
	}()
}
