// Package gdep is the dependency half of the cross-package goroutine
// fixtures: importers only see its exported facts (Sink, Recovers).
package gdep

// Forever ranges over a channel — its Sink fact bounds any goroutine that
// parks in it.
func Forever(ch chan int) {
	for range ch {
	}
}

// Guarded recovers, so it is a containment boundary for spawned bodies in
// any importing package.
func Guarded(f func()) {
	defer func() { recover() }()
	f()
}

// Plain neither sinks nor recovers.
func Plain(x int) int { return x * 2 }
