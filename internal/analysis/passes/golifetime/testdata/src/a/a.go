package a

import "sync"

func work() {}

// spin loops forever with no bound.
func spin() {
	for {
		work()
	}
}

// recoverAll is a recovery boundary.
//
// mpgraph:recovers
func recoverAll() { _ = recover() }

// leak spawns an unbounded, unguarded goroutine: both contracts fail.
func leak() {
	go spin() // want `goroutine may outlive its spawner` `goroutine without a resilience boundary`
}

// leakGuarded is panic-safe but still unbounded.
func leakGuarded() {
	go func() { // want `goroutine may outlive its spawner`
		defer recoverAll()
		spin()
	}()
}

// unguarded is joined but panics escape it.
func unguarded(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() { // want `goroutine without a resilience boundary`
		defer wg.Done()
		work()
	}()
	wg.Wait()
}

// leakValue spawns through a function value bound to an unbounded worker.
func leakValue() {
	run := spin
	go run() // want `goroutine may outlive its spawner` `goroutine without a resilience boundary`
}

// bareDetached has a directive without a reason: it does not count.
func bareDetached() {
	go func() { // want `goroutine may outlive its spawner`
		defer recoverAll()
		spin()
	}() //mpgraph:detached
}
