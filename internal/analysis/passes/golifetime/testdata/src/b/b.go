package b

import (
	"context"
	"sync"
)

func work() {}

// recoverAll is a recovery boundary.
//
// mpgraph:recovers
func recoverAll() { _ = recover() }

// joined spawns workers bounded by a visible WaitGroup join and guarded by
// a recovery helper.
func joined(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer recoverAll()
			work()
		}()
	}
	wg.Wait()
}

// worker drains the channel until the context ends: the select is the sink.
func worker(ctx context.Context, ch chan int) {
	for {
		select {
		case <-ctx.Done():
			return
		case v, ok := <-ch:
			if !ok {
				return
			}
			_ = v
		}
	}
}

// guardedWorker wraps worker with the boundary.
func guardedWorker(ctx context.Context, ch chan int) {
	defer recoverAll()
	worker(ctx, ch)
}

// start reaches both contracts transitively through the call graph.
func start(ctx context.Context, ch chan int) {
	go guardedWorker(ctx, ch)
}

// drain ranges over a channel: bounded by the sender closing it.
func drain(ch chan int) {
	go func() {
		defer recoverAll()
		for v := range ch {
			_ = v
		}
	}()
}

// closureValue spawns a locally-bound closure whose body has the sink.
func closureValue(ctx context.Context) {
	run := func() {
		defer recoverAll()
		<-ctx.Done()
	}
	go run()
}

// detached documents the deliberate process-lifetime goroutine.
func detached() {
	go func() { //mpgraph:detached -- steady-state telemetry emitter; lives for the process by design
		defer recoverAll()
		for {
			work()
		}
	}()
}
