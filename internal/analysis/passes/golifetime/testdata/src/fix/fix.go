package fix

func emit() {}

// recoverAll is a recovery boundary.
//
// mpgraph:recovers
func recoverAll() { _ = recover() }

// stream spawns a guarded emitter with no lifetime bound; the fix appends
// the detached directive with a TODO reason.
func stream() {
	go func() {
		defer recoverAll()
		for {
			emit()
		}
	}()
}
