package golifetime_test

import (
	"testing"

	"mpgraph/internal/analysis/analysistest"
	"mpgraph/internal/analysis/passes/golifetime"
)

func TestGolifetime(t *testing.T) {
	analysistest.Run(t, "testdata", golifetime.Analyzer, "a", "b", "xg")
}

// TestGolifetimeFix checks the appended detached directive against the
// golden and that the fixed source analyses clean.
func TestGolifetimeFix(t *testing.T) {
	analysistest.RunFix(t, "testdata", golifetime.Analyzer, "fix")
}
