// Package golifetime enforces the two goroutine contracts the mpgraph-serve
// daemon needs from every spawn site, repo-wide:
//
//   - bounded lifetime: every `go` statement must reach a bounded-lifetime
//     sink — a sync.WaitGroup join visible in the spawning function, a
//     select (context/done-channel shutdown shape), a <-ctx.Done() receive
//     or a range over a channel in the spawned body (directly, or
//     transitively through the package call graph) — or carry an explicit
//     //mpgraph:detached -- <reason> directive on the spawn line;
//   - panic containment (absorbed from the retired goroutineguard pass,
//     now repo-wide and call-graph deep): the spawned body must route
//     panics through a resilience boundary — a call into
//     mpgraph/internal/resilience (Guard/GuardVal) or a helper whose doc
//     comment carries the "mpgraph:recovers" marker — because a panic on a
//     bare goroutine kills the whole process: no sweep report, no
//     degradation event, no checkpoint flush.
//
// Spawned function values are chased through reaching definitions and the
// call graph (internal/analysis/callgraph), so `run := func() {...}; go
// run()` and `go s.worker()` resolve like direct spawns. Calls that leave
// the package are judged by the callee's cross-package fact
// (internal/analysis/facts): a callee whose Sink fact is set satisfies the
// bounded-lifetime contract, and one whose Recovers fact is set satisfies
// the containment contract — so a serve goroutine that parks inside a
// prefetch helper's select, or recovers inside another package's guard
// wrapper, is recognised instead of flagged. The suggested fix
// for an unbounded spawn appends the detached directive with a TODO reason,
// keeping the debt grep-able; there is no mechanical fix for a missing
// boundary — wrapping the body changes behaviour and is the author's call.
package golifetime

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"mpgraph/internal/analysis"
	"mpgraph/internal/analysis/callgraph"
	"mpgraph/internal/analysis/facts"
)

// Analyzer is the golifetime pass.
var Analyzer = &analysis.Analyzer{
	Name:     "golifetime",
	Doc:      "require every go statement to reach a bounded-lifetime sink (WaitGroup join, context/done select, or //mpgraph:detached -- reason) and a panic-recovery boundary, following cross-package facts",
	Requires: []string{analysis.NeedCallGraph, analysis.NeedFacts},
	Match: func(path string) bool {
		return path == "mpgraph" || strings.HasPrefix(path, "mpgraph/internal/")
	},
	Run: run,
}

// recoversMarker designates recovery-boundary helpers.
const recoversMarker = "mpgraph:recovers"

// resiliencePath is the recovery-boundary package.
const resiliencePath = "mpgraph/internal/resilience"

// detachedDirective marks a deliberately unbounded goroutine; it requires a
// " -- reason" tail (the directive analyzer flags bare ones).
const detachedDirective = "//mpgraph:detached"

func run(pass *analysis.Pass) error {
	marked := markedDecls(pass)
	for _, file := range pass.Files {
		detached := detachedLines(pass.Fset, file)
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			joined := hasWaitGroupJoin(pass.TypesInfo, fd.Body)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				gs, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				c := &checker{pass: pass, marked: marked, enclosing: fd,
					seenLits: map[*ast.FuncLit]bool{}, seenNodes: map[*callgraph.Node]bool{},
					factOK: func(f *facts.FuncFact) bool { return f.Recovers }}
				if !c.spawnReaches(gs.Call, c.boundaryIn, c.boundaryNode) {
					pass.Reportf(gs.Pos(), "goroutine without a resilience boundary: route panics through resilience.Guard/GuardVal or an mpgraph:recovers helper")
				}
				line := pass.Fset.Position(gs.Pos()).Line
				if joined || detached[line] {
					return true
				}
				c = &checker{pass: pass, marked: marked, enclosing: fd,
					seenLits: map[*ast.FuncLit]bool{}, seenNodes: map[*callgraph.Node]bool{},
					factOK: func(f *facts.FuncFact) bool { return f.Sink }}
				if !c.spawnReaches(gs.Call, c.sinkIn, c.sinkNode) {
					d := analysis.Diagnostic{
						Pos:     gs.Pos(),
						Message: "goroutine may outlive its spawner: no WaitGroup join in the spawning function and no context/done-channel sink in the spawned body; join it or mark the spawn //mpgraph:detached -- <reason>",
					}
					if fix, ok := detachedFix(pass.Fset, gs.Pos()); ok {
						d.SuggestedFixes = []analysis.SuggestedFix{fix}
					}
					pass.Report(d)
				}
				return true
			})
		}
	}
	return nil
}

// markedDecls indexes this package's mpgraph:recovers-marked functions.
func markedDecls(pass *analysis.Pass) map[types.Object]bool {
	out := map[types.Object]bool{}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil || !strings.Contains(fd.Doc.Text(), recoversMarker) {
				continue
			}
			if obj := pass.TypesInfo.Defs[fd.Name]; obj != nil {
				out[obj] = true
			}
		}
	}
	return out
}

// detachedLines maps line numbers carrying a reasoned detached directive.
func detachedLines(fset *token.FileSet, file *ast.File) map[int]bool {
	out := map[int]bool{}
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, detachedDirective) {
				continue
			}
			rest := c.Text[len(detachedDirective):]
			if i := strings.Index(rest, " -- "); i >= 0 && strings.TrimSpace(rest[i+4:]) != "" {
				out[fset.Position(c.Pos()).Line] = true
			}
		}
	}
	return out
}

// hasWaitGroupJoin reports a sync.WaitGroup Wait call anywhere in the
// spawning function's body — the join that bounds its goroutines.
func hasWaitGroupJoin(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if obj, ok := info.Uses[sel.Sel].(*types.Func); ok &&
			obj.Name() == "Wait" && obj.Pkg() != nil && obj.Pkg().Path() == "sync" {
			found = true
		}
		return !found
	})
	return found
}

// checker walks one spawned call's targets — literals through their bodies,
// named functions through the call graph — applying a predicate pair.
type checker struct {
	pass      *analysis.Pass
	marked    map[types.Object]bool
	enclosing *ast.FuncDecl
	seenLits  map[*ast.FuncLit]bool
	seenNodes map[*callgraph.Node]bool
	// factOK judges a cross-package callee by its exported fact (Sink for
	// the lifetime contract, Recovers for containment) — the only view the
	// call graph, which stops at the package boundary, does not cover.
	factOK func(*facts.FuncFact) bool
}

// factReached reports whether the call target's cross-package fact satisfies
// this checker's contract.
func (c *checker) factReached(fun ast.Expr) bool {
	f, ok := calleeObj(c.pass.TypesInfo, fun).(*types.Func)
	if !ok {
		return false
	}
	fact := c.pass.Facts.ForFunc(f)
	return fact != nil && c.factOK(fact)
}

// spawnReaches reports whether the spawned call reaches code satisfying
// inBody (syntactic check over a literal or declaration body) or nodeOK
// (per call-graph node check, e.g. marked-ness).
func (c *checker) spawnReaches(call *ast.CallExpr, inBody func(ast.Node) bool, nodeOK func(*callgraph.Node) bool) bool {
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		return c.visitLit(lit, inBody, nodeOK)
	}
	if c.factReached(call.Fun) {
		return true
	}
	nodes, lits := c.pass.CallGraph.ResolveCall(c.enclosing, call)
	for _, n := range nodes {
		if c.visitNode(n, inBody, nodeOK) {
			return true
		}
	}
	for _, lit := range lits {
		if c.visitLit(lit, inBody, nodeOK) {
			return true
		}
	}
	return false
}

// visitLit checks a literal body directly, then follows its calls into the
// call graph and into further literals.
func (c *checker) visitLit(lit *ast.FuncLit, inBody func(ast.Node) bool, nodeOK func(*callgraph.Node) bool) bool {
	if c.seenLits[lit] {
		return false
	}
	c.seenLits[lit] = true
	if inBody(lit.Body) {
		return true
	}
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		nodes, lits := c.pass.CallGraph.ResolveCall(c.enclosing, call)
		for _, node := range nodes {
			if c.visitNode(node, inBody, nodeOK) {
				found = true
				return false
			}
		}
		for _, inner := range lits {
			if c.visitLit(inner, inBody, nodeOK) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// visitNode checks one declared function and everything transitively
// callable from it.
func (c *checker) visitNode(start *callgraph.Node, inBody func(ast.Node) bool, nodeOK func(*callgraph.Node) bool) bool {
	if c.seenNodes[start] {
		return false
	}
	return c.pass.CallGraph.Walk(start, func(n *callgraph.Node) bool {
		if c.seenNodes[n] {
			return false
		}
		c.seenNodes[n] = true
		if nodeOK != nil && nodeOK(n) {
			return true
		}
		return n.Decl != nil && n.Decl.Body != nil && inBody(n.Decl.Body)
	})
}

// sinkIn reports a bounded-lifetime sink in a body: a select statement, a
// receive from ctx.Done(), or a range over a channel.
func (c *checker) sinkIn(body ast.Node) bool {
	info := c.pass.TypesInfo
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch x := n.(type) {
		case *ast.SelectStmt:
			found = true
		case *ast.UnaryExpr:
			if x.Op != token.ARROW {
				return true
			}
			if call, ok := ast.Unparen(x.X).(*ast.CallExpr); ok {
				if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" {
					found = true
				}
			}
		case *ast.RangeStmt:
			if tv, ok := info.Types[x.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					found = true
				}
			}
		case *ast.CallExpr:
			// A callee outside the package graph sinks if its fact says so.
			if c.factReached(x.Fun) {
				found = true
			}
		}
		return !found
	})
	return found
}

// sinkNode defers entirely to the body check.
func (c *checker) sinkNode(n *callgraph.Node) bool { return false }

// boundaryIn reports a direct call to a recovery boundary in a body.
func (c *checker) boundaryIn(body ast.Node) bool {
	info := c.pass.TypesInfo
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		obj := calleeObj(info, call.Fun)
		if obj == nil {
			return true
		}
		if c.marked[obj] || (obj.Pkg() != nil && obj.Pkg().Path() == resiliencePath) {
			found = true
		}
		// A callee outside the package recovers if its fact says so.
		if !found && c.factReached(call.Fun) {
			found = true
		}
		return !found
	})
	return found
}

// boundaryNode accepts marked helpers reached through the call graph.
func (c *checker) boundaryNode(n *callgraph.Node) bool { return c.marked[n.Obj] }

// calleeObj resolves a call target without the dataflow fact.
func calleeObj(info *types.Info, fun ast.Expr) types.Object {
	switch e := ast.Unparen(fun).(type) {
	case *ast.Ident:
		return info.Uses[e]
	case *ast.SelectorExpr:
		return info.Uses[e.Sel]
	case *ast.IndexExpr:
		return calleeObj(info, e.X)
	case *ast.IndexListExpr:
		return calleeObj(info, e.X)
	default:
		return nil
	}
}

// detachedFix appends the detached directive with a TODO reason at the end
// of the spawn line; the directive suppresses the finding, so the fix is
// idempotent, and the TODO keeps the decision visible until justified.
func detachedFix(fset *token.FileSet, pos token.Pos) (analysis.SuggestedFix, bool) {
	tf := fset.File(pos)
	if tf == nil {
		return analysis.SuggestedFix{}, false
	}
	line := tf.Line(pos)
	var endOff int
	if line < tf.LineCount() {
		endOff = tf.Offset(tf.LineStart(line+1)) - 1 // the byte before the newline
	} else {
		endOff = tf.Size()
	}
	at := tf.Pos(endOff)
	return analysis.SuggestedFix{
		Message: "document the unbounded goroutine with a detached directive",
		TextEdits: []analysis.TextEdit{{
			Pos: at, End: at,
			NewText: " //mpgraph:detached -- TODO: document why this goroutine may outlive its spawner",
		}},
	}, true
}
